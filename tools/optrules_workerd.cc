// optrules_workerd: distributed-scan worker daemon.
//
// Speaks the length-prefixed pipe protocol on stdin/stdout: the
// coordinator sends scan-request frames (partition path + MultiCountSpec
// + boundaries), the worker replies with serialized partial
// MultiCountPlan state, until EOF or a shutdown frame. Spawned by
// dist::SubprocessScanWorker; runnable by hand for debugging:
//   optrules_workerd < requests.bin > replies.bin

#include <unistd.h>

#include "dist/worker_protocol.h"

int main() {
  return optrules::dist::RunWorkerLoop(STDIN_FILENO, STDOUT_FILENO);
}
