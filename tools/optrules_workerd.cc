// optrules_workerd: distributed-scan worker daemon.
//
// Speaks the length-prefixed pipe protocol on stdin/stdout: the
// coordinator sends scan-request frames (partition path + MultiCountSpec
// + boundaries), the worker replies with serialized partial
// MultiCountPlan state, until EOF or a shutdown frame; kPing frames are
// answered with kPong, and a keepalive thread ships kHeartbeat frames
// while a scan is in flight so the coordinator's liveness timeout can
// tell a hung daemon from a slow one. Spawned by
// dist::SubprocessScanWorker; runnable by hand for debugging:
//   optrules_workerd < requests.bin > replies.bin
//
// Fault injection (ctest-only): `--fault=<spec>` or the
// OPTRULES_WORKERD_FAULT environment variable arms one deterministic
// fault -- crash-before-reply / crash-mid-frame / garbage-frame /
// error-frame / stall:<ms> / hang:<ms>, each optionally @<request
// ordinal>, or `rotate` for the counter-file pattern the check-faults
// lane uses. See dist/worker_protocol.h for the full grammar and the
// token/counter gating that keeps multi-daemon fault runs deterministic.

#include <unistd.h>

#include <cstring>

#include "dist/worker_protocol.h"

int main(int argc, char** argv) {
  const char* fault_spec = nullptr;  // nullptr = consult the environment
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fault=", 8) == 0) {
      fault_spec = argv[i] + 8;
    }
  }
  return optrules::dist::RunWorkerLoop(STDIN_FILENO, STDOUT_FILENO,
                                       fault_spec);
}
