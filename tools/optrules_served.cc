// optrules_served: the resident mining service daemon.
//
// Listens on a Unix-domain socket (--socket=<path>) or a loopback TCP
// port (--port=<n>, 0 = ephemeral) and serves the serve-layer protocol:
// clients open mining sessions against partitioned tables on this
// machine, and sessions arriving within the coalescing window against
// the same table generation + options share ONE counting scan. Prints
//   LISTENING <address>
// once the socket is bound (what tests and the load harness parse), then
// runs until SIGTERM or SIGINT, which triggers the graceful path: stop
// accepting, drain queued sessions under --drain-ms, unblock every
// connection, release the engines. Exit code 0 on a clean drain.
// SIGUSR1 (unless --metrics-dump-on=none) dumps the process metrics
// registry to stderr in the text format and keeps serving.
//
//   optrules_served --socket=/tmp/optrules.sock --window-ms=25
//   optrules_served --port=0 --max-sessions=64
//   kill -USR1 <pid>   # print every counter/gauge/histogram to stderr

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/env.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace {

/// Strict non-negative integer flag value; exits with usage on garbage
/// (a daemon must not start with half-parsed limits).
uint64_t FlagValue(const char* flag, const char* text) {
  const auto parsed = optrules::env::ParseNonNegativeInt(text);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "optrules_served: %s wants a non-negative integer, got \"%s\"\n",
                 flag, text);
    std::exit(2);
  }
  return *parsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool use_tcp = false;
  uint16_t port = 0;
  bool metrics_dump_on_usr1 = true;
  optrules::serve::ServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      socket_path = arg + 9;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      use_tcp = true;
      port = static_cast<uint16_t>(FlagValue("--port", arg + 7));
    } else if (std::strncmp(arg, "--window-ms=", 12) == 0) {
      options.coalescing_window_ms =
          static_cast<int64_t>(FlagValue("--window-ms", arg + 12));
    } else if (std::strncmp(arg, "--max-sessions=", 15) == 0) {
      options.max_pending_sessions =
          static_cast<int>(FlagValue("--max-sessions", arg + 15));
    } else if (std::strncmp(arg, "--max-connections=", 18) == 0) {
      options.max_connections =
          static_cast<int>(FlagValue("--max-connections", arg + 18));
    } else if (std::strncmp(arg, "--drain-ms=", 11) == 0) {
      options.drain_deadline_ms =
          static_cast<int64_t>(FlagValue("--drain-ms", arg + 11));
    } else if (std::strncmp(arg, "--max-engines=", 14) == 0) {
      options.max_cached_engines =
          static_cast<int>(FlagValue("--max-engines", arg + 14));
    } else if (std::strncmp(arg, "--metrics-dump-on=", 18) == 0) {
      const char* value = arg + 18;
      if (std::strcmp(value, "usr1") == 0 ||
          std::strcmp(value, "SIGUSR1") == 0) {
        metrics_dump_on_usr1 = true;
      } else if (std::strcmp(value, "none") == 0) {
        metrics_dump_on_usr1 = false;
      } else {
        std::fprintf(stderr,
                     "optrules_served: --metrics-dump-on wants usr1 or "
                     "none, got \"%s\"\n",
                     value);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: optrules_served (--socket=<path> | --port=<n>) "
                   "[--window-ms=N] [--max-sessions=N] "
                   "[--max-connections=N] [--drain-ms=N] "
                   "[--max-engines=N] [--metrics-dump-on=usr1|none]\n");
      return 2;
    }
  }
  if (socket_path.empty() && !use_tcp) {
    std::fprintf(stderr,
                 "optrules_served: need --socket=<path> or --port=<n>\n");
    return 2;
  }

  // Block the waited-on signals BEFORE any thread spawns, so they are
  // delivered to this thread's sigwait and nowhere else. SIGUSR1 rides
  // the same mask: it dumps the metrics registry and keeps serving.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGTERM);
  sigaddset(&signals, SIGINT);
  if (metrics_dump_on_usr1) sigaddset(&signals, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  optrules::serve::MiningServer server(options);
  const optrules::Status bound = use_tcp ? server.ListenTcp(port)
                                         : server.ListenUnix(socket_path);
  if (!bound.ok()) {
    std::fprintf(stderr, "optrules_served: %s\n",
                 bound.ToString().c_str());
    return 1;
  }
  const optrules::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "optrules_served: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %s\n", server.address().c_str());
  std::fflush(stdout);

  for (;;) {
    int signal_number = 0;
    if (sigwait(&signals, &signal_number) != 0) continue;
    if (signal_number == SIGUSR1) {
      // Operator-triggered dump: the full registry as text on stderr
      // (stdout is the LISTENING handshake channel). The daemon keeps
      // serving; dump as often as you like.
      const std::string text =
          optrules::obs::MetricsRegistry::Default().Snapshot().ToText();
      std::fwrite(text.data(), 1, text.size(), stderr);
      std::fflush(stderr);
      continue;
    }
    break;  // SIGTERM / SIGINT: the graceful path
  }
  server.Stop();
  return 0;
}
