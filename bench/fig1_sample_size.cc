// Figure 1: sample size vs probability of a >=50% bucket-depth error.
//
// For X ~ Binomial(S, 1/M), prints pe = Pr(|X - S/M| >= 0.5 * S/M) as a
// function of S/M for M in {5, 10, 10000}. The paper's observation: pe
// falls below 0.30 at S/M = 40 and flattens beyond, which is why
// Algorithm 3.1 uses S = 40*M samples.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/binomial.h"

int main() {
  using optrules::BucketDeviationProbability;

  optrules::bench::PrintHeader(
      "Figure 1: sample size and probability of depth error >= 50% "
      "(delta = 0.5)");
  const int64_t ms[] = {5, 10, 10000};
  std::printf("%8s %12s %12s %12s\n", "S/M", "M=5", "M=10", "M=10000");
  optrules::bench::PrintRule(48);
  const int64_t per_bucket_values[] = {1,  2,  5,  10, 15, 20, 25,
                                       30, 35, 40, 50, 60, 80, 100};
  for (const int64_t per_bucket : per_bucket_values) {
    std::printf("%8lld", static_cast<long long>(per_bucket));
    for (const int64_t m : ms) {
      const double pe =
          BucketDeviationProbability(per_bucket * m, m, 0.5);
      std::printf(" %12.4f", pe);
    }
    std::printf("\n");
  }
  optrules::bench::PrintRule(48);
  std::printf(
      "Check (paper Section 3.2): pe < 0.30 at S/M = 40 for every M:\n");
  bool all_ok = true;
  for (const int64_t m : ms) {
    const double pe = BucketDeviationProbability(40 * m, m, 0.5);
    const bool ok = pe < 0.30;
    all_ok = all_ok && ok;
    std::printf("  M=%-6lld pe=%.4f  %s\n", static_cast<long long>(m), pe,
                ok ? "OK" : "VIOLATION");
  }
  return all_ok ? 0 : 1;
}
