// Ablation: randomized sampling (Algorithm 3.1) vs a deterministic GK
// quantile sketch for building almost equi-depth buckets.
//
// Both are single-scan designs for out-of-core tables. The harness
// compares (a) wall time per pass and (b) the worst relative bucket-depth
// deviation across M buckets, on uniform and heavily skewed data.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bucketing/boundaries.h"
#include "common/timer.h"

namespace {

double WorstDepthDeviation(const std::vector<double>& values,
                           const optrules::bucketing::BucketBoundaries& b) {
  std::vector<int64_t> counts(static_cast<size_t>(b.num_buckets()), 0);
  for (const double v : values) {
    const int bucket = b.Locate(v);
    if (bucket == optrules::bucketing::BucketBoundaries::kNoBucket) continue;
    ++counts[static_cast<size_t>(bucket)];
  }
  const double expected =
      static_cast<double>(values.size()) / b.num_buckets();
  double worst = 0.0;
  for (const int64_t c : counts) {
    worst = std::max(
        worst, std::abs(static_cast<double>(c) - expected) / expected);
  }
  return worst;
}

}  // namespace

int main() {
  const int64_t n = 1000000 * optrules::bench::BenchScale();
  const int m = 1000;
  const double epsilon = 1.0 / (4.0 * m);  // rank error = depth/4

  optrules::bench::PrintHeader(
      "Ablation: Algorithm 3.1 sampling vs deterministic GK sketch "
      "(M = 1000 buckets)");
  std::printf("%10s %14s %12s %14s %12s\n", "data", "sample (s)",
              "worst dev", "GK sketch (s)", "worst dev");
  optrules::bench::PrintRule(68);

  bool ok = true;
  for (const bool skewed : {false, true}) {
    optrules::Rng rng(skewed ? 101 : 100);
    std::vector<double> values(static_cast<size_t>(n));
    for (double& v : values) {
      v = skewed ? std::exp(3.0 * rng.NextGaussian())
                 : rng.NextUniform(0.0, 1e6);
    }

    // Both strategies go through the shared BuildBoundaries dispatch.
    optrules::bucketing::BoundaryPlan plan;
    plan.num_buckets = m;
    plan.seed = 7;
    plan.gk_epsilon = epsilon;

    optrules::WallTimer sample_timer;
    plan.bucketizer = optrules::bucketing::Bucketizer::kSampling;
    const auto sampled = optrules::bucketing::BuildBoundaries(values, plan);
    const double sample_seconds = sample_timer.ElapsedSeconds();
    const double sample_deviation = WorstDepthDeviation(values, sampled);

    optrules::WallTimer sketch_timer;
    plan.bucketizer = optrules::bucketing::Bucketizer::kGkSketch;
    const auto sketched = optrules::bucketing::BuildBoundaries(values, plan);
    const double sketch_seconds = sketch_timer.ElapsedSeconds();
    const double sketch_deviation = WorstDepthDeviation(values, sketched);

    std::printf("%10s %14.3f %12.3f %14.3f %12.3f\n",
                skewed ? "lognormal" : "uniform", sample_seconds,
                sample_deviation, sketch_seconds, sketch_deviation);
    // GK's deviation is bounded by 2*eps*M = 0.5 deterministically; the
    // sampler is probabilistic but should stay in the same regime.
    if (sketch_deviation > 0.5 + 1e-9) ok = false;
    if (sample_deviation > 1.5) ok = false;
  }
  optrules::bench::PrintRule(68);
  std::printf("Shape check (GK deviation <= deterministic bound 0.5; "
              "sampler within its probabilistic regime): %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
