// Figure 9: performance of the bucketing algorithms on a disk-resident
// table with 8 numeric and 8 Boolean attributes (72 bytes per tuple).
//
// Task (as in Section 6.1): divide the data into 1000 almost equi-depth
// buckets with respect to EVERY numeric attribute and count the tuples per
// bucket for every Boolean attribute. Three methods:
//   - Algorithm 3.1: reservoir sample + sort sample + one counting scan,
//   - Naive Sort: external-sort the full 72-byte rows per attribute,
//   - Vertical Split Sort: project (value, tid) pairs, sort the narrow
//     file per attribute.
//
// The paper runs N = 5*10^5 .. 5*10^6 on 1996 hardware; the default here
// is N = 5*10^4 .. 4*10^5 so the whole harness stays in seconds. Set
// OPTRULES_BENCH_SCALE to grow N (e.g. 12 reaches the paper's 6*10^6).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bucketing/counting.h"
#include "bucketing/equidepth_sampler.h"
#include "bucketing/sort_bucketizer.h"
#include "common/timer.h"
#include "datagen/table_generator.h"
#include "storage/tuple_stream.h"

namespace {

constexpr int kBuckets = 1000;
constexpr size_t kSortMemoryBudget = 16 << 20;  // force external behaviour

using optrules::bucketing::BucketBoundaries;

double RunAlgorithm31(const std::string& table_path) {
  optrules::WallTimer timer;
  auto stream_or = optrules::storage::FileTupleStream::Open(table_path);
  OPTRULES_CHECK(stream_or.ok());
  optrules::storage::FileTupleStream& stream = *stream_or.value();
  optrules::bucketing::SamplerOptions options;
  options.num_buckets = kBuckets;
  for (int attr = 0; attr < stream.num_numeric(); ++attr) {
    optrules::Rng rng(100 + static_cast<uint64_t>(attr));
    stream.Reset();
    const BucketBoundaries boundaries =
        optrules::bucketing::BuildEquiDepthBoundariesFromStream(
            stream, attr, options, rng);
    stream.Reset();
    const optrules::bucketing::BucketCounts counts =
        optrules::bucketing::CountBucketsFromStream(stream, attr,
                                                    boundaries);
    OPTRULES_CHECK(counts.total_tuples > 0);
  }
  return timer.ElapsedSeconds();
}

double RunNaiveSort(const std::string& table_path,
                    const std::string& temp_dir) {
  optrules::WallTimer timer;
  auto info = optrules::storage::ReadPagedFileInfo(table_path);
  OPTRULES_CHECK(info.ok());
  for (int attr = 0; attr < info.value().num_numeric; ++attr) {
    auto boundaries = optrules::bucketing::NaiveSortBoundariesFromFile(
        table_path, attr, kBuckets, temp_dir + "/fig9_sorted.optr",
        kSortMemoryBudget, temp_dir);
    OPTRULES_CHECK(boundaries.ok());
    // Counting pass over the sorted file (counts come for free with the
    // scan in a real deployment; we still perform it for parity).
    auto stream_or = optrules::storage::FileTupleStream::Open(
        temp_dir + "/fig9_sorted.optr");
    OPTRULES_CHECK(stream_or.ok());
    const optrules::bucketing::BucketCounts counts =
        optrules::bucketing::CountBucketsFromStream(*stream_or.value(),
                                                    attr,
                                                    boundaries.value());
    OPTRULES_CHECK(counts.total_tuples > 0);
  }
  std::remove((temp_dir + "/fig9_sorted.optr").c_str());
  return timer.ElapsedSeconds();
}

double RunVerticalSplitSort(const std::string& table_path,
                            const std::string& temp_dir) {
  optrules::WallTimer timer;
  auto info = optrules::storage::ReadPagedFileInfo(table_path);
  OPTRULES_CHECK(info.ok());
  for (int attr = 0; attr < info.value().num_numeric; ++attr) {
    auto boundaries =
        optrules::bucketing::VerticalSplitSortBoundariesFromFile(
            table_path, attr, kBuckets, temp_dir + "/fig9_split.bin",
            kSortMemoryBudget, temp_dir);
    OPTRULES_CHECK(boundaries.ok());
    auto stream_or = optrules::storage::FileTupleStream::Open(table_path);
    OPTRULES_CHECK(stream_or.ok());
    const optrules::bucketing::BucketCounts counts =
        optrules::bucketing::CountBucketsFromStream(*stream_or.value(),
                                                    attr,
                                                    boundaries.value());
    OPTRULES_CHECK(counts.total_tuples > 0);
  }
  std::remove((temp_dir + "/fig9_split.bin").c_str());
  return timer.ElapsedSeconds();
}

}  // namespace

int main() {
  const int64_t scale = optrules::bench::BenchScale();
  const std::string temp_dir = "/tmp";

  optrules::bench::PrintHeader(
      "Figure 9: bucketing performance (1000 buckets, 8 numeric x 8 "
      "boolean attrs, 72 B/tuple)");
  std::printf("%10s %14s %14s %14s %10s %10s\n", "tuples", "Alg3.1 (s)",
              "NaiveSort (s)", "VSplit (s)", "naive/alg", "vsplit/alg");
  optrules::bench::PrintRule(78);

  bool shape_ok = true;
  double last_alg = 0.0;
  for (const int64_t base_n : {50000, 100000, 200000, 400000}) {
    const int64_t n = base_n * scale;
    const std::string table_path =
        temp_dir + "/fig9_table_" + std::to_string(n) + ".optr";
    optrules::datagen::TableConfig config =
        optrules::datagen::PaperSection61Config(n);
    optrules::Rng rng(42);
    OPTRULES_CHECK(
        optrules::datagen::GenerateTableToFile(config, rng, table_path)
            .ok());

    const double alg = RunAlgorithm31(table_path);
    const double naive = RunNaiveSort(table_path, temp_dir);
    const double vsplit = RunVerticalSplitSort(table_path, temp_dir);
    std::printf("%10lld %14.3f %14.3f %14.3f %10.2f %10.2f\n",
                static_cast<long long>(n), alg, naive, vsplit, naive / alg,
                vsplit / alg);
    // Paper shape: Alg 3.1 fastest; Vertical Split between; near-linear
    // growth of Alg 3.1.
    if (naive < alg || vsplit < alg || naive < vsplit) shape_ok = false;
    last_alg = alg;
  }
  optrules::bench::PrintRule(78);
  std::printf("Shape check (Alg3.1 < VerticalSplit < NaiveSort at every "
              "N): %s\n",
              shape_ok ? "yes" : "NO");
  (void)last_alg;
  for (const int64_t base_n : {50000, 100000, 200000, 400000}) {
    const int64_t n = base_n * scale;
    std::remove((temp_dir + "/fig9_table_" + std::to_string(n) + ".optr")
                    .c_str());
  }
  return 0;
}
