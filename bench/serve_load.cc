// Multi-tenant load harness for the resident mining service.
//
// Boots an in-process MiningServer over one partitioned table and drives
// it from N synthetic tenants (one MiningClient thread each), measuring
// what the serving layer is FOR:
//
//   * Coalescing: all N tenants open sessions -- with overlapping and
//     disjoint query sets -- inside one coalescing window against the
//     same table generation; the window must execute as ONE physical
//     counting scan (physical_scans == 1) while every tenant's answers
//     stay bit-identical to a standalone MiningEngine session over the
//     same table and options.
//   * Throughput: a sustained phase of small sessions across the tenants,
//     reporting sessions/sec and p50/p99 latency (dominated by the
//     coalescing window once the engine is cache-resident).
//
// OPTRULES_BENCH_JSON=1 emits the one-line JSON object collected into
// BENCH_serve_load.json; OPTRULES_BENCH_SCALE multiplies rows and the
// sustained-session count.

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datagen/table_generator.h"
#include "dist/partitioned_table.h"
#include "rules/miner.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace optrules {
namespace {

using serve::MiningClient;
using serve::MiningServer;
using serve::QueryAnswer;
using serve::ServeQuery;
using serve::SessionReply;
using serve::SessionRequest;

constexpr int kTenants = 4;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Bit-level double equality (exact reproduction, NaN included).
bool BitEq(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool RulesEqual(const std::vector<rules::MinedRule>& a,
                const std::vector<rules::MinedRule>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const rules::MinedRule& x = a[i];
    const rules::MinedRule& y = b[i];
    if (x.found != y.found || x.kind != y.kind ||
        x.numeric_attr != y.numeric_attr ||
        x.boolean_attr != y.boolean_attr ||
        x.presumptive_condition != y.presumptive_condition ||
        !BitEq(x.range_lo, y.range_lo) || !BitEq(x.range_hi, y.range_hi) ||
        x.support_count != y.support_count || x.hit_count != y.hit_count ||
        !BitEq(x.support, y.support) || !BitEq(x.confidence, y.confidence)) {
      return false;
    }
  }
  return true;
}

bool AggregatesEqual(const rules::MinedAggregateRange& a,
                     const rules::MinedAggregateRange& b) {
  return a.found == b.found && a.range_attr == b.range_attr &&
         a.target_attr == b.target_attr && BitEq(a.range_lo, b.range_lo) &&
         BitEq(a.range_hi, b.range_hi) &&
         a.support_count == b.support_count && BitEq(a.support, b.support) &&
         BitEq(a.average, b.average);
}

bool RegionRulesEqual(const region::RegionRule& a,
                      const region::RegionRule& b) {
  return a.found == b.found && a.x1 == b.x1 && a.x2 == b.x2 &&
         a.y1 == b.y1 && a.y2 == b.y2 &&
         a.support_count == b.support_count && a.hit_count == b.hit_count &&
         BitEq(a.support, b.support) && BitEq(a.confidence, b.confidence);
}

bool RegionsEqual(const rules::MinedRegion& a, const rules::MinedRegion& b) {
  const region::XMonotoneRegion& xa = a.xmonotone_gain;
  const region::XMonotoneRegion& xb = b.xmonotone_gain;
  return a.found == b.found && a.x_attr == b.x_attr &&
         a.y_attr == b.y_attr && a.target_attr == b.target_attr &&
         a.nx == b.nx && a.ny == b.ny && a.total_tuples == b.total_tuples &&
         RegionRulesEqual(a.confidence_rectangle, b.confidence_rectangle) &&
         RegionRulesEqual(a.support_rectangle, b.support_rectangle) &&
         xa.found == xb.found && xa.x_begin == xb.x_begin &&
         xa.column_ranges == xb.column_ranges &&
         xa.support_count == xb.support_count &&
         xa.hit_count == xb.hit_count && BitEq(xa.support, xb.support) &&
         BitEq(xa.confidence, xb.confidence) && BitEq(xa.gain, xb.gain);
}

/// The answer a standalone MiningEngine gives to `query`.
QueryAnswer StandaloneAnswer(rules::MiningEngine* engine,
                             const ServeQuery& query) {
  QueryAnswer answer;
  switch (query.kind) {
    case ServeQuery::Kind::kAllPairs:
      answer.rules = engine->MineAllPairs();
      break;
    case ServeQuery::Kind::kPair: {
      auto result = engine->MinePair(query.attr_a, query.attr_b);
      if (result.ok()) answer.rules = std::move(result).value();
      break;
    }
    case ServeQuery::Kind::kGeneralized: {
      auto result = engine->MineGeneralized(query.attr_a, query.conditions,
                                            query.attr_b);
      if (result.ok()) answer.rules = std::move(result).value();
      break;
    }
    case ServeQuery::Kind::kAverageRange: {
      auto result = engine->MineMaximumAverageRange(
          query.attr_a, query.attr_b, query.threshold);
      if (result.ok()) answer.aggregate = std::move(result).value();
      break;
    }
    case ServeQuery::Kind::kSupportRange: {
      auto result = engine->MineMaximumSupportRange(
          query.attr_a, query.attr_b, query.threshold);
      if (result.ok()) answer.aggregate = std::move(result).value();
      break;
    }
    case ServeQuery::Kind::kRegion: {
      auto result = engine->MineOptimizedRegion(query.attr_a, query.attr_b,
                                                query.target);
      if (result.ok()) answer.region = std::move(result).value();
      break;
    }
  }
  return answer;
}

bool AnswersEqual(const QueryAnswer& served, const QueryAnswer& standalone) {
  return RulesEqual(served.rules, standalone.rules) &&
         AggregatesEqual(served.aggregate, standalone.aggregate) &&
         RegionsEqual(served.region, standalone.region);
}

/// Each tenant's query mix: overlapping (everyone asks pair num0=>bool0)
/// and disjoint (tenant-private channels) against one generation.
std::vector<ServeQuery> TenantQueries(int tenant,
                                      const storage::Schema& schema) {
  std::vector<ServeQuery> queries;
  ServeQuery shared;
  shared.kind = ServeQuery::Kind::kPair;
  shared.attr_a = schema.NumericName(0);
  shared.attr_b = schema.BooleanName(0);
  queries.push_back(shared);
  switch (tenant % kTenants) {
    case 0: {
      ServeQuery all;
      all.kind = ServeQuery::Kind::kAllPairs;
      queries.push_back(all);
      break;
    }
    case 1: {
      ServeQuery generalized;
      generalized.kind = ServeQuery::Kind::kGeneralized;
      generalized.attr_a = schema.NumericName(1);
      generalized.conditions = {schema.BooleanName(0)};
      generalized.attr_b = schema.BooleanName(1);
      queries.push_back(generalized);
      break;
    }
    case 2: {
      ServeQuery average;
      average.kind = ServeQuery::Kind::kAverageRange;
      average.attr_a = schema.NumericName(0);
      average.attr_b = schema.NumericName(2);
      average.threshold = 0.1;
      queries.push_back(average);
      break;
    }
    default: {
      ServeQuery region;
      region.kind = ServeQuery::Kind::kRegion;
      region.attr_a = schema.NumericName(0);
      region.attr_b = schema.NumericName(1);
      region.target = schema.BooleanName(0);
      queries.push_back(region);
      break;
    }
  }
  return queries;
}

}  // namespace
}  // namespace optrules

int main() {
  using namespace optrules;

  const int64_t scale = bench::BenchScale();
  const int64_t rows = 20'000 * scale;

  // ------------------------------------------------ table under test ----
  char dir_template[] = "/tmp/optrules_serve_load_XXXXXX";
  const char* tmp = mkdtemp(dir_template);
  if (tmp == nullptr) {
    std::fprintf(stderr, "serve_load: mkdtemp failed\n");
    return 1;
  }
  const std::string root(tmp);
  const std::string table_dir = root + "/table";

  datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = 4;
  config.num_boolean = 3;
  Rng rng(7);
  const storage::Relation relation = datagen::GenerateTable(config, rng);
  dist::PartitionOptions partitioning;
  partitioning.num_partitions = 4;
  auto table_or = dist::PartitionRelation(relation, table_dir, partitioning);
  if (!table_or.ok()) {
    std::fprintf(stderr, "serve_load: %s\n",
                 table_or.status().ToString().c_str());
    return 1;
  }
  const dist::PartitionedTable table = std::move(table_or).value();

  rules::MinerOptions miner_options;
  miner_options.num_buckets = 64;
  miner_options.region_grid_buckets = 16;

  // ------------------------------------------------------- the server ----
  serve::ServerOptions server_options;
  server_options.coalescing_window_ms = 50;
  MiningServer server(server_options);
  if (Status bound = server.ListenUnix(root + "/serve.sock"); !bound.ok()) {
    std::fprintf(stderr, "serve_load: %s\n", bound.ToString().c_str());
    return 1;
  }
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "serve_load: %s\n", started.ToString().c_str());
    return 1;
  }

  bench::PrintHeader("serve_load: cross-session scan coalescing");
  std::printf("rows=%lld partitions=%d tenants=%d window=%lldms\n",
              static_cast<long long>(rows), partitioning.num_partitions,
              kTenants,
              static_cast<long long>(server_options.coalescing_window_ms));

  // --------------------------- phase 1: one window, one physical scan ----
  std::vector<SessionReply> replies(kTenants);
  std::vector<Status> reply_status(kTenants, Status::Ok());
  {
    std::vector<std::thread> tenants;
    for (int t = 0; t < kTenants; ++t) {
      tenants.emplace_back([&, t] {
        auto client_or = MiningClient::ConnectUnix(server.address());
        if (!client_or.ok()) {
          reply_status[static_cast<size_t>(t)] = client_or.status();
          return;
        }
        MiningClient client = std::move(client_or).value();
        SessionRequest request;
        request.table_dir = table_dir;
        request.options = miner_options;
        request.queries = TenantQueries(t, table.schema());
        auto reply = client.RunSession(request);
        if (reply.ok()) {
          replies[static_cast<size_t>(t)] = std::move(reply).value();
        } else {
          reply_status[static_cast<size_t>(t)] = reply.status();
        }
      });
    }
    for (std::thread& tenant : tenants) tenant.join();
  }
  for (int t = 0; t < kTenants; ++t) {
    if (!reply_status[static_cast<size_t>(t)].ok()) {
      std::fprintf(stderr, "serve_load: tenant %d failed: %s\n", t,
                   reply_status[static_cast<size_t>(t)].ToString().c_str());
      return 1;
    }
  }
  const serve::ServerStatsSnapshot window_stats = server.Stats();

  // Bit-identity: every tenant's served answers vs a standalone engine.
  bool bit_identical = true;
  for (int t = 0; t < kTenants; ++t) {
    rules::MiningEngine standalone(&table, miner_options);
    const std::vector<ServeQuery> queries =
        TenantQueries(t, table.schema());
    const SessionReply& reply = replies[static_cast<size_t>(t)];
    if (reply.answers.size() != queries.size()) {
      bit_identical = false;
      break;
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      if (!reply.answers[q].status.ok() ||
          !AnswersEqual(reply.answers[q],
                        StandaloneAnswer(&standalone, queries[q]))) {
        bit_identical = false;
      }
    }
  }

  std::printf("window: physical_scans=%lld coalesced_sessions=%lld "
              "bit_identical=%s\n",
              static_cast<long long>(window_stats.physical_scans),
              static_cast<long long>(window_stats.coalesced_sessions),
              bit_identical ? "yes" : "NO");

  // ------------------------------- phase 2: sustained session stream ----
  const int sessions_per_tenant = static_cast<int>(25 * scale);
  std::vector<double> latencies_ms;
  latencies_ms.reserve(
      static_cast<size_t>(kTenants * sessions_per_tenant));
  std::mutex latency_mu;
  std::atomic<int> failures{0};
  const double stream_start = NowSeconds();
  {
    std::vector<std::thread> tenants;
    for (int t = 0; t < kTenants; ++t) {
      tenants.emplace_back([&, t] {
        auto client_or = MiningClient::ConnectUnix(server.address());
        if (!client_or.ok()) {
          failures.fetch_add(sessions_per_tenant);
          return;
        }
        MiningClient client = std::move(client_or).value();
        SessionRequest request;
        request.table_dir = table_dir;
        request.options = miner_options;
        ServeQuery pair;
        pair.kind = ServeQuery::Kind::kPair;
        pair.attr_a = table.schema().NumericName(t % 4);
        pair.attr_b = table.schema().BooleanName(t % 3);
        request.queries = {pair};
        std::vector<double> local;
        local.reserve(static_cast<size_t>(sessions_per_tenant));
        for (int s = 0; s < sessions_per_tenant; ++s) {
          const double begin = NowSeconds();
          if (client.RunSession(request).ok()) {
            local.push_back((NowSeconds() - begin) * 1e3);
          } else {
            failures.fetch_add(1);
          }
        }
        std::lock_guard<std::mutex> lock(latency_mu);
        latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
      });
    }
    for (std::thread& tenant : tenants) tenant.join();
  }
  const double stream_seconds = NowSeconds() - stream_start;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto percentile = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    const size_t index = std::min(
        latencies_ms.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_ms.size())));
    return latencies_ms[index];
  };
  const double sessions_per_sec =
      stream_seconds > 0.0
          ? static_cast<double>(latencies_ms.size()) / stream_seconds
          : 0.0;
  const serve::ServerStatsSnapshot final_stats = server.Stats();
  server.Stop();
  std::filesystem::remove_all(root);

  std::printf("stream: sessions=%zu sessions/sec=%.1f p50=%.2fms "
              "p99=%.2fms failures=%d\n",
              latencies_ms.size(), sessions_per_sec, percentile(0.50),
              percentile(0.99), failures.load());
  std::printf("totals: served=%lld physical_scans=%lld "
              "coalesced_sessions=%lld batches=%lld\n",
              static_cast<long long>(final_stats.sessions_served),
              static_cast<long long>(final_stats.physical_scans),
              static_cast<long long>(final_stats.coalesced_sessions),
              static_cast<long long>(final_stats.batches_executed));

  bench::JsonReporter json("serve_load");
  json.Add("rows", rows);
  json.Add("tenants", static_cast<int64_t>(kTenants));
  json.Add("coalescing_window_ms",
           static_cast<int64_t>(server_options.coalescing_window_ms));
  json.Add("window_physical_scans", window_stats.physical_scans);
  json.Add("window_coalesced_sessions", window_stats.coalesced_sessions);
  json.Add("bit_identical", bit_identical);
  json.Add("stream_sessions", static_cast<int64_t>(latencies_ms.size()));
  json.Add("sessions_per_sec", sessions_per_sec);
  json.Add("p50_latency_ms", percentile(0.50));
  json.Add("p99_latency_ms", percentile(0.99));
  json.Add("total_physical_scans", final_stats.physical_scans);
  json.Add("total_coalesced_sessions", final_stats.coalesced_sessions);
  json.Add("total_batches", final_stats.batches_executed);
  json.Add("failures", static_cast<int64_t>(failures.load()));
  // The server runs in-process, so its registry IS this process's
  // registry: the snapshot carries the serve counters alongside the
  // storage/scan instruments the sessions exercised.
  json.AddRegistrySnapshot(
      optrules::obs::MetricsRegistry::Default().Snapshot());

  const bool ok = bit_identical && window_stats.physical_scans == 1 &&
                  failures.load() == 0;
  if (!ok) {
    std::fprintf(stderr, "serve_load: FAILED acceptance checks\n");
    return 1;
  }
  return 0;
}
