// Ablation for the paper's footnote 3: equi-depth bucketing minimizes the
// worst-case approximation error among bucketings with M buckets.
//
// A rule is planted in a heavily skewed (lognormal) attribute; the
// optimized-confidence rule is mined under equi-depth vs equi-width
// boundaries for several M and compared against a fine-grained reference
// optimum. Equi-width collapses most of the mass into a few buckets on
// skewed data, so its mined confidence falls far from the reference.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "bucketing/boundaries.h"
#include "bucketing/counting.h"
#include "bucketing/equiwidth.h"
#include "rules/optimized_confidence.h"
#include "rules/rule.h"

namespace {

optrules::rules::RangeRule MineWith(
    const std::vector<double>& values, const std::vector<uint8_t>& target,
    const optrules::bucketing::BucketBoundaries& boundaries,
    double min_support) {
  optrules::bucketing::BucketCounts counts =
      optrules::bucketing::CountBuckets(values, target, boundaries);
  optrules::bucketing::CompactEmptyBuckets(&counts);
  if (counts.u.empty()) return {};
  return optrules::rules::OptimizedConfidenceRule(
      counts.u, counts.v[0], counts.total_tuples,
      optrules::rules::MinSupportCount(counts.total_tuples, min_support));
}

}  // namespace

int main() {
  const int64_t rows = 200000 * optrules::bench::BenchScale();
  const double kMinSupport = 0.10;

  // Skewed attribute: lognormal. Planted band = a quantile slice
  // [q20, q40] with high confidence.
  optrules::Rng rng(555);
  std::vector<double> values(static_cast<size_t>(rows));
  for (double& v : values) v = std::exp(2.0 * rng.NextGaussian());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted[static_cast<size_t>(0.2 * rows)];
  const double hi = sorted[static_cast<size_t>(0.4 * rows)];
  std::vector<uint8_t> target(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const bool inside = lo <= values[i] && values[i] <= hi;
    target[i] = rng.NextBernoulli(inside ? 0.8 : 0.05) ? 1 : 0;
  }

  // Fine-grained reference optimum (exact equi-depth, many buckets).
  const optrules::rules::RangeRule reference = MineWith(
      values, target,
      optrules::bucketing::BucketBoundaries::FromSortedValues(sorted, 20000),
      kMinSupport);
  OPTRULES_CHECK(reference.found);

  optrules::bench::PrintHeader(
      "Ablation (footnote 3): equi-depth vs equi-width bucketing on "
      "skewed data");
  std::printf("reference optimum: support %.2f%%, confidence %.2f%%\n",
              reference.support * 100.0, reference.confidence * 100.0);
  std::printf("%8s | %22s | %22s\n", "buckets",
              "equi-depth supp/conf (%)", "equi-width supp/conf (%)");
  optrules::bench::PrintRule(60);

  bool depth_dominates = true;
  for (const int m : {10, 50, 100, 500, 1000}) {
    // Equi-depth goes through the shared bucketizer dispatch (equi-width
    // is not an equi-depth strategy, so it stays a direct call).
    optrules::bucketing::BoundaryPlan plan;
    plan.num_buckets = m;
    plan.seed = 556 + static_cast<uint64_t>(m);
    const optrules::rules::RangeRule depth = MineWith(
        values, target, optrules::bucketing::BuildBoundaries(values, plan),
        kMinSupport);
    const optrules::rules::RangeRule width = MineWith(
        values, target,
        optrules::bucketing::EquiWidthBoundaries(values, m), kMinSupport);

    std::printf("%8d | %9.2f / %9.2f | ", m,
                depth.found ? depth.support * 100.0 : 0.0,
                depth.found ? depth.confidence * 100.0 : 0.0);
    if (width.found) {
      std::printf("%9.2f / %9.2f\n", width.support * 100.0,
                  width.confidence * 100.0);
    } else {
      std::printf("%22s\n", "(none found)");
    }
    const double depth_conf = depth.found ? depth.confidence : 0.0;
    const double width_conf = width.found ? width.confidence : 0.0;
    if (m <= 100 && depth_conf < width_conf) depth_dominates = false;
  }
  optrules::bench::PrintRule(60);
  std::printf("Equi-depth confidence >= equi-width at coarse M: %s\n",
              depth_dominates ? "yes" : "NO");
  return depth_dominates ? 0 : 1;
}
