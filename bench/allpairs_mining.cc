// Section 1.3 claim: "the efficiency of our algorithm enables us to
// compute optimized rules for all combinations of hundreds of numeric and
// Boolean attributes in a reasonable time."
//
// Mines both optimized rules for every (numeric, Boolean) attribute pair
// of a synthetic table and reports the end-to-end wall time and the
// per-pair cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/table_generator.h"
#include "rules/miner.h"

int main() {
  const int64_t scale = optrules::bench::BenchScale();
  const int kNumeric = static_cast<int>(20 * scale);
  const int kBoolean = static_cast<int>(20 * scale);
  const int64_t kRows = 100000;

  optrules::datagen::TableConfig config;
  config.num_rows = kRows;
  config.num_numeric = kNumeric;
  config.num_boolean = kBoolean;
  // Plant a handful of real rules so the output is not pure noise.
  for (int r = 0; r < 5; ++r) {
    optrules::datagen::PlantedRule rule;
    rule.numeric_attr = r % kNumeric;
    rule.boolean_attr = (r * 3) % kBoolean;
    rule.lo = 200000.0 + 50000.0 * r;
    rule.hi = rule.lo + 150000.0;
    rule.prob_inside = 0.7;
    rule.prob_outside = 0.1;
    config.planted_rules.push_back(rule);
  }
  optrules::Rng rng(4242);
  optrules::WallTimer generation_timer;
  const optrules::storage::Relation table =
      optrules::datagen::GenerateTable(config, rng);
  const double generation_seconds = generation_timer.ElapsedSeconds();

  optrules::rules::MinerOptions options;
  options.num_buckets = 1000;
  options.min_support = 0.05;
  options.min_confidence = 0.5;
  optrules::rules::Miner miner(&table, options);

  optrules::WallTimer mining_timer;
  const std::vector<optrules::rules::MinedRule> rules = miner.MineAll();
  const double mining_seconds = mining_timer.ElapsedSeconds();

  int found = 0;
  double best_confidence = 0.0;
  const optrules::rules::MinedRule* best = nullptr;
  for (const optrules::rules::MinedRule& rule : rules) {
    if (!rule.found) continue;
    ++found;
    if (rule.kind == optrules::rules::RuleKind::kOptimizedConfidence &&
        rule.confidence > best_confidence) {
      best_confidence = rule.confidence;
      best = &rule;
    }
  }

  optrules::bench::PrintHeader(
      "All-pairs mining (Section 1.3 'hundreds of attributes' claim)");
  std::printf("table: %lld rows, %d numeric x %d boolean attributes\n",
              static_cast<long long>(kRows), kNumeric, kBoolean);
  std::printf("generation time:   %8.2f s\n", generation_seconds);
  std::printf("mining time:       %8.2f s  (%d pairs, 2 rules each)\n",
              mining_seconds, kNumeric * kBoolean);
  std::printf("per pair:          %8.3f ms\n",
              1e3 * mining_seconds / (kNumeric * kBoolean));
  std::printf("rules found:       %d of %zu\n", found, rules.size());
  if (best != nullptr) {
    std::printf("best confidence rule: %s\n", best->ToString().c_str());
  }
  // "Reasonable time": the paper's bar is minutes for hundreds of
  // attributes; we require < 60 s per 400 pairs at default scale.
  const bool ok = mining_seconds < 60.0 * scale;
  std::printf("Shape check (all pairs mined in reasonable time): %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
