// Section 1.3 claim: "the efficiency of our algorithm enables us to
// compute optimized rules for all combinations of hundreds of numeric and
// Boolean attributes in a reasonable time."
//
// Mines both optimized rules for every (numeric, Boolean) attribute pair
// of a synthetic table twice -- once with the legacy per-attribute miner
// (one counting scan per numeric attribute) and once with the
// MiningEngine batch core (ONE shared counting scan for everything) --
// verifies the outputs are identical, and reports both wall times. A
// second stage re-mines every pair at three more threshold sets straight
// from the engine's cached counts (the threshold-sweep API) and runs
// generalized + aggregate queries from the same session, asserting the
// scan count never moves.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/table_generator.h"
#include "rules/miner.h"

namespace {

bool SameRules(const std::vector<optrules::rules::MinedRule>& a,
               const std::vector<optrules::rules::MinedRule>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].found != b[i].found || a[i].kind != b[i].kind ||
        a[i].numeric_attr != b[i].numeric_attr ||
        a[i].boolean_attr != b[i].boolean_attr ||
        a[i].range_lo != b[i].range_lo || a[i].range_hi != b[i].range_hi ||
        a[i].support_count != b[i].support_count ||
        a[i].hit_count != b[i].hit_count) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const int64_t scale = optrules::bench::BenchScale();
  const int kNumeric = static_cast<int>(20 * scale);
  const int kBoolean = static_cast<int>(20 * scale);
  const int64_t kRows = 100000;
  optrules::bench::JsonReporter json("allpairs_mining");

  optrules::datagen::TableConfig config;
  config.num_rows = kRows;
  config.num_numeric = kNumeric;
  config.num_boolean = kBoolean;
  // Plant a handful of real rules so the output is not pure noise.
  for (int r = 0; r < 5; ++r) {
    optrules::datagen::PlantedRule rule;
    rule.numeric_attr = r % kNumeric;
    rule.boolean_attr = (r * 3) % kBoolean;
    rule.lo = 200000.0 + 50000.0 * r;
    rule.hi = rule.lo + 150000.0;
    rule.prob_inside = 0.7;
    rule.prob_outside = 0.1;
    config.planted_rules.push_back(rule);
  }
  optrules::Rng rng(4242);
  optrules::WallTimer generation_timer;
  const optrules::storage::Relation table =
      optrules::datagen::GenerateTable(config, rng);
  const double generation_seconds = generation_timer.ElapsedSeconds();

  optrules::rules::MinerOptions options;
  options.num_buckets = 1000;
  options.min_support = 0.05;
  options.min_confidence = 0.5;

  // Legacy path: one counting scan per numeric attribute.
  optrules::rules::Miner miner(&table, options);
  optrules::WallTimer legacy_timer;
  const std::vector<optrules::rules::MinedRule> legacy = miner.MineAll();
  const double legacy_seconds = legacy_timer.ElapsedSeconds();

  // Batch core: one shared counting scan for all pairs, on the pool. The
  // session also registers a generalized condition and an aggregate
  // target so their channels ride along in the same scan.
  optrules::rules::MiningEngine engine(&table, options,
                                       &optrules::DefaultThreadPool());
  engine.RequestGeneralized({"bool0"});
  engine.RequestAverageTarget("num1");
  optrules::WallTimer engine_timer;
  const std::vector<optrules::rules::MinedRule> rules =
      engine.MineAllPairs();
  const double engine_seconds = engine_timer.ElapsedSeconds();
  const bool identical = SameRules(legacy, rules);

  // Threshold sweep: every pair re-mined at three more threshold sets,
  // each costing O(M) per pair on the cached counts -- no rescans.
  const optrules::rules::ThresholdSet sweep[] = {
      {0.01, 0.3}, {0.10, 0.6}, {0.25, 0.9}};
  optrules::WallTimer sweep_timer;
  const std::vector<optrules::rules::MinedRule> swept =
      engine.MineAllPairs(sweep);
  const double sweep_seconds = sweep_timer.ElapsedSeconds();

  // Generalized + aggregate queries from the same session cache.
  optrules::WallTimer extra_timer;
  const auto generalized = engine.MineGeneralized("num0", {"bool0"}, "bool1");
  const auto average = engine.MineMaximumAverageRange("num0", "num1", 0.05);
  const double extra_seconds = extra_timer.ElapsedSeconds();
  const bool extras_ok = generalized.ok() && average.ok();

  int found = 0;
  double best_confidence = 0.0;
  const optrules::rules::MinedRule* best = nullptr;
  for (const optrules::rules::MinedRule& rule : rules) {
    if (!rule.found) continue;
    ++found;
    if (rule.kind == optrules::rules::RuleKind::kOptimizedConfidence &&
        rule.confidence > best_confidence) {
      best_confidence = rule.confidence;
      best = &rule;
    }
  }

  optrules::bench::PrintHeader(
      "All-pairs mining (Section 1.3 'hundreds of attributes' claim)");
  std::printf("table: %lld rows, %d numeric x %d boolean attributes\n",
              static_cast<long long>(kRows), kNumeric, kBoolean);
  std::printf("generation time:   %8.2f s\n", generation_seconds);
  std::printf("legacy miner:      %8.2f s  (%d counting scans)\n",
              legacy_seconds, kNumeric);
  std::printf("batch engine:      %8.2f s  (%lld counting scan)\n",
              engine_seconds,
              static_cast<long long>(engine.counting_scans()));
  std::printf("engine speedup:    %8.2fx\n",
              legacy_seconds / engine_seconds);
  std::printf("per pair (engine): %8.3f ms\n",
              1e3 * engine_seconds / (kNumeric * kBoolean));
  std::printf("threshold sweep:   %8.2f s  (%zu threshold sets, %zu rules, "
              "0 extra scans)\n",
              sweep_seconds, std::size(sweep), swept.size());
  std::printf("generalized + avg: %8.4f s  (same session cache)\n",
              extra_seconds);
  std::printf("rules found:       %d of %zu\n", found, rules.size());
  std::printf("engine == legacy:  %s\n", identical ? "yes" : "NO");
  if (best != nullptr) {
    std::printf("best confidence rule: %s\n", best->ToString().c_str());
  }
  json.Add("rows", kRows);
  json.Add("pairs", static_cast<int64_t>(kNumeric) * kBoolean);
  json.Add("generation_seconds", generation_seconds);
  json.Add("legacy_seconds", legacy_seconds);
  json.Add("engine_seconds", engine_seconds);
  json.Add("engine_counting_scans", engine.counting_scans());
  json.Add("sweep_seconds", sweep_seconds);
  json.Add("sweep_rules", static_cast<int64_t>(swept.size()));
  json.Add("extra_query_seconds", extra_seconds);
  json.Add("rules_found", static_cast<int64_t>(found));
  json.Add("identical", identical);

  // "Reasonable time": the paper's bar is minutes for hundreds of
  // attributes; we require < 60 s per 400 pairs at default scale, one
  // shared scan (sweeps, generalized, and aggregate queries included),
  // and bit-identical output to the reference miner.
  const bool ok = engine_seconds < 60.0 * scale && identical && extras_ok &&
                  engine.counting_scans() == 1;
  std::printf("Shape check (one shared scan, identical rules, reasonable "
              "time): %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
