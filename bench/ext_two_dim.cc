// Extension benchmark (Section 1.4): two-dimensional optimized regions.
//
// Part 1 times the O(ny^2 nx) optimized rectangle miners and the
// O(nx ny^2) x-monotone gain DP across grid sizes, and verifies on planted
// grids that (a) the rectangle miners recover a planted 2-D block and (b)
// the x-monotone region's gain dominates the rectangle gain.
//
// Part 2 times the grid COUNTING itself through the MiningEngine's grid
// channel -- in memory and out-of-core over a PagedFile (synchronous and
// double-buffered) -- and cross-checks every path bit-identical against
// the legacy row-at-a-time region::BuildGrid reference.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "region/grid.h"
#include "region/rectangle.h"
#include "region/xmonotone.h"
#include "rules/miner.h"
#include "storage/paged_file.h"

namespace {

optrules::region::GridCounts PlantedGrid(int n, uint64_t seed) {
  optrules::Rng rng(seed);
  optrules::region::GridCounts grid(n, n);
  const int lo = n / 4;
  const int hi = n / 2;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const bool hot = lo <= x && x <= hi && lo <= y && y <= hi;
      for (int k = 0; k < 20; ++k) {
        grid.Add(x, y, rng.NextBernoulli(hot ? 0.8 : 0.1));
      }
    }
  }
  return grid;
}

/// Rows with a hot rectangle planted in (num0, num1) value space.
optrules::storage::Relation PlantedRelation(int64_t rows, uint64_t seed) {
  optrules::Rng rng(seed);
  optrules::storage::Relation relation(
      optrules::storage::Schema::Synthetic(2, 1));
  std::vector<double> numeric(2);
  std::vector<uint8_t> boolean(1);
  for (int64_t row = 0; row < rows; ++row) {
    numeric[0] = rng.NextUniform(0.0, 1e6);
    numeric[1] = rng.NextUniform(0.0, 1e6);
    const bool hot = 2.5e5 <= numeric[0] && numeric[0] <= 5e5 &&
                     2.5e5 <= numeric[1] && numeric[1] <= 5e5;
    boolean[0] = rng.NextBernoulli(hot ? 0.8 : 0.1) ? 1 : 0;
    relation.AppendRow(numeric, boolean);
  }
  return relation;
}

bool SameRegionRule(const optrules::region::RegionRule& a,
                    const optrules::region::RegionRule& b) {
  return a.found == b.found && a.x1 == b.x1 && a.x2 == b.x2 &&
         a.y1 == b.y1 && a.y2 == b.y2 &&
         a.support_count == b.support_count && a.hit_count == b.hit_count &&
         a.support == b.support && a.confidence == b.confidence;
}

bool SameMinedRegion(const optrules::rules::MinedRegion& a,
                     const optrules::rules::MinedRegion& b) {
  return a.found == b.found && a.nx == b.nx && a.ny == b.ny &&
         a.total_tuples == b.total_tuples &&
         SameRegionRule(a.confidence_rectangle, b.confidence_rectangle) &&
         SameRegionRule(a.support_rectangle, b.support_rectangle) &&
         a.xmonotone_gain.found == b.xmonotone_gain.found &&
         a.xmonotone_gain.x_begin == b.xmonotone_gain.x_begin &&
         a.xmonotone_gain.column_ranges == b.xmonotone_gain.column_ranges &&
         a.xmonotone_gain.support_count == b.xmonotone_gain.support_count &&
         a.xmonotone_gain.hit_count == b.xmonotone_gain.hit_count &&
         a.xmonotone_gain.gain == b.xmonotone_gain.gain;
}

}  // namespace

int main() {
  const int64_t scale = optrules::bench::BenchScale();
  optrules::bench::JsonReporter json("ext_two_dim");
  optrules::bench::PrintHeader(
      "Extension (Section 1.4): optimized 2-D regions on an n x n grid");
  std::printf("%6s %16s %16s %16s\n", "n", "conf rect (s)",
              "supp rect (s)", "x-monotone (s)");
  optrules::bench::PrintRule(58);

  bool ok = true;
  for (const int base_n : {16, 32, 64, 128}) {
    const int n = static_cast<int>(base_n * scale);
    const optrules::region::GridCounts grid =
        PlantedGrid(n, 900 + static_cast<uint64_t>(n));

    optrules::WallTimer t1;
    const optrules::region::RegionRule rect =
        optrules::region::OptimizedConfidenceRectangle(
            grid, grid.total_tuples() / 20);
    const double conf_seconds = t1.ElapsedSeconds();

    optrules::WallTimer t2;
    const optrules::region::RegionRule supp =
        optrules::region::OptimizedSupportRectangle(grid,
                                                    optrules::Ratio(1, 2));
    const double supp_seconds = t2.ElapsedSeconds();

    optrules::WallTimer t3;
    const optrules::region::XMonotoneRegion xmono =
        optrules::region::MaxGainXMonotoneRegion(grid,
                                                 optrules::Ratio(1, 2));
    const double xmono_seconds = t3.ElapsedSeconds();

    std::printf("%6d %16.4f %16.4f %16.4f\n", n, conf_seconds,
                supp_seconds, xmono_seconds);
    json.Add("conf_rect_seconds_n" + std::to_string(n), conf_seconds);
    json.Add("supp_rect_seconds_n" + std::to_string(n), supp_seconds);
    json.Add("xmonotone_seconds_n" + std::to_string(n), xmono_seconds);

    // Planted-block recovery: the confidence rectangle must land inside a
    // one-bucket margin of the planted block.
    const int lo = n / 4;
    const int hi = n / 2;
    if (!rect.found || rect.x1 < lo - 1 || rect.x2 > hi + 1 ||
        rect.y1 < lo - 1 || rect.y2 > hi + 1 || rect.confidence < 0.6) {
      ok = false;
    }
    if (!supp.found || supp.support_count <= 0) ok = false;
    // X-monotone gain dominates the best rectangle gain by construction.
    const double rect_gain = 2.0 * static_cast<double>(rect.hit_count) -
                             static_cast<double>(rect.support_count);
    if (!xmono.found || xmono.gain + 1e-9 < rect_gain) ok = false;
  }
  optrules::bench::PrintRule(58);
  std::printf("Shape check (planted block recovered; x-monotone gain >= "
              "rectangle gain): %s\n",
              ok ? "yes" : "NO");

  // ---- Part 2: grid counting through the engine's grid channel ----
  const int64_t rows = 200000 * scale;
  const optrules::storage::Relation relation = PlantedRelation(rows, 77);
  optrules::rules::MinerOptions options;
  options.num_buckets = 100;
  options.region_grid_buckets = 32;
  options.bucketizer = optrules::rules::Bucketizer::kGkSketch;

  optrules::bench::PrintHeader(
      "Grid channel: one-scan 2-D counting, in memory and out-of-core");
  std::printf("rows: %lld, grid %d x %d\n\n", static_cast<long long>(rows),
              options.region_grid_buckets, options.region_grid_buckets);

  // Legacy reference: private row-at-a-time BuildGrid pass.
  optrules::rules::Miner legacy(&relation, options);
  optrules::WallTimer legacy_timer;
  const auto legacy_region =
      legacy.MineOptimizedRegion("num0", "num1", "bool0");
  const double legacy_seconds = legacy_timer.ElapsedSeconds();
  if (!legacy_region.ok()) return 1;

  // Engine over the in-memory relation: region grid + every 1-D pair from
  // ONE counting scan.
  optrules::rules::MiningEngine memory_engine(&relation, options);
  if (!memory_engine.RequestRegionPair("num0", "num1").ok()) return 1;
  optrules::WallTimer memory_timer;
  memory_engine.MineAllPairs();
  const auto memory_region =
      memory_engine.MineOptimizedRegion("num0", "num1", "bool0");
  const double memory_seconds = memory_timer.ElapsedSeconds();
  if (!memory_region.ok()) return 1;

  // Out-of-core: the same session shape over a PagedFile, synchronous and
  // double-buffered.
  const std::string path = "/tmp/optrules_ext_two_dim.optr";
  if (!optrules::storage::WriteRelationToFile(relation, path).ok()) return 1;
  double paged_seconds[2] = {0.0, 0.0};
  optrules::rules::MinedRegion paged_region[2];
  const optrules::storage::PagedReadMode modes[2] = {
      optrules::storage::PagedReadMode::kSynchronous,
      optrules::storage::PagedReadMode::kDoubleBuffered};
  for (int m = 0; m < 2; ++m) {
    auto source_or =
        optrules::storage::PagedFileBatchSource::Open(path, 4096, modes[m]);
    if (!source_or.ok()) return 1;
    optrules::rules::MiningEngine engine(source_or.value().get(),
                                         relation.schema(), options);
    if (!engine.RequestRegionPair("num0", "num1").ok()) return 1;
    optrules::WallTimer timer;
    engine.MineAllPairs();
    auto region_or = engine.MineOptimizedRegion("num0", "num1", "bool0");
    paged_seconds[m] = timer.ElapsedSeconds();
    if (!region_or.ok() || engine.counting_scans() != 1) return 1;
    paged_region[m] = region_or.value();
  }
  std::remove(path.c_str());

  const bool regions_match =
      SameMinedRegion(memory_region.value(), legacy_region.value()) &&
      SameMinedRegion(paged_region[0], legacy_region.value()) &&
      SameMinedRegion(paged_region[1], legacy_region.value());
  if (!regions_match) ok = false;

  std::printf("%-44s %10.3f s\n", "legacy BuildGrid + region miners",
              legacy_seconds);
  std::printf("%-44s %10.3f s\n",
              "engine in-memory (all pairs + region, 1 scan)",
              memory_seconds);
  std::printf("%-44s %10.3f s\n", "engine PagedFile synchronous",
              paged_seconds[0]);
  std::printf("%-44s %10.3f s\n", "engine PagedFile double-buffered",
              paged_seconds[1]);
  std::printf("engine == legacy on every path: %s\n",
              regions_match ? "yes" : "NO");
  json.Add("legacy_region_seconds", legacy_seconds);
  json.Add("engine_memory_seconds", memory_seconds);
  json.Add("engine_paged_sync_seconds", paged_seconds[0]);
  json.Add("engine_paged_buffered_seconds", paged_seconds[1]);
  json.Add("rows", rows);
  json.Add("regions_match", regions_match);
  json.Add("shape_ok", ok);
  return ok ? 0 : 1;
}
