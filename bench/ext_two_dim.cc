// Extension benchmark (Section 1.4): two-dimensional optimized regions.
//
// Times the O(ny^2 nx) optimized rectangle miners and the O(nx ny^2)
// x-monotone gain DP across grid sizes, and verifies on planted data that
// (a) the rectangle miners recover a planted 2-D block and (b) the
// x-monotone region's gain dominates the rectangle gain.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "region/grid.h"
#include "region/rectangle.h"
#include "region/xmonotone.h"

namespace {

optrules::region::GridCounts PlantedGrid(int n, uint64_t seed) {
  optrules::Rng rng(seed);
  optrules::region::GridCounts grid(n, n);
  const int lo = n / 4;
  const int hi = n / 2;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const bool hot = lo <= x && x <= hi && lo <= y && y <= hi;
      for (int k = 0; k < 20; ++k) {
        grid.Add(x, y, rng.NextBernoulli(hot ? 0.8 : 0.1));
      }
    }
  }
  return grid;
}

}  // namespace

int main() {
  const int64_t scale = optrules::bench::BenchScale();
  optrules::bench::PrintHeader(
      "Extension (Section 1.4): optimized 2-D regions on an n x n grid");
  std::printf("%6s %16s %16s %16s\n", "n", "conf rect (s)",
              "supp rect (s)", "x-monotone (s)");
  optrules::bench::PrintRule(58);

  bool ok = true;
  for (const int base_n : {16, 32, 64, 128}) {
    const int n = static_cast<int>(base_n * scale);
    const optrules::region::GridCounts grid =
        PlantedGrid(n, 900 + static_cast<uint64_t>(n));

    optrules::WallTimer t1;
    const optrules::region::RegionRule rect =
        optrules::region::OptimizedConfidenceRectangle(
            grid, grid.total_tuples() / 20);
    const double conf_seconds = t1.ElapsedSeconds();

    optrules::WallTimer t2;
    const optrules::region::RegionRule supp =
        optrules::region::OptimizedSupportRectangle(grid,
                                                    optrules::Ratio(1, 2));
    const double supp_seconds = t2.ElapsedSeconds();

    optrules::WallTimer t3;
    const optrules::region::XMonotoneRegion xmono =
        optrules::region::MaxGainXMonotoneRegion(grid,
                                                 optrules::Ratio(1, 2));
    const double xmono_seconds = t3.ElapsedSeconds();

    std::printf("%6d %16.4f %16.4f %16.4f\n", n, conf_seconds,
                supp_seconds, xmono_seconds);

    // Planted-block recovery: the confidence rectangle must land inside a
    // one-bucket margin of the planted block.
    const int lo = n / 4;
    const int hi = n / 2;
    if (!rect.found || rect.x1 < lo - 1 || rect.x2 > hi + 1 ||
        rect.y1 < lo - 1 || rect.y2 > hi + 1 || rect.confidence < 0.6) {
      ok = false;
    }
    if (!supp.found || supp.support_count <= 0) ok = false;
    // X-monotone gain dominates the best rectangle gain by construction.
    const double rect_gain = 2.0 * static_cast<double>(rect.hit_count) -
                             static_cast<double>(rect.support_count);
    if (!xmono.found || xmono.gain + 1e-9 < rect_gain) ok = false;
  }
  optrules::bench::PrintRule(58);
  std::printf("Shape check (planted block recovered; x-monotone gain >= "
              "rectangle gain): %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
