// Section 3.3: parallel bucketing (Algorithm 3.2).
//
// Counts one numeric attribute against 8 Boolean targets with 1..8 worker
// threads and reports the speedup. On a single-core host the curve is
// flat; the harness still verifies that every thread count produces
// identical counts (the algorithm's correctness claim: counting is
// communication-free and exactly partitionable).

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "bucketing/equidepth_sampler.h"
#include "bucketing/parallel_count.h"
#include "common/timer.h"
#include "datagen/table_generator.h"

int main() {
  const int64_t scale = optrules::bench::BenchScale();
  const int64_t rows = 2000000 * scale;

  optrules::datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = 1;
  config.num_boolean = 8;
  optrules::Rng rng(77);
  const optrules::storage::Relation table =
      optrules::datagen::GenerateTable(config, rng);

  optrules::bucketing::SamplerOptions sampler;
  sampler.num_buckets = 1000;
  optrules::Rng sample_rng(78);
  const optrules::bucketing::BucketBoundaries boundaries =
      optrules::bucketing::BuildEquiDepthBoundaries(
          table.NumericColumn(0), sampler, sample_rng);

  std::vector<const std::vector<uint8_t>*> targets;
  for (int b = 0; b < 8; ++b) targets.push_back(&table.BooleanColumn(b));

  optrules::bench::PrintHeader(
      "Algorithm 3.2: parallel bucket counting (1000 buckets, 8 targets)");
  std::printf("host hardware threads: %u\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %10s %10s\n", "threads", "time (s)", "speedup",
              "equal?");
  optrules::bench::PrintRule(44);

  double baseline = 0.0;
  optrules::bucketing::BucketCounts reference;
  bool all_equal = true;
  for (const int threads : {1, 2, 4, 8}) {
    optrules::WallTimer timer;
    const optrules::bucketing::BucketCounts counts =
        optrules::bucketing::ParallelCountBuckets(
            table.NumericColumn(0), targets, boundaries, threads);
    const double seconds = timer.ElapsedSeconds();
    if (threads == 1) {
      baseline = seconds;
      reference = counts;
    }
    const bool equal =
        counts.u == reference.u && counts.v == reference.v;
    all_equal = all_equal && equal;
    std::printf("%8d %12.3f %10.2f %10s\n", threads, seconds,
                baseline / seconds, equal ? "yes" : "NO");
  }
  optrules::bench::PrintRule(44);
  std::printf("Counts identical for every thread count: %s\n",
              all_equal ? "yes" : "NO");
  return all_equal ? 0 : 1;
}
