// Section 3.3: parallel bucketing (Algorithm 3.2) on the columnar batch
// core.
//
// Two workloads over the same generated table:
//   1. ParallelCountBuckets -- one numeric attribute against 8 Boolean
//      targets, sharded over a reusable thread pool with 1..8 shards.
//   2. ExecuteMultiCount -- EVERY numeric attribute against every Boolean
//      target in ONE shared scan of a RelationBatchSource, serial vs
//      pooled.
// On a single-core host the speedup curves are flat; the harness still
// verifies that every schedule produces identical counts (the algorithm's
// correctness claim: counting is communication-free and exactly
// partitionable).

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "bucketing/equidepth_sampler.h"
#include "bucketing/parallel_count.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/table_generator.h"
#include "storage/columnar_batch.h"

int main() {
  const int64_t scale = optrules::bench::BenchScale();
  const int64_t rows = 2000000 * scale;
  optrules::bench::JsonReporter json("parallel_bucketing");

  optrules::datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = 4;
  config.num_boolean = 8;
  optrules::Rng rng(77);
  const optrules::storage::Relation table =
      optrules::datagen::GenerateTable(config, rng);

  optrules::bucketing::SamplerOptions sampler;
  sampler.num_buckets = 1000;
  optrules::Rng sample_rng(78);
  const optrules::bucketing::BucketBoundaries boundaries =
      optrules::bucketing::BuildEquiDepthBoundaries(
          table.NumericColumn(0), sampler, sample_rng);

  std::vector<const std::vector<uint8_t>*> targets;
  for (int b = 0; b < 8; ++b) targets.push_back(&table.BooleanColumn(b));

  optrules::bench::PrintHeader(
      "Algorithm 3.2: parallel bucket counting (1000 buckets, 8 targets)");
  std::printf("host hardware threads: %u\n",
              std::thread::hardware_concurrency());
  json.Add("rows", rows);
  json.Add("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
  std::printf("%8s %12s %10s %10s\n", "shards", "time (s)", "speedup",
              "equal?");
  optrules::bench::PrintRule(44);

  double baseline = 0.0;
  optrules::bucketing::BucketCounts reference;
  bool all_equal = true;
  for (const int threads : {1, 2, 4, 8}) {
    optrules::WallTimer timer;
    const optrules::bucketing::BucketCounts counts =
        optrules::bucketing::ParallelCountBuckets(
            table.NumericColumn(0), targets, boundaries, threads);
    const double seconds = timer.ElapsedSeconds();
    if (threads == 1) {
      baseline = seconds;
      reference = counts;
    }
    const bool equal =
        counts.u == reference.u && counts.v == reference.v;
    all_equal = all_equal && equal;
    std::printf("%8d %12.3f %10.2f %10s\n", threads, seconds,
                baseline / seconds, equal ? "yes" : "NO");
    json.Add("count_seconds_shards_" + std::to_string(threads), seconds);
  }
  optrules::bench::PrintRule(44);

  // Multi-pair shared scan: all 4 numeric attributes x 8 targets at once.
  optrules::bench::PrintHeader(
      "Columnar multi-count: 4 numeric x 8 boolean in ONE shared scan");
  std::vector<optrules::bucketing::BucketBoundaries> per_attr;
  for (int a = 0; a < 4; ++a) {
    optrules::Rng attr_rng(200 + static_cast<uint64_t>(a));
    per_attr.push_back(optrules::bucketing::BuildEquiDepthBoundaries(
        table.NumericColumn(a), sampler, attr_rng));
  }
  std::vector<const optrules::bucketing::BucketBoundaries*> bounds;
  for (const auto& b : per_attr) bounds.push_back(&b);

  std::printf("%8s %12s %10s %10s\n", "pool", "time (s)", "speedup",
              "equal?");
  optrules::bench::PrintRule(44);
  double multi_baseline = 0.0;
  std::vector<optrules::bucketing::BucketCounts> multi_reference;
  bool multi_equal = true;
  for (const int pool_size : {1, 2, 4, 8}) {
    optrules::storage::RelationBatchSource source(&table);
    optrules::bucketing::MultiCountPlan plan(bounds, 8);
    optrules::ThreadPool pool(pool_size);
    optrules::WallTimer timer;
    optrules::bucketing::ExecuteMultiCount(
        source, &plan, pool_size == 1 ? nullptr : &pool);
    const double seconds = timer.ElapsedSeconds();
    bool equal = true;
    if (pool_size == 1) {
      multi_baseline = seconds;
      for (int a = 0; a < 4; ++a) {
        multi_reference.push_back(plan.TakeCounts(a));
      }
    } else {
      for (int a = 0; a < 4; ++a) {
        const auto& counts = plan.counts(a);
        equal = equal &&
                counts.u == multi_reference[static_cast<size_t>(a)].u &&
                counts.v == multi_reference[static_cast<size_t>(a)].v;
      }
    }
    multi_equal = multi_equal && equal;
    std::printf("%8d %12.3f %10.2f %10s\n", pool_size, seconds,
                multi_baseline / seconds, equal ? "yes" : "NO");
    json.Add("multicount_seconds_pool_" + std::to_string(pool_size),
             seconds);
    OPTRULES_CHECK(source.scans_started() == 1);  // one scan, any schedule
  }
  optrules::bench::PrintRule(44);
  std::printf("Counts identical for every schedule: %s\n",
              all_equal && multi_equal ? "yes" : "NO");
  json.Add("all_equal", all_equal && multi_equal);
  return all_equal && multi_equal ? 0 : 1;
}
