// Ablation for the Section 4.2 remark: Kadane's maximum-gain range is not
// the optimized-support rule.
//
// Over many random bucket instances, measures how often the maximum-gain
// range differs from the maximum-support confident range and how much
// support Kadane leaves on the table.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/ratio.h"
#include "rules/kadane.h"
#include "rules/optimized_support.h"

int main() {
  using optrules::Ratio;

  const int64_t scale = optrules::bench::BenchScale();
  const int kInstances = static_cast<int>(2000 * scale);
  const Ratio theta(1, 2);

  int both_found = 0;
  int different_range = 0;
  int kadane_smaller_support = 0;
  double total_support_ratio = 0.0;

  for (int i = 0; i < kInstances; ++i) {
    const optrules::bench::BucketInstance instance =
        optrules::bench::RandomBuckets(50, 10, 0.45,
                                       7000 + static_cast<uint64_t>(i));
    const optrules::rules::RangeRule support =
        optrules::rules::OptimizedSupportRule(instance.u, instance.v,
                                              instance.total, theta);
    const optrules::rules::GainRange kadane =
        optrules::rules::MaxGainRange(instance.u, instance.v, theta);
    if (!support.found || !kadane.found) continue;
    ++both_found;
    if (kadane.s != support.s || kadane.t != support.t) ++different_range;
    int64_t kadane_support = 0;
    for (int b = kadane.s; b <= kadane.t; ++b) {
      kadane_support += instance.u[static_cast<size_t>(b)];
    }
    if (kadane_support < support.support_count) ++kadane_smaller_support;
    total_support_ratio += static_cast<double>(kadane_support) /
                           static_cast<double>(support.support_count);
  }

  optrules::bench::PrintHeader(
      "Ablation (Section 4.2): Kadane max-gain vs optimized-support rule "
      "(theta = 50%)");
  std::printf("instances with both answers:      %d\n", both_found);
  std::printf("different range:                  %d (%.1f%%)\n",
              different_range, 100.0 * different_range / both_found);
  std::printf("Kadane strictly less support:     %d (%.1f%%)\n",
              kadane_smaller_support,
              100.0 * kadane_smaller_support / both_found);
  std::printf("avg Kadane/optimal support ratio: %.3f\n",
              total_support_ratio / both_found);
  // Kadane must never win, and must lose support often enough to justify
  // the dedicated algorithm.
  const bool ok = kadane_smaller_support > both_found / 4;
  std::printf("Shape check (Kadane frequently sub-optimal): %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
