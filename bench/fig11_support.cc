// Figure 11: finding optimized support rules -- effective-index algorithm
// vs the naive quadratic scan, minimum confidence 50%.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/ratio.h"
#include "common/timer.h"
#include "rules/naive.h"
#include "rules/optimized_support.h"

int main() {
  using optrules::Ratio;
  using optrules::bench::BucketInstance;
  using optrules::rules::NaiveOptimizedSupportRule;
  using optrules::rules::OptimizedSupportRule;
  using optrules::rules::RangeRule;

  const int64_t scale = optrules::bench::BenchScale();
  const Ratio kMinConfidence(1, 2);

  optrules::bench::PrintHeader(
      "Figure 11: finding optimized support rules (min confidence 50%)");
  std::printf("%10s %14s %14s %10s\n", "buckets", "linear O(M) (s)",
              "naive O(M^2) (s)", "speedup");
  optrules::bench::PrintRule(52);

  bool shape_ok = true;
  const int64_t naive_cap = 30000 * scale;
  for (const int64_t m :
       {100LL, 300LL, 1000LL, 3000LL, 10000LL, 30000LL, 100000LL, 300000LL,
        1000000LL}) {
    // Hit rate near the threshold so the answer is non-trivial.
    const BucketInstance instance =
        optrules::bench::RandomBuckets(m, 20, 0.45, 11000 + m);

    const int reps = m <= 1000 ? 200 : (m <= 30000 ? 20 : 2);
    optrules::WallTimer fast_timer;
    RangeRule fast;
    for (int r = 0; r < reps; ++r) {
      fast = OptimizedSupportRule(instance.u, instance.v, instance.total,
                                  kMinConfidence);
    }
    const double fast_seconds = fast_timer.ElapsedSeconds() / reps;

    if (m <= naive_cap) {
      optrules::WallTimer naive_timer;
      const RangeRule naive = NaiveOptimizedSupportRule(
          instance.u, instance.v, instance.total, kMinConfidence);
      const double naive_seconds = naive_timer.ElapsedSeconds();
      OPTRULES_CHECK(fast.found == naive.found);
      if (fast.found) {
        OPTRULES_CHECK(fast.support_count == naive.support_count);
      }
      std::printf("%10lld %14.6f %14.6f %10.1f\n",
                  static_cast<long long>(m), fast_seconds, naive_seconds,
                  naive_seconds / fast_seconds);
      if (m >= 1000 && naive_seconds < 10.0 * fast_seconds) {
        shape_ok = false;
      }
    } else {
      std::printf("%10lld %14.6f %14s %10s\n", static_cast<long long>(m),
                  fast_seconds, "(skipped)", "-");
    }
  }
  optrules::bench::PrintRule(52);
  std::printf("Shape check (linear algorithm >= 10x faster at >= 1000 "
              "buckets, results identical): %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
