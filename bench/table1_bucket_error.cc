// Table I: error range of the bucket approximation as a function of the
// number of buckets, for an optimal range with support 30% and confidence
// 70%.
//
// Prints (a) the analytic worst-case band of Section 3.4 and (b) an
// empirical measurement: a rule with those statistics is planted in a
// uniform attribute, mined with M buckets, and the mined support and
// confidence are compared with the planted optimum.

#include <cstdio>

#include "bench/bench_util.h"
#include "bucketing/error_bounds.h"
#include "datagen/table_generator.h"
#include "rules/miner.h"

namespace {

using optrules::bucketing::ApproxErrorBounds;
using optrules::bucketing::BucketApproximationBounds;

constexpr double kSupportOpt = 0.30;
constexpr double kConfidenceOpt = 0.70;

optrules::storage::Relation PlantedTable(int64_t rows) {
  optrules::datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = 1;
  config.num_boolean = 1;
  optrules::datagen::PlantedRule rule;
  rule.numeric_attr = 0;
  rule.boolean_attr = 0;
  // 30% of Uniform(0, 1e6); confidence 70% inside, low outside so the
  // planted band is the unique optimum.
  rule.lo = 350000.0;
  rule.hi = 650000.0;
  rule.prob_inside = kConfidenceOpt;
  rule.prob_outside = 0.05;
  config.planted_rules.push_back(rule);
  optrules::Rng rng(2024);
  return optrules::datagen::GenerateTable(config, rng);
}

}  // namespace

int main() {
  const int64_t rows = 200000 * optrules::bench::BenchScale();
  const optrules::storage::Relation table = PlantedTable(rows);

  optrules::bench::PrintHeader(
      "Table I: approximation error vs number of buckets "
      "(support_opt = 30%, conf_opt = 70%)");
  std::printf("%8s | %23s | %23s | %23s\n", "buckets",
              "support bound (%)", "confidence bound (%)",
              "measured supp/conf (%)");
  optrules::bench::PrintRule(84);

  bool all_inside = true;
  for (const int buckets : {10, 50, 100, 500, 1000}) {
    const ApproxErrorBounds bounds =
        BucketApproximationBounds(kSupportOpt, kConfidenceOpt, buckets);

    optrules::rules::MinerOptions options;
    options.num_buckets = buckets;
    // Mine at exactly the optimum's support so the fine-grained optimal
    // range is the planted band itself; the miner's answer is then the
    // bucket approximation whose error Table I bounds. (The miner always
    // enforces the ampleness constraint, so only the upper support
    // deviation and the lower confidence deviation can be observed.)
    options.min_support = kSupportOpt;
    options.seed = 7;
    optrules::rules::Miner miner(&table, options);
    const optrules::rules::MinedRule mined =
        miner.MinePair("num0", "bool0").value()[0];

    std::printf("%8d | %10.2f ... %8.2f | %10.2f ... %8.2f |", buckets,
                bounds.support_lo * 100.0, bounds.support_hi * 100.0,
                bounds.confidence_lo * 100.0, bounds.confidence_hi * 100.0);
    if (mined.found) {
      std::printf(" %9.2f / %9.2f\n", mined.support * 100.0,
                  mined.confidence * 100.0);
      // Sampling adds noise on top of the bucket-granularity bound; allow
      // one extra bucket of slack per side when checking.
      const double slack = 1.0 / buckets + 0.01;
      if (mined.confidence < bounds.confidence_lo - slack ||
          mined.support < bounds.support_lo - slack ||
          mined.support > bounds.support_hi + slack) {
        all_inside = false;
      }
    } else {
      std::printf("   (no ample range found)\n");
      all_inside = false;
    }
  }
  optrules::bench::PrintRule(84);
  std::printf("All measured values inside the analytic band (with one "
              "bucket of sampling slack): %s\n",
              all_inside ? "yes" : "NO");
  return all_inside ? 0 : 1;
}
