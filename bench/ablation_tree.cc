// Ablation (Section 1.5): decision trees with optimized range splits vs
// classic point (guillotine) splits, at equal depth budgets.
//
// Target concepts are interior bands of a numeric attribute -- exactly the
// shape optimized range rules capture in one predicate and point splits
// need two cuts for. Reports training/holdout accuracy per depth.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "storage/relation.h"
#include "tree/decision_tree.h"

namespace {

optrules::storage::Relation TwoBandData(int64_t rows, double noise,
                                        uint64_t seed) {
  optrules::storage::Relation relation(
      optrules::storage::Schema::Synthetic(3, 1));
  optrules::Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    const double a = rng.NextUniform(0.0, 100.0);
    const double b = rng.NextUniform(0.0, 100.0);
    const double c = rng.NextUniform(0.0, 100.0);
    bool label = (15.0 <= a && a <= 35.0) ||
                 (60.0 <= b && b <= 80.0);
    if (rng.NextBernoulli(noise)) label = !label;
    const double numeric[] = {a, b, c};
    const uint8_t boolean[] = {label ? uint8_t{1} : uint8_t{0}};
    relation.AppendRow(numeric, boolean);
  }
  return relation;
}

}  // namespace

int main() {
  const int64_t scale = optrules::bench::BenchScale();
  const int64_t rows = 50000 * scale;
  const optrules::storage::Relation train = TwoBandData(rows, 0.05, 1);
  const optrules::storage::Relation test = TwoBandData(rows / 5, 0.05, 2);

  optrules::bench::PrintHeader(
      "Ablation (Section 1.5): range-split vs point-split decision trees");
  std::printf("concept: (num0 in [15,35]) OR (num1 in [60,80]), 5%% label "
              "noise; Bayes accuracy = 95%%\n");
  std::printf("%6s | %21s | %21s\n", "depth", "range train/test (%)",
              "point train/test (%)");
  optrules::bench::PrintRule(56);

  bool range_wins_shallow = true;
  for (const int depth : {1, 2, 3, 4}) {
    optrules::tree::TreeOptions range;
    range.max_depth = depth;
    range.split_family = optrules::tree::SplitFamily::kRange;
    optrules::tree::TreeOptions point = range;
    point.split_family = optrules::tree::SplitFamily::kPointOnly;

    const auto range_tree =
        optrules::tree::DecisionTree::Train(train, "bool0", range);
    const auto point_tree =
        optrules::tree::DecisionTree::Train(train, "bool0", point);
    OPTRULES_CHECK(range_tree.ok() && point_tree.ok());
    const double range_train = range_tree.value().Accuracy(train) * 100.0;
    const double range_test = range_tree.value().Accuracy(test) * 100.0;
    const double point_train = point_tree.value().Accuracy(train) * 100.0;
    const double point_test = point_tree.value().Accuracy(test) * 100.0;
    std::printf("%6d | %9.2f / %9.2f | %9.2f / %9.2f\n", depth,
                range_train, range_test, point_train, point_test);
    if (depth <= 2 && range_test < point_test) range_wins_shallow = false;
  }
  optrules::bench::PrintRule(56);
  std::printf("Shape check (range splits dominate at shallow depths): %s\n",
              range_wins_shallow ? "yes" : "NO");
  return range_wins_shallow ? 0 : 1;
}
