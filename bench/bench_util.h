// Shared helpers for the paper-figure benchmark harnesses.
//
// Each harness is a standalone binary that prints the rows/series of one
// table or figure from the paper. `OPTRULES_BENCH_SCALE` (a positive
// integer, default 1) multiplies the workload sizes for users who want to
// run closer to the paper's original scale.

#ifndef OPTRULES_BENCH_BENCH_UTIL_H_
#define OPTRULES_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"

namespace optrules::bench {

/// Reads OPTRULES_BENCH_SCALE (>= 1, default 1).
inline int64_t BenchScale() {
  const char* env = std::getenv("OPTRULES_BENCH_SCALE");
  if (env == nullptr) return 1;
  const long long value = std::atoll(env);
  return value >= 1 ? static_cast<int64_t>(value) : 1;
}

/// Random bucket-count instance (u_i in [1, max_u], v_i in [0, u_i]).
struct BucketInstance {
  std::vector<int64_t> u;
  std::vector<int64_t> v;
  int64_t total = 0;
};

inline BucketInstance RandomBuckets(int64_t m, int64_t max_u,
                                    double hit_rate, uint64_t seed) {
  Rng rng(seed);
  BucketInstance instance;
  instance.u.resize(static_cast<size_t>(m));
  instance.v.resize(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    const int64_t u = rng.NextInt(1, max_u);
    int64_t v = 0;
    for (int64_t k = 0; k < u; ++k) {
      if (rng.NextBernoulli(hit_rate)) ++v;
    }
    instance.u[static_cast<size_t>(i)] = u;
    instance.v[static_cast<size_t>(i)] = v;
    instance.total += u;
  }
  return instance;
}

/// Prints a separator line sized to `width` characters.
inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace optrules::bench

#endif  // OPTRULES_BENCH_BENCH_UTIL_H_
