// Shared helpers for the paper-figure benchmark harnesses.
//
// Each harness is a standalone binary that prints the rows/series of one
// table or figure from the paper. `OPTRULES_BENCH_SCALE` (a positive
// integer, default 1) multiplies the workload sizes for users who want to
// run closer to the paper's original scale. `OPTRULES_BENCH_JSON` (set to
// anything but "0") additionally emits one machine-readable JSON object
// per harness on stdout, so benchmark trajectories (BENCH_*.json) can be
// collected without scraping the human tables.

#ifndef OPTRULES_BENCH_BENCH_UTIL_H_
#define OPTRULES_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"

namespace optrules::bench {

/// Reads OPTRULES_BENCH_SCALE (>= 1, default 1).
inline int64_t BenchScale() {
  const char* env = std::getenv("OPTRULES_BENCH_SCALE");
  if (env == nullptr) return 1;
  const long long value = std::atoll(env);
  return value >= 1 ? static_cast<int64_t>(value) : 1;
}

/// True when OPTRULES_BENCH_JSON is set (and not "0").
inline bool BenchJsonEnabled() {
  const char* env = std::getenv("OPTRULES_BENCH_JSON");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Accumulates metrics for one harness and, when BenchJsonEnabled(),
/// prints them as a single-line JSON object at destruction:
///   {"bench":"<name>","scale":N,"metrics":{"k":v,...}}
/// Keys are emitted in insertion order; repeated keys are allowed (later
/// entries win for standard JSON parsers, so use distinct keys).
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    if (!BenchJsonEnabled()) return;
    std::printf("{\"bench\":\"%s\",\"scale\":%lld,\"metrics\":{",
                bench_name_.c_str(),
                static_cast<long long>(BenchScale()));
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::printf("%s\"%s\":%s", i == 0 ? "" : ",",
                  entries_[i].first.c_str(), entries_[i].second.c_str());
    }
    std::printf("}}\n");
  }

  void Add(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    entries_.emplace_back(key, buffer);
  }
  void Add(const std::string& key, int64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }
  void AddString(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");
  }

  /// Flattens a registry snapshot into the metrics object: counters and
  /// gauges by name, histograms as <name>.count / <name>.sum. Harnesses
  /// call this once at the end so the emitted JSON carries the same
  /// numbers the serve daemon would ship in a kMetricsReply.
  void AddRegistrySnapshot(const obs::MetricsSnapshot& snapshot,
                           const std::string& prefix = "registry.") {
    for (const auto& [name, value] : snapshot.counters) {
      Add(prefix + name, value);
    }
    for (const auto& [name, value] : snapshot.gauges) {
      Add(prefix + name, value);
    }
    for (const auto& [name, hist] : snapshot.histograms) {
      Add(prefix + name + ".count", hist.count);
      Add(prefix + name + ".sum", hist.sum);
    }
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Random bucket-count instance (u_i in [1, max_u], v_i in [0, u_i]).
struct BucketInstance {
  std::vector<int64_t> u;
  std::vector<int64_t> v;
  int64_t total = 0;
};

inline BucketInstance RandomBuckets(int64_t m, int64_t max_u,
                                    double hit_rate, uint64_t seed) {
  Rng rng(seed);
  BucketInstance instance;
  instance.u.resize(static_cast<size_t>(m));
  instance.v.resize(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    const int64_t u = rng.NextInt(1, max_u);
    int64_t v = 0;
    for (int64_t k = 0; k < u; ++k) {
      if (rng.NextBernoulli(hit_rate)) ++v;
    }
    instance.u[static_cast<size_t>(i)] = u;
    instance.v[static_cast<size_t>(i)] = v;
    instance.total += u;
  }
  return instance;
}

/// Prints a separator line sized to `width` characters.
inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace optrules::bench

#endif  // OPTRULES_BENCH_BENCH_UTIL_H_
