// Figure 10: finding optimized confidence rules -- convex-hull algorithm
// vs the naive quadratic scan, minimum support 5%.
//
// The paper sweeps 100 .. 10^6 buckets; the naive O(M^2) baseline is run
// here up to ~30k buckets (its time is already minutes beyond that) and
// the linear algorithm up to 10^6.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "rules/naive.h"
#include "rules/optimized_confidence.h"

int main() {
  using optrules::bench::BucketInstance;
  using optrules::rules::NaiveOptimizedConfidenceRule;
  using optrules::rules::OptimizedConfidenceRule;
  using optrules::rules::RangeRule;

  const int64_t scale = optrules::bench::BenchScale();
  const double kMinSupport = 0.05;

  optrules::bench::PrintHeader(
      "Figure 10: finding optimized confidence rules (min support 5%)");
  std::printf("%10s %14s %14s %10s\n", "buckets", "hull O(M) (s)",
              "naive O(M^2) (s)", "speedup");
  optrules::bench::PrintRule(52);

  bool shape_ok = true;
  const int64_t naive_cap = 30000 * scale;
  for (const int64_t m :
       {100LL, 300LL, 1000LL, 3000LL, 10000LL, 30000LL, 100000LL, 300000LL,
        1000000LL}) {
    const BucketInstance instance =
        optrules::bench::RandomBuckets(m, 20, 0.3, 9000 + m);
    const int64_t min_support_count = static_cast<int64_t>(
        kMinSupport * static_cast<double>(instance.total));

    // Repeat the fast algorithm enough times to get a measurable reading.
    const int reps = m <= 1000 ? 200 : (m <= 30000 ? 20 : 1);
    optrules::WallTimer fast_timer;
    RangeRule fast;
    for (int r = 0; r < reps; ++r) {
      fast = OptimizedConfidenceRule(instance.u, instance.v, instance.total,
                                     min_support_count);
    }
    const double fast_seconds = fast_timer.ElapsedSeconds() / reps;

    if (m <= naive_cap) {
      optrules::WallTimer naive_timer;
      const RangeRule naive = NaiveOptimizedConfidenceRule(
          instance.u, instance.v, instance.total, min_support_count);
      const double naive_seconds = naive_timer.ElapsedSeconds();
      OPTRULES_CHECK(fast.found == naive.found);
      if (fast.found) {
        OPTRULES_CHECK(fast.support_count == naive.support_count);
        OPTRULES_CHECK(fast.hit_count * naive.support_count ==
                       naive.hit_count * fast.support_count);
      }
      std::printf("%10lld %14.6f %14.6f %10.1f\n",
                  static_cast<long long>(m), fast_seconds, naive_seconds,
                  naive_seconds / fast_seconds);
      if (m >= 1000 && naive_seconds < 10.0 * fast_seconds) {
        shape_ok = false;
      }
    } else {
      std::printf("%10lld %14.6f %14s %10s\n", static_cast<long long>(m),
                  fast_seconds, "(skipped)", "-");
    }
  }
  optrules::bench::PrintRule(52);
  std::printf("Shape check (hull algorithm >= 10x faster at >= 1000 "
              "buckets, results identical): %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
