// Counting-scan microbench: the hot path of Algorithm 3.1 step 4.
//
// The shared counting scan assigns every tuple of every registered channel
// to a bucket; this harness times exactly that kernel over a
// rows x attrs x channels grid, in-memory (RelationBatchSource) and
// out-of-core (PagedFileBatchSource), so the scan's perf trajectory is
// machine-readable (OPTRULES_BENCH_JSON=1). Channel shapes mirror the
// MiningEngine: base channels (attr x all Boolean targets), C conditional
// channels per attribute sharing ONE generalized boundary set (Section
// 4.3), and one sum channel per attribute (Section 5). A standalone
// point-location loop isolates Locate/LocateBatch throughput from the
// scatter passes.

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bucketing/boundaries.h"
#include "bucketing/counting.h"
#include "bucketing/parallel_count.h"
#include "common/timer.h"
#include "datagen/table_generator.h"
#include "dist/coordinator.h"
#include "dist/fault_injection.h"
#include "dist/partitioned_table.h"
#include "dist/scan_worker.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/columnar_batch.h"
#include "storage/paged_file.h"

namespace {

using optrules::bucketing::BoundaryPlan;
using optrules::bucketing::BucketBoundaries;
using optrules::bucketing::BuildBoundaries;
using optrules::bucketing::CountChannel;
using optrules::bucketing::ExecuteMultiCount;
using optrules::bucketing::MultiCountPlan;
using optrules::bucketing::MultiCountSpec;

constexpr int kNumBuckets = 1000;
constexpr int kReps = 3;

/// Engine-shaped spec over the first `attrs` numeric columns: one base
/// channel per attribute, `conditions` conditional channels per attribute
/// (all sharing the per-attribute generalized boundary set, exactly the
/// duplicate-location shape the shared bucket-index cache removes), and one
/// sum channel per attribute when `with_sums`.
MultiCountSpec MakeSpec(const std::vector<BucketBoundaries>& base,
                        const std::vector<BucketBoundaries>& generalized,
                        int attrs, int conditions, int num_boolean,
                        bool with_sums) {
  MultiCountSpec spec;
  spec.num_targets = num_boolean;
  for (int c = 0; c < conditions; ++c) {
    spec.conditions.push_back({c % num_boolean});
  }
  for (int a = 0; a < attrs; ++a) {
    CountChannel channel;
    channel.column = a;
    channel.boundaries = &base[static_cast<size_t>(a)];
    spec.channels.push_back(std::move(channel));
  }
  for (int c = 0; c < conditions; ++c) {
    for (int a = 0; a < attrs; ++a) {
      CountChannel channel;
      channel.column = a;
      channel.boundaries = &generalized[static_cast<size_t>(a)];
      channel.condition = c;
      spec.channels.push_back(std::move(channel));
    }
  }
  if (with_sums) {
    for (int a = 0; a < attrs; ++a) {
      CountChannel channel;
      channel.column = a;
      channel.boundaries = &base[static_cast<size_t>(a)];
      channel.count_targets = false;
      channel.sum_targets = {(a + 1) % attrs};
      spec.channels.push_back(std::move(channel));
    }
  }
  return spec;
}

/// Runs `spec` over one serial scan of `source` kReps times; returns the
/// best wall time and folds a checksum into *checksum so the work cannot
/// be dead-code-eliminated (and so before/after runs can be diffed).
double TimeScan(optrules::storage::BatchSource& source,
                const MultiCountSpec& spec, int64_t* checksum,
                optrules::bucketing::ScanPhaseTimes* best_phases = nullptr) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    MultiCountPlan plan(spec);
    optrules::bucketing::ScanPhaseTimes phases;
    if (best_phases != nullptr) plan.set_phase_times(&phases);
    optrules::WallTimer timer;
    ExecuteMultiCount(source, &plan, nullptr);
    const double seconds = timer.ElapsedSeconds();
    const bool is_best = rep == 0 || seconds < best;
    if (is_best) best = seconds;
    if (is_best && best_phases != nullptr) *best_phases = phases;
    if (rep == 0) {
      for (int ch = 0; ch < plan.num_channels(); ++ch) {
        const auto& counts = plan.counts(ch);
        for (size_t b = 0; b < counts.u.size(); ++b) {
          *checksum += counts.u[b] * static_cast<int64_t>(b + 1);
        }
      }
    }
  }
  return best;
}

/// Drops `path` from the OS page cache so every out-of-core rep measures
/// genuinely cold reads (a warm page cache makes fread a memcpy and hides
/// any I/O overlap). The fdatasync matters: DONTNEED silently skips dirty
/// pages, and the file was written moments ago. Best effort: a filesystem
/// that ignores the advice just yields warm-cache numbers.
void EvictFromPageCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return;
  ::fdatasync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

}  // namespace

int main() {
  const int64_t scale = optrules::bench::BenchScale();
  const int64_t rows = 1000000 * scale;
  const int num_numeric = 8;
  const int num_boolean = 8;
  optrules::bench::JsonReporter json("counting_scan");
  json.Add("rows", rows);
  json.Add("num_buckets", static_cast<int64_t>(kNumBuckets));

  optrules::datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = num_numeric;
  config.num_boolean = num_boolean;
  optrules::Rng rng(9001);
  const optrules::storage::Relation table =
      optrules::datagen::GenerateTable(config, rng);

  BoundaryPlan boundary_plan;
  boundary_plan.num_buckets = kNumBuckets;
  std::vector<BucketBoundaries> base;
  std::vector<BucketBoundaries> generalized;
  for (int a = 0; a < num_numeric; ++a) {
    base.push_back(BuildBoundaries(table.NumericColumn(a), boundary_plan,
                                   static_cast<uint64_t>(a)));
    generalized.push_back(BuildBoundaries(table.NumericColumn(a),
                                          boundary_plan,
                                          1000 + static_cast<uint64_t>(a)));
  }

  // ---- standalone point location: M=1000 buckets over one column -------
  optrules::bench::PrintHeader("Point location (1000 buckets)");
  {
    const std::span<const double> values = table.NumericColumn(0);
    const BucketBoundaries& boundaries = base[0];
    int64_t sink = 0;
    double scalar_best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      optrules::WallTimer timer;
      for (const double value : values) sink += boundaries.Locate(value);
      const double seconds = timer.ElapsedSeconds();
      if (rep == 0 || seconds < scalar_best) scalar_best = seconds;
    }
    const double scalar_mps =
        static_cast<double>(rows) / scalar_best / 1e6;
    std::printf("scalar Locate:     %8.1f Mrows/s (checksum %lld)\n",
                scalar_mps, static_cast<long long>(sink));
    json.Add("locate_scalar_mrows_per_sec", scalar_mps);

    std::vector<int32_t> out(values.size());
    double batch_best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      optrules::WallTimer timer;
      boundaries.LocateBatch(values, out);
      const double seconds = timer.ElapsedSeconds();
      if (rep == 0 || seconds < batch_best) batch_best = seconds;
    }
    int64_t batch_sink = 0;
    for (const int32_t bucket : out) batch_sink += bucket;
    // The scalar loop folded its checksum once per rep.
    OPTRULES_CHECK(batch_sink * kReps == sink);
    const double batch_mps =
        static_cast<double>(rows) / batch_best / 1e6;
    std::printf("LocateBatch:       %8.1f Mrows/s\n", batch_mps);
    json.Add("locate_batch_mrows_per_sec", batch_mps);
  }

  // ---- in-memory grid: attrs x conditional channels --------------------
  optrules::bench::PrintHeader(
      "In-memory counting scan (serial, rows x attrs x channels)");
  std::printf("%8s %12s %12s %12s %14s\n", "attrs", "conditions",
              "channels", "time (s)", "Mrows*chan/s");
  optrules::bench::PrintRule(64);
  int64_t checksum = 0;
  int64_t a8_c3_checksum = 0;
  for (const int attrs : {2, 8}) {
    for (const int conditions : {0, 3}) {
      const MultiCountSpec spec = MakeSpec(base, generalized, attrs,
                                           conditions, num_boolean,
                                           /*with_sums=*/true);
      const int channels = static_cast<int>(spec.channels.size());
      optrules::storage::RelationBatchSource source(&table);
      int64_t config_checksum = 0;
      optrules::bucketing::ScanPhaseTimes phases;
      const double seconds = TimeScan(source, spec, &config_checksum,
                                      &phases);
      if (attrs == 8 && conditions == 3) a8_c3_checksum = config_checksum;
      checksum += config_checksum;
      const double throughput = static_cast<double>(rows) * channels /
                                seconds / 1e6;
      std::printf("%8d %12d %12d %12.3f %14.1f  "
                  "(locate %.3f, mask %.3f, scatter %.3f)\n",
                  attrs, conditions, channels, seconds, throughput,
                  phases.locate_seconds, phases.mask_seconds,
                  phases.scatter_seconds);
      const std::string key = "inmem_a" + std::to_string(attrs) + "_c" +
                              std::to_string(conditions);
      json.Add(key + "_seconds", seconds);
      json.Add(key + "_locate_seconds", phases.locate_seconds);
      json.Add(key + "_mask_seconds", phases.mask_seconds);
      json.Add(key + "_scatter_seconds", phases.scatter_seconds);
    }
  }
  json.Add("inmem_checksum", checksum);

  // ---- metrics overhead: registry off vs on, a8/c3 (40 channels) -------
  // The observability acceptance gate: the registry's per-scan activity is
  // O(batches + shards), never O(rows), so the enabled-vs-disabled delta
  // on the full 40-channel scan must stay within noise (<= 2%). Checksums
  // prove the switch cannot change counts.
  optrules::bench::PrintHeader(
      "Metrics overhead (in-memory a8/c3, 40 channels)");
  {
    const MultiCountSpec spec = MakeSpec(base, generalized, num_numeric, 3,
                                         num_boolean, /*with_sums=*/true);
    optrules::storage::RelationBatchSource source(&table);
    // Interleave the two modes so slow machine-wide drift (cache state,
    // frequency scaling, neighbors on the box) hits both equally, and
    // keep the best per mode: a one-sided drift would otherwise read as
    // fake overhead much larger than the real O(batches) cost.
    constexpr int kOverheadRounds = 4;
    double off_seconds = 0.0;
    double on_seconds = 0.0;
    for (int round = 0; round < kOverheadRounds; ++round) {
      int64_t off_checksum = 0;
      int64_t on_checksum = 0;
      optrules::obs::SetMetricsEnabled(false);
      const double off = TimeScan(source, spec, &off_checksum);
      optrules::obs::SetMetricsEnabled(true);
      const double on = TimeScan(source, spec, &on_checksum);
      OPTRULES_CHECK(off_checksum == on_checksum);  // switch never counts
      OPTRULES_CHECK(on_checksum == a8_c3_checksum);
      if (round == 0 || off < off_seconds) off_seconds = off;
      if (round == 0 || on < on_seconds) on_seconds = on;
    }
    const double overhead = on_seconds - off_seconds;
    std::printf("metrics disabled:   %8.3f s\n", off_seconds);
    std::printf("metrics enabled:    %8.3f s (%+.2f%% overhead)\n",
                on_seconds, overhead / off_seconds * 100.0);
    json.Add("metrics_off_seconds", off_seconds);
    json.Add("metrics_on_seconds", on_seconds);
    json.Add("metrics_overhead_seconds", overhead);
  }

  // ---- out-of-core: PagedFile scan ------------------------------------
  // Two shapes, cold page cache per rep: a2/c0 is prefetch-bound (light
  // kernel, the read dominates), a8/c3 is compute-bound (the overlap hides
  // the whole read). Sync vs double-buffered over identical pages must
  // produce identical counts, as must the columnar v2 layout (the default;
  // zero-transpose reads) vs the row-major v1 reference copy.
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string tmp_base =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/counting_scan_bench";
  const auto run_paged_shapes = [&](const std::string& file_path,
                                    const std::string& key_prefix) {
    std::printf("%8s %12s %14s %14s %10s %12s\n", "attrs", "conditions",
                "sync (s)", "buffered (s)", "speedup", "io wait (s)");
    optrules::bench::PrintRule(76);
    for (const int conditions : {0, 3}) {
      const int attrs = conditions == 0 ? 2 : num_numeric;
      const MultiCountSpec spec = MakeSpec(base, generalized, attrs,
                                           conditions, num_boolean,
                                           /*with_sums=*/true);
      double mode_seconds[2] = {0.0, 0.0};
      double mode_io_wait[2] = {0.0, 0.0};
      int64_t mode_checksum[2] = {0, 0};
      optrules::bucketing::ScanPhaseTimes mode_phases[2];
      for (const bool buffered : {false, true}) {
        double best = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
          EvictFromPageCache(file_path);
          auto source_or = optrules::storage::PagedFileBatchSource::Open(
              file_path, optrules::storage::kDefaultBatchRows,
              buffered ? optrules::storage::PagedReadMode::kDoubleBuffered
                       : optrules::storage::PagedReadMode::kSynchronous);
          OPTRULES_CHECK(source_or.ok());
          MultiCountPlan plan(spec);
          optrules::bucketing::ScanPhaseTimes phases;
          plan.set_phase_times(&phases);
          optrules::WallTimer timer;
          ExecuteMultiCount(*source_or.value(), &plan, nullptr);
          const double seconds = timer.ElapsedSeconds();
          const bool is_best = rep == 0 || seconds < best;
          if (is_best) {
            best = seconds;
            mode_phases[buffered ? 1 : 0] = phases;
            mode_io_wait[buffered ? 1 : 0] =
                source_or.value()->TotalIoWaitSeconds();
          }
          if (rep == 0) {
            int64_t& checksum_out = mode_checksum[buffered ? 1 : 0];
            for (int ch = 0; ch < plan.num_channels(); ++ch) {
              const auto& counts = plan.counts(ch);
              for (size_t b = 0; b < counts.u.size(); ++b) {
                checksum_out += counts.u[b] * static_cast<int64_t>(b + 1);
              }
            }
          }
        }
        mode_seconds[buffered ? 1 : 0] = best;
      }
      OPTRULES_CHECK(mode_checksum[0] == mode_checksum[1]);  // sync == async
      if (conditions == 3) {
        OPTRULES_CHECK(mode_checksum[1] == a8_c3_checksum);  // disk == mem
      }
      std::printf("%8d %12d %14.3f %14.3f %9.2fx %12.3f\n", attrs,
                  conditions, mode_seconds[0], mode_seconds[1],
                  mode_seconds[0] / mode_seconds[1], mode_io_wait[1]);
      const std::string key = key_prefix + "_a" + std::to_string(attrs) +
                              "_c" + std::to_string(conditions);
      json.Add(key + "_sync_seconds", mode_seconds[0]);
      json.Add(key + "_seconds", mode_seconds[1]);
      json.Add(key + "_sync_io_wait_seconds", mode_io_wait[0]);
      json.Add(key + "_io_wait_seconds", mode_io_wait[1]);
      json.Add(key + "_locate_seconds", mode_phases[1].locate_seconds);
      json.Add(key + "_mask_seconds", mode_phases[1].mask_seconds);
      json.Add(key + "_scatter_seconds", mode_phases[1].scatter_seconds);
    }
  };

  optrules::bench::PrintHeader(
      "Out-of-core counting scan (PagedFile, columnar v2)");
  const std::string path = tmp_base + ".optr";
  OPTRULES_CHECK(
      optrules::storage::WriteRelationToFile(table, path).ok());
  run_paged_shapes(path, "paged");

  // ---- buffer pool: warm repeated session ------------------------------
  // A repeated mining session over the same table (the interactive loop
  // the paper's Section 6 envisions) should pay the disk exactly once: the
  // first session fills a file-sized buffer pool, every later session
  // reads pages out of cache. cache_hit_rate comes from the pool-backed
  // source; the checksum must match the in-memory scan bit for bit.
  optrules::bench::PrintHeader(
      "Buffer pool (warm repeated session, a8/c3)");
  {
    const auto file_bytes =
        static_cast<size_t>(std::filesystem::file_size(path));
    optrules::storage::BufferPool pool(file_bytes + (size_t{16} << 20));
    const MultiCountSpec spec = MakeSpec(base, generalized, num_numeric, 3,
                                         num_boolean, /*with_sums=*/true);
    const auto run_session = [&](int64_t* checksum_out, double* hit_rate) {
      auto source_or = optrules::storage::PagedFileBatchSource::Open(
          path, optrules::storage::kDefaultBatchRows,
          optrules::storage::PagedReadMode::kDoubleBuffered, &pool);
      OPTRULES_CHECK(source_or.ok());
      MultiCountPlan plan(spec);
      optrules::WallTimer timer;
      ExecuteMultiCount(*source_or.value(), &plan, nullptr);
      const double seconds = timer.ElapsedSeconds();
      if (checksum_out != nullptr) {
        for (int ch = 0; ch < plan.num_channels(); ++ch) {
          const auto& counts = plan.counts(ch);
          for (size_t b = 0; b < counts.u.size(); ++b) {
            *checksum_out += counts.u[b] * static_cast<int64_t>(b + 1);
          }
        }
      }
      if (hit_rate != nullptr) {
        *hit_rate = source_or.value()->SourceStats().cache_hit_rate();
      }
      return seconds;
    };
    EvictFromPageCache(path);
    const double cold_seconds = run_session(nullptr, nullptr);
    double warm_best = 0.0;
    double hit_rate = 0.0;
    int64_t warm_checksum = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      double rep_rate = 0.0;
      const double seconds = run_session(
          rep == 0 ? &warm_checksum : nullptr, &rep_rate);
      if (rep == 0 || seconds < warm_best) warm_best = seconds;
      if (rep == 0) hit_rate = rep_rate;
    }
    OPTRULES_CHECK(warm_checksum == a8_c3_checksum);  // warm == memory
    std::printf("cold first session: %8.3f s\n", cold_seconds);
    std::printf("warm re-run:        %8.3f s (%.2fx, hit rate %.3f)\n",
                warm_best, cold_seconds / warm_best, hit_rate);
    json.Add("cold_session_seconds", cold_seconds);
    json.Add("warm_rerun_seconds", warm_best);
    json.Add("cache_hit_rate", hit_rate);
  }

  // ---- zone-map pruning: selective conditional session -----------------
  // Condition Boolean 0 true only in the leading 1% of rows: the v2 zone
  // maps prove nearly every page dead for an all-conditional spec, so the
  // pooled scan skips them wholesale. The pruned plan must still equal
  // the unpruned bypass reference bit for bit (checksum below), with
  // pages_skipped proving the pruning actually fired.
  optrules::bench::PrintHeader(
      "Zone-map pruning (selective condition, 1% true window)");
  {
    optrules::storage::Relation selective = table;
    std::vector<uint8_t>& cond = selective.MutableBooleanColumn(0);
    for (size_t i = static_cast<size_t>(rows / 100); i < cond.size(); ++i) {
      cond[i] = 0;
    }
    const std::string selective_path = tmp_base + "_selective.optr";
    OPTRULES_CHECK(
        optrules::storage::WriteRelationToFile(selective, selective_path)
            .ok());
    MultiCountSpec spec;
    spec.num_targets = num_boolean;
    spec.conditions.push_back({0});
    for (int a = 0; a < num_numeric; ++a) {
      CountChannel channel;
      channel.column = a;
      channel.boundaries = &base[static_cast<size_t>(a)];
      channel.condition = 0;
      spec.channels.push_back(std::move(channel));
    }
    const auto run_selective = [&](optrules::storage::BufferPool* pool,
                                   int64_t* pages_skipped) {
      double best = 0.0;
      int64_t checksum_out = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        EvictFromPageCache(selective_path);
        auto source_or = optrules::storage::PagedFileBatchSource::Open(
            selective_path, optrules::storage::kDefaultBatchRows,
            optrules::storage::PagedReadMode::kDoubleBuffered, pool);
        OPTRULES_CHECK(source_or.ok());
        MultiCountPlan plan(spec);
        optrules::WallTimer timer;
        ExecuteMultiCount(*source_or.value(), &plan, nullptr);
        const double seconds = timer.ElapsedSeconds();
        if (rep == 0 || seconds < best) best = seconds;
        if (rep == 0) {
          for (int ch = 0; ch < plan.num_channels(); ++ch) {
            const auto& counts = plan.counts(ch);
            for (size_t b = 0; b < counts.u.size(); ++b) {
              checksum_out += counts.u[b] * static_cast<int64_t>(b + 1);
            }
          }
          if (pages_skipped != nullptr) {
            *pages_skipped = source_or.value()->SourceStats().pages_skipped;
          }
        }
      }
      return std::make_pair(best, checksum_out);
    };
    const auto [unpruned_seconds, unpruned_checksum] =
        run_selective(nullptr, nullptr);
    optrules::storage::BufferPool pool(
        optrules::storage::kDefaultBufferPoolBytes);
    int64_t pages_skipped = 0;
    const auto [pruned_seconds, pruned_checksum] =
        run_selective(&pool, &pages_skipped);
    OPTRULES_CHECK(pruned_checksum == unpruned_checksum);  // pruned == ref
    std::printf("unpruned bypass:    %8.3f s\n", unpruned_seconds);
    std::printf("zone-map pruned:    %8.3f s (%.2fx, %lld pages skipped)\n",
                pruned_seconds, unpruned_seconds / pruned_seconds,
                static_cast<long long>(pages_skipped));
    json.Add("selective_unpruned_seconds", unpruned_seconds);
    json.Add("selective_pruned_seconds", pruned_seconds);
    json.Add("pages_skipped", pages_skipped);
    std::remove(selective_path.c_str());
  }

  optrules::bench::PrintHeader(
      "Out-of-core counting scan (PagedFile, row-major v1 reference)");
  const std::string v1_path = tmp_base + "_v1.optr";
  {
    optrules::storage::PagedFileWriterOptions v1_options;
    v1_options.format = optrules::storage::PagedFileFormat::kRowMajorV1;
    OPTRULES_CHECK(
        optrules::storage::WriteRelationToFile(table, v1_path, v1_options)
            .ok());
  }
  run_paged_shapes(v1_path, "paged_v1");
  std::remove(v1_path.c_str());

  // ---- partitioned / distributed scan: worker scaling curve ------------
  // The same a8/c3 channel load sharded over K=4 partition PagedFiles and
  // driven through the DistributedScanCoordinator at 1/2/4 in-process
  // workers (each partition scanned by the serial reference chain, so the
  // worker count changes wall clock only). Counts must reproduce the
  // in-memory checksum at every worker count: partitioning is
  // permutation of rows and the merge is exact.
  optrules::bench::PrintHeader(
      "Partitioned scan (K=4 partitions, in-process workers)");
  const std::string dist_dir =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/counting_scan_bench_parts";
  std::filesystem::remove_all(dist_dir);
  constexpr int kPartitions = 4;
  {
    optrules::dist::PartitionOptions partition_options;
    partition_options.num_partitions = kPartitions;
    auto table = optrules::dist::PartitionPagedFile(
        path, optrules::storage::Schema::Synthetic(num_numeric, num_boolean),
        dist_dir, partition_options);
    OPTRULES_CHECK(table.ok());
    const MultiCountSpec spec = MakeSpec(base, generalized, num_numeric, 3,
                                         num_boolean, /*with_sums=*/true);
    std::printf("%8s %12s %14s\n", "workers", "time (s)", "speedup");
    optrules::bench::PrintRule(40);
    double one_worker = 0.0;
    for (const int workers : {1, 2, kPartitions}) {
      optrules::dist::DistributedScanOptions scan_options;
      scan_options.max_workers = workers;
      double best = 0.0;
      int64_t dist_checksum = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        for (int p = 0; p < kPartitions; ++p) {
          EvictFromPageCache(table.value().PartitionPath(p));
        }
        optrules::dist::DistributedScanCoordinator coordinator(
            &table.value(), scan_options);
        MultiCountPlan plan(spec);
        optrules::WallTimer timer;
        OPTRULES_CHECK(coordinator.Execute(&plan).ok());
        const double seconds = timer.ElapsedSeconds();
        if (rep == 0 || seconds < best) best = seconds;
        if (rep == 0) {
          dist_checksum = 0;
          for (int ch = 0; ch < plan.num_channels(); ++ch) {
            const auto& counts = plan.counts(ch);
            for (size_t b = 0; b < counts.u.size(); ++b) {
              dist_checksum += counts.u[b] * static_cast<int64_t>(b + 1);
            }
          }
        }
      }
      OPTRULES_CHECK(dist_checksum == a8_c3_checksum);  // sharded == memory
      if (workers == 1) one_worker = best;
      std::printf("%8d %12.3f %13.2fx\n", workers, best,
                  one_worker / best);
      json.Add("dist_k4_w" + std::to_string(workers) + "_seconds", best);
    }
  }
  std::filesystem::remove_all(dist_dir);

  // ---- induced straggler: static assignment vs work stealing -----------
  // Same load over K=8 partitions and 2 worker slots, with slot 0's
  // worker slowed by 250 ms per partition scan (a FaultInjectingScanWorker
  // whose "faults" are pure delays). Under static assignment slot 0 must
  // grind through its whole stride (4 slow scans back to back); under the
  // work-queue schedule the idle slot 1 steals slot 0's unstarted
  // partitions, so the straggler pays its delay roughly once. Checksums
  // prove both schedules produce the exact in-memory counts; the recovery
  // figure is the wall clock the stealing schedule claws back.
  optrules::bench::PrintHeader(
      "Induced straggler (K=8, 2 workers, slot 0 +250 ms per scan)");
  const std::string straggler_dir =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/counting_scan_bench_straggler";
  std::filesystem::remove_all(straggler_dir);
  {
    static constexpr int kStragglerPartitions = 8;
    static constexpr int64_t kStragglerDelayMs = 250;
    optrules::dist::PartitionOptions partition_options;
    partition_options.num_partitions = kStragglerPartitions;
    auto table = optrules::dist::PartitionPagedFile(
        path, optrules::storage::Schema::Synthetic(num_numeric, num_boolean),
        straggler_dir, partition_options);
    OPTRULES_CHECK(table.ok());
    const MultiCountSpec spec = MakeSpec(base, generalized, num_numeric, 3,
                                         num_boolean, /*with_sums=*/true);
    const auto run_schedule =
        [&](optrules::dist::ScanScheduling scheduling) {
          double best = 0.0;
          int64_t checksum = 0;
          for (int rep = 0; rep < kReps; ++rep) {
            for (int p = 0; p < kStragglerPartitions; ++p) {
              EvictFromPageCache(table.value().PartitionPath(p));
            }
            optrules::dist::DistributedScanOptions scan_options;
            scan_options.max_workers = 2;
            scan_options.scheduling = scheduling;
            auto built = std::make_shared<std::atomic<int>>(0);
            scan_options.worker_factory =
                [built]() -> optrules::Result<
                              std::unique_ptr<optrules::dist::ScanWorker>> {
              std::unique_ptr<optrules::dist::ScanWorker> inner =
                  std::make_unique<optrules::dist::InProcessScanWorker>();
              if (built->fetch_add(1) == 0) {
                std::vector<optrules::dist::InjectedFault> delays;
                for (int call = 0; call < kStragglerPartitions; ++call) {
                  delays.push_back({.at_call = call,
                                    .delay_ms = kStragglerDelayMs});
                }
                return std::unique_ptr<optrules::dist::ScanWorker>(
                    std::make_unique<optrules::dist::FaultInjectingScanWorker>(
                        std::move(inner), std::move(delays)));
              }
              return inner;
            };
            optrules::dist::DistributedScanCoordinator coordinator(
                &table.value(), scan_options);
            MultiCountPlan plan(spec);
            optrules::WallTimer timer;
            OPTRULES_CHECK(coordinator.Execute(&plan).ok());
            const double seconds = timer.ElapsedSeconds();
            if (rep == 0 || seconds < best) best = seconds;
            if (rep == 0) {
              for (int ch = 0; ch < plan.num_channels(); ++ch) {
                const auto& counts = plan.counts(ch);
                for (size_t b = 0; b < counts.u.size(); ++b) {
                  checksum += counts.u[b] * static_cast<int64_t>(b + 1);
                }
              }
            }
          }
          OPTRULES_CHECK(checksum == a8_c3_checksum);  // schedule == memory
          return best;
        };
    const double static_seconds =
        run_schedule(optrules::dist::ScanScheduling::kStatic);
    const double worksteal_seconds =
        run_schedule(optrules::dist::ScanScheduling::kWorkQueue);
    std::printf("static assignment:  %8.3f s\n", static_seconds);
    std::printf("work stealing:      %8.3f s (%.2fx, %.3f s recovered)\n",
                worksteal_seconds, static_seconds / worksteal_seconds,
                static_seconds - worksteal_seconds);
    json.Add("straggler_static_seconds", static_seconds);
    json.Add("straggler_worksteal_seconds", worksteal_seconds);
    json.Add("straggler_recovery_seconds",
             static_seconds - worksteal_seconds);
  }
  std::filesystem::remove_all(straggler_dir);
  std::remove(path.c_str());

  // Everything above reported into the process registry as a side effect;
  // emit it so the JSON trajectory carries the same instrument values a
  // serving daemon would ship in a kMetricsReply.
  json.AddRegistrySnapshot(
      optrules::obs::MetricsRegistry::Default().Snapshot());
  return 0;
}
