// google-benchmark microbenchmarks of the core O(M) algorithms, the hull
// tree, and the bucketing primitives (complements the paper-figure
// harnesses with per-operation timings).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bucketing/counting.h"
#include "bucketing/equidepth_sampler.h"
#include "common/ratio.h"
#include "datagen/table_generator.h"
#include "hull/convex_hull_tree.h"
#include "rules/kadane.h"
#include "rules/optimized_confidence.h"
#include "rules/optimized_support.h"
#include "storage/columnar_batch.h"

namespace {

using optrules::bench::BucketInstance;
using optrules::bench::RandomBuckets;

void BM_OptimizedConfidence(benchmark::State& state) {
  const int64_t m = state.range(0);
  const BucketInstance instance = RandomBuckets(m, 20, 0.3, 1);
  const int64_t min_support = instance.total / 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optrules::rules::OptimizedConfidenceRule(
        instance.u, instance.v, instance.total, min_support));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_OptimizedConfidence)->Range(256, 1 << 18)->Complexity();

void BM_OptimizedSupport(benchmark::State& state) {
  const int64_t m = state.range(0);
  const BucketInstance instance = RandomBuckets(m, 20, 0.45, 2);
  const optrules::Ratio theta(1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optrules::rules::OptimizedSupportRule(
        instance.u, instance.v, instance.total, theta));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_OptimizedSupport)->Range(256, 1 << 18)->Complexity();

void BM_KadaneMaxGain(benchmark::State& state) {
  const int64_t m = state.range(0);
  const BucketInstance instance = RandomBuckets(m, 20, 0.45, 3);
  const optrules::Ratio theta(1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optrules::rules::MaxGainRange(instance.u, instance.v, theta));
  }
}
BENCHMARK(BM_KadaneMaxGain)->Range(256, 1 << 18);

void BM_ConvexHullTreeBuild(benchmark::State& state) {
  const int64_t m = state.range(0);
  optrules::Rng rng(4);
  std::vector<optrules::hull::Point> points(static_cast<size_t>(m));
  double x = 0.0;
  for (auto& p : points) {
    x += 1.0 + static_cast<double>(rng.NextBounded(4));
    p = {x, static_cast<double>(rng.NextInt(-100, 100))};
  }
  for (auto _ : state) {
    optrules::hull::ConvexHullTree tree(points);
    benchmark::DoNotOptimize(tree.hull_size());
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_ConvexHullTreeBuild)->Range(256, 1 << 18)->Complexity();

void BM_MultiCountSharedScan(benchmark::State& state) {
  // The columnar hot loop: all numeric attributes x all Boolean targets
  // counted in one batched scan of an in-memory relation.
  const int64_t rows = state.range(0);
  optrules::datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = 4;
  config.num_boolean = 4;
  optrules::Rng rng(7);
  const optrules::storage::Relation table =
      optrules::datagen::GenerateTable(config, rng);
  optrules::bucketing::SamplerOptions options;
  options.num_buckets = 1000;
  std::vector<optrules::bucketing::BucketBoundaries> boundaries;
  std::vector<const optrules::bucketing::BucketBoundaries*> bounds;
  for (int a = 0; a < 4; ++a) {
    optrules::Rng sample_rng(8 + static_cast<uint64_t>(a));
    boundaries.push_back(optrules::bucketing::BuildEquiDepthBoundaries(
        table.NumericColumn(a), options, sample_rng));
  }
  for (const auto& b : boundaries) bounds.push_back(&b);
  optrules::storage::RelationBatchSource source(&table);
  for (auto _ : state) {
    optrules::bucketing::MultiCountPlan plan(bounds, 4);
    auto reader = source.CreateReader();
    optrules::storage::ColumnarBatch batch;
    while (reader->Next(&batch)) plan.Accumulate(batch);
    benchmark::DoNotOptimize(plan.total_tuples());
  }
  state.SetItemsProcessed(state.iterations() * rows * 4);
}
BENCHMARK(BM_MultiCountSharedScan)->Range(1 << 14, 1 << 18);

void BM_EquiDepthSampling(benchmark::State& state) {
  const int64_t n = state.range(0);
  optrules::Rng data_rng(5);
  std::vector<double> values(static_cast<size_t>(n));
  for (double& v : values) v = data_rng.NextUniform(0.0, 1e6);
  optrules::bucketing::SamplerOptions options;
  options.num_buckets = 1000;
  for (auto _ : state) {
    optrules::Rng rng(6);
    benchmark::DoNotOptimize(optrules::bucketing::BuildEquiDepthBoundaries(
        values, options, rng));
  }
}
BENCHMARK(BM_EquiDepthSampling)->Range(1 << 16, 1 << 20);

}  // namespace
