// Two-dimensional optimized regions (Section 1.4):
//   (Age, Balance) in X => (CardLoan = yes)
// where X is a rectangle or an x-monotone region of the 2-D bucket grid --
// mined through the MiningEngine, so the region grid is counted by the
// SAME single scan that answers every 1-D attribute pair. Also trains the
// Section 1.5 decision tree with range splits on the same data and prints
// it.

#include <cstdio>

#include "datagen/bank.h"
#include "rules/miner.h"
#include "tree/decision_tree.h"

int main() {
  optrules::datagen::BankConfig config;
  config.num_customers = 150000;
  optrules::Rng rng(21);
  const optrules::storage::Relation bank =
      optrules::datagen::GenerateBankCustomers(config, rng);

  optrules::rules::MinerOptions options;
  options.num_buckets = 200;
  options.region_grid_buckets = 32;  // 32x32 equi-depth grid per pair
  options.min_support = 0.05;
  options.min_confidence = 0.5;

  // Register the region pair BEFORE the first query: its grid channel then
  // rides the same counting scan as all the 1-D attribute pairs.
  optrules::rules::MiningEngine engine(&bank, options);
  if (!engine.RequestRegionPair("Age", "Balance").ok()) return 1;

  const auto pairs = engine.MineAllPairs();
  std::printf("1-D sweep: %zu optimized rules over every (numeric, Boolean) "
              "pair\n\n",
              pairs.size());

  auto region_or = engine.MineOptimizedRegion("Age", "Balance", "CardLoan");
  if (!region_or.ok()) return 1;
  const optrules::rules::MinedRegion& region = region_or.value();
  std::printf("grid: %d x %d equi-depth buckets over (Age, Balance), %lld "
              "tuples\n\n",
              region.nx, region.ny,
              static_cast<long long>(region.total_tuples));
  std::printf("%s\n", region.ToString().c_str());
  if (region.xmonotone_gain.found) {
    std::printf("  per-column Balance-bucket intervals:");
    for (const auto& [s, t] : region.xmonotone_gain.column_ranges) {
      std::printf(" [%d,%d]", s, t);
    }
    std::printf("\n");
  }
  std::printf("\ncounting scans for the whole session (1-D sweep + 2-D "
              "regions): %lld\n\n",
              static_cast<long long>(engine.counting_scans()));

  // Decision tree with range splits predicting CardLoan (Section 1.5).
  optrules::tree::TreeOptions tree_options;
  tree_options.max_depth = 3;
  tree_options.min_leaf_tuples = 2000;
  const auto tree =
      optrules::tree::DecisionTree::Train(bank, "CardLoan", tree_options);
  if (tree.ok()) {
    std::printf("range-split decision tree for CardLoan (accuracy %.2f%% "
                "on training data):\n%s",
                tree.value().Accuracy(bank) * 100.0,
                tree.value().ToString().c_str());
  }
  return 0;
}
