// Two-dimensional optimized regions (Section 1.4):
//   (Age, Balance) in X => (CardLoan = yes)
// where X is a rectangle or an x-monotone region of the 2-D bucket grid.
// Also trains the Section 1.5 decision tree with range splits on the same
// data and prints it.

#include <cstdio>

#include "bucketing/equidepth_sampler.h"
#include "common/rng.h"
#include "datagen/bank.h"
#include "region/grid.h"
#include "region/rectangle.h"
#include "region/xmonotone.h"
#include "tree/decision_tree.h"

int main() {
  optrules::datagen::BankConfig config;
  config.num_customers = 150000;
  optrules::Rng rng(21);
  const optrules::storage::Relation bank =
      optrules::datagen::GenerateBankCustomers(config, rng);

  const int age = bank.schema().NumericIndexOf("Age").value();
  const int balance = bank.schema().NumericIndexOf("Balance").value();
  const int card_loan = bank.schema().BooleanIndexOf("CardLoan").value();

  // 32x32 equi-depth grid over (Age, Balance).
  optrules::bucketing::SamplerOptions sampler;
  sampler.num_buckets = 32;
  optrules::Rng sample_rng(22);
  const auto bx = optrules::bucketing::BuildEquiDepthBoundaries(
      bank.NumericColumn(age), sampler, sample_rng);
  const auto by = optrules::bucketing::BuildEquiDepthBoundaries(
      bank.NumericColumn(balance), sampler, sample_rng);
  const optrules::region::GridCounts grid = optrules::region::BuildGrid(
      bank.NumericColumn(age), bank.NumericColumn(balance),
      bank.BooleanColumn(card_loan), bx, by);
  std::printf("grid: %d x %d equi-depth buckets over (Age, Balance), %lld "
              "tuples\n\n",
              grid.nx(), grid.ny(),
              static_cast<long long>(grid.total_tuples()));

  // Optimized-confidence rectangle with >= 5% support.
  const optrules::region::RegionRule rect =
      optrules::region::OptimizedConfidenceRectangle(
          grid, grid.total_tuples() / 20);
  if (rect.found) {
    std::printf("optimized confidence rectangle:\n");
    std::printf("  Age buckets [%d, %d] x Balance buckets [%d, %d]\n",
                rect.x1, rect.x2, rect.y1, rect.y2);
    std::printf("  support %.2f%%, confidence %.2f%%\n\n",
                rect.support * 100.0, rect.confidence * 100.0);
  }

  // Largest >= 50%-confident rectangle.
  const optrules::region::RegionRule wide =
      optrules::region::OptimizedSupportRectangle(grid,
                                                  optrules::Ratio(1, 2));
  if (wide.found) {
    std::printf("optimized support rectangle (conf >= 50%%):\n");
    std::printf("  Age buckets [%d, %d] x Balance buckets [%d, %d], "
                "support %.2f%%, confidence %.2f%%\n\n",
                wide.x1, wide.x2, wide.y1, wide.y2, wide.support * 100.0,
                wide.confidence * 100.0);
  } else {
    std::printf("no rectangle reaches 50%% confidence\n\n");
  }

  // Gain-optimized x-monotone region (theta = 50%).
  const optrules::region::XMonotoneRegion region =
      optrules::region::MaxGainXMonotoneRegion(grid, optrules::Ratio(1, 2));
  if (region.found) {
    std::printf("max-gain x-monotone region (theta 50%%):\n");
    std::printf("  spans Age buckets [%d, %d], support %.2f%%, confidence "
                "%.2f%%\n",
                region.x_begin,
                region.x_begin +
                    static_cast<int>(region.column_ranges.size()) - 1,
                region.support * 100.0, region.confidence * 100.0);
    std::printf("  per-column Balance-bucket intervals:");
    for (const auto& [s, t] : region.column_ranges) {
      std::printf(" [%d,%d]", s, t);
    }
    std::printf("\n\n");
  }

  // Decision tree with range splits predicting CardLoan (Section 1.5).
  optrules::tree::TreeOptions tree_options;
  tree_options.max_depth = 3;
  tree_options.min_leaf_tuples = 2000;
  const auto tree =
      optrules::tree::DecisionTree::Train(bank, "CardLoan", tree_options);
  if (tree.ok()) {
    std::printf("range-split decision tree for CardLoan (accuracy %.2f%% "
                "on training data):\n%s",
                tree.value().Accuracy(bank) * 100.0,
                tree.value().ToString().c_str());
  }
  return 0;
}
