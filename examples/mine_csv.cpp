// Command-line miner: load a CSV relation, mine every (numeric, Boolean)
// attribute pair, rank the rules by lift, and write a Markdown report.
//
//   ./mine_csv [input.csv [report.md]]
//
// Without arguments it generates a demo CSV first so the binary is
// runnable standalone. CSV header cells are `name:numeric` or
// `name:boolean`; boolean cells are 0/1 or yes/no.

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "datagen/bank.h"
#include "report/report.h"
#include "rules/miner.h"
#include "storage/csv.h"

int main(int argc, char** argv) {
  std::string input_path =
      argc > 1 ? argv[1] : "/tmp/optrules_demo_input.csv";
  const std::string report_path =
      argc > 2 ? argv[2] : "/tmp/optrules_report.md";

  if (argc <= 1) {
    // Demo mode: write 50k bank customers to CSV first.
    optrules::datagen::BankConfig config;
    config.num_customers = 50000;
    optrules::Rng rng(5);
    const optrules::storage::Relation demo =
        optrules::datagen::GenerateBankCustomers(config, rng);
    const optrules::Status status =
        optrules::storage::WriteCsv(demo, input_path);
    if (!status.ok()) {
      std::fprintf(stderr, "demo generation failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("(demo mode: wrote %s)\n", input_path.c_str());
  }

  optrules::Result<optrules::storage::Relation> loaded =
      optrules::storage::ReadCsv(input_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", input_path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const optrules::storage::Relation& relation = loaded.value();
  std::printf("loaded %s: %lld tuples, %d numeric + %d boolean "
              "attributes\n",
              input_path.c_str(),
              static_cast<long long>(relation.NumRows()),
              relation.schema().num_numeric(),
              relation.schema().num_boolean());

  optrules::rules::MinerOptions options;
  options.num_buckets = 500;
  options.min_support = 0.05;
  options.min_confidence = 0.5;
  optrules::rules::Miner miner(&relation, options);
  const std::vector<optrules::rules::MinedRule> mined = miner.MineAll();

  const std::vector<optrules::report::RankedRule> ranked =
      optrules::report::RankByLift(mined, relation);
  std::printf("mined %zu rules (%zu found) across %d pairs\n\n",
              mined.size(), ranked.size(),
              relation.schema().num_numeric() *
                  relation.schema().num_boolean());

  std::printf("top rules by lift:\n");
  for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
    std::printf("  %zu. %s  (lift %.2f)\n", i + 1,
                ranked[i].rule.ToString().c_str(),
                ranked[i].measures.lift);
  }

  const optrules::Status write_status = optrules::report::WriteTextFile(
      optrules::report::ToMarkdown(ranked), report_path);
  std::printf("\nfull report: %s (%s)\n", report_path.c_str(),
              write_status.ToString().c_str());
  return write_status.ok() ? 0 : 1;
}
