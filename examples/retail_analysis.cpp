// Retail basket analysis: numeric-range rules over transaction data and a
// full all-pairs sweep (the Section 1.3 "complete set of optimized rules"
// usage), plus CSV export of the mined table for downstream tools.

#include <cstdio>

#include "common/rng.h"
#include "datagen/retail.h"
#include "rules/miner.h"
#include "storage/csv.h"

int main() {
  optrules::datagen::RetailConfig config;
  config.num_transactions = 150000;
  optrules::Rng rng(11);
  const optrules::storage::Relation transactions =
      optrules::datagen::GenerateRetail(config, rng);
  std::printf("Retail transactions: %lld tuples\n\n",
              static_cast<long long>(transactions.NumRows()));

  optrules::rules::MinerOptions options;
  options.num_buckets = 500;
  options.min_support = 0.05;
  options.min_confidence = 0.40;
  optrules::rules::Miner miner(&transactions, options);

  // The planted association: a mid spend band loves Coke.
  const auto spend_coke = miner.MinePair("TotalSpend", "Coke").value();
  std::printf("Spend band that buys Coke (optimized confidence):\n  %s\n\n",
              spend_coke[0].ToString().c_str());

  // Generalized rule in the spirit of (Pizza ^ Coke) => Potato, localized
  // to a spend range.
  const auto snack_rule =
      miner.MineGeneralized("TotalSpend", {"Pizza", "Coke"}, "Potato")
          .value();
  std::printf("Generalized rule (Section 4.3):\n  %s\n\n",
              snack_rule[0].ToString().c_str());

  // Complete sweep over every (numeric, boolean) pair; print the rules
  // that clear 50% confidence with ample support.
  std::printf("All-pairs sweep (%d numeric x %d boolean attributes):\n",
              transactions.schema().num_numeric(),
              transactions.schema().num_boolean());
  int printed = 0;
  for (const optrules::rules::MinedRule& rule : miner.MineAll()) {
    if (!rule.found) continue;
    if (rule.kind != optrules::rules::RuleKind::kOptimizedConfidence) {
      continue;
    }
    if (rule.confidence < 0.5) continue;
    std::printf("  %s\n", rule.ToString().c_str());
    ++printed;
  }
  if (printed == 0) {
    std::printf("  (no rule clears 50%% confidence at 5%% support)\n");
  }

  // Export a sample of the table for spreadsheet inspection.
  optrules::storage::Relation sample(transactions.schema());
  for (int64_t row = 0; row < 1000; ++row) {
    std::vector<double> numeric;
    std::vector<uint8_t> boolean;
    for (int c = 0; c < transactions.schema().num_numeric(); ++c) {
      numeric.push_back(transactions.NumericValue(row, c));
    }
    for (int c = 0; c < transactions.schema().num_boolean(); ++c) {
      boolean.push_back(transactions.BooleanValue(row, c) ? 1 : 0);
    }
    sample.AppendRow(numeric, boolean);
  }
  const std::string csv_path = "/tmp/retail_sample.csv";
  const optrules::Status status =
      optrules::storage::WriteCsv(sample, csv_path);
  std::printf("\nSample of 1000 transactions exported to %s (%s)\n",
              csv_path.c_str(), status.ToString().c_str());
  return 0;
}
