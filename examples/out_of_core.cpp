// Out-of-core mining: the workflow the paper's Section 3 is really about.
//
// The table lives on disk (here: a generated PagedFile), is never loaded
// into memory, and is bucketized with Algorithm 3.1 -- one reservoir-
// sampling pass to pick boundaries and one counting pass for the rule
// statistics -- before the O(M) optimizers run on the tiny bucket arrays.

#include <cstdio>
#include <string>

#include "bucketing/counting.h"
#include "bucketing/equidepth_sampler.h"
#include "common/ratio.h"
#include "common/rng.h"
#include "datagen/table_generator.h"
#include "rules/optimized_confidence.h"
#include "rules/optimized_support.h"
#include "storage/tuple_stream.h"

int main() {
  const std::string table_path = "/tmp/out_of_core_demo.optr";
  const int64_t kRows = 500000;

  // Generate a 36 MB disk table (8 numeric + 8 boolean attrs, 72 B/tuple)
  // with a planted rule on attribute num2 => bool1, streaming straight to
  // disk -- the relation is never materialized in memory.
  optrules::datagen::TableConfig config =
      optrules::datagen::PaperSection61Config(kRows);
  optrules::datagen::PlantedRule planted;
  planted.numeric_attr = 2;
  planted.boolean_attr = 1;
  planted.lo = 400000.0;
  planted.hi = 600000.0;
  planted.prob_inside = 0.75;
  planted.prob_outside = 0.1;
  config.planted_rules.push_back(planted);
  {
    optrules::Rng rng(3);
    const optrules::Status status =
        optrules::datagen::GenerateTableToFile(config, rng, table_path);
    if (!status.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  std::printf("disk table: %s (%lld tuples, 72 B each)\n", table_path.c_str(),
              static_cast<long long>(kRows));

  // Pass 1: reservoir-sample 40 values per bucket, sort the sample, take
  // quantiles as boundaries (Algorithm 3.1 steps 1-3).
  auto stream_or = optrules::storage::FileTupleStream::Open(table_path);
  if (!stream_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 stream_or.status().ToString().c_str());
    return 1;
  }
  optrules::storage::FileTupleStream& stream = *stream_or.value();
  optrules::bucketing::SamplerOptions sampler;
  sampler.num_buckets = 1000;
  sampler.sample_per_bucket = 40;
  optrules::Rng rng(4);
  const optrules::bucketing::BucketBoundaries boundaries =
      optrules::bucketing::BuildEquiDepthBoundariesFromStream(stream, 2,
                                                              sampler, rng);
  std::printf("pass 1 done: %d approximate equi-depth buckets\n",
              boundaries.num_buckets());

  // Pass 2: count u_i and v_i for every Boolean attribute (step 4).
  stream.Reset();
  optrules::bucketing::BucketCounts counts =
      optrules::bucketing::CountBucketsFromStream(stream, 2, boundaries);
  optrules::bucketing::CompactEmptyBuckets(&counts);
  std::printf("pass 2 done: counted %lld tuples into %d buckets x %d "
              "targets\n\n",
              static_cast<long long>(counts.total_tuples),
              counts.num_buckets(), counts.num_targets());

  // O(M) optimizers on the bucket arrays (Section 4).
  const auto& v = counts.v[1];  // target bool1
  const optrules::rules::RangeRule confidence =
      optrules::rules::OptimizedConfidenceRule(
          counts.u, v, counts.total_tuples, counts.total_tuples / 10);
  const optrules::rules::RangeRule support =
      optrules::rules::OptimizedSupportRule(
          counts.u, v, counts.total_tuples, optrules::Ratio(1, 2));

  if (confidence.found) {
    std::printf("optimized confidence rule: num2 in [%.0f, %.0f] => bool1 "
                "(support %.1f%%, confidence %.1f%%)\n",
                counts.min_value[static_cast<size_t>(confidence.s)],
                counts.max_value[static_cast<size_t>(confidence.t)],
                confidence.support * 100.0, confidence.confidence * 100.0);
  }
  if (support.found) {
    std::printf("optimized support rule:    num2 in [%.0f, %.0f] => bool1 "
                "(support %.1f%%, confidence %.1f%%)\n",
                counts.min_value[static_cast<size_t>(support.s)],
                counts.max_value[static_cast<size_t>(support.t)],
                support.support * 100.0, support.confidence * 100.0);
  }
  std::printf("\nplanted ground truth: num2 in [%.0f, %.0f], confidence "
              "75%%\n",
              planted.lo, planted.hi);
  std::remove(table_path.c_str());
  return 0;
}
