// Out-of-core mining: the workflow the paper's Section 3 is really about.
//
// The table lives on disk (here: a generated PagedFile), is never loaded
// into memory, and is mined through the columnar batch core: a
// PagedFileBatchSource serves fixed-capacity column blocks, the
// MiningEngine plans almost equi-depth boundaries for EVERY numeric
// attribute in one streaming pass (reservoir samples, Algorithm 3.1 steps
// 1-3), then counts every (numeric, Boolean) attribute pair in ONE shared
// counting scan (step 4) before the O(M) optimizers run on the tiny
// bucket arrays (Section 4).

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "datagen/table_generator.h"
#include "rules/miner.h"
#include "storage/columnar_batch.h"
#include "storage/schema.h"

int main() {
  const std::string table_path = "/tmp/out_of_core_demo.optr";
  const int64_t kRows = 500000;

  // Generate a 36 MB disk table (8 numeric + 8 boolean attrs, 72 B/tuple)
  // with a planted rule on attribute num2 => bool1, streaming straight to
  // disk -- the relation is never materialized in memory.
  optrules::datagen::TableConfig config =
      optrules::datagen::PaperSection61Config(kRows);
  optrules::datagen::PlantedRule planted;
  planted.numeric_attr = 2;
  planted.boolean_attr = 1;
  planted.lo = 400000.0;
  planted.hi = 600000.0;
  planted.prob_inside = 0.75;
  planted.prob_outside = 0.1;
  config.planted_rules.push_back(planted);
  {
    optrules::Rng rng(3);
    const optrules::Status status =
        optrules::datagen::GenerateTableToFile(config, rng, table_path);
    if (!status.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  std::printf("disk table: %s (%lld tuples, 72 B each)\n", table_path.c_str(),
              static_cast<long long>(kRows));

  // Open the disk table as a batch source: column blocks of 4096 tuples,
  // transposed from the row-major pages as they stream in.
  auto source_or = optrules::storage::PagedFileBatchSource::Open(table_path);
  if (!source_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 source_or.status().ToString().c_str());
    return 1;
  }
  optrules::storage::PagedFileBatchSource& source = *source_or.value();

  // One engine session mines ALL 64 attribute pairs: one planning pass
  // (every attribute's reservoir filled at once) + one counting scan.
  // Registering a generalized condition (Section 4.3) and an aggregate
  // target (Section 5) up front folds their channels into the SAME scan.
  optrules::rules::MinerOptions options;
  options.num_buckets = 1000;
  options.sample_per_bucket = 40;
  options.min_support = 0.10;
  options.min_confidence = 0.5;
  options.seed = 4;
  optrules::rules::MiningEngine engine(
      &source, optrules::storage::Schema::Synthetic(8, 8), options);
  if (!engine.RequestGeneralized({"bool0"}).ok() ||
      !engine.RequestAverageTarget("num3").ok()) {
    std::fprintf(stderr, "channel registration failed\n");
    return 1;
  }
  const std::vector<optrules::rules::MinedRule> rules =
      engine.MineAllPairs();
  std::printf("mined %zu rules (%d pairs) in %lld counting scan(s) + 1 "
              "planning pass;\ndata was scanned %lld times in total\n\n",
              rules.size(), 8 * 8,
              static_cast<long long>(engine.counting_scans()),
              static_cast<long long>(source.scans_started()));

  // The pair carrying the planted rule.
  for (const optrules::rules::MinedRule& rule : rules) {
    if (rule.numeric_attr != "num2" || rule.boolean_attr != "bool1") {
      continue;
    }
    std::printf("%s rule: %s\n",
                rule.kind == optrules::rules::RuleKind::kOptimizedConfidence
                    ? "optimized confidence"
                    : "optimized support   ",
                rule.ToString().c_str());
  }
  std::printf("\nplanted ground truth: num2 in [%.0f, %.0f], confidence "
              "75%%\n",
              planted.lo, planted.hi);

  // Generalized, aggregate, and threshold-sweep queries answer from the
  // SAME cached channels -- the table is never rescanned.
  const auto generalized =
      engine.MineGeneralized("num2", {"bool0"}, "bool1");
  if (generalized.ok() && !generalized.value().empty()) {
    std::printf("\ngeneralized (Sec 4.3): %s\n",
                generalized.value()[0].ToString().c_str());
  }
  const auto average = engine.MineMaximumAverageRange("num2", "num3", 0.10);
  if (average.ok()) {
    std::printf("max-average (Sec 5):   %s\n",
                average.value().ToString().c_str());
  }
  const optrules::rules::ThresholdSet sweep[] = {{0.05, 0.4}, {0.20, 0.7}};
  const size_t swept_rules = engine.MineAllPairs(sweep).size();
  std::printf("threshold sweep:       %zu rules at 2 more threshold sets\n",
              swept_rules);
  std::printf("counting scans for the whole session: %lld (data scanned "
              "%lld times incl. planning)\n",
              static_cast<long long>(engine.counting_scans()),
              static_cast<long long>(source.scans_started()));
  std::remove(table_path.c_str());
  return engine.counting_scans() == 1 ? 0 : 1;
}
