// Bank marketing scenario (the paper's running example, Sections 1-5).
//
// A bank wants to promote card loans by direct mail within a fixed budget:
//   1. The optimized-support rule finds the largest customer cluster whose
//      card-loan probability is at least 50% (who to mail at scale).
//   2. The optimized-confidence rule finds the >= 10% cluster with the
//      highest card-loan probability (who to mail first).
//   3. Section 5 aggregates characterize "excellent" savers: the checking
//      balance range with at least 10% of customers maximizing the average
//      saving balance, and the largest range whose average savings clear a
//      target.
//   4. A generalized rule conditions on AutoWithdrawal users only.

#include <cstdio>

#include "common/rng.h"
#include "datagen/bank.h"
#include "rules/miner.h"

int main() {
  optrules::datagen::BankConfig config;
  config.num_customers = 200000;
  optrules::Rng rng(7);
  const optrules::storage::Relation customers =
      optrules::datagen::GenerateBankCustomers(config, rng);
  std::printf("BankCustomers: %lld tuples, %d numeric + %d boolean "
              "attributes\n\n",
              static_cast<long long>(customers.NumRows()),
              customers.schema().num_numeric(),
              customers.schema().num_boolean());

  optrules::rules::MinerOptions options;
  options.num_buckets = 1000;
  options.min_support = 0.10;
  options.min_confidence = 0.50;
  optrules::rules::Miner miner(&customers, options);

  // --- 1 & 2: the paper's motivating (Balance => CardLoan) rules. -------
  const auto balance_rules = miner.MinePair("Balance", "CardLoan").value();
  std::printf("[1] Largest >=50%%-confident balance cluster (optimized "
              "support):\n    %s\n\n",
              balance_rules[1].ToString().c_str());
  std::printf("[2] Most loan-prone ample cluster (optimized "
              "confidence):\n    %s\n\n",
              balance_rules[0].ToString().c_str());

  // Age is a weaker predictor; the miner quantifies that too.
  const auto age_rules = miner.MinePair("Age", "CardLoan").value();
  std::printf("    For comparison, Age-based rule: %s\n\n",
              age_rules[0].ToString().c_str());

  // --- 3: Section 5 average-operator queries. ---------------------------
  const auto rich_band =
      miner.MineMaximumAverageRange("CheckingAccount", "SavingAccount", 0.10)
          .value();
  std::printf("[3a] Maximum-average range (Example 5.2):\n     %s\n",
              rich_band.ToString().c_str());
  const auto wide_band =
      miner.MineMaximumSupportRange("CheckingAccount", "SavingAccount",
                                    12000.0)
          .value();
  std::printf("[3b] Maximum-support range with avg(SavingAccount) >= "
              "12000 (Example 5.3):\n     %s\n\n",
              wide_band.ToString().c_str());

  // --- 4: generalized rule (Section 4.3). --------------------------------
  const auto generalized =
      miner.MineGeneralized("Balance", {"AutoWithdrawal"}, "CardLoan")
          .value();
  std::printf("[4] Conditioned on AutoWithdrawal users:\n    %s\n",
              generalized[0].ToString().c_str());
  return 0;
}
