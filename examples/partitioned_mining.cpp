// Distributed mining over a partitioned table (src/dist/).
//
// The single-PagedFile flow of examples/out_of_core.cpp, taken one step
// toward the cluster: the disk table is SHARDED into K partition
// PagedFiles with a manifest (schema hash, per-partition row counts,
// per-attribute min/max stats), and the engine's one counting scan fans
// out through the DistributedScanCoordinator -- one worker scan per
// partition, partials merged in fixed partition order, so the session is
// still exactly ONE logical scan and the results are a pure function of
// (table, options) no matter how many workers run. Set OPTRULES_WORKERD
// to a built optrules_workerd binary to run the same session over forked
// subprocess workers speaking the pipe protocol.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/rng.h"
#include "datagen/table_generator.h"
#include "dist/coordinator.h"
#include "dist/partitioned_table.h"
#include "dist/scan_worker.h"
#include "rules/miner.h"
#include "storage/schema.h"

int main() {
  const std::string table_path = "/tmp/partitioned_demo.optr";
  const std::string table_dir = "/tmp/partitioned_demo_parts";
  const int64_t kRows = 400000;
  constexpr int kPartitions = 4;

  // Generate the single-file table, planting a rule to rediscover.
  optrules::datagen::TableConfig config =
      optrules::datagen::PaperSection61Config(kRows);
  optrules::datagen::PlantedRule planted;
  planted.numeric_attr = 2;
  planted.boolean_attr = 1;
  planted.lo = 400000.0;
  planted.hi = 600000.0;
  planted.prob_inside = 0.75;
  planted.prob_outside = 0.1;
  config.planted_rules.push_back(planted);
  {
    optrules::Rng rng(3);
    const optrules::Status status =
        optrules::datagen::GenerateTableToFile(config, rng, table_path);
    if (!status.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  // Shard it: K partition PagedFiles + MANIFEST.optm under one directory.
  std::filesystem::remove_all(table_dir);
  optrules::dist::PartitionOptions partition_options;
  partition_options.num_partitions = kPartitions;
  auto table = optrules::dist::PartitionPagedFile(
      table_path, optrules::storage::Schema::Synthetic(8, 8), table_dir,
      partition_options);
  if (!table.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("partitioned table: %s\n", table_dir.c_str());
  for (int p = 0; p < table.value().num_partitions(); ++p) {
    std::printf("  partition %d: %lld tuples (%s)\n", p,
                static_cast<long long>(table.value().partition_rows(p)),
                table.value().manifest().partitions[p].file.c_str());
  }
  const optrules::dist::AttributeStats& stats =
      table.value().manifest().numeric_stats[2];
  std::printf("  manifest stats for num2: min %.0f, max %.0f\n",
              stats.min_value, stats.max_value);

  // One engine session over the partitioned table: subprocess workers
  // when a worker daemon binary is configured, in-process threads
  // otherwise. Either way every counting scan is K partition scans merged
  // in partition order -- one LOGICAL scan, identical bits.
  optrules::dist::DistributedScanOptions scan_options;
  if (!optrules::dist::ResolveWorkerdPath("").empty()) {
    scan_options.worker_kind = optrules::dist::WorkerKind::kSubprocess;
    std::printf("workers: %d optrules_workerd subprocesses\n", kPartitions);
  } else {
    std::printf("workers: %d in-process (set OPTRULES_WORKERD for "
                "subprocess workers)\n",
                kPartitions);
  }
  optrules::rules::MinerOptions options;
  options.num_buckets = 1000;
  options.min_support = 0.10;
  options.min_confidence = 0.5;
  options.seed = 4;
  optrules::rules::MiningEngine engine(&table.value(), options,
                                       scan_options);
  if (!engine.RequestGeneralized({"bool0"}).ok() ||
      !engine.RequestAverageTarget("num3").ok() ||
      !engine.RequestRegionPair("num2", "num3", 48, 16).ok()) {
    std::fprintf(stderr, "channel registration failed\n");
    return 1;
  }

  const std::vector<optrules::rules::MinedRule> rules =
      engine.MineAllPairs();
  for (const optrules::rules::MinedRule& rule : rules) {
    if (rule.numeric_attr == "num2" && rule.boolean_attr == "bool1" &&
        rule.kind == optrules::rules::RuleKind::kOptimizedConfidence) {
      std::printf("\nrecovered planted rule: %s\n", rule.ToString().c_str());
    }
  }
  const auto average = engine.MineMaximumAverageRange("num2", "num3", 0.10);
  if (average.ok()) {
    std::printf("max-average (Sec 5):    %s\n",
                average.value().ToString().c_str());
  }
  const auto region = engine.MineOptimizedRegion("num2", "num3", "bool1");
  if (region.ok()) {
    std::printf("rectangular 48x16 grid (Sec 1.4):\n%s\n",
                region.value().ToString().c_str());
  }
  std::printf("\ncounting scans for the whole mixed session: %lld logical "
              "(%d physical partition scans each)\n",
              static_cast<long long>(engine.counting_scans()), kPartitions);

  std::filesystem::remove_all(table_dir);
  std::remove(table_path.c_str());
  return engine.counting_scans() == 1 ? 0 : 1;
}
