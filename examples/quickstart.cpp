// Quickstart: mine both optimized rules from a synthetic bank-customers
// table in ~30 lines of user code.
//
//   $ ./quickstart
//
// Steps: generate data -> construct a Miner -> ask for the optimized
// confidence and optimized support rules of (Balance => CardLoan).

#include <cstdio>

#include "common/rng.h"
#include "datagen/bank.h"
#include "rules/miner.h"

int main() {
  // 1. A table of 100k bank customers with a planted association: balances
  //    in [3000, 10000] strongly predict card-loan usage.
  optrules::datagen::BankConfig bank_config;
  bank_config.num_customers = 100000;
  optrules::Rng rng(1);
  const optrules::storage::Relation customers =
      optrules::datagen::GenerateBankCustomers(bank_config, rng);

  // 2. Configure the miner: 1000 approximate equi-depth buckets
  //    (Algorithm 3.1), 10% minimum support, 50% minimum confidence.
  optrules::rules::MinerOptions options;
  options.num_buckets = 1000;
  options.min_support = 0.10;
  options.min_confidence = 0.50;
  optrules::rules::Miner miner(&customers, options);

  // 3. Mine the two optimized rules for (Balance => CardLoan).
  const auto rules = miner.MinePair("Balance", "CardLoan");
  if (!rules.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }

  std::printf("Optimized confidence rule (max confidence, support >= "
              "%.0f%%):\n  %s\n\n",
              options.min_support * 100.0,
              rules.value()[0].ToString().c_str());
  std::printf("Optimized support rule (max support, confidence >= "
              "%.0f%%):\n  %s\n",
              options.min_confidence * 100.0,
              rules.value()[1].ToString().c_str());
  return 0;
}
