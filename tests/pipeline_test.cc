// End-to-end pipeline tests crossing module boundaries that the per-module
// suites don't: CSV -> Miner, PagedFile -> streaming bucketizer -> rules,
// report generation from a full sweep, and failure injection on truncated
// files.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "bucketing/counting.h"
#include "bucketing/equidepth_sampler.h"
#include "common/ratio.h"
#include "datagen/table_generator.h"
#include "report/report.h"
#include "rules/miner.h"
#include "rules/optimized_confidence.h"
#include "rules/optimized_support.h"
#include "storage/csv.h"
#include "storage/paged_file.h"
#include "storage/tuple_stream.h"

namespace optrules {
namespace {

datagen::TableConfig PlantedConfig(int64_t rows) {
  datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = 2;
  config.num_boolean = 2;
  datagen::PlantedRule rule;
  rule.numeric_attr = 0;
  rule.boolean_attr = 0;
  rule.lo = 250000.0;
  rule.hi = 450000.0;
  rule.prob_inside = 0.75;
  rule.prob_outside = 0.08;
  config.planted_rules.push_back(rule);
  return config;
}

TEST(PipelineTest, CsvRoundTripPreservesMinedRules) {
  Rng rng(1);
  const storage::Relation original =
      datagen::GenerateTable(PlantedConfig(30000), rng);
  const std::string path = testing::TempDir() + "/pipeline.csv";
  ASSERT_TRUE(storage::WriteCsv(original, path).ok());
  Result<storage::Relation> loaded = storage::ReadCsv(path);
  ASSERT_TRUE(loaded.ok());

  rules::MinerOptions options;
  options.num_buckets = 100;
  options.min_support = 0.1;
  rules::Miner a(&original, options);
  rules::Miner b(&loaded.value(), options);
  const rules::MinedRule rule_a = a.MinePair("num0", "bool0").value()[0];
  const rules::MinedRule rule_b = b.MinePair("num0", "bool0").value()[0];
  ASSERT_TRUE(rule_a.found);
  ASSERT_TRUE(rule_b.found);
  // Identical data + identical seed => identical mined rule.
  EXPECT_EQ(rule_a.support_count, rule_b.support_count);
  EXPECT_EQ(rule_a.hit_count, rule_b.hit_count);
  EXPECT_DOUBLE_EQ(rule_a.range_lo, rule_b.range_lo);
  std::remove(path.c_str());
}

TEST(PipelineTest, DiskPipelineMatchesInMemoryPipeline) {
  // The out-of-core path (file stream -> reservoir sampler -> streaming
  // counting -> O(M) rules) must find a rule statistically equivalent to
  // the in-memory path on the same data.
  Rng rng(2);
  const storage::Relation table =
      datagen::GenerateTable(PlantedConfig(40000), rng);
  const std::string path = testing::TempDir() + "/pipeline.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(table, path).ok());

  auto stream_or = storage::FileTupleStream::Open(path);
  ASSERT_TRUE(stream_or.ok());
  storage::FileTupleStream& stream = *stream_or.value();
  bucketing::SamplerOptions sampler;
  sampler.num_buckets = 100;
  Rng sample_rng(3);
  const bucketing::BucketBoundaries boundaries =
      bucketing::BuildEquiDepthBoundariesFromStream(stream, 0, sampler,
                                                    sample_rng);
  stream.Reset();
  bucketing::BucketCounts counts =
      bucketing::CountBucketsFromStream(stream, 0, boundaries);
  bucketing::CompactEmptyBuckets(&counts);
  const rules::RangeRule disk_rule = rules::OptimizedConfidenceRule(
      counts.u, counts.v[0], counts.total_tuples,
      rules::MinSupportCount(counts.total_tuples, 0.10));

  rules::MinerOptions options;
  options.num_buckets = 100;
  options.min_support = 0.10;
  rules::Miner miner(&table, options);
  const rules::MinedRule memory_rule =
      miner.MinePair("num0", "bool0").value()[0];

  ASSERT_TRUE(disk_rule.found);
  ASSERT_TRUE(memory_rule.found);
  EXPECT_NEAR(disk_rule.confidence, memory_rule.confidence, 0.05);
  EXPECT_NEAR(
      static_cast<double>(disk_rule.support_count) /
          static_cast<double>(counts.total_tuples),
      memory_rule.support, 0.05);
  std::remove(path.c_str());
}

TEST(PipelineTest, TruncatedPagedFileIsDetected) {
  Rng rng(4);
  const storage::Relation table =
      datagen::GenerateTable(PlantedConfig(1000), rng);
  const std::string path = testing::TempDir() + "/truncated.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(table, path).ok());
  // Chop the last 100 bytes off.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 100);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  // Bulk load detects the corruption...
  EXPECT_EQ(storage::ReadRelationFromFile(path,
                                          storage::Schema::Synthetic(2, 2))
                .status()
                .code(),
            StatusCode::kCorruption);
  // ...and the streaming scanner stops early rather than fabricating rows.
  auto stream_or = storage::FileTupleStream::Open(path);
  ASSERT_TRUE(stream_or.ok());
  storage::TupleView view;
  int64_t rows = 0;
  while (stream_or.value()->Next(&view)) ++rows;
  EXPECT_LT(rows, 1000);
  std::remove(path.c_str());
}

TEST(PipelineTest, FullSweepToMarkdownReport) {
  Rng rng(5);
  const storage::Relation table =
      datagen::GenerateTable(PlantedConfig(20000), rng);
  rules::MinerOptions options;
  options.num_buckets = 100;
  rules::Miner miner(&table, options);
  const auto ranked = report::RankByLift(miner.MineAll(), table);
  ASSERT_FALSE(ranked.empty());
  const std::string path = testing::TempDir() + "/sweep_report.md";
  ASSERT_TRUE(report::WriteTextFile(report::ToMarkdown(ranked), path).ok());
  std::ifstream in(path);
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line.find("| rule |"), 0u);
  std::remove(path.c_str());
}

TEST(PipelineTest, ConsistentAnswersAcrossThresholdSweep) {
  // Monotonicity invariants across thresholds, end to end:
  // higher min confidence => no more support; higher min support =>
  // no higher confidence.
  Rng rng(6);
  const storage::Relation table =
      datagen::GenerateTable(PlantedConfig(30000), rng);
  rules::MinerOptions options;
  options.num_buckets = 200;

  double previous_support = 2.0;
  for (const double min_confidence : {0.2, 0.4, 0.6, 0.8}) {
    options.min_confidence = min_confidence;
    rules::Miner miner(&table, options);
    const rules::MinedRule rule =
        miner.MinePair("num0", "bool0").value()[1];
    if (!rule.found) break;  // once infeasible, stays infeasible
    EXPECT_LE(rule.support, previous_support) << min_confidence;
    EXPECT_GE(rule.confidence, min_confidence - 1e-9);
    previous_support = rule.support;
  }

  double previous_confidence = 2.0;
  for (const double min_support : {0.05, 0.15, 0.3, 0.6}) {
    options.min_support = min_support;
    rules::Miner miner(&table, options);
    const rules::MinedRule rule =
        miner.MinePair("num0", "bool0").value()[0];
    ASSERT_TRUE(rule.found);
    EXPECT_LE(rule.confidence, previous_confidence + 1e-9) << min_support;
    EXPECT_GE(rule.support, min_support - 0.01);
    previous_confidence = rule.confidence;
  }
}

TEST(PipelineTest, GeneratedFileAndGeneratedRelationAgree) {
  // GenerateTable and GenerateTableToFile with the same seed produce the
  // same rows.
  const datagen::TableConfig config = PlantedConfig(2000);
  Rng rng_a(7);
  const storage::Relation in_memory = datagen::GenerateTable(config, rng_a);
  const std::string path = testing::TempDir() + "/gen_agree.optr";
  Rng rng_b(7);
  ASSERT_TRUE(datagen::GenerateTableToFile(config, rng_b, path).ok());
  Result<storage::Relation> from_file =
      storage::ReadRelationFromFile(path, in_memory.schema());
  ASSERT_TRUE(from_file.ok());
  ASSERT_EQ(from_file.value().NumRows(), in_memory.NumRows());
  for (int64_t row = 0; row < 100; ++row) {
    EXPECT_DOUBLE_EQ(from_file.value().NumericValue(row, 0),
                     in_memory.NumericValue(row, 0));
    EXPECT_EQ(from_file.value().BooleanValue(row, 1),
              in_memory.BooleanValue(row, 1));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace optrules
