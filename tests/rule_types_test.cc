// Tests for the shared rule types/helpers and the minimized-confidence
// variant.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rules/naive.h"
#include "rules/optimized_confidence.h"
#include "rules/rule.h"

namespace optrules::rules {
namespace {

TEST(MinSupportCountTest, CeilSemantics) {
  EXPECT_EQ(MinSupportCount(100, 0.05), 5);
  EXPECT_EQ(MinSupportCount(100, 0.051), 6);  // rounds up
  EXPECT_EQ(MinSupportCount(100, 0.0), 0);
  EXPECT_EQ(MinSupportCount(100, 1.0), 100);
  EXPECT_EQ(MinSupportCount(0, 0.5), 0);
  EXPECT_EQ(MinSupportCount(3, 0.5), 2);  // ceil(1.5)
}

TEST(MakeRangeRuleTest, ComputesStats) {
  const std::vector<int64_t> u = {10, 20, 30};
  const std::vector<int64_t> v = {1, 2, 3};
  const RangeRule rule = MakeRangeRule(u, v, 100, 1, 2);
  EXPECT_TRUE(rule.found);
  EXPECT_EQ(rule.support_count, 50);
  EXPECT_EQ(rule.hit_count, 5);
  EXPECT_DOUBLE_EQ(rule.support, 0.5);
  EXPECT_DOUBLE_EQ(rule.confidence, 0.1);
}

TEST(MakeRangeAggregateTest, ComputesAverage) {
  const std::vector<int64_t> u = {4, 6};
  const std::vector<double> v = {8.0, 12.0};
  const RangeAggregate aggregate = MakeRangeAggregate(u, v, 0, 1);
  EXPECT_TRUE(aggregate.found);
  EXPECT_EQ(aggregate.support_count, 10);
  EXPECT_DOUBLE_EQ(aggregate.sum, 20.0);
  EXPECT_DOUBLE_EQ(aggregate.average, 2.0);
}

TEST(MinimizedConfidenceTest, PicksColdCluster) {
  // Middle buckets almost never meet C.
  const std::vector<int64_t> u = {10, 10, 10, 10};
  const std::vector<int64_t> v = {9, 1, 0, 8};
  const RangeRule rule = MinimizedConfidenceRule(u, v, 40, 20);
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.s, 1);
  EXPECT_EQ(rule.t, 2);
  EXPECT_DOUBLE_EQ(rule.confidence, 0.05);
  EXPECT_EQ(rule.support_count, 20);
}

TEST(MinimizedConfidenceTest, InfeasibleSupport) {
  const std::vector<int64_t> u = {5};
  const std::vector<int64_t> v = {1};
  EXPECT_FALSE(MinimizedConfidenceRule(u, v, 5, 6).found);
}

TEST(MinimizedConfidenceTest, MatchesNaiveMinimumOverRandomInstances) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const int m = 2 + static_cast<int>(rng.NextBounded(40));
    std::vector<int64_t> u(static_cast<size_t>(m));
    std::vector<int64_t> v(static_cast<size_t>(m));
    int64_t total = 0;
    for (int i = 0; i < m; ++i) {
      u[static_cast<size_t>(i)] = rng.NextInt(1, 8);
      v[static_cast<size_t>(i)] = rng.NextInt(0, u[static_cast<size_t>(i)]);
      total += u[static_cast<size_t>(i)];
    }
    const int64_t min_support = 1 + rng.NextInt(0, total - 1);
    const RangeRule fast =
        MinimizedConfidenceRule(u, v, total, min_support);

    // Naive minimum-confidence oracle.
    bool found = false;
    int64_t best_hits = 0;
    int64_t best_support = 0;
    for (int s = 0; s < m; ++s) {
      int64_t support = 0;
      int64_t hits = 0;
      for (int t = s; t < m; ++t) {
        support += u[static_cast<size_t>(t)];
        hits += v[static_cast<size_t>(t)];
        if (support < min_support) continue;
        const __int128 lhs = static_cast<__int128>(hits) * best_support;
        const __int128 rhs = static_cast<__int128>(best_hits) * support;
        if (!found || lhs < rhs ||
            (lhs == rhs && support > best_support)) {
          found = true;
          best_hits = hits;
          best_support = support;
        }
      }
    }
    ASSERT_EQ(fast.found, found) << "seed " << seed;
    if (!found) continue;
    EXPECT_EQ(static_cast<__int128>(fast.hit_count) * best_support,
              static_cast<__int128>(best_hits) * fast.support_count)
        << "seed " << seed;
    EXPECT_EQ(fast.support_count, best_support) << "seed " << seed;
  }
}

TEST(MinimizedConfidenceTest, DualOfMaximized) {
  // On complemented hits, min-confidence of v equals 1 - max-confidence
  // of (u - v) over the same range family.
  Rng rng(99);
  const int m = 20;
  std::vector<int64_t> u(m);
  std::vector<int64_t> v(m);
  std::vector<int64_t> complement(m);
  int64_t total = 0;
  for (int i = 0; i < m; ++i) {
    u[static_cast<size_t>(i)] = rng.NextInt(1, 10);
    v[static_cast<size_t>(i)] = rng.NextInt(0, u[static_cast<size_t>(i)]);
    complement[static_cast<size_t>(i)] =
        u[static_cast<size_t>(i)] - v[static_cast<size_t>(i)];
    total += u[static_cast<size_t>(i)];
  }
  const RangeRule minimized = MinimizedConfidenceRule(u, v, total, 10);
  const RangeRule maximized =
      OptimizedConfidenceRule(u, complement, total, 10);
  ASSERT_TRUE(minimized.found);
  ASSERT_TRUE(maximized.found);
  EXPECT_NEAR(minimized.confidence, 1.0 - maximized.confidence, 1e-12);
}

}  // namespace
}  // namespace optrules::rules
