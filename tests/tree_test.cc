// Tests for the decision-tree application (Section 1.5): range splitting
// vs classic point splitting.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/table_generator.h"
#include "tree/decision_tree.h"

namespace optrules::tree {
namespace {

/// Data whose target is exactly `A in [lo, hi]` plus label noise.
storage::Relation BandRelation(int64_t rows, double lo, double hi,
                               double noise, uint64_t seed) {
  storage::Relation relation(storage::Schema::Synthetic(2, 1));
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    const double a = rng.NextUniform(0.0, 100.0);
    const double b = rng.NextUniform(0.0, 100.0);  // irrelevant attribute
    const bool inside = lo <= a && a <= hi;
    const bool label = rng.NextBernoulli(noise) ? !inside : inside;
    const double numeric[] = {a, b};
    const uint8_t boolean[] = {label ? uint8_t{1} : uint8_t{0}};
    relation.AppendRow(numeric, boolean);
  }
  return relation;
}

TEST(DecisionTreeTest, LearnsBandWithSingleRangeSplit) {
  const storage::Relation data = BandRelation(20000, 30.0, 60.0, 0.0, 1);
  TreeOptions options;
  options.max_depth = 1;
  options.split_family = SplitFamily::kRange;
  Result<DecisionTree> tree = DecisionTree::Train(data, "bool0", options);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree.value().Accuracy(data), 0.98);
  EXPECT_EQ(tree.value().depth(), 1);
}

TEST(DecisionTreeTest, PointSplitsNeedTwoLevelsForABand) {
  const storage::Relation data = BandRelation(20000, 30.0, 60.0, 0.0, 2);
  TreeOptions point;
  point.max_depth = 1;
  point.split_family = SplitFamily::kPointOnly;
  Result<DecisionTree> shallow = DecisionTree::Train(data, "bool0", point);
  ASSERT_TRUE(shallow.ok());
  // One guillotine cut cannot isolate an interior band.
  EXPECT_LT(shallow.value().Accuracy(data), 0.90);

  point.max_depth = 2;
  Result<DecisionTree> deeper = DecisionTree::Train(data, "bool0", point);
  ASSERT_TRUE(deeper.ok());
  EXPECT_GT(deeper.value().Accuracy(data), 0.95);
}

TEST(DecisionTreeTest, RangeBeatsPointAtEqualDepth) {
  const storage::Relation data = BandRelation(30000, 20.0, 45.0, 0.05, 3);
  TreeOptions range;
  range.max_depth = 1;
  range.split_family = SplitFamily::kRange;
  TreeOptions point = range;
  point.split_family = SplitFamily::kPointOnly;
  const double range_acc =
      DecisionTree::Train(data, "bool0", range).value().Accuracy(data);
  const double point_acc =
      DecisionTree::Train(data, "bool0", point).value().Accuracy(data);
  EXPECT_GT(range_acc, point_acc + 0.05);
}

TEST(DecisionTreeTest, UsesBooleanSplits) {
  // Target equals another Boolean attribute exactly.
  storage::Relation relation(storage::Schema::Synthetic(1, 2));
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const double numeric[] = {rng.NextUniform(0, 1)};
    const uint8_t flag = rng.NextBernoulli(0.5) ? 1 : 0;
    const uint8_t boolean[] = {flag, flag};
    relation.AppendRow(numeric, boolean);
  }
  TreeOptions options;
  options.max_depth = 1;
  Result<DecisionTree> tree =
      DecisionTree::Train(relation, "bool1", options);
  ASSERT_TRUE(tree.ok());
  EXPECT_DOUBLE_EQ(tree.value().Accuracy(relation), 1.0);
  // The rendering should mention the boolean predicate.
  EXPECT_NE(tree.value().ToString().find("bool0"), std::string::npos);
}

TEST(DecisionTreeTest, DepthZeroIsMajorityVote) {
  const storage::Relation data = BandRelation(1000, 0.0, 20.0, 0.0, 5);
  TreeOptions options;
  options.max_depth = 0;
  Result<DecisionTree> tree = DecisionTree::Train(data, "bool0", options);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_nodes(), 1);
  // Majority class is "outside the band" (80%).
  EXPECT_NEAR(tree.value().Accuracy(data), 0.8, 0.05);
}

TEST(DecisionTreeTest, MinLeafStopsSplitting) {
  const storage::Relation data = BandRelation(300, 30.0, 60.0, 0.0, 6);
  TreeOptions options;
  options.max_depth = 8;
  options.min_leaf_tuples = 200;  // cannot split 300 rows into 200+200
  Result<DecisionTree> tree = DecisionTree::Train(data, "bool0", options);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_nodes(), 1);
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  storage::Relation relation(storage::Schema::Synthetic(1, 1));
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double numeric[] = {rng.NextUniform(0, 1)};
    const uint8_t boolean[] = {1};  // all positive
    relation.AppendRow(numeric, boolean);
  }
  TreeOptions options;
  Result<DecisionTree> tree =
      DecisionTree::Train(relation, "bool0", options);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_nodes(), 1);
  EXPECT_DOUBLE_EQ(tree.value().Accuracy(relation), 1.0);
}

TEST(DecisionTreeTest, ErrorsOnBadInputs) {
  const storage::Relation data = BandRelation(100, 0, 50, 0.0, 8);
  EXPECT_EQ(DecisionTree::Train(data, "nope", TreeOptions{})
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(DecisionTree::Train(storage::Relation(
                                    storage::Schema::Synthetic(1, 1)),
                                "bool0", TreeOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  TreeOptions bad;
  bad.num_buckets = 1;
  EXPECT_EQ(DecisionTree::Train(data, "bool0", bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DecisionTreeTest, GeneralizesToHeldOutData) {
  const storage::Relation train = BandRelation(30000, 25.0, 55.0, 0.1, 9);
  const storage::Relation test = BandRelation(10000, 25.0, 55.0, 0.1, 10);
  TreeOptions options;
  options.max_depth = 3;
  Result<DecisionTree> tree = DecisionTree::Train(train, "bool0", options);
  ASSERT_TRUE(tree.ok());
  // Bayes accuracy is 0.9 (label noise 10%); the tree should approach it
  // on held-out data, not just memorize training rows.
  EXPECT_GT(tree.value().Accuracy(test), 0.85);
}

TEST(DecisionTreeTest, TwoBandsNeedDepthTwoRangeTree) {
  // Two disjoint positive bands: one range split is insufficient, two are.
  storage::Relation relation(storage::Schema::Synthetic(1, 1));
  Rng rng(11);
  for (int i = 0; i < 30000; ++i) {
    const double a = rng.NextUniform(0.0, 100.0);
    const bool label = (10 <= a && a <= 25) || (70 <= a && a <= 85);
    const double numeric[] = {a};
    const uint8_t boolean[] = {label ? uint8_t{1} : uint8_t{0}};
    relation.AppendRow(numeric, boolean);
  }
  TreeOptions options;
  options.split_family = SplitFamily::kRange;
  options.max_depth = 1;
  const double one_split =
      DecisionTree::Train(relation, "bool0", options).value().Accuracy(
          relation);
  options.max_depth = 2;
  const double two_splits =
      DecisionTree::Train(relation, "bool0", options).value().Accuracy(
          relation);
  EXPECT_GT(two_splits, 0.97);
  EXPECT_GT(two_splits, one_split);
}

}  // namespace
}  // namespace optrules::tree
