// Tests for the optimized-confidence algorithm (Algorithm 4.2), including
// randomized equivalence against the exhaustive O(M^2) oracle.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rules/naive.h"
#include "rules/optimized_confidence.h"

namespace optrules::rules {
namespace {

/// Random bucket instance: u_i in [1, max_u], v_i in [0, u_i].
struct Instance {
  std::vector<int64_t> u;
  std::vector<int64_t> v;
  int64_t total = 0;
};

Instance RandomInstance(int m, int64_t max_u, uint64_t seed) {
  Rng rng(seed);
  Instance instance;
  instance.u.resize(static_cast<size_t>(m));
  instance.v.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    instance.u[static_cast<size_t>(i)] = rng.NextInt(1, max_u);
    instance.v[static_cast<size_t>(i)] =
        rng.NextInt(0, instance.u[static_cast<size_t>(i)]);
    instance.total += instance.u[static_cast<size_t>(i)];
  }
  return instance;
}

/// Exact comparison h1/s1 vs h2/s2.
bool SameConfidence(int64_t h1, int64_t s1, int64_t h2, int64_t s2) {
  return static_cast<__int128>(h1) * s2 == static_cast<__int128>(h2) * s1;
}

TEST(OptimizedConfidenceTest, SingleBucket) {
  const std::vector<int64_t> u = {10};
  const std::vector<int64_t> v = {7};
  const RangeRule rule = OptimizedConfidenceRule(u, v, 10, 1);
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.s, 0);
  EXPECT_EQ(rule.t, 0);
  EXPECT_DOUBLE_EQ(rule.confidence, 0.7);
  EXPECT_DOUBLE_EQ(rule.support, 1.0);
}

TEST(OptimizedConfidenceTest, PicksHighConfidenceCluster) {
  // Middle buckets have 90% confidence; support threshold forces at least
  // 20 tuples, which the two middle buckets satisfy.
  const std::vector<int64_t> u = {10, 10, 10, 10};
  const std::vector<int64_t> v = {1, 9, 9, 1};
  const RangeRule rule = OptimizedConfidenceRule(u, v, 40, 20);
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.s, 1);
  EXPECT_EQ(rule.t, 2);
  EXPECT_DOUBLE_EQ(rule.confidence, 0.9);
  EXPECT_EQ(rule.support_count, 20);
}

TEST(OptimizedConfidenceTest, SupportThresholdForcesWiderRange) {
  const std::vector<int64_t> u = {10, 10, 10, 10};
  const std::vector<int64_t> v = {1, 9, 9, 1};
  // Threshold 30 forces three buckets; the best 3-run is 1+9+9 (or 9+9+1).
  const RangeRule rule = OptimizedConfidenceRule(u, v, 40, 30);
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.support_count, 30);
  EXPECT_EQ(rule.hit_count, 19);
}

TEST(OptimizedConfidenceTest, InfeasibleThresholdReturnsNotFound) {
  const std::vector<int64_t> u = {5, 5};
  const std::vector<int64_t> v = {1, 1};
  const RangeRule rule = OptimizedConfidenceRule(u, v, 10, 11);
  EXPECT_FALSE(rule.found);
}

TEST(OptimizedConfidenceTest, ThresholdEqualToTotalUsesWholeRange) {
  const std::vector<int64_t> u = {5, 5};
  const std::vector<int64_t> v = {1, 4};
  const RangeRule rule = OptimizedConfidenceRule(u, v, 10, 10);
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.s, 0);
  EXPECT_EQ(rule.t, 1);
  EXPECT_EQ(rule.hit_count, 5);
}

TEST(OptimizedConfidenceTest, ZeroHitsEverywhere) {
  const std::vector<int64_t> u = {5, 5, 5};
  const std::vector<int64_t> v = {0, 0, 0};
  const RangeRule rule = OptimizedConfidenceRule(u, v, 15, 5);
  ASSERT_TRUE(rule.found);
  EXPECT_DOUBLE_EQ(rule.confidence, 0.0);
  // Tie on confidence: maximum support wins, so the whole domain.
  EXPECT_EQ(rule.support_count, 15);
}

TEST(OptimizedConfidenceTest, AllHitsEverywherePrefersMaxSupport) {
  const std::vector<int64_t> u = {5, 5, 5};
  const std::vector<int64_t> v = {5, 5, 5};
  const RangeRule rule = OptimizedConfidenceRule(u, v, 15, 5);
  ASSERT_TRUE(rule.found);
  EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
  EXPECT_EQ(rule.support_count, 15);
}

TEST(OptimizedConfidenceTest, MinSupportClampedToOneTuple) {
  const std::vector<int64_t> u = {2, 8};
  const std::vector<int64_t> v = {2, 0};
  const RangeRule rule = OptimizedConfidenceRule(u, v, 10, 0);
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.s, 0);
  EXPECT_EQ(rule.t, 0);
  EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
}

TEST(OptimizedConfidenceTest, EmptyInput) {
  const RangeRule rule = OptimizedConfidenceRule({}, {}, 0, 1);
  EXPECT_FALSE(rule.found);
}

// Paper Example 2.3 flavor: a superset range can have higher confidence
// than its subset, and the optimizer must consider both.
TEST(OptimizedConfidenceTest, SupersetCanBeatSubset) {
  // [1,1] has conf 1/4; the superset [0,2] has conf 7/12 > 1/4, mirroring
  // the paper's remark that confidence is not monotone under inclusion.
  const std::vector<int64_t> u = {4, 4, 4};
  const std::vector<int64_t> v = {3, 1, 3};
  const RangeRule subset = MakeRangeRule(u, v, 12, 1, 1);
  const RangeRule superset = MakeRangeRule(u, v, 12, 0, 2);
  EXPECT_GT(superset.confidence, subset.confidence);
  // With min support 9 the optimizer must pick the full range even though
  // it contains the weak middle bucket.
  const RangeRule rule = OptimizedConfidenceRule(u, v, 12, 9);
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.s, 0);
  EXPECT_EQ(rule.t, 2);
  EXPECT_EQ(rule.hit_count, 7);
}

// ----------------------------------------------- property: vs naive ----

struct PropertyCase {
  int m;
  int64_t max_u;
  double min_support_fraction;
  uint64_t seed_base;
};

class ConfidencePropertyTest : public testing::TestWithParam<PropertyCase> {
};

TEST_P(ConfidencePropertyTest, MatchesNaiveOracle) {
  const PropertyCase& param = GetParam();
  for (uint64_t seed = param.seed_base; seed < param.seed_base + 25;
       ++seed) {
    const Instance instance = RandomInstance(param.m, param.max_u, seed);
    const int64_t min_support = MinSupportCount(
        instance.total, param.min_support_fraction);
    const RangeRule fast = OptimizedConfidenceRule(
        instance.u, instance.v, instance.total, min_support);
    const RangeRule naive = NaiveOptimizedConfidenceRule(
        instance.u, instance.v, instance.total, min_support);
    ASSERT_EQ(fast.found, naive.found) << "seed " << seed;
    if (!fast.found) continue;
    // The rules must agree exactly on the optimum (confidence, support);
    // the ranges themselves may differ only if fully tied.
    EXPECT_TRUE(SameConfidence(fast.hit_count, fast.support_count,
                               naive.hit_count, naive.support_count))
        << "seed " << seed << " fast " << fast.s << ".." << fast.t << " ("
        << fast.hit_count << "/" << fast.support_count << ") naive "
        << naive.s << ".." << naive.t << " (" << naive.hit_count << "/"
        << naive.support_count << ")";
    EXPECT_EQ(fast.support_count, naive.support_count) << "seed " << seed;
    // And the returned range must really be ample.
    EXPECT_GE(fast.support_count, std::max<int64_t>(min_support, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfidencePropertyTest,
    testing::Values(PropertyCase{1, 5, 0.2, 100},
                    PropertyCase{2, 5, 0.3, 200},
                    PropertyCase{3, 4, 0.25, 300},
                    PropertyCase{8, 6, 0.3, 400},
                    PropertyCase{20, 10, 0.2, 500},
                    PropertyCase{50, 20, 0.1, 600},
                    PropertyCase{50, 20, 0.5, 700},
                    PropertyCase{120, 3, 0.15, 800},   // heavy slope ties
                    PropertyCase{200, 50, 0.05, 900},
                    PropertyCase{200, 50, 0.9, 1000},  // near-full ranges
                    PropertyCase{33, 1, 0.3, 1100}));  // unit buckets

// OptimalSlopePair over real-valued weights (negative values allowed).
TEST(OptimalSlopePairTest, HandlesNegativeWeights) {
  const std::vector<int64_t> u = {1, 1, 1, 1};
  const std::vector<double> v = {-5.0, 3.0, 4.0, -2.0};
  const SlopePair pair = OptimalSlopePair(u, v, 2);
  ASSERT_TRUE(pair.found);
  // Best average over >= 2 tuples: buckets {1,2} avg 3.5.
  EXPECT_EQ(pair.m, 1);
  EXPECT_EQ(pair.n, 3);
}

}  // namespace
}  // namespace optrules::rules
