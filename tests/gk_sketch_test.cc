// Tests for the Greenwald-Khanna quantile sketch and the sketch-based
// equi-depth bucketizer.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "bucketing/gk_sketch.h"
#include "common/rng.h"
#include "datagen/distributions.h"
#include "storage/relation.h"
#include "storage/tuple_stream.h"

namespace optrules::bucketing {
namespace {

TEST(GkSketchTest, ExactOnTinyInputs) {
  GkQuantileSketch sketch(0.1);
  for (const double v : {5.0, 1.0, 3.0}) sketch.Add(v);
  EXPECT_EQ(sketch.count(), 3);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 5.0);
}

TEST(GkSketchTest, RejectsBadEpsilon) {
  EXPECT_DEATH(GkQuantileSketch(0.0), "");
  EXPECT_DEATH(GkQuantileSketch(0.5), "");
}

struct SketchCase {
  int64_t n;
  double epsilon;
  datagen::DistSpec spec;
  uint64_t seed;
};

class GkSketchPropertyTest : public testing::TestWithParam<SketchCase> {};

TEST_P(GkSketchPropertyTest, QuantileRankErrorWithinEpsilon) {
  const SketchCase& param = GetParam();
  Rng rng(param.seed);
  const auto dist = datagen::MakeDistribution(param.spec);
  std::vector<double> values(static_cast<size_t>(param.n));
  for (double& v : values) v = dist->Sample(rng);

  GkQuantileSketch sketch(param.epsilon);
  for (const double v : values) sketch.Add(v);

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double answer = sketch.Quantile(phi);
    // With duplicates the answer occupies a rank *interval*
    // [count(< answer) + 1, count(<= answer)]; GK guarantees the target
    // rank is within eps*n of that interval.
    const auto rank_lo = static_cast<int64_t>(
        std::lower_bound(sorted.begin(), sorted.end(), answer) -
        sorted.begin()) + 1;
    const auto rank_hi = static_cast<int64_t>(
        std::upper_bound(sorted.begin(), sorted.end(), answer) -
        sorted.begin());
    const double target = phi * static_cast<double>(param.n);
    const double distance =
        std::max({static_cast<double>(rank_lo) - target,
                  target - static_cast<double>(rank_hi), 0.0});
    // Allow +1 for boundary rounding.
    EXPECT_LE(distance, param.epsilon * static_cast<double>(param.n) + 1.0)
        << "phi " << phi;
  }
}

TEST_P(GkSketchPropertyTest, SummaryStaysSublinear) {
  const SketchCase& param = GetParam();
  if (param.n < 10000) return;
  Rng rng(param.seed ^ 0x77);
  const auto dist = datagen::MakeDistribution(param.spec);
  GkQuantileSketch sketch(param.epsilon);
  for (int64_t i = 0; i < param.n; ++i) sketch.Add(dist->Sample(rng));
  // The GK bound is O((1/eps) log(eps n)); assert a generous multiple.
  const double bound = 30.0 / param.epsilon *
                       std::log2(param.epsilon *
                                 static_cast<double>(param.n) + 2.0);
  EXPECT_LT(sketch.summary_size(), bound);
  EXPECT_LT(sketch.summary_size(), param.n / 4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GkSketchPropertyTest,
    testing::Values(
        SketchCase{1000, 0.05, datagen::DistSpec::Uniform(0, 1), 1},
        SketchCase{20000, 0.01, datagen::DistSpec::Uniform(0, 1e6), 2},
        SketchCase{20000, 0.02, datagen::DistSpec::Gaussian(0, 10), 3},
        SketchCase{20000, 0.02, datagen::DistSpec::LogNormal(0, 2), 4},
        SketchCase{50000, 0.005, datagen::DistSpec::Exponential(0.1), 5},
        SketchCase{20000, 0.05, datagen::DistSpec::Zipf(100, 1.2), 6}));

TEST(GkSketchTest, DuplicateHeavyInput) {
  GkQuantileSketch sketch(0.02);
  for (int i = 0; i < 10000; ++i) sketch.Add(42.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 42.0);
  EXPECT_LT(sketch.summary_size(), 500);
}

TEST(GkSketchTest, SortedAndReverseSortedStreams) {
  for (const bool reverse : {false, true}) {
    GkQuantileSketch sketch(0.01);
    for (int i = 0; i < 20000; ++i) {
      sketch.Add(static_cast<double>(reverse ? 20000 - i : i));
    }
    const double median = sketch.Quantile(0.5);
    EXPECT_NEAR(median, 10000.0, 0.01 * 20000 + 1);
  }
}

TEST(GkBucketizerTest, BucketsAlmostEquiDepth) {
  Rng rng(7);
  std::vector<double> values(50000);
  for (double& v : values) v = std::exp(2.0 * rng.NextGaussian());
  const int m = 100;
  const BucketBoundaries boundaries =
      BuildEquiDepthBoundariesGk(values, m, 0.001);
  ASSERT_EQ(boundaries.num_buckets(), m);
  std::vector<int64_t> counts(static_cast<size_t>(m), 0);
  for (const double v : values) {
    ++counts[static_cast<size_t>(boundaries.Locate(v))];
  }
  const double expected = 500.0;
  for (const int64_t c : counts) {
    // Adjacent cut points each carry eps*n = 50 rank error.
    EXPECT_NEAR(static_cast<double>(c), expected, 2 * 50.0 + 1);
  }
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}),
            50000);
}

TEST(GkBucketizerTest, EmptyInputSingleBucket) {
  EXPECT_EQ(
      BuildEquiDepthBoundariesGk(std::vector<double>{}, 10, 0.01)
          .num_buckets(),
      1);
}

TEST(GkBucketizerTest, StreamMatchesColumnVariant) {
  storage::Relation relation(storage::Schema::Synthetic(1, 1));
  Rng rng(8);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextUniform(0.0, 1000.0);
    const uint8_t flag = 0;
    relation.AppendRow(std::span<const double>(&v, 1),
                       std::span<const uint8_t>(&flag, 1));
  }
  const BucketBoundaries from_column =
      BuildEquiDepthBoundariesGk(relation.NumericColumn(0), 50, 0.005);
  storage::RelationTupleStream stream(&relation);
  const BucketBoundaries from_stream =
      BuildEquiDepthBoundariesGkFromStream(stream, 0, 50, 0.005);
  // Deterministic algorithm, same input order: identical cut points.
  EXPECT_EQ(from_column.cut_points(), from_stream.cut_points());
}

TEST(GkBucketizerTest, DeterministicUnlikeSampling) {
  Rng rng(9);
  std::vector<double> values(10000);
  for (double& v : values) v = rng.NextUniform(0.0, 1.0);
  const BucketBoundaries a = BuildEquiDepthBoundariesGk(values, 20, 0.01);
  const BucketBoundaries b = BuildEquiDepthBoundariesGk(values, 20, 0.01);
  EXPECT_EQ(a.cut_points(), b.cut_points());
}

}  // namespace
}  // namespace optrules::bucketing
