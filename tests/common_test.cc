// Unit tests for src/common: Rng, Ratio, binomial math, Status/Result,
// strict env parsing.

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/binomial.h"
#include "common/env.h"
#include "common/ratio.h"
#include "common/rng.h"
#include "common/status.h"

namespace optrules {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(11);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntClosedRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
  }
  // Degenerate single-point range.
  EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(RngTest, UniformMeanApproximatelyCentered) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextUniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, BernoulliRateMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, JumpDecorrelatesStreams) {
  Rng a(31);
  Rng b(31);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

// -------------------------------------------------------------- Ratio ----

TEST(RatioTest, NormalizesOnConstruction) {
  const Ratio r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(RatioTest, FromDoubleIsExactForDyadics) {
  EXPECT_EQ(Ratio::FromDouble(0.5), Ratio(1, 2));
  EXPECT_EQ(Ratio::FromDouble(0.25), Ratio(1, 4));
  EXPECT_EQ(Ratio::FromDouble(0.0), Ratio(0, 1));
  EXPECT_EQ(Ratio::FromDouble(1.0), Ratio(1, 1));
}

TEST(RatioTest, FromDoubleApproximatesNonDyadics) {
  const Ratio r = Ratio::FromDouble(0.3);
  EXPECT_NEAR(r.ToDouble(), 0.3, 1e-9);
}

TEST(RatioTest, ExactComparisonAgainstFractions) {
  const Ratio half(1, 2);
  EXPECT_TRUE(half.LessOrEqualTo(1, 2));    // 1/2 >= 1/2
  EXPECT_TRUE(half.LessOrEqualTo(2, 3));    // 2/3 >= 1/2
  EXPECT_FALSE(half.LessOrEqualTo(1, 3));   // 1/3 < 1/2
  EXPECT_TRUE(half.GreaterThan(49, 100));   // 0.49 < 1/2
  EXPECT_FALSE(half.GreaterThan(50, 100));  // 0.50 >= 1/2
}

TEST(RatioTest, ExactComparisonAtLargeMagnitudes) {
  // Would overflow int64 multiplication without 128-bit arithmetic.
  const Ratio r(999999999, 1000000000);
  EXPECT_TRUE(r.LessOrEqualTo(999999999, 1000000000));
  EXPECT_FALSE(r.LessOrEqualTo(999999998, 1000000000));
}

TEST(RatioTest, Ordering) {
  EXPECT_LT(Ratio(1, 3), Ratio(1, 2));
  EXPECT_FALSE(Ratio(2, 4) < Ratio(1, 2));
}

// ----------------------------------------------------------- Binomial ----

TEST(BinomialTest, LogFactorialSmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
}

TEST(BinomialTest, PmfMatchesHandComputedValues) {
  // Binomial(4, 0.5): pmf(2) = 6/16.
  EXPECT_NEAR(BinomialPmf(4, 2, 0.5), 0.375, 1e-12);
  // Binomial(10, 0.1): pmf(0) = 0.9^10.
  EXPECT_NEAR(BinomialPmf(10, 0, 0.1), std::pow(0.9, 10), 1e-12);
}

TEST(BinomialTest, PmfDegenerateProbabilities) {
  EXPECT_EQ(BinomialPmf(5, 0, 0.0), 1.0);
  EXPECT_EQ(BinomialPmf(5, 3, 0.0), 0.0);
  EXPECT_EQ(BinomialPmf(5, 5, 1.0), 1.0);
  EXPECT_EQ(BinomialPmf(5, 4, 1.0), 0.0);
}

TEST(BinomialTest, CdfSumsToOne) {
  EXPECT_NEAR(BinomialCdf(20, 20, 0.3), 1.0, 1e-12);
  EXPECT_NEAR(BinomialCdf(20, 19, 1.0), 0.0, 1e-12);
  EXPECT_EQ(BinomialCdf(20, -1, 0.3), 0.0);
}

TEST(BinomialTest, CdfMonotoneInK) {
  double prev = -1.0;
  for (int k = 0; k <= 50; ++k) {
    const double c = BinomialCdf(50, k, 0.4);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(BinomialTest, CdfStableForLargeN) {
  // Mean = 40 for S/M = 40; cdf at the mean should be near 0.5ish and
  // finite, even with n = 400000 trials.
  const double c = BinomialCdf(400000, 40, 1.0 / 10000.0);
  EXPECT_GT(c, 0.4);
  EXPECT_LT(c, 0.65);
}

TEST(BinomialTest, DeviationProbabilityDecreasesWithSampleSize) {
  const int64_t m = 10;
  double prev = 1.0;
  for (int64_t per_bucket : {5, 10, 20, 40, 80}) {
    const double pe = BucketDeviationProbability(per_bucket * m, m, 0.5);
    EXPECT_LE(pe, prev + 1e-9);
    prev = pe;
  }
}

TEST(BinomialTest, PaperOperatingPointBelowThirty) {
  // The paper picks S = 40*M because pe < 0.30 there (Section 3.2) for
  // every M they plot.
  for (int64_t m : {5, 10, 10000}) {
    EXPECT_LT(BucketDeviationProbability(40 * m, m, 0.5), 0.30)
        << "M = " << m;
  }
}

// ------------------------------------------------------------- Status ----

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  const std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------- env parsing ----

TEST(EnvParseTest, AcceptsCleanNonNegativeIntegers) {
  EXPECT_EQ(env::ParseNonNegativeInt("0"), 0u);
  EXPECT_EQ(env::ParseNonNegativeInt("64"), 64u);
  EXPECT_EQ(env::ParseNonNegativeInt("18446744073709551615"),
            std::numeric_limits<uint64_t>::max());
}

TEST(EnvParseTest, RejectsTrailingGarbage) {
  // The strtoull behavior this replaces: "64abc" used to parse as 64.
  EXPECT_FALSE(env::ParseNonNegativeInt("64abc").has_value());
  EXPECT_FALSE(env::ParseNonNegativeInt("1e6").has_value());
  EXPECT_FALSE(env::ParseNonNegativeInt("64 ").has_value());
  EXPECT_FALSE(env::ParseNonNegativeInt(" 64").has_value());
}

TEST(EnvParseTest, RejectsSignsAndEmpty) {
  // "-1" used to wrap to a huge unsigned budget.
  EXPECT_FALSE(env::ParseNonNegativeInt("-1").has_value());
  EXPECT_FALSE(env::ParseNonNegativeInt("+1").has_value());
  EXPECT_FALSE(env::ParseNonNegativeInt("").has_value());
  EXPECT_FALSE(env::ParseNonNegativeInt("-").has_value());
}

TEST(EnvParseTest, RejectsOverflow) {
  EXPECT_FALSE(env::ParseNonNegativeInt("18446744073709551616").has_value());
  EXPECT_FALSE(
      env::ParseNonNegativeInt("99999999999999999999999").has_value());
}

TEST(EnvParseTest, ReadEnvFallsBackOnGarbage) {
  ASSERT_EQ(setenv("OPTRULES_ENV_TEST_VAR", "64abc", 1), 0);
  EXPECT_EQ(env::ReadEnvNonNegativeInt("OPTRULES_ENV_TEST_VAR", 7), 7u);
  ASSERT_EQ(setenv("OPTRULES_ENV_TEST_VAR", "-1", 1), 0);
  EXPECT_EQ(env::ReadEnvNonNegativeInt("OPTRULES_ENV_TEST_VAR", 7), 7u);
  ASSERT_EQ(setenv("OPTRULES_ENV_TEST_VAR", "9000", 1), 0);
  EXPECT_EQ(env::ReadEnvNonNegativeInt("OPTRULES_ENV_TEST_VAR", 7), 9000u);
  ASSERT_EQ(unsetenv("OPTRULES_ENV_TEST_VAR"), 0);
  EXPECT_EQ(env::ReadEnvNonNegativeInt("OPTRULES_ENV_TEST_VAR", 7), 7u);
}

TEST(EnvParseTest, ReadEnvFlagStrictness) {
  ASSERT_EQ(setenv("OPTRULES_ENV_TEST_FLAG", "1", 1), 0);
  EXPECT_TRUE(env::ReadEnvFlag("OPTRULES_ENV_TEST_FLAG", false));
  ASSERT_EQ(setenv("OPTRULES_ENV_TEST_FLAG", "0", 1), 0);
  EXPECT_FALSE(env::ReadEnvFlag("OPTRULES_ENV_TEST_FLAG", true));
  // "1abc" used to pin the scalar kernels via atoi-style parsing; it must
  // now fall back to the default.
  ASSERT_EQ(setenv("OPTRULES_ENV_TEST_FLAG", "1abc", 1), 0);
  EXPECT_FALSE(env::ReadEnvFlag("OPTRULES_ENV_TEST_FLAG", false));
  ASSERT_EQ(setenv("OPTRULES_ENV_TEST_FLAG", "yes", 1), 0);
  EXPECT_FALSE(env::ReadEnvFlag("OPTRULES_ENV_TEST_FLAG", false));
  ASSERT_EQ(unsetenv("OPTRULES_ENV_TEST_FLAG"), 0);
}

}  // namespace
}  // namespace optrules
