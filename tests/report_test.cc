// Tests for interestingness measures and report rendering.

#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "datagen/table_generator.h"
#include "report/interestingness.h"
#include "report/report.h"
#include "rules/miner.h"

namespace optrules::report {
namespace {

rules::MinedRule MakeRule(double support, double confidence) {
  rules::MinedRule rule;
  rule.found = true;
  rule.kind = rules::RuleKind::kOptimizedConfidence;
  rule.numeric_attr = "num0";
  rule.boolean_attr = "bool0";
  rule.range_lo = 10.0;
  rule.range_hi = 20.0;
  rule.support = support;
  rule.confidence = confidence;
  return rule;
}

TEST(InterestingnessTest, LiftAgainstBaseRate) {
  const RuleMeasures m = ComputeMeasures(MakeRule(0.2, 0.8), 0.4);
  EXPECT_DOUBLE_EQ(m.lift, 2.0);
  // leverage = supp*conf - supp*base = 0.16 - 0.08.
  EXPECT_NEAR(m.leverage, 0.08, 1e-12);
  // conviction = (1-0.4)/(1-0.8) = 3.
  EXPECT_DOUBLE_EQ(m.conviction, 3.0);
  EXPECT_GT(m.gini_gain, 0.0);
}

TEST(InterestingnessTest, UninformativeRuleHasUnitLift) {
  const RuleMeasures m = ComputeMeasures(MakeRule(0.5, 0.3), 0.3);
  EXPECT_DOUBLE_EQ(m.lift, 1.0);
  EXPECT_NEAR(m.leverage, 0.0, 1e-12);
  EXPECT_NEAR(m.gini_gain, 0.0, 1e-12);
}

TEST(InterestingnessTest, PerfectConfidenceHasInfiniteConviction) {
  const RuleMeasures m = ComputeMeasures(MakeRule(0.1, 1.0), 0.3);
  EXPECT_TRUE(std::isinf(m.conviction));
}

storage::Relation PlantedRelation(uint64_t seed) {
  datagen::TableConfig config;
  config.num_rows = 30000;
  config.num_numeric = 2;
  config.num_boolean = 2;
  datagen::PlantedRule planted;
  planted.numeric_attr = 0;
  planted.boolean_attr = 0;
  planted.lo = 200000.0;
  planted.hi = 400000.0;
  planted.prob_inside = 0.8;
  planted.prob_outside = 0.1;
  config.planted_rules.push_back(planted);
  Rng rng(seed);
  return datagen::GenerateTable(config, rng);
}

TEST(RankingTest, PlantedRuleRanksFirst) {
  const storage::Relation relation = PlantedRelation(1);
  rules::MinerOptions options;
  options.num_buckets = 100;
  options.min_support = 0.05;
  rules::Miner miner(&relation, options);
  const std::vector<RankedRule> ranked =
      RankByLift(miner.MineAll(), relation);
  ASSERT_FALSE(ranked.empty());
  // The planted (num0 => bool0) association dominates the noise pairs.
  EXPECT_EQ(ranked[0].rule.numeric_attr, "num0");
  EXPECT_EQ(ranked[0].rule.boolean_attr, "bool0");
  EXPECT_GT(ranked[0].measures.lift, 2.0);
  // Lift ordering is non-increasing.
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].measures.lift, ranked[i].measures.lift);
  }
}

TEST(RankingTest, DropsNotFoundRules) {
  rules::MinedRule missing;
  missing.found = false;
  const storage::Relation relation = PlantedRelation(2);
  const std::vector<RankedRule> ranked = RankByLift({missing}, relation);
  EXPECT_TRUE(ranked.empty());
}

TEST(ReportTest, MarkdownContainsRuleRows) {
  const storage::Relation relation = PlantedRelation(3);
  rules::MinerOptions options;
  options.num_buckets = 100;
  rules::Miner miner(&relation, options);
  const std::vector<RankedRule> ranked =
      RankByLift(miner.MineAll(), relation);
  const std::string markdown = ToMarkdown(ranked);
  EXPECT_NE(markdown.find("| rule |"), std::string::npos);
  EXPECT_NE(markdown.find("num0 => bool0"), std::string::npos);
  EXPECT_NE(markdown.find("opt-confidence"), std::string::npos);
}

TEST(ReportTest, CsvHasHeaderAndRows) {
  const storage::Relation relation = PlantedRelation(4);
  rules::MinerOptions options;
  options.num_buckets = 100;
  rules::Miner miner(&relation, options);
  const std::vector<RankedRule> ranked =
      RankByLift(miner.MineAll(), relation);
  const std::string csv = ToCsv(ranked);
  // Header + one line per ranked rule.
  size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, ranked.size() + 1);
  EXPECT_EQ(csv.find("numeric_attr,boolean_attr"), 0u);
}

TEST(ReportTest, NanEndpointsRenderAsUnboundedEdges) {
  // A bucket whose only values were NaN survives compaction (u_i > 0), so
  // a rule spanning it can carry NaN endpoints; reports must render those
  // as the unbounded edges, never as "nan".
  rules::MinedRule rule = MakeRule(0.2, 0.8);
  rule.range_lo = std::nan("");
  rule.range_hi = std::nan("");
  RankedRule ranked;
  ranked.rule = rule;
  const std::string markdown = ToMarkdown({ranked});
  EXPECT_EQ(markdown.find("nan"), std::string::npos);
  EXPECT_NE(markdown.find("[-inf, inf]"), std::string::npos);
  const std::string csv = ToCsv({ranked});
  EXPECT_EQ(csv.find("nan"), std::string::npos);
  EXPECT_NE(csv.find("-inf,inf"), std::string::npos);
}

TEST(ReportTest, WriteTextFileRoundTrip) {
  const std::string path = testing::TempDir() + "/report.md";
  ASSERT_TRUE(WriteTextFile("hello report\n", path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hello report");
  std::remove(path.c_str());
}

TEST(ReportTest, WriteTextFileFailsOnBadPath) {
  EXPECT_EQ(WriteTextFile("x", "/no/such/dir/report.md").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace optrules::report
