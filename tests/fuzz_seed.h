// OPTRULES_FUZZ_SEED support for the fuzz test layers.
//
// When the env var is set (a decimal uint64), every fuzz stream mixes it
// into its per-test default seed, so CI can rotate seeds run to run while
// any recorded value reproduces a failure deterministically:
//   OPTRULES_FUZZ_SEED=12345 ctest -L fuzz
// Unset, the defaults keep the suite fully deterministic.

#ifndef OPTRULES_TESTS_FUZZ_SEED_H_
#define OPTRULES_TESTS_FUZZ_SEED_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace optrules::testfuzz {

inline uint64_t FuzzSeed(uint64_t default_seed) {
  const char* env = std::getenv("OPTRULES_FUZZ_SEED");
  if (env == nullptr || env[0] == '\0') return default_seed;
  const uint64_t base = std::strtoull(env, nullptr, 10);
  // Mix rather than replace so distinct fuzz streams inside one binary
  // stay decorrelated under a single env seed.
  const uint64_t seed = base ^ (default_seed * 0x9e3779b97f4a7c15ULL);
  std::fprintf(stderr,
               "OPTRULES_FUZZ_SEED=%llu -> stream seed %llu (default %llu)\n",
               static_cast<unsigned long long>(base),
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(default_seed));
  return seed;
}

}  // namespace optrules::testfuzz

#endif  // OPTRULES_TESTS_FUZZ_SEED_H_
