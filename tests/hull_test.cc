// Tests for geometry predicates, the static hull oracle, and the
// convex-hull tree (Algorithm 4.1).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hull/convex_hull_tree.h"
#include "hull/point.h"
#include "hull/static_hull.h"

namespace optrules::hull {
namespace {

TEST(PointTest, OrientationSigns) {
  const Point a{0, 0};
  const Point b{1, 0};
  EXPECT_EQ(Orientation(a, b, Point{2, 1}), 1);    // above: ccw
  EXPECT_EQ(Orientation(a, b, Point{2, -1}), -1);  // below: cw
  EXPECT_EQ(Orientation(a, b, Point{2, 0}), 0);    // collinear
}

TEST(PointTest, CompareSlopes) {
  const Point origin{0, 0};
  EXPECT_EQ(CompareSlopes(origin, Point{1, 1}, Point{1, 2}), -1);
  EXPECT_EQ(CompareSlopes(origin, Point{1, 2}, Point{1, 1}), 1);
  EXPECT_EQ(CompareSlopes(origin, Point{1, 1}, Point{2, 2}), 0);
}

TEST(PointTest, OrientationExactAtLargeIntegerCoordinates) {
  // 1e7-scale integer coordinates: products are ~1e14, exact in long
  // double. A nearly-collinear triple must be classified correctly.
  const Point a{0, 0};
  const Point b{10000000, 10000000};
  EXPECT_EQ(Orientation(a, b, Point{20000000, 20000001}), 1);
  EXPECT_EQ(Orientation(a, b, Point{20000000, 19999999}), -1);
  EXPECT_EQ(Orientation(a, b, Point{20000000, 20000000}), 0);
}

TEST(StaticHullTest, KnownSmallCases) {
  // Single point.
  const std::vector<Point> one = {{0, 0}};
  EXPECT_EQ(UpperHullIndices(one), (std::vector<int>{0}));
  // Two points.
  const std::vector<Point> two = {{0, 0}, {1, 5}};
  EXPECT_EQ(UpperHullIndices(two), (std::vector<int>{0, 1}));
  // Peak in the middle.
  const std::vector<Point> peak = {{0, 0}, {1, 3}, {2, 0}};
  EXPECT_EQ(UpperHullIndices(peak), (std::vector<int>{0, 1, 2}));
  // Valley in the middle is dropped from the upper hull.
  const std::vector<Point> valley = {{0, 0}, {1, -3}, {2, 0}};
  EXPECT_EQ(UpperHullIndices(valley), (std::vector<int>{0, 2}));
  // Collinear interior points are excluded (strict hull).
  const std::vector<Point> line = {{0, 0}, {1, 1}, {2, 2}};
  EXPECT_EQ(UpperHullIndices(line), (std::vector<int>{0, 2}));
}

std::vector<Point> RandomMonotonePoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points(static_cast<size_t>(n));
  double x = 0.0;
  for (auto& p : points) {
    x += 1.0 + static_cast<double>(rng.NextBounded(5));
    p.x = x;
    p.y = static_cast<double>(rng.NextInt(-50, 50));
  }
  return points;
}

TEST(StaticHullTest, HullNodesDominateAllPoints) {
  const std::vector<Point> points = RandomMonotonePoints(200, 31);
  const std::vector<int> hull = UpperHullIndices(points);
  // Every point must lie on or below every hull edge.
  for (size_t e = 0; e + 1 < hull.size(); ++e) {
    const Point& a = points[static_cast<size_t>(hull[e])];
    const Point& b = points[static_cast<size_t>(hull[e + 1])];
    for (const Point& p : points) {
      if (p.x < a.x || p.x > b.x) continue;
      EXPECT_LE(Orientation(a, b, p), 0);
    }
  }
}

// ----------------------------------------------------- convex hull tree ----

class HullTreeParamTest : public testing::TestWithParam<uint64_t> {};

TEST_P(HullTreeParamTest, MatchesStaticHullAtEveryBase) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int n = 3 + static_cast<int>(rng.NextBounded(120));
  const std::vector<Point> points = RandomMonotonePoints(n, seed * 7 + 1);

  ConvexHullTree tree(points);
  for (int base = 0; base < n; ++base) {
    if (base > 0) tree.AdvanceBase();
    ASSERT_EQ(tree.base(), base);
    const std::vector<int> expected = UpperHullIndices(
        std::span<const Point>(points).subspan(static_cast<size_t>(base)));
    ASSERT_EQ(tree.hull_size(), static_cast<int>(expected.size()))
        << "base " << base << " seed " << seed;
    // Stack order: top (= hull_size-1) is leftmost; expected is
    // left-to-right. Indices in `expected` are relative to the suffix.
    for (size_t k = 0; k < expected.size(); ++k) {
      const int node =
          tree.NodeAt(tree.hull_size() - 1 - static_cast<int>(k));
      EXPECT_EQ(node, expected[k] + base) << "base " << base;
      EXPECT_EQ(tree.PositionOf(node),
                tree.hull_size() - 1 - static_cast<int>(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HullTreeParamTest,
                         testing::Range(uint64_t{1}, uint64_t{40}));

TEST(HullTreeTest, SinglePoint) {
  ConvexHullTree tree({{1.0, 2.0}});
  EXPECT_EQ(tree.hull_size(), 1);
  EXPECT_EQ(tree.NodeAt(0), 0);
  EXPECT_EQ(tree.base(), 0);
}

TEST(HullTreeTest, PositionOfAbsentNodeIsMinusOne) {
  // The valley point is not on U_0.
  ConvexHullTree tree({{0, 0}, {1, -5}, {2, 0}});
  EXPECT_EQ(tree.PositionOf(1), -1);
  EXPECT_GE(tree.PositionOf(0), 0);
  // After advancing, the old base is gone and the valley is the new base.
  tree.AdvanceBase();
  EXPECT_EQ(tree.PositionOf(0), -1);
  EXPECT_GE(tree.PositionOf(1), 0);
}

TEST(HullTreeTest, CollinearPointsKeepExtremes) {
  ConvexHullTree tree({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(tree.hull_size(), 2);
  EXPECT_EQ(tree.NodeAt(0), 3);  // bottom = rightmost
  EXPECT_EQ(tree.NodeAt(1), 0);  // top = leftmost
}

TEST(HullTreeTest, MonotoneIncreasingConcaveSequence) {
  // Concave increasing y: every point is on the upper hull.
  std::vector<Point> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back(
        {static_cast<double>(i), std::sqrt(static_cast<double>(i))});
  }
  ConvexHullTree tree(points);
  EXPECT_EQ(tree.hull_size(), 50);
}

TEST(HullTreeTest, ConvexSequenceKeepsOnlyEndpoints) {
  // Convex (bowl) shape: only the two endpoints are on the upper hull.
  std::vector<Point> points;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i);
    points.push_back({x, (x - 25.0) * (x - 25.0)});
  }
  ConvexHullTree tree(points);
  EXPECT_EQ(tree.hull_size(), 2);
}

}  // namespace
}  // namespace optrules::hull
