// Tests for the optimized-support algorithm (Algorithms 4.3/4.4) and the
// Kadane max-gain baseline.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rules/kadane.h"
#include "rules/naive.h"
#include "rules/optimized_support.h"

namespace optrules::rules {
namespace {

struct Instance {
  std::vector<int64_t> u;
  std::vector<int64_t> v;
  int64_t total = 0;
};

Instance RandomInstance(int m, int64_t max_u, uint64_t seed) {
  Rng rng(seed);
  Instance instance;
  instance.u.resize(static_cast<size_t>(m));
  instance.v.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    instance.u[static_cast<size_t>(i)] = rng.NextInt(1, max_u);
    instance.v[static_cast<size_t>(i)] =
        rng.NextInt(0, instance.u[static_cast<size_t>(i)]);
    instance.total += instance.u[static_cast<size_t>(i)];
  }
  return instance;
}

TEST(OptimizedSupportTest, SingleBucketAboveThreshold) {
  const std::vector<int64_t> u = {10};
  const std::vector<int64_t> v = {6};
  const RangeRule rule = OptimizedSupportRule(u, v, 10, Ratio(1, 2));
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.support_count, 10);
}

TEST(OptimizedSupportTest, SingleBucketBelowThreshold) {
  const std::vector<int64_t> u = {10};
  const std::vector<int64_t> v = {4};
  EXPECT_FALSE(OptimizedSupportRule(u, v, 10, Ratio(1, 2)).found);
}

TEST(OptimizedSupportTest, WidensAcrossLowBucketWhenStillConfident) {
  // The middle bucket alone is below threshold, but the full range is
  // confident and has maximal support: (8+2+8)/(10+10+10) = 0.6 >= 0.5.
  const std::vector<int64_t> u = {10, 10, 10};
  const std::vector<int64_t> v = {8, 2, 8};
  const RangeRule rule = OptimizedSupportRule(u, v, 30, Ratio(1, 2));
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.s, 0);
  EXPECT_EQ(rule.t, 2);
  EXPECT_EQ(rule.support_count, 30);
}

TEST(OptimizedSupportTest, ExactThresholdBoundaryIsConfident) {
  // Exactly 50%: must count as confident (>=, not >).
  const std::vector<int64_t> u = {4, 4};
  const std::vector<int64_t> v = {2, 2};
  const RangeRule rule = OptimizedSupportRule(u, v, 8, Ratio(1, 2));
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.support_count, 8);
  EXPECT_DOUBLE_EQ(rule.confidence, 0.5);
}

TEST(OptimizedSupportTest, NoConfidentRange) {
  const std::vector<int64_t> u = {10, 10};
  const std::vector<int64_t> v = {1, 2};
  EXPECT_FALSE(OptimizedSupportRule(u, v, 20, Ratio(9, 10)).found);
}

TEST(OptimizedSupportTest, ZeroThresholdTakesWholeDomain) {
  const std::vector<int64_t> u = {3, 3, 3};
  const std::vector<int64_t> v = {0, 0, 0};
  const RangeRule rule = OptimizedSupportRule(u, v, 9, Ratio(0, 1));
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.support_count, 9);
}

TEST(OptimizedSupportTest, EmptyInput) {
  EXPECT_FALSE(OptimizedSupportRule({}, {}, 0, Ratio(1, 2)).found);
}

struct PropertyCase {
  int m;
  int64_t max_u;
  Ratio threshold;
  uint64_t seed_base;
};

class SupportPropertyTest : public testing::TestWithParam<PropertyCase> {};

TEST_P(SupportPropertyTest, MatchesNaiveOracle) {
  const PropertyCase& param = GetParam();
  for (uint64_t seed = param.seed_base; seed < param.seed_base + 25;
       ++seed) {
    const Instance instance = RandomInstance(param.m, param.max_u, seed);
    const RangeRule fast = OptimizedSupportRule(
        instance.u, instance.v, instance.total, param.threshold);
    const RangeRule naive = NaiveOptimizedSupportRule(
        instance.u, instance.v, instance.total, param.threshold);
    ASSERT_EQ(fast.found, naive.found) << "seed " << seed;
    if (!fast.found) continue;
    EXPECT_EQ(fast.support_count, naive.support_count)
        << "seed " << seed << " fast " << fast.s << ".." << fast.t
        << " naive " << naive.s << ".." << naive.t;
    // Returned range must really be confident (exact rational check).
    EXPECT_TRUE(
        param.threshold.LessOrEqualTo(fast.hit_count, fast.support_count))
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SupportPropertyTest,
    testing::Values(PropertyCase{1, 5, Ratio(1, 2), 100},
                    PropertyCase{2, 5, Ratio(1, 2), 200},
                    PropertyCase{3, 4, Ratio(2, 3), 300},
                    PropertyCase{8, 6, Ratio(1, 2), 400},
                    PropertyCase{20, 10, Ratio(3, 10), 500},
                    PropertyCase{50, 20, Ratio(7, 10), 600},
                    PropertyCase{120, 3, Ratio(1, 2), 700},
                    PropertyCase{200, 50, Ratio(9, 10), 800},
                    PropertyCase{200, 50, Ratio(1, 10), 900},
                    PropertyCase{33, 1, Ratio(1, 2), 1000},
                    PropertyCase{64, 8, Ratio(499, 1000), 1100}));

// ------------------------------------------------------------- Kadane ----

TEST(KadaneTest, FindsMaxGainSubarray) {
  // Gains with theta = 1/2 and u = 2 everywhere: g_i = 2*v_i - u_i.
  // v = {0, 2, 2, 0, 1} -> g = {-2, 2, 2, -2, 0}; best sum = buckets 1..2.
  const std::vector<int64_t> u = {2, 2, 2, 2, 2};
  const std::vector<int64_t> v = {0, 2, 2, 0, 1};
  const GainRange range = MaxGainRange(u, v, Ratio(1, 2));
  ASSERT_TRUE(range.found);
  EXPECT_EQ(range.s, 1);
  EXPECT_EQ(range.t, 2);
  EXPECT_DOUBLE_EQ(range.gain, 4.0);
}

TEST(KadaneTest, AllNegativePicksLeastBad) {
  const std::vector<int64_t> u = {10, 10};
  const std::vector<int64_t> v = {1, 3};
  const GainRange range = MaxGainRange(u, v, Ratio(1, 2));
  ASSERT_TRUE(range.found);
  EXPECT_EQ(range.s, 1);
  EXPECT_EQ(range.t, 1);
  EXPECT_DOUBLE_EQ(range.gain, 2.0 * 3 - 10.0);
}

TEST(KadaneTest, EmptyInput) {
  EXPECT_FALSE(MaxGainRange({}, {}, Ratio(1, 2)).found);
}

TEST(KadaneTest, MatchesBruteForceGain) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const Instance instance = RandomInstance(40, 8, seed);
    const Ratio theta(1, 2);
    const GainRange fast = MaxGainRange(instance.u, instance.v, theta);
    // Brute force max-gain.
    double best = -1e300;
    for (size_t s = 0; s < instance.u.size(); ++s) {
      double gain = 0.0;
      for (size_t t = s; t < instance.u.size(); ++t) {
        gain += 2.0 * static_cast<double>(instance.v[t]) -
                static_cast<double>(instance.u[t]);
        best = std::max(best, gain);
      }
    }
    ASSERT_TRUE(fast.found);
    EXPECT_DOUBLE_EQ(fast.gain, best) << "seed " << seed;
  }
}

// The paper's Section 4.2 remark: Kadane's maximum-gain range is not the
// optimized-support rule, because a confident superset with smaller gain
// can have more support.
TEST(KadaneTest, MaxGainIsNotOptimizedSupport) {
  // theta = 1/2. Bucket gains g = 2v - u:
  //   u = {2, 10, 2},  v = {2, 5, 0}  ->  g = {+2, 0, -4}.
  // Kadane picks [0,0] (gain 2; ties do not extend it). But the whole
  // domain [0,2] has conf 7/14 = 1/2 >= theta and support 14.
  const std::vector<int64_t> u = {2, 10, 2};
  const std::vector<int64_t> v = {2, 5, 0};
  const Ratio theta(1, 2);
  const GainRange kadane = MaxGainRange(u, v, theta);
  const RangeRule support = NaiveOptimizedSupportRule(u, v, 14, theta);
  ASSERT_TRUE(kadane.found);
  ASSERT_TRUE(support.found);
  EXPECT_EQ(support.support_count, 14);
  // Kadane's range has strictly less support than the optimized rule.
  int64_t kadane_support = 0;
  for (int i = kadane.s; i <= kadane.t; ++i) {
    kadane_support += u[static_cast<size_t>(i)];
  }
  EXPECT_LT(kadane_support, support.support_count);
}

// Randomized: Kadane's range never has more support than the
// optimized-support rule among confident ranges (when its range is
// confident at all), and is frequently strictly smaller.
TEST(KadaneTest, NeverBeatsOptimizedSupport) {
  int strictly_smaller = 0;
  for (uint64_t seed = 100; seed < 200; ++seed) {
    const Instance instance = RandomInstance(30, 10, seed);
    const Ratio theta(1, 2);
    const RangeRule support = OptimizedSupportRule(
        instance.u, instance.v, instance.total, theta);
    const GainRange kadane =
        MaxGainRange(instance.u, instance.v, theta);
    if (!support.found || !kadane.found) continue;
    int64_t kadane_support = 0;
    for (int i = kadane.s; i <= kadane.t; ++i) {
      kadane_support += instance.u[static_cast<size_t>(i)];
    }
    EXPECT_LE(kadane_support, support.support_count) << "seed " << seed;
    if (kadane_support < support.support_count) ++strictly_smaller;
  }
  EXPECT_GT(strictly_smaller, 10);
}

}  // namespace
}  // namespace optrules::rules
