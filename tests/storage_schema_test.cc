// Unit tests for storage::Schema.

#include <gtest/gtest.h>

#include "storage/schema.h"

namespace optrules::storage {
namespace {

TEST(SchemaTest, CreateAndLookup) {
  Result<Schema> schema = Schema::Create({
      {"Balance", AttrKind::kNumeric},
      {"CardLoan", AttrKind::kBoolean},
      {"Age", AttrKind::kNumeric},
  });
  ASSERT_TRUE(schema.ok());
  const Schema& s = schema.value();
  EXPECT_EQ(s.num_attributes(), 3);
  EXPECT_EQ(s.num_numeric(), 2);
  EXPECT_EQ(s.num_boolean(), 1);
  EXPECT_EQ(s.NumericIndexOf("Balance").value(), 0);
  EXPECT_EQ(s.NumericIndexOf("Age").value(), 1);
  EXPECT_EQ(s.BooleanIndexOf("CardLoan").value(), 0);
  EXPECT_EQ(s.NumericName(1), "Age");
  EXPECT_EQ(s.BooleanName(0), "CardLoan");
}

TEST(SchemaTest, LookupMissingAttributeFails) {
  Result<Schema> schema = Schema::Create({{"A", AttrKind::kNumeric}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().NumericIndexOf("B").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(schema.value().BooleanIndexOf("A").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, RejectsDuplicateNames) {
  EXPECT_FALSE(Schema::Create({{"A", AttrKind::kNumeric},
                               {"A", AttrKind::kNumeric}})
                   .ok());
  // Duplicate across kinds is also rejected.
  EXPECT_FALSE(Schema::Create({{"A", AttrKind::kNumeric},
                               {"A", AttrKind::kBoolean}})
                   .ok());
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Create({{"", AttrKind::kNumeric}}).ok());
}

TEST(SchemaTest, SyntheticNamesAndLayout) {
  const Schema s = Schema::Synthetic(8, 8);
  EXPECT_EQ(s.num_numeric(), 8);
  EXPECT_EQ(s.num_boolean(), 8);
  EXPECT_EQ(s.NumericName(0), "num0");
  EXPECT_EQ(s.BooleanName(7), "bool7");
  // The paper's Section 6.1 layout: 8 doubles + 8 boolean bytes = 72 B.
  EXPECT_EQ(s.RowBytes(), 72u);
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(Schema::Synthetic(2, 1) == Schema::Synthetic(2, 1));
  EXPECT_FALSE(Schema::Synthetic(2, 1) == Schema::Synthetic(1, 2));
}

TEST(SchemaTest, AttrKindNames) {
  EXPECT_STREQ(AttrKindName(AttrKind::kNumeric), "numeric");
  EXPECT_STREQ(AttrKindName(AttrKind::kBoolean), "boolean");
}

}  // namespace
}  // namespace optrules::storage
