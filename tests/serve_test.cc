// Tests for the resident mining service (src/serve/): protocol codecs
// against hostile payloads, cross-session scan coalescing correctness
// (bit-identical to standalone engines, one physical scan per window),
// per-session failure isolation, admission control, graceful shutdown
// with wedged clients, the shared FrameWriter's multi-thread atomicity,
// generation re-keying on table republish, and a boot round against the
// real optrules_served daemon on an ephemeral socket ($OPTRULES_SERVED).

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "datagen/table_generator.h"
#include "dist/partitioned_table.h"
#include "dist/wire.h"
#include "rules/miner.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace optrules::serve {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

storage::Relation TestRelation(int64_t rows, uint64_t seed,
                               int num_numeric = 3, int num_boolean = 2) {
  datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = num_numeric;
  config.num_boolean = num_boolean;
  Rng rng(seed);
  storage::Relation relation = datagen::GenerateTable(config, rng);
  std::vector<double>& column = relation.MutableNumericColumn(0);
  for (size_t row = 0; row < column.size(); row += 97) {
    column[row] = std::nan("");
  }
  return relation;
}

dist::PartitionedTable MakeTable(const std::string& dir, int64_t rows,
                                 uint64_t seed) {
  dist::PartitionOptions options;
  options.num_partitions = 3;
  auto table = dist::PartitionRelation(TestRelation(rows, seed), dir, options);
  EXPECT_TRUE(table.status().ok()) << table.status().ToString();
  return std::move(table).value();
}

rules::MinerOptions SmallOptions() {
  rules::MinerOptions options;
  options.num_buckets = 32;
  options.region_grid_buckets = 8;
  return options;
}

MiningClient Connect(const MiningServer& server) {
  auto client = MiningClient::ConnectUnix(server.address());
  EXPECT_TRUE(client.status().ok()) << client.status().ToString();
  MiningClient connected = std::move(client).value();
  // Generous total deadline so a server bug fails the test instead of
  // hanging it.
  connected.set_timeouts({.liveness_ms = 0, .total_ms = 60'000});
  return connected;
}

bool BitEq(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void ExpectRulesEqual(const std::vector<rules::MinedRule>& served,
                      const std::vector<rules::MinedRule>& expected) {
  ASSERT_EQ(served.size(), expected.size());
  for (size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].found, expected[i].found);
    EXPECT_EQ(served[i].kind, expected[i].kind);
    EXPECT_EQ(served[i].numeric_attr, expected[i].numeric_attr);
    EXPECT_EQ(served[i].boolean_attr, expected[i].boolean_attr);
    EXPECT_EQ(served[i].presumptive_condition,
              expected[i].presumptive_condition);
    EXPECT_TRUE(BitEq(served[i].range_lo, expected[i].range_lo));
    EXPECT_TRUE(BitEq(served[i].range_hi, expected[i].range_hi));
    EXPECT_EQ(served[i].support_count, expected[i].support_count);
    EXPECT_EQ(served[i].hit_count, expected[i].hit_count);
    EXPECT_TRUE(BitEq(served[i].support, expected[i].support));
    EXPECT_TRUE(BitEq(served[i].confidence, expected[i].confidence));
  }
}

SessionRequest PairRequest(const std::string& table_dir,
                           const storage::Schema& schema) {
  SessionRequest request;
  request.table_dir = table_dir;
  request.options = SmallOptions();
  ServeQuery pair;
  pair.kind = ServeQuery::Kind::kPair;
  pair.attr_a = schema.NumericName(0);
  pair.attr_b = schema.BooleanName(0);
  request.queries = {pair};
  return request;
}

// ------------------------------------------------------ protocol codec ----

TEST(ServeProtocolTest, OpenSessionRoundTrip) {
  SessionRequest request;
  request.table_dir = "/data/tables/prod";
  request.options = SmallOptions();
  request.options.min_support = 0.07;
  request.deadline_ms = 1234;
  ServeQuery generalized;
  generalized.kind = ServeQuery::Kind::kGeneralized;
  generalized.attr_a = "balance";
  generalized.conditions = {"card_loan", "employed"};
  generalized.attr_b = "default";
  ServeQuery region;
  region.kind = ServeQuery::Kind::kRegion;
  region.attr_a = "age";
  region.attr_b = "balance";
  region.target = "card_loan";
  region.nx = 12;
  region.ny = 20;
  request.queries = {generalized, region};

  std::vector<uint8_t> payload;
  EncodeOpenSession(77, request, &payload);
  uint32_t session_id = 0;
  SessionRequest decoded;
  ASSERT_TRUE(DecodeOpenSession(payload, &session_id, &decoded).ok());
  EXPECT_EQ(session_id, 77u);
  EXPECT_EQ(decoded.table_dir, request.table_dir);
  EXPECT_EQ(decoded.deadline_ms, 1234);
  EXPECT_TRUE(BitEq(decoded.options.min_support, 0.07));
  ASSERT_EQ(decoded.queries.size(), 2u);
  EXPECT_EQ(decoded.queries[0].kind, ServeQuery::Kind::kGeneralized);
  EXPECT_EQ(decoded.queries[0].conditions,
            (std::vector<std::string>{"card_loan", "employed"}));
  EXPECT_EQ(decoded.queries[1].nx, 12);
  EXPECT_EQ(decoded.queries[1].ny, 20);
}

TEST(ServeProtocolTest, TruncatedOpenSessionNeverCrashes) {
  SessionRequest request;
  request.table_dir = "/data/tables/prod";
  request.options = SmallOptions();
  ServeQuery pair;
  pair.kind = ServeQuery::Kind::kPair;
  pair.attr_a = "age";
  pair.attr_b = "card_loan";
  request.queries = {pair};
  std::vector<uint8_t> payload;
  EncodeOpenSession(9, request, &payload);

  // Every truncation must fail cleanly, and the session id must survive
  // any truncation past the 5-byte prefix (the server addresses its error
  // frame with it).
  for (size_t len = 0; len < payload.size(); ++len) {
    uint32_t session_id = 0;
    SessionRequest decoded;
    const Status status = DecodeOpenSession(
        std::span<const uint8_t>(payload.data(), len), &session_id,
        &decoded);
    EXPECT_FALSE(status.ok()) << "truncation at " << len;
    if (len >= 5) {
      EXPECT_EQ(session_id, 9u);
    }
  }
}

TEST(ServeProtocolTest, HostileCountsRejectedBeforeAllocation) {
  // kOpenSession + session id + a table_dir whose length prefix claims
  // 2^60 bytes: the bounds-checked reader must fail, not allocate.
  std::vector<uint8_t> payload;
  bytes::AppendScalar<uint8_t>(
      &payload, static_cast<uint8_t>(ServeFrameKind::kOpenSession));
  bytes::AppendScalar<uint32_t>(&payload, 5);
  bytes::AppendScalar<uint64_t>(&payload, 1ull << 60);
  payload.push_back('x');
  uint32_t session_id = 0;
  SessionRequest decoded;
  const Status status = DecodeOpenSession(payload, &session_id, &decoded);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(session_id, 5u);
}

TEST(ServeProtocolTest, ErrorAndStatsRoundTrip) {
  std::vector<uint8_t> payload;
  EncodeServeError(31, Status::DeadlineExceeded("too slow"), &payload);
  uint32_t session_id = 0;
  Status carried;
  ASSERT_TRUE(DecodeServeError(payload, &session_id, &carried).ok());
  EXPECT_EQ(session_id, 31u);
  EXPECT_EQ(carried.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(carried.message(), "too slow");

  ServerStatsSnapshot stats;
  stats.sessions_admitted = 10;
  stats.physical_scans = 2;
  stats.coalesced_sessions = 8;
  payload.clear();
  EncodeStatsResult(stats, &payload);
  ServerStatsSnapshot decoded;
  ASSERT_TRUE(DecodeStatsResult(payload, &decoded).ok());
  EXPECT_EQ(decoded.sessions_admitted, 10);
  EXPECT_EQ(decoded.physical_scans, 2);
  EXPECT_EQ(decoded.coalesced_sessions, 8);
}

TEST(ServeProtocolTest, ExtendedStatsRoundTripCoversEveryCounter) {
  // Every ServerStatsSnapshot field gets a distinct value so a codec that
  // swaps, drops, or truncates any field fails loudly.
  ServerStatsSnapshot stats;
  stats.sessions_admitted = 101;
  stats.sessions_rejected = 102;
  stats.sessions_served = 103;
  stats.sessions_failed = 104;
  stats.physical_scans = 105;
  stats.coalesced_sessions = 106;
  stats.batches_executed = 107;
  stats.engines_cached = 108;
  stats.engine_cache_hits = 109;
  stats.engine_cache_misses = 110;
  stats.rejected_connection_limit = 111;
  stats.rejected_admission = 112;
  stats.rejected_queue_deadline = 113;

  std::vector<uint8_t> payload;
  EncodeStatsResult(stats, &payload);
  ServerStatsSnapshot decoded;
  ASSERT_TRUE(DecodeStatsResult(payload, &decoded).ok());
  EXPECT_EQ(decoded.sessions_admitted, 101);
  EXPECT_EQ(decoded.sessions_rejected, 102);
  EXPECT_EQ(decoded.sessions_served, 103);
  EXPECT_EQ(decoded.sessions_failed, 104);
  EXPECT_EQ(decoded.physical_scans, 105);
  EXPECT_EQ(decoded.coalesced_sessions, 106);
  EXPECT_EQ(decoded.batches_executed, 107);
  EXPECT_EQ(decoded.engines_cached, 108);
  EXPECT_EQ(decoded.engine_cache_hits, 109);
  EXPECT_EQ(decoded.engine_cache_misses, 110);
  EXPECT_EQ(decoded.rejected_connection_limit, 111);
  EXPECT_EQ(decoded.rejected_admission, 112);
  EXPECT_EQ(decoded.rejected_queue_deadline, 113);

  // Truncating any suffix (including just the new trailing fields) must
  // fail instead of decoding a partial snapshot.
  for (size_t len = 0; len < payload.size(); ++len) {
    ServerStatsSnapshot partial;
    EXPECT_FALSE(DecodeStatsResult(
                     std::span<const uint8_t>(payload.data(), len), &partial)
                     .ok())
        << "truncation at " << len;
  }
}

TEST(ServeProtocolTest, MetricsReplyRoundTripIsBitExact) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["bufferpool.hits"] = 12345;
  snapshot.counters["serve.sessions_served"] = 2;
  snapshot.gauges["threadpool.queue_depth"] = 7.0;
  // Doubles must survive the wire bit-for-bit, including values that
  // compare equal under ==: -0.0 must not come back as +0.0.
  snapshot.gauges["serve.engines_cached"] = -0.0;
  obs::HistogramSnapshot hist;
  hist.bounds = {0.001, 0.1, 1.0};
  hist.bucket_counts = {4, 3, 2, 1};
  hist.count = 10;
  hist.sum = 1.25;
  snapshot.histograms["scan.locate_seconds"] = hist;
  obs::HistogramSnapshot empty_hist;
  empty_hist.bucket_counts = {0};  // zero bounds => one overflow bucket
  snapshot.histograms["empty.hist"] = empty_hist;

  std::vector<uint8_t> payload;
  EncodeMetricsReply(snapshot, &payload);
  obs::MetricsSnapshot decoded;
  ASSERT_TRUE(DecodeMetricsReply(payload, &decoded).ok());

  EXPECT_EQ(decoded.counters, snapshot.counters);
  ASSERT_EQ(decoded.gauges.size(), snapshot.gauges.size());
  for (const auto& [name, value] : snapshot.gauges) {
    ASSERT_TRUE(decoded.gauges.count(name)) << name;
    EXPECT_TRUE(BitEq(decoded.gauges[name], value)) << name;
  }
  ASSERT_EQ(decoded.histograms.size(), snapshot.histograms.size());
  for (const auto& [name, expected] : snapshot.histograms) {
    ASSERT_TRUE(decoded.histograms.count(name)) << name;
    const obs::HistogramSnapshot& got = decoded.histograms[name];
    ASSERT_EQ(got.bounds.size(), expected.bounds.size());
    for (size_t i = 0; i < got.bounds.size(); ++i) {
      EXPECT_TRUE(BitEq(got.bounds[i], expected.bounds[i]));
    }
    EXPECT_EQ(got.bucket_counts, expected.bucket_counts);
    EXPECT_EQ(got.count, expected.count);
    EXPECT_TRUE(BitEq(got.sum, expected.sum));
  }

  // Stable map order => re-encoding the decoded snapshot is byte-identical.
  std::vector<uint8_t> reencoded;
  EncodeMetricsReply(decoded, &reencoded);
  EXPECT_EQ(reencoded, payload);
}

TEST(ServeProtocolTest, MetricsReplyRejectsHostileAndTruncatedPayloads) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["a"] = 1;
  snapshot.gauges["g"] = 2.5;
  obs::HistogramSnapshot hist;
  hist.bounds = {1.0};
  hist.bucket_counts = {3, 4};
  hist.count = 7;
  hist.sum = 5.5;
  snapshot.histograms["h"] = hist;
  std::vector<uint8_t> payload;
  EncodeMetricsReply(snapshot, &payload);

  // Every strict prefix fails cleanly (the trailing-bytes check also
  // rejects suffix garbage below).
  for (size_t len = 0; len < payload.size(); ++len) {
    obs::MetricsSnapshot decoded;
    EXPECT_FALSE(DecodeMetricsReply(
                     std::span<const uint8_t>(payload.data(), len), &decoded)
                     .ok())
        << "truncation at " << len;
  }
  std::vector<uint8_t> trailing = payload;
  trailing.push_back(0);
  obs::MetricsSnapshot decoded;
  EXPECT_EQ(DecodeMetricsReply(trailing, &decoded).code(),
            StatusCode::kCorruption);

  // A histogram whose bucket_counts disagree with its bounds is shape
  // corruption, not a crash.
  obs::MetricsSnapshot malformed;
  obs::HistogramSnapshot bad;
  bad.bounds = {1.0, 2.0};
  bad.bucket_counts = {1};  // needs bounds.size() + 1 == 3
  malformed.histograms["bad"] = bad;
  std::vector<uint8_t> bad_payload;
  EncodeMetricsReply(malformed, &bad_payload);
  EXPECT_EQ(DecodeMetricsReply(bad_payload, &decoded).code(),
            StatusCode::kCorruption);

  // A counter count claiming 2^60 entries must fail on its first
  // truncated entry, not allocate.
  std::vector<uint8_t> hostile;
  bytes::AppendScalar<uint8_t>(
      &hostile, static_cast<uint8_t>(ServeFrameKind::kMetricsReply));
  bytes::AppendScalar<uint64_t>(&hostile, 1ull << 60);
  hostile.push_back('x');
  EXPECT_FALSE(DecodeMetricsReply(hostile, &decoded).ok());
}

TEST(ServeProtocolTest, OptionsFingerprintSeparatesResultChangingFields) {
  rules::MinerOptions a = SmallOptions();
  rules::MinerOptions b = a;
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(b));
  b.num_buckets = 33;
  EXPECT_NE(OptionsFingerprint(a), OptionsFingerprint(b));
  b = a;
  b.min_support = 0.051;
  EXPECT_NE(OptionsFingerprint(a), OptionsFingerprint(b));
  b = a;
  b.seed = 43;
  EXPECT_NE(OptionsFingerprint(a), OptionsFingerprint(b));
}

TEST(ServeProtocolTest, ValidateSessionOptionsBounds) {
  EXPECT_TRUE(ValidateSessionOptions(SmallOptions()).ok());
  rules::MinerOptions bad = SmallOptions();
  bad.num_buckets = 0;
  EXPECT_FALSE(ValidateSessionOptions(bad).ok());
  bad = SmallOptions();
  bad.num_buckets = 2'000'000;
  EXPECT_FALSE(ValidateSessionOptions(bad).ok());
  bad = SmallOptions();
  bad.sample_per_bucket = 0;
  EXPECT_FALSE(ValidateSessionOptions(bad).ok());
  bad = SmallOptions();
  bad.region_grid_buckets = 5000;
  EXPECT_FALSE(ValidateSessionOptions(bad).ok());
  bad = SmallOptions();
  bad.gk_epsilon = 1.5;
  EXPECT_FALSE(ValidateSessionOptions(bad).ok());
  bad = SmallOptions();
  bad.min_support = std::nan("");
  EXPECT_FALSE(ValidateSessionOptions(bad).ok());
}

// ---------------------------------------------- FrameWriter atomicity ----

// Regression for the concurrent-writer interleaving bug: WriteFrame on a
// shared fd is not atomic (length prefix and payload are separate writes),
// so multi-writer connections must serialize through dist::FrameWriter.
// Four threads hammer one socket; the reader validates every frame's
// internal consistency, which interleaved writes would destroy.
TEST(FrameWriterTest, ConcurrentWritersNeverInterleaveFrames) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  constexpr int kThreads = 4;
  constexpr int kFramesPerThread = 200;

  dist::FrameWriter writer(fds[0]);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&writer, t] {
      for (int i = 0; i < kFramesPerThread; ++i) {
        // Distinctive shape: byte 0 = thread, byte 1.. = a per-(t, i)
        // pattern over a varying length, so any mid-frame interleaving
        // corrupts either a length or a pattern.
        const size_t body = 1 + static_cast<size_t>((i * 37 + t * 101) % 2048);
        std::vector<uint8_t> payload(1 + body);
        payload[0] = static_cast<uint8_t>(t);
        const uint8_t fill = static_cast<uint8_t>((t * 31 + i) & 0xff);
        std::memset(payload.data() + 1, fill, body);
        ASSERT_TRUE(writer.Write(payload).ok());
      }
    });
  }

  std::vector<int> next_index(kThreads, 0);
  for (int received = 0; received < kThreads * kFramesPerThread;
       ++received) {
    std::vector<uint8_t> payload;
    ASSERT_TRUE(dist::ReadFrame(fds[1], &payload).ok());
    ASSERT_GE(payload.size(), 2u);
    const int t = payload[0];
    ASSERT_LT(t, kThreads);
    const int i = next_index[static_cast<size_t>(t)]++;
    ASSERT_LT(i, kFramesPerThread);
    const size_t body = 1 + static_cast<size_t>((i * 37 + t * 101) % 2048);
    ASSERT_EQ(payload.size(), 1 + body);
    const uint8_t fill = static_cast<uint8_t>((t * 31 + i) & 0xff);
    for (size_t b = 1; b < payload.size(); ++b) {
      ASSERT_EQ(payload[b], fill) << "frame of thread " << t << " seq " << i;
    }
  }
  for (std::thread& thread : writers) thread.join();
  close(fds[0]);
  close(fds[1]);
}

// ----------------------------------------------- coalescing correctness ----

TEST(MiningServerTest, CoalescesOverlappingAndDisjointSessionsBitIdentical) {
  const std::string root = TempDir("serve_coalesce");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 1500, 41);
  const storage::Schema& schema = table.schema();

  ServerOptions options;
  options.coalescing_window_ms = 150;
  MiningServer server(options);
  ASSERT_TRUE(server.ListenUnix(root + "/serve.sock").ok());
  ASSERT_TRUE(server.Start().ok());

  // Client A: the shared pair + a generalized query. Client B: the same
  // shared pair (overlap) + aggregate and region queries (disjoint).
  SessionRequest request_a = PairRequest(table_dir, schema);
  ServeQuery generalized;
  generalized.kind = ServeQuery::Kind::kGeneralized;
  generalized.attr_a = schema.NumericName(1);
  generalized.conditions = {schema.BooleanName(0)};
  generalized.attr_b = schema.BooleanName(1);
  request_a.queries.push_back(generalized);

  SessionRequest request_b = PairRequest(table_dir, schema);
  ServeQuery average;
  average.kind = ServeQuery::Kind::kAverageRange;
  average.attr_a = schema.NumericName(0);
  average.attr_b = schema.NumericName(2);
  average.threshold = 0.1;
  request_b.queries.push_back(average);
  ServeQuery region;
  region.kind = ServeQuery::Kind::kRegion;
  region.attr_a = schema.NumericName(0);
  region.attr_b = schema.NumericName(1);
  region.target = schema.BooleanName(0);
  request_b.queries.push_back(region);

  Result<SessionReply> reply_a = Status::Internal("unset");
  Result<SessionReply> reply_b = Status::Internal("unset");
  {
    std::thread tenant_a([&] {
      MiningClient client = Connect(server);
      reply_a = client.RunSession(request_a);
    });
    std::thread tenant_b([&] {
      MiningClient client = Connect(server);
      reply_b = client.RunSession(request_b);
    });
    tenant_a.join();
    tenant_b.join();
  }
  ASSERT_TRUE(reply_a.ok()) << reply_a.status().ToString();
  ASSERT_TRUE(reply_b.ok()) << reply_b.status().ToString();

  // One coalescing window => ONE physical counting scan for both tenants.
  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.physical_scans, 1);
  EXPECT_EQ(stats.coalesced_sessions, 1);
  EXPECT_EQ(stats.sessions_served, 2);
  EXPECT_EQ(stats.batches_executed, 1);

  // Same generation for both (one table publish).
  EXPECT_EQ(reply_a.value().generation, reply_b.value().generation);

  // Bit-identity against standalone engines over the same table+options.
  {
    rules::MiningEngine standalone(&table, SmallOptions());
    const auto& answers = reply_a.value().answers;
    ASSERT_EQ(answers.size(), 2u);
    ASSERT_TRUE(answers[0].status.ok());
    ExpectRulesEqual(answers[0].rules,
                     standalone
                         .MinePair(schema.NumericName(0),
                                   schema.BooleanName(0))
                         .value());
    ASSERT_TRUE(answers[1].status.ok());
    ExpectRulesEqual(answers[1].rules,
                     standalone
                         .MineGeneralized(schema.NumericName(1),
                                          {schema.BooleanName(0)},
                                          schema.BooleanName(1))
                         .value());
  }
  {
    rules::MiningEngine standalone(&table, SmallOptions());
    const auto& answers = reply_b.value().answers;
    ASSERT_EQ(answers.size(), 3u);
    ASSERT_TRUE(answers[0].status.ok());
    ExpectRulesEqual(answers[0].rules,
                     standalone
                         .MinePair(schema.NumericName(0),
                                   schema.BooleanName(0))
                         .value());
    ASSERT_TRUE(answers[1].status.ok());
    const rules::MinedAggregateRange expected_range =
        standalone
            .MineMaximumAverageRange(schema.NumericName(0),
                                     schema.NumericName(2), 0.1)
            .value();
    EXPECT_EQ(answers[1].aggregate.found, expected_range.found);
    EXPECT_TRUE(BitEq(answers[1].aggregate.average, expected_range.average));
    EXPECT_EQ(answers[1].aggregate.support_count,
              expected_range.support_count);
    ASSERT_TRUE(answers[2].status.ok());
    const rules::MinedRegion expected_region =
        standalone
            .MineOptimizedRegion(schema.NumericName(0),
                                 schema.NumericName(1),
                                 schema.BooleanName(0))
            .value();
    EXPECT_EQ(answers[2].region.found, expected_region.found);
    EXPECT_EQ(answers[2].region.confidence_rectangle.support_count,
              expected_region.confidence_rectangle.support_count);
    EXPECT_TRUE(BitEq(answers[2].region.xmonotone_gain.gain,
                      expected_region.xmonotone_gain.gain));
    EXPECT_EQ(answers[2].region.xmonotone_gain.column_ranges,
              expected_region.xmonotone_gain.column_ranges);
  }
  server.Stop();
}

TEST(MiningServerTest, CachedEngineAnswersSecondWindowWithoutRescan) {
  const std::string root = TempDir("serve_cache");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 600, 43);

  ServerOptions options;
  options.coalescing_window_ms = 10;
  MiningServer server(options);
  ASSERT_TRUE(server.ListenUnix(root + "/serve.sock").ok());
  ASSERT_TRUE(server.Start().ok());

  MiningClient client = Connect(server);
  const SessionRequest request = PairRequest(table_dir, table.schema());
  ASSERT_TRUE(client.RunSession(request).ok());
  ASSERT_TRUE(client.RunSession(request).ok());
  const ServerStatsSnapshot stats = server.Stats();
  // Two windows, one scan: the second session was served from the cached
  // engine's channels.
  EXPECT_EQ(stats.physical_scans, 1);
  EXPECT_EQ(stats.sessions_served, 2);
  EXPECT_EQ(stats.coalesced_sessions, 1);
  EXPECT_GE(stats.batches_executed, 2);
  server.Stop();
}

// ------------------------------------------------------ fault isolation ----

TEST(MiningServerTest, HostileFramesFailOnlyTheOffendingSession) {
  const std::string root = TempDir("serve_hostile");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 500, 47);

  ServerOptions options;
  options.coalescing_window_ms = 100;
  MiningServer server(options);
  ASSERT_TRUE(server.ListenUnix(root + "/serve.sock").ok());
  ASSERT_TRUE(server.Start().ok());

  // A well-formed session and, on a SECOND connection, a barrage of
  // hostile frames: truncated open-session, unknown kind, hostile count.
  std::vector<uint8_t> valid;
  EncodeOpenSession(1, PairRequest(table_dir, table.schema()), &valid);

  MiningClient hostile = Connect(server);
  // Truncated mid-request (keeps the id prefix).
  ASSERT_TRUE(
      hostile
          .SendRaw(std::span<const uint8_t>(valid.data(), valid.size() / 2))
          .ok());
  std::vector<uint8_t> reply;
  ASSERT_TRUE(hostile.ReadRaw(&reply).ok());
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(reply[0], static_cast<uint8_t>(ServeFrameKind::kServeError));
  {
    uint32_t errored_id = 0;
    Status carried;
    ASSERT_TRUE(DecodeServeError(reply, &errored_id, &carried).ok());
    EXPECT_EQ(errored_id, 1u);
    EXPECT_FALSE(carried.ok());
  }
  // Unknown frame kind.
  const std::vector<uint8_t> junk = {0xEE, 1, 2, 3};
  ASSERT_TRUE(hostile.SendRaw(junk).ok());
  ASSERT_TRUE(hostile.ReadRaw(&reply).ok());
  EXPECT_EQ(reply[0], static_cast<uint8_t>(ServeFrameKind::kServeError));
  // A session against a table that does not exist.
  SessionRequest missing = PairRequest(root + "/no_such_table",
                                       table.schema());
  EXPECT_EQ(hostile.RunSession(missing).status().code(),
            StatusCode::kNotFound);
  // Malformed options (num_buckets = 0) must be rejected before reaching
  // any engine CHECK.
  SessionRequest bad_options = PairRequest(table_dir, table.schema());
  bad_options.options.num_buckets = 0;
  EXPECT_FALSE(hostile.RunSession(bad_options).ok());

  // The hostile connection is still alive, and an innocent client is
  // completely unaffected.
  EXPECT_TRUE(hostile.Ping().ok());
  MiningClient innocent = Connect(server);
  auto good = innocent.RunSession(PairRequest(table_dir, table.schema()));
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_EQ(good.value().answers.size(), 1u);
  EXPECT_TRUE(good.value().answers[0].status.ok());

  // An unknown attribute fails its QUERY, not the session or the batch.
  SessionRequest unknown_attr = PairRequest(table_dir, table.schema());
  unknown_attr.queries[0].attr_a = "no_such_attribute";
  auto mixed = innocent.RunSession(unknown_attr);
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  ASSERT_EQ(mixed.value().answers.size(), 1u);
  EXPECT_FALSE(mixed.value().answers[0].status.ok());
  server.Stop();
}

// ----------------------------------------------------- admission control ----

TEST(MiningServerTest, AdmissionControlRefusesBeyondTheBound) {
  const std::string root = TempDir("serve_admission");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 400, 51);

  ServerOptions options;
  options.max_pending_sessions = 1;
  options.coalescing_window_ms = 400;  // hold the first session queued
  MiningServer server(options);
  ASSERT_TRUE(server.ListenUnix(root + "/serve.sock").ok());
  ASSERT_TRUE(server.Start().ok());

  const SessionRequest request = PairRequest(table_dir, table.schema());
  Result<SessionReply> first = Status::Internal("unset");
  std::thread holder([&] {
    MiningClient client = Connect(server);
    first = client.RunSession(request);
  });
  // Let the first session land in its window, then overflow the bound.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  MiningClient overflow = Connect(server);
  const Result<SessionReply> refused = overflow.RunSession(request);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kOutOfRange);

  holder.join();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.sessions_rejected, 1);
  EXPECT_EQ(stats.sessions_admitted, 1);
  server.Stop();
}

TEST(MiningServerTest, QueueDeadlineFailsSessionBeforeScan) {
  const std::string root = TempDir("serve_deadline");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 400, 53);

  ServerOptions options;
  options.coalescing_window_ms = 250;
  MiningServer server(options);
  ASSERT_TRUE(server.ListenUnix(root + "/serve.sock").ok());
  ASSERT_TRUE(server.Start().ok());

  SessionRequest request = PairRequest(table_dir, table.schema());
  request.deadline_ms = 1;  // expires inside the 250 ms window
  MiningClient client = Connect(server);
  const Result<SessionReply> reply = client.RunSession(request);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.Stats().physical_scans, 0);
  server.Stop();
}

// ---------------------------------------------------- graceful shutdown ----

TEST(MiningServerTest, StopDrainsQueuedSessionsAndDefeatsWedgedClients) {
  const std::string root = TempDir("serve_shutdown");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 500, 59);

  ServerOptions options;
  options.coalescing_window_ms = 5'000;  // far longer than the test
  MiningServer server(options);
  ASSERT_TRUE(server.ListenUnix(root + "/serve.sock").ok());
  ASSERT_TRUE(server.Start().ok());

  // A wedged client: connects, sends nothing, reads nothing, never
  // closes. Stop() must not wait on it.
  auto wedged = MiningClient::ConnectUnix(server.address());
  ASSERT_TRUE(wedged.ok());

  // Two queued sessions deep inside the long window.
  Result<SessionReply> reply_a = Status::Internal("unset");
  Result<SessionReply> reply_b = Status::Internal("unset");
  std::thread tenant_a([&] {
    MiningClient client = Connect(server);
    reply_a = client.RunSession(PairRequest(table_dir, table.schema()));
  });
  std::thread tenant_b([&] {
    MiningClient client = Connect(server);
    reply_b = client.RunSession(PairRequest(table_dir, table.schema()));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto stop_begin = std::chrono::steady_clock::now();
  server.Stop();  // must drain the queued sessions, then return promptly
  const auto stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    stop_begin)
          .count();
  EXPECT_LT(stop_seconds, 8.0) << "Stop() hung on a wedged client";

  tenant_a.join();
  tenant_b.join();
  ASSERT_TRUE(reply_a.ok()) << reply_a.status().ToString();
  ASSERT_TRUE(reply_b.ok()) << reply_b.status().ToString();
  // After Stop, the socket is gone: new connections must fail.
  EXPECT_FALSE(MiningClient::ConnectUnix(root + "/serve.sock").ok());
}

TEST(MiningServerTest, SessionsArrivingDuringShutdownAreRefused) {
  const std::string root = TempDir("serve_shutdown_refuse");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 400, 61);

  MiningServer server;
  ASSERT_TRUE(server.ListenUnix(root + "/serve.sock").ok());
  ASSERT_TRUE(server.Start().ok());
  MiningClient client = Connect(server);
  ASSERT_TRUE(client.Ping().ok());
  server.Stop();
  // The connection was shut down server-side; the session cannot succeed.
  EXPECT_FALSE(client.RunSession(PairRequest(table_dir, table.schema()))
                   .ok());
}

// ------------------------------------------------- generation re-keying ----

TEST(MiningServerTest, RepublishedTableGetsNewGenerationAndRescan) {
  const std::string root = TempDir("serve_generation");
  const std::string table_dir = root + "/table";
  MakeTable(table_dir, 700, 63);

  ServerOptions options;
  options.coalescing_window_ms = 10;
  MiningServer server(options);
  ASSERT_TRUE(server.ListenUnix(root + "/serve.sock").ok());
  ASSERT_TRUE(server.Start().ok());

  MiningClient client = Connect(server);
  const dist::PartitionedTable before =
      dist::PartitionedTable::Open(table_dir).value();
  auto first = client.RunSession(PairRequest(table_dir, before.schema()));
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Republish: same directory, different rows => different manifest
  // bytes => a new generation that must NOT be answered from the old
  // engine's cache.
  MakeTable(table_dir, 900, 64);
  const dist::PartitionedTable after =
      dist::PartitionedTable::Open(table_dir).value();
  auto second = client.RunSession(PairRequest(table_dir, after.schema()));
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_NE(first.value().generation, second.value().generation);
  EXPECT_EQ(server.Stats().physical_scans, 2);

  // The new answers match a standalone engine over the NEW table.
  rules::MiningEngine standalone(&after, SmallOptions());
  ASSERT_EQ(second.value().answers.size(), 1u);
  ExpectRulesEqual(second.value().answers[0].rules,
                   standalone
                       .MinePair(after.schema().NumericName(0),
                                 after.schema().BooleanName(0))
                       .value());
  server.Stop();
}

// ------------------------------------------------------- stats + ping ----

TEST(MiningServerTest, PingAndStatsOverTheWire) {
  const std::string root = TempDir("serve_stats");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 400, 67);

  ServerOptions options;
  options.coalescing_window_ms = 10;
  MiningServer server(options);
  ASSERT_TRUE(server.ListenUnix(root + "/serve.sock").ok());
  ASSERT_TRUE(server.Start().ok());

  MiningClient client = Connect(server);
  EXPECT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.RunSession(PairRequest(table_dir, table.schema())).ok());
  const Result<ServerStatsSnapshot> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().sessions_served, 1);
  EXPECT_EQ(stats.value().physical_scans, 1);
  EXPECT_EQ(stats.value().engines_cached, 1);
  server.Stop();
}

// ------------------------------------------------------ observability ----

int64_t CounterDelta(const obs::MetricsSnapshot& before,
                     const obs::MetricsSnapshot& after,
                     const std::string& name) {
  const auto b = before.counters.find(name);
  const auto a = after.counters.find(name);
  return (a == after.counters.end() ? 0 : a->second) -
         (b == before.counters.end() ? 0 : b->second);
}

bool FindAttribute(const obs::SpanRecord& span, std::string_view key,
                   double* out) {
  for (const auto& [name, value] : span.attributes) {
    if (name == key) {
      *out = value;
      return true;
    }
  }
  return false;
}

std::vector<obs::SpanRecord> SpansNamed(
    const std::vector<obs::SpanRecord>& spans, std::string_view name) {
  std::vector<obs::SpanRecord> matches;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == name) matches.push_back(span);
  }
  return matches;
}

// The registry mirrors the coordinator's folded BatchSourceStats exactly:
// after one engine scan over a quiet process, every integer counter delta
// equals the corresponding scan_stats() field bit-for-bit.
TEST(ObsIntegrationTest, RegistryMirrorsEngineScanStatsBitForBit) {
  const std::string root = TempDir("serve_obs_mirror");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 1200, 83);
  const storage::Schema& schema = table.schema();

  rules::MiningEngine engine(&table, SmallOptions());
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Default().Snapshot();
  ASSERT_TRUE(
      engine.MinePair(schema.NumericName(0), schema.BooleanName(0)).ok());
  const storage::BatchSourceStats stats = engine.scan_stats();
  const obs::MetricsSnapshot after =
      obs::MetricsRegistry::Default().Snapshot();

  EXPECT_EQ(CounterDelta(before, after, "bufferpool.hits"),
            stats.cache_hits);
  EXPECT_EQ(CounterDelta(before, after, "bufferpool.misses"),
            stats.cache_misses);
  EXPECT_EQ(CounterDelta(before, after, "storage.pages_skipped"),
            stats.pages_skipped);
  EXPECT_EQ(CounterDelta(before, after, "dist.partitions_skipped"),
            stats.partitions_skipped);
  EXPECT_EQ(CounterDelta(before, after, "dist.retries"), stats.retries);
  EXPECT_EQ(CounterDelta(before, after, "dist.workers_respawned"),
            stats.workers_respawned);
  EXPECT_EQ(CounterDelta(before, after, "dist.partitions_stolen"),
            stats.partitions_stolen);
  // One scan over every partition of the 3-way table.
  EXPECT_EQ(CounterDelta(before, after, "dist.partition_scans") +
                CounterDelta(before, after, "dist.partitions_skipped"),
            3);
}

// The end-to-end observability demo from the issue: two tenants coalesce
// into one serve window, which must produce ONE physical-scan trace tree
// (serve.window -> dist.scan -> per-partition dist.partition ->
// bucketing.scan with per-phase timings) and a wire-shipped registry
// snapshot that matches the server's local registry bit-for-bit and the
// ServerStatsSnapshot counters exactly.
TEST(MiningServerTest, TraceDemoCoalescedWindowOneScanTreeWireMetricsMatch) {
  const std::string root = TempDir("serve_trace_demo");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 1500, 79);
  const storage::Schema& schema = table.schema();

  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.Clear();
  tracer.set_enabled(true);
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Default().Snapshot();

  ServerOptions options;
  options.coalescing_window_ms = 150;
  MiningServer server(options);
  ASSERT_TRUE(server.ListenUnix(root + "/serve.sock").ok());
  ASSERT_TRUE(server.Start().ok());

  const SessionRequest request = PairRequest(table_dir, schema);
  Result<SessionReply> reply_a = Status::Internal("unset");
  Result<SessionReply> reply_b = Status::Internal("unset");
  {
    std::thread tenant_a([&] {
      MiningClient client = Connect(server);
      reply_a = client.RunSession(request);
    });
    std::thread tenant_b([&] {
      MiningClient client = Connect(server);
      reply_b = client.RunSession(request);
    });
    tenant_a.join();
    tenant_b.join();
  }
  tracer.set_enabled(false);
  ASSERT_TRUE(reply_a.ok()) << reply_a.status().ToString();
  ASSERT_TRUE(reply_b.ok()) << reply_b.status().ToString();

  // --- the trace tree: one window, one scan, one span per partition ---
  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  const std::vector<obs::SpanRecord> windows =
      SpansNamed(spans, "serve.window");
  ASSERT_EQ(windows.size(), 1u) << "coalescing must yield ONE window";
  double sessions = 0.0;
  ASSERT_TRUE(FindAttribute(windows[0], "sessions", &sessions));
  EXPECT_EQ(sessions, 2.0);
  double window_scans = 0.0;
  ASSERT_TRUE(FindAttribute(windows[0], "physical_scans", &window_scans));
  EXPECT_EQ(window_scans, 1.0);

  const std::vector<obs::SpanRecord> scans = SpansNamed(spans, "dist.scan");
  ASSERT_EQ(scans.size(), 1u) << "both tenants must share ONE physical scan";
  EXPECT_EQ(scans[0].parent_id, windows[0].id);
  double partitions = 0.0;
  ASSERT_TRUE(FindAttribute(scans[0], "partitions", &partitions));
  EXPECT_EQ(partitions, 3.0);

  const std::vector<obs::SpanRecord> partition_spans =
      SpansNamed(spans, "dist.partition");
  ASSERT_EQ(partition_spans.size(), 3u);
  std::vector<double> partition_ids;
  for (const obs::SpanRecord& span : partition_spans) {
    EXPECT_EQ(span.parent_id, scans[0].id)
        << "partition spans must hang off the scan span across the "
           "thread boundary";
    double partition = -1.0;
    ASSERT_TRUE(FindAttribute(span, "partition", &partition));
    partition_ids.push_back(partition);
  }
  std::sort(partition_ids.begin(), partition_ids.end());
  EXPECT_EQ(partition_ids, (std::vector<double>{0.0, 1.0, 2.0}));

  // Each partition's counting pass traces under its partition span, and
  // the per-phase breakdown (locate/mask/scatter) rides as attributes.
  const std::vector<obs::SpanRecord> bucket_scans =
      SpansNamed(spans, "bucketing.scan");
  ASSERT_EQ(bucket_scans.size(), 3u);
  std::vector<uint64_t> partition_span_ids;
  for (const obs::SpanRecord& span : partition_spans) {
    partition_span_ids.push_back(span.id);
  }
  int spans_with_phases = 0;
  for (const obs::SpanRecord& span : bucket_scans) {
    EXPECT_NE(std::find(partition_span_ids.begin(), partition_span_ids.end(),
                        span.parent_id),
              partition_span_ids.end());
    double ignored = 0.0;
    if (FindAttribute(span, "locate_seconds", &ignored) &&
        FindAttribute(span, "mask_seconds", &ignored) &&
        FindAttribute(span, "scatter_seconds", &ignored)) {
      ++spans_with_phases;
    }
  }
  EXPECT_EQ(spans_with_phases, 3) << "phase timings missing from the trace";

  // --- wire-shipped metrics: bit-for-bit against the local registry ---
  MiningClient client = Connect(server);
  const Result<obs::MetricsSnapshot> wire = client.Metrics();
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  const obs::MetricsSnapshot local =
      obs::MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(wire.value().counters, local.counters);
  ASSERT_EQ(wire.value().gauges.size(), local.gauges.size());
  for (const auto& [name, value] : local.gauges) {
    ASSERT_TRUE(wire.value().gauges.count(name)) << name;
    EXPECT_TRUE(BitEq(wire.value().gauges.at(name), value)) << name;
  }
  ASSERT_EQ(wire.value().histograms.size(), local.histograms.size());
  for (const auto& [name, expected] : local.histograms) {
    ASSERT_TRUE(wire.value().histograms.count(name)) << name;
    const obs::HistogramSnapshot& got = wire.value().histograms.at(name);
    EXPECT_EQ(got.bucket_counts, expected.bucket_counts) << name;
    EXPECT_EQ(got.count, expected.count) << name;
    EXPECT_TRUE(BitEq(got.sum, expected.sum)) << name;
  }

  // --- and exactly against the server's own counters ---
  const ServerStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.physical_scans, 1);
  EXPECT_EQ(stats.coalesced_sessions, 1);
  EXPECT_EQ(stats.sessions_served, 2);
  const obs::MetricsSnapshot& after = wire.value();
  EXPECT_EQ(CounterDelta(before, after, "serve.sessions_admitted"),
            stats.sessions_admitted);
  EXPECT_EQ(CounterDelta(before, after, "serve.sessions_served"),
            stats.sessions_served);
  EXPECT_EQ(CounterDelta(before, after, "serve.physical_scans"),
            stats.physical_scans);
  EXPECT_EQ(CounterDelta(before, after, "serve.coalesced_sessions"),
            stats.coalesced_sessions);
  EXPECT_EQ(CounterDelta(before, after, "serve.batches_executed"),
            stats.batches_executed);
  EXPECT_EQ(CounterDelta(before, after, "serve.engine_cache_hits"),
            stats.engine_cache_hits);
  EXPECT_EQ(CounterDelta(before, after, "serve.engine_cache_misses"),
            stats.engine_cache_misses);

  // Per-tenant counter: both sessions shared one options fingerprint.
  char tenant_counter[64];
  std::snprintf(tenant_counter, sizeof(tenant_counter),
                "serve.tenant.%016llx.sessions_served",
                static_cast<unsigned long long>(
                    OptionsFingerprint(SmallOptions())));
  EXPECT_EQ(CounterDelta(before, after, tenant_counter), 2);

  tracer.Clear();
  server.Stop();
}

TEST(MiningServerTest, TcpListenerServesSessions) {
  const std::string root = TempDir("serve_tcp");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 400, 71);

  ServerOptions options;
  options.coalescing_window_ms = 10;
  MiningServer server(options);
  ASSERT_TRUE(server.ListenTcp(0).ok());
  ASSERT_NE(server.port(), 0);
  ASSERT_TRUE(server.Start().ok());

  auto client_or = MiningClient::ConnectTcp(server.port());
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  MiningClient client = std::move(client_or).value();
  client.set_timeouts({.liveness_ms = 0, .total_ms = 60'000});
  auto reply = client.RunSession(PairRequest(table_dir, table.schema()));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  server.Stop();
}

// ------------------------------------------------- the real daemon ----

// Boots the optrules_served binary on an ephemeral socket, runs a client
// session against it, and SIGTERMs it: the graceful path must drain and
// exit 0. Exercises the same LISTENING-handshake contract the check-serve
// lane and operators rely on.
TEST(ServedDaemonTest, BootServeSigtermExitsZero) {
  const char* daemon = std::getenv("OPTRULES_SERVED");
  if (daemon == nullptr || daemon[0] == '\0') {
    GTEST_SKIP() << "OPTRULES_SERVED not set; run under ctest";
  }
  const std::string root = TempDir("serve_daemon");
  const std::string table_dir = root + "/table";
  const dist::PartitionedTable table = MakeTable(table_dir, 500, 73);
  const std::string socket_path = root + "/d.sock";

  int out_pipe[2];
  ASSERT_EQ(pipe(out_pipe), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    const std::string socket_arg = "--socket=" + socket_path;
    execl(daemon, daemon, socket_arg.c_str(), "--window-ms=10", nullptr);
    _exit(127);
  }
  close(out_pipe[1]);

  // Wait for the LISTENING handshake line.
  std::string banner;
  char c = 0;
  while (banner.find('\n') == std::string::npos) {
    const ssize_t n = read(out_pipe[0], &c, 1);
    if (n <= 0) break;
    banner.push_back(c);
  }
  ASSERT_NE(banner.find("LISTENING " + socket_path), std::string::npos)
      << "daemon banner: " << banner;

  {
    auto client_or = MiningClient::ConnectUnix(socket_path);
    ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
    MiningClient client = std::move(client_or).value();
    client.set_timeouts({.liveness_ms = 0, .total_ms = 60'000});
    auto reply = client.RunSession(PairRequest(table_dir, table.schema()));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply.value().answers.size(), 1u);
    EXPECT_TRUE(reply.value().answers[0].status.ok());
  }

  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int wait_status = 0;
  ASSERT_EQ(waitpid(pid, &wait_status, 0), pid);
  EXPECT_TRUE(WIFEXITED(wait_status));
  EXPECT_EQ(WEXITSTATUS(wait_status), 0);
  close(out_pipe[0]);
}

}  // namespace
}  // namespace optrules::serve
