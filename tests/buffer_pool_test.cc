// Tests of the shared LRU buffer pool (src/storage/buffer_pool.h) and of
// the pooled read path built on it: hit/miss/eviction accounting, load
// deduplication, the soft capacity budget (pinned frames are never
// evicted, so concurrent pinned readers overshoot instead of
// deadlocking), capacity-1 thrash, file-generation invalidation, and the
// acceptance invariant -- scans of every flavor sharing one pool are
// bit-identical to the unpooled (pool == nullptr) reference path.
//
// The concurrency tests here are the ones check-tsan/check-asan lean on:
// many threads pin, thrash, and evict against one pool while pooled
// double-buffered readers (each with its own prefetch thread) stream the
// same file.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bucketing/boundaries.h"
#include "bucketing/counting.h"
#include "bucketing/parallel_count.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/table_generator.h"
#include "storage/buffer_pool.h"
#include "storage/columnar_batch.h"
#include "storage/paged_file.h"

namespace optrules::storage {
namespace {

using bucketing::BucketBoundaries;
using bucketing::CountChannel;
using bucketing::MultiCountPlan;
using bucketing::MultiCountSpec;

constexpr size_t kPageBytes = 512;

/// Loader producing a deterministic pattern per (file, page) and counting
/// its invocations -- no real file needed for the pool-core tests.
BufferPool::Loader PatternLoader(uint64_t file_id, int64_t page,
                                 std::atomic<int>* loads = nullptr) {
  return [file_id, page, loads](uint8_t* dest) {
    if (loads != nullptr) loads->fetch_add(1);
    for (size_t i = 0; i < kPageBytes; ++i) {
      dest[i] = static_cast<uint8_t>((file_id * 131 +
                                      static_cast<uint64_t>(page) * 31 + i) &
                                     0xff);
    }
    return Status::Ok();
  };
}

void ExpectPattern(const BufferPool::Pin& pin, uint64_t file_id,
                   int64_t page) {
  ASSERT_TRUE(pin);
  ASSERT_EQ(pin.size(), kPageBytes);
  for (size_t i = 0; i < kPageBytes; ++i) {
    ASSERT_EQ(pin.data()[i],
              static_cast<uint8_t>((file_id * 131 +
                                    static_cast<uint64_t>(page) * 31 + i) &
                                   0xff))
        << "file " << file_id << " page " << page << " byte " << i;
  }
}

TEST(BufferPoolTest, FetchCachesAndCountsHitsAndMisses) {
  BufferPool pool(8 * kPageBytes);
  std::atomic<int> loads{0};
  bool was_hit = true;
  Result<BufferPool::Pin> first =
      pool.Fetch(1, 0, kPageBytes, PatternLoader(1, 0, &loads), &was_hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(was_hit);
  ExpectPattern(first.value(), 1, 0);
  first.value().Reset();

  Result<BufferPool::Pin> second =
      pool.Fetch(1, 0, kPageBytes, PatternLoader(1, 0, &loads), &was_hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(was_hit);
  ExpectPattern(second.value(), 1, 0);
  EXPECT_EQ(loads.load(), 1);

  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(pool.bytes_used(), kPageBytes);
}

TEST(BufferPoolTest, LoaderFailureLeavesNoFrameBehind) {
  BufferPool pool(8 * kPageBytes);
  const BufferPool::Loader failing = [](uint8_t*) {
    return Status::IoError("injected");
  };
  EXPECT_FALSE(pool.Fetch(1, 0, kPageBytes, failing).ok());
  EXPECT_EQ(pool.bytes_used(), 0u);
  // The slot is free again: a later fetch with a working loader succeeds.
  Result<BufferPool::Pin> retry =
      pool.Fetch(1, 0, kPageBytes, PatternLoader(1, 0));
  ASSERT_TRUE(retry.ok());
  ExpectPattern(retry.value(), 1, 0);
}

TEST(BufferPoolTest, ConcurrentFetchersOfOnePageShareOneLoad) {
  BufferPool pool(8 * kPageBytes);
  std::atomic<int> loads{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &loads] {
      for (int round = 0; round < 50; ++round) {
        Result<BufferPool::Pin> pin =
            pool.Fetch(7, 3, kPageBytes, PatternLoader(7, 3, &loads));
        ASSERT_TRUE(pin.ok());
        ExpectPattern(pin.value(), 7, 3);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // The page never leaves the (large enough) pool, so exactly one fetch
  // ran the loader; everybody else hit or waited on the in-flight load.
  EXPECT_EQ(loads.load(), 1);
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * 50);
}

TEST(BufferPoolTest, EvictionUnderConcurrentPinnedReaders) {
  // Budget of two pages, eight readers each pinning a distinct page at
  // the same time: the pinned working set overshoots the budget (soft
  // capacity -- no deadlock, no eviction of pinned frames), and once the
  // pins are gone eviction brings the pool back inside the budget.
  BufferPool pool(2 * kPageBytes);
  constexpr int kThreads = 8;
  std::atomic<int> pinned{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<BufferPool::Pin> pin =
          pool.Fetch(1, t, kPageBytes, PatternLoader(1, t));
      ASSERT_TRUE(pin.ok());
      pinned.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      // The frame's bytes must have stayed intact while every other
      // thread pinned, thrashed, and overshot the budget.
      ExpectPattern(pin.value(), 1, t);
    });
  }
  while (pinned.load() < kThreads) std::this_thread::yield();
  EXPECT_EQ(pool.bytes_used(), kThreads * kPageBytes);  // overshoot
  release.store(true);
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(pool.bytes_used(), 2 * kPageBytes);
  EXPECT_GE(pool.stats().evictions, kThreads - 2);
}

TEST(BufferPoolTest, CapacityOnePoolThrashesCorrectly) {
  // A pool that cannot hold even one page stops caching but must stay
  // correct under concurrent alternating fetches.
  BufferPool pool(1);
  constexpr int kThreads = 4;
  constexpr int kRounds = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int64_t page = (round + t) % 3;
        Result<BufferPool::Pin> pin =
            pool.Fetch(2, page, kPageBytes, PatternLoader(2, page));
        ASSERT_TRUE(pin.ok());
        ExpectPattern(pin.value(), 2, page);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(pool.bytes_used(), 0u);  // nothing can stay resident
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kRounds);
  // With no residency the steady state is missing, and every installed
  // frame is eventually evicted. Concurrent fetchers of one page may share
  // a single in-flight load: each waiter is charged a miss but the shared
  // frame evicts only once, so evictions can trail misses (never exceed).
  EXPECT_GT(stats.misses, 0);
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.evictions, stats.misses);
}

TEST(BufferPoolTest, PrefetchWarmsWithoutTouchingCounters) {
  BufferPool pool(8 * kPageBytes);
  std::atomic<int> loads{0};
  pool.Prefetch(4, 9, kPageBytes, PatternLoader(4, 9, &loads));
  EXPECT_EQ(loads.load(), 1);
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);

  bool was_hit = false;
  Result<BufferPool::Pin> pin =
      pool.Fetch(4, 9, kPageBytes, PatternLoader(4, 9, &loads), &was_hit);
  ASSERT_TRUE(pin.ok());
  EXPECT_TRUE(was_hit);
  EXPECT_EQ(loads.load(), 1);  // served from the prefetched frame
  ExpectPattern(pin.value(), 4, 9);
}

TEST(BufferPoolTest, RewritingAFileYieldsAFreshGeneration) {
  const std::string path = testing::TempDir() + "/pool_generation.optr";
  storage::Relation relation(storage::Schema::Synthetic(1, 1));
  const double v0 = 1.0;
  const uint8_t f0 = 1;
  relation.AppendRow({&v0, 1}, {&f0, 1});
  ASSERT_TRUE(WriteRelationToFile(relation, path).ok());

  BufferPool pool(8 * kPageBytes);
  Result<uint64_t> first = pool.RegisterFile(path);
  ASSERT_TRUE(first.ok());

  // Same path, new bytes: the stat identity changes (size differs), so
  // the pool must hand out a fresh id -- frames of the old generation can
  // never serve the new file.
  const double v1 = 2.0;
  relation.AppendRow({&v1, 1}, {&f0, 1});
  ASSERT_TRUE(WriteRelationToFile(relation, path).ok());
  Result<uint64_t> second = pool.RegisterFile(path);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value(), second.value());
  std::remove(path.c_str());
}

// ------------------------------------------------ pooled scan identity ----

storage::Relation PooledTestRelation(int64_t rows, uint64_t seed) {
  datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = 3;
  config.num_boolean = 2;
  Rng rng(seed);
  storage::Relation relation = datagen::GenerateTable(config, rng);
  std::vector<double>& column = relation.MutableNumericColumn(0);
  for (size_t row = 0; row < column.size(); row += 61) {
    column[row] = std::nan("");
  }
  return relation;
}

MultiCountSpec PooledTestSpec(const std::vector<BucketBoundaries>& base) {
  MultiCountSpec spec;
  spec.num_targets = 2;
  spec.conditions.push_back({0});
  for (int a = 0; a < 3; ++a) {
    CountChannel channel;
    channel.column = a;
    channel.boundaries = &base[static_cast<size_t>(a)];
    spec.channels.push_back(std::move(channel));
  }
  CountChannel conditional;
  conditional.column = 1;
  conditional.boundaries = &base[1];
  conditional.condition = 0;
  spec.channels.push_back(std::move(conditional));
  CountChannel summing;
  summing.column = 0;
  summing.boundaries = &base[0];
  summing.sum_targets = {2};
  spec.channels.push_back(std::move(summing));
  return spec;
}

/// Bit-exact comparison via the serialized partial state (covers counts,
/// min/max, and the Neumaier sum/compensation pairs in one shot).
void ExpectPlansBitIdentical(const MultiCountPlan& a,
                             const MultiCountPlan& b) {
  std::vector<uint8_t> state_a;
  std::vector<uint8_t> state_b;
  a.AppendPartialState(&state_a);
  b.AppendPartialState(&state_b);
  ASSERT_EQ(state_a, state_b);
}

TEST(PooledScanTest, AllReadModesSharingOnePoolMatchBypassBitExactly) {
  const std::string path = testing::TempDir() + "/pool_scan.optr";
  const storage::Relation relation = PooledTestRelation(20000, 99);
  PagedFileWriterOptions options;
  options.rows_per_page = 512;  // many pages, so eviction really happens
  ASSERT_TRUE(WriteRelationToFile(relation, path, options).ok());

  bucketing::BoundaryPlan boundary_plan;
  boundary_plan.bucketizer = bucketing::Bucketizer::kExactSort;
  boundary_plan.num_buckets = 16;
  std::vector<BucketBoundaries> base;
  for (int a = 0; a < 3; ++a) {
    base.push_back(bucketing::BuildBoundaries(
        relation.NumericColumn(a), boundary_plan,
        static_cast<uint64_t>(a)));
  }
  const MultiCountSpec spec = PooledTestSpec(base);

  // A pool two pages big: every scan flavor below thrashes and evicts.
  BufferPool pool(2 * 512 * relation.schema().num_numeric() *
                  sizeof(double));
  ThreadPool threads(4);

  // Pooling must never change a bit of the SAME execution schedule, so
  // each scenario is compared against its own bypass (pool == nullptr)
  // run -- the row-sharded schedule's Neumaier sums legitimately differ
  // from the serial chain in the last ulp, but never pooled vs unpooled.
  struct Scenario {
    PagedReadMode mode;
    int64_t batch_rows;
    bool sharded;
  };
  const Scenario scenarios[] = {
      {PagedReadMode::kSynchronous, 777, false},
      {PagedReadMode::kDoubleBuffered, 777, false},
      {PagedReadMode::kDoubleBuffered, kDefaultBatchRows, true},  // sharded
  };
  MultiCountPlan reference(spec);  // serial bypass: the repo-wide baseline
  {
    Result<std::unique_ptr<PagedFileBatchSource>> source =
        PagedFileBatchSource::Open(path, 777,
                                   PagedReadMode::kDoubleBuffered, nullptr);
    ASSERT_TRUE(source.ok());
    bucketing::ExecuteMultiCount(*source.value(), &reference, nullptr);
  }
  for (const Scenario& scenario : scenarios) {
    MultiCountPlan bypass(spec);
    {
      Result<std::unique_ptr<PagedFileBatchSource>> source =
          PagedFileBatchSource::Open(path, scenario.batch_rows,
                                     scenario.mode, nullptr);
      ASSERT_TRUE(source.ok());
      bucketing::ExecuteMultiCount(*source.value(), &bypass,
                                   scenario.sharded ? &threads : nullptr);
    }
    MultiCountPlan pooled(spec);
    Result<std::unique_ptr<PagedFileBatchSource>> source =
        PagedFileBatchSource::Open(path, scenario.batch_rows,
                                   scenario.mode, &pool);
    ASSERT_TRUE(source.ok());
    bucketing::ExecuteMultiCount(*source.value(), &pooled,
                                 scenario.sharded ? &threads : nullptr);
    ExpectPlansBitIdentical(bypass, pooled);
    if (!scenario.sharded) ExpectPlansBitIdentical(reference, pooled);
  }

  // Two concurrent double-buffered scans over one pool: each must still
  // be bit-identical (shared frames, shared evictions, private pins).
  {
    MultiCountPlan plan_a(spec);
    MultiCountPlan plan_b(spec);
    Result<std::unique_ptr<PagedFileBatchSource>> source_a =
        PagedFileBatchSource::Open(path, 1024,
                                   PagedReadMode::kDoubleBuffered, &pool);
    Result<std::unique_ptr<PagedFileBatchSource>> source_b =
        PagedFileBatchSource::Open(path, 333,
                                   PagedReadMode::kDoubleBuffered, &pool);
    ASSERT_TRUE(source_a.ok());
    ASSERT_TRUE(source_b.ok());
    std::thread other([&] {
      bucketing::ExecuteMultiCount(*source_b.value(), &plan_b, nullptr);
    });
    bucketing::ExecuteMultiCount(*source_a.value(), &plan_a, nullptr);
    other.join();
    ExpectPlansBitIdentical(reference, plan_a);
    ExpectPlansBitIdentical(reference, plan_b);

    // The second pass over a warm (if small) pool must have found SOME
    // frames resident; stats flow through SourceStats.
    const BatchSourceStats stats = source_a.value()->SourceStats();
    EXPECT_GT(stats.cache_hits + stats.cache_misses, 0);
  }
  std::remove(path.c_str());
}

TEST(PooledScanTest, WarmRerunOverLargePoolHitsEveryPage) {
  const std::string path = testing::TempDir() + "/pool_warm.optr";
  const storage::Relation relation = PooledTestRelation(8000, 3);
  PagedFileWriterOptions options;
  options.rows_per_page = 1024;
  ASSERT_TRUE(WriteRelationToFile(relation, path, options).ok());

  BufferPool pool(size_t{64} << 20);  // everything fits
  for (int pass = 0; pass < 2; ++pass) {
    Result<std::unique_ptr<PagedFileBatchSource>> source =
        PagedFileBatchSource::Open(path, kDefaultBatchRows,
                                   PagedReadMode::kDoubleBuffered, &pool);
    ASSERT_TRUE(source.ok());
    std::unique_ptr<BatchReader> reader = source.value()->CreateReader();
    ColumnarBatch batch;
    int64_t rows = 0;
    while (reader->Next(&batch)) rows += batch.num_rows();
    reader.reset();
    EXPECT_EQ(rows, relation.NumRows());
    const BatchSourceStats stats = source.value()->SourceStats();
    if (pass == 1) {
      // Warm rerun: every demand fetch finds the resident frame.
      EXPECT_EQ(stats.cache_misses, 0);
      EXPECT_GT(stats.cache_hits, 0);
      EXPECT_EQ(stats.cache_hit_rate(), 1.0);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace optrules::storage
