// Differential tests for BucketBoundaries::LocateBatch against the scalar
// Locate and an independent std::lower_bound reference: random, duplicated,
// affine (equi-width fast path), and empty cut-point sets, probed with
// random values, exact cut values, their ulp neighbors, NaN, +/-inf, and
// signed zero. The batch kernel must be bit-identical to the scalar call
// everywhere, including the NaN -> kNoBucket policy.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "bucketing/boundaries.h"
#include "bucketing/equiwidth.h"
#include "common/rng.h"
#include "fuzz_seed.h"

namespace optrules::bucketing {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Ground truth nobody under test shares: lower_bound over the cuts, with
/// the repo-wide NaN policy applied on top.
int ReferenceLocate(const std::vector<double>& cuts, double x) {
  if (std::isnan(x)) return BucketBoundaries::kNoBucket;
  return static_cast<int>(std::lower_bound(cuts.begin(), cuts.end(), x) -
                          cuts.begin());
}

/// Probes worth testing against any cut set: every cut exactly, its two
/// ulp neighbors, the specials, and a spread of random values.
std::vector<double> ProbeValues(const std::vector<double>& cuts, Rng& rng) {
  std::vector<double> values = {kNaN, kInf, -kInf, 0.0, -0.0,
                                std::numeric_limits<double>::max(),
                                std::numeric_limits<double>::lowest(),
                                std::numeric_limits<double>::denorm_min()};
  for (const double cut : cuts) {
    values.push_back(cut);
    values.push_back(std::nextafter(cut, -kInf));
    values.push_back(std::nextafter(cut, kInf));
  }
  const double lo = cuts.empty() ? -10.0 : cuts.front() - 10.0;
  const double hi = cuts.empty() ? 10.0 : cuts.back() + 10.0;
  for (int i = 0; i < 500; ++i) values.push_back(rng.NextUniform(lo, hi));
  return values;
}

void ExpectBoundariesMatchReference(const BucketBoundaries& boundaries,
                                    uint64_t seed) {
  const std::vector<double>& cuts = boundaries.cut_points();
  SCOPED_TRACE(testing::Message() << "cuts=" << cuts.size()
                                  << " equi_width=" << boundaries.equi_width()
                                  << " seed=" << seed);
  Rng rng(seed);
  const std::vector<double> values = ProbeValues(cuts, rng);
  std::vector<int32_t> batch(values.size());
  boundaries.LocateBatch(values, batch);
  int64_t expected_no_bucket = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    const int expected = ReferenceLocate(cuts, values[i]);
    if (expected == BucketBoundaries::kNoBucket) ++expected_no_bucket;
    ASSERT_EQ(boundaries.Locate(values[i]), expected)
        << "scalar mismatch at value " << values[i];
    ASSERT_EQ(batch[i], expected)
        << "batch mismatch at value " << values[i];
  }
  // EVERY registered kernel arm (scalar, avx2, avx512 -- whatever this
  // machine offers) must be bit-identical to the reference on the same
  // probes, including the remainder tails shorter than the vector width:
  // each arm runs over every prefix length up to two vector widths plus
  // the full probe set.
  for (const simd::Kernels* kernels : simd::AvailableKernels()) {
    SCOPED_TRACE(testing::Message() << "arm=" << kernels->name);
    std::vector<size_t> lengths;
    for (size_t n = 0; n <= std::min<size_t>(17, values.size()); ++n) {
      lengths.push_back(n);
    }
    lengths.push_back(values.size());
    for (const size_t n : lengths) {
      std::vector<int32_t> out(n, -7);  // poison: every lane must be set
      const int64_t no_bucket = boundaries.LocateBatchWithKernels(
          *kernels, std::span<const double>(values).first(n),
          std::span<int32_t>(out));
      int64_t want_no_bucket = 0;
      for (size_t i = 0; i < n; ++i) {
        const int expected = ReferenceLocate(cuts, values[i]);
        if (expected == BucketBoundaries::kNoBucket) ++want_no_bucket;
        ASSERT_EQ(out[i], expected)
            << "arm " << kernels->name << " lane " << i << " of " << n
            << " value " << values[i];
      }
      ASSERT_EQ(no_bucket, want_no_bucket)
          << "arm " << kernels->name << " NaN count over " << n;
    }
  }
  (void)expected_no_bucket;
}

void ExpectBatchMatchesScalarAndReference(const std::vector<double>& cuts,
                                          uint64_t seed) {
  ExpectBoundariesMatchReference(BucketBoundaries::FromCutPoints(cuts),
                                 seed);
}

TEST(LocateBatchTest, EmptyCutPoints) {
  ExpectBatchMatchesScalarAndReference({}, 1);
}

TEST(LocateBatchTest, SingleCutPoint) {
  ExpectBatchMatchesScalarAndReference({3.25}, 2);
}

TEST(LocateBatchTest, DuplicatedCutPoints) {
  ExpectBatchMatchesScalarAndReference({1.0, 1.0, 1.0, 2.0, 2.0, 7.5}, 3);
  ExpectBatchMatchesScalarAndReference({4.0, 4.0, 4.0, 4.0}, 4);
}

TEST(LocateBatchTest, InfiniteCutPoints) {
  ExpectBatchMatchesScalarAndReference({-kInf, 0.0, kInf}, 5);
  ExpectBatchMatchesScalarAndReference({-kInf, -kInf}, 6);
}

TEST(LocateBatchTest, EquiWidthCutsUseFastPathAndStayExact) {
  // An exactly affine layout (power-of-two step, so first + i * step is
  // exact) must enable the fast path and still agree everywhere.
  std::vector<double> cuts;
  for (int i = 0; i < 1000; ++i) {
    cuts.push_back(-4.0 + 0.25 * static_cast<double>(i));
  }
  const BucketBoundaries boundaries = BucketBoundaries::FromCutPoints(cuts);
  EXPECT_TRUE(boundaries.equi_width());
  ExpectBatchMatchesScalarAndReference(cuts, 7);
}

TEST(LocateBatchTest, EquiWidthBucketizerOutputEnablesFastPath) {
  // The actual equi-width bucketizer must hand out fast-path boundaries
  // (its cuts are built through FromEquiWidth, so per-cut rounding cannot
  // defeat the detection) -- and stay exact on arbitrary ranges.
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<double> values(257);
    const double lo = rng.NextUniform(-1e6, 1e6);
    const double hi = lo + rng.NextUniform(1e-3, 1e6);
    for (double& v : values) v = rng.NextUniform(lo, hi);
    const BucketBoundaries boundaries = EquiWidthBoundaries(values, 64);
    ASSERT_TRUE(boundaries.equi_width());
    ExpectBoundariesMatchReference(boundaries,
                                   500 + static_cast<uint64_t>(round));
  }
}

TEST(LocateBatchTest, FromEquiWidthMatchesReferenceOnDegenerateSteps) {
  // Zero and denormal steps must NOT enable the arithmetic path (a
  // denormal step's reciprocal overflows to +inf and would turn the
  // guess into a NaN) -- and must still locate correctly.
  const BucketBoundaries zero = BucketBoundaries::FromEquiWidth(1.0, 0.0, 8);
  EXPECT_FALSE(zero.equi_width());
  ExpectBoundariesMatchReference(zero, 601);
  const BucketBoundaries denormal = BucketBoundaries::FromEquiWidth(
      0.0, std::numeric_limits<double>::denorm_min(), 8);
  EXPECT_FALSE(denormal.equi_width());
  ExpectBoundariesMatchReference(denormal, 602);
}

TEST(LocateBatchTest, SubUlpStepsRejectFastPathButStayExact) {
  // A near-constant large-magnitude column: the equi-width step is below
  // one ulp of the values, so the rounded cuts collapse onto a couple of
  // distinct doubles while the affine model keeps stepping. The drift
  // audit must refuse the arithmetic path (whose fix-up walk would turn
  // O(M) per row) and the branchless path must still be exact.
  const double base = 1e15;
  std::vector<double> values = {base, std::nextafter(base, kInf)};
  const BucketBoundaries boundaries = EquiWidthBoundaries(values, 1000);
  EXPECT_FALSE(boundaries.equi_width());
  ExpectBoundariesMatchReference(boundaries, 603);
}

TEST(LocateBatchTest, NonAffineCutsRejectFastPath) {
  // One perturbed interior cut must fall back to the branchless search --
  // and keep the answers exact either way.
  std::vector<double> cuts;
  for (int i = 0; i < 64; ++i) cuts.push_back(static_cast<double>(i));
  cuts[31] = std::nextafter(cuts[31], kInf);
  const BucketBoundaries boundaries = BucketBoundaries::FromCutPoints(cuts);
  EXPECT_FALSE(boundaries.equi_width());
  ExpectBatchMatchesScalarAndReference(cuts, 8);
}

TEST(LocateBatchTest, DegenerateAffineLayoutsRejectFastPath) {
  // Fewer than two cuts, zero step (duplicates), and infinite ends never
  // qualify for the arithmetic path.
  EXPECT_FALSE(BucketBoundaries::FromCutPoints({}).equi_width());
  EXPECT_FALSE(BucketBoundaries::FromCutPoints({1.0}).equi_width());
  EXPECT_FALSE(BucketBoundaries::FromCutPoints({2.0, 2.0}).equi_width());
  EXPECT_FALSE(
      BucketBoundaries::FromCutPoints({-kInf, 0.0, kInf}).equi_width());
}

TEST(LocateBatchTest, FuzzRandomCutSets) {
  Rng rng(testfuzz::FuzzSeed(1234));
  for (int round = 0; round < 50; ++round) {
    const int num_cuts = static_cast<int>(rng.NextInt(0, 40));
    std::vector<double> cuts;
    for (int i = 0; i < num_cuts; ++i) {
      cuts.push_back(rng.NextUniform(-1e6, 1e6));
    }
    // Duplicate a random prefix element sometimes (heavy-tie shapes).
    if (num_cuts > 2 && rng.NextBernoulli(0.5)) {
      cuts[static_cast<size_t>(rng.NextInt(1, num_cuts - 1))] = cuts[0];
    }
    std::sort(cuts.begin(), cuts.end());
    ExpectBatchMatchesScalarAndReference(cuts,
                                         9000 + static_cast<uint64_t>(round));
  }
}

TEST(LocateBatchTest, FuzzAffineCutSets) {
  // Affine layouts with arbitrary (non-power-of-two) steps: detection may
  // or may not fire depending on rounding, but the answers must stay
  // exact in both cases.
  Rng rng(testfuzz::FuzzSeed(4321));
  for (int round = 0; round < 50; ++round) {
    const int num_cuts = static_cast<int>(rng.NextInt(2, 200));
    const double first = rng.NextUniform(-1e3, 1e3);
    const double step = rng.NextUniform(1e-3, 10.0);
    std::vector<double> cuts;
    for (int i = 0; i < num_cuts; ++i) {
      cuts.push_back(first + step * static_cast<double>(i));
    }
    std::sort(cuts.begin(), cuts.end());  // rounding can perturb order
    ExpectBatchMatchesScalarAndReference(cuts,
                                         7000 + static_cast<uint64_t>(round));
  }
}

TEST(LocateBatchTest, NaNAlwaysMapsToNoBucket) {
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({0.0, 1.0, 2.0});
  const std::vector<double> values = {kNaN, 0.5, kNaN, kNaN, 1.5};
  std::vector<int32_t> out(values.size());
  boundaries.LocateBatch(values, out);
  EXPECT_EQ(out[0], BucketBoundaries::kNoBucket);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], BucketBoundaries::kNoBucket);
  EXPECT_EQ(out[3], BucketBoundaries::kNoBucket);
  EXPECT_EQ(out[4], 2);
}

}  // namespace
}  // namespace optrules::bucketing
