// Tests of the observability subsystem (src/obs/): registry correctness
// under concurrency (monotone snapshots while N threads hammer the
// instruments -- the check-tsan lane leans on these), export encodings,
// tracer ring-buffer bounds, span parentage within a thread and across an
// explicit ScopedParent thread boundary, and the disabled-registry
// contract (a flipped switch records nothing, and instrument activity on
// the scan hot path stays O(batches + shards), never O(rows)).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bucketing/boundaries.h"
#include "bucketing/counting.h"
#include "bucketing/parallel_count.h"
#include "common/rng.h"
#include "datagen/table_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/columnar_batch.h"

namespace optrules::obs {
namespace {

TEST(Counter, AddAndValue) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter->Value(), 0);
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 42);
  // Same name, same instrument.
  EXPECT_EQ(registry.GetCounter("test.counter"), counter);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(7.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 7.5);
  gauge->Add(2.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 10.0);
}

TEST(Histogram, BucketAssignment) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.hist", {1.0, 10.0, 100.0});
  hist->Observe(0.5);    // <= 1.0
  hist->Observe(1.0);    // inclusive upper bound
  hist->Observe(5.0);    // <= 10.0
  hist->Observe(1000.0);  // overflow bucket
  const HistogramSnapshot snapshot = hist->Snapshot();
  ASSERT_EQ(snapshot.bounds.size(), 3u);
  ASSERT_EQ(snapshot.bucket_counts.size(), 4u);
  EXPECT_EQ(snapshot.bucket_counts[0], 2);
  EXPECT_EQ(snapshot.bucket_counts[1], 1);
  EXPECT_EQ(snapshot.bucket_counts[2], 0);
  EXPECT_EQ(snapshot.bucket_counts[3], 1);
  EXPECT_EQ(snapshot.count, 4);
  EXPECT_DOUBLE_EQ(snapshot.sum, 1006.5);
}

TEST(Histogram, EmptyBoundsSelectDefaultLatencyBounds) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.latency");
  EXPECT_EQ(hist->bounds(), Histogram::DefaultLatencyBounds());
}

TEST(MetricsSnapshot, StableOrderedExports) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Add(2);
  registry.GetCounter("a.counter")->Add(1);
  registry.GetGauge("g.gauge")->Set(3.0);
  registry.GetHistogram("h.hist", {1.0})->Observe(0.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string text = snapshot.ToText();
  // std::map ordering: a.counter strictly before b.counter.
  EXPECT_LT(text.find("counter a.counter 1"),
            text.find("counter b.counter 2"));
  EXPECT_NE(text.find("gauge g.gauge 3"), std::string::npos);
  EXPECT_NE(text.find("histogram h.hist count=1"), std::string::npos);
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"a.counter\":1"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Two snapshots of unchanged instruments encode byte-identically.
  EXPECT_EQ(json, registry.Snapshot().ToJson());
}

// N writer threads hammer one counter and one histogram while the main
// thread snapshots continuously: every successive snapshot must be
// monotone non-decreasing (counters and histogram buckets only ever gain),
// and the final values must equal the exact totals. TSan runs this too.
TEST(MetricsConcurrency, MonotoneSnapshotsUnderHammer) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hammer.counter");
  Histogram* hist = registry.GetHistogram("hammer.hist", {0.5});
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 100000;
  std::atomic<int> running{kThreads};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter->Add();
        hist->Observe(t % 2 == 0 ? 0.25 : 0.75);
      }
      running.fetch_sub(1);
    });
  }
  int64_t last_counter = 0;
  int64_t last_hist_count = 0;
  while (running.load() > 0) {
    const int64_t counter_now = counter->Value();
    const HistogramSnapshot hist_now = hist->Snapshot();
    EXPECT_GE(counter_now, last_counter);
    EXPECT_GE(hist_now.count, last_hist_count);
    EXPECT_EQ(hist_now.bucket_counts[0] + hist_now.bucket_counts[1],
              hist_now.count);
    last_counter = counter_now;
    last_hist_count = hist_now.count;
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kIncrementsPerThread);
  const HistogramSnapshot final_snapshot = hist->Snapshot();
  EXPECT_EQ(final_snapshot.count, int64_t{kThreads} * kIncrementsPerThread);
  EXPECT_EQ(final_snapshot.bucket_counts[0],
            final_snapshot.bucket_counts[1]);
}

// Flipping the process switch off must make every Add/Observe a no-op
// (Value/Snapshot keep working), and flipping it back restores recording.
TEST(MetricsDisabled, SwitchGatesAllUpdates) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("gated.counter");
  Gauge* gauge = registry.GetGauge("gated.gauge");
  Histogram* hist = registry.GetHistogram("gated.hist", {1.0});
  counter->Add(5);
  SetMetricsEnabled(false);
  counter->Add(100);
  gauge->Set(9.0);
  hist->Observe(0.5);
  EXPECT_EQ(counter->Value(), 5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(hist->Snapshot().count, 0);
  SetMetricsEnabled(true);
  counter->Add(1);
  EXPECT_EQ(counter->Value(), 6);
}

// The overhead smoke test: a full counting scan over R rows may move the
// scan-layer instruments only by O(1) per scan/shard -- the registry's
// default instruments must NOT be incremented per row, or the <= 2%
// hot-path overhead budget is unmeetable. Measured as counter deltas, not
// wall time, so the assertion is deterministic.
TEST(MetricsDisabled, ScanActivityIsNotPerRow) {
  datagen::TableConfig config;
  config.num_rows = 50000;
  config.num_numeric = 2;
  config.num_boolean = 2;
  Rng rng(77);
  const storage::Relation table = datagen::GenerateTable(config, rng);
  bucketing::BoundaryPlan boundary_plan;
  boundary_plan.num_buckets = 64;
  const bucketing::BucketBoundaries boundaries =
      bucketing::BuildBoundaries(table.NumericColumn(0), boundary_plan, 1);
  bucketing::MultiCountSpec spec;
  spec.num_targets = 2;
  bucketing::CountChannel channel;
  channel.column = 0;
  channel.boundaries = &boundaries;
  spec.channels.push_back(std::move(channel));

  MetricsRegistry& registry = MetricsRegistry::Default();
  const MetricsSnapshot before = registry.Snapshot();
  storage::RelationBatchSource source(&table);
  bucketing::MultiCountPlan plan(spec);
  bucketing::ExecuteMultiCount(source, &plan, nullptr);
  const MetricsSnapshot after = registry.Snapshot();

  int64_t counter_delta = 0;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    counter_delta += value - (it == before.counters.end() ? 0 : it->second);
  }
  int64_t observe_delta = 0;
  for (const auto& [name, hist] : after.histograms) {
    const auto it = before.histograms.find(name);
    observe_delta +=
        hist.count - (it == before.histograms.end() ? 0 : it->second.count);
  }
  // One serial scan: a handful of counter bumps and phase observations,
  // nowhere near the 50k rows scanned.
  EXPECT_GT(counter_delta, 0);  // scan.executions fired
  EXPECT_LT(counter_delta + observe_delta, 100);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer tracer(/*capacity=*/8);
  {
    Span span(&tracer, "ignored");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(Trace, NestedSpansFormTreeOnOneThread) {
  Tracer tracer(/*capacity=*/16);
  tracer.set_enabled(true);
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    Span outer(&tracer, "outer");
    outer_id = outer.id();
    outer.AddAttribute("rows", 42.0);
    {
      Span inner(&tracer, "inner");
      inner_id = inner.id();
    }
  }
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Oldest first: inner finished before outer.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].id, inner_id);
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
  ASSERT_EQ(spans[1].attributes.size(), 1u);
  EXPECT_EQ(spans[1].attributes[0].first, "rows");
  const std::string json = tracer.ToJson();
  // The tree nests inner under outer's children.
  EXPECT_LT(json.find("\"outer\""), json.find("\"inner\""));
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

// The scheduler-to-worker seam: a parent span's id crosses a real thread
// boundary via ScopedParent, and the spans created on the worker thread
// land under it -- the linkage the coordinator and thread-pool shards use.
TEST(Trace, ScopedParentLinksAcrossThreadBoundary) {
  Tracer tracer(/*capacity=*/16);
  tracer.set_enabled(true);
  uint64_t parent_id = 0;
  {
    Span parent(&tracer, "scheduler.window");
    parent_id = parent.id();
    std::thread worker([&] {
      // Without the ScopedParent this thread has no current span.
      EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
      ScopedParent link(parent_id);
      EXPECT_EQ(Tracer::CurrentSpanId(), parent_id);
      Span child(&tracer, "worker.partition");
      EXPECT_NE(child.id(), 0u);
    });
    worker.join();
    // The worker's ScopedParent restored this-thread state untouched.
    EXPECT_EQ(Tracer::CurrentSpanId(), parent_id);
  }
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "worker.partition");
  EXPECT_EQ(spans[0].parent_id, parent_id);
  EXPECT_EQ(spans[1].name, "scheduler.window");
}

TEST(Trace, RingBufferBoundsMemoryAndCountsDrops) {
  Tracer tracer(/*capacity=*/4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    Span span(&tracer, "span" + std::to_string(i));
  }
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Newest 4 survive, oldest first.
  EXPECT_EQ(spans[0].name, "span6");
  EXPECT_EQ(spans[3].name, "span9");
  EXPECT_EQ(tracer.dropped_spans(), 6u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
}

// Orphaned children (parent overwritten by the ring) are promoted to
// roots: ToJson always emits a well-formed forest.
TEST(Trace, OrphanedSpansPromoteToRoots) {
  Tracer tracer(/*capacity=*/2);
  tracer.set_enabled(true);
  {
    Span outer(&tracer, "evicted.parent");
    { Span a(&tracer, "child.a"); }
    { Span b(&tracer, "child.b"); }
    { Span c(&tracer, "child.c"); }
  }  // outer's record lands last; child.a fell off the ring
  const std::string json = tracer.ToJson();
  EXPECT_EQ(json.find("child.a"), std::string::npos);
  EXPECT_NE(json.find("evicted.parent"), std::string::npos);
  EXPECT_NE(json.find("child.c"), std::string::npos);
}

}  // namespace
}  // namespace optrules::obs
