// Tests of the distributed scan subsystem (src/dist/): manifest I/O,
// the partitioner, the wire format, in-process and subprocess workers,
// the coordinator's deterministic merge, fault tolerance (retry,
// failover, respawn, deadlines, work stealing, speculative execution),
// and the MiningEngine wired to a PartitionedTable -- including the
// acceptance contract: a full mixed session over K partitions,
// in-process and subprocess workers, is bit-identical to the
// single-PagedFile path with counting_scans() == 1, even when a worker
// is kill -9'd mid-scan.
//
// Subprocess tests spawn the optrules_workerd binary named by the
// OPTRULES_WORKERD environment variable (set by ctest); they skip when it
// is absent so the binary can run standalone. The check-faults lane
// re-runs this binary with OPTRULES_WORKERD_FAULT=rotate armed globally;
// tests that talk to daemons directly (no coordinator retry above them)
// disarm it with ScopedFaultsOff, and fault-specific tests override it
// with their own token-gated spec.

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "bucketing/boundaries.h"
#include "bucketing/counting.h"
#include "bucketing/parallel_count.h"
#include "common/rng.h"
#include "datagen/table_generator.h"
#include "dist/coordinator.h"
#include "dist/fault_injection.h"
#include "dist/manifest.h"
#include "dist/partitioned_table.h"
#include "dist/scan_worker.h"
#include "dist/wire.h"
#include "rules/miner.h"
#include "storage/csv.h"
#include "storage/paged_file.h"

namespace optrules::dist {
namespace {

using bucketing::BucketBoundaries;
using bucketing::CountChannel;
using bucketing::GridChannel;
using bucketing::MultiCountPlan;
using bucketing::MultiCountSpec;

std::string TempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

storage::Relation TestRelation(int64_t rows, uint64_t seed,
                               int num_numeric = 3, int num_boolean = 2) {
  datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = num_numeric;
  config.num_boolean = num_boolean;
  Rng rng(seed);
  storage::Relation relation = datagen::GenerateTable(config, rng);
  // Sprinkle NaNs so the no-bucket policy is exercised through the wire.
  std::vector<double>& column = relation.MutableNumericColumn(0);
  for (size_t row = 0; row < column.size(); row += 97) {
    column[row] = std::nan("");
  }
  return relation;
}

/// An engine-shaped spec over `relation`'s schema: base channels for every
/// numeric attribute, one conditional channel, one sum channel, one grid
/// channel (rectangular).
MultiCountSpec MakeMixedSpec(const storage::Schema& schema,
                             const std::vector<BucketBoundaries>& base,
                             const BucketBoundaries& grid_y) {
  MultiCountSpec spec;
  spec.num_targets = schema.num_boolean();
  spec.conditions.push_back({0});
  for (int a = 0; a < schema.num_numeric(); ++a) {
    CountChannel channel;
    channel.column = a;
    channel.boundaries = &base[static_cast<size_t>(a)];
    spec.channels.push_back(std::move(channel));
  }
  CountChannel conditional;
  conditional.column = 1;
  conditional.boundaries = &base[1];
  conditional.condition = 0;
  spec.channels.push_back(std::move(conditional));
  CountChannel summing;
  summing.column = 0;
  summing.boundaries = &base[0];
  summing.count_targets = false;
  summing.sum_targets = {1, 2};
  spec.channels.push_back(std::move(summing));
  GridChannel grid;
  grid.x_column = 0;
  grid.x_boundaries = &base[0];
  grid.y_column = 1;
  grid.y_boundaries = &grid_y;
  spec.grid_channels.push_back(grid);
  return spec;
}

std::vector<BucketBoundaries> BaseBoundaries(
    const storage::Relation& relation, int num_buckets) {
  bucketing::BoundaryPlan plan;
  plan.bucketizer = bucketing::Bucketizer::kExactSort;
  plan.num_buckets = num_buckets;
  std::vector<BucketBoundaries> base;
  for (int a = 0; a < relation.schema().num_numeric(); ++a) {
    base.push_back(bucketing::BuildBoundaries(relation.NumericColumn(a),
                                              plan,
                                              static_cast<uint64_t>(a)));
  }
  return base;
}

void ExpectPlansIdentical(const MultiCountPlan& a, const MultiCountPlan& b) {
  ASSERT_EQ(a.num_channels(), b.num_channels());
  ASSERT_EQ(a.num_grid_channels(), b.num_grid_channels());
  for (int c = 0; c < a.num_channels(); ++c) {
    const bucketing::BucketCounts& ca = a.counts(c);
    const bucketing::BucketCounts& cb = b.counts(c);
    EXPECT_EQ(ca.total_tuples, cb.total_tuples) << "channel " << c;
    ASSERT_EQ(ca.u, cb.u) << "channel " << c;
    ASSERT_EQ(ca.v, cb.v) << "channel " << c;
    ASSERT_EQ(ca.u.size(), cb.min_value.size());
    for (size_t bkt = 0; bkt < ca.min_value.size(); ++bkt) {
      const bool a_nan = std::isnan(ca.min_value[bkt]);
      const bool b_nan = std::isnan(cb.min_value[bkt]);
      ASSERT_EQ(a_nan, b_nan);
      if (!a_nan) {
        ASSERT_EQ(ca.min_value[bkt], cb.min_value[bkt]);
        ASSERT_EQ(ca.max_value[bkt], cb.max_value[bkt]);
      }
    }
    const size_t num_sums = a.spec().channels[static_cast<size_t>(c)]
                                .sum_targets.size();
    for (size_t k = 0; k < num_sums; ++k) {
      const bucketing::BucketSums sa =
          a.MakeBucketSums(c, static_cast<int>(k));
      const bucketing::BucketSums sb =
          b.MakeBucketSums(c, static_cast<int>(k));
      ASSERT_EQ(sa.sum, sb.sum) << "channel " << c << " sum target " << k;
    }
  }
  for (int g = 0; g < a.num_grid_channels(); ++g) {
    const bucketing::GridBucketCounts& ga = a.grid_counts(g);
    const bucketing::GridBucketCounts& gb = b.grid_counts(g);
    EXPECT_EQ(ga.total_tuples, gb.total_tuples);
    ASSERT_EQ(ga.u, gb.u) << "grid " << g;
    ASSERT_EQ(ga.v, gb.v) << "grid " << g;
  }
}

/// Restores one environment variable on destruction; value == nullptr
/// unsets it for the scope.
class ScopedEnv {
 public:
  ScopedEnv(const std::string& name, const char* value) : name_(name) {
    const char* old = std::getenv(name_.c_str());
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name_.c_str());
    } else {
      ::setenv(name_.c_str(), value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// Disarms daemon fault injection for tests that assert on direct worker
/// conversations (no coordinator retry above them): the check-faults
/// ctest lane arms OPTRULES_WORKERD_FAULT=rotate process-wide.
struct ScopedFaultsOff {
  ScopedEnv fault{"OPTRULES_WORKERD_FAULT", nullptr};
  ScopedEnv token{"OPTRULES_WORKERD_FAULT_TOKEN", nullptr};
  ScopedEnv counter{"OPTRULES_WORKERD_FAULT_COUNTER", nullptr};
};

/// Creates the token file exactly ONE daemon can claim (by unlinking it)
/// to arm its fault; returns its path for OPTRULES_WORKERD_FAULT_TOKEN.
std::string WriteFaultToken(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::FILE* file = std::fopen(path.c_str(), "wb");
  EXPECT_NE(file, nullptr);
  std::fputs("token\n", file);
  std::fclose(file);
  return path;
}

/// Worker factory for fault tests: the `ordinal`-th worker it builds (and
/// only that one) wraps its InProcessScanWorker in the given faults;
/// respawned replacements come from the same factory and run clean.
std::function<Result<std::unique_ptr<ScanWorker>>()> FaultyWorkerFactory(
    int faulty_ordinal, std::vector<InjectedFault> faults) {
  auto built = std::make_shared<std::atomic<int>>(0);
  return [built, faulty_ordinal,
          faults = std::move(faults)]() -> Result<std::unique_ptr<ScanWorker>> {
    std::unique_ptr<ScanWorker> inner =
        std::make_unique<InProcessScanWorker>();
    if (built->fetch_add(1) == faulty_ordinal) {
      return std::unique_ptr<ScanWorker>(
          std::make_unique<FaultInjectingScanWorker>(std::move(inner),
                                                     faults));
    }
    return inner;
  };
}

/// Forwards to `inner`, bumping a shared call counter: lets tests count
/// CountPartition attempts across a whole roster.
class CountingScanWorker final : public ScanWorker {
 public:
  CountingScanWorker(std::unique_ptr<ScanWorker> inner,
                     std::shared_ptr<std::atomic<int64_t>> calls)
      : inner_(std::move(inner)), calls_(std::move(calls)) {}

  Result<bucketing::MultiCountPlan> CountPartition(
      const std::string& partition_path, const PartitionScanSpec& spec,
      storage::BatchSourceStats* stats) override {
    calls_->fetch_add(1);
    return inner_->CountPartition(partition_path, spec, stats);
  }
  Status Ping(int64_t timeout_ms) override {
    return inner_->Ping(timeout_ms);
  }
  bool healthy() const override { return inner_->healthy(); }

 private:
  std::unique_ptr<ScanWorker> inner_;
  std::shared_ptr<std::atomic<int64_t>> calls_;
};

// ----------------------------------------------------------- manifest ----

TEST(ManifestTest, RoundTripsSchemaPartitionsAndStats) {
  const std::string dir = TempDir("manifest_roundtrip");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  PartitionManifest manifest;
  auto schema = storage::Schema::Create(
      {{"age", storage::AttrKind::kNumeric},
       {"account balance", storage::AttrKind::kNumeric},
       {"card loan", storage::AttrKind::kBoolean}});
  ASSERT_TRUE(schema.ok());
  manifest.schema = schema.value();
  manifest.partitions = {{"part-00000.optr", 5}, {"part-00001.optr", 7}};
  manifest.numeric_stats = {{-1.5, 2.25},
                            {0.1, std::numeric_limits<double>::infinity()}};
  ASSERT_TRUE(WriteManifest(manifest, dir).ok());

  Result<PartitionManifest> read = ReadManifest(dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().schema, manifest.schema);
  EXPECT_EQ(read.value().schema_hash, SchemaHash(manifest.schema));
  ASSERT_EQ(read.value().num_partitions(), 2);
  EXPECT_EQ(read.value().partitions[0].file, "part-00000.optr");
  EXPECT_EQ(read.value().partitions[1].num_rows, 7);
  EXPECT_EQ(read.value().total_rows(), 12);
  ASSERT_EQ(read.value().numeric_stats.size(), 2u);
  EXPECT_EQ(read.value().numeric_stats[0].min_value, -1.5);
  EXPECT_EQ(read.value().numeric_stats[0].max_value, 2.25);
  EXPECT_TRUE(std::isinf(read.value().numeric_stats[1].max_value));
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, RejectsTamperedSchema) {
  const std::string dir = TempDir("manifest_tampered");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  PartitionManifest manifest;
  manifest.schema = storage::Schema::Synthetic(2, 1);
  manifest.partitions = {{"part-00000.optr", 1}};
  manifest.numeric_stats.resize(2);
  ASSERT_TRUE(WriteManifest(manifest, dir).ok());
  // Flip one attribute name in the manifest text.
  const std::string path = dir + "/" + kManifestFileName;
  std::string text;
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    char chunk[4096];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
      text.append(chunk, got);
    }
    std::fclose(file);
  }
  const size_t pos = text.find("attr numeric num0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 17, "attr numeric hack");
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), file), text.size());
    std::fclose(file);
  }
  const Result<PartitionManifest> read = ReadManifest(dir);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, MissingDirectoryIsIoError) {
  const Result<PartitionManifest> read =
      ReadManifest(testing::TempDir() + "/does_not_exist_xyz");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

// -------------------------------------------------------- partitioner ----

TEST(PartitionerTest, RoundRobinSplitsRowsInOrder) {
  const storage::Relation relation = TestRelation(101, 11);
  const std::string dir = TempDir("rr_split");
  PartitionOptions options;
  options.num_partitions = 3;
  Result<PartitionedTable> table = PartitionRelation(relation, dir, options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value().num_partitions(), 3);
  EXPECT_EQ(table.value().total_rows(), relation.NumRows());
  // Partition p holds rows p, p+3, p+6, ... in original order, exactly.
  for (int p = 0; p < 3; ++p) {
    Result<storage::Relation> part = storage::ReadRelationFromFile(
        table.value().PartitionPath(p), relation.schema());
    ASSERT_TRUE(part.ok());
    ASSERT_EQ(part.value().NumRows(), table.value().partition_rows(p));
    int64_t source_row = p;
    for (int64_t row = 0; row < part.value().NumRows();
         ++row, source_row += 3) {
      for (int a = 0; a < relation.schema().num_numeric(); ++a) {
        const double expected = relation.NumericValue(source_row, a);
        const double got = part.value().NumericValue(row, a);
        if (std::isnan(expected)) {
          ASSERT_TRUE(std::isnan(got));
        } else {
          ASSERT_EQ(got, expected);
        }
      }
      for (int b = 0; b < relation.schema().num_boolean(); ++b) {
        ASSERT_EQ(part.value().BooleanValue(row, b),
                  relation.BooleanValue(source_row, b));
      }
    }
  }
  // Stats: NaN-safe min/max of every numeric column.
  for (int a = 0; a < relation.schema().num_numeric(); ++a) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (const double value : relation.NumericColumn(a)) {
      if (std::isnan(value)) continue;
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
    const AttributeStats& stats =
        table.value().manifest().numeric_stats[static_cast<size_t>(a)];
    EXPECT_EQ(stats.min_value, lo);
    EXPECT_EQ(stats.max_value, hi);
  }
  std::filesystem::remove_all(dir);
}

TEST(PartitionerTest, HashRoutingIsDeterministicAndComplete) {
  const storage::Relation relation = TestRelation(300, 12);
  PartitionOptions options;
  options.num_partitions = 4;
  options.strategy = PartitionStrategy::kHash;
  const std::string dir_a = TempDir("hash_a");
  const std::string dir_b = TempDir("hash_b");
  Result<PartitionedTable> a = PartitionRelation(relation, dir_a, options);
  Result<PartitionedTable> b = PartitionRelation(relation, dir_b, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().total_rows(), relation.NumRows());
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(a.value().partition_rows(p), b.value().partition_rows(p));
  }
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(PartitionerTest, OpenValidatesPartitionFiles) {
  const storage::Relation relation = TestRelation(64, 13);
  const std::string dir = TempDir("open_validate");
  PartitionOptions options;
  options.num_partitions = 2;
  ASSERT_TRUE(PartitionRelation(relation, dir, options).ok());
  ASSERT_TRUE(PartitionedTable::Open(dir).ok());
  // Deleting a partition file must fail Open, not a later scan.
  std::filesystem::remove(dir + "/part-00001.optr");
  EXPECT_FALSE(PartitionedTable::Open(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(PartitionerTest, PartitionPagedFileMatchesPartitionRelation) {
  const storage::Relation relation = TestRelation(200, 14);
  const std::string paged = testing::TempDir() + "/dist_single.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, paged).ok());
  PartitionOptions options;
  options.num_partitions = 3;
  const std::string dir_r = TempDir("from_relation");
  const std::string dir_f = TempDir("from_file");
  Result<PartitionedTable> from_relation =
      PartitionRelation(relation, dir_r, options);
  Result<PartitionedTable> from_file =
      PartitionPagedFile(paged, relation.schema(), dir_f, options);
  ASSERT_TRUE(from_relation.ok());
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(from_relation.value().partition_rows(p),
              from_file.value().partition_rows(p));
    // Byte-identical partition files: same rows, same order, same layout.
    const auto read = [](const std::string& path) {
      std::FILE* file = std::fopen(path.c_str(), "rb");
      std::string bytes;
      char chunk[4096];
      size_t got;
      while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
        bytes.append(chunk, got);
      }
      std::fclose(file);
      return bytes;
    };
    EXPECT_EQ(read(from_relation.value().PartitionPath(p)),
              read(from_file.value().PartitionPath(p)))
        << "partition " << p;
  }
  std::remove(paged.c_str());
  std::filesystem::remove_all(dir_r);
  std::filesystem::remove_all(dir_f);
}

TEST(PartitionerTest, RepartitioningReplacesTheTableWholesale) {
  const storage::Relation relation = TestRelation(120, 29);
  const std::string dir = TempDir("repartition");
  PartitionOptions options;
  options.num_partitions = 4;
  ASSERT_TRUE(PartitionRelation(relation, dir, options).ok());
  // Re-partition the same directory at a smaller K: the staged swap must
  // leave no stale part files from the old layout behind.
  options.num_partitions = 2;
  Result<PartitionedTable> table = PartitionRelation(relation, dir, options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value().num_partitions(), 2);
  EXPECT_EQ(table.value().total_rows(), relation.NumRows());
  EXPECT_FALSE(std::filesystem::exists(dir + "/part-00002.optr"));
  EXPECT_FALSE(std::filesystem::exists(dir + ".staging"));
  ASSERT_TRUE(PartitionedTable::Open(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(PartitionerTest, CsvPartitionsLikeItsRelation) {
  storage::Relation relation = TestRelation(80, 26);
  // CSV cells round-trip decimally, so drop the NaNs TestRelation injects
  // and compare via the re-read relation rather than the original.
  std::vector<double>& column = relation.MutableNumericColumn(0);
  for (double& value : column) {
    if (std::isnan(value)) value = 0.0;
  }
  const std::string csv = testing::TempDir() + "/dist_input.csv";
  ASSERT_TRUE(storage::WriteCsv(relation, csv).ok());
  const std::string dir = TempDir("from_csv");
  PartitionOptions options;
  options.num_partitions = 3;
  Result<PartitionedTable> table = PartitionCsv(csv, dir, options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value().total_rows(), relation.NumRows());
  EXPECT_EQ(table.value().schema(), relation.schema());
  std::remove(csv.c_str());
  std::filesystem::remove_all(dir);
}

TEST(PartitionerTest, ConcatSourceReplaysPartitionsInManifestOrder) {
  const storage::Relation relation = TestRelation(150, 15);
  const std::string dir = TempDir("concat");
  PartitionOptions options;
  options.num_partitions = 4;
  Result<PartitionedTable> table = PartitionRelation(relation, dir, options);
  ASSERT_TRUE(table.ok());
  PartitionedTableBatchSource source(&table.value(), 32);
  EXPECT_EQ(source.NumTuples(), relation.NumRows());
  std::unique_ptr<storage::BatchReader> reader = source.CreateReader();
  storage::ColumnarBatch batch;
  std::vector<double> streamed;
  while (reader->Next(&batch)) {
    const std::span<const double> column = batch.numeric(1);
    streamed.insert(streamed.end(), column.begin(), column.end());
  }
  ASSERT_EQ(static_cast<int64_t>(streamed.size()), relation.NumRows());
  // Round-robin: partition-concatenated order is row p, p+4, ... per p.
  size_t index = 0;
  for (int p = 0; p < 4; ++p) {
    for (int64_t row = p; row < relation.NumRows(); row += 4) {
      ASSERT_EQ(streamed[index++], relation.NumericValue(row, 1));
    }
  }
  EXPECT_EQ(source.scans_started(), 1);
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------------- wire ----

TEST(WireTest, ScanRequestRoundTrips) {
  const storage::Relation relation = TestRelation(64, 16);
  const std::vector<BucketBoundaries> base = BaseBoundaries(relation, 8);
  const BucketBoundaries grid_y =
      BucketBoundaries::FromCutPoints({0.25, 0.5});
  const MultiCountSpec spec =
      MakeMixedSpec(relation.schema(), base, grid_y);
  std::vector<uint8_t> payload;
  EncodeScanRequest("/some/partition.optr", 1234,
                    storage::PagedReadMode::kSynchronous, spec, &payload);
  Result<ScanRequestFrame> frame = DecodeScanRequest(payload);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().partition_path, "/some/partition.optr");
  EXPECT_EQ(frame.value().batch_rows, 1234);
  EXPECT_EQ(frame.value().read_mode, storage::PagedReadMode::kSynchronous);
  const MultiCountSpec& decoded = frame.value().spec;
  EXPECT_EQ(decoded.num_targets, spec.num_targets);
  EXPECT_EQ(decoded.conditions, spec.conditions);
  ASSERT_EQ(decoded.channels.size(), spec.channels.size());
  for (size_t c = 0; c < spec.channels.size(); ++c) {
    EXPECT_EQ(decoded.channels[c].column, spec.channels[c].column);
    EXPECT_EQ(decoded.channels[c].condition, spec.channels[c].condition);
    EXPECT_EQ(decoded.channels[c].count_targets,
              spec.channels[c].count_targets);
    EXPECT_EQ(decoded.channels[c].sum_targets,
              spec.channels[c].sum_targets);
    ASSERT_NE(decoded.channels[c].boundaries, nullptr);
    EXPECT_EQ(decoded.channels[c].boundaries->cut_points(),
              spec.channels[c].boundaries->cut_points());
  }
  ASSERT_EQ(decoded.grid_channels.size(), 1u);
  EXPECT_EQ(decoded.grid_channels[0].y_boundaries->cut_points(),
            grid_y.cut_points());
  // Shared boundary identity survives the wire: the grid's x axis reuses
  // channel 0's boundaries object, so locate groups still dedupe.
  EXPECT_EQ(decoded.grid_channels[0].x_boundaries,
            decoded.channels[0].boundaries);
  // Corrupt payloads fail, never crash.
  std::vector<uint8_t> truncated(payload.begin(),
                                 payload.begin() + payload.size() / 2);
  EXPECT_FALSE(DecodeScanRequest(truncated).ok());
}

TEST(WireTest, PartialPlanStateRoundTripsBitExactly) {
  const storage::Relation relation = TestRelation(500, 17);
  const std::vector<BucketBoundaries> base = BaseBoundaries(relation, 10);
  const BucketBoundaries grid_y =
      BucketBoundaries::FromCutPoints({1e5, 4e5});
  const MultiCountSpec spec =
      MakeMixedSpec(relation.schema(), base, grid_y);

  storage::RelationBatchSource source(&relation, 128);
  MultiCountPlan original(spec);
  bucketing::ExecuteMultiCount(source, &original, nullptr);
  std::vector<uint8_t> bytes;
  original.AppendPartialState(&bytes);

  MultiCountPlan restored(spec);
  ASSERT_TRUE(restored.LoadPartialState(bytes).ok());
  ExpectPlansIdentical(restored, original);

  // Truncation and shape mismatch are detected.
  MultiCountPlan scratch(spec);
  EXPECT_FALSE(scratch
                   .LoadPartialState(std::span<const uint8_t>(bytes)
                                         .subspan(0, bytes.size() - 3))
                   .ok());
  MultiCountSpec narrow;
  narrow.num_targets = relation.schema().num_boolean();
  CountChannel only;
  only.column = 0;
  only.boundaries = &base[0];
  narrow.channels.push_back(only);
  MultiCountPlan wrong_shape(narrow);
  EXPECT_FALSE(wrong_shape.LoadPartialState(bytes).ok());
}

TEST(WireTest, ReadFrameTimedEnforcesDeadlines) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::vector<uint8_t> payload;
  // Total deadline: nothing ever arrives.
  FrameTimeouts total_only;
  total_only.total_ms = 100;
  Status status = ReadFrameTimed(fds[0], &payload, total_only);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  // Liveness: a partial length prefix, then silence.
  const uint8_t half_prefix[2] = {8, 0};
  ASSERT_EQ(::write(fds[1], half_prefix, sizeof(half_prefix)), 2);
  FrameTimeouts liveness_only;
  liveness_only.liveness_ms = 100;
  status = ReadFrameTimed(fds[0], &payload, liveness_only);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  ::close(fds[0]);
  ::close(fds[1]);

  // A frame that does arrive in time reads back intact, and clean EOF at
  // a frame boundary is still NotFound under timeouts.
  ASSERT_EQ(::pipe(fds), 0);
  const uint8_t bytes[] = {42, 7};
  ASSERT_TRUE(WriteFrame(fds[1], bytes).ok());
  ::close(fds[1]);
  FrameTimeouts both;
  both.liveness_ms = 1000;
  both.total_ms = 1000;
  ASSERT_TRUE(ReadFrameTimed(fds[0], &payload, both).ok());
  EXPECT_EQ(payload, std::vector<uint8_t>({42, 7}));
  EXPECT_EQ(ReadFrameTimed(fds[0], &payload, both).code(),
            StatusCode::kNotFound);
  ::close(fds[0]);
}

TEST(WireTest, ErrorFrameRoundTrips) {
  std::vector<uint8_t> payload;
  EncodeErrorFrame(Status::NotFound("no such partition"), &payload);
  const Status status = DecodeErrorFrame(payload);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such partition");
}

// ------------------------------------------------------------ workers ----

/// Reference: serial scan of the whole relation.
MultiCountPlan ReferencePlan(const storage::Relation& relation,
                             const MultiCountSpec& spec) {
  storage::RelationBatchSource source(&relation);
  MultiCountPlan plan(spec);
  bucketing::ExecuteMultiCount(source, &plan, nullptr);
  return plan;
}

/// Merges per-partition worker partials in partition order.
MultiCountPlan MergeWorkerPartials(ScanWorker& worker,
                                   const PartitionedTable& table,
                                   const MultiCountSpec& spec) {
  PartitionScanSpec scan_spec;
  scan_spec.spec = &spec;
  MultiCountPlan merged(spec);
  for (int p = 0; p < table.num_partitions(); ++p) {
    Result<MultiCountPlan> partial =
        worker.CountPartition(table.PartitionPath(p), scan_spec);
    EXPECT_TRUE(partial.ok()) << partial.status().ToString();
    merged.Merge(partial.value());
  }
  return merged;
}

TEST(ScanWorkerTest, InProcessWorkerPartialsMergeToReference) {
  const storage::Relation relation = TestRelation(700, 18);
  const std::vector<BucketBoundaries> base = BaseBoundaries(relation, 12);
  const BucketBoundaries grid_y = BucketBoundaries::FromCutPoints({2e5});
  const MultiCountSpec spec =
      MakeMixedSpec(relation.schema(), base, grid_y);
  const std::string dir = TempDir("worker_inproc");
  PartitionOptions options;
  options.num_partitions = 3;
  Result<PartitionedTable> table = PartitionRelation(relation, dir, options);
  ASSERT_TRUE(table.ok());

  InProcessScanWorker worker;
  const MultiCountPlan merged =
      MergeWorkerPartials(worker, table.value(), spec);
  const MultiCountPlan reference = ReferencePlan(relation, spec);
  // Counts/grids/min/max are permutation-invariant, so the partitioned
  // merge must equal the single-relation serial reference bit for bit;
  // the compensated sums agree too on this data (asserted exactly).
  ExpectPlansIdentical(merged, reference);
  std::filesystem::remove_all(dir);
}

TEST(ScanWorkerTest, SubprocessWorkerMatchesInProcess) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  ScopedFaultsOff no_faults;  // direct worker use: no retry layer above
  const storage::Relation relation = TestRelation(600, 19);
  const std::vector<BucketBoundaries> base = BaseBoundaries(relation, 9);
  const BucketBoundaries grid_y = BucketBoundaries::FromCutPoints({3e5});
  const MultiCountSpec spec =
      MakeMixedSpec(relation.schema(), base, grid_y);
  const std::string dir = TempDir("worker_subproc");
  PartitionOptions options;
  options.num_partitions = 3;
  Result<PartitionedTable> table = PartitionRelation(relation, dir, options);
  ASSERT_TRUE(table.ok());

  Result<std::unique_ptr<SubprocessScanWorker>> subprocess =
      SubprocessScanWorker::Spawn(ResolveWorkerdPath(""));
  ASSERT_TRUE(subprocess.ok()) << subprocess.status().ToString();
  // ONE daemon serves all three partitions sequentially over its pipe.
  const MultiCountPlan remote =
      MergeWorkerPartials(*subprocess.value(), table.value(), spec);
  InProcessScanWorker local;
  const MultiCountPlan in_process =
      MergeWorkerPartials(local, table.value(), spec);
  ExpectPlansIdentical(remote, in_process);
  std::filesystem::remove_all(dir);
}

TEST(ScanWorkerTest, SubprocessWorkerReportsMissingPartition) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  ScopedFaultsOff no_faults;  // direct worker use: no retry layer above
  Result<std::unique_ptr<SubprocessScanWorker>> worker =
      SubprocessScanWorker::Spawn(ResolveWorkerdPath(""));
  ASSERT_TRUE(worker.ok());
  MultiCountSpec spec;
  spec.num_targets = 1;
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({1.0});
  CountChannel channel;
  channel.column = 0;
  channel.boundaries = &boundaries;
  spec.channels.push_back(channel);
  PartitionScanSpec scan_spec;
  scan_spec.spec = &spec;
  // The error comes back as a frame; the daemon survives to serve again.
  Result<MultiCountPlan> missing = worker.value()->CountPartition(
      testing::TempDir() + "/no_such_partition.optr", scan_spec, nullptr);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
  Result<MultiCountPlan> still_missing = worker.value()->CountPartition(
      testing::TempDir() + "/still_missing.optr", scan_spec, nullptr);
  EXPECT_FALSE(still_missing.ok());
}

TEST(ScanWorkerTest, SpawnFailsWithoutBinary) {
  EXPECT_FALSE(SubprocessScanWorker::Spawn("").ok());
}

TEST(ScanWorkerTest, PingPongAndExternalKill) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  ScopedFaultsOff no_faults;  // direct worker use: no retry layer above
  Result<std::unique_ptr<SubprocessScanWorker>> worker =
      SubprocessScanWorker::Spawn(ResolveWorkerdPath(""));
  ASSERT_TRUE(worker.ok()) << worker.status().ToString();
  EXPECT_TRUE(worker.value()->Ping(2'000).ok());
  EXPECT_TRUE(worker.value()->healthy());
  // kill -9 the daemon out from under the worker: the next ping must
  // fail, mark the transport broken, and reap the child.
  ASSERT_EQ(::kill(worker.value()->pid(), SIGKILL), 0);
  EXPECT_FALSE(worker.value()->Ping(2'000).ok());
  EXPECT_FALSE(worker.value()->healthy());
  // Further use fails fast instead of writing into a dead pipe.
  MultiCountSpec spec;
  spec.num_targets = 1;
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({1.0});
  CountChannel channel;
  channel.column = 0;
  channel.boundaries = &boundaries;
  spec.channels.push_back(channel);
  PartitionScanSpec scan_spec;
  scan_spec.spec = &spec;
  EXPECT_FALSE(worker.value()
                   ->CountPartition(testing::TempDir() + "/unused.optr",
                                    scan_spec, nullptr)
                   .ok());
}

TEST(ScanWorkerTest, DestructorReapsWedgedDaemonPromptly) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  ScopedFaultsOff no_faults;
  Result<std::unique_ptr<SubprocessScanWorker>> worker =
      SubprocessScanWorker::Spawn(ResolveWorkerdPath(""));
  ASSERT_TRUE(worker.ok());
  // SIGSTOP wedges the daemon completely: it cannot read the shutdown
  // frame, cannot exit on EOF, and a stopped process ignores SIGTERM
  // until continued -- only the destructor's SIGKILL escalation can reap
  // it. The destructor must return promptly regardless.
  ASSERT_EQ(::kill(worker.value()->pid(), SIGSTOP), 0);
  const auto start = std::chrono::steady_clock::now();
  worker.value().reset();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 5'000) << "destructor hung on a wedged daemon";
}

// -------------------------------------------------------- coordinator ----

TEST(CoordinatorTest, MergeIsIdenticalForAnyWorkerCount) {
  const storage::Relation relation = TestRelation(900, 20);
  const std::vector<BucketBoundaries> base = BaseBoundaries(relation, 14);
  const BucketBoundaries grid_y = BucketBoundaries::FromCutPoints({2e5});
  const MultiCountSpec spec =
      MakeMixedSpec(relation.schema(), base, grid_y);
  const MultiCountPlan reference = ReferencePlan(relation, spec);
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kRoundRobin, PartitionStrategy::kHash}) {
    const std::string dir = TempDir("coord_workers");
    PartitionOptions options;
    options.num_partitions = 5;
    options.strategy = strategy;
    Result<PartitionedTable> table =
        PartitionRelation(relation, dir, options);
    ASSERT_TRUE(table.ok());
    for (const int workers : {1, 2, 5}) {
      DistributedScanOptions scan_options;
      scan_options.max_workers = workers;
      DistributedScanCoordinator coordinator(&table.value(), scan_options);
      MultiCountPlan plan(spec);
      ASSERT_TRUE(coordinator.Execute(&plan).ok());
      EXPECT_EQ(coordinator.partition_scans(), 5);
      ExpectPlansIdentical(plan, reference);
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(CoordinatorTest, MixedFormatPartitionsScanIdentically) {
  // A PartitionedTable may hold a mix of on-disk format versions (e.g.
  // partitions written before and after the columnar v2 rollout). The
  // manifest records rows and schema, not layout; every reader negotiates
  // the version per file, so a mixed table must validate and scan
  // bit-identically to the all-v2 table it started as.
  const storage::Relation relation = TestRelation(700, 23);
  const std::vector<BucketBoundaries> base = BaseBoundaries(relation, 11);
  const BucketBoundaries grid_y = BucketBoundaries::FromCutPoints({2e5});
  const MultiCountSpec spec =
      MakeMixedSpec(relation.schema(), base, grid_y);
  const MultiCountPlan reference = ReferencePlan(relation, spec);
  const std::string dir = TempDir("coord_mixed_formats");
  PartitionOptions options;
  options.num_partitions = 3;
  Result<PartitionedTable> table = PartitionRelation(relation, dir, options);
  ASSERT_TRUE(table.ok());

  // Rewrite partition 1 in the legacy row-major v1 layout, same rows and
  // order, then re-open the table from the untouched manifest.
  const std::string part1 = table.value().PartitionPath(1);
  Result<storage::PagedFileInfo> before = storage::ReadPagedFileInfo(part1);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().format_version, 2u);
  Result<storage::Relation> part1_rows =
      storage::ReadRelationFromFile(part1, relation.schema());
  ASSERT_TRUE(part1_rows.ok());
  storage::PagedFileWriterOptions v1;
  v1.format = storage::PagedFileFormat::kRowMajorV1;
  ASSERT_TRUE(
      storage::WriteRelationToFile(part1_rows.value(), part1, v1).ok());
  Result<storage::PagedFileInfo> after = storage::ReadPagedFileInfo(part1);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().format_version, 1u);

  Result<PartitionedTable> mixed = PartitionedTable::Open(dir);
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  {
    DistributedScanCoordinator coordinator(&mixed.value(), {});
    MultiCountPlan plan(spec);
    ASSERT_TRUE(coordinator.Execute(&plan).ok());
    ExpectPlansIdentical(plan, reference);
  }
  if (!ResolveWorkerdPath("").empty()) {
    // The subprocess worker re-opens the partition file in its own
    // process; version negotiation must survive the hop too.
    DistributedScanOptions scan_options;
    scan_options.worker_kind = WorkerKind::kSubprocess;
    scan_options.max_workers = 2;
    DistributedScanCoordinator coordinator(&mixed.value(), scan_options);
    MultiCountPlan plan(spec);
    ASSERT_TRUE(coordinator.Execute(&plan).ok());
    ExpectPlansIdentical(plan, reference);
  }
  std::filesystem::remove_all(dir);
}

TEST(CoordinatorTest, ManifestPruningSkipsDeadPartitionsBitExactly) {
  // Condition Boolean 0 is true only on rows congruent to 0 mod 4; under
  // round-robin partitioning into 4 partitions every true row lands in
  // partition 0, so the manifest's per-partition stats prove partitions
  // 1-3 dead for an all-conditional spec. The coordinator must skip them
  // before dispatch -- in-process AND subprocess workers -- and still
  // merge to the single-relation serial reference bit for bit (skipped
  // partitions contribute their row counts, nothing else).
  storage::Relation relation = TestRelation(1000, 77);
  std::vector<uint8_t>& cond = relation.MutableBooleanColumn(0);
  for (size_t i = 0; i < cond.size(); ++i) {
    if (i % 4 != 0) cond[i] = 0;
  }
  const std::vector<BucketBoundaries> base = BaseBoundaries(relation, 12);
  MultiCountSpec spec;
  spec.num_targets = relation.schema().num_boolean();
  spec.conditions.push_back({0});
  for (int a = 0; a < relation.schema().num_numeric(); ++a) {
    CountChannel channel;
    channel.column = a;
    channel.boundaries = &base[static_cast<size_t>(a)];
    channel.condition = 0;
    spec.channels.push_back(std::move(channel));
  }
  CountChannel summing;
  summing.column = 0;
  summing.boundaries = &base[0];
  summing.condition = 0;
  summing.count_targets = false;
  summing.sum_targets = {1, 2};
  spec.channels.push_back(std::move(summing));
  const MultiCountPlan reference = ReferencePlan(relation, spec);

  const std::string dir = TempDir("coord_prune");
  PartitionOptions options;
  options.num_partitions = 4;
  Result<PartitionedTable> table = PartitionRelation(relation, dir, options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_TRUE(table.value().manifest().has_partition_stats);

  std::vector<WorkerKind> kinds = {WorkerKind::kInProcess};
  if (!ResolveWorkerdPath("").empty()) {
    kinds.push_back(WorkerKind::kSubprocess);
  }
  for (const WorkerKind kind : kinds) {
    DistributedScanOptions scan_options;
    scan_options.worker_kind = kind;
    scan_options.max_workers = 2;
    DistributedScanCoordinator coordinator(&table.value(), scan_options);
    MultiCountPlan plan(spec);
    ASSERT_TRUE(coordinator.Execute(&plan).ok());
    ExpectPlansIdentical(plan, reference);
    EXPECT_EQ(coordinator.scan_stats().partitions_skipped, 3);
    EXPECT_EQ(coordinator.partition_scans(), 1);
  }
  std::filesystem::remove_all(dir);
}

TEST(CoordinatorTest, SubprocessWorkersMatchInProcess) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  const storage::Relation relation = TestRelation(400, 21);
  const std::vector<BucketBoundaries> base = BaseBoundaries(relation, 7);
  const BucketBoundaries grid_y = BucketBoundaries::FromCutPoints({1e5});
  const MultiCountSpec spec =
      MakeMixedSpec(relation.schema(), base, grid_y);
  const std::string dir = TempDir("coord_subproc");
  PartitionOptions options;
  options.num_partitions = 4;
  Result<PartitionedTable> table = PartitionRelation(relation, dir, options);
  ASSERT_TRUE(table.ok());

  MultiCountPlan in_process(spec);
  {
    DistributedScanCoordinator coordinator(&table.value(), {});
    ASSERT_TRUE(coordinator.Execute(&in_process).ok());
  }
  DistributedScanOptions scan_options;
  scan_options.worker_kind = WorkerKind::kSubprocess;
  scan_options.max_workers = 2;  // 2 daemons x 2 partitions each
  DistributedScanCoordinator coordinator(&table.value(), scan_options);
  MultiCountPlan subprocess(spec);
  ASSERT_TRUE(coordinator.Execute(&subprocess).ok());
  ExpectPlansIdentical(subprocess, in_process);
  std::filesystem::remove_all(dir);
}

TEST(CoordinatorTest, MissingWorkerBinaryIsAnError) {
  const storage::Relation relation = TestRelation(50, 22);
  const std::string dir = TempDir("coord_missing_binary");
  PartitionOptions options;
  options.num_partitions = 2;
  Result<PartitionedTable> table = PartitionRelation(relation, dir, options);
  ASSERT_TRUE(table.ok());
  DistributedScanOptions scan_options;
  scan_options.worker_kind = WorkerKind::kSubprocess;
  scan_options.workerd_path = "/no/such/binary";
  DistributedScanCoordinator coordinator(&table.value(), scan_options);
  const std::vector<BucketBoundaries> base = BaseBoundaries(relation, 4);
  const BucketBoundaries grid_y = BucketBoundaries::FromCutPoints({0.0});
  MultiCountPlan plan(MakeMixedSpec(relation.schema(), base, grid_y));
  // exec fails inside the child, so the first partition scan reports the
  // dead pipe as an error instead of hanging.
  EXPECT_FALSE(coordinator.Execute(&plan).ok());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------- fault tolerance ----

/// Shared scaffolding: a partitioned table plus the serial reference plan
/// every fault scenario must still reproduce bit for bit.
struct FaultFixture {
  FaultFixture(int64_t rows, uint64_t seed, int partitions,
               const std::string& dir_name)
      : relation(TestRelation(rows, seed)),
        base(BaseBoundaries(relation, 10)),
        grid_y(BucketBoundaries::FromCutPoints({2e5})),
        spec(MakeMixedSpec(relation.schema(), base, grid_y)),
        reference(ReferencePlan(relation, spec)),
        dir(TempDir(dir_name)) {
    PartitionOptions options;
    options.num_partitions = partitions;
    Result<PartitionedTable> opened =
        PartitionRelation(relation, dir, options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    table.emplace(std::move(opened).value());
  }
  ~FaultFixture() { std::filesystem::remove_all(dir); }

  storage::Relation relation;
  std::vector<BucketBoundaries> base;
  BucketBoundaries grid_y;
  MultiCountSpec spec;
  MultiCountPlan reference;
  std::string dir;
  std::optional<PartitionedTable> table;
};

/// The tentpole contract, in-process side: a worker whose transport dies
/// mid-scan (the in-process analogue of kill -9) is replaced, its
/// partition re-dispatched, and the merged result stays bit-identical to
/// the no-failure run -- at K = 3 and K = 8.
TEST(FaultToleranceTest, InProcessWorkerCrashFailsOverBitExactly) {
  for (const int k : {3, 8}) {
    FaultFixture fixture(1100, 31, k, "fault_inproc_k" + std::to_string(k));
    DistributedScanOptions options;
    options.max_workers = 3;
    options.worker_factory = FaultyWorkerFactory(
        0, {{.at_call = 0,
             .status = Status::IoError("injected transport death"),
             .mark_unhealthy = true}});
    DistributedScanCoordinator coordinator(&fixture.table.value(), options);
    MultiCountPlan plan(fixture.spec);
    ASSERT_TRUE(coordinator.Execute(&plan).ok());
    ExpectPlansIdentical(plan, fixture.reference);
    EXPECT_EQ(coordinator.partition_scans(), k) << "k=" << k;
    EXPECT_GE(coordinator.scan_stats().retries, 1) << "k=" << k;
    EXPECT_GE(coordinator.scan_stats().workers_respawned, 1) << "k=" << k;
  }
}

/// The tentpole contract, subprocess side: one daemon of the fleet
/// kill -9's itself mid-scan (request read, reply never sent); the
/// coordinator respawns a replacement, retries the partition, and the
/// merged counts/grids/Neumaier sums are bit-identical -- K = 3 and 8.
TEST(FaultToleranceTest, SubprocessKillNineMidScanIsBitIdentical) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  for (const int k : {3, 8}) {
    FaultFixture fixture(900, 33, k, "fault_kill9_k" + std::to_string(k));
    ScopedEnv fault("OPTRULES_WORKERD_FAULT", "crash-before-reply");
    const std::string token =
        WriteFaultToken("kill9_token_k" + std::to_string(k));
    ScopedEnv token_env("OPTRULES_WORKERD_FAULT_TOKEN", token.c_str());
    DistributedScanOptions options;
    options.worker_kind = WorkerKind::kSubprocess;
    options.max_workers = 3;
    DistributedScanCoordinator coordinator(&fixture.table.value(), options);
    MultiCountPlan plan(fixture.spec);
    const Status status = coordinator.Execute(&plan);
    ASSERT_TRUE(status.ok()) << "k=" << k << ": " << status.ToString();
    ExpectPlansIdentical(plan, fixture.reference);
    EXPECT_GE(coordinator.scan_stats().retries, 1) << "k=" << k;
    EXPECT_GE(coordinator.scan_stats().workers_respawned, 1) << "k=" << k;
  }
}

/// Transport-level faults beyond a clean crash: a truncated reply frame
/// followed by death, and a garbage frame. Both must mark the daemon
/// broken and fail over without poisoning the merge.
TEST(FaultToleranceTest, CorruptFramesFailOverBitExactly) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  for (const std::string kind : {"crash-mid-frame", "garbage-frame"}) {
    FaultFixture fixture(700, 35, 4, "fault_" + kind);
    ScopedEnv fault("OPTRULES_WORKERD_FAULT", kind.c_str());
    const std::string token = WriteFaultToken("corrupt_token_" + kind);
    ScopedEnv token_env("OPTRULES_WORKERD_FAULT_TOKEN", token.c_str());
    DistributedScanOptions options;
    options.worker_kind = WorkerKind::kSubprocess;
    options.max_workers = 2;
    DistributedScanCoordinator coordinator(&fixture.table.value(), options);
    MultiCountPlan plan(fixture.spec);
    const Status status = coordinator.Execute(&plan);
    ASSERT_TRUE(status.ok()) << kind << ": " << status.ToString();
    ExpectPlansIdentical(plan, fixture.reference);
    EXPECT_GE(coordinator.scan_stats().retries, 1) << kind;
    EXPECT_GE(coordinator.scan_stats().workers_respawned, 1) << kind;
  }
}

/// A clean kError frame is a request failure, not a transport failure:
/// the daemon answered and stays in the roster; only the partition is
/// retried.
TEST(FaultToleranceTest, ErrorFrameRetriesWithoutRespawning) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  FaultFixture fixture(600, 37, 4, "fault_error_frame");
  ScopedEnv fault("OPTRULES_WORKERD_FAULT", "error-frame");
  const std::string token = WriteFaultToken("error_frame_token");
  ScopedEnv token_env("OPTRULES_WORKERD_FAULT_TOKEN", token.c_str());
  DistributedScanOptions options;
  options.worker_kind = WorkerKind::kSubprocess;
  options.max_workers = 2;
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  MultiCountPlan plan(fixture.spec);
  ASSERT_TRUE(coordinator.Execute(&plan).ok());
  ExpectPlansIdentical(plan, fixture.reference);
  EXPECT_GE(coordinator.scan_stats().retries, 1);
  EXPECT_EQ(coordinator.scan_stats().workers_respawned, 0);
}

/// Liveness vs deadline, hung side: a daemon that sleeps with heartbeats
/// SUPPRESSED is declared hung after liveness_timeout_ms, SIGKILLed, and
/// its partition retried -- long before its 30 s nap would end.
TEST(FaultToleranceTest, HungDaemonIsKilledAndRetried) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  FaultFixture fixture(500, 39, 3, "fault_hang");
  ScopedEnv fault("OPTRULES_WORKERD_FAULT", "hang:30000");
  const std::string token = WriteFaultToken("hang_token");
  ScopedEnv token_env("OPTRULES_WORKERD_FAULT_TOKEN", token.c_str());
  DistributedScanOptions options;
  options.worker_kind = WorkerKind::kSubprocess;
  options.max_workers = 3;
  options.liveness_timeout_ms = 300;
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  MultiCountPlan plan(fixture.spec);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(coordinator.Execute(&plan).ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ExpectPlansIdentical(plan, fixture.reference);
  EXPECT_GE(coordinator.scan_stats().retries, 1);
  EXPECT_GE(coordinator.scan_stats().workers_respawned, 1);
  EXPECT_LT(elapsed.count(), 15'000) << "hung daemon was waited out";
}

/// Liveness vs deadline, slow side: a daemon that stalls WITH heartbeats
/// running is provably alive, so the same liveness timeout must NOT kill
/// it -- the scan just takes the extra 600 ms and nothing retries.
TEST(FaultToleranceTest, StragglerWithHeartbeatsIsNotKilled) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  FaultFixture fixture(500, 41, 3, "fault_stall");
  ScopedEnv fault("OPTRULES_WORKERD_FAULT", "stall:600");
  const std::string token = WriteFaultToken("stall_token");
  ScopedEnv token_env("OPTRULES_WORKERD_FAULT_TOKEN", token.c_str());
  DistributedScanOptions options;
  options.worker_kind = WorkerKind::kSubprocess;
  options.max_workers = 3;
  options.liveness_timeout_ms = 300;  // < the stall, yet no kill
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  MultiCountPlan plan(fixture.spec);
  ASSERT_TRUE(coordinator.Execute(&plan).ok());
  ExpectPlansIdentical(plan, fixture.reference);
  EXPECT_EQ(coordinator.scan_stats().retries, 0);
  EXPECT_EQ(coordinator.scan_stats().workers_respawned, 0);
}

/// The per-partition deadline caps even a live straggler: heartbeats keep
/// it past the liveness check, but the total budget expires, the daemon
/// is killed, and the retry (with a backed-off, doubled deadline) lands
/// on a clean respawn.
TEST(FaultToleranceTest, PartitionDeadlineKillsLiveStraggler) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  FaultFixture fixture(500, 43, 3, "fault_deadline");
  ScopedEnv fault("OPTRULES_WORKERD_FAULT", "stall:5000");
  const std::string token = WriteFaultToken("deadline_token");
  ScopedEnv token_env("OPTRULES_WORKERD_FAULT_TOKEN", token.c_str());
  DistributedScanOptions options;
  options.worker_kind = WorkerKind::kSubprocess;
  options.max_workers = 3;
  options.partition_deadline_ms = 400;
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  MultiCountPlan plan(fixture.spec);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(coordinator.Execute(&plan).ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ExpectPlansIdentical(plan, fixture.reference);
  EXPECT_GE(coordinator.scan_stats().retries, 1);
  EXPECT_GE(coordinator.scan_stats().workers_respawned, 1);
  EXPECT_LT(elapsed.count(), 5'000) << "deadline did not cut the stall";
}

/// Work stealing: with one worker slot stuck on its first partition, an
/// idle peer drains the rest of its static stride. Same bits, and the
/// partitions_stolen counter proves the path ran.
TEST(FaultToleranceTest, IdleWorkersStealFromStragglers) {
  FaultFixture fixture(1000, 45, 8, "fault_steal");
  DistributedScanOptions options;
  options.max_workers = 2;
  // Worker slot 0 sleeps 400 ms on its first scan; slot 1 finishes its
  // own four partitions in a fraction of that and steals slot 0's rest.
  options.worker_factory =
      FaultyWorkerFactory(0, {{.at_call = 0, .delay_ms = 400}});
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  MultiCountPlan plan(fixture.spec);
  ASSERT_TRUE(coordinator.Execute(&plan).ok());
  ExpectPlansIdentical(plan, fixture.reference);
  EXPECT_GE(coordinator.scan_stats().partitions_stolen, 1);
  EXPECT_EQ(coordinator.scan_stats().retries, 0);
  EXPECT_EQ(coordinator.scan_stats().workers_respawned, 0);
}

/// The legacy static schedule never steals: the same straggler setup
/// completes with partitions_stolen == 0 (and the same bits).
TEST(FaultToleranceTest, StaticSchedulingNeverSteals) {
  FaultFixture fixture(1000, 45, 8, "fault_static");
  DistributedScanOptions options;
  options.max_workers = 2;
  options.scheduling = ScanScheduling::kStatic;
  options.worker_factory =
      FaultyWorkerFactory(0, {{.at_call = 0, .delay_ms = 200}});
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  MultiCountPlan plan(fixture.spec);
  ASSERT_TRUE(coordinator.Execute(&plan).ok());
  ExpectPlansIdentical(plan, fixture.reference);
  EXPECT_EQ(coordinator.scan_stats().partitions_stolen, 0);
}

/// Speculative tail execution: the last in-flight partition is re-run by
/// an idle worker; the first bit-exact partial wins and the duplicate is
/// discarded, never double-merged (the bit-identity check would catch
/// doubled counts immediately).
TEST(FaultToleranceTest, SpeculativeTailDuplicateIsDiscarded) {
  FaultFixture fixture(800, 47, 3, "fault_speculative");
  DistributedScanOptions options;
  options.max_workers = 3;
  options.speculative_tail = true;
  // Slot 0 dawdles 400 ms on partition 0; slots 1 and 2 finish their own
  // partitions ~instantly, go idle, and exactly one of them speculatively
  // re-runs partition 0 (the speculation is one-shot per partition). The
  // duplicate's partial wins; the straggler's late copy is discarded.
  auto calls = std::make_shared<std::atomic<int64_t>>(0);
  auto built = std::make_shared<std::atomic<int>>(0);
  options.worker_factory =
      [calls, built]() -> Result<std::unique_ptr<ScanWorker>> {
    std::vector<InjectedFault> faults;
    if (built->fetch_add(1) == 0) {
      faults.push_back({.at_call = 0, .delay_ms = 400});
    }
    return std::unique_ptr<ScanWorker>(std::make_unique<CountingScanWorker>(
        std::make_unique<FaultInjectingScanWorker>(
            std::make_unique<InProcessScanWorker>(), std::move(faults)),
        calls));
  };
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  MultiCountPlan plan(fixture.spec);
  ASSERT_TRUE(coordinator.Execute(&plan).ok());
  // Bit-identity is the double-merge detector: a duplicate partial merged
  // twice would double partition 0's counts.
  ExpectPlansIdentical(plan, fixture.reference);
  // 3 partitions + exactly one speculative duplicate ran.
  EXPECT_EQ(calls->load(), 4);
  EXPECT_EQ(coordinator.scan_stats().retries, 0);
}

/// Retry budget: a partition that fails on every attempt eventually
/// fails the scan with ITS error, after exactly the configured number of
/// attempts.
TEST(FaultToleranceTest, RetryBudgetExhaustionFailsTheScan) {
  FaultFixture fixture(300, 49, 2, "fault_budget");
  DistributedScanOptions options;
  options.max_workers = 1;
  options.max_partition_attempts = 2;
  std::vector<InjectedFault> always_failing;
  for (int call = 0; call < 8; ++call) {
    always_failing.push_back(
        {.at_call = call, .status = Status::Internal("persistent fault")});
  }
  options.worker_factory = FaultyWorkerFactory(0, always_failing);
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  MultiCountPlan plan(fixture.spec);
  const Status status = coordinator.Execute(&plan);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(coordinator.scan_stats().retries, 1);  // 2 attempts = 1 retry
}

/// InvalidArgument is permanent: no retry, the scan fails immediately.
TEST(FaultToleranceTest, PermanentFailuresAreNotRetried) {
  FaultFixture fixture(300, 51, 2, "fault_permanent");
  DistributedScanOptions options;
  options.max_workers = 1;
  options.worker_factory = FaultyWorkerFactory(
      0, {{.at_call = 0,
           .status = Status::InvalidArgument("bad spec for partition")}});
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  MultiCountPlan plan(fixture.spec);
  const Status status = coordinator.Execute(&plan);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(coordinator.scan_stats().retries, 0);
}

/// When every worker is dead and the respawn budget is spent, the scan
/// fails cleanly instead of hanging or spinning forever.
TEST(FaultToleranceTest, DeadFleetWithExhaustedBudgetFailsCleanly) {
  FaultFixture fixture(300, 53, 2, "fault_dead_fleet");
  DistributedScanOptions options;
  options.max_workers = 1;
  options.max_respawns = 1;
  auto lethal_factory = []() -> Result<std::unique_ptr<ScanWorker>> {
    std::vector<InjectedFault> faults;
    for (int call = 0; call < 8; ++call) {
      faults.push_back({.at_call = call,
                        .status = Status::IoError("worker keeps dying"),
                        .mark_unhealthy = true});
    }
    return std::unique_ptr<ScanWorker>(
        std::make_unique<FaultInjectingScanWorker>(
            std::make_unique<InProcessScanWorker>(), std::move(faults)));
  };
  options.worker_factory = lethal_factory;
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  MultiCountPlan plan(fixture.spec);
  EXPECT_FALSE(coordinator.Execute(&plan).ok());
}

/// The roster-retention fix: one bad partition must no longer re-fork
/// every healthy daemon. A scan that fails because a partition file
/// vanished keeps all daemons (they answered with clean error frames);
/// once the file is restored the SAME daemons serve the next Execute,
/// with zero respawns.
TEST(FaultToleranceTest, FailedExecuteKeepsHealthyDaemons) {
  if (ResolveWorkerdPath("").empty()) {
    GTEST_SKIP() << "OPTRULES_WORKERD not set";
  }
  ScopedFaultsOff no_faults;  // the respawn count below must isolate the fix
  FaultFixture fixture(600, 55, 3, "fault_roster");
  DistributedScanOptions options;
  options.worker_kind = WorkerKind::kSubprocess;
  options.max_workers = 3;
  DistributedScanCoordinator coordinator(&fixture.table.value(), options);
  const std::string victim = fixture.table.value().PartitionPath(1);
  const std::string hidden = victim + ".hidden";
  std::filesystem::rename(victim, hidden);
  MultiCountPlan failing(fixture.spec);
  ASSERT_FALSE(coordinator.Execute(&failing).ok());
  std::filesystem::rename(hidden, victim);
  MultiCountPlan plan(fixture.spec);
  ASSERT_TRUE(coordinator.Execute(&plan).ok());
  ExpectPlansIdentical(plan, fixture.reference);
  EXPECT_EQ(coordinator.scan_stats().workers_respawned, 0)
      << "healthy daemons were re-forked after an unrelated failure";
}

/// The fault counters flow through MiningEngine::scan_stats(), so a
/// session can report its retries/respawns/steals without reaching into
/// the coordinator.
TEST(FaultToleranceTest, EngineScanStatsExposeFaultCounters) {
  const storage::Relation relation = TestRelation(900, 57);
  const std::string dir = TempDir("fault_engine_stats");
  PartitionOptions partition_options;
  partition_options.num_partitions = 4;
  Result<PartitionedTable> table =
      PartitionRelation(relation, dir, partition_options);
  ASSERT_TRUE(table.ok());
  DistributedScanOptions scan_options;
  scan_options.max_workers = 2;
  scan_options.worker_factory = FaultyWorkerFactory(
      0, {{.at_call = 0,
           .status = Status::IoError("injected transport death"),
           .mark_unhealthy = true}});
  rules::MinerOptions options;
  options.num_buckets = 12;
  rules::MiningEngine engine(&table.value(), options, scan_options);
  ASSERT_TRUE(engine.TryPrepare().ok());
  EXPECT_GE(engine.scan_stats().retries, 1);
  EXPECT_GE(engine.scan_stats().workers_respawned, 1);
  std::filesystem::remove_all(dir);
}

// ------------------------------------- engine over a PartitionedTable ----

using rules::MinedAggregateRange;
using rules::MinedRegion;
using rules::MinedRule;
using rules::MinerOptions;
using rules::MiningEngine;

void ExpectSameRules(const std::vector<MinedRule>& a,
                     const std::vector<MinedRule>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].found, b[i].found) << "rule " << i;
    ASSERT_EQ(a[i].range_lo, b[i].range_lo) << "rule " << i;
    ASSERT_EQ(a[i].range_hi, b[i].range_hi) << "rule " << i;
    ASSERT_EQ(a[i].support_count, b[i].support_count) << "rule " << i;
    ASSERT_EQ(a[i].hit_count, b[i].hit_count) << "rule " << i;
    ASSERT_EQ(a[i].support, b[i].support) << "rule " << i;
    ASSERT_EQ(a[i].confidence, b[i].confidence) << "rule " << i;
  }
}

void ExpectSameAggregate(const Result<MinedAggregateRange>& a_or,
                         const Result<MinedAggregateRange>& b_or) {
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  const MinedAggregateRange& a = a_or.value();
  const MinedAggregateRange& b = b_or.value();
  ASSERT_EQ(a.found, b.found);
  ASSERT_EQ(a.range_lo, b.range_lo);
  ASSERT_EQ(a.range_hi, b.range_hi);
  ASSERT_EQ(a.support_count, b.support_count);
  ASSERT_EQ(a.support, b.support);
  ASSERT_EQ(a.average, b.average);
}

void ExpectSameRegion(const Result<MinedRegion>& a_or,
                      const Result<MinedRegion>& b_or) {
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  const MinedRegion& a = a_or.value();
  const MinedRegion& b = b_or.value();
  ASSERT_EQ(a.found, b.found);
  ASSERT_EQ(a.nx, b.nx);
  ASSERT_EQ(a.ny, b.ny);
  ASSERT_EQ(a.total_tuples, b.total_tuples);
  ASSERT_EQ(a.confidence_rectangle.support_count,
            b.confidence_rectangle.support_count);
  ASSERT_EQ(a.confidence_rectangle.hit_count,
            b.confidence_rectangle.hit_count);
  ASSERT_EQ(a.support_rectangle.support_count,
            b.support_rectangle.support_count);
  ASSERT_EQ(a.xmonotone_gain.gain, b.xmonotone_gain.gain);
  ASSERT_EQ(a.xmonotone_gain.column_ranges, b.xmonotone_gain.column_ranges);
}

/// The acceptance contract: a full mixed session (all-pairs + generalized
/// + average + region) over a PartitionedTable with K in {1, 3, 8}
/// partitions, in-process and subprocess workers, is bit-identical to the
/// single-PagedFile engine, with counting_scans() == 1 (K physical
/// partition scans behind it). kExactSort keeps boundary planning
/// permutation-invariant so the partitioned row order cannot leak in.
TEST(PartitionedEngineTest, MixedSessionMatchesSinglePagedFile) {
  const storage::Relation relation = TestRelation(4000, 23, 4, 3);
  const storage::Schema& schema = relation.schema();
  MinerOptions options;
  options.num_buckets = 60;
  options.region_grid_buckets = 12;
  options.bucketizer = rules::Bucketizer::kExactSort;

  const std::string paged = testing::TempDir() + "/dist_engine_single.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, paged).ok());
  auto single_source = storage::PagedFileBatchSource::Open(paged);
  ASSERT_TRUE(single_source.ok());
  MiningEngine reference(single_source.value().get(), schema, options);
  const auto run_session = [&schema](MiningEngine& engine) {
    ASSERT_TRUE(engine.RequestGeneralized({schema.BooleanName(0)}).ok());
    ASSERT_TRUE(engine.RequestAverageTarget(schema.NumericName(1)).ok());
    ASSERT_TRUE(
        engine
            .RequestRegionPair(schema.NumericName(0), schema.NumericName(1))
            .ok());
    engine.Prepare();
  };
  run_session(reference);
  const std::vector<MinedRule> reference_rules = reference.MineAllPairs();
  const auto reference_generalized = reference.MineGeneralized(
      schema.NumericName(2), {schema.BooleanName(0)}, schema.BooleanName(1));
  ASSERT_TRUE(reference_generalized.ok());
  const auto reference_average = reference.MineMaximumAverageRange(
      schema.NumericName(0), schema.NumericName(1), 0.1);
  const auto reference_support = reference.MineMaximumSupportRange(
      schema.NumericName(0), schema.NumericName(1), 1e5);
  const auto reference_region = reference.MineOptimizedRegion(
      schema.NumericName(0), schema.NumericName(1), schema.BooleanName(0));
  ASSERT_EQ(reference.counting_scans(), 1);

  const bool have_workerd = !ResolveWorkerdPath("").empty();
  for (const int k : {1, 3, 8}) {
    const std::string dir =
        TempDir("engine_mixed_k" + std::to_string(k));
    PartitionOptions partition_options;
    partition_options.num_partitions = k;
    Result<PartitionedTable> table =
        PartitionRelation(relation, dir, partition_options);
    ASSERT_TRUE(table.ok());

    std::vector<DistributedScanOptions> variants;
    variants.push_back({});  // in-process, one worker per partition
    DistributedScanOptions two_workers;
    two_workers.max_workers = 2;
    variants.push_back(two_workers);
    if (have_workerd) {
      DistributedScanOptions subprocess;
      subprocess.worker_kind = WorkerKind::kSubprocess;
      subprocess.max_workers = k == 1 ? 1 : 2;
      variants.push_back(subprocess);
    }
    for (const DistributedScanOptions& variant : variants) {
      MiningEngine engine(&table.value(), options, variant);
      run_session(engine);
      ExpectSameRules(engine.MineAllPairs(), reference_rules);
      const auto generalized = engine.MineGeneralized(
          schema.NumericName(2), {schema.BooleanName(0)},
          schema.BooleanName(1));
      ASSERT_TRUE(generalized.ok());
      ExpectSameRules(generalized.value(), reference_generalized.value());
      ExpectSameAggregate(
          engine.MineMaximumAverageRange(schema.NumericName(0),
                                         schema.NumericName(1), 0.1),
          reference_average);
      ExpectSameAggregate(
          engine.MineMaximumSupportRange(schema.NumericName(0),
                                         schema.NumericName(1), 1e5),
          reference_support);
      ExpectSameRegion(
          engine.MineOptimizedRegion(schema.NumericName(0),
                                     schema.NumericName(1),
                                     schema.BooleanName(0)),
          reference_region);
      EXPECT_EQ(engine.counting_scans(), 1)
          << "k=" << k << " subprocess="
          << (variant.worker_kind == WorkerKind::kSubprocess);
    }
    std::filesystem::remove_all(dir);
  }
  std::remove(paged.c_str());
}

/// With K = 1 round-robin the partitioned row order IS the original
/// order, so even the order-sensitive default sampling bucketizer must
/// match the single-file engine bit for bit.
TEST(PartitionedEngineTest, SinglePartitionMatchesWithSamplingBucketizer) {
  const storage::Relation relation = TestRelation(2500, 24);
  const storage::Schema& schema = relation.schema();
  MinerOptions options;
  options.num_buckets = 40;

  const std::string paged = testing::TempDir() + "/dist_engine_k1.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, paged).ok());
  auto single_source = storage::PagedFileBatchSource::Open(paged);
  ASSERT_TRUE(single_source.ok());
  MiningEngine reference(single_source.value().get(), schema, options);

  const std::string dir = TempDir("engine_k1_sampling");
  PartitionOptions partition_options;
  partition_options.num_partitions = 1;
  Result<PartitionedTable> table =
      PartitionRelation(relation, dir, partition_options);
  ASSERT_TRUE(table.ok());
  MiningEngine engine(&table.value(), options);
  ExpectSameRules(engine.MineAllPairs(), reference.MineAllPairs());
  std::filesystem::remove_all(dir);
  std::remove(paged.c_str());
}

/// Misconfigured distributed sessions surface a Status through
/// TryPrepare instead of aborting the host process, and recover once the
/// configuration is fixable (here: switching worker kinds).
TEST(PartitionedEngineTest, TryPrepareSurfacesWorkerFailures) {
  const storage::Relation relation = TestRelation(300, 27);
  const std::string dir = TempDir("engine_try_prepare");
  PartitionOptions partition_options;
  partition_options.num_partitions = 2;
  Result<PartitionedTable> table =
      PartitionRelation(relation, dir, partition_options);
  ASSERT_TRUE(table.ok());
  DistributedScanOptions scan_options;
  scan_options.worker_kind = WorkerKind::kSubprocess;
  scan_options.workerd_path = "/no/such/binary";
  MinerOptions options;
  options.num_buckets = 8;
  {
    MiningEngine engine(&table.value(), options, scan_options);
    const Status status = engine.TryPrepare();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(engine.counting_scans(), 0);
  }
  // Same table, in-process workers: fine.
  MiningEngine engine(&table.value(), options);
  EXPECT_TRUE(engine.TryPrepare().ok());
  EXPECT_EQ(engine.counting_scans(), 1);
  std::filesystem::remove_all(dir);
}

/// A partition deleted AFTER Open but BEFORE the session starts fails
/// softly through TryPrepare's up-front revalidation.
TEST(PartitionedEngineTest, TryPrepareSurfacesVanishedPartition) {
  const storage::Relation relation = TestRelation(200, 28);
  const std::string dir = TempDir("engine_vanished_partition");
  PartitionOptions partition_options;
  partition_options.num_partitions = 2;
  Result<PartitionedTable> table =
      PartitionRelation(relation, dir, partition_options);
  ASSERT_TRUE(table.ok());
  std::filesystem::remove(table.value().PartitionPath(1));
  MinerOptions options;
  options.num_buckets = 8;
  MiningEngine engine(&table.value(), options);
  const Status status = engine.TryPrepare();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(engine.counting_scans(), 0);
  std::filesystem::remove_all(dir);
}

/// A late region pair on a partitioned engine costs the documented one
/// supplemental (distributed) scan and still matches the reference.
TEST(PartitionedEngineTest, LateRegionPairCostsOneSupplementalScan) {
  const storage::Relation relation = TestRelation(1200, 25);
  const storage::Schema& schema = relation.schema();
  MinerOptions options;
  options.num_buckets = 30;
  options.region_grid_buckets = 8;
  options.bucketizer = rules::Bucketizer::kExactSort;
  const std::string dir = TempDir("engine_late_region");
  PartitionOptions partition_options;
  partition_options.num_partitions = 3;
  Result<PartitionedTable> table =
      PartitionRelation(relation, dir, partition_options);
  ASSERT_TRUE(table.ok());
  MiningEngine engine(&table.value(), options);
  engine.MineAllPairs();
  EXPECT_EQ(engine.counting_scans(), 1);
  const auto region = engine.MineOptimizedRegion(
      schema.NumericName(0), schema.NumericName(1), schema.BooleanName(0));
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(engine.counting_scans(), 2);

  rules::Miner legacy(&relation, options);
  // kExactSort boundaries are permutation-invariant, so the legacy miner
  // over the unpartitioned relation is still the bit-identical reference.
  const auto expected = legacy.MineOptimizedRegion(
      schema.NumericName(0), schema.NumericName(1), schema.BooleanName(0));
  ExpectSameRegion(region, expected);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace optrules::dist
