// Tests for the columnar batch execution core: batch sources, the shared
// multi-pair counting scan, and the MiningEngine's equivalence with the
// legacy per-attribute Miner.

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "bucketing/counting.h"
#include "bucketing/parallel_count.h"
#include "common/thread_pool.h"
#include "datagen/bank.h"
#include "datagen/retail.h"
#include "datagen/table_generator.h"
#include "rules/miner.h"
#include "storage/columnar_batch.h"
#include "storage/paged_file.h"
#include "storage/tuple_stream.h"

namespace optrules::rules {
namespace {

using bucketing::BucketBoundaries;
using bucketing::BucketCounts;
using bucketing::MultiCountPlan;

// ------------------------------------------------------ batch sources ----

storage::Relation SmallRelation(int64_t rows, uint64_t seed) {
  datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = 3;
  config.num_boolean = 2;
  Rng rng(seed);
  return datagen::GenerateTable(config, rng);
}

TEST(BatchSourceTest, RelationBatchesCoverAllRowsInOrder) {
  const storage::Relation relation = SmallRelation(10007, 1);
  storage::RelationBatchSource source(&relation, /*batch_rows=*/256);
  auto reader = source.CreateReader();
  storage::ColumnarBatch batch;
  int64_t rows = 0;
  while (reader->Next(&batch)) {
    ASSERT_EQ(batch.num_numeric(), 3);
    ASSERT_EQ(batch.num_boolean(), 2);
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      EXPECT_EQ(batch.numeric(0)[static_cast<size_t>(r)],
                relation.NumericValue(rows + r, 0));
      EXPECT_EQ(batch.boolean(1)[static_cast<size_t>(r)] != 0,
                relation.BooleanValue(rows + r, 1));
    }
    rows += batch.num_rows();
  }
  EXPECT_EQ(rows, relation.NumRows());
  EXPECT_EQ(source.scans_started(), 1);
}

TEST(BatchSourceTest, PagedFileBatchesMatchRelationBatches) {
  const storage::Relation relation = SmallRelation(5003, 2);
  const std::string path = testing::TempDir() + "/batch_source.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, path).ok());
  auto source_or = storage::PagedFileBatchSource::Open(path, 512);
  ASSERT_TRUE(source_or.ok());
  storage::PagedFileBatchSource& file_source = *source_or.value();
  EXPECT_EQ(file_source.NumTuples(), relation.NumRows());

  auto reader = file_source.CreateReader();
  storage::ColumnarBatch batch;
  int64_t row = 0;
  while (reader->Next(&batch)) {
    for (int64_t r = 0; r < batch.num_rows(); ++r, ++row) {
      for (int a = 0; a < 3; ++a) {
        EXPECT_EQ(batch.numeric(a)[static_cast<size_t>(r)],
                  relation.NumericValue(row, a));
      }
      for (int b = 0; b < 2; ++b) {
        EXPECT_EQ(batch.boolean(b)[static_cast<size_t>(r)] != 0,
                  relation.BooleanValue(row, b));
      }
    }
  }
  EXPECT_EQ(row, relation.NumRows());
  std::remove(path.c_str());
}

TEST(BatchSourceTest, TupleStreamAdapterMatchesRelation) {
  const storage::Relation relation = SmallRelation(3001, 3);
  storage::RelationTupleStream stream(&relation);
  storage::TupleStreamBatchSource source(&stream, 128);
  auto reader = source.CreateReader();
  storage::ColumnarBatch batch;
  int64_t row = 0;
  while (reader->Next(&batch)) {
    for (int64_t r = 0; r < batch.num_rows(); ++r, ++row) {
      EXPECT_EQ(batch.numeric(2)[static_cast<size_t>(r)],
                relation.NumericValue(row, 2));
    }
  }
  EXPECT_EQ(row, relation.NumRows());
  // A second reader rewinds the underlying stream.
  auto reader2 = source.CreateReader();
  ASSERT_TRUE(reader2->Next(&batch));
  EXPECT_EQ(batch.numeric(0)[0], relation.NumericValue(0, 0));
  EXPECT_EQ(source.scans_started(), 2);
}

// -------------------------------------------------- multi-count kernel ----

TEST(MultiCountTest, PlanMatchesPerAttributeCountBuckets) {
  const storage::Relation relation = SmallRelation(20011, 4);
  std::vector<BucketBoundaries> boundaries;
  std::vector<const BucketBoundaries*> bounds;
  for (int a = 0; a < 3; ++a) {
    boundaries.push_back(BucketBoundaries::FromCutPoints(
        {2e5, 4e5 + 1e4 * a, 6e5, 8e5}));
  }
  for (const auto& b : boundaries) bounds.push_back(&b);
  std::vector<const std::vector<uint8_t>*> targets = {
      &relation.BooleanColumn(0), &relation.BooleanColumn(1)};

  MultiCountPlan plan(bounds, 2);
  storage::RelationBatchSource source(&relation, 512);
  auto reader = source.CreateReader();
  storage::ColumnarBatch batch;
  while (reader->Next(&batch)) plan.Accumulate(batch);

  for (int a = 0; a < 3; ++a) {
    const BucketCounts expected = bucketing::CountBuckets(
        relation.NumericColumn(a), targets, boundaries[static_cast<size_t>(a)]);
    const BucketCounts& actual = plan.counts(a);
    EXPECT_EQ(actual.u, expected.u);
    EXPECT_EQ(actual.v, expected.v);
    EXPECT_EQ(actual.total_tuples, expected.total_tuples);
    for (int bkt = 0; bkt < expected.num_buckets(); ++bkt) {
      const auto bi = static_cast<size_t>(bkt);
      if (expected.u[bi] > 0) {
        EXPECT_DOUBLE_EQ(actual.min_value[bi], expected.min_value[bi]);
        EXPECT_DOUBLE_EQ(actual.max_value[bi], expected.max_value[bi]);
      }
    }
  }
}

TEST(MultiCountTest, ShardedExecutionIsBitIdenticalAndOneScan) {
  const storage::Relation relation = SmallRelation(30013, 5);
  std::vector<BucketBoundaries> boundaries;
  std::vector<const BucketBoundaries*> bounds;
  for (int a = 0; a < 3; ++a) {
    boundaries.push_back(
        BucketBoundaries::FromCutPoints({1e5, 3e5, 5e5, 7e5, 9e5}));
  }
  for (const auto& b : boundaries) bounds.push_back(&b);

  storage::RelationBatchSource serial_source(&relation, 1024);
  MultiCountPlan serial(bounds, 2);
  bucketing::ExecuteMultiCount(serial_source, &serial, nullptr);
  EXPECT_EQ(serial_source.scans_started(), 1);

  for (const int pool_size : {2, 3, 8}) {
    ThreadPool pool(pool_size);
    storage::RelationBatchSource source(&relation, 1024);
    MultiCountPlan parallel(bounds, 2);
    bucketing::ExecuteMultiCount(source, &parallel, &pool);
    EXPECT_EQ(source.scans_started(), 1) << pool_size;
    for (int a = 0; a < 3; ++a) {
      EXPECT_EQ(parallel.counts(a).u, serial.counts(a).u) << pool_size;
      EXPECT_EQ(parallel.counts(a).v, serial.counts(a).v) << pool_size;
      EXPECT_EQ(parallel.counts(a).total_tuples,
                serial.counts(a).total_tuples);
    }
  }
}

TEST(MultiCountTest, AttributeParallelPathMatchesSerial) {
  // TupleStreamBatchSource has no range readers, so the pooled schedule
  // fans attributes out per batch; results must still be bit-identical.
  const storage::Relation relation = SmallRelation(8009, 6);
  std::vector<BucketBoundaries> boundaries;
  std::vector<const BucketBoundaries*> bounds;
  for (int a = 0; a < 3; ++a) {
    boundaries.push_back(BucketBoundaries::FromCutPoints({2.5e5, 7.5e5}));
  }
  for (const auto& b : boundaries) bounds.push_back(&b);

  storage::RelationTupleStream serial_stream(&relation);
  storage::TupleStreamBatchSource serial_source(&serial_stream, 512);
  MultiCountPlan serial(bounds, 2);
  bucketing::ExecuteMultiCount(serial_source, &serial, nullptr);

  storage::RelationTupleStream stream(&relation);
  storage::TupleStreamBatchSource source(&stream, 512);
  ThreadPool pool(4);
  MultiCountPlan parallel(bounds, 2);
  bucketing::ExecuteMultiCount(source, &parallel, &pool);
  EXPECT_EQ(source.scans_started(), 1);
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(parallel.counts(a).u, serial.counts(a).u);
    EXPECT_EQ(parallel.counts(a).v, serial.counts(a).v);
  }
}

// ----------------------------------------------- parallel determinism ----

TEST(ParallelCountTest, DeterministicAcrossThreadCounts) {
  const storage::Relation relation = SmallRelation(50021, 7);
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({1e5, 2e5, 4e5, 6e5, 8e5, 9.5e5});
  std::vector<const std::vector<uint8_t>*> targets = {
      &relation.BooleanColumn(0), &relation.BooleanColumn(1)};

  const BucketCounts one = bucketing::ParallelCountBuckets(
      relation.NumericColumn(0), targets, boundaries, 1);
  for (const int threads : {2, 8}) {
    const BucketCounts counts = bucketing::ParallelCountBuckets(
        relation.NumericColumn(0), targets, boundaries, threads);
    EXPECT_EQ(counts.u, one.u) << threads;
    EXPECT_EQ(counts.v, one.v) << threads;
    EXPECT_EQ(counts.total_tuples, one.total_tuples) << threads;
    for (int b = 0; b < one.num_buckets(); ++b) {
      const auto bi = static_cast<size_t>(b);
      if (one.u[bi] == 0) continue;
      EXPECT_DOUBLE_EQ(counts.min_value[bi], one.min_value[bi]);
      EXPECT_DOUBLE_EQ(counts.max_value[bi], one.max_value[bi]);
    }
  }
}

TEST(ParallelCountTest, ExplicitPoolOverloadMatches) {
  const storage::Relation relation = SmallRelation(9001, 8);
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({5e5});
  std::vector<const std::vector<uint8_t>*> targets = {
      &relation.BooleanColumn(1)};
  ThreadPool pool(3);
  const BucketCounts pooled = bucketing::ParallelCountBuckets(
      relation.NumericColumn(1), targets, boundaries, 5, pool);
  const BucketCounts serial = bucketing::CountBuckets(
      relation.NumericColumn(1), relation.BooleanColumn(1), boundaries);
  EXPECT_EQ(pooled.u, serial.u);
  EXPECT_EQ(pooled.v, serial.v);
}

// -------------------------------------------------------- NaN guards ----

TEST(NanGuardTest, NanValuesNeverBecomeRangeEndpoints) {
  const double nan = std::nan("");
  const std::vector<double> values = {1.0, 2.0, nan, nan, 30.0};
  const std::vector<uint8_t> target = {1, 0, 1, 1, 1};
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({10.0, 20.0});
  BucketCounts counts = bucketing::CountBuckets(values, target, boundaries);
  // NaNs land in bucket 0 (all cut comparisons are false) and are counted
  // as tuples, but min/max must only track finite values.
  EXPECT_EQ(counts.u[0], 4);
  EXPECT_DOUBLE_EQ(counts.min_value[0], 1.0);
  EXPECT_DOUBLE_EQ(counts.max_value[0], 2.0);
  bucketing::CompactEmptyBuckets(&counts);
  ASSERT_EQ(counts.num_buckets(), 2);
  EXPECT_FALSE(std::isnan(bucketing::RangeMinValue(counts, 0, 1)));
  EXPECT_FALSE(std::isnan(bucketing::RangeMaxValue(counts, 0, 1)));
}

TEST(NanGuardTest, AllNanBucketFallsBackToUnboundedEdges) {
  const double nan = std::nan("");
  const std::vector<double> values = {nan, nan};
  const std::vector<uint8_t> target = {1, 1};
  const BucketBoundaries boundaries = BucketBoundaries::FromCutPoints({});
  BucketCounts counts = bucketing::CountBuckets(values, target, boundaries);
  bucketing::CompactEmptyBuckets(&counts);
  ASSERT_EQ(counts.num_buckets(), 1);  // u = 2 > 0: survives compaction
  EXPECT_TRUE(std::isinf(bucketing::RangeMinValue(counts, 0, 0)));
  EXPECT_TRUE(std::isinf(bucketing::RangeMaxValue(counts, 0, 0)));
  EXPECT_FALSE(std::isnan(bucketing::RangeMinValue(counts, 0, 0)));
}

// ------------------------------------------------------ mining engine ----

void ExpectSameRules(const std::vector<MinedRule>& a,
                     const std::vector<MinedRule>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].found, b[i].found);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].numeric_attr, b[i].numeric_attr);
    EXPECT_EQ(a[i].boolean_attr, b[i].boolean_attr);
    EXPECT_EQ(a[i].range_lo, b[i].range_lo);
    EXPECT_EQ(a[i].range_hi, b[i].range_hi);
    EXPECT_EQ(a[i].support_count, b[i].support_count);
    EXPECT_EQ(a[i].hit_count, b[i].hit_count);
    EXPECT_EQ(a[i].support, b[i].support);
    EXPECT_EQ(a[i].confidence, b[i].confidence);
  }
}

TEST(MiningEngineTest, SingleScanResultsMatchLegacyMinerOnBank) {
  datagen::BankConfig config;
  config.num_customers = 30000;
  Rng rng(11);
  const storage::Relation bank = datagen::GenerateBankCustomers(config, rng);
  MinerOptions options;
  options.num_buckets = 200;
  options.min_support = 0.05;
  options.min_confidence = 0.5;

  Miner legacy(&bank, options);
  MiningEngine engine(&bank, options);
  ExpectSameRules(engine.MineAllPairs(), legacy.MineAll());
  EXPECT_EQ(engine.counting_scans(), 1);
}

TEST(MiningEngineTest, SingleScanResultsMatchLegacyMinerOnRetail) {
  datagen::RetailConfig config;
  config.num_transactions = 30000;
  Rng rng(12);
  const storage::Relation retail = datagen::GenerateRetail(config, rng);
  MinerOptions options;
  options.num_buckets = 150;
  options.min_support = 0.02;
  options.min_confidence = 0.4;

  Miner legacy(&retail, options);
  MiningEngine engine(&retail, options);
  ExpectSameRules(engine.MineAllPairs(), legacy.MineAll());
}

TEST(MiningEngineTest, ExactlyOneCountingScanForAnyNumberOfPairs) {
  const storage::Relation relation = SmallRelation(20000, 13);
  storage::RelationBatchSource source(&relation);
  MinerOptions options;
  options.num_buckets = 100;
  MiningEngine engine(&source, relation.schema(), options);

  // 3 numeric x 2 boolean = 6 pairs, 12 rules -- and exactly ONE scan of
  // the data (boundary planning over a batch source costs one more pass,
  // counting never rescans).
  const std::vector<MinedRule> all = engine.MineAllPairs();
  EXPECT_EQ(all.size(), 12u);
  EXPECT_EQ(engine.counting_scans(), 1);
  EXPECT_EQ(source.scans_started(), 2);  // planning + counting

  // Subsequent pair queries answer from the cache: still one scan.
  ASSERT_TRUE(engine.MinePair("num0", "bool1").ok());
  ASSERT_TRUE(engine.MinePair("num2", "bool0").ok());
  EXPECT_EQ(engine.counting_scans(), 1);
  EXPECT_EQ(source.scans_started(), 2);
}

TEST(MiningEngineTest, RelationEngineScansOnceTotal) {
  // The in-memory fast path plans from the columns directly, so even the
  // planning pass does not touch the batch source: one scan, full stop.
  const storage::Relation relation = SmallRelation(10000, 17);
  storage::RelationBatchSource source(&relation);
  MinerOptions options;
  options.num_buckets = 64;
  options.bucketizer = Bucketizer::kGkSketch;
  MiningEngine engine(&source, relation.schema(), options);
  engine.Prepare();
  // Generic sources pay one planning pass; the engine built directly over
  // the relation (below) must not even do that.
  EXPECT_EQ(source.scans_started(), 2);

  MiningEngine direct(&relation, options);
  direct.MineAllPairs();
  EXPECT_EQ(direct.counting_scans(), 1);
}

TEST(MiningEngineTest, FileEngineMatchesInMemoryEngineWithGk) {
  // GK sketches are deterministic and insertion-order equal between the
  // column and batch paths, so the disk-resident engine must reproduce
  // the in-memory engine bit for bit.
  const storage::Relation relation = SmallRelation(15000, 14);
  const std::string path = testing::TempDir() + "/engine_gk.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, path).ok());
  auto source_or = storage::PagedFileBatchSource::Open(path);
  ASSERT_TRUE(source_or.ok());

  MinerOptions options;
  options.num_buckets = 100;
  options.bucketizer = Bucketizer::kGkSketch;
  MiningEngine memory_engine(&relation, options);
  MiningEngine file_engine(source_or.value().get(), relation.schema(),
                           options);
  ExpectSameRules(file_engine.MineAllPairs(), memory_engine.MineAllPairs());
  EXPECT_EQ(file_engine.counting_scans(), 1);
  std::remove(path.c_str());
}

TEST(MiningEngineTest, FileEngineSamplingRecoversPlantedRule) {
  datagen::TableConfig config;
  config.num_rows = 40000;
  config.num_numeric = 2;
  config.num_boolean = 2;
  datagen::PlantedRule planted;
  planted.numeric_attr = 0;
  planted.boolean_attr = 0;
  planted.lo = 300000.0;
  planted.hi = 500000.0;
  planted.prob_inside = 0.8;
  planted.prob_outside = 0.1;
  config.planted_rules.push_back(planted);
  const std::string path = testing::TempDir() + "/engine_sampling.optr";
  {
    Rng rng(15);
    ASSERT_TRUE(datagen::GenerateTableToFile(config, rng, path).ok());
  }
  auto source_or = storage::PagedFileBatchSource::Open(path);
  ASSERT_TRUE(source_or.ok());
  MinerOptions options;
  options.num_buckets = 200;
  options.min_support = 0.10;
  MiningEngine engine(source_or.value().get(),
                      storage::Schema::Synthetic(2, 2), options);
  Result<std::vector<MinedRule>> rules = engine.MinePair("num0", "bool0");
  ASSERT_TRUE(rules.ok());
  const MinedRule& confidence_rule = rules.value()[0];
  ASSERT_TRUE(confidence_rule.found);
  EXPECT_GT(confidence_rule.confidence, 0.7);
  EXPECT_GE(confidence_rule.range_lo, 300000.0 - 30000.0);
  EXPECT_LE(confidence_rule.range_hi, 500000.0 + 30000.0);
  std::remove(path.c_str());
}

TEST(MiningEngineTest, PooledEngineMatchesSerialEngine) {
  const storage::Relation relation = SmallRelation(25000, 16);
  MinerOptions options;
  options.num_buckets = 100;
  MiningEngine serial(&relation, options);
  ThreadPool pool(4);
  MiningEngine pooled(&relation, options, &pool);
  ExpectSameRules(pooled.MineAllPairs(), serial.MineAllPairs());
}

TEST(MiningEngineTest, UnknownAttributesAreNotFoundErrors) {
  const storage::Relation relation = SmallRelation(100, 18);
  MiningEngine engine(&relation, MinerOptions{});
  EXPECT_EQ(engine.MinePair("nope", "bool0").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.MinePair("num0", "nope").status().code(),
            StatusCode::kNotFound);
  // Failed lookups must not have triggered the counting scan.
  EXPECT_EQ(engine.counting_scans(), 0);
}

}  // namespace
}  // namespace optrules::rules
