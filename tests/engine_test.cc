// Tests for the columnar batch execution core: batch sources, the shared
// multi-pair counting scan, and the MiningEngine's equivalence with the
// legacy per-attribute Miner.

#include <cmath>
#include <cstdio>
#include <limits>

#include <gtest/gtest.h>

#include "bucketing/counting.h"
#include "bucketing/parallel_count.h"
#include "common/thread_pool.h"
#include "datagen/bank.h"
#include "datagen/retail.h"
#include "datagen/table_generator.h"
#include "rules/miner.h"
#include "storage/columnar_batch.h"
#include "storage/paged_file.h"
#include "storage/tuple_stream.h"

namespace optrules::rules {
namespace {

using bucketing::BucketBoundaries;
using bucketing::BucketCounts;
using bucketing::MultiCountPlan;

// ------------------------------------------------------ batch sources ----

storage::Relation SmallRelation(int64_t rows, uint64_t seed) {
  datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = 3;
  config.num_boolean = 2;
  Rng rng(seed);
  return datagen::GenerateTable(config, rng);
}

TEST(BatchSourceTest, RelationBatchesCoverAllRowsInOrder) {
  const storage::Relation relation = SmallRelation(10007, 1);
  storage::RelationBatchSource source(&relation, /*batch_rows=*/256);
  auto reader = source.CreateReader();
  storage::ColumnarBatch batch;
  int64_t rows = 0;
  while (reader->Next(&batch)) {
    ASSERT_EQ(batch.num_numeric(), 3);
    ASSERT_EQ(batch.num_boolean(), 2);
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      EXPECT_EQ(batch.numeric(0)[static_cast<size_t>(r)],
                relation.NumericValue(rows + r, 0));
      EXPECT_EQ(batch.boolean(1)[static_cast<size_t>(r)] != 0,
                relation.BooleanValue(rows + r, 1));
    }
    rows += batch.num_rows();
  }
  EXPECT_EQ(rows, relation.NumRows());
  EXPECT_EQ(source.scans_started(), 1);
}

TEST(BatchSourceTest, PagedFileBatchesMatchRelationBatches) {
  const storage::Relation relation = SmallRelation(5003, 2);
  const std::string path = testing::TempDir() + "/batch_source.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, path).ok());
  auto source_or = storage::PagedFileBatchSource::Open(path, 512);
  ASSERT_TRUE(source_or.ok());
  storage::PagedFileBatchSource& file_source = *source_or.value();
  EXPECT_EQ(file_source.NumTuples(), relation.NumRows());

  auto reader = file_source.CreateReader();
  storage::ColumnarBatch batch;
  int64_t row = 0;
  while (reader->Next(&batch)) {
    for (int64_t r = 0; r < batch.num_rows(); ++r, ++row) {
      for (int a = 0; a < 3; ++a) {
        EXPECT_EQ(batch.numeric(a)[static_cast<size_t>(r)],
                  relation.NumericValue(row, a));
      }
      for (int b = 0; b < 2; ++b) {
        EXPECT_EQ(batch.boolean(b)[static_cast<size_t>(r)] != 0,
                  relation.BooleanValue(row, b));
      }
    }
  }
  EXPECT_EQ(row, relation.NumRows());
  std::remove(path.c_str());
}

TEST(BatchSourceTest, TupleStreamAdapterMatchesRelation) {
  const storage::Relation relation = SmallRelation(3001, 3);
  storage::RelationTupleStream stream(&relation);
  storage::TupleStreamBatchSource source(&stream, 128);
  auto reader = source.CreateReader();
  storage::ColumnarBatch batch;
  int64_t row = 0;
  while (reader->Next(&batch)) {
    for (int64_t r = 0; r < batch.num_rows(); ++r, ++row) {
      EXPECT_EQ(batch.numeric(2)[static_cast<size_t>(r)],
                relation.NumericValue(row, 2));
    }
  }
  EXPECT_EQ(row, relation.NumRows());
  // A second reader rewinds the underlying stream.
  auto reader2 = source.CreateReader();
  ASSERT_TRUE(reader2->Next(&batch));
  EXPECT_EQ(batch.numeric(0)[0], relation.NumericValue(0, 0));
  EXPECT_EQ(source.scans_started(), 2);
}

// -------------------------------------------------- multi-count kernel ----

TEST(MultiCountTest, PlanMatchesPerAttributeCountBuckets) {
  const storage::Relation relation = SmallRelation(20011, 4);
  std::vector<BucketBoundaries> boundaries;
  std::vector<const BucketBoundaries*> bounds;
  for (int a = 0; a < 3; ++a) {
    boundaries.push_back(BucketBoundaries::FromCutPoints(
        {2e5, 4e5 + 1e4 * a, 6e5, 8e5}));
  }
  for (const auto& b : boundaries) bounds.push_back(&b);
  std::vector<const std::vector<uint8_t>*> targets = {
      &relation.BooleanColumn(0), &relation.BooleanColumn(1)};

  MultiCountPlan plan(bounds, 2);
  storage::RelationBatchSource source(&relation, 512);
  auto reader = source.CreateReader();
  storage::ColumnarBatch batch;
  while (reader->Next(&batch)) plan.Accumulate(batch);

  for (int a = 0; a < 3; ++a) {
    const BucketCounts expected = bucketing::CountBuckets(
        relation.NumericColumn(a), targets, boundaries[static_cast<size_t>(a)]);
    const BucketCounts& actual = plan.counts(a);
    EXPECT_EQ(actual.u, expected.u);
    EXPECT_EQ(actual.v, expected.v);
    EXPECT_EQ(actual.total_tuples, expected.total_tuples);
    for (int bkt = 0; bkt < expected.num_buckets(); ++bkt) {
      const auto bi = static_cast<size_t>(bkt);
      if (expected.u[bi] > 0) {
        EXPECT_DOUBLE_EQ(actual.min_value[bi], expected.min_value[bi]);
        EXPECT_DOUBLE_EQ(actual.max_value[bi], expected.max_value[bi]);
      }
    }
  }
}

TEST(MultiCountTest, ShardedExecutionIsBitIdenticalAndOneScan) {
  const storage::Relation relation = SmallRelation(30013, 5);
  std::vector<BucketBoundaries> boundaries;
  std::vector<const BucketBoundaries*> bounds;
  for (int a = 0; a < 3; ++a) {
    boundaries.push_back(
        BucketBoundaries::FromCutPoints({1e5, 3e5, 5e5, 7e5, 9e5}));
  }
  for (const auto& b : boundaries) bounds.push_back(&b);

  storage::RelationBatchSource serial_source(&relation, 1024);
  MultiCountPlan serial(bounds, 2);
  bucketing::ExecuteMultiCount(serial_source, &serial, nullptr);
  EXPECT_EQ(serial_source.scans_started(), 1);

  for (const int pool_size : {2, 3, 8}) {
    ThreadPool pool(pool_size);
    storage::RelationBatchSource source(&relation, 1024);
    MultiCountPlan parallel(bounds, 2);
    bucketing::ExecuteMultiCount(source, &parallel, &pool);
    EXPECT_EQ(source.scans_started(), 1) << pool_size;
    for (int a = 0; a < 3; ++a) {
      EXPECT_EQ(parallel.counts(a).u, serial.counts(a).u) << pool_size;
      EXPECT_EQ(parallel.counts(a).v, serial.counts(a).v) << pool_size;
      EXPECT_EQ(parallel.counts(a).total_tuples,
                serial.counts(a).total_tuples);
    }
  }
}

TEST(MultiCountTest, AttributeParallelPathMatchesSerial) {
  // TupleStreamBatchSource has no range readers, so the pooled schedule
  // fans attributes out per batch; results must still be bit-identical.
  const storage::Relation relation = SmallRelation(8009, 6);
  std::vector<BucketBoundaries> boundaries;
  std::vector<const BucketBoundaries*> bounds;
  for (int a = 0; a < 3; ++a) {
    boundaries.push_back(BucketBoundaries::FromCutPoints({2.5e5, 7.5e5}));
  }
  for (const auto& b : boundaries) bounds.push_back(&b);

  storage::RelationTupleStream serial_stream(&relation);
  storage::TupleStreamBatchSource serial_source(&serial_stream, 512);
  MultiCountPlan serial(bounds, 2);
  bucketing::ExecuteMultiCount(serial_source, &serial, nullptr);

  storage::RelationTupleStream stream(&relation);
  storage::TupleStreamBatchSource source(&stream, 512);
  ThreadPool pool(4);
  MultiCountPlan parallel(bounds, 2);
  bucketing::ExecuteMultiCount(source, &parallel, &pool);
  EXPECT_EQ(source.scans_started(), 1);
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(parallel.counts(a).u, serial.counts(a).u);
    EXPECT_EQ(parallel.counts(a).v, serial.counts(a).v);
  }
}

// ----------------------------------------------- parallel determinism ----

TEST(ParallelCountTest, DeterministicAcrossThreadCounts) {
  const storage::Relation relation = SmallRelation(50021, 7);
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({1e5, 2e5, 4e5, 6e5, 8e5, 9.5e5});
  std::vector<const std::vector<uint8_t>*> targets = {
      &relation.BooleanColumn(0), &relation.BooleanColumn(1)};

  const BucketCounts one = bucketing::ParallelCountBuckets(
      relation.NumericColumn(0), targets, boundaries, 1);
  for (const int threads : {2, 8}) {
    const BucketCounts counts = bucketing::ParallelCountBuckets(
        relation.NumericColumn(0), targets, boundaries, threads);
    EXPECT_EQ(counts.u, one.u) << threads;
    EXPECT_EQ(counts.v, one.v) << threads;
    EXPECT_EQ(counts.total_tuples, one.total_tuples) << threads;
    for (int b = 0; b < one.num_buckets(); ++b) {
      const auto bi = static_cast<size_t>(b);
      if (one.u[bi] == 0) continue;
      EXPECT_DOUBLE_EQ(counts.min_value[bi], one.min_value[bi]);
      EXPECT_DOUBLE_EQ(counts.max_value[bi], one.max_value[bi]);
    }
  }
}

TEST(ParallelCountTest, ExplicitPoolOverloadMatches) {
  const storage::Relation relation = SmallRelation(9001, 8);
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({5e5});
  std::vector<const std::vector<uint8_t>*> targets = {
      &relation.BooleanColumn(1)};
  ThreadPool pool(3);
  const BucketCounts pooled = bucketing::ParallelCountBuckets(
      relation.NumericColumn(1), targets, boundaries, 5, pool);
  const BucketCounts serial = bucketing::CountBuckets(
      relation.NumericColumn(1), relation.BooleanColumn(1), boundaries);
  EXPECT_EQ(pooled.u, serial.u);
  EXPECT_EQ(pooled.v, serial.v);
}

// -------------------------------------------------------- NaN guards ----

TEST(NanGuardTest, LocateSendsNanToNoBucket) {
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({10.0, 20.0});
  EXPECT_EQ(boundaries.Locate(std::nan("")), BucketBoundaries::kNoBucket);
  EXPECT_EQ(boundaries.Locate(5.0), 0);
  EXPECT_EQ(boundaries.Locate(1e300), 2);
}

TEST(NanGuardTest, NanRowsCountTowardNButTowardNoBucket) {
  const double nan = std::nan("");
  const std::vector<double> values = {1.0, 2.0, nan, nan, 30.0};
  const std::vector<uint8_t> target = {1, 0, 1, 1, 1};
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({10.0, 20.0});
  BucketCounts counts = bucketing::CountBuckets(values, target, boundaries);
  // The NaN policy: NaN rows inflate no bucket's u-count (they used to be
  // silently routed to bucket 0), but the support denominator N still
  // covers every tuple.
  EXPECT_EQ(counts.u[0], 2);
  EXPECT_EQ(counts.v[0][0], 1);
  EXPECT_EQ(counts.total_tuples, 5);
  EXPECT_DOUBLE_EQ(counts.min_value[0], 1.0);
  EXPECT_DOUBLE_EQ(counts.max_value[0], 2.0);
  bucketing::CompactEmptyBuckets(&counts);
  ASSERT_EQ(counts.num_buckets(), 2);
  EXPECT_FALSE(std::isnan(bucketing::RangeMinValue(counts, 0, 1)));
  EXPECT_FALSE(std::isnan(bucketing::RangeMaxValue(counts, 0, 1)));
}

TEST(NanGuardTest, AllNanColumnLeavesEveryBucketEmpty) {
  const double nan = std::nan("");
  const std::vector<double> values = {nan, nan};
  const std::vector<uint8_t> target = {1, 1};
  const BucketBoundaries boundaries = BucketBoundaries::FromCutPoints({});
  BucketCounts counts = bucketing::CountBuckets(values, target, boundaries);
  EXPECT_EQ(counts.total_tuples, 2);
  bucketing::CompactEmptyBuckets(&counts);
  // No bucket received a tuple, so compaction removes all of them; rule
  // emission treats the empty array as "no range".
  EXPECT_EQ(counts.num_buckets(), 0);
}

TEST(NanGuardTest, ConditionalAndSumKernelsSkipNanValues) {
  const double nan = std::nan("");
  const std::vector<double> values = {1.0, nan, 15.0, nan, 25.0};
  const std::vector<uint8_t> c1 = {1, 1, 1, 1, 0};
  const std::vector<uint8_t> c2 = {1, 1, 0, 1, 1};
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({10.0, 20.0});
  const BucketCounts conditional =
      bucketing::CountBucketsConditional(values, c1, c2, boundaries);
  EXPECT_EQ(conditional.u, (std::vector<int64_t>{1, 1, 0}));
  EXPECT_EQ(conditional.v[0], (std::vector<int64_t>{1, 0, 0}));
  EXPECT_EQ(conditional.total_tuples, 5);

  const std::vector<double> target = {10.0, 100.0, 20.0, 1000.0, 40.0};
  const bucketing::BucketSums sums =
      bucketing::CountBucketSums(values, target, boundaries);
  // NaN range-attribute rows contribute to no bucket's count or sum.
  EXPECT_EQ(sums.u, (std::vector<int64_t>{1, 1, 1}));
  EXPECT_EQ(sums.sum, (std::vector<double>{10.0, 20.0, 40.0}));
  EXPECT_EQ(sums.total_tuples, 5);
}

TEST(NanGuardTest, InfiniteSumTargetsStayInfiniteUnderCompensation) {
  // +/-inf is in-domain for sum targets. The Neumaier compensation terms
  // must not turn an honestly infinite per-bucket sum into NaN
  // (inf - inf = NaN inside the naive correction).
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> values = {1.0, 2.0, 3.0, 15.0};
  const std::vector<double> target = {10.0, inf, 5.0, -inf};
  const BucketBoundaries boundaries =
      BucketBoundaries::FromCutPoints({10.0});
  const bucketing::BucketSums sums =
      bucketing::CountBucketSums(values, target, boundaries);
  EXPECT_TRUE(std::isinf(sums.sum[0]));
  EXPECT_GT(sums.sum[0], 0.0);
  EXPECT_TRUE(std::isinf(sums.sum[1]));
  EXPECT_LT(sums.sum[1], 0.0);

  // Same through a plan sum channel (the engine path).
  storage::Relation relation(storage::Schema::Synthetic(2, 1));
  for (size_t row = 0; row < values.size(); ++row) {
    const double numeric[] = {values[row], target[row]};
    const uint8_t boolean[] = {0};
    relation.AppendRow(numeric, boolean);
  }
  bucketing::MultiCountSpec spec;
  spec.num_targets = 1;
  bucketing::CountChannel channel;
  channel.column = 0;
  channel.boundaries = &boundaries;
  channel.count_targets = false;
  channel.sum_targets = {1};
  spec.channels.push_back(std::move(channel));
  bucketing::MultiCountPlan plan(std::move(spec));
  storage::RelationBatchSource source(&relation, 2);
  bucketing::ExecuteMultiCount(source, &plan, nullptr);
  const bucketing::BucketSums plan_sums = plan.TakeBucketSums(0, 0);
  EXPECT_TRUE(std::isinf(plan_sums.sum[0]));
  EXPECT_GT(plan_sums.sum[0], 0.0);
  EXPECT_TRUE(std::isinf(plan_sums.sum[1]));
  EXPECT_LT(plan_sums.sum[1], 0.0);
}

// ------------------------------------------------------ mining engine ----

void ExpectSameRules(const std::vector<MinedRule>& a,
                     const std::vector<MinedRule>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].found, b[i].found);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].numeric_attr, b[i].numeric_attr);
    EXPECT_EQ(a[i].boolean_attr, b[i].boolean_attr);
    EXPECT_EQ(a[i].range_lo, b[i].range_lo);
    EXPECT_EQ(a[i].range_hi, b[i].range_hi);
    EXPECT_EQ(a[i].support_count, b[i].support_count);
    EXPECT_EQ(a[i].hit_count, b[i].hit_count);
    EXPECT_EQ(a[i].support, b[i].support);
    EXPECT_EQ(a[i].confidence, b[i].confidence);
  }
}

TEST(MiningEngineTest, SingleScanResultsMatchLegacyMinerOnBank) {
  datagen::BankConfig config;
  config.num_customers = 30000;
  Rng rng(11);
  const storage::Relation bank = datagen::GenerateBankCustomers(config, rng);
  MinerOptions options;
  options.num_buckets = 200;
  options.min_support = 0.05;
  options.min_confidence = 0.5;

  Miner legacy(&bank, options);
  MiningEngine engine(&bank, options);
  ExpectSameRules(engine.MineAllPairs(), legacy.MineAll());
  EXPECT_EQ(engine.counting_scans(), 1);
}

TEST(MiningEngineTest, SingleScanResultsMatchLegacyMinerOnRetail) {
  datagen::RetailConfig config;
  config.num_transactions = 30000;
  Rng rng(12);
  const storage::Relation retail = datagen::GenerateRetail(config, rng);
  MinerOptions options;
  options.num_buckets = 150;
  options.min_support = 0.02;
  options.min_confidence = 0.4;

  Miner legacy(&retail, options);
  MiningEngine engine(&retail, options);
  ExpectSameRules(engine.MineAllPairs(), legacy.MineAll());
}

TEST(MiningEngineTest, ExactlyOneCountingScanForAnyNumberOfPairs) {
  const storage::Relation relation = SmallRelation(20000, 13);
  storage::RelationBatchSource source(&relation);
  MinerOptions options;
  options.num_buckets = 100;
  MiningEngine engine(&source, relation.schema(), options);

  // 3 numeric x 2 boolean = 6 pairs, 12 rules -- and exactly ONE scan of
  // the data (boundary planning over a batch source costs one more pass,
  // counting never rescans).
  const std::vector<MinedRule> all = engine.MineAllPairs();
  EXPECT_EQ(all.size(), 12u);
  EXPECT_EQ(engine.counting_scans(), 1);
  EXPECT_EQ(source.scans_started(), 2);  // planning + counting

  // Subsequent pair queries answer from the cache: still one scan.
  ASSERT_TRUE(engine.MinePair("num0", "bool1").ok());
  ASSERT_TRUE(engine.MinePair("num2", "bool0").ok());
  EXPECT_EQ(engine.counting_scans(), 1);
  EXPECT_EQ(source.scans_started(), 2);
}

TEST(MiningEngineTest, RelationEngineScansOnceTotal) {
  // The in-memory fast path plans from the columns directly, so even the
  // planning pass does not touch the batch source: one scan, full stop.
  const storage::Relation relation = SmallRelation(10000, 17);
  storage::RelationBatchSource source(&relation);
  MinerOptions options;
  options.num_buckets = 64;
  options.bucketizer = Bucketizer::kGkSketch;
  MiningEngine engine(&source, relation.schema(), options);
  engine.Prepare();
  // Generic sources pay one planning pass; the engine built directly over
  // the relation (below) must not even do that.
  EXPECT_EQ(source.scans_started(), 2);

  MiningEngine direct(&relation, options);
  direct.MineAllPairs();
  EXPECT_EQ(direct.counting_scans(), 1);
}

TEST(MiningEngineTest, FileEngineMatchesInMemoryEngineWithGk) {
  // GK sketches are deterministic and insertion-order equal between the
  // column and batch paths, so the disk-resident engine must reproduce
  // the in-memory engine bit for bit.
  const storage::Relation relation = SmallRelation(15000, 14);
  const std::string path = testing::TempDir() + "/engine_gk.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, path).ok());
  auto source_or = storage::PagedFileBatchSource::Open(path);
  ASSERT_TRUE(source_or.ok());

  MinerOptions options;
  options.num_buckets = 100;
  options.bucketizer = Bucketizer::kGkSketch;
  MiningEngine memory_engine(&relation, options);
  MiningEngine file_engine(source_or.value().get(), relation.schema(),
                           options);
  ExpectSameRules(file_engine.MineAllPairs(), memory_engine.MineAllPairs());
  EXPECT_EQ(file_engine.counting_scans(), 1);
  std::remove(path.c_str());
}

TEST(MiningEngineTest, FileEngineSamplingRecoversPlantedRule) {
  datagen::TableConfig config;
  config.num_rows = 40000;
  config.num_numeric = 2;
  config.num_boolean = 2;
  datagen::PlantedRule planted;
  planted.numeric_attr = 0;
  planted.boolean_attr = 0;
  planted.lo = 300000.0;
  planted.hi = 500000.0;
  planted.prob_inside = 0.8;
  planted.prob_outside = 0.1;
  config.planted_rules.push_back(planted);
  const std::string path = testing::TempDir() + "/engine_sampling.optr";
  {
    Rng rng(15);
    ASSERT_TRUE(datagen::GenerateTableToFile(config, rng, path).ok());
  }
  auto source_or = storage::PagedFileBatchSource::Open(path);
  ASSERT_TRUE(source_or.ok());
  MinerOptions options;
  options.num_buckets = 200;
  options.min_support = 0.10;
  MiningEngine engine(source_or.value().get(),
                      storage::Schema::Synthetic(2, 2), options);
  Result<std::vector<MinedRule>> rules = engine.MinePair("num0", "bool0");
  ASSERT_TRUE(rules.ok());
  const MinedRule& confidence_rule = rules.value()[0];
  ASSERT_TRUE(confidence_rule.found);
  EXPECT_GT(confidence_rule.confidence, 0.7);
  EXPECT_GE(confidence_rule.range_lo, 300000.0 - 30000.0);
  EXPECT_LE(confidence_rule.range_hi, 500000.0 + 30000.0);
  std::remove(path.c_str());
}

TEST(MiningEngineTest, PooledEngineMatchesSerialEngine) {
  const storage::Relation relation = SmallRelation(25000, 16);
  MinerOptions options;
  options.num_buckets = 100;
  MiningEngine serial(&relation, options);
  ThreadPool pool(4);
  MiningEngine pooled(&relation, options, &pool);
  ExpectSameRules(pooled.MineAllPairs(), serial.MineAllPairs());
}

TEST(MiningEngineTest, UnknownAttributesAreNotFoundErrors) {
  const storage::Relation relation = SmallRelation(100, 18);
  MiningEngine engine(&relation, MinerOptions{});
  EXPECT_EQ(engine.MinePair("nope", "bool0").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.MinePair("num0", "nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.MineGeneralized("num0", {"nope"}, "bool0").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      engine.MineMaximumAverageRange("num0", "nope", 0.1).status().code(),
      StatusCode::kNotFound);
  // Failed lookups must not have triggered the counting scan.
  EXPECT_EQ(engine.counting_scans(), 0);
}

// ------------------------- generalized / aggregate / sweep equivalence ----

/// Bitwise double equality that also accepts NaN == NaN: when the summed
/// target attribute itself carries NaNs, both paths must propagate the
/// identical NaN average.
void ExpectSameDouble(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    EXPECT_TRUE(std::isnan(a) && std::isnan(b));
    return;
  }
  EXPECT_EQ(a, b);
}

void ExpectSameAggregate(const Result<MinedAggregateRange>& a,
                         const Result<MinedAggregateRange>& b) {
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().found, b.value().found);
  EXPECT_EQ(a.value().range_attr, b.value().range_attr);
  EXPECT_EQ(a.value().target_attr, b.value().target_attr);
  EXPECT_EQ(a.value().range_lo, b.value().range_lo);
  EXPECT_EQ(a.value().range_hi, b.value().range_hi);
  EXPECT_EQ(a.value().support_count, b.value().support_count);
  EXPECT_EQ(a.value().support, b.value().support);
  ExpectSameDouble(a.value().average, b.value().average);
}

void ExpectSameRuleResults(const Result<std::vector<MinedRule>>& a,
                           const Result<std::vector<MinedRule>>& b) {
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameRules(a.value(), b.value());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].presumptive_condition,
              b.value()[i].presumptive_condition);
  }
}

TEST(MiningEngineTest, AllNanColumnIsSafeForEveryBucketizer) {
  // A fully-NaN attribute (e.g. an all-null column) must not crash any
  // bucketizer's planner -- the GK path used to CHECK-fail because its
  // empty guard tested the input size, not the NaN-filtered sketch count.
  storage::Relation relation = SmallRelation(500, 29);
  for (double& value : relation.MutableNumericColumn(0)) {
    value = std::nan("");
  }
  for (const Bucketizer bucketizer :
       {Bucketizer::kSampling, Bucketizer::kGkSketch,
        Bucketizer::kExactSort}) {
    MinerOptions options;
    options.num_buckets = 16;
    options.sample_per_bucket = 4;
    options.bucketizer = bucketizer;
    Miner legacy(&relation, options);
    MiningEngine engine(&relation, options);
    const std::vector<MinedRule> rules = engine.MineAllPairs();
    ExpectSameRules(rules, legacy.MineAll());
    // Every pair on the all-NaN attribute reports "no range".
    for (const MinedRule& rule : rules) {
      if (rule.numeric_attr == "num0") {
        EXPECT_FALSE(rule.found);
      }
    }
  }
}

TEST(MiningEngineTest, GeneralizedRulesMatchLegacyMiner) {
  const storage::Relation relation = SmallRelation(20000, 21);
  MinerOptions options;
  options.num_buckets = 120;
  Miner legacy(&relation, options);
  MiningEngine engine(&relation, options);
  ExpectSameRuleResults(engine.MineGeneralized("num0", {"bool0"}, "bool1"),
                        legacy.MineGeneralized("num0", {"bool0"}, "bool1"));
  ExpectSameRuleResults(
      engine.MineGeneralized("num2", {"bool0", "bool1"}, "bool0"),
      legacy.MineGeneralized("num2", {"bool0", "bool1"}, "bool0"));
  // The empty conjunction is a legal presumptive condition.
  ExpectSameRuleResults(engine.MineGeneralized("num1", {}, "bool0"),
                        legacy.MineGeneralized("num1", {}, "bool0"));
}

TEST(MiningEngineTest, AggregateRangesMatchLegacyMiner) {
  const storage::Relation relation = SmallRelation(20000, 22);
  MinerOptions options;
  options.num_buckets = 150;
  Miner legacy(&relation, options);
  MiningEngine engine(&relation, options);
  ExpectSameAggregate(engine.MineMaximumAverageRange("num0", "num1", 0.1),
                      legacy.MineMaximumAverageRange("num0", "num1", 0.1));
  ExpectSameAggregate(engine.MineMaximumAverageRange("num2", "num0", 0.25),
                      legacy.MineMaximumAverageRange("num2", "num0", 0.25));
  ExpectSameAggregate(
      engine.MineMaximumSupportRange("num1", "num2", 520000.0),
      legacy.MineMaximumSupportRange("num1", "num2", 520000.0));
}

TEST(MiningEngineTest, ThresholdSweepMatchesPerThresholdLegacyMiners) {
  const storage::Relation relation = SmallRelation(15000, 23);
  MinerOptions options;
  options.num_buckets = 100;
  MiningEngine engine(&relation, options);
  const ThresholdSet sweep[] = {
      {0.02, 0.3}, {0.05, 0.5}, {0.20, 0.8}, {0.50, 0.95}};
  const std::vector<MinedRule> swept = engine.MineAllPairs(sweep);
  EXPECT_EQ(engine.counting_scans(), 1);
  const size_t per_sweep = 3 * 2 * 2;  // pairs x two rule kinds
  ASSERT_EQ(swept.size(), per_sweep * std::size(sweep));
  for (size_t i = 0; i < std::size(sweep); ++i) {
    MinerOptions legacy_options = options;
    legacy_options.min_support = sweep[i].min_support;
    legacy_options.min_confidence = sweep[i].min_confidence;
    Miner legacy(&relation, legacy_options);
    const std::vector<MinedRule> expected = legacy.MineAll();
    ExpectSameRules(
        std::vector<MinedRule>(swept.begin() + i * per_sweep,
                               swept.begin() + (i + 1) * per_sweep),
        expected);
  }
}

TEST(MiningEngineTest, AllQueryKindsTogetherCostOneCountingScan) {
  const storage::Relation relation = SmallRelation(12000, 24);
  storage::RelationBatchSource source(&relation);
  MinerOptions options;
  options.num_buckets = 80;
  MiningEngine engine(&source, relation.schema(), options);
  // Register the session's generalized conditions, aggregate targets, and
  // region pairs up front so the shared scan accumulates every channel --
  // 1-D and 2-D grid alike -- at once.
  ASSERT_TRUE(engine.RequestGeneralized({"bool0"}).ok());
  ASSERT_TRUE(engine.RequestGeneralized({"bool0", "bool1"}).ok());
  ASSERT_TRUE(engine.RequestAverageTarget("num1").ok());
  ASSERT_TRUE(engine.RequestRegionPair("num0", "num1").ok());

  engine.MineAllPairs();
  ASSERT_TRUE(engine.MineGeneralized("num0", {"bool0"}, "bool1").ok());
  ASSERT_TRUE(
      engine.MineGeneralized("num2", {"bool0", "bool1"}, "bool0").ok());
  ASSERT_TRUE(engine.MineMaximumAverageRange("num0", "num1", 0.1).ok());
  ASSERT_TRUE(engine.MineMaximumSupportRange("num2", "num1", 4e5).ok());
  ASSERT_TRUE(engine.MineOptimizedRegion("num0", "num1", "bool0").ok());
  ASSERT_TRUE(engine.MineOptimizedRegion("num0", "num1", "bool1").ok());
  const ThresholdSet sweep[] = {{0.01, 0.4}, {0.10, 0.6}};
  engine.MineAllPairs(sweep);

  EXPECT_EQ(engine.counting_scans(), 1);
  EXPECT_EQ(source.scans_started(), 2);  // planning + counting

  // A permuted spelling of a registered conjunction is the same condition
  // (the mask is order-independent); it must hit the cache, not rescan.
  ASSERT_TRUE(
      engine.MineGeneralized("num2", {"bool1", "bool0"}, "bool0").ok());
  EXPECT_EQ(engine.counting_scans(), 1);

  // A condition that was NOT pre-registered is still answerable, at the
  // documented price of one supplemental scan on first use.
  ASSERT_TRUE(engine.MineGeneralized("num1", {"bool1"}, "bool0").ok());
  EXPECT_EQ(engine.counting_scans(), 2);
  ASSERT_TRUE(engine.MineGeneralized("num0", {"bool1"}, "bool1").ok());
  EXPECT_EQ(engine.counting_scans(), 2);  // cached from here on

  // Same contract for a late region pair: one supplemental scan on first
  // use, then cached for every Boolean target.
  ASSERT_TRUE(engine.MineOptimizedRegion("num1", "num2", "bool0").ok());
  EXPECT_EQ(engine.counting_scans(), 3);
  ASSERT_TRUE(engine.MineOptimizedRegion("num1", "num2", "bool1").ok());
  EXPECT_EQ(engine.counting_scans(), 3);
}

TEST(MiningEngineTest, PooledEngineMatchesSerialForGeneralizedRules) {
  const storage::Relation relation = SmallRelation(30000, 25);
  MinerOptions options;
  options.num_buckets = 90;
  MiningEngine serial(&relation, options);
  ThreadPool pool(4);
  MiningEngine pooled(&relation, options, &pool);
  for (MiningEngine* engine : {&serial, &pooled}) {
    ASSERT_TRUE(engine->RequestGeneralized({"bool1"}).ok());
  }
  // Conditional count channels are integer state: the row-sharded
  // schedule must be bit-identical to serial.
  ExpectSameRuleResults(pooled.MineGeneralized("num1", {"bool1"}, "bool0"),
                        serial.MineGeneralized("num1", {"bool1"}, "bool0"));
  EXPECT_EQ(pooled.counting_scans(), 1);
}

// ------------------------------------------------ region (2-D) parity ----

void ExpectSameRegionRule(const region::RegionRule& a,
                          const region::RegionRule& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.x1, b.x1);
  EXPECT_EQ(a.x2, b.x2);
  EXPECT_EQ(a.y1, b.y1);
  EXPECT_EQ(a.y2, b.y2);
  EXPECT_EQ(a.support_count, b.support_count);
  EXPECT_EQ(a.hit_count, b.hit_count);
  EXPECT_EQ(a.support, b.support);
  EXPECT_EQ(a.confidence, b.confidence);
}

void ExpectSameRegion(const Result<MinedRegion>& a_or,
                      const Result<MinedRegion>& b_or) {
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  const MinedRegion& a = a_or.value();
  const MinedRegion& b = b_or.value();
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.nx, b.nx);
  EXPECT_EQ(a.ny, b.ny);
  EXPECT_EQ(a.total_tuples, b.total_tuples);
  {
    SCOPED_TRACE("confidence rectangle");
    ExpectSameRegionRule(a.confidence_rectangle, b.confidence_rectangle);
  }
  {
    SCOPED_TRACE("support rectangle");
    ExpectSameRegionRule(a.support_rectangle, b.support_rectangle);
  }
  EXPECT_EQ(a.xmonotone_gain.found, b.xmonotone_gain.found);
  EXPECT_EQ(a.xmonotone_gain.x_begin, b.xmonotone_gain.x_begin);
  EXPECT_EQ(a.xmonotone_gain.column_ranges, b.xmonotone_gain.column_ranges);
  EXPECT_EQ(a.xmonotone_gain.support_count, b.xmonotone_gain.support_count);
  EXPECT_EQ(a.xmonotone_gain.hit_count, b.xmonotone_gain.hit_count);
  EXPECT_EQ(a.xmonotone_gain.support, b.xmonotone_gain.support);
  EXPECT_EQ(a.xmonotone_gain.confidence, b.xmonotone_gain.confidence);
  EXPECT_EQ(a.xmonotone_gain.gain, b.xmonotone_gain.gain);
}

TEST(MiningEngineTest, RegionsMatchLegacyOnBankAndRetail) {
  {
    datagen::BankConfig config;
    config.num_customers = 25000;
    Rng rng(33);
    const storage::Relation bank =
        datagen::GenerateBankCustomers(config, rng);
    MinerOptions options;
    options.num_buckets = 100;
    options.region_grid_buckets = 24;
    Miner legacy(&bank, options);
    MiningEngine engine(&bank, options);
    ExpectSameRegion(engine.MineOptimizedRegion("Age", "Balance", "CardLoan"),
                     legacy.MineOptimizedRegion("Age", "Balance", "CardLoan"));
    EXPECT_EQ(engine.counting_scans(), 1);
  }
  {
    datagen::RetailConfig config;
    config.num_transactions = 25000;
    Rng rng(34);
    const storage::Relation retail = datagen::GenerateRetail(config, rng);
    const storage::Schema& schema = retail.schema();
    MinerOptions options;
    options.num_buckets = 80;
    options.region_grid_buckets = 16;
    Miner legacy(&retail, options);
    MiningEngine engine(&retail, options);
    const std::string x = schema.NumericName(0);
    const std::string y = schema.NumericName(1);
    const std::string target = schema.BooleanName(0);
    ExpectSameRegion(engine.MineOptimizedRegion(x, y, target),
                     legacy.MineOptimizedRegion(x, y, target));
  }
}

TEST(MiningEngineTest, FileEngineRegionsMatchLegacyWithGk) {
  // Out-of-core 2-D mining: the disk-resident engine's grid channel must
  // reproduce the in-memory legacy BuildGrid path bit for bit, in both
  // paged read modes (GK boundaries keep the planning deterministic).
  datagen::BankConfig config;
  config.num_customers = 20000;
  Rng rng(35);
  const storage::Relation bank = datagen::GenerateBankCustomers(config, rng);
  const std::string path = testing::TempDir() + "/region_engine.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(bank, path).ok());

  MinerOptions options;
  options.num_buckets = 60;
  options.region_grid_buckets = 20;
  options.bucketizer = Bucketizer::kGkSketch;
  Miner legacy(&bank, options);
  const auto expected =
      legacy.MineOptimizedRegion("Age", "Balance", "CardLoan");

  for (const storage::PagedReadMode mode :
       {storage::PagedReadMode::kSynchronous,
        storage::PagedReadMode::kDoubleBuffered}) {
    auto source_or = storage::PagedFileBatchSource::Open(path, 512, mode);
    ASSERT_TRUE(source_or.ok());
    MiningEngine engine(source_or.value().get(), bank.schema(), options);
    ASSERT_TRUE(engine.RequestRegionPair("Age", "Balance").ok());
    ExpectSameRegion(engine.MineOptimizedRegion("Age", "Balance", "CardLoan"),
                     expected);
    // Any Boolean target of a registered pair answers from the cache.
    ASSERT_TRUE(
        engine.MineOptimizedRegion("Age", "Balance", "AutoWithdrawal").ok());
    EXPECT_EQ(engine.counting_scans(), 1);
  }
  std::remove(path.c_str());
}

TEST(MiningEngineTest, LateRegionPairOnUnplannedColumnMatchesLegacy) {
  // The region boundary set is planned only for registered axis columns.
  // A pair registered AFTER the scan that uses a brand-new column must
  // re-plan that set (supplemental scan) and still match the legacy path
  // bit for bit on both the old and the new pair.
  const storage::Relation relation = SmallRelation(15017, 38);
  MinerOptions options;
  options.num_buckets = 70;
  options.region_grid_buckets = 12;
  Miner legacy(&relation, options);
  MiningEngine engine(&relation, options);
  ASSERT_TRUE(engine.RequestRegionPair("num0", "num1").ok());
  ExpectSameRegion(engine.MineOptimizedRegion("num0", "num1", "bool0"),
                   legacy.MineOptimizedRegion("num0", "num1", "bool0"));
  EXPECT_EQ(engine.counting_scans(), 1);
  // num2 was outside the planned mask; the late pair re-plans + rescans.
  ExpectSameRegion(engine.MineOptimizedRegion("num2", "num0", "bool1"),
                   legacy.MineOptimizedRegion("num2", "num0", "bool1"));
  EXPECT_EQ(engine.counting_scans(), 2);
  // And the originally-planned pair still answers from the cache.
  ExpectSameRegion(engine.MineOptimizedRegion("num0", "num1", "bool1"),
                   legacy.MineOptimizedRegion("num0", "num1", "bool1"));
  EXPECT_EQ(engine.counting_scans(), 2);
}

TEST(MiningEngineTest, PooledRegionQueriesMatchSerialAcrossShardCounts) {
  // The grid channels of row-sharded partial plans must Merge
  // bit-identically to the serial scan, for 1/2/8-way pools.
  const storage::Relation relation = SmallRelation(30011, 36);
  MinerOptions options;
  options.num_buckets = 90;
  options.region_grid_buckets = 18;
  MiningEngine serial(&relation, options);
  ASSERT_TRUE(serial.RequestRegionPair("num0", "num2").ok());
  const auto expected = serial.MineOptimizedRegion("num0", "num2", "bool0");
  for (const int pool_size : {1, 2, 8}) {
    ThreadPool pool(pool_size);
    MiningEngine pooled(&relation, options, &pool);
    ASSERT_TRUE(pooled.RequestRegionPair("num0", "num2").ok());
    SCOPED_TRACE(pool_size);
    ExpectSameRegion(pooled.MineOptimizedRegion("num0", "num2", "bool0"),
                     expected);
    EXPECT_EQ(pooled.counting_scans(), 1);
  }
}

TEST(MiningEngineTest, AverageRangeBitIdenticalAcrossPoolSizes) {
  // Regression for the ROADMAP sums item: Neumaier-compensated per-bucket
  // sums over a pool-size-independent shard layout make aggregate mining
  // bit-identical at ANY pool size (1, 3, and 7 here) -- including the
  // mined average, which is a double.
  const storage::Relation relation = SmallRelation(50021, 37);
  MinerOptions options;
  options.num_buckets = 120;
  std::vector<Result<MinedAggregateRange>> results;
  for (const int pool_size : {1, 3, 7}) {
    ThreadPool pool(pool_size);
    MiningEngine engine(&relation, options, &pool);
    ASSERT_TRUE(engine.RequestAverageTarget("num1").ok());
    results.push_back(
        engine.MineMaximumAverageRange("num0", "num1", 0.05));
    ASSERT_TRUE(results.back().ok());
    ASSERT_TRUE(results.back().value().found);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE(i);
    const MinedAggregateRange& a = results[0].value();
    const MinedAggregateRange& b = results[i].value();
    EXPECT_EQ(a.range_lo, b.range_lo);
    EXPECT_EQ(a.range_hi, b.range_hi);
    EXPECT_EQ(a.support_count, b.support_count);
    EXPECT_EQ(a.support, b.support);
    EXPECT_EQ(a.average, b.average);  // exact double equality
  }
}

// ---------------------------------------- NaN-laden end-to-end parity ----

storage::Relation RelationWithNans(int64_t rows, uint64_t seed) {
  storage::Relation relation = SmallRelation(rows, seed);
  // Deterministically poke NaNs into every numeric column, including long
  // stretches in column 0 so whole buckets go empty.
  const double nan = std::nan("");
  for (int a = 0; a < relation.schema().num_numeric(); ++a) {
    std::vector<double>& column = relation.MutableNumericColumn(a);
    for (size_t row = static_cast<size_t>(a); row < column.size();
         row += 7 + static_cast<size_t>(a) * 3) {
      column[row] = nan;
    }
  }
  return relation;
}

TEST(MiningEngineTest, NanLadenRelationMatchesLegacyAcrossAllQueryKinds) {
  const storage::Relation relation = RelationWithNans(20011, 26);
  MinerOptions options;
  options.num_buckets = 110;
  Miner legacy(&relation, options);
  MiningEngine engine(&relation, options);
  ExpectSameRules(engine.MineAllPairs(), legacy.MineAll());
  ExpectSameRuleResults(engine.MineGeneralized("num0", {"bool0"}, "bool1"),
                        legacy.MineGeneralized("num0", {"bool0"}, "bool1"));
  ExpectSameAggregate(engine.MineMaximumAverageRange("num1", "num2", 0.1),
                      legacy.MineMaximumAverageRange("num1", "num2", 0.1));
  ExpectSameAggregate(engine.MineMaximumSupportRange("num2", "num0", 4e5),
                      legacy.MineMaximumSupportRange("num2", "num0", 4e5));
}

TEST(MiningEngineTest, NanLadenPagedFileMatchesLegacyWithGk) {
  // NaN doubles round-trip through the fixed-width file format, and the
  // disk-resident engine must reproduce the in-memory legacy miner bit
  // for bit (GK boundaries are deterministic and insertion-order equal
  // between the column and batch paths).
  const storage::Relation relation = RelationWithNans(9001, 27);
  const std::string path = testing::TempDir() + "/nan_engine.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, path).ok());
  auto source_or = storage::PagedFileBatchSource::Open(path, 512);
  ASSERT_TRUE(source_or.ok());
  MinerOptions options;
  options.num_buckets = 60;
  options.bucketizer = Bucketizer::kGkSketch;
  Miner legacy(&relation, options);
  MiningEngine engine(source_or.value().get(), relation.schema(), options);
  ASSERT_TRUE(engine.RequestGeneralized({"bool1"}).ok());
  ASSERT_TRUE(engine.RequestAverageTarget("num1").ok());
  ExpectSameRules(engine.MineAllPairs(), legacy.MineAll());
  ExpectSameRuleResults(engine.MineGeneralized("num2", {"bool1"}, "bool0"),
                        legacy.MineGeneralized("num2", {"bool1"}, "bool0"));
  ExpectSameAggregate(engine.MineMaximumAverageRange("num0", "num1", 0.15),
                      legacy.MineMaximumAverageRange("num0", "num1", 0.15));
  EXPECT_EQ(engine.counting_scans(), 1);
  std::remove(path.c_str());
}

TEST(MiningEngineTest, DoubleBufferedFileEngineMatchesSynchronousEverywhere) {
  // The async prefetch reader must be invisible to every query kind: two
  // engines over the same file, one per read mode, answer all-pairs,
  // generalized, aggregate, and threshold-sweep queries bit-identically
  // (GK boundaries keep the planning deterministic).
  const storage::Relation relation = RelationWithNans(12007, 31);
  const std::string path = testing::TempDir() + "/double_buffer_engine.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, path).ok());
  auto sync_or = storage::PagedFileBatchSource::Open(
      path, 512, storage::PagedReadMode::kSynchronous);
  auto buffered_or = storage::PagedFileBatchSource::Open(
      path, 512, storage::PagedReadMode::kDoubleBuffered);
  ASSERT_TRUE(sync_or.ok());
  ASSERT_TRUE(buffered_or.ok());

  MinerOptions options;
  options.num_buckets = 70;
  options.bucketizer = Bucketizer::kGkSketch;
  MiningEngine sync_engine(sync_or.value().get(), relation.schema(),
                           options);
  MiningEngine buffered_engine(buffered_or.value().get(), relation.schema(),
                               options);
  for (MiningEngine* engine : {&sync_engine, &buffered_engine}) {
    ASSERT_TRUE(engine->RequestGeneralized({"bool0"}).ok());
    ASSERT_TRUE(engine->RequestAverageTarget("num2").ok());
  }
  ExpectSameRules(buffered_engine.MineAllPairs(), sync_engine.MineAllPairs());
  ExpectSameRuleResults(
      buffered_engine.MineGeneralized("num1", {"bool0"}, "bool1"),
      sync_engine.MineGeneralized("num1", {"bool0"}, "bool1"));
  ExpectSameAggregate(
      buffered_engine.MineMaximumAverageRange("num0", "num2", 0.1),
      sync_engine.MineMaximumAverageRange("num0", "num2", 0.1));
  ExpectSameAggregate(
      buffered_engine.MineMaximumSupportRange("num1", "num2", 4e5),
      sync_engine.MineMaximumSupportRange("num1", "num2", 4e5));
  const ThresholdSet sweep[] = {{0.02, 0.3}, {0.15, 0.7}};
  ExpectSameRules(buffered_engine.MineAllPairs(sweep),
                  sync_engine.MineAllPairs(sweep));
  EXPECT_EQ(buffered_engine.counting_scans(), 1);
  EXPECT_EQ(sync_engine.counting_scans(), 1);
  std::remove(path.c_str());
}

TEST(MiningEngineTest, PooledDoubleBufferedFileEngineMatchesSerialSync) {
  // Row-sharded scans over prefetching range readers (one prefetch thread
  // per shard) must still merge to the serial synchronous answer.
  const storage::Relation relation = RelationWithNans(15013, 32);
  const std::string path = testing::TempDir() + "/double_buffer_pooled.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, path).ok());
  auto sync_or = storage::PagedFileBatchSource::Open(
      path, 256, storage::PagedReadMode::kSynchronous);
  auto buffered_or = storage::PagedFileBatchSource::Open(
      path, 256, storage::PagedReadMode::kDoubleBuffered);
  ASSERT_TRUE(sync_or.ok());
  ASSERT_TRUE(buffered_or.ok());
  MinerOptions options;
  options.num_buckets = 50;
  options.bucketizer = Bucketizer::kGkSketch;
  MiningEngine serial(sync_or.value().get(), relation.schema(), options);
  ThreadPool pool(4);
  MiningEngine pooled(buffered_or.value().get(), relation.schema(), options,
                      &pool);
  ExpectSameRules(pooled.MineAllPairs(), serial.MineAllPairs());
  EXPECT_EQ(pooled.counting_scans(), 1);
  std::remove(path.c_str());
}

// ----------------------------------------------- wide-schema coverage ----

TEST(WideSchemaTest, PagedFileRoundTripsSixHundredNumericAttributes) {
  // 600 numeric attributes = 4800 row bytes, beyond the 4096-byte staging
  // array AppendRow used to CHECK-crash on.
  const int kNumeric = 600;
  const int kBoolean = 5;
  const int64_t kRows = 64;
  const storage::Schema schema =
      storage::Schema::Synthetic(kNumeric, kBoolean);
  const std::string path = testing::TempDir() + "/wide_schema.optr";
  auto writer_or = storage::PagedFileWriter::Create(path, kNumeric, kBoolean);
  ASSERT_TRUE(writer_or.ok());
  storage::PagedFileWriter writer = std::move(writer_or).value();
  std::vector<double> numeric(static_cast<size_t>(kNumeric));
  std::vector<uint8_t> boolean(static_cast<size_t>(kBoolean));
  for (int64_t row = 0; row < kRows; ++row) {
    for (int a = 0; a < kNumeric; ++a) {
      numeric[static_cast<size_t>(a)] =
          static_cast<double>(row) * 1000.0 + a;
    }
    for (int b = 0; b < kBoolean; ++b) {
      boolean[static_cast<size_t>(b)] =
          static_cast<uint8_t>((row + b) % 2);
    }
    ASSERT_TRUE(writer.AppendRow(numeric, boolean).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  auto read_or = storage::ReadRelationFromFile(path, schema);
  ASSERT_TRUE(read_or.ok());
  const storage::Relation& read = read_or.value();
  ASSERT_EQ(read.NumRows(), kRows);
  for (int64_t row = 0; row < kRows; row += 17) {
    for (int a = 0; a < kNumeric; a += 101) {
      EXPECT_EQ(read.NumericValue(row, a),
                static_cast<double>(row) * 1000.0 + a);
    }
    for (int b = 0; b < kBoolean; ++b) {
      EXPECT_EQ(read.BooleanValue(row, b), (row + b) % 2 != 0);
    }
  }
  std::remove(path.c_str());
}

TEST(WideSchemaTest, WideEngineOverPagedFileMatchesLegacy) {
  datagen::TableConfig config;
  config.num_rows = 400;
  config.num_numeric = 600;
  config.num_boolean = 2;
  Rng rng(28);
  const storage::Relation relation = datagen::GenerateTable(config, rng);
  const std::string path = testing::TempDir() + "/wide_engine.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, path).ok());
  auto source_or = storage::PagedFileBatchSource::Open(path);
  ASSERT_TRUE(source_or.ok());

  MinerOptions options;
  options.num_buckets = 8;
  options.sample_per_bucket = 4;
  options.bucketizer = Bucketizer::kGkSketch;
  Miner legacy(&relation, options);
  MiningEngine engine(source_or.value().get(), relation.schema(), options);
  ExpectSameRules(engine.MineAllPairs(), legacy.MineAll());
  EXPECT_EQ(engine.counting_scans(), 1);
  std::remove(path.c_str());
}

// -------------------- rectangular grids + hull context caching ----------

TEST(MiningEngineTest, RectangularRegionGridsMatchLegacy) {
  const storage::Relation relation = SmallRelation(20000, 71);
  MinerOptions options;
  options.num_buckets = 60;
  options.region_grid_buckets = 10;
  Miner legacy(&relation, options);
  MiningEngine engine(&relation, options);
  // Mixed shapes in ONE session: a wide grid, a tall grid whose x axis
  // shares a bucket count with the wide grid's y axis (they must share a
  // region boundary set), and the square default -- all from one scan.
  ASSERT_TRUE(engine.RequestRegionPair("num0", "num1", 24, 6).ok());
  ASSERT_TRUE(engine.RequestRegionPair("num1", "num2", 6, 18).ok());
  ASSERT_TRUE(engine.RequestRegionPair("num0", "num2").ok());
  const auto wide = engine.MineOptimizedRegion("num0", "num1", "bool0");
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide.value().nx, 24);
  EXPECT_EQ(wide.value().ny, 6);
  ExpectSameRegion(
      wide, legacy.MineOptimizedRegion("num0", "num1", "bool0", 24, 6));
  ExpectSameRegion(
      engine.MineOptimizedRegion("num1", "num2", "bool1"),
      legacy.MineOptimizedRegion("num1", "num2", "bool1", 6, 18));
  ExpectSameRegion(engine.MineOptimizedRegion("num0", "num2", "bool0"),
                   legacy.MineOptimizedRegion("num0", "num2", "bool0"));
  // The 1-D sweep rides the same scan, unaffected by the grid shapes.
  ExpectSameRules(engine.MineAllPairs(), legacy.MineAll());
  EXPECT_EQ(engine.counting_scans(), 1);
  // Degenerate shapes are rejected, not CHECK-crashed.
  EXPECT_FALSE(engine.RequestRegionPair("num0", "num1", 0, 4).ok());
}

TEST(MiningEngineTest, LateRectangularPairCostsOneSupplementalScan) {
  const storage::Relation relation = SmallRelation(12000, 72);
  MinerOptions options;
  options.num_buckets = 50;
  Miner legacy(&relation, options);
  MiningEngine engine(&relation, options);
  engine.MineAllPairs();
  EXPECT_EQ(engine.counting_scans(), 1);
  // A late rectangular pair plans its two fresh bucket counts and costs
  // the documented one supplemental scan.
  ASSERT_TRUE(engine.RequestRegionPair("num1", "num0", 5, 9).ok());
  EXPECT_EQ(engine.counting_scans(), 2);
  ExpectSameRegion(engine.MineOptimizedRegion("num1", "num0", "bool1"),
                   legacy.MineOptimizedRegion("num1", "num0", "bool1", 5, 9));
  EXPECT_EQ(engine.counting_scans(), 2);
}

TEST(MiningEngineTest, RepeatedAggregateQueriesReuseHullContext) {
  const storage::Relation relation = SmallRelation(20000, 73);
  MinerOptions options;
  options.num_buckets = 120;
  Miner legacy(&relation, options);
  MiningEngine engine(&relation, options);
  ASSERT_TRUE(engine.RequestAverageTarget("num1").ok());
  // A threshold sweep over ONE (range, target) pair builds the hull
  // context once and stays bit-identical to the per-call legacy miner.
  for (const double min_support : {0.02, 0.1, 0.25, 0.6}) {
    ExpectSameAggregate(
        engine.MineMaximumAverageRange("num0", "num1", min_support),
        legacy.MineMaximumAverageRange("num0", "num1", min_support));
  }
  EXPECT_EQ(engine.hull_contexts_built(), 1);
  // A different range attribute is a different context.
  ExpectSameAggregate(engine.MineMaximumAverageRange("num2", "num1", 0.1),
                      legacy.MineMaximumAverageRange("num2", "num1", 0.1));
  EXPECT_EQ(engine.hull_contexts_built(), 2);
  // Support-range queries reuse the cached sums; the effective-index scan
  // has no threshold-independent structure, so no context is built.
  ExpectSameAggregate(
      engine.MineMaximumSupportRange("num0", "num1", 4.5e5),
      legacy.MineMaximumSupportRange("num0", "num1", 4.5e5));
  EXPECT_EQ(engine.hull_contexts_built(), 2);
  EXPECT_EQ(engine.counting_scans(), 1);
}

}  // namespace
}  // namespace optrules::rules
