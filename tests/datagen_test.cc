// Tests for the synthetic-data generators.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include <gtest/gtest.h>

#include "datagen/bank.h"
#include "datagen/correlation.h"
#include "datagen/distributions.h"
#include "datagen/retail.h"
#include "datagen/table_generator.h"
#include "storage/paged_file.h"

namespace optrules::datagen {
namespace {

double Mean(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

std::vector<double> Draw(const Distribution& dist, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(static_cast<size_t>(n));
  for (double& x : out) x = dist.Sample(rng);
  return out;
}

TEST(DistributionsTest, UniformRangeAndMean) {
  const UniformDistribution dist(2.0, 10.0);
  const std::vector<double> xs = Draw(dist, 50000, 1);
  for (double x : xs) {
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 10.0);
  }
  EXPECT_NEAR(Mean(xs), 6.0, 0.05);
}

TEST(DistributionsTest, GaussianMoments) {
  const GaussianDistribution dist(5.0, 2.0);
  const std::vector<double> xs = Draw(dist, 100000, 2);
  EXPECT_NEAR(Mean(xs), 5.0, 0.05);
  double var = 0.0;
  for (double x : xs) var += (x - 5.0) * (x - 5.0);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(DistributionsTest, ExponentialMeanIsInverseRate) {
  const ExponentialDistribution dist(0.5);
  const std::vector<double> xs = Draw(dist, 100000, 3);
  for (double x : xs) EXPECT_GE(x, 0.0);
  EXPECT_NEAR(Mean(xs), 2.0, 0.05);
}

TEST(DistributionsTest, LogNormalIsPositive) {
  const LogNormalDistribution dist(0.0, 1.0);
  const std::vector<double> xs = Draw(dist, 10000, 4);
  for (double x : xs) EXPECT_GT(x, 0.0);
  // Median of lognormal(0, 1) is 1.
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(sorted[sorted.size() / 2], 1.0, 0.1);
}

TEST(DistributionsTest, ZipfRankFrequenciesDecrease) {
  const ZipfDistribution dist(100, 1.0);
  const std::vector<double> xs = Draw(dist, 200000, 5);
  std::vector<int> hist(101, 0);
  for (double x : xs) {
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 100.0);
    ++hist[static_cast<size_t>(x)];
  }
  // Rank 1 much more frequent than rank 10, which beats rank 100.
  EXPECT_GT(hist[1], 5 * hist[10]);
  EXPECT_GT(hist[10], 2 * hist[100]);
}

TEST(DistributionsTest, MixtureUsesAllComponents) {
  std::vector<std::unique_ptr<Distribution>> components;
  components.push_back(std::make_unique<UniformDistribution>(0.0, 1.0));
  components.push_back(std::make_unique<UniformDistribution>(10.0, 11.0));
  const MixtureDistribution dist(std::move(components), {0.5, 0.5});
  const std::vector<double> xs = Draw(dist, 10000, 6);
  int low = 0;
  int high = 0;
  for (double x : xs) {
    if (x < 1.0) {
      ++low;
    } else {
      ASSERT_GE(x, 10.0);
      ++high;
    }
  }
  EXPECT_NEAR(static_cast<double>(low) / xs.size(), 0.5, 0.03);
  EXPECT_GT(high, 0);
}

TEST(DistributionsTest, MakeDistributionDispatch) {
  Rng rng(7);
  EXPECT_LE(MakeDistribution(DistSpec::Uniform(0, 1))->Sample(rng), 1.0);
  EXPECT_GE(MakeDistribution(DistSpec::Exponential(1.0))->Sample(rng), 0.0);
  EXPECT_GT(MakeDistribution(DistSpec::LogNormal(0, 1))->Sample(rng), 0.0);
  EXPECT_GE(MakeDistribution(DistSpec::Zipf(10, 1.0))->Sample(rng), 1.0);
  (void)MakeDistribution(DistSpec::Gaussian(0, 1))->Sample(rng);
}

// -------------------------------------------------------- correlation ----

TEST(CorrelationTest, PlantedRuleShapesConditionalRates) {
  storage::Relation relation(storage::Schema::Synthetic(1, 1));
  Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.NextUniform(0.0, 100.0);
    const uint8_t b = 0;
    relation.AppendRow(std::span<const double>(&v, 1),
                       std::span<const uint8_t>(&b, 1));
  }
  PlantedRule rule;
  rule.numeric_attr = 0;
  rule.boolean_attr = 0;
  rule.lo = 30.0;
  rule.hi = 50.0;
  rule.prob_inside = 0.8;
  rule.prob_outside = 0.1;
  ApplyPlantedRule(rule, rng, &relation);

  const RangeStats inside = MeasureRange(relation, 0, 0, 30.0, 50.0);
  EXPECT_NEAR(inside.support, 0.2, 0.01);
  EXPECT_NEAR(inside.confidence, 0.8, 0.02);
  const RangeStats whole_left = MeasureRange(relation, 0, 0, 0.0, 29.0);
  EXPECT_NEAR(whole_left.confidence, 0.1, 0.02);
}

TEST(CorrelationTest, MeasureRangeOnEmptyRange) {
  storage::Relation relation(storage::Schema::Synthetic(1, 1));
  const RangeStats stats = MeasureRange(relation, 0, 0, 0.0, 1.0);
  EXPECT_EQ(stats.tuples_in_range, 0);
  EXPECT_EQ(stats.confidence, 0.0);
}

// ---------------------------------------------------- table generator ----

TEST(TableGeneratorTest, PaperConfigShape) {
  const TableConfig config = PaperSection61Config(1234);
  Rng rng(9);
  const storage::Relation relation = GenerateTable(config, rng);
  EXPECT_EQ(relation.NumRows(), 1234);
  EXPECT_EQ(relation.schema().num_numeric(), 8);
  EXPECT_EQ(relation.schema().num_boolean(), 8);
  EXPECT_EQ(relation.schema().RowBytes(), 72u);  // the paper's 72 B/tuple
}

TEST(TableGeneratorTest, PlantedRuleIsRecoverableByMeasurement) {
  TableConfig config;
  config.num_rows = 30000;
  config.num_numeric = 2;
  config.num_boolean = 2;
  PlantedRule rule;
  rule.numeric_attr = 1;
  rule.boolean_attr = 0;
  rule.lo = 250000.0;
  rule.hi = 500000.0;
  rule.prob_inside = 0.9;
  rule.prob_outside = 0.05;
  config.planted_rules.push_back(rule);
  Rng rng(10);
  const storage::Relation relation = GenerateTable(config, rng);
  const RangeStats stats =
      MeasureRange(relation, 1, 0, rule.lo, rule.hi);
  EXPECT_NEAR(stats.confidence, 0.9, 0.02);
  const RangeStats outside = MeasureRange(relation, 1, 0, 600000.0, 1e6);
  EXPECT_NEAR(outside.confidence, 0.05, 0.02);
}

TEST(TableGeneratorTest, BaselineBooleanProbabilityRespected) {
  TableConfig config;
  config.num_rows = 50000;
  config.num_numeric = 1;
  config.num_boolean = 1;
  config.boolean_probs = {0.75};
  Rng rng(11);
  const storage::Relation relation = GenerateTable(config, rng);
  int64_t hits = 0;
  for (uint8_t b : relation.BooleanColumn(0)) hits += b;
  EXPECT_NEAR(static_cast<double>(hits) / 50000.0, 0.75, 0.01);
}

TEST(TableGeneratorTest, FileGenerationMatchesConfigShape) {
  const std::string path = testing::TempDir() + "/gen_table.optr";
  TableConfig config = PaperSection61Config(5000);
  Rng rng(12);
  ASSERT_TRUE(GenerateTableToFile(config, rng, path).ok());
  Result<storage::PagedFileInfo> info = storage::ReadPagedFileInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().num_rows, 5000);
  EXPECT_EQ(info.value().row_bytes, 72u);
  std::remove(path.c_str());
}

TEST(TableGeneratorTest, SameSeedSameData) {
  TableConfig config;
  config.num_rows = 100;
  config.num_numeric = 2;
  config.num_boolean = 1;
  Rng rng1(13);
  Rng rng2(13);
  const storage::Relation a = GenerateTable(config, rng1);
  const storage::Relation b = GenerateTable(config, rng2);
  for (int64_t row = 0; row < 100; ++row) {
    EXPECT_DOUBLE_EQ(a.NumericValue(row, 0), b.NumericValue(row, 0));
    EXPECT_EQ(a.BooleanValue(row, 0), b.BooleanValue(row, 0));
  }
}

// --------------------------------------------------------- workloads ----

TEST(BankTest, SchemaAndPlantedCardLoanBand) {
  BankConfig config;
  config.num_customers = 40000;
  Rng rng(14);
  const storage::Relation bank = GenerateBankCustomers(config, rng);
  EXPECT_EQ(bank.NumRows(), 40000);
  ASSERT_TRUE(bank.schema().NumericIndexOf("Balance").ok());
  ASSERT_TRUE(bank.schema().BooleanIndexOf("CardLoan").ok());

  const int balance = bank.schema().NumericIndexOf("Balance").value();
  const int card_loan = bank.schema().BooleanIndexOf("CardLoan").value();
  const RangeStats inside =
      MeasureRange(bank, balance, card_loan, config.card_loan_range_lo,
                   config.card_loan_range_hi);
  EXPECT_GT(inside.tuples_in_range, 1000);
  EXPECT_NEAR(inside.confidence, config.card_loan_prob_inside, 0.03);

  // Ages clamped to a plausible band.
  const int age = bank.schema().NumericIndexOf("Age").value();
  for (double a : bank.NumericColumn(age)) {
    EXPECT_GE(a, 18.0);
    EXPECT_LE(a, 95.0);
  }
}

TEST(BankTest, RichCheckingBandElevatesSavings) {
  BankConfig config;
  config.num_customers = 40000;
  Rng rng(15);
  const storage::Relation bank = GenerateBankCustomers(config, rng);
  const int checking =
      bank.schema().NumericIndexOf("CheckingAccount").value();
  const int saving = bank.schema().NumericIndexOf("SavingAccount").value();
  double in_sum = 0.0;
  double out_sum = 0.0;
  int64_t in_n = 0;
  int64_t out_n = 0;
  for (int64_t row = 0; row < bank.NumRows(); ++row) {
    const double c = bank.NumericValue(row, checking);
    const double s = bank.NumericValue(row, saving);
    if (config.rich_checking_lo <= c && c <= config.rich_checking_hi) {
      in_sum += s;
      ++in_n;
    } else {
      out_sum += s;
      ++out_n;
    }
  }
  ASSERT_GT(in_n, 100);
  ASSERT_GT(out_n, 100);
  EXPECT_GT(in_sum / in_n, 1.5 * (out_sum / out_n));
}

TEST(RetailTest, SchemaAndPlantedAssociations) {
  RetailConfig config;
  config.num_transactions = 40000;
  Rng rng(16);
  const storage::Relation retail = GenerateRetail(config, rng);
  EXPECT_EQ(retail.NumRows(), 40000);
  const int spend = retail.schema().NumericIndexOf("TotalSpend").value();
  const int coke = retail.schema().BooleanIndexOf("Coke").value();
  const RangeStats snack = MeasureRange(
      retail, spend, coke, config.snack_spend_lo, config.snack_spend_hi);
  EXPECT_GT(snack.confidence, 0.45);

  // Pizza & Coke lift Potato (the paper's Example 2.1 association).
  const int pizza = retail.schema().BooleanIndexOf("Pizza").value();
  const int potato = retail.schema().BooleanIndexOf("Potato").value();
  int64_t both = 0;
  int64_t both_potato = 0;
  int64_t neither_potato = 0;
  int64_t neither = 0;
  for (int64_t row = 0; row < retail.NumRows(); ++row) {
    if (retail.BooleanValue(row, pizza) && retail.BooleanValue(row, coke)) {
      ++both;
      if (retail.BooleanValue(row, potato)) ++both_potato;
    } else {
      ++neither;
      if (retail.BooleanValue(row, potato)) ++neither_potato;
    }
  }
  ASSERT_GT(both, 100);
  EXPECT_GT(static_cast<double>(both_potato) / both,
            2.0 * static_cast<double>(neither_potato) / neither);
}

}  // namespace
}  // namespace optrules::datagen
