// Tests for PagedFile, tuple streams, and the external merge sort.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/columnar_batch.h"
#include "storage/external_sort.h"
#include "storage/paged_file.h"
#include "storage/tuple_stream.h"

namespace optrules::storage {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Relation RandomRelation(int64_t rows, int num_numeric, int num_boolean,
                        uint64_t seed) {
  Relation r(Schema::Synthetic(num_numeric, num_boolean));
  Rng rng(seed);
  std::vector<double> numeric(static_cast<size_t>(num_numeric));
  std::vector<uint8_t> boolean(static_cast<size_t>(num_boolean));
  for (int64_t i = 0; i < rows; ++i) {
    for (auto& x : numeric) x = rng.NextUniform(-100.0, 100.0);
    for (auto& b : boolean) b = rng.NextBernoulli(0.4) ? 1 : 0;
    r.AppendRow(numeric, boolean);
  }
  return r;
}

TEST(PagedFileTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.optr");
  const Relation original = RandomRelation(257, 3, 2, 1);
  ASSERT_TRUE(WriteRelationToFile(original, path).ok());

  Result<PagedFileInfo> info = ReadPagedFileInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().num_numeric, 3);
  EXPECT_EQ(info.value().num_boolean, 2);
  EXPECT_EQ(info.value().num_rows, 257);
  EXPECT_EQ(info.value().row_bytes, 26u);

  Result<Relation> loaded =
      ReadRelationFromFile(path, Schema::Synthetic(3, 2));
  ASSERT_TRUE(loaded.ok());
  const Relation& r = loaded.value();
  ASSERT_EQ(r.NumRows(), original.NumRows());
  for (int64_t row = 0; row < r.NumRows(); ++row) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(r.NumericValue(row, c),
                       original.NumericValue(row, c));
    }
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(r.BooleanValue(row, c), original.BooleanValue(row, c));
    }
  }
  std::remove(path.c_str());
}

TEST(PagedFileTest, EmptyTableRoundTrip) {
  const std::string path = TempPath("empty.optr");
  ASSERT_TRUE(
      WriteRelationToFile(Relation(Schema::Synthetic(1, 1)), path).ok());
  Result<Relation> loaded =
      ReadRelationFromFile(path, Schema::Synthetic(1, 1));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumRows(), 0);
  std::remove(path.c_str());
}

TEST(PagedFileTest, SchemaMismatchRejected) {
  const std::string path = TempPath("mismatch.optr");
  ASSERT_TRUE(WriteRelationToFile(RandomRelation(5, 2, 1, 2), path).ok());
  EXPECT_EQ(
      ReadRelationFromFile(path, Schema::Synthetic(1, 1)).status().code(),
      StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PagedFileTest, BadMagicIsCorruption) {
  const std::string path = TempPath("badmagic.optr");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[64] = "this is not a paged file at all.................";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_EQ(ReadPagedFileInfo(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PagedFileTest, ShortHeaderIsCorruption) {
  const std::string path = TempPath("short.optr");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("OPTR", 1, 4, f);
  std::fclose(f);
  EXPECT_EQ(ReadPagedFileInfo(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PagedFileTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadPagedFileInfo("/no/such/file.optr").status().code(),
            StatusCode::kIoError);
}

TEST(PagedFileTest, InvalidAttributeCountsRejected) {
  EXPECT_FALSE(
      PagedFileWriter::Create(TempPath("zero.optr"), 0, 0).ok());
}

TEST(TupleStreamTest, RelationStreamYieldsAllTuples) {
  const Relation relation = RandomRelation(100, 2, 3, 3);
  RelationTupleStream stream(&relation);
  EXPECT_EQ(stream.NumTuples(), 100);
  EXPECT_EQ(stream.num_numeric(), 2);
  EXPECT_EQ(stream.num_boolean(), 3);
  TupleView view;
  int64_t count = 0;
  while (stream.Next(&view)) {
    EXPECT_DOUBLE_EQ(view.numeric[0], relation.NumericValue(count, 0));
    EXPECT_EQ(view.booleans[2] != 0, relation.BooleanValue(count, 2));
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(TupleStreamTest, ResetRewinds) {
  const Relation relation = RandomRelation(10, 1, 1, 4);
  RelationTupleStream stream(&relation);
  TupleView view;
  while (stream.Next(&view)) {
  }
  EXPECT_FALSE(stream.Next(&view));
  stream.Reset();
  int64_t count = 0;
  while (stream.Next(&view)) ++count;
  EXPECT_EQ(count, 10);
}

TEST(TupleStreamTest, FileStreamMatchesRelationStream) {
  const std::string path = TempPath("stream.optr");
  const Relation relation = RandomRelation(1000, 4, 2, 5);
  ASSERT_TRUE(WriteRelationToFile(relation, path).ok());

  // Use a small page size so multiple page refills are exercised.
  Result<std::unique_ptr<FileTupleStream>> file_or =
      FileTupleStream::Open(path, /*buffer_rows=*/64);
  ASSERT_TRUE(file_or.ok());
  FileTupleStream& file_stream = *file_or.value();
  RelationTupleStream memory_stream(&relation);

  EXPECT_EQ(file_stream.NumTuples(), memory_stream.NumTuples());
  TupleView file_view;
  TupleView memory_view;
  while (memory_stream.Next(&memory_view)) {
    ASSERT_TRUE(file_stream.Next(&file_view));
    for (int c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(file_view.numeric[c], memory_view.numeric[c]);
    }
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(file_view.booleans[c], memory_view.booleans[c]);
    }
  }
  EXPECT_FALSE(file_stream.Next(&file_view));

  file_stream.Reset();
  int64_t count = 0;
  while (file_stream.Next(&file_view)) ++count;
  EXPECT_EQ(count, 1000);
  std::remove(path.c_str());
}

TEST(TupleStreamTest, OpenRejectsBadBufferRows) {
  EXPECT_FALSE(FileTupleStream::Open("/dev/null", 0).ok());
}

// ------------------------------------------------------ external sort ----

struct ExternalSortCase {
  int64_t rows;
  size_t memory_budget;
  uint64_t seed;
};

class ExternalSortTest : public testing::TestWithParam<ExternalSortCase> {};

TEST_P(ExternalSortTest, SortsByKeyAttribute) {
  const ExternalSortCase& param = GetParam();
  const std::string input = TempPath("sort_in.optr");
  const std::string output = TempPath("sort_out.optr");
  const Relation relation = RandomRelation(param.rows, 2, 1, param.seed);
  // ExternalSort shuffles fixed-width whole-row records, so it only
  // applies to the row-major v1 layout.
  PagedFileWriterOptions v1;
  v1.format = PagedFileFormat::kRowMajorV1;
  ASSERT_TRUE(WriteRelationToFile(relation, input, v1).ok());

  ExternalSortOptions options;
  options.record_bytes = relation.schema().RowBytes();
  options.key_offset = sizeof(double);  // sort by numeric attribute 1
  options.header_bytes = kPagedFileHeaderBytes;
  options.memory_budget_bytes = param.memory_budget;
  options.temp_dir = testing::TempDir();
  Result<ExternalSortStats> stats = ExternalSort(input, output, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().num_records, param.rows);

  Result<Relation> sorted =
      ReadRelationFromFile(output, Schema::Synthetic(2, 1));
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted.value().NumRows(), param.rows);
  // Keys ascending and multiset of keys preserved.
  std::vector<double> expected = relation.NumericColumn(1);
  std::sort(expected.begin(), expected.end());
  const std::vector<double>& got = sorted.value().NumericColumn(1);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  std::vector<double> got_sorted = got;
  std::sort(got_sorted.begin(), got_sorted.end());
  EXPECT_EQ(got_sorted, expected);
  std::remove(input.c_str());
  std::remove(output.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExternalSortTest,
    testing::Values(
        ExternalSortCase{0, 1 << 20, 1},       // empty input
        ExternalSortCase{1, 1 << 20, 2},       // single record
        ExternalSortCase{100, 1 << 20, 3},     // single in-memory run
        ExternalSortCase{5000, 4096, 4},       // many runs, k-way merge
        ExternalSortCase{5000, 26 * 7, 5},     // tiny budget: 7-record runs
        ExternalSortCase{20000, 1 << 14, 6}    // wide merge fan-in
        ));

TEST(ExternalSortErrorsTest, RejectsZeroRecordBytes) {
  ExternalSortOptions options;
  options.record_bytes = 0;
  EXPECT_EQ(ExternalSort("x", "y", options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExternalSortErrorsTest, RejectsKeyOutsideRecord) {
  ExternalSortOptions options;
  options.record_bytes = 8;
  options.key_offset = 4;
  EXPECT_EQ(ExternalSort("x", "y", options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExternalSortErrorsTest, MissingInputIsIoError) {
  ExternalSortOptions options;
  options.record_bytes = 16;
  EXPECT_EQ(
      ExternalSort("/no/such/input", TempPath("out.bin"), options)
          .status()
          .code(),
      StatusCode::kIoError);
}

TEST(ExternalSortTest, PreservesWholeRecords) {
  // Sorting must move whole rows, not just keys: check that the boolean
  // payload still matches its numeric partner after the sort.
  const std::string input = TempPath("pairs_in.optr");
  const std::string output = TempPath("pairs_out.optr");
  Relation relation(Schema::Synthetic(1, 1));
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextUniform(0.0, 1.0);
    const uint8_t flag = v > 0.5 ? 1 : 0;  // payload derivable from key
    const double row[] = {v};
    relation.AppendRow(row, std::span<const uint8_t>(&flag, 1));
  }
  PagedFileWriterOptions v1;
  v1.format = PagedFileFormat::kRowMajorV1;
  ASSERT_TRUE(WriteRelationToFile(relation, input, v1).ok());
  ExternalSortOptions options;
  options.record_bytes = relation.schema().RowBytes();
  options.key_offset = 0;
  options.header_bytes = kPagedFileHeaderBytes;
  options.memory_budget_bytes = 512;
  options.temp_dir = testing::TempDir();
  ASSERT_TRUE(ExternalSort(input, output, options).ok());
  Result<Relation> sorted =
      ReadRelationFromFile(output, Schema::Synthetic(1, 1));
  ASSERT_TRUE(sorted.ok());
  for (int64_t row = 0; row < sorted.value().NumRows(); ++row) {
    EXPECT_EQ(sorted.value().BooleanValue(row, 0),
              sorted.value().NumericValue(row, 0) > 0.5);
  }
  std::remove(input.c_str());
  std::remove(output.c_str());
}

// ------------------------------------- double-buffered batch reading ----

/// Drains one full scan of `source` into row-major vectors so scans from
/// different readers/modes can be compared batch-structure and all.
struct DrainedScan {
  std::vector<int64_t> batch_sizes;
  std::vector<double> numeric;
  std::vector<uint8_t> boolean;
};

DrainedScan DrainScan(BatchSource& source) {
  DrainedScan drained;
  auto reader = source.CreateReader();
  ColumnarBatch batch;
  while (reader->Next(&batch)) {
    drained.batch_sizes.push_back(batch.num_rows());
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      for (int a = 0; a < batch.num_numeric(); ++a) {
        drained.numeric.push_back(batch.numeric(a)[static_cast<size_t>(r)]);
      }
      for (int b = 0; b < batch.num_boolean(); ++b) {
        drained.boolean.push_back(batch.boolean(b)[static_cast<size_t>(r)]);
      }
    }
  }
  return drained;
}

TEST(PagedFileBatchSourceTest, DoubleBufferedBitIdenticalToSynchronous) {
  const int64_t rows = 10007;
  const std::string path = TempPath("double_buffered.optr");
  const Relation relation = RandomRelation(rows, 4, 3, 77);
  ASSERT_TRUE(WriteRelationToFile(relation, path).ok());
  // Batch sizes around the interesting boundaries: 1 row, an odd size, a
  // divisor-free size, exactly the file, larger than the file.
  for (const int64_t batch_rows : {int64_t{1}, int64_t{7}, int64_t{512},
                                   rows, rows + 1000}) {
    SCOPED_TRACE(testing::Message() << "batch_rows=" << batch_rows);
    auto sync_or =
        PagedFileBatchSource::Open(path, batch_rows,
                                   PagedReadMode::kSynchronous);
    auto buffered_or =
        PagedFileBatchSource::Open(path, batch_rows,
                                   PagedReadMode::kDoubleBuffered);
    ASSERT_TRUE(sync_or.ok());
    ASSERT_TRUE(buffered_or.ok());
    const DrainedScan sync = DrainScan(*sync_or.value());
    const DrainedScan buffered = DrainScan(*buffered_or.value());
    EXPECT_EQ(sync.batch_sizes, buffered.batch_sizes);
    EXPECT_EQ(sync.numeric, buffered.numeric);
    EXPECT_EQ(sync.boolean, buffered.boolean);
    EXPECT_EQ(static_cast<int64_t>(sync.batch_sizes.size()),
              (rows + batch_rows - 1) / batch_rows);
  }
  std::remove(path.c_str());
}

TEST(PagedFileBatchSourceTest, DoubleBufferedRangeReadersMatchSynchronous) {
  const int64_t rows = 4099;
  const std::string path = TempPath("double_buffered_range.optr");
  const Relation relation = RandomRelation(rows, 2, 2, 78);
  ASSERT_TRUE(WriteRelationToFile(relation, path).ok());
  auto sync_or =
      PagedFileBatchSource::Open(path, 256, PagedReadMode::kSynchronous);
  auto buffered_or =
      PagedFileBatchSource::Open(path, 256, PagedReadMode::kDoubleBuffered);
  ASSERT_TRUE(sync_or.ok());
  ASSERT_TRUE(buffered_or.ok());
  const int64_t splits[] = {0, 1000, 2049, rows};
  for (size_t s = 0; s + 1 < std::size(splits); ++s) {
    auto sync_reader =
        sync_or.value()->CreateRangeReader(splits[s], splits[s + 1]);
    auto buffered_reader =
        buffered_or.value()->CreateRangeReader(splits[s], splits[s + 1]);
    ColumnarBatch sync_batch;
    ColumnarBatch buffered_batch;
    while (sync_reader->Next(&sync_batch)) {
      ASSERT_TRUE(buffered_reader->Next(&buffered_batch));
      ASSERT_EQ(sync_batch.num_rows(), buffered_batch.num_rows());
      for (int a = 0; a < 2; ++a) {
        const auto lhs = sync_batch.numeric(a);
        const auto rhs = buffered_batch.numeric(a);
        ASSERT_TRUE(std::equal(lhs.begin(), lhs.end(), rhs.begin()));
      }
    }
    EXPECT_FALSE(buffered_reader->Next(&buffered_batch));
  }
  std::remove(path.c_str());
}

TEST(PagedFileBatchSourceTest, DoubleBufferedReaderAbandonedMidScan) {
  // Destroying a reader while the prefetcher is ahead must join cleanly
  // (no hang, no touch-after-free); TSan covers the race side.
  const std::string path = TempPath("double_buffered_abandon.optr");
  const Relation relation = RandomRelation(2048, 2, 1, 79);
  ASSERT_TRUE(WriteRelationToFile(relation, path).ok());
  auto source_or =
      PagedFileBatchSource::Open(path, 128, PagedReadMode::kDoubleBuffered);
  ASSERT_TRUE(source_or.ok());
  auto reader = source_or.value()->CreateReader();
  ColumnarBatch batch;
  ASSERT_TRUE(reader->Next(&batch));
  reader.reset();  // abandon with pages outstanding
  std::remove(path.c_str());
}

// ------------------------------------------- columnar v2 page format ----

std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

TEST(PagedFileV2Test, RoundTripAcrossFormatVersions) {
  const Relation original = RandomRelation(1013, 3, 2, 11);
  const std::string v1_path = TempPath("formats_v1.optr");
  const std::string v2_path = TempPath("formats_v2.optr");
  PagedFileWriterOptions v1;
  v1.format = PagedFileFormat::kRowMajorV1;
  ASSERT_TRUE(WriteRelationToFile(original, v1_path, v1).ok());
  ASSERT_TRUE(WriteRelationToFile(original, v2_path).ok());  // default v2

  Result<PagedFileInfo> v1_info = ReadPagedFileInfo(v1_path);
  Result<PagedFileInfo> v2_info = ReadPagedFileInfo(v2_path);
  ASSERT_TRUE(v1_info.ok());
  ASSERT_TRUE(v2_info.ok());
  EXPECT_EQ(v1_info.value().format_version, 1u);
  EXPECT_EQ(v1_info.value().header_bytes, kPagedFileHeaderBytes);
  EXPECT_EQ(v1_info.value().rows_per_page, 0u);
  EXPECT_EQ(v2_info.value().format_version, 2u);
  EXPECT_EQ(v2_info.value().header_bytes, kPagedFileV2HeaderBytes);
  EXPECT_GE(v2_info.value().rows_per_page, 1u);
  EXPECT_EQ(v1_info.value().num_rows, v2_info.value().num_rows);
  EXPECT_EQ(v1_info.value().row_bytes, v2_info.value().row_bytes);

  // Both formats reload to the identical relation, bit for bit.
  Result<Relation> from_v1 =
      ReadRelationFromFile(v1_path, Schema::Synthetic(3, 2));
  Result<Relation> from_v2 =
      ReadRelationFromFile(v2_path, Schema::Synthetic(3, 2));
  ASSERT_TRUE(from_v1.ok());
  ASSERT_TRUE(from_v2.ok());
  ASSERT_EQ(from_v1.value().NumRows(), original.NumRows());
  ASSERT_EQ(from_v2.value().NumRows(), original.NumRows());
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(from_v1.value().NumericColumn(c), original.NumericColumn(c));
    EXPECT_EQ(from_v2.value().NumericColumn(c), original.NumericColumn(c));
  }
  for (int c = 0; c < 2; ++c) {
    EXPECT_EQ(from_v1.value().BooleanColumn(c), original.BooleanColumn(c));
    EXPECT_EQ(from_v2.value().BooleanColumn(c), original.BooleanColumn(c));
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(PagedFileV2Test, PagesAreFixedStrideAndPartialPageIsZeroFilled) {
  const std::string path = TempPath("partial_page.optr");
  PagedFileWriterOptions options;
  options.rows_per_page = 64;
  // Raw-layout assertions below measure the exact file size; keep the
  // optional zone-map trailer out (which also covers the zone-map-less
  // v2 read path).
  options.zone_maps = false;
  // 100 rows / 64 per page = one full page + one partial (36 rows).
  const Relation relation = RandomRelation(100, 2, 1, 12);
  ASSERT_TRUE(WriteRelationToFile(relation, path, options).ok());
  Result<PagedFileInfo> info_or = ReadPagedFileInfo(path);
  ASSERT_TRUE(info_or.ok());
  const PagedFileInfo& info = info_or.value();
  EXPECT_EQ(info.rows_per_page, 64u);
  EXPECT_EQ(info.num_pages(), 2);
  EXPECT_EQ(info.rows_in_page(0), 64);
  EXPECT_EQ(info.rows_in_page(1), 36);

  const std::vector<uint8_t> bytes = ReadAllBytes(path);
  ASSERT_EQ(bytes.size(),
            kPagedFileV2HeaderBytes + 2 * info.page_stride());
  const std::span<const uint8_t> all(bytes);
  EXPECT_TRUE(
      ValidateV2Page(info, 0,
                     all.subspan(kPagedFileV2HeaderBytes,
                                 info.page_stride()))
          .ok());
  EXPECT_TRUE(
      ValidateV2Page(info, 1,
                     all.subspan(kPagedFileV2HeaderBytes +
                                     info.page_stride(),
                                 info.page_stride()))
          .ok());
  // Every byte past row 36 in the partial page's runs must be zero.
  const size_t page1 = kPagedFileV2HeaderBytes + info.page_stride();
  for (int c = 0; c < 2; ++c) {
    for (size_t i = 36 * sizeof(double); i < 64 * sizeof(double); ++i) {
      ASSERT_EQ(bytes[page1 + info.numeric_run_offset(c) + i], 0u);
    }
  }
  for (size_t i = 36; i < 64; ++i) {
    ASSERT_EQ(bytes[page1 + info.boolean_run_offset(0) + i], 0u);
  }

  // A stale byte planted in the partial page's dead space must be caught
  // on read (the writer's zero-fill guarantee, enforced).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const long stale_offset = static_cast<long>(
      page1 + info.numeric_run_offset(1) + 50 * sizeof(double));
  ASSERT_EQ(std::fseek(f, stale_offset, SEEK_SET), 0);
  const uint8_t stale = 0xab;
  ASSERT_EQ(std::fwrite(&stale, 1, 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);
  EXPECT_EQ(ReadRelationFromFile(path, Schema::Synthetic(2, 1))
                .status()
                .code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PagedFileV2Test, CorruptDirectoryIsCaughtOnRead) {
  const std::string path = TempPath("bad_directory.optr");
  PagedFileWriterOptions options;
  options.rows_per_page = 32;
  ASSERT_TRUE(
      WriteRelationToFile(RandomRelation(40, 2, 1, 13), path, options).ok());
  // Flip a directory entry in page 0.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(kPagedFileV2HeaderBytes + 4),
                       SEEK_SET),
            0);
  const uint32_t junk = 0xdeadbeef;
  ASSERT_EQ(std::fwrite(&junk, 1, 4, f), 4u);
  ASSERT_EQ(std::fclose(f), 0);
  EXPECT_EQ(ReadRelationFromFile(path, Schema::Synthetic(2, 1))
                .status()
                .code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PagedFileV2Test, BatchScansMatchV1AcrossPagesAndModes) {
  // Multiple pages with batch sizes that do NOT divide rows_per_page, so
  // batches clamp at page boundaries; the scanned VALUES must still be
  // bit-identical to the v1 row-major scan in both read modes.
  const int64_t rows = 10007;
  const Relation relation = RandomRelation(rows, 4, 3, 14);
  const std::string v1_path = TempPath("scan_v1.optr");
  const std::string v2_path = TempPath("scan_v2.optr");
  PagedFileWriterOptions v1;
  v1.format = PagedFileFormat::kRowMajorV1;
  PagedFileWriterOptions v2;
  v2.rows_per_page = 512;
  ASSERT_TRUE(WriteRelationToFile(relation, v1_path, v1).ok());
  ASSERT_TRUE(WriteRelationToFile(relation, v2_path, v2).ok());
  for (const int64_t batch_rows :
       {int64_t{1}, int64_t{7}, int64_t{500}, int64_t{512}, rows}) {
    SCOPED_TRACE(testing::Message() << "batch_rows=" << batch_rows);
    auto v1_source =
        PagedFileBatchSource::Open(v1_path, batch_rows,
                                   PagedReadMode::kSynchronous);
    auto v2_sync =
        PagedFileBatchSource::Open(v2_path, batch_rows,
                                   PagedReadMode::kSynchronous);
    auto v2_buffered =
        PagedFileBatchSource::Open(v2_path, batch_rows,
                                   PagedReadMode::kDoubleBuffered);
    ASSERT_TRUE(v1_source.ok());
    ASSERT_TRUE(v2_sync.ok());
    ASSERT_TRUE(v2_buffered.ok());
    const DrainedScan expected = DrainScan(*v1_source.value());
    const DrainedScan sync = DrainScan(*v2_sync.value());
    const DrainedScan buffered = DrainScan(*v2_buffered.value());
    // Batch structure differs from v1 (page clamping) but must agree
    // between the two v2 modes; the values must agree with v1 everywhere.
    EXPECT_EQ(sync.batch_sizes, buffered.batch_sizes);
    EXPECT_EQ(sync.numeric, expected.numeric);
    EXPECT_EQ(sync.boolean, expected.boolean);
    EXPECT_EQ(buffered.numeric, expected.numeric);
    EXPECT_EQ(buffered.boolean, expected.boolean);
  }
  // I/O wait accounting accumulated as readers retired.
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(PagedFileV2Test, RangeReadersStartMidPage) {
  const int64_t rows = 4099;
  const Relation relation = RandomRelation(rows, 2, 2, 15);
  const std::string v1_path = TempPath("range_v1.optr");
  const std::string v2_path = TempPath("range_v2.optr");
  PagedFileWriterOptions v1;
  v1.format = PagedFileFormat::kRowMajorV1;
  PagedFileWriterOptions v2;
  v2.rows_per_page = 256;
  ASSERT_TRUE(WriteRelationToFile(relation, v1_path, v1).ok());
  ASSERT_TRUE(WriteRelationToFile(relation, v2_path, v2).ok());
  auto v1_source =
      PagedFileBatchSource::Open(v1_path, 100, PagedReadMode::kSynchronous);
  ASSERT_TRUE(v1_source.ok());
  // Shard splits chosen to start mid-page, at a page boundary, and in the
  // final partial page.
  const int64_t splits[] = {0, 77, 256, 1000, 4096, rows};
  for (const PagedReadMode mode :
       {PagedReadMode::kSynchronous, PagedReadMode::kDoubleBuffered}) {
    auto v2_source = PagedFileBatchSource::Open(v2_path, 100, mode);
    ASSERT_TRUE(v2_source.ok());
    for (size_t s = 0; s + 1 < std::size(splits); ++s) {
      SCOPED_TRACE(testing::Message()
                   << "shard=[" << splits[s] << "," << splits[s + 1] << ")");
      auto expected_reader =
          v1_source.value()->CreateRangeReader(splits[s], splits[s + 1]);
      auto v2_reader =
          v2_source.value()->CreateRangeReader(splits[s], splits[s + 1]);
      // Drain both and compare flattened values (batch shapes differ).
      std::vector<double> expected_values;
      std::vector<double> got_values;
      ColumnarBatch batch;
      while (expected_reader->Next(&batch)) {
        for (int64_t r = 0; r < batch.num_rows(); ++r) {
          for (int a = 0; a < 2; ++a) {
            expected_values.push_back(
                batch.numeric(a)[static_cast<size_t>(r)]);
          }
        }
      }
      while (v2_reader->Next(&batch)) {
        for (int64_t r = 0; r < batch.num_rows(); ++r) {
          for (int a = 0; a < 2; ++a) {
            got_values.push_back(batch.numeric(a)[static_cast<size_t>(r)]);
          }
        }
      }
      EXPECT_EQ(got_values, expected_values);
    }
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(PagedFileV2Test, TupleStreamGathersFromColumnRuns) {
  const std::string path = TempPath("tuples_v2.optr");
  const Relation relation = RandomRelation(1000, 4, 2, 16);
  PagedFileWriterOptions options;
  options.rows_per_page = 128;  // several pages incl. a partial last one
  ASSERT_TRUE(WriteRelationToFile(relation, path, options).ok());
  Result<std::unique_ptr<FileTupleStream>> file_or =
      FileTupleStream::Open(path);
  ASSERT_TRUE(file_or.ok());
  FileTupleStream& stream = *file_or.value();
  RelationTupleStream memory_stream(&relation);
  TupleView file_view;
  TupleView memory_view;
  while (memory_stream.Next(&memory_view)) {
    ASSERT_TRUE(stream.Next(&file_view));
    for (int c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(file_view.numeric[c], memory_view.numeric[c]);
    }
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(file_view.booleans[c], memory_view.booleans[c]);
    }
  }
  EXPECT_FALSE(stream.Next(&file_view));
  stream.Reset();
  int64_t count = 0;
  while (stream.Next(&file_view)) ++count;
  EXPECT_EQ(count, 1000);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- zone maps ----

TEST(ZoneMapTest, RoundTripValidatesAndCarriesSentinels) {
  const std::string path = TempPath("zones.optr");
  Relation relation(Schema::Synthetic(2, 2));
  // 3 pages of 64: page 1's column 0 is all-NaN (numeric sentinel), and
  // boolean column 1 is true only inside page 2 (max == 0 elsewhere).
  for (int64_t i = 0; i < 160; ++i) {
    const int64_t page = i / 64;
    const double numeric[] = {
        page == 1 ? std::nan("") : static_cast<double>(i),
        1000.0 - static_cast<double>(i)};
    const uint8_t boolean[] = {1, static_cast<uint8_t>(page == 2 ? 1 : 0)};
    relation.AppendRow(numeric, boolean);
  }
  PagedFileWriterOptions options;
  options.rows_per_page = 64;
  ASSERT_TRUE(WriteRelationToFile(relation, path, options).ok());

  Result<PagedFileInfo> info_or = ReadPagedFileInfo(path);
  ASSERT_TRUE(info_or.ok());
  const PagedFileInfo& info = info_or.value();
  ASSERT_TRUE(info.has_zone_maps);
  Result<ZoneMapIndex> zones_or = ReadZoneMapIndex(path, info);
  ASSERT_TRUE(zones_or.ok()) << zones_or.status().ToString();
  const ZoneMapIndex& zones = zones_or.value();
  ASSERT_EQ(zones.num_pages, 3);

  // Page 0: column 0 spans [0, 63]; page 1: the all-NaN sentinel
  // (min = +inf > max = -inf); page 2 spans [128, 159].
  EXPECT_EQ(zones.NumericMin(0, 0), 0.0);
  EXPECT_EQ(zones.NumericMax(0, 0), 63.0);
  EXPECT_GT(zones.NumericMin(1, 0), zones.NumericMax(1, 0));
  EXPECT_EQ(zones.NumericMin(2, 0), 128.0);
  EXPECT_EQ(zones.NumericMax(2, 0), 159.0);
  // Boolean 1 has a true row only in page 2.
  EXPECT_EQ(zones.BooleanMax(0, 1), 0);
  EXPECT_EQ(zones.BooleanMax(1, 1), 0);
  EXPECT_EQ(zones.BooleanMax(2, 1), 1);
  EXPECT_EQ(zones.BooleanMin(0, 0), 1);

  // Deep validation: every stored entry is bit-exactly recomputable from
  // its page image.
  const std::vector<uint8_t> bytes = ReadAllBytes(path);
  const std::span<const uint8_t> all(bytes);
  for (int64_t page = 0; page < zones.num_pages; ++page) {
    EXPECT_TRUE(ValidateZoneMapEntry(
                    info, zones, page,
                    all.subspan(kPagedFileV2HeaderBytes +
                                    static_cast<size_t>(page) *
                                        info.page_stride(),
                                info.page_stride()))
                    .ok())
        << "page " << page;
  }

  // The whole-file reader cross-checks zone maps on load and still
  // round-trips the relation exactly.
  Result<Relation> loaded =
      ReadRelationFromFile(path, Schema::Synthetic(2, 2));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().NumericColumn(1), relation.NumericColumn(1));
  std::remove(path.c_str());
}

TEST(ZoneMapTest, WriterOptionTurnsTrailerOff) {
  const std::string path = TempPath("no_zones.optr");
  PagedFileWriterOptions options;
  options.zone_maps = false;
  ASSERT_TRUE(
      WriteRelationToFile(RandomRelation(100, 2, 1, 5), path, options).ok());
  Result<PagedFileInfo> info = ReadPagedFileInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().has_zone_maps);
  // Zone-map-less v2 files read everywhere; they just never prune.
  EXPECT_TRUE(ReadRelationFromFile(path, Schema::Synthetic(2, 1)).ok());
  std::remove(path.c_str());
}

TEST(ZoneMapTest, TamperedTrailerIsCaught) {
  const std::string path = TempPath("zones_tamper.optr");
  PagedFileWriterOptions options;
  options.rows_per_page = 32;
  ASSERT_TRUE(
      WriteRelationToFile(RandomRelation(100, 2, 1, 6), path, options).ok());
  Result<PagedFileInfo> info_or = ReadPagedFileInfo(path);
  ASSERT_TRUE(info_or.ok());
  const PagedFileInfo& info = info_or.value();
  ASSERT_TRUE(info.has_zone_maps);

  // A plausible-but-wrong bound (min lowered by 1) passes the structural
  // checks; only the deep bit-exact recompute can catch it.
  {
    Result<ZoneMapIndex> zones_or = ReadZoneMapIndex(path, info);
    ASSERT_TRUE(zones_or.ok());
    ZoneMapIndex zones = std::move(zones_or).value();
    zones.numeric_min[0] -= 1.0;
    const std::vector<uint8_t> bytes = ReadAllBytes(path);
    EXPECT_FALSE(ValidateZoneMapEntry(
                     info, zones, 0,
                     std::span<const uint8_t>(bytes).subspan(
                         kPagedFileV2HeaderBytes, info.page_stride()))
                     .ok());
  }

  // Inverted non-sentinel bounds are rejected structurally at load.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    // First numeric pair of the trailer: [magic u32][4 pad] then min, max.
    const long min_offset = static_cast<long>(info.zone_map_offset()) + 8;
    const double huge = 1e300;
    ASSERT_EQ(std::fseek(f, min_offset, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&huge, sizeof(huge), 1, f), 1u);
    ASSERT_EQ(std::fclose(f), 0);
    EXPECT_EQ(ReadZoneMapIndex(path, info).status().code(),
              StatusCode::kCorruption);
  }

  // A clobbered trailer magic is caught immediately.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(info.zone_map_offset()),
                         SEEK_SET),
              0);
    const uint32_t junk = 0xdeadbeef;
    ASSERT_EQ(std::fwrite(&junk, sizeof(junk), 1, f), 1u);
    ASSERT_EQ(std::fclose(f), 0);
    EXPECT_EQ(ReadZoneMapIndex(path, info).status().code(),
              StatusCode::kCorruption);
  }
  std::remove(path.c_str());
}

TEST(ZoneMapTest, TruncatedTrailerIsCaught) {
  const std::string path = TempPath("zones_trunc.optr");
  PagedFileWriterOptions options;
  options.rows_per_page = 32;
  ASSERT_TRUE(
      WriteRelationToFile(RandomRelation(100, 2, 1, 7), path, options).ok());
  Result<PagedFileInfo> info = ReadPagedFileInfo(path);
  ASSERT_TRUE(info.ok());
  const std::vector<uint8_t> bytes = ReadAllBytes(path);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size() - 4, f),
            bytes.size() - 4);
  ASSERT_EQ(std::fclose(f), 0);
  EXPECT_EQ(ReadZoneMapIndex(path, info.value()).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace optrules::storage
