// Tests for bucket boundaries, samplers, counting, parallelism, and the
// Section 3.4 error bounds.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include <gtest/gtest.h>

#include "bucketing/boundaries.h"
#include "bucketing/counting.h"
#include "bucketing/equidepth_sampler.h"
#include "bucketing/equiwidth.h"
#include "bucketing/error_bounds.h"
#include "bucketing/parallel_count.h"
#include "bucketing/sort_bucketizer.h"
#include "common/rng.h"
#include "storage/paged_file.h"
#include "storage/tuple_stream.h"

namespace optrules::bucketing {
namespace {

std::vector<double> RandomValues(int64_t n, uint64_t seed, double lo = 0.0,
                                 double hi = 1000.0) {
  Rng rng(seed);
  std::vector<double> values(static_cast<size_t>(n));
  for (double& v : values) v = rng.NextUniform(lo, hi);
  return values;
}

// --------------------------------------------------------- boundaries ----

TEST(BoundariesTest, LocateRespectsHalfOpenIntervals) {
  const BucketBoundaries b = BucketBoundaries::FromCutPoints({10.0, 20.0});
  EXPECT_EQ(b.num_buckets(), 3);
  EXPECT_EQ(b.Locate(-5.0), 0);
  EXPECT_EQ(b.Locate(10.0), 0);   // bucket 0 is (-inf, 10]
  EXPECT_EQ(b.Locate(10.5), 1);
  EXPECT_EQ(b.Locate(20.0), 1);   // bucket 1 is (10, 20]
  EXPECT_EQ(b.Locate(20.0001), 2);
  EXPECT_EQ(b.Locate(1e300), 2);
}

TEST(BoundariesTest, EdgesAndInfinities) {
  const BucketBoundaries b = BucketBoundaries::FromCutPoints({1.0, 2.0});
  EXPECT_TRUE(std::isinf(b.LowerEdge(0)));
  EXPECT_DOUBLE_EQ(b.UpperEdge(0), 1.0);
  EXPECT_DOUBLE_EQ(b.LowerEdge(1), 1.0);
  EXPECT_DOUBLE_EQ(b.UpperEdge(1), 2.0);
  EXPECT_TRUE(std::isinf(b.UpperEdge(2)));
}

TEST(BoundariesTest, SingleBucketCoversEverything) {
  const BucketBoundaries b = BucketBoundaries::FromCutPoints({});
  EXPECT_EQ(b.num_buckets(), 1);
  EXPECT_EQ(b.Locate(-1e308), 0);
  EXPECT_EQ(b.Locate(1e308), 0);
}

TEST(BoundariesTest, FromSortedValuesGivesExactEquiDepth) {
  std::vector<double> values(1000);
  std::iota(values.begin(), values.end(), 0.0);
  const BucketBoundaries b = BucketBoundaries::FromSortedValues(values, 10);
  EXPECT_EQ(b.num_buckets(), 10);
  std::vector<int64_t> counts(10, 0);
  for (double v : values) ++counts[static_cast<size_t>(b.Locate(v))];
  for (int64_t c : counts) EXPECT_EQ(c, 100);
}

// -------------------------------------------------------- exact depth ----

TEST(SortBucketizerTest, ExactEquiDepthOnShuffledInput) {
  std::vector<double> values = RandomValues(10000, 21);
  const BucketBoundaries b = ExactEquiDepthBoundaries(values, 100);
  std::vector<int64_t> counts(100, 0);
  for (double v : values) ++counts[static_cast<size_t>(b.Locate(v))];
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  // All buckets within one tuple of perfectly equal depth (ties aside).
  EXPECT_GE(*lo, 99);
  EXPECT_LE(*hi, 101);
}

TEST(SortBucketizerTest, HeavyTiesYieldEmptyBucketsNotWrongCounts) {
  std::vector<double> values(1000, 42.0);  // all identical
  const BucketBoundaries b = ExactEquiDepthBoundaries(values, 10);
  std::vector<int64_t> counts(static_cast<size_t>(b.num_buckets()), 0);
  for (double v : values) ++counts[static_cast<size_t>(b.Locate(v))];
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}),
            1000);
  // Every tuple must land in exactly one bucket.
  int nonzero = 0;
  for (int64_t c : counts) nonzero += c > 0 ? 1 : 0;
  EXPECT_EQ(nonzero, 1);
}

// ------------------------------------------------------------ sampler ----

struct SamplerCase {
  int64_t n;
  int num_buckets;
  uint64_t seed;
};

class SamplerDepthTest : public testing::TestWithParam<SamplerCase> {};

TEST_P(SamplerDepthTest, BucketsAreAlmostEquiDepth) {
  const SamplerCase& param = GetParam();
  const std::vector<double> values = RandomValues(param.n, param.seed);
  SamplerOptions options;
  options.num_buckets = param.num_buckets;
  options.sample_per_bucket = 40;
  Rng rng(param.seed + 1);
  const BucketBoundaries b =
      BuildEquiDepthBoundaries(values, options, rng);
  std::vector<int64_t> counts(static_cast<size_t>(b.num_buckets()), 0);
  for (double v : values) ++counts[static_cast<size_t>(b.Locate(v))];

  const double expected =
      static_cast<double>(param.n) / param.num_buckets;
  // Section 3.2: with S/M = 40 a relative deviation of 50% has probability
  // < 0.3 per bucket; across buckets we allow a small number of outliers
  // but no gross distortion.
  int gross = 0;
  for (int64_t c : counts) {
    if (std::abs(static_cast<double>(c) - expected) > expected) ++gross;
  }
  EXPECT_LE(gross, param.num_buckets / 10);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}),
            param.n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SamplerDepthTest,
    testing::Values(SamplerCase{20000, 10, 1}, SamplerCase{50000, 100, 2},
                    SamplerCase{100000, 1000, 3},
                    SamplerCase{5000, 50, 4}));

TEST(SamplerTest, EmptyInputYieldsSingleBucket) {
  SamplerOptions options;
  options.num_buckets = 16;
  Rng rng(5);
  const BucketBoundaries b =
      BuildEquiDepthBoundaries(std::vector<double>{}, options, rng);
  EXPECT_EQ(b.num_buckets(), 1);
}

TEST(SamplerTest, StreamSamplerMatchesColumnSampler) {
  // Both paths should produce *almost equi-depth* buckets; they need not be
  // identical (different sampling designs), but both must bound deviation.
  storage::Relation relation(storage::Schema::Synthetic(1, 1));
  Rng data_rng(6);
  for (int i = 0; i < 50000; ++i) {
    const double v = data_rng.NextUniform(0.0, 1.0);
    const uint8_t flag = 0;
    relation.AppendRow(std::span<const double>(&v, 1),
                       std::span<const uint8_t>(&flag, 1));
  }
  SamplerOptions options;
  options.num_buckets = 100;
  storage::RelationTupleStream stream(&relation);
  Rng rng(7);
  const BucketBoundaries b =
      BuildEquiDepthBoundariesFromStream(stream, 0, options, rng);
  EXPECT_EQ(b.num_buckets(), 100);
  std::vector<int64_t> counts(100, 0);
  for (double v : relation.NumericColumn(0)) {
    ++counts[static_cast<size_t>(b.Locate(v))];
  }
  const double expected = 500.0;
  for (int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected);  // +-100%
  }
}

// ---------------------------------------------------------- equiwidth ----

TEST(EquiWidthTest, CutsAreEvenlySpaced) {
  const std::vector<double> values = {0.0, 100.0, 37.0, 58.0};
  const BucketBoundaries b = EquiWidthBoundaries(values, 4);
  ASSERT_EQ(b.num_buckets(), 4);
  EXPECT_DOUBLE_EQ(b.cut_points()[0], 25.0);
  EXPECT_DOUBLE_EQ(b.cut_points()[1], 50.0);
  EXPECT_DOUBLE_EQ(b.cut_points()[2], 75.0);
}

TEST(EquiWidthTest, SkewedDataConcentratesInFewBuckets) {
  // Lognormal data: equi-width puts nearly everything in the first bucket,
  // which is exactly why the paper prefers equi-depth (footnote 3).
  Rng rng(8);
  std::vector<double> values(20000);
  for (double& v : values) v = std::exp(3.0 * rng.NextGaussian());
  const BucketBoundaries b = EquiWidthBoundaries(values, 100);
  std::vector<int64_t> counts(100, 0);
  for (double v : values) ++counts[static_cast<size_t>(b.Locate(v))];
  EXPECT_GT(counts[0], 19000);
}

// ------------------------------------------------------------ counting ----

TEST(CountingTest, MatchesBruteForce) {
  const std::vector<double> values = RandomValues(5000, 9);
  Rng rng(10);
  std::vector<uint8_t> target(values.size());
  for (auto& t : target) t = rng.NextBernoulli(0.3) ? 1 : 0;
  const BucketBoundaries b =
      BucketBoundaries::FromCutPoints({250.0, 500.0, 750.0});
  const BucketCounts counts = CountBuckets(values, target, b);

  ASSERT_EQ(counts.num_buckets(), 4);
  ASSERT_EQ(counts.num_targets(), 1);
  std::vector<int64_t> u(4, 0);
  std::vector<int64_t> v(4, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    const auto bucket = static_cast<size_t>(b.Locate(values[i]));
    ++u[bucket];
    if (target[i]) ++v[bucket];
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(counts.u[static_cast<size_t>(i)], u[static_cast<size_t>(i)]);
    EXPECT_EQ(counts.v[0][static_cast<size_t>(i)],
              v[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(counts.total_tuples, 5000);
}

TEST(CountingTest, MinMaxTracksObservedValues) {
  const std::vector<double> values = {1.0, 9.0, 11.0, 19.0, 5.0};
  const std::vector<uint8_t> target = {0, 0, 0, 0, 0};
  const BucketBoundaries b = BucketBoundaries::FromCutPoints({10.0});
  const BucketCounts counts = CountBuckets(values, target, b);
  EXPECT_DOUBLE_EQ(counts.min_value[0], 1.0);
  EXPECT_DOUBLE_EQ(counts.max_value[0], 9.0);
  EXPECT_DOUBLE_EQ(counts.min_value[1], 11.0);
  EXPECT_DOUBLE_EQ(counts.max_value[1], 19.0);
}

TEST(CountingTest, MultipleTargetsCountedInOnePass) {
  const std::vector<double> values = RandomValues(2000, 11);
  Rng rng(12);
  std::vector<uint8_t> t1(values.size());
  std::vector<uint8_t> t2(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    t1[i] = rng.NextBernoulli(0.2) ? 1 : 0;
    t2[i] = rng.NextBernoulli(0.7) ? 1 : 0;
  }
  const BucketBoundaries b = BucketBoundaries::FromCutPoints({500.0});
  const std::vector<uint8_t>* targets[] = {&t1, &t2};
  const BucketCounts counts = CountBuckets(values, targets, b);
  ASSERT_EQ(counts.num_targets(), 2);
  int64_t total_t2 = counts.v[1][0] + counts.v[1][1];
  int64_t expected_t2 = 0;
  for (uint8_t x : t2) expected_t2 += x;
  EXPECT_EQ(total_t2, expected_t2);
}

TEST(CountingTest, ConditionalCountsRestrictToC1) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const std::vector<uint8_t> c1 = {1, 0, 1, 1};
  const std::vector<uint8_t> c2 = {1, 1, 0, 1};
  const BucketBoundaries b = BucketBoundaries::FromCutPoints({2.5});
  const BucketCounts counts = CountBucketsConditional(values, c1, c2, b);
  // Bucket 0 holds rows {1.0, 2.0}; only row 0 meets C1, and it meets C2.
  EXPECT_EQ(counts.u[0], 1);
  EXPECT_EQ(counts.v[0][0], 1);
  // Bucket 1 holds rows {3.0, 4.0}; both meet C1, row 3 meets C2.
  EXPECT_EQ(counts.u[1], 2);
  EXPECT_EQ(counts.v[0][1], 1);
  // Support denominator stays the full table.
  EXPECT_EQ(counts.total_tuples, 4);
}

TEST(CountingTest, StreamCountingMatchesColumnCounting) {
  storage::Relation relation(storage::Schema::Synthetic(2, 2));
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    const double numeric[] = {rng.NextUniform(0, 100),
                              rng.NextUniform(0, 100)};
    const uint8_t boolean[] = {
        static_cast<uint8_t>(rng.NextBernoulli(0.5) ? 1 : 0),
        static_cast<uint8_t>(rng.NextBernoulli(0.1) ? 1 : 0)};
    relation.AppendRow(numeric, boolean);
  }
  const BucketBoundaries b =
      BucketBoundaries::FromCutPoints({25.0, 50.0, 75.0});
  const std::vector<uint8_t>* targets[] = {&relation.BooleanColumn(0),
                                           &relation.BooleanColumn(1)};
  const BucketCounts columnar =
      CountBuckets(relation.NumericColumn(1), targets, b);
  storage::RelationTupleStream stream(&relation);
  const BucketCounts streamed = CountBucketsFromStream(stream, 1, b);
  EXPECT_EQ(streamed.u, columnar.u);
  EXPECT_EQ(streamed.v, columnar.v);
  EXPECT_EQ(streamed.total_tuples, columnar.total_tuples);
}

TEST(CountingTest, CompactRemovesEmptyBuckets) {
  const std::vector<double> values = {1.0, 30.0};
  const std::vector<uint8_t> target = {1, 0};
  const BucketBoundaries b =
      BucketBoundaries::FromCutPoints({10.0, 20.0, 40.0});
  BucketCounts counts = CountBuckets(values, target, b);
  ASSERT_EQ(counts.num_buckets(), 4);
  CompactEmptyBuckets(&counts);
  ASSERT_EQ(counts.num_buckets(), 2);
  EXPECT_EQ(counts.u[0], 1);
  EXPECT_EQ(counts.v[0][0], 1);
  EXPECT_DOUBLE_EQ(counts.min_value[1], 30.0);
  EXPECT_EQ(counts.total_tuples, 2);
}

TEST(CountingTest, BucketSumsAccumulateTarget) {
  const std::vector<double> values = {1.0, 2.0, 11.0, 12.0};
  const std::vector<double> target = {10.0, 20.0, 5.0, 7.0};
  const BucketBoundaries b = BucketBoundaries::FromCutPoints({10.0});
  BucketSums sums = CountBucketSums(values, target, b);
  EXPECT_EQ(sums.u[0], 2);
  EXPECT_DOUBLE_EQ(sums.sum[0], 30.0);
  EXPECT_EQ(sums.u[1], 2);
  EXPECT_DOUBLE_EQ(sums.sum[1], 12.0);

  // Compaction keeps parallel arrays aligned.
  const BucketBoundaries b3 =
      BucketBoundaries::FromCutPoints({10.0, 100.0});
  BucketSums sparse = CountBucketSums({{5.0}}, {{2.5}}, b3);
  CompactEmptyBuckets(&sparse);
  ASSERT_EQ(sparse.num_buckets(), 1);
  EXPECT_DOUBLE_EQ(sparse.sum[0], 2.5);
}

// ------------------------------------------------------------ parallel ----

class ParallelCountTest : public testing::TestWithParam<int> {};

TEST_P(ParallelCountTest, MatchesSerialForAnyThreadCount) {
  const int threads = GetParam();
  const std::vector<double> values = RandomValues(10007, 14);
  Rng rng(15);
  std::vector<uint8_t> t1(values.size());
  for (auto& t : t1) t = rng.NextBernoulli(0.25) ? 1 : 0;
  const BucketBoundaries b =
      BucketBoundaries::FromCutPoints({100, 200, 300, 400, 500});
  const std::vector<uint8_t>* targets[] = {&t1};
  const BucketCounts serial = CountBuckets(values, targets, b);
  const BucketCounts parallel =
      ParallelCountBuckets(values, targets, b, threads);
  EXPECT_EQ(parallel.u, serial.u);
  EXPECT_EQ(parallel.v, serial.v);
  EXPECT_EQ(parallel.total_tuples, serial.total_tuples);
  for (int i = 0; i < serial.num_buckets(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.min_value[static_cast<size_t>(i)],
                     serial.min_value[static_cast<size_t>(i)]);
    EXPECT_DOUBLE_EQ(parallel.max_value[static_cast<size_t>(i)],
                     serial.max_value[static_cast<size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelCountTest,
                         testing::Values(1, 2, 3, 4, 8));

// ------------------------------------------------- sort-based on disk ----

TEST(SortBucketizerFileTest, NaiveAndVerticalSplitAgreeWithInMemory) {
  // Build a small table on disk, bucketize it three ways, and require that
  // all three boundary sets induce equal bucket counts.
  storage::Relation relation(storage::Schema::Synthetic(2, 1));
  Rng rng(16);
  for (int i = 0; i < 20000; ++i) {
    const double numeric[] = {rng.NextUniform(0, 1),
                              rng.NextGaussian() * 10.0};
    const uint8_t boolean[] = {0};
    relation.AppendRow(numeric, boolean);
  }
  const std::string table = testing::TempDir() + "/bucketize.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, table).ok());

  const int kBuckets = 50;
  const BucketBoundaries in_memory =
      ExactEquiDepthBoundaries(relation.NumericColumn(1), kBuckets);
  Result<BucketBoundaries> naive = NaiveSortBoundariesFromFile(
      table, 1, kBuckets, testing::TempDir() + "/sorted.optr", 1 << 16,
      testing::TempDir());
  ASSERT_TRUE(naive.ok());
  Result<BucketBoundaries> vertical = VerticalSplitSortBoundariesFromFile(
      table, 1, kBuckets, testing::TempDir() + "/split.bin", 1 << 16,
      testing::TempDir());
  ASSERT_TRUE(vertical.ok());

  auto depth_profile = [&](const BucketBoundaries& b) {
    std::vector<int64_t> counts(static_cast<size_t>(b.num_buckets()), 0);
    for (double v : relation.NumericColumn(1)) {
      ++counts[static_cast<size_t>(b.Locate(v))];
    }
    return counts;
  };
  EXPECT_EQ(depth_profile(naive.value()), depth_profile(in_memory));
  EXPECT_EQ(depth_profile(vertical.value()), depth_profile(in_memory));
  std::remove(table.c_str());
  std::remove((testing::TempDir() + "/sorted.optr").c_str());
  std::remove((testing::TempDir() + "/split.bin").c_str());
}

TEST(SortBucketizerFileTest, RejectsBadAttribute) {
  storage::Relation relation(storage::Schema::Synthetic(1, 1));
  const double v = 1.0;
  const uint8_t f = 0;
  relation.AppendRow(std::span<const double>(&v, 1),
                     std::span<const uint8_t>(&f, 1));
  const std::string table = testing::TempDir() + "/one.optr";
  ASSERT_TRUE(storage::WriteRelationToFile(relation, table).ok());
  EXPECT_FALSE(NaiveSortBoundariesFromFile(table, 5, 10,
                                           testing::TempDir() + "/x.optr",
                                           1 << 16, testing::TempDir())
                   .ok());
  std::remove(table.c_str());
}

// -------------------------------------------------------- error bounds ----

TEST(ErrorBoundsTest, TableOneRows) {
  // Table I of the paper: support_opt = 30%, conf_opt = 70%.
  struct Row {
    int buckets;
    double supp_lo, supp_hi, conf_lo, conf_hi;
  };
  // conf bounds: c*ms/(ms+2) and min(1, c*ms/(ms-2)).
  const Row rows[] = {
      {10, 0.10, 0.50, 0.42, 1.00},
      {100, 0.28, 0.32, 0.65625, 0.75},
      {500, 0.296, 0.304, 0.690789, 0.709459},
      {1000, 0.298, 0.302, 0.695364, 0.704698},
  };
  for (const Row& row : rows) {
    const ApproxErrorBounds b =
        BucketApproximationBounds(0.30, 0.70, row.buckets);
    EXPECT_NEAR(b.support_lo, row.supp_lo, 1e-9) << row.buckets;
    EXPECT_NEAR(b.support_hi, row.supp_hi, 1e-9) << row.buckets;
    EXPECT_NEAR(b.confidence_lo, row.conf_lo, 1e-4) << row.buckets;
    EXPECT_NEAR(b.confidence_hi, row.conf_hi, 1e-4) << row.buckets;
  }
}

TEST(ErrorBoundsTest, RelativeBoundsMatchPaperFormulas) {
  EXPECT_NEAR(RelativeSupportErrorBound(0.3, 100), 2.0 / 30.0, 1e-12);
  EXPECT_NEAR(RelativeConfidenceErrorBound(0.3, 100), 2.0 / 28.0, 1e-12);
  EXPECT_TRUE(std::isinf(RelativeConfidenceErrorBound(0.3, 5)));
}

TEST(ErrorBoundsTest, BoundsShrinkWithMoreBuckets) {
  double prev_width = 2.0;
  for (int m : {10, 50, 100, 500, 1000}) {
    const ApproxErrorBounds b = BucketApproximationBounds(0.30, 0.70, m);
    const double width = b.confidence_hi - b.confidence_lo;
    EXPECT_LT(width, prev_width);
    prev_width = width;
    EXPECT_LE(b.support_lo, 0.30);
    EXPECT_GE(b.support_hi, 0.30);
    EXPECT_LE(b.confidence_lo, 0.70);
    EXPECT_GE(b.confidence_hi, 0.70);
  }
}

}  // namespace
}  // namespace optrules::bucketing
