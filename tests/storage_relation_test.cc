// Unit tests for storage::Relation and CSV import/export.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "storage/csv.h"
#include "storage/relation.h"

namespace optrules::storage {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Relation SmallRelation() {
  Relation r(Schema::Synthetic(2, 1));
  const double rows[3][2] = {{1.5, -2.0}, {3.25, 4.0}, {-0.5, 0.0}};
  const uint8_t flags[3] = {1, 0, 1};
  for (int i = 0; i < 3; ++i) {
    r.AppendRow(rows[i], std::span<const uint8_t>(&flags[i], 1));
  }
  return r;
}

TEST(RelationTest, AppendAndAccess) {
  const Relation r = SmallRelation();
  EXPECT_EQ(r.NumRows(), 3);
  EXPECT_DOUBLE_EQ(r.NumericValue(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(r.NumericValue(1, 1), 4.0);
  EXPECT_TRUE(r.BooleanValue(0, 0));
  EXPECT_FALSE(r.BooleanValue(1, 0));
  EXPECT_EQ(r.NumericColumn(0).size(), 3u);
}

TEST(RelationTest, ColumnFillPath) {
  Relation r(Schema::Synthetic(1, 1));
  r.MutableNumericColumn(0) = {1.0, 2.0};
  r.MutableBooleanColumn(0) = {0, 1};
  r.SetRowCountAfterColumnFill(2);
  EXPECT_EQ(r.NumRows(), 2);
  EXPECT_TRUE(r.BooleanValue(1, 0));
}

TEST(RelationTest, EmptyRelation) {
  const Relation r{Schema::Synthetic(1, 1)};
  EXPECT_EQ(r.NumRows(), 0);
  EXPECT_TRUE(r.NumericColumn(0).empty());
}

TEST(CsvTest, RoundTrip) {
  const Relation original = SmallRelation();
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(original, path).ok());

  Result<Relation> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  const Relation& r = loaded.value();
  ASSERT_TRUE(r.schema() == original.schema());
  ASSERT_EQ(r.NumRows(), original.NumRows());
  for (int64_t row = 0; row < r.NumRows(); ++row) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(r.NumericValue(row, c),
                       original.NumericValue(row, c));
    }
    EXPECT_EQ(r.BooleanValue(row, 0), original.BooleanValue(row, 0));
  }
  std::remove(path.c_str());
}

TEST(CsvTest, ParsesYesNoBooleans) {
  const std::string path = TempPath("yesno.csv");
  {
    std::ofstream out(path);
    out << "x:numeric,flag:boolean\n1.0,yes\n2.0,no\n";
  }
  Result<Relation> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().BooleanValue(0, 0));
  EXPECT_FALSE(loaded.value().BooleanValue(1, 0));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadCsv("/nonexistent/dir/file.csv").status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, BadHeaderIsCorruption) {
  const std::string path = TempPath("badheader.csv");
  {
    std::ofstream out(path);
    out << "x\n1.0\n";
  }
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, BadKindIsCorruption) {
  const std::string path = TempPath("badkind.csv");
  {
    std::ofstream out(path);
    out << "x:string\nfoo\n";
  }
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, BadNumericCellIsCorruption) {
  const std::string path = TempPath("badnum.csv");
  {
    std::ofstream out(path);
    out << "x:numeric\nnot_a_number\n";
  }
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, BadBooleanCellIsCorruption) {
  const std::string path = TempPath("badbool.csv");
  {
    std::ofstream out(path);
    out << "b:boolean\nmaybe\n";
  }
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, FieldCountMismatchIsCorruption) {
  const std::string path = TempPath("fieldcount.csv");
  {
    std::ofstream out(path);
    out << "x:numeric,y:numeric\n1.0\n";
  }
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, EmptyFileIsCorruption) {
  const std::string path = TempPath("empty.csv");
  { std::ofstream out(path); }
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  {
    std::ofstream out(path);
    out << "x:numeric\n1.0\n\n2.0\n";
  }
  Result<Relation> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumRows(), 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace optrules::storage
