// Integration tests: full pipeline from generated relations through
// bucketing to mined rules.

#include <algorithm>

#include <gtest/gtest.h>

#include "bucketing/error_bounds.h"
#include "datagen/bank.h"
#include "datagen/correlation.h"
#include "datagen/retail.h"
#include "datagen/table_generator.h"
#include "rules/miner.h"

namespace optrules::rules {
namespace {

storage::Relation PlantedRelation(int64_t rows, uint64_t seed) {
  datagen::TableConfig config;
  config.num_rows = rows;
  config.num_numeric = 2;
  config.num_boolean = 2;
  datagen::PlantedRule rule;
  rule.numeric_attr = 0;
  rule.boolean_attr = 0;
  rule.lo = 300000.0;
  rule.hi = 500000.0;  // 20% of Uniform(0, 1e6)
  rule.prob_inside = 0.8;
  rule.prob_outside = 0.1;
  config.planted_rules.push_back(rule);
  Rng rng(seed);
  return datagen::GenerateTable(config, rng);
}

TEST(MinerTest, RecoversPlantedOptimizedConfidenceRule) {
  const storage::Relation relation = PlantedRelation(60000, 1);
  MinerOptions options;
  options.num_buckets = 200;
  options.min_support = 0.10;
  options.min_confidence = 0.5;
  Miner miner(&relation, options);
  Result<std::vector<MinedRule>> rules = miner.MinePair("num0", "bool0");
  ASSERT_TRUE(rules.ok());
  const MinedRule& confidence_rule = rules.value()[0];
  ASSERT_TRUE(confidence_rule.found);
  EXPECT_EQ(confidence_rule.kind, RuleKind::kOptimizedConfidence);
  // The mined range should sit inside the planted band (within bucket
  // granularity) and have confidence near 0.8.
  EXPECT_GT(confidence_rule.confidence, 0.7);
  EXPECT_GE(confidence_rule.range_lo, 300000.0 - 30000.0);
  EXPECT_LE(confidence_rule.range_hi, 500000.0 + 30000.0);
  EXPECT_GE(confidence_rule.support, 0.10);
}

TEST(MinerTest, RecoversPlantedOptimizedSupportRule) {
  const storage::Relation relation = PlantedRelation(60000, 2);
  MinerOptions options;
  options.num_buckets = 200;
  options.min_support = 0.05;
  options.min_confidence = 0.6;
  Miner miner(&relation, options);
  Result<std::vector<MinedRule>> rules = miner.MinePair("num0", "bool0");
  ASSERT_TRUE(rules.ok());
  const MinedRule& support_rule = rules.value()[1];
  ASSERT_TRUE(support_rule.found);
  EXPECT_EQ(support_rule.kind, RuleKind::kOptimizedSupport);
  EXPECT_GE(support_rule.confidence, 0.6);
  // Should capture roughly the planted band's support (20%).
  EXPECT_GT(support_rule.support, 0.12);
  EXPECT_LT(support_rule.support, 0.30);
}

TEST(MinerTest, ApproximationWithinErrorBounds) {
  // Compare the bucketized optimum against the finest-grained optimum and
  // check the Section 3.4 error band (with sampling slack).
  const storage::Relation relation = PlantedRelation(40000, 3);
  // "Exact": mine with one bucket per distinct-ish value.
  MinerOptions fine;
  fine.num_buckets = 5000;
  fine.min_support = 0.10;
  Miner fine_miner(&relation, fine);
  const MinedRule fine_rule =
      fine_miner.MinePair("num0", "bool0").value()[0];
  ASSERT_TRUE(fine_rule.found);

  MinerOptions coarse;
  coarse.num_buckets = 100;
  coarse.min_support = 0.10;
  Miner coarse_miner(&relation, coarse);
  const MinedRule coarse_rule =
      coarse_miner.MinePair("num0", "bool0").value()[0];
  ASSERT_TRUE(coarse_rule.found);

  const bucketing::ApproxErrorBounds bounds =
      bucketing::BucketApproximationBounds(fine_rule.support,
                                           fine_rule.confidence, 100);
  // Allow sampling-induced slack of one extra bucket on each side.
  const double slack = 2.0 / 100.0;
  EXPECT_GE(coarse_rule.confidence, bounds.confidence_lo - slack);
  EXPECT_GE(coarse_rule.support, bounds.support_lo - slack);
}

TEST(MinerTest, MineAllCoversEveryPair) {
  const storage::Relation relation = PlantedRelation(5000, 4);
  MinerOptions options;
  options.num_buckets = 50;
  Miner miner(&relation, options);
  const std::vector<MinedRule> all = miner.MineAll();
  // 2 numeric x 2 boolean x 2 kinds.
  EXPECT_EQ(all.size(), 8u);
  for (const MinedRule& rule : all) {
    EXPECT_FALSE(rule.numeric_attr.empty());
    EXPECT_FALSE(rule.boolean_attr.empty());
  }
}

TEST(MinerTest, UnknownAttributesAreNotFoundErrors) {
  const storage::Relation relation = PlantedRelation(100, 5);
  Miner miner(&relation, MinerOptions{});
  EXPECT_EQ(miner.MinePair("nope", "bool0").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(miner.MinePair("num0", "nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      miner.MineGeneralized("num0", {"nope"}, "bool0").status().code(),
      StatusCode::kNotFound);
  EXPECT_EQ(
      miner.MineMaximumAverageRange("num0", "nope", 0.1).status().code(),
      StatusCode::kNotFound);
}

TEST(MinerTest, DeterministicForSameSeed) {
  const storage::Relation relation = PlantedRelation(20000, 6);
  MinerOptions options;
  options.num_buckets = 100;
  options.seed = 777;
  Miner a(&relation, options);
  Miner b(&relation, options);
  const MinedRule rule_a = a.MinePair("num0", "bool0").value()[0];
  const MinedRule rule_b = b.MinePair("num0", "bool0").value()[0];
  EXPECT_EQ(rule_a.range_lo, rule_b.range_lo);
  EXPECT_EQ(rule_a.range_hi, rule_b.range_hi);
  EXPECT_EQ(rule_a.support_count, rule_b.support_count);
}

TEST(MinerTest, GeneralizedRuleRestrictsToCondition) {
  // Retail: (TotalSpend in I) ^ (Pizza ^ Coke) => Potato has much higher
  // confidence than without the condition.
  datagen::RetailConfig config;
  config.num_transactions = 60000;
  Rng rng(7);
  const storage::Relation retail = datagen::GenerateRetail(config, rng);
  MinerOptions options;
  options.num_buckets = 100;
  options.min_support = 0.01;
  options.min_confidence = 0.4;
  Miner miner(&retail, options);

  Result<std::vector<MinedRule>> generalized =
      miner.MineGeneralized("TotalSpend", {"Pizza", "Coke"}, "Potato");
  ASSERT_TRUE(generalized.ok());
  const MinedRule& conf_rule = generalized.value()[0];
  ASSERT_TRUE(conf_rule.found);
  EXPECT_EQ(conf_rule.presumptive_condition, "Pizza=yes ^ Coke=yes");
  EXPECT_GT(conf_rule.confidence, 0.45);

  Result<std::vector<MinedRule>> plain =
      miner.MinePair("TotalSpend", "Potato");
  ASSERT_TRUE(plain.ok());
  // Unconditioned support rule at the same confidence threshold finds
  // nothing or something with far less confidence at ample support.
  const MinedRule& plain_conf = plain.value()[0];
  if (plain_conf.found) {
    EXPECT_LT(plain_conf.confidence, conf_rule.confidence);
  }
}

TEST(MinerTest, GeneralizedRuleWithEmptyConditionMatchesPlain) {
  const storage::Relation relation = PlantedRelation(20000, 8);
  MinerOptions options;
  options.num_buckets = 100;
  Miner miner(&relation, options);
  const MinedRule plain = miner.MinePair("num0", "bool0").value()[0];
  const MinedRule general =
      miner.MineGeneralized("num0", {}, "bool0").value()[0];
  ASSERT_EQ(plain.found, general.found);
  // Same optimum statistics (bucket boundaries may differ slightly due to
  // independent sampling, so compare loosely).
  EXPECT_NEAR(plain.confidence, general.confidence, 0.05);
  EXPECT_NEAR(plain.support, general.support, 0.05);
}

TEST(MinerTest, BankAverageRangesFindRichBand) {
  datagen::BankConfig config;
  config.num_customers = 60000;
  Rng rng(9);
  const storage::Relation bank = datagen::GenerateBankCustomers(config, rng);
  MinerOptions options;
  options.num_buckets = 200;
  Miner miner(&bank, options);

  // Section 5, Example 5.2: max-average range of SavingAccount over
  // CheckingAccount with at least 10% support.
  Result<MinedAggregateRange> avg_range =
      miner.MineMaximumAverageRange("CheckingAccount", "SavingAccount", 0.1);
  ASSERT_TRUE(avg_range.ok());
  ASSERT_TRUE(avg_range.value().found);
  EXPECT_GE(avg_range.value().support, 0.1);
  // The rich checking band is [1000, 3000]; the mined range must overlap.
  EXPECT_LT(avg_range.value().range_lo, config.rich_checking_hi);
  EXPECT_GT(avg_range.value().range_hi, config.rich_checking_lo);
  EXPECT_GT(avg_range.value().average, config.base_saving_mean);

  // Example 5.3: max-support range with a high average threshold.
  Result<MinedAggregateRange> support_range = miner.MineMaximumSupportRange(
      "CheckingAccount", "SavingAccount", config.base_saving_mean * 1.2);
  ASSERT_TRUE(support_range.ok());
  ASSERT_TRUE(support_range.value().found);
  EXPECT_GE(support_range.value().average, config.base_saving_mean * 1.2);
}

class MinerBucketizerTest : public testing::TestWithParam<Bucketizer> {};

TEST_P(MinerBucketizerTest, AllStrategiesRecoverThePlantedRule) {
  const storage::Relation relation = PlantedRelation(40000, 77);
  MinerOptions options;
  options.num_buckets = 200;
  options.min_support = 0.10;
  options.bucketizer = GetParam();
  Miner miner(&relation, options);
  const MinedRule rule = miner.MinePair("num0", "bool0").value()[0];
  ASSERT_TRUE(rule.found);
  EXPECT_GT(rule.confidence, 0.7);
  EXPECT_GE(rule.range_lo, 300000.0 - 30000.0);
  EXPECT_LE(rule.range_hi, 500000.0 + 30000.0);
}

INSTANTIATE_TEST_SUITE_P(Strategies, MinerBucketizerTest,
                         testing::Values(Bucketizer::kSampling,
                                         Bucketizer::kGkSketch,
                                         Bucketizer::kExactSort));

TEST(MinerTest, ExactSortAndGkAreDeterministicAcrossSeeds) {
  // Unlike sampling, the exact and sketch bucketizers must ignore the
  // seed entirely.
  const storage::Relation relation = PlantedRelation(20000, 78);
  for (const Bucketizer bucketizer :
       {Bucketizer::kExactSort, Bucketizer::kGkSketch}) {
    MinerOptions options;
    options.num_buckets = 100;
    options.bucketizer = bucketizer;
    options.seed = 1;
    Miner a(&relation, options);
    options.seed = 999;
    Miner b(&relation, options);
    const MinedRule rule_a = a.MinePair("num0", "bool0").value()[0];
    const MinedRule rule_b = b.MinePair("num0", "bool0").value()[0];
    EXPECT_EQ(rule_a.range_lo, rule_b.range_lo);
    EXPECT_EQ(rule_a.support_count, rule_b.support_count);
  }
}

TEST(MinerTest, ToStringRendersRules) {
  const storage::Relation relation = PlantedRelation(20000, 10);
  MinerOptions options;
  options.num_buckets = 100;
  options.min_support = 0.1;
  Miner miner(&relation, options);
  const MinedRule rule = miner.MinePair("num0", "bool0").value()[0];
  ASSERT_TRUE(rule.found);
  const std::string text = rule.ToString();
  EXPECT_NE(text.find("num0"), std::string::npos);
  EXPECT_NE(text.find("bool0"), std::string::npos);
  EXPECT_NE(text.find("support"), std::string::npos);

  MinedRule missing;
  missing.numeric_attr = "a";
  missing.boolean_attr = "b";
  EXPECT_NE(missing.ToString().find("no ample range"), std::string::npos);
}

}  // namespace
}  // namespace optrules::rules
