// Tests for the Section 5 average-operator ranges.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rules/average_range.h"
#include "rules/naive.h"

namespace optrules::rules {
namespace {

struct Instance {
  std::vector<int64_t> u;
  std::vector<double> v;
  int64_t total = 0;
};

Instance RandomInstance(int m, int64_t max_u, uint64_t seed) {
  Rng rng(seed);
  Instance instance;
  instance.u.resize(static_cast<size_t>(m));
  instance.v.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    instance.u[static_cast<size_t>(i)] = rng.NextInt(1, max_u);
    // Per-bucket sums, possibly negative (e.g. overdrawn balances).
    instance.v[static_cast<size_t>(i)] =
        static_cast<double>(rng.NextInt(-20, 100)) *
        static_cast<double>(instance.u[static_cast<size_t>(i)]);
    instance.total += instance.u[static_cast<size_t>(i)];
  }
  return instance;
}

TEST(MaximumAverageRangeTest, PicksRichBand) {
  // Buckets of 10 tuples; middle band has average 50, elsewhere 10.
  const std::vector<int64_t> u = {10, 10, 10, 10};
  const std::vector<double> v = {100.0, 500.0, 500.0, 100.0};
  const RangeAggregate range = MaximumAverageRange(u, v, 20);
  ASSERT_TRUE(range.found);
  EXPECT_EQ(range.s, 1);
  EXPECT_EQ(range.t, 2);
  EXPECT_DOUBLE_EQ(range.average, 50.0);
  EXPECT_EQ(range.support_count, 20);
}

TEST(MaximumAverageRangeTest, SupportForcesDilution) {
  const std::vector<int64_t> u = {10, 10, 10, 10};
  const std::vector<double> v = {100.0, 500.0, 500.0, 100.0};
  const RangeAggregate range = MaximumAverageRange(u, v, 30);
  ASSERT_TRUE(range.found);
  EXPECT_EQ(range.support_count, 30);
  EXPECT_DOUBLE_EQ(range.average, 1100.0 / 30.0);
}

TEST(MaximumAverageRangeTest, InfeasibleSupport) {
  const std::vector<int64_t> u = {5};
  const std::vector<double> v = {10.0};
  EXPECT_FALSE(MaximumAverageRange(u, v, 6).found);
}

TEST(MaximumSupportRangeTest, ThresholdBelowGlobalAverageIsTrivial) {
  // Global average is 30; threshold 10 makes the whole domain valid (the
  // paper's remark after Definition 5.3).
  const std::vector<int64_t> u = {10, 10};
  const std::vector<double> v = {100.0, 500.0};
  const RangeAggregate range = MaximumSupportRange(u, v, 10.0);
  ASSERT_TRUE(range.found);
  EXPECT_EQ(range.support_count, 20);
}

TEST(MaximumSupportRangeTest, HighThresholdSelectsRichBandOnly) {
  const std::vector<int64_t> u = {10, 10, 10};
  const std::vector<double> v = {100.0, 500.0, 100.0};
  const RangeAggregate range = MaximumSupportRange(u, v, 40.0);
  ASSERT_TRUE(range.found);
  EXPECT_EQ(range.s, 1);
  EXPECT_EQ(range.t, 1);
}

TEST(MaximumSupportRangeTest, NoValidRange) {
  const std::vector<int64_t> u = {10, 10};
  const std::vector<double> v = {100.0, 200.0};
  EXPECT_FALSE(MaximumSupportRange(u, v, 50.0).found);
}

class AveragePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(AveragePropertyTest, MaxAverageMatchesNaive) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int m = 2 + static_cast<int>(rng.NextBounded(60));
  const Instance instance = RandomInstance(m, 10, seed * 31 + 7);
  const int64_t min_support = 1 + rng.NextInt(0, instance.total - 1);
  const RangeAggregate fast =
      MaximumAverageRange(instance.u, instance.v, min_support);
  const RangeAggregate naive =
      NaiveMaximumAverageRange(instance.u, instance.v, min_support);
  ASSERT_EQ(fast.found, naive.found);
  if (!fast.found) return;
  EXPECT_NEAR(fast.average, naive.average, 1e-9 * (1.0 + std::abs(
      naive.average)))
      << "m=" << m << " min_support=" << min_support;
  EXPECT_GE(fast.support_count, min_support);
}

TEST_P(AveragePropertyTest, MaxSupportMatchesNaive) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0xabcdef);
  const int m = 2 + static_cast<int>(rng.NextBounded(60));
  const Instance instance = RandomInstance(m, 10, seed * 17 + 3);
  const double threshold = rng.NextUniform(-10.0, 90.0);
  const RangeAggregate fast =
      MaximumSupportRange(instance.u, instance.v, threshold);
  const RangeAggregate naive =
      NaiveMaximumSupportRange(instance.u, instance.v, threshold);
  ASSERT_EQ(fast.found, naive.found) << "threshold " << threshold;
  if (!fast.found) return;
  EXPECT_EQ(fast.support_count, naive.support_count)
      << "m=" << m << " threshold=" << threshold;
  // The returned range must satisfy the constraint (small fp slack).
  EXPECT_GE(fast.average,
            threshold - 1e-9 * (1.0 + std::abs(threshold)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AveragePropertyTest,
                         testing::Range(uint64_t{1}, uint64_t{50}));

}  // namespace
}  // namespace optrules::rules
