// Differential fuzzing of the O(M) optimizers against the exhaustive
// oracles, over adversarial bucket-array families where ties and
// degenerate hulls are common: unit buckets, constant confidence,
// monotone ramps, alternating blocks, plateau-heavy arrays, and wide
// random mixes. This is the library's central correctness argument, so it
// gets its own deep sweep beyond the per-module property tests.

#include <vector>

#include <gtest/gtest.h>

#include "common/ratio.h"
#include "common/rng.h"
#include "rules/naive.h"
#include "rules/optimized_confidence.h"
#include "rules/optimized_support.h"

namespace optrules::rules {
namespace {

struct Instance {
  std::vector<int64_t> u;
  std::vector<int64_t> v;
  int64_t total = 0;
};

enum class Family {
  kUnitBuckets,    // u_i = 1, v_i in {0, 1}: maximal tie density
  kConstantRate,   // v_i proportional to u_i: every range same confidence
  kMonotoneRamp,   // confidence ramps up across buckets
  kAlternating,    // blocks of all-hit / all-miss buckets
  kPlateaus,       // long runs of identical (u, v) pairs
  kRandomWide,     // u_i in [1, 1000], v_i uniform
};

Instance MakeInstance(Family family, int m, Rng& rng) {
  Instance instance;
  instance.u.resize(static_cast<size_t>(m));
  instance.v.resize(static_cast<size_t>(m));
  int64_t plateau_u = 1;
  int64_t plateau_v = 0;
  for (int i = 0; i < m; ++i) {
    int64_t u = 1;
    int64_t v = 0;
    switch (family) {
      case Family::kUnitBuckets:
        u = 1;
        v = rng.NextBernoulli(0.5) ? 1 : 0;
        break;
      case Family::kConstantRate:
        u = rng.NextInt(1, 6) * 2;
        v = u / 2;  // exactly 50% everywhere
        break;
      case Family::kMonotoneRamp:
        u = 10;
        v = (10 * i) / (m > 1 ? m - 1 : 1);
        break;
      case Family::kAlternating: {
        const bool hot = (i / 3) % 2 == 0;
        u = rng.NextInt(1, 5);
        v = hot ? u : 0;
        break;
      }
      case Family::kPlateaus:
        if (i % 7 == 0) {
          plateau_u = rng.NextInt(1, 8);
          plateau_v = rng.NextInt(0, plateau_u);
        }
        u = plateau_u;
        v = plateau_v;
        break;
      case Family::kRandomWide:
        u = rng.NextInt(1, 1000);
        v = rng.NextInt(0, u);
        break;
    }
    instance.u[static_cast<size_t>(i)] = u;
    instance.v[static_cast<size_t>(i)] = v;
    instance.total += u;
  }
  return instance;
}

bool SameConfidence(int64_t h1, int64_t s1, int64_t h2, int64_t s2) {
  return static_cast<__int128>(h1) * s2 == static_cast<__int128>(h2) * s1;
}

class DifferentialFuzzTest : public testing::TestWithParam<Family> {};

TEST_P(DifferentialFuzzTest, OptimizedConfidenceAgreesWithOracle) {
  const Family family = GetParam();
  Rng rng(static_cast<uint64_t>(family) * 1000 + 17);
  for (int round = 0; round < 120; ++round) {
    const int m = 1 + static_cast<int>(rng.NextBounded(60));
    const Instance instance = MakeInstance(family, m, rng);
    // Support thresholds spanning trivial to infeasible.
    const int64_t min_support =
        rng.NextInt(0, instance.total + 2);
    const RangeRule fast = OptimizedConfidenceRule(
        instance.u, instance.v, instance.total, min_support);
    const RangeRule naive = NaiveOptimizedConfidenceRule(
        instance.u, instance.v, instance.total, min_support);
    ASSERT_EQ(fast.found, naive.found)
        << "family " << static_cast<int>(family) << " round " << round;
    if (!fast.found) continue;
    ASSERT_TRUE(SameConfidence(fast.hit_count, fast.support_count,
                               naive.hit_count, naive.support_count))
        << "family " << static_cast<int>(family) << " round " << round
        << " m " << m << " minsup " << min_support;
    ASSERT_EQ(fast.support_count, naive.support_count)
        << "family " << static_cast<int>(family) << " round " << round;
  }
}

TEST_P(DifferentialFuzzTest, OptimizedSupportAgreesWithOracle) {
  const Family family = GetParam();
  Rng rng(static_cast<uint64_t>(family) * 1000 + 71);
  const Ratio thresholds[] = {Ratio(0, 1),   Ratio(1, 10), Ratio(1, 3),
                              Ratio(1, 2),   Ratio(2, 3),  Ratio(9, 10),
                              Ratio(1, 1)};
  for (int round = 0; round < 120; ++round) {
    const int m = 1 + static_cast<int>(rng.NextBounded(60));
    const Instance instance = MakeInstance(family, m, rng);
    const Ratio theta =
        thresholds[rng.NextBounded(std::size(thresholds))];
    const RangeRule fast = OptimizedSupportRule(instance.u, instance.v,
                                                instance.total, theta);
    const RangeRule naive = NaiveOptimizedSupportRule(
        instance.u, instance.v, instance.total, theta);
    ASSERT_EQ(fast.found, naive.found)
        << "family " << static_cast<int>(family) << " round " << round;
    if (!fast.found) continue;
    ASSERT_EQ(fast.support_count, naive.support_count)
        << "family " << static_cast<int>(family) << " round " << round
        << " m " << m << " theta " << theta.ToString();
    ASSERT_TRUE(theta.LessOrEqualTo(fast.hit_count, fast.support_count));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DifferentialFuzzTest,
    testing::Values(Family::kUnitBuckets, Family::kConstantRate,
                    Family::kMonotoneRamp, Family::kAlternating,
                    Family::kPlateaus, Family::kRandomWide));

// Cross-invariant: the two optimized rules bound each other. If the
// optimized-confidence rule at min support S has confidence C, then the
// optimized-support rule at threshold C has support >= S.
TEST(DifferentialFuzzTest, DualityBetweenTheTwoOptimizations) {
  Rng rng(4242);
  for (int round = 0; round < 200; ++round) {
    const int m = 2 + static_cast<int>(rng.NextBounded(40));
    const Instance instance = MakeInstance(Family::kRandomWide, m, rng);
    const int64_t min_support = 1 + rng.NextInt(0, instance.total - 1);
    const RangeRule conf_rule = OptimizedConfidenceRule(
        instance.u, instance.v, instance.total, min_support);
    if (!conf_rule.found || conf_rule.support_count == 0) continue;
    const Ratio achieved(conf_rule.hit_count, conf_rule.support_count);
    const RangeRule supp_rule = OptimizedSupportRule(
        instance.u, instance.v, instance.total, achieved);
    ASSERT_TRUE(supp_rule.found) << "round " << round;
    EXPECT_GE(supp_rule.support_count, min_support) << "round " << round;
    EXPECT_GE(supp_rule.support_count, conf_rule.support_count)
        << "round " << round;
  }
}

}  // namespace
}  // namespace optrules::rules
