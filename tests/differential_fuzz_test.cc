// Differential fuzzing in three layers. First, the O(M) optimizers
// against the exhaustive oracles, over adversarial bucket-array families
// where ties and degenerate hulls are common: unit buckets, constant
// confidence, monotone ramps, alternating blocks, plateau-heavy arrays,
// and wide random mixes. Second, the one-scan MiningEngine against the
// legacy per-query Miner end to end, over randomized NaN-laden relations
// (plain, generalized, and aggregate queries) and over disk-resident
// paged files -- the library's central correctness argument, so it gets
// its own deep sweep beyond the per-module property tests. Third, the
// two-dimensional layer: grid channels against the row-at-a-time
// region::BuildGrid reference (random rectangular grids, NaN rates, and
// schemas; relations AND paged files, synchronous and double-buffered)
// and engine region mining against Miner::MineOptimizedRegion bit for
// bit.
//
// Every fuzz stream honors OPTRULES_FUZZ_SEED (see fuzz_seed.h).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/ratio.h"
#include "common/rng.h"
#include "bucketing/parallel_count.h"
#include "bucketing/simd_kernels.h"
#include "bucketing/sort_bucketizer.h"
#include "common/thread_pool.h"
#include "datagen/table_generator.h"
#include "dist/coordinator.h"
#include "dist/fault_injection.h"
#include "dist/partitioned_table.h"
#include "dist/scan_worker.h"
#include "fuzz_seed.h"
#include "region/grid.h"
#include "rules/miner.h"
#include "rules/naive.h"
#include "rules/optimized_confidence.h"
#include "rules/optimized_support.h"
#include "storage/buffer_pool.h"
#include "storage/columnar_batch.h"
#include "storage/paged_file.h"

namespace optrules::rules {
namespace {

using testfuzz::FuzzSeed;

/// Alternates the on-disk format across fuzz rounds so every paged-file
/// sweep covers columnar v2 (auto and tiny multi-page geometries) AND the
/// legacy row-major v1 layout with the same data.
storage::PagedFileWriterOptions FuzzFileFormat(int round) {
  storage::PagedFileWriterOptions options;
  if (round % 2 == 1) {
    options.format = storage::PagedFileFormat::kRowMajorV1;
  } else if (round % 4 == 2) {
    options.rows_per_page = 64;  // force multiple pages + a partial tail
  }
  // Zone maps come and go across rounds: every reader must accept
  // trailer-less v2 files, and pruning may only ever be an optimization.
  options.zone_maps = round % 3 != 0;
  return options;
}

/// Rotates the page-cache configuration across paged fuzz rounds: the
/// unpooled bypass reference path, a deliberately thrashing tiny pool,
/// and a holds-everything large pool. The pool (when any) must outlive
/// every source opened against it.
std::unique_ptr<storage::BufferPool> FuzzPool(int round) {
  switch (round % 3) {
    case 0:
      return nullptr;  // bypass: the uncached direct read path, no pruning
    case 1:
      return std::make_unique<storage::BufferPool>(size_t{1} << 14);
    default:
      return std::make_unique<storage::BufferPool>(
          storage::kDefaultBufferPoolBytes);
  }
}

struct Instance {
  std::vector<int64_t> u;
  std::vector<int64_t> v;
  int64_t total = 0;
};

enum class Family {
  kUnitBuckets,    // u_i = 1, v_i in {0, 1}: maximal tie density
  kConstantRate,   // v_i proportional to u_i: every range same confidence
  kMonotoneRamp,   // confidence ramps up across buckets
  kAlternating,    // blocks of all-hit / all-miss buckets
  kPlateaus,       // long runs of identical (u, v) pairs
  kRandomWide,     // u_i in [1, 1000], v_i uniform
};

Instance MakeInstance(Family family, int m, Rng& rng) {
  Instance instance;
  instance.u.resize(static_cast<size_t>(m));
  instance.v.resize(static_cast<size_t>(m));
  int64_t plateau_u = 1;
  int64_t plateau_v = 0;
  for (int i = 0; i < m; ++i) {
    int64_t u = 1;
    int64_t v = 0;
    switch (family) {
      case Family::kUnitBuckets:
        u = 1;
        v = rng.NextBernoulli(0.5) ? 1 : 0;
        break;
      case Family::kConstantRate:
        u = rng.NextInt(1, 6) * 2;
        v = u / 2;  // exactly 50% everywhere
        break;
      case Family::kMonotoneRamp:
        u = 10;
        v = (10 * i) / (m > 1 ? m - 1 : 1);
        break;
      case Family::kAlternating: {
        const bool hot = (i / 3) % 2 == 0;
        u = rng.NextInt(1, 5);
        v = hot ? u : 0;
        break;
      }
      case Family::kPlateaus:
        if (i % 7 == 0) {
          plateau_u = rng.NextInt(1, 8);
          plateau_v = rng.NextInt(0, plateau_u);
        }
        u = plateau_u;
        v = plateau_v;
        break;
      case Family::kRandomWide:
        u = rng.NextInt(1, 1000);
        v = rng.NextInt(0, u);
        break;
    }
    instance.u[static_cast<size_t>(i)] = u;
    instance.v[static_cast<size_t>(i)] = v;
    instance.total += u;
  }
  return instance;
}

bool SameConfidence(int64_t h1, int64_t s1, int64_t h2, int64_t s2) {
  return static_cast<__int128>(h1) * s2 == static_cast<__int128>(h2) * s1;
}

class DifferentialFuzzTest : public testing::TestWithParam<Family> {};

TEST_P(DifferentialFuzzTest, OptimizedConfidenceAgreesWithOracle) {
  const Family family = GetParam();
  Rng rng(FuzzSeed(static_cast<uint64_t>(family) * 1000 + 17));
  for (int round = 0; round < 120; ++round) {
    const int m = 1 + static_cast<int>(rng.NextBounded(60));
    const Instance instance = MakeInstance(family, m, rng);
    // Support thresholds spanning trivial to infeasible.
    const int64_t min_support =
        rng.NextInt(0, instance.total + 2);
    const RangeRule fast = OptimizedConfidenceRule(
        instance.u, instance.v, instance.total, min_support);
    const RangeRule naive = NaiveOptimizedConfidenceRule(
        instance.u, instance.v, instance.total, min_support);
    ASSERT_EQ(fast.found, naive.found)
        << "family " << static_cast<int>(family) << " round " << round;
    if (!fast.found) continue;
    ASSERT_TRUE(SameConfidence(fast.hit_count, fast.support_count,
                               naive.hit_count, naive.support_count))
        << "family " << static_cast<int>(family) << " round " << round
        << " m " << m << " minsup " << min_support;
    ASSERT_EQ(fast.support_count, naive.support_count)
        << "family " << static_cast<int>(family) << " round " << round;
  }
}

TEST_P(DifferentialFuzzTest, OptimizedSupportAgreesWithOracle) {
  const Family family = GetParam();
  Rng rng(FuzzSeed(static_cast<uint64_t>(family) * 1000 + 71));
  const Ratio thresholds[] = {Ratio(0, 1),   Ratio(1, 10), Ratio(1, 3),
                              Ratio(1, 2),   Ratio(2, 3),  Ratio(9, 10),
                              Ratio(1, 1)};
  for (int round = 0; round < 120; ++round) {
    const int m = 1 + static_cast<int>(rng.NextBounded(60));
    const Instance instance = MakeInstance(family, m, rng);
    const Ratio theta =
        thresholds[rng.NextBounded(std::size(thresholds))];
    const RangeRule fast = OptimizedSupportRule(instance.u, instance.v,
                                                instance.total, theta);
    const RangeRule naive = NaiveOptimizedSupportRule(
        instance.u, instance.v, instance.total, theta);
    ASSERT_EQ(fast.found, naive.found)
        << "family " << static_cast<int>(family) << " round " << round;
    if (!fast.found) continue;
    ASSERT_EQ(fast.support_count, naive.support_count)
        << "family " << static_cast<int>(family) << " round " << round
        << " m " << m << " theta " << theta.ToString();
    ASSERT_TRUE(theta.LessOrEqualTo(fast.hit_count, fast.support_count));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DifferentialFuzzTest,
    testing::Values(Family::kUnitBuckets, Family::kConstantRate,
                    Family::kMonotoneRamp, Family::kAlternating,
                    Family::kPlateaus, Family::kRandomWide));

// Cross-invariant: the two optimized rules bound each other. If the
// optimized-confidence rule at min support S has confidence C, then the
// optimized-support rule at threshold C has support >= S.
TEST(DifferentialFuzzTest, DualityBetweenTheTwoOptimizations) {
  Rng rng(FuzzSeed(4242));
  for (int round = 0; round < 200; ++round) {
    const int m = 2 + static_cast<int>(rng.NextBounded(40));
    const Instance instance = MakeInstance(Family::kRandomWide, m, rng);
    const int64_t min_support = 1 + rng.NextInt(0, instance.total - 1);
    const RangeRule conf_rule = OptimizedConfidenceRule(
        instance.u, instance.v, instance.total, min_support);
    if (!conf_rule.found || conf_rule.support_count == 0) continue;
    const Ratio achieved(conf_rule.hit_count, conf_rule.support_count);
    const RangeRule supp_rule = OptimizedSupportRule(
        instance.u, instance.v, instance.total, achieved);
    ASSERT_TRUE(supp_rule.found) << "round " << round;
    EXPECT_GE(supp_rule.support_count, min_support) << "round " << round;
    EXPECT_GE(supp_rule.support_count, conf_rule.support_count)
        << "round " << round;
  }
}

// ------------------------- engine vs legacy end-to-end differential ----

/// Random table with NaNs injected into every numeric column at a random
/// per-column rate (0 .. ~20%), so empty buckets, NaN-only stretches, and
/// NaN-poisoned aggregate targets all occur.
storage::Relation RandomNanRelation(Rng& rng) {
  datagen::TableConfig config;
  config.num_rows = 500 + static_cast<int64_t>(rng.NextBounded(2500));
  config.num_numeric = 2 + static_cast<int>(rng.NextBounded(3));
  config.num_boolean = 1 + static_cast<int>(rng.NextBounded(3));
  storage::Relation relation = datagen::GenerateTable(config, rng);
  const double nan = std::nan("");
  for (int a = 0; a < config.num_numeric; ++a) {
    const double rate = 0.2 * rng.NextDouble();
    std::vector<double>& column = relation.MutableNumericColumn(a);
    for (double& value : column) {
      if (rng.NextBernoulli(rate)) value = nan;
    }
  }
  return relation;
}

void ExpectIdenticalRules(const std::vector<MinedRule>& a,
                          const std::vector<MinedRule>& b, int round) {
  ASSERT_EQ(a.size(), b.size()) << "round " << round;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].found, b[i].found) << "round " << round << " rule " << i;
    ASSERT_EQ(a[i].range_lo, b[i].range_lo) << "round " << round;
    ASSERT_EQ(a[i].range_hi, b[i].range_hi) << "round " << round;
    ASSERT_EQ(a[i].support_count, b[i].support_count) << "round " << round;
    ASSERT_EQ(a[i].hit_count, b[i].hit_count) << "round " << round;
    ASSERT_EQ(a[i].support, b[i].support) << "round " << round;
    ASSERT_EQ(a[i].confidence, b[i].confidence) << "round " << round;
    ASSERT_EQ(a[i].presumptive_condition, b[i].presumptive_condition)
        << "round " << round;
  }
}

void ExpectIdenticalAggregate(const MinedAggregateRange& a,
                              const MinedAggregateRange& b, int round) {
  ASSERT_EQ(a.found, b.found) << "round " << round;
  ASSERT_EQ(a.range_lo, b.range_lo) << "round " << round;
  ASSERT_EQ(a.range_hi, b.range_hi) << "round " << round;
  ASSERT_EQ(a.support_count, b.support_count) << "round " << round;
  ASSERT_EQ(a.support, b.support) << "round " << round;
  if (std::isnan(a.average) || std::isnan(b.average)) {
    ASSERT_TRUE(std::isnan(a.average) && std::isnan(b.average))
        << "round " << round;
  } else {
    ASSERT_EQ(a.average, b.average) << "round " << round;
  }
}

TEST(EngineDifferentialFuzzTest, NanLadenRelationsAllQueryKinds) {
  Rng rng(FuzzSeed(90210));
  for (int round = 0; round < 20; ++round) {
    const storage::Relation relation = RandomNanRelation(rng);
    const storage::Schema& schema = relation.schema();
    MinerOptions options;
    options.num_buckets = 20 + static_cast<int>(rng.NextBounded(60));
    options.sample_per_bucket = 8;
    options.min_support = 0.02 + 0.2 * rng.NextDouble();
    options.min_confidence = 0.3 + 0.5 * rng.NextDouble();
    options.seed = 1000 + static_cast<uint64_t>(round);

    Miner legacy(&relation, options);
    MiningEngine engine(&relation, options);
    ExpectIdenticalRules(engine.MineAllPairs(), legacy.MineAll(), round);

    // A random generalized query: condition = random Boolean subset.
    std::vector<std::string> condition;
    for (int b = 0; b < schema.num_boolean(); ++b) {
      if (rng.NextBernoulli(0.5)) condition.push_back(schema.BooleanName(b));
    }
    const std::string numeric =
        schema.NumericName(static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(schema.num_numeric()))));
    const std::string objective =
        schema.BooleanName(static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(schema.num_boolean()))));
    auto engine_generalized =
        engine.MineGeneralized(numeric, condition, objective);
    auto legacy_generalized =
        legacy.MineGeneralized(numeric, condition, objective);
    ASSERT_TRUE(engine_generalized.ok());
    ASSERT_TRUE(legacy_generalized.ok());
    ExpectIdenticalRules(engine_generalized.value(),
                         legacy_generalized.value(), round);

    // A random aggregate pair (range and target may coincide).
    const std::string range_attr =
        schema.NumericName(static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(schema.num_numeric()))));
    const std::string target_attr =
        schema.NumericName(static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(schema.num_numeric()))));
    const double min_support = 0.05 + 0.3 * rng.NextDouble();
    auto engine_average =
        engine.MineMaximumAverageRange(range_attr, target_attr, min_support);
    auto legacy_average =
        legacy.MineMaximumAverageRange(range_attr, target_attr, min_support);
    ASSERT_TRUE(engine_average.ok());
    ASSERT_TRUE(legacy_average.ok());
    ExpectIdenticalAggregate(engine_average.value(), legacy_average.value(),
                             round);
    const double min_average = 2e5 + 6e5 * rng.NextDouble();
    auto engine_support =
        engine.MineMaximumSupportRange(range_attr, target_attr, min_average);
    auto legacy_support =
        legacy.MineMaximumSupportRange(range_attr, target_attr, min_average);
    ASSERT_TRUE(engine_support.ok());
    ASSERT_TRUE(legacy_support.ok());
    ExpectIdenticalAggregate(engine_support.value(), legacy_support.value(),
                             round);
  }
}

TEST(EngineDifferentialFuzzTest, NanLadenPagedFilesMatchInMemoryEngine) {
  // The disk path exercises the page -> column transpose and NaN byte
  // round-tripping; GK boundaries are deterministic so file and memory
  // engines must agree bit for bit.
  Rng rng(FuzzSeed(60601));
  for (int round = 0; round < 6; ++round) {
    const storage::Relation relation = RandomNanRelation(rng);
    MinerOptions options;
    options.num_buckets = 16 + static_cast<int>(rng.NextBounded(48));
    options.bucketizer = Bucketizer::kGkSketch;
    const std::string path = testing::TempDir() + "/fuzz_nan_" +
                             std::to_string(round) + ".optr";
    ASSERT_TRUE(
        storage::WriteRelationToFile(relation, path, FuzzFileFormat(round))
            .ok());
    const std::unique_ptr<storage::BufferPool> pool = FuzzPool(round);
    auto source_or = storage::PagedFileBatchSource::Open(
        path, 128 + static_cast<int64_t>(rng.NextBounded(900)),
        storage::PagedReadMode::kDoubleBuffered, pool.get());
    ASSERT_TRUE(source_or.ok());

    MiningEngine memory_engine(&relation, options);
    MiningEngine file_engine(source_or.value().get(), relation.schema(),
                             options);
    for (MiningEngine* engine : {&memory_engine, &file_engine}) {
      ASSERT_TRUE(engine->RequestGeneralized({}).ok());
      ASSERT_TRUE(
          engine->RequestAverageTarget(relation.schema().NumericName(0))
              .ok());
    }
    ExpectIdenticalRules(file_engine.MineAllPairs(),
                         memory_engine.MineAllPairs(), round);
    auto file_generalized = file_engine.MineGeneralized(
        relation.schema().NumericName(0), {},
        relation.schema().BooleanName(0));
    auto memory_generalized = memory_engine.MineGeneralized(
        relation.schema().NumericName(0), {},
        relation.schema().BooleanName(0));
    ASSERT_TRUE(file_generalized.ok());
    ASSERT_TRUE(memory_generalized.ok());
    ExpectIdenticalRules(file_generalized.value(),
                         memory_generalized.value(), round);
    auto file_average = file_engine.MineMaximumAverageRange(
        relation.schema().NumericName(1), relation.schema().NumericName(0),
        0.1);
    auto memory_average = memory_engine.MineMaximumAverageRange(
        relation.schema().NumericName(1), relation.schema().NumericName(0),
        0.1);
    ASSERT_TRUE(file_average.ok());
    ASSERT_TRUE(memory_average.ok());
    ExpectIdenticalAggregate(file_average.value(), memory_average.value(),
                             round);
    ASSERT_EQ(file_engine.counting_scans(), 1) << round;
    std::remove(path.c_str());
  }
}

TEST(EngineDifferentialFuzzTest, ForcedScalarReferenceArmMatchesSimd) {
  // OPTRULES_FORCE_SCALAR pins both the scalar locate kernels and the
  // reference (overlay + guarded) accumulation arm; a full mining session
  // must be bit-identical between that reference path and the dispatched
  // SIMD path. GK boundaries are deterministic, so any divergence is a
  // kernel bug, not sampling noise.
  struct ScopedForceScalar {
    explicit ScopedForceScalar(bool force) {
      bucketing::simd::SetForceScalarForTest(force);
    }
    ~ScopedForceScalar() { bucketing::simd::SetForceScalarForTest(false); }
  };
  Rng rng(FuzzSeed(51515));
  for (int round = 0; round < 5; ++round) {
    const storage::Relation relation = RandomNanRelation(rng);
    MinerOptions options;
    options.num_buckets = 16 + static_cast<int>(rng.NextBounded(48));
    options.bucketizer = Bucketizer::kGkSketch;
    const std::string average_target = relation.schema().NumericName(0);
    const std::string average_range = relation.schema().NumericName(1);

    std::vector<MinedRule> simd_rules;
    Result<MinedAggregateRange> simd_average =
        Status::InvalidArgument("unset");
    {
      ScopedForceScalar force(false);
      MiningEngine engine(&relation, options);
      ASSERT_TRUE(engine.RequestAverageTarget(average_target).ok());
      simd_rules = engine.MineAllPairs();
      simd_average =
          engine.MineMaximumAverageRange(average_range, average_target, 0.1);
    }
    std::vector<MinedRule> scalar_rules;
    Result<MinedAggregateRange> scalar_average =
        Status::InvalidArgument("unset");
    {
      ScopedForceScalar force(true);
      MiningEngine engine(&relation, options);
      ASSERT_TRUE(engine.RequestAverageTarget(average_target).ok());
      scalar_rules = engine.MineAllPairs();
      scalar_average =
          engine.MineMaximumAverageRange(average_range, average_target, 0.1);
    }
    ExpectIdenticalRules(simd_rules, scalar_rules, round);
    ASSERT_TRUE(simd_average.ok());
    ASSERT_TRUE(scalar_average.ok());
    ExpectIdenticalAggregate(simd_average.value(), scalar_average.value(),
                             round);
  }
}

TEST(EngineDifferentialFuzzTest, WideSchemaRoundTripsThroughPagedFiles) {
  // Randomized wide schemas (hundreds of numeric attributes, i.e. row
  // widths past the old 4096-byte AppendRow staging array) must survive
  // the disk round trip bit for bit, NaNs included.
  Rng rng(FuzzSeed(77077));
  for (int round = 0; round < 4; ++round) {
    const int num_numeric = 510 + static_cast<int>(rng.NextBounded(300));
    const int num_boolean = 1 + static_cast<int>(rng.NextBounded(8));
    const int64_t rows = 16 + static_cast<int64_t>(rng.NextBounded(48));
    const storage::Schema schema =
        storage::Schema::Synthetic(num_numeric, num_boolean);
    storage::Relation relation(schema);
    std::vector<double> numeric(static_cast<size_t>(num_numeric));
    std::vector<uint8_t> boolean(static_cast<size_t>(num_boolean));
    for (int64_t row = 0; row < rows; ++row) {
      for (double& value : numeric) {
        value = rng.NextBernoulli(0.05) ? std::nan("")
                                        : rng.NextDouble() * 1e6 - 5e5;
      }
      for (uint8_t& value : boolean) {
        value = rng.NextBernoulli(0.5) ? 1 : 0;
      }
      relation.AppendRow(numeric, boolean);
    }
    const std::string path = testing::TempDir() + "/fuzz_wide_" +
                             std::to_string(round) + ".optr";
    ASSERT_TRUE(
        storage::WriteRelationToFile(relation, path, FuzzFileFormat(round))
            .ok());
    auto read_or = storage::ReadRelationFromFile(path, schema);
    ASSERT_TRUE(read_or.ok());
    const storage::Relation& read = read_or.value();
    ASSERT_EQ(read.NumRows(), rows) << round;
    for (int64_t row = 0; row < rows; ++row) {
      for (int a = 0; a < num_numeric; ++a) {
        const double expected = relation.NumericValue(row, a);
        const double got = read.NumericValue(row, a);
        if (std::isnan(expected)) {
          ASSERT_TRUE(std::isnan(got)) << round;
        } else {
          ASSERT_EQ(got, expected) << round;
        }
      }
      for (int b = 0; b < num_boolean; ++b) {
        ASSERT_EQ(read.BooleanValue(row, b), relation.BooleanValue(row, b))
            << round;
      }
    }
    std::remove(path.c_str());
  }
}

// ----------------------- two-dimensional grid / region differential ----

void ExpectIdenticalRegionRule(const region::RegionRule& a,
                               const region::RegionRule& b, int round) {
  ASSERT_EQ(a.found, b.found) << "round " << round;
  ASSERT_EQ(a.x1, b.x1) << "round " << round;
  ASSERT_EQ(a.x2, b.x2) << "round " << round;
  ASSERT_EQ(a.y1, b.y1) << "round " << round;
  ASSERT_EQ(a.y2, b.y2) << "round " << round;
  ASSERT_EQ(a.support_count, b.support_count) << "round " << round;
  ASSERT_EQ(a.hit_count, b.hit_count) << "round " << round;
  ASSERT_EQ(a.support, b.support) << "round " << round;
  ASSERT_EQ(a.confidence, b.confidence) << "round " << round;
}

void ExpectIdenticalRegion(const Result<MinedRegion>& a_or,
                           const Result<MinedRegion>& b_or, int round) {
  ASSERT_TRUE(a_or.ok()) << "round " << round;
  ASSERT_TRUE(b_or.ok()) << "round " << round;
  const MinedRegion& a = a_or.value();
  const MinedRegion& b = b_or.value();
  ASSERT_EQ(a.found, b.found) << "round " << round;
  ASSERT_EQ(a.nx, b.nx) << "round " << round;
  ASSERT_EQ(a.ny, b.ny) << "round " << round;
  ASSERT_EQ(a.total_tuples, b.total_tuples) << "round " << round;
  ExpectIdenticalRegionRule(a.confidence_rectangle, b.confidence_rectangle,
                            round);
  ExpectIdenticalRegionRule(a.support_rectangle, b.support_rectangle, round);
  ASSERT_EQ(a.xmonotone_gain.found, b.xmonotone_gain.found)
      << "round " << round;
  ASSERT_EQ(a.xmonotone_gain.x_begin, b.xmonotone_gain.x_begin)
      << "round " << round;
  ASSERT_EQ(a.xmonotone_gain.column_ranges, b.xmonotone_gain.column_ranges)
      << "round " << round;
  ASSERT_EQ(a.xmonotone_gain.support_count, b.xmonotone_gain.support_count)
      << "round " << round;
  ASSERT_EQ(a.xmonotone_gain.hit_count, b.xmonotone_gain.hit_count)
      << "round " << round;
  ASSERT_EQ(a.xmonotone_gain.gain, b.xmonotone_gain.gain)
      << "round " << round;
}

void ExpectGridMatchesReference(const bucketing::GridBucketCounts& cells,
                                const storage::Relation& relation, int x_attr,
                                int y_attr,
                                const bucketing::BucketBoundaries& bx,
                                const bucketing::BucketBoundaries& by,
                                int round) {
  ASSERT_EQ(cells.nx, bx.num_buckets()) << "round " << round;
  ASSERT_EQ(cells.ny, by.num_buckets()) << "round " << round;
  ASSERT_EQ(cells.total_tuples, relation.NumRows()) << "round " << round;
  for (int t = 0; t < cells.num_targets(); ++t) {
    const region::GridCounts expected = region::BuildGrid(
        relation.NumericColumn(x_attr), relation.NumericColumn(y_attr),
        relation.BooleanColumn(t), bx, by);
    const region::GridCounts actual = region::FromGridBucketCounts(cells, t);
    ASSERT_EQ(actual.total_tuples(), expected.total_tuples())
        << "round " << round << " target " << t;
    for (int y = 0; y < cells.ny; ++y) {
      for (int x = 0; x < cells.nx; ++x) {
        ASSERT_EQ(actual.u(x, y), expected.u(x, y))
            << "round " << round << " cell " << x << "," << y;
        ASSERT_EQ(actual.v(x, y), expected.v(x, y))
            << "round " << round << " target " << t << " cell " << x << ","
            << y;
      }
    }
  }
}

TEST(RegionDifferentialFuzzTest, GridChannelMatchesBuildGridEverywhere) {
  // Random NaN-laden schemas and random RECTANGULAR grids (nx != ny,
  // random cut points, x may equal y), counted through the grid channel
  // over an in-memory relation, a paged file in both read modes, and a
  // pooled row-sharded scan -- every path must reproduce the
  // row-at-a-time BuildGrid reference cell for cell, for every Boolean
  // target.
  Rng rng(FuzzSeed(31337));
  for (int round = 0; round < 8; ++round) {
    const storage::Relation relation = RandomNanRelation(rng);
    const storage::Schema& schema = relation.schema();
    const int x_attr =
        static_cast<int>(rng.NextBounded(
            static_cast<uint64_t>(schema.num_numeric())));
    const int y_attr =
        static_cast<int>(rng.NextBounded(
            static_cast<uint64_t>(schema.num_numeric())));
    const auto random_boundaries = [&rng](int num_buckets) {
      std::vector<double> cuts;
      for (int i = 0; i < num_buckets - 1; ++i) {
        cuts.push_back(rng.NextUniform(0.0, 1e6));
      }
      std::sort(cuts.begin(), cuts.end());
      return bucketing::BucketBoundaries::FromCutPoints(std::move(cuts));
    };
    const auto bx =
        random_boundaries(1 + static_cast<int>(rng.NextBounded(40)));
    const auto by =
        random_boundaries(1 + static_cast<int>(rng.NextBounded(40)));

    const auto make_spec = [&] {
      bucketing::MultiCountSpec spec;
      spec.num_targets = schema.num_boolean();
      // A base channel on the x column shares its locate group with the
      // grid when the boundaries object matches.
      bucketing::CountChannel base;
      base.column = x_attr;
      base.boundaries = &bx;
      spec.channels.push_back(std::move(base));
      bucketing::GridChannel grid;
      grid.x_column = x_attr;
      grid.x_boundaries = &bx;
      grid.y_column = y_attr;
      grid.y_boundaries = &by;
      spec.grid_channels.push_back(grid);
      return spec;
    };

    // In-memory serial.
    {
      storage::RelationBatchSource source(&relation, 256);
      bucketing::MultiCountPlan plan(make_spec());
      bucketing::ExecuteMultiCount(source, &plan, nullptr);
      ExpectGridMatchesReference(plan.grid_counts(0), relation, x_attr,
                                 y_attr, bx, by, round);
    }
    // In-memory pooled (row-sharded grid Merge).
    {
      ThreadPool pool(3);
      storage::RelationBatchSource source(&relation, 256);
      bucketing::MultiCountPlan plan(make_spec());
      bucketing::ExecuteMultiCount(source, &plan, &pool);
      EXPECT_EQ(source.scans_started(), 1) << round;
      ExpectGridMatchesReference(plan.grid_counts(0), relation, x_attr,
                                 y_attr, bx, by, round);
    }
    // Paged file, synchronous and double-buffered.
    const std::string path = testing::TempDir() + "/fuzz_grid_" +
                             std::to_string(round) + ".optr";
    ASSERT_TRUE(
        storage::WriteRelationToFile(relation, path, FuzzFileFormat(round))
            .ok());
    const std::unique_ptr<storage::BufferPool> file_pool = FuzzPool(round);
    for (const storage::PagedReadMode mode :
         {storage::PagedReadMode::kSynchronous,
          storage::PagedReadMode::kDoubleBuffered}) {
      auto source_or = storage::PagedFileBatchSource::Open(
          path, 128 + static_cast<int64_t>(rng.NextBounded(400)), mode,
          file_pool.get());
      ASSERT_TRUE(source_or.ok());
      bucketing::MultiCountPlan plan(make_spec());
      bucketing::ExecuteMultiCount(*source_or.value(), &plan, nullptr);
      ExpectGridMatchesReference(plan.grid_counts(0), relation, x_attr,
                                 y_attr, bx, by, round);
    }
    std::remove(path.c_str());
  }
}

TEST(RegionDifferentialFuzzTest, EngineRegionsMatchLegacyMiner) {
  // End to end: random schemas, NaN rates, grid resolutions, and
  // thresholds; MiningEngine::MineOptimizedRegion (grid channel inside
  // the one shared scan) against Miner::MineOptimizedRegion (private
  // BuildGrid pass), bit for bit -- while the same session also answers
  // the 1-D sweep from the same single scan.
  Rng rng(FuzzSeed(24601));
  for (int round = 0; round < 10; ++round) {
    const storage::Relation relation = RandomNanRelation(rng);
    const storage::Schema& schema = relation.schema();
    MinerOptions options;
    options.num_buckets = 16 + static_cast<int>(rng.NextBounded(60));
    options.region_grid_buckets = 2 + static_cast<int>(rng.NextBounded(30));
    options.sample_per_bucket = 8;
    options.min_support = 0.02 + 0.2 * rng.NextDouble();
    options.min_confidence = 0.3 + 0.5 * rng.NextDouble();
    options.seed = 5000 + static_cast<uint64_t>(round);

    const std::string x = schema.NumericName(static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(schema.num_numeric()))));
    const std::string y = schema.NumericName(static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(schema.num_numeric()))));
    const std::string target = schema.BooleanName(static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(schema.num_boolean()))));
    // Half the rounds request an explicit rectangular nx-by-ny grid (the
    // engine-level rectangular path); the rest use the square default.
    const bool rectangular = rng.NextBernoulli(0.5);
    const int nx = 2 + static_cast<int>(rng.NextBounded(28));
    const int ny = 2 + static_cast<int>(rng.NextBounded(28));

    Miner legacy(&relation, options);
    MiningEngine engine(&relation, options);
    if (rectangular) {
      ASSERT_TRUE(engine.RequestRegionPair(x, y, nx, ny).ok());
    } else {
      ASSERT_TRUE(engine.RequestRegionPair(x, y).ok());
    }
    ExpectIdenticalRules(engine.MineAllPairs(), legacy.MineAll(), round);
    ExpectIdenticalRegion(
        engine.MineOptimizedRegion(x, y, target),
        rectangular
            ? legacy.MineOptimizedRegion(x, y, target, nx, ny)
            : legacy.MineOptimizedRegion(x, y, target),
        round);
    ASSERT_EQ(engine.counting_scans(), 1) << round;
  }
}

TEST(RegionDifferentialFuzzTest, PagedEngineRegionsMatchMemoryEngine) {
  // Out-of-core 2-D mining: the paged-file engine (synchronous AND
  // double-buffered) must reproduce the in-memory engine's regions bit
  // for bit (GK boundaries keep planning deterministic across the column
  // and batch paths).
  Rng rng(FuzzSeed(11235));
  for (int round = 0; round < 5; ++round) {
    const storage::Relation relation = RandomNanRelation(rng);
    const storage::Schema& schema = relation.schema();
    MinerOptions options;
    options.num_buckets = 16 + static_cast<int>(rng.NextBounded(48));
    options.region_grid_buckets = 2 + static_cast<int>(rng.NextBounded(30));
    options.bucketizer = Bucketizer::kGkSketch;
    const std::string x = schema.NumericName(0);
    const std::string y =
        schema.NumericName(schema.num_numeric() > 1 ? 1 : 0);
    const std::string target = schema.BooleanName(0);

    MiningEngine memory_engine(&relation, options);
    ASSERT_TRUE(memory_engine.RequestRegionPair(x, y).ok());
    const auto expected = memory_engine.MineOptimizedRegion(x, y, target);

    const std::string path = testing::TempDir() + "/fuzz_region_" +
                             std::to_string(round) + ".optr";
    ASSERT_TRUE(
        storage::WriteRelationToFile(relation, path, FuzzFileFormat(round))
            .ok());
    const std::unique_ptr<storage::BufferPool> file_pool = FuzzPool(round);
    for (const storage::PagedReadMode mode :
         {storage::PagedReadMode::kSynchronous,
          storage::PagedReadMode::kDoubleBuffered}) {
      auto source_or = storage::PagedFileBatchSource::Open(
          path, 128 + static_cast<int64_t>(rng.NextBounded(600)), mode,
          file_pool.get());
      ASSERT_TRUE(source_or.ok());
      MiningEngine file_engine(source_or.value().get(), schema, options);
      ASSERT_TRUE(file_engine.RequestRegionPair(x, y).ok());
      ExpectIdenticalRegion(file_engine.MineOptimizedRegion(x, y, target),
                            expected, round);
      ASSERT_EQ(file_engine.counting_scans(), 1) << round;
    }
    std::remove(path.c_str());
  }
}

// ----------------------- partitioned / distributed scan differential ----

/// Bit-exact plan comparison: counts, grids, min/max, and the extracted
/// compensated sums.
void ExpectIdenticalPlans(const bucketing::MultiCountPlan& a,
                          const bucketing::MultiCountPlan& b, int round) {
  ASSERT_EQ(a.num_channels(), b.num_channels()) << "round " << round;
  ASSERT_EQ(a.num_grid_channels(), b.num_grid_channels())
      << "round " << round;
  for (int c = 0; c < a.num_channels(); ++c) {
    const bucketing::BucketCounts& ca = a.counts(c);
    const bucketing::BucketCounts& cb = b.counts(c);
    ASSERT_EQ(ca.total_tuples, cb.total_tuples)
        << "round " << round << " channel " << c;
    ASSERT_EQ(ca.u, cb.u) << "round " << round << " channel " << c;
    ASSERT_EQ(ca.v, cb.v) << "round " << round << " channel " << c;
    for (size_t bkt = 0; bkt < ca.min_value.size(); ++bkt) {
      ASSERT_EQ(std::isnan(ca.min_value[bkt]),
                std::isnan(cb.min_value[bkt]));
      if (!std::isnan(ca.min_value[bkt])) {
        ASSERT_EQ(ca.min_value[bkt], cb.min_value[bkt]);
        ASSERT_EQ(ca.max_value[bkt], cb.max_value[bkt]);
      }
    }
    const size_t num_sums =
        a.spec().channels[static_cast<size_t>(c)].sum_targets.size();
    for (size_t k = 0; k < num_sums; ++k) {
      const bucketing::BucketSums sa =
          a.MakeBucketSums(c, static_cast<int>(k));
      const bucketing::BucketSums sb =
          b.MakeBucketSums(c, static_cast<int>(k));
      ASSERT_EQ(sa.sum.size(), sb.sum.size());
      for (size_t bkt = 0; bkt < sa.sum.size(); ++bkt) {
        ASSERT_EQ(std::isnan(sa.sum[bkt]), std::isnan(sb.sum[bkt]));
        if (!std::isnan(sa.sum[bkt])) {
          ASSERT_EQ(sa.sum[bkt], sb.sum[bkt])
              << "round " << round << " channel " << c << " target " << k
              << " bucket " << bkt;
        }
      }
    }
  }
  for (int g = 0; g < a.num_grid_channels(); ++g) {
    const bucketing::GridBucketCounts& ga = a.grid_counts(g);
    const bucketing::GridBucketCounts& gb = b.grid_counts(g);
    ASSERT_EQ(ga.total_tuples, gb.total_tuples) << "round " << round;
    ASSERT_EQ(ga.u, gb.u) << "round " << round << " grid " << g;
    ASSERT_EQ(ga.v, gb.v) << "round " << round << " grid " << g;
  }
}

TEST(EngineDifferentialFuzzTest, SelectiveConditionPruningIsExact) {
  // Zone-map pruning under a rare, clustered condition: the condition
  // Boolean is true only inside a narrow random window, so almost every
  // page carries no true condition byte and every (conditional) unit of
  // the spec is provably dead there. The pooled scan must actually skip
  // pages AND still reproduce the unpooled, unpruned reference bit for
  // bit -- skipped rows may contribute nothing but total_tuples.
  Rng rng(FuzzSeed(80808));
  int64_t pages_skipped = 0;
  for (int round = 0; round < 8; ++round) {
    storage::Relation relation = RandomNanRelation(rng);
    const int64_t rows = relation.NumRows();
    std::vector<uint8_t>& cond = relation.MutableBooleanColumn(0);
    const int64_t begin = static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(rows)));
    const int64_t end = std::min<int64_t>(
        rows, begin + 1 + static_cast<int64_t>(rng.NextBounded(200)));
    for (int64_t i = 0; i < rows; ++i) {
      if (i < begin || i >= end) cond[static_cast<size_t>(i)] = 0;
    }

    const storage::Schema& schema = relation.schema();
    const auto equi = [&relation](int a) {
      return bucketing::ExactEquiDepthBoundaries(relation.NumericColumn(a),
                                                 16);
    };
    std::vector<bucketing::BucketBoundaries> base;
    for (int a = 0; a < schema.num_numeric(); ++a) base.push_back(equi(a));
    bucketing::MultiCountSpec spec;
    spec.num_targets = schema.num_boolean();
    spec.conditions.push_back({0});
    for (int a = 0; a < schema.num_numeric(); ++a) {
      bucketing::CountChannel channel;
      channel.column = a;
      channel.boundaries = &base[static_cast<size_t>(a)];
      channel.condition = 0;
      spec.channels.push_back(std::move(channel));
    }
    bucketing::CountChannel summing;
    summing.column = 0;
    summing.boundaries = &base[0];
    summing.condition = 0;
    summing.count_targets = false;
    summing.sum_targets = {schema.num_numeric() > 1 ? 1 : 0};
    spec.channels.push_back(std::move(summing));

    storage::PagedFileWriterOptions file_options;
    file_options.rows_per_page = 64;  // many prunable pages per file
    const std::string path = testing::TempDir() + "/fuzz_prune_" +
                             std::to_string(round) + ".optr";
    ASSERT_TRUE(
        storage::WriteRelationToFile(relation, path, file_options).ok());

    const storage::PagedReadMode mode =
        round % 2 == 0 ? storage::PagedReadMode::kSynchronous
                       : storage::PagedReadMode::kDoubleBuffered;
    const int64_t batch_rows =
        64 + static_cast<int64_t>(rng.NextBounded(500));

    bucketing::MultiCountPlan reference(spec);
    {
      auto bypass_or = storage::PagedFileBatchSource::Open(
          path, batch_rows, mode, /*pool=*/nullptr);
      ASSERT_TRUE(bypass_or.ok());
      bucketing::ExecuteMultiCount(*bypass_or.value(), &reference, nullptr);
    }
    storage::BufferPool cache(storage::kDefaultBufferPoolBytes);
    auto pooled_or =
        storage::PagedFileBatchSource::Open(path, batch_rows, mode, &cache);
    ASSERT_TRUE(pooled_or.ok());
    bucketing::MultiCountPlan pruned(spec);
    bucketing::ExecuteMultiCount(*pooled_or.value(), &pruned, nullptr);
    ExpectIdenticalPlans(pruned, reference, round);
    pages_skipped += pooled_or.value()->SourceStats().pages_skipped;
    std::remove(path.c_str());
  }
  // Across the sweep the clustered condition must have made pruning fire.
  EXPECT_GT(pages_skipped, 0);
}

/// Random mixed spec (per-attribute channels, a conditional channel, a
/// compensated-sum channel, and a rectangular grid whose axes may
/// coincide) plus the boundary storage it points into. Filled in place
/// by BuildRandomDistSpec -- spec holds pointers to base/grid_y, so the
/// holder must not move afterwards.
struct RandomDistSpec {
  std::vector<bucketing::BucketBoundaries> base;
  bucketing::BucketBoundaries grid_y =
      bucketing::BucketBoundaries::FromCutPoints({});
  bucketing::MultiCountSpec spec;
};

void BuildRandomDistSpec(Rng& rng, const storage::Schema& schema,
                         RandomDistSpec* out) {
  const auto random_boundaries = [&rng](int num_buckets) {
    std::vector<double> cuts;
    for (int i = 0; i < num_buckets - 1; ++i) {
      cuts.push_back(rng.NextUniform(-1e5, 9e5));
    }
    std::sort(cuts.begin(), cuts.end());
    return bucketing::BucketBoundaries::FromCutPoints(std::move(cuts));
  };
  for (int a = 0; a < schema.num_numeric(); ++a) {
    out->base.push_back(
        random_boundaries(2 + static_cast<int>(rng.NextBounded(30))));
  }
  out->grid_y = random_boundaries(2 + static_cast<int>(rng.NextBounded(20)));
  bucketing::MultiCountSpec& spec = out->spec;
  spec.num_targets = schema.num_boolean();
  spec.conditions.push_back({0});
  for (int a = 0; a < schema.num_numeric(); ++a) {
    bucketing::CountChannel channel;
    channel.column = a;
    channel.boundaries = &out->base[static_cast<size_t>(a)];
    spec.channels.push_back(std::move(channel));
  }
  bucketing::CountChannel conditional;
  conditional.column = static_cast<int>(
      rng.NextBounded(static_cast<uint64_t>(schema.num_numeric())));
  conditional.boundaries =
      &out->base[static_cast<size_t>(conditional.column)];
  conditional.condition = 0;
  spec.channels.push_back(std::move(conditional));
  bucketing::CountChannel summing;
  summing.column = 0;
  summing.boundaries = &out->base[0];
  summing.count_targets = false;
  summing.sum_targets = {schema.num_numeric() > 1 ? 1 : 0};
  spec.channels.push_back(std::move(summing));
  bucketing::GridChannel grid;
  grid.x_column = static_cast<int>(
      rng.NextBounded(static_cast<uint64_t>(schema.num_numeric())));
  grid.x_boundaries = &out->base[static_cast<size_t>(grid.x_column)];
  grid.y_column = static_cast<int>(
      rng.NextBounded(static_cast<uint64_t>(schema.num_numeric())));
  grid.y_boundaries = &out->grid_y;
  spec.grid_channels.push_back(grid);
}

TEST(DistDifferentialFuzzTest, PartitionedScanMatchesSingleRelation) {
  // Random NaN-laden schemas, random K, random partitioner, random worker
  // counts, in-process AND subprocess workers: the distributed scan must
  // reproduce the single-relation serial reference bit for bit -- counts,
  // rectangular grids, min/max, and the compensated per-bucket sums.
  Rng rng(FuzzSeed(55501));
  const bool have_workerd = !dist::ResolveWorkerdPath("").empty();
  for (int round = 0; round < 8; ++round) {
    const storage::Relation relation = RandomNanRelation(rng);
    const storage::Schema& schema = relation.schema();
    RandomDistSpec holder;
    BuildRandomDistSpec(rng, schema, &holder);
    const bucketing::MultiCountSpec& spec = holder.spec;

    // Single-relation serial reference.
    storage::RelationBatchSource reference_source(&relation);
    bucketing::MultiCountPlan reference(spec);
    bucketing::ExecuteMultiCount(reference_source, &reference, nullptr);

    dist::PartitionOptions partition_options;
    partition_options.num_partitions =
        1 + static_cast<int>(rng.NextBounded(8));
    partition_options.strategy = rng.NextBernoulli(0.5)
                                     ? dist::PartitionStrategy::kRoundRobin
                                     : dist::PartitionStrategy::kHash;
    partition_options.hash_seed = rng.Next64();
    const std::string dir = testing::TempDir() + "/fuzz_partition_" +
                            std::to_string(round);
    std::filesystem::remove_all(dir);
    auto table = dist::PartitionRelation(relation, dir, partition_options);
    ASSERT_TRUE(table.ok()) << table.status().ToString();

    dist::DistributedScanOptions scan_options;
    scan_options.max_workers =
        static_cast<int>(rng.NextBounded(
            static_cast<uint64_t>(partition_options.num_partitions) + 1));
    scan_options.batch_rows = 64 + static_cast<int64_t>(rng.NextBounded(500));
    scan_options.read_mode = rng.NextBernoulli(0.5)
                                 ? storage::PagedReadMode::kSynchronous
                                 : storage::PagedReadMode::kDoubleBuffered;
    // Subprocess workers on alternating rounds (when the daemon binary is
    // available); both kinds must be bit-identical to the reference.
    if (have_workerd && round % 2 == 1) {
      scan_options.worker_kind = dist::WorkerKind::kSubprocess;
    }
    dist::DistributedScanCoordinator coordinator(&table.value(),
                                                 scan_options);
    bucketing::MultiCountPlan partitioned(spec);
    ASSERT_TRUE(coordinator.Execute(&partitioned).ok()) << "round " << round;
    ExpectIdenticalPlans(partitioned, reference, round);
    std::filesystem::remove_all(dir);
  }
}

/// Sets (or unsets, for nullptr) an environment variable for one scope
/// and restores the previous state on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const std::string& name, const char* value) : name_(name) {
    const char* old = std::getenv(name_.c_str());
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name_.c_str());
    } else {
      ::setenv(name_.c_str(), value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(DistDifferentialFuzzTest, FaultInjectedScanMatchesSingleRelation) {
  // The fault-tolerance differential: every round injects exactly one
  // random fault into an otherwise-random distributed scan and demands
  // the merged result stay bit-identical to the single-relation serial
  // reference. In-process rounds wrap the first roster worker in a
  // FaultInjectingScanWorker (random retryable status, sometimes marking
  // the transport broken so the respawn path runs); subprocess rounds
  // arm a token-gated daemon fault (crash, torn frame, garbage frame,
  // error frame, heartbeat-backed stall, or silent hang) that exactly
  // one forked daemon claims. Random scheduling mode and speculative
  // tail make sure stealing and duplicate discard never change bits.
  Rng rng(FuzzSeed(55502));
  const bool have_workerd = !dist::ResolveWorkerdPath("").empty();
  static const char* kDaemonFaults[] = {
      "crash-before-reply@0", "crash-mid-frame@0", "garbage-frame@0",
      "error-frame@0",        "stall:200@0",       "hang:5000@0",
  };
  int64_t total_retries = 0;
  for (int round = 0; round < 8; ++round) {
    const storage::Relation relation = RandomNanRelation(rng);
    const storage::Schema& schema = relation.schema();
    RandomDistSpec holder;
    BuildRandomDistSpec(rng, schema, &holder);

    // Single-relation serial reference.
    storage::RelationBatchSource reference_source(&relation);
    bucketing::MultiCountPlan reference(holder.spec);
    bucketing::ExecuteMultiCount(reference_source, &reference, nullptr);

    dist::PartitionOptions partition_options;
    partition_options.num_partitions =
        2 + static_cast<int>(rng.NextBounded(7));
    partition_options.strategy = rng.NextBernoulli(0.5)
                                     ? dist::PartitionStrategy::kRoundRobin
                                     : dist::PartitionStrategy::kHash;
    partition_options.hash_seed = rng.Next64();
    const std::string dir = testing::TempDir() + "/fuzz_fault_" +
                            std::to_string(round);
    std::filesystem::remove_all(dir);
    auto table = dist::PartitionRelation(relation, dir, partition_options);
    ASSERT_TRUE(table.ok()) << table.status().ToString();

    dist::DistributedScanOptions scan_options;
    scan_options.max_workers = 1 + static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(partition_options.num_partitions)));
    scan_options.batch_rows = 64 + static_cast<int64_t>(rng.NextBounded(500));
    scan_options.read_mode = rng.NextBernoulli(0.5)
                                 ? storage::PagedReadMode::kSynchronous
                                 : storage::PagedReadMode::kDoubleBuffered;
    scan_options.scheduling = rng.NextBernoulli(0.5)
                                  ? dist::ScanScheduling::kWorkQueue
                                  : dist::ScanScheduling::kStatic;
    scan_options.speculative_tail = rng.NextBernoulli(0.25);
    scan_options.liveness_timeout_ms = 500;  // kills hung daemons fast

    const bool subprocess_round = have_workerd && round % 2 == 1;
    std::optional<ScopedEnv> fault_env, token_env, counter_env;
    if (subprocess_round) {
      scan_options.worker_kind = dist::WorkerKind::kSubprocess;
      const char* fault = kDaemonFaults[rng.NextBounded(6)];
      const std::string token = dir + "_token";
      std::FILE* file = std::fopen(token.c_str(), "wb");
      ASSERT_NE(file, nullptr);
      std::fputs("token\n", file);
      std::fclose(file);
      fault_env.emplace("OPTRULES_WORKERD_FAULT", fault);
      token_env.emplace("OPTRULES_WORKERD_FAULT_TOKEN", token.c_str());
      counter_env.emplace("OPTRULES_WORKERD_FAULT_COUNTER", nullptr);
    } else {
      // No daemons this round; still scrub any inherited fault spec so
      // the round is a function of the fuzz seed alone.
      fault_env.emplace("OPTRULES_WORKERD_FAULT", nullptr);
      token_env.emplace("OPTRULES_WORKERD_FAULT_TOKEN", nullptr);
      counter_env.emplace("OPTRULES_WORKERD_FAULT_COUNTER", nullptr);
      dist::InjectedFault fault;
      fault.at_call = 0;
      switch (rng.NextBounded(3)) {
        case 0:
          fault.status = Status::IoError("injected transport failure");
          fault.mark_unhealthy = true;  // forces the respawn path
          break;
        case 1:
          fault.status = Status::Internal("injected worker failure");
          break;
        default:
          fault.status = Status::DeadlineExceeded("injected deadline");
          fault.mark_unhealthy = true;
          break;
      }
      auto built = std::make_shared<std::atomic<int>>(0);
      scan_options.worker_factory =
          [built, fault]() -> Result<std::unique_ptr<dist::ScanWorker>> {
        std::unique_ptr<dist::ScanWorker> inner =
            std::make_unique<dist::InProcessScanWorker>();
        if (built->fetch_add(1) == 0) {
          return std::unique_ptr<dist::ScanWorker>(
              std::make_unique<dist::FaultInjectingScanWorker>(
                  std::move(inner),
                  std::vector<dist::InjectedFault>{fault}));
        }
        return inner;
      };
    }

    dist::DistributedScanCoordinator coordinator(&table.value(),
                                                 scan_options);
    bucketing::MultiCountPlan partitioned(holder.spec);
    ASSERT_TRUE(coordinator.Execute(&partitioned).ok()) << "round " << round;
    ExpectIdenticalPlans(partitioned, reference, round);
    total_retries += coordinator.scan_stats().retries;
    std::filesystem::remove_all(dir);
    std::remove((dir + "_token").c_str());
  }
  // Across the sweep the injected faults must actually have exercised
  // the retry machinery (heartbeat-backed stalls legitimately do not).
  EXPECT_GT(total_retries, 0);
}

}  // namespace
}  // namespace optrules::rules
