// Tests for two-dimensional region mining (grid, rectangles, x-monotone
// regions), including brute-force oracles on small grids, the grid NaN
// policy, and the MultiCountPlan grid channel against the row-at-a-time
// BuildGrid reference.

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "bucketing/counting.h"
#include "bucketing/parallel_count.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "region/grid.h"
#include "region/rectangle.h"
#include "region/xmonotone.h"
#include "storage/columnar_batch.h"
#include "storage/relation.h"
#include "storage/tuple_stream.h"

namespace optrules::region {
namespace {

GridCounts RandomGrid(int nx, int ny, int64_t max_u, double hit_rate,
                      uint64_t seed) {
  Rng rng(seed);
  GridCounts grid(nx, ny);
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const int64_t u = rng.NextInt(0, max_u);
      for (int64_t k = 0; k < u; ++k) {
        grid.Add(x, y, rng.NextBernoulli(hit_rate));
      }
    }
  }
  return grid;
}

/// Rectangle sums via direct iteration.
void RectSums(const GridCounts& grid, int x1, int x2, int y1, int y2,
              int64_t* u, int64_t* v) {
  *u = 0;
  *v = 0;
  for (int y = y1; y <= y2; ++y) {
    for (int x = x1; x <= x2; ++x) {
      *u += grid.u(x, y);
      *v += grid.v(x, y);
    }
  }
}

// -------------------------------------------------------------- grid ----

TEST(GridTest, BuildGridCountsCells) {
  const std::vector<double> xs = {1.0, 5.0, 9.0, 5.0};
  const std::vector<double> ys = {1.0, 1.0, 9.0, 9.0};
  const std::vector<uint8_t> target = {1, 0, 1, 1};
  const auto bx = bucketing::BucketBoundaries::FromCutPoints({4.0});
  const auto by = bucketing::BucketBoundaries::FromCutPoints({4.0});
  const GridCounts grid = BuildGrid(xs, ys, target, bx, by);
  EXPECT_EQ(grid.nx(), 2);
  EXPECT_EQ(grid.ny(), 2);
  EXPECT_EQ(grid.total_tuples(), 4);
  EXPECT_EQ(grid.u(0, 0), 1);  // (1,1)
  EXPECT_EQ(grid.v(0, 0), 1);
  EXPECT_EQ(grid.u(1, 0), 1);  // (5,1)
  EXPECT_EQ(grid.v(1, 0), 0);
  EXPECT_EQ(grid.u(1, 1), 2);  // (9,9) and (5,9)
  EXPECT_EQ(grid.v(1, 1), 2);
  EXPECT_EQ(grid.u(0, 1), 0);
}

TEST(GridTest, NanCoordinatesLandInNoCellButCountTowardN) {
  // Mirrors the 1-D NaN policy tests: a NaN in EITHER grid axis sends the
  // row to no cell, but the row still counts toward the support
  // denominator N.
  const double nan = std::nan("");
  const std::vector<double> xs = {1.0, nan, 9.0, nan, 5.0};
  const std::vector<double> ys = {1.0, 1.0, nan, nan, 9.0};
  const std::vector<uint8_t> target = {1, 1, 1, 1, 1};
  const auto bx = bucketing::BucketBoundaries::FromCutPoints({4.0});
  const auto by = bucketing::BucketBoundaries::FromCutPoints({4.0});
  const GridCounts grid = BuildGrid(xs, ys, target, bx, by);
  EXPECT_EQ(grid.total_tuples(), 5);  // NaN rows still count toward N
  int64_t cell_total = 0;
  for (int y = 0; y < grid.ny(); ++y) {
    for (int x = 0; x < grid.nx(); ++x) cell_total += grid.u(x, y);
  }
  EXPECT_EQ(cell_total, 2);  // only the two fully-located rows
  EXPECT_EQ(grid.u(0, 0), 1);  // (1,1)
  EXPECT_EQ(grid.u(1, 1), 1);  // (5,9)
}

TEST(GridTest, AllNanAxisLeavesEmptyGridWithFullN) {
  const double nan = std::nan("");
  const std::vector<double> xs = {nan, nan, nan};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  const std::vector<uint8_t> target = {1, 0, 1};
  const auto bounds = bucketing::BucketBoundaries::FromCutPoints({2.0});
  const GridCounts grid = BuildGrid(xs, ys, target, bounds, bounds);
  EXPECT_EQ(grid.total_tuples(), 3);
  for (int y = 0; y < grid.ny(); ++y) {
    for (int x = 0; x < grid.nx(); ++x) {
      EXPECT_EQ(grid.u(x, y), 0);
      EXPECT_EQ(grid.v(x, y), 0);
    }
  }
}

TEST(GridTest, FromCellsAdoptsEngineArrays) {
  // The engine bridge: a GridBucketCounts target plane becomes a
  // GridCounts with N possibly exceeding the cell total (NaN rows).
  bucketing::GridBucketCounts cells;
  cells.nx = 2;
  cells.ny = 3;
  cells.u = {1, 2, 3, 4, 5, 6};
  cells.v = {{0, 1, 1, 2, 2, 3}, {1, 1, 1, 1, 1, 1}};
  cells.total_tuples = 25;
  const GridCounts grid = FromGridBucketCounts(cells, 0);
  EXPECT_EQ(grid.nx(), 2);
  EXPECT_EQ(grid.ny(), 3);
  EXPECT_EQ(grid.total_tuples(), 25);
  EXPECT_EQ(grid.u(1, 2), 6);  // row-major by y
  EXPECT_EQ(grid.v(1, 2), 3);
  const GridCounts plane1 = FromGridBucketCounts(cells, 1);
  EXPECT_EQ(plane1.v(0, 0), 1);
}

// ------------------------------------------------------- grid channel ----

/// Kernel-level grid-channel cases mirroring the 1-D NaN policy tests: the
/// engine-side MultiCountPlan grid scatter must agree cell-for-cell with
/// the row-at-a-time BuildGrid reference, NaNs included.
TEST(GridChannelTest, PlanGridMatchesBuildGridWithNans) {
  const double nan = std::nan("");
  storage::Relation relation(storage::Schema::Synthetic(2, 2));
  Rng rng(404);
  for (int row = 0; row < 3000; ++row) {
    const double x = rng.NextBernoulli(0.15) ? nan : rng.NextUniform(0, 100);
    const double y = rng.NextBernoulli(0.10) ? nan : rng.NextUniform(0, 100);
    const std::vector<double> numeric = {x, y};
    const std::vector<uint8_t> boolean = {
        rng.NextBernoulli(0.4) ? uint8_t{1} : uint8_t{0},
        rng.NextBernoulli(0.7) ? uint8_t{1} : uint8_t{0}};
    relation.AppendRow(numeric, boolean);
  }
  // A deliberately rectangular grid: 4 x-buckets by 7 y-buckets.
  const auto bx =
      bucketing::BucketBoundaries::FromCutPoints({25.0, 50.0, 75.0});
  const auto by = bucketing::BucketBoundaries::FromCutPoints(
      {10.0, 30.0, 45.0, 60.0, 80.0, 95.0});

  bucketing::MultiCountSpec spec;
  spec.num_targets = 2;
  bucketing::GridChannel channel;
  channel.x_column = 0;
  channel.x_boundaries = &bx;
  channel.y_column = 1;
  channel.y_boundaries = &by;
  spec.grid_channels.push_back(channel);
  bucketing::MultiCountPlan plan(std::move(spec));
  storage::RelationBatchSource source(&relation, /*batch_rows=*/256);
  auto reader = source.CreateReader();
  storage::ColumnarBatch batch;
  while (reader->Next(&batch)) plan.Accumulate(batch);

  const bucketing::GridBucketCounts& cells = plan.grid_counts(0);
  ASSERT_EQ(cells.nx, 4);
  ASSERT_EQ(cells.ny, 7);
  EXPECT_EQ(cells.total_tuples, relation.NumRows());
  for (int t = 0; t < 2; ++t) {
    const GridCounts expected =
        BuildGrid(relation.NumericColumn(0), relation.NumericColumn(1),
                  relation.BooleanColumn(t), bx, by);
    const GridCounts actual = FromGridBucketCounts(cells, t);
    ASSERT_EQ(actual.total_tuples(), expected.total_tuples()) << t;
    for (int y = 0; y < 7; ++y) {
      for (int x = 0; x < 4; ++x) {
        ASSERT_EQ(actual.u(x, y), expected.u(x, y)) << x << "," << y;
        ASSERT_EQ(actual.v(x, y), expected.v(x, y)) << x << "," << y;
      }
    }
  }
}

TEST(GridChannelTest, GridSharesLocatePassWithBaseChannelsAndMerges) {
  // A grid channel over columns that 1-D channels already bucket must
  // reuse their located indices (same boundaries objects), and partial
  // plans must merge grids exactly.
  storage::Relation relation(storage::Schema::Synthetic(2, 1));
  Rng rng(405);
  for (int row = 0; row < 1000; ++row) {
    const std::vector<double> numeric = {rng.NextUniform(0, 10),
                                         rng.NextUniform(0, 10)};
    const std::vector<uint8_t> boolean = {
        rng.NextBernoulli(0.5) ? uint8_t{1} : uint8_t{0}};
    relation.AppendRow(numeric, boolean);
  }
  const auto bx = bucketing::BucketBoundaries::FromCutPoints({3.0, 6.0});
  const auto by = bucketing::BucketBoundaries::FromCutPoints({5.0});

  const auto make_spec = [&] {
    bucketing::MultiCountSpec spec;
    spec.num_targets = 1;
    for (int a = 0; a < 2; ++a) {
      bucketing::CountChannel channel;
      channel.column = a;
      channel.boundaries = a == 0 ? &bx : &by;
      spec.channels.push_back(std::move(channel));
    }
    bucketing::GridChannel grid;
    grid.x_column = 0;
    grid.x_boundaries = &bx;
    grid.y_column = 1;
    grid.y_boundaries = &by;
    spec.grid_channels.push_back(grid);
    return spec;
  };

  bucketing::MultiCountPlan serial(make_spec());
  storage::RelationBatchSource source(&relation, 128);
  auto reader = source.CreateReader();
  storage::ColumnarBatch batch;
  while (reader->Next(&batch)) serial.Accumulate(batch);

  // Two half-table partials merged in order must equal the serial scan.
  bucketing::MultiCountPlan merged(make_spec());
  bucketing::MultiCountPlan second(make_spec());
  const int64_t half = relation.NumRows() / 2;
  for (auto [plan, begin, end] :
       {std::tuple{&merged, int64_t{0}, half},
        std::tuple{&second, half, relation.NumRows()}}) {
    auto range_reader = source.CreateRangeReader(begin, end);
    while (range_reader->Next(&batch)) plan->Accumulate(batch);
  }
  merged.Merge(second);

  const bucketing::GridBucketCounts& a = serial.grid_counts(0);
  const bucketing::GridBucketCounts& b = merged.grid_counts(0);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
  EXPECT_EQ(a.total_tuples, b.total_tuples);
  // And the grid agrees with the BuildGrid reference.
  const GridCounts expected =
      BuildGrid(relation.NumericColumn(0), relation.NumericColumn(1),
                relation.BooleanColumn(0), bx, by);
  const GridCounts actual = FromGridBucketCounts(a, 0);
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_EQ(actual.u(x, y), expected.u(x, y));
      EXPECT_EQ(actual.v(x, y), expected.v(x, y));
    }
  }
}

TEST(GridChannelTest, ChannelParallelScheduleMatchesSerial) {
  // TupleStreamBatchSource has no range readers, so the pooled executor
  // fans channels -- grid channels included -- out per batch; grid cells
  // must come out bit-identical to the serial scan.
  storage::Relation relation(storage::Schema::Synthetic(2, 2));
  Rng rng(406);
  for (int row = 0; row < 4000; ++row) {
    const std::vector<double> numeric = {rng.NextUniform(0, 50),
                                         rng.NextUniform(0, 50)};
    const std::vector<uint8_t> boolean = {
        rng.NextBernoulli(0.3) ? uint8_t{1} : uint8_t{0},
        rng.NextBernoulli(0.6) ? uint8_t{1} : uint8_t{0}};
    relation.AppendRow(numeric, boolean);
  }
  const auto bx = bucketing::BucketBoundaries::FromCutPoints({20.0, 35.0});
  const auto by = bucketing::BucketBoundaries::FromCutPoints({10.0, 40.0});
  const auto make_spec = [&] {
    bucketing::MultiCountSpec spec;
    spec.num_targets = 2;
    bucketing::CountChannel base;
    base.column = 0;
    base.boundaries = &bx;
    spec.channels.push_back(std::move(base));
    bucketing::GridChannel grid;
    grid.x_column = 0;
    grid.x_boundaries = &bx;
    grid.y_column = 1;
    grid.y_boundaries = &by;
    spec.grid_channels.push_back(grid);
    return spec;
  };

  storage::RelationTupleStream serial_stream(&relation);
  storage::TupleStreamBatchSource serial_source(&serial_stream, 512);
  bucketing::MultiCountPlan serial(make_spec());
  bucketing::ExecuteMultiCount(serial_source, &serial, nullptr);

  storage::RelationTupleStream stream(&relation);
  storage::TupleStreamBatchSource source(&stream, 512);
  ThreadPool pool(4);
  bucketing::MultiCountPlan parallel(make_spec());
  bucketing::ExecuteMultiCount(source, &parallel, &pool);
  EXPECT_EQ(source.scans_started(), 1);

  EXPECT_EQ(parallel.grid_counts(0).u, serial.grid_counts(0).u);
  EXPECT_EQ(parallel.grid_counts(0).v, serial.grid_counts(0).v);
  EXPECT_EQ(parallel.grid_counts(0).total_tuples,
            serial.grid_counts(0).total_tuples);
  EXPECT_EQ(parallel.counts(0).u, serial.counts(0).u);
}

// -------------------------------------------------------- rectangles ----

TEST(RectangleTest, FindsPlantedBlock) {
  // A 6x6 grid: cells in [2,3]x[2,3] are pure hits, everything else pure
  // misses; each cell holds 4 tuples.
  GridCounts grid(6, 6);
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 6; ++x) {
      const bool hot = 2 <= x && x <= 3 && 2 <= y && y <= 3;
      for (int k = 0; k < 4; ++k) grid.Add(x, y, hot);
    }
  }
  const RegionRule rule = OptimizedConfidenceRectangle(grid, 16);
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.x1, 2);
  EXPECT_EQ(rule.x2, 3);
  EXPECT_EQ(rule.y1, 2);
  EXPECT_EQ(rule.y2, 3);
  EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
  EXPECT_EQ(rule.support_count, 16);
}

TEST(RectangleTest, InfeasibleSupportNotFound) {
  GridCounts grid(2, 2);
  grid.Add(0, 0, true);
  EXPECT_FALSE(OptimizedConfidenceRectangle(grid, 5).found);
}

TEST(RectangleTest, SupportRectangleWidensWhileConfident) {
  // Center 2x2 pure hits surrounded by a ring at 50%: widening keeps
  // confidence >= 1/2 and triples the support.
  GridCounts grid(4, 4);
  Rng rng(3);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const bool hot = 1 <= x && x <= 2 && 1 <= y && y <= 2;
      for (int k = 0; k < 2; ++k) {
        grid.Add(x, y, hot || (k == 0));  // ring cells: 1 of 2 hits
      }
    }
  }
  const RegionRule rule = OptimizedSupportRectangle(grid, Ratio(1, 2));
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.support_count, 32);  // whole grid qualifies
  EXPECT_GE(rule.confidence, 0.5);
}

class RectanglePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RectanglePropertyTest, ConfidenceMatchesBruteForce) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int nx = 2 + static_cast<int>(rng.NextBounded(8));
  const int ny = 2 + static_cast<int>(rng.NextBounded(8));
  const GridCounts grid = RandomGrid(nx, ny, 4, 0.4, seed * 13 + 1);
  if (grid.total_tuples() == 0) return;
  const int64_t min_support = 1 + rng.NextInt(0, grid.total_tuples() - 1);

  const RegionRule fast = OptimizedConfidenceRectangle(grid, min_support);

  // Brute force over all rectangles.
  bool found = false;
  int64_t best_u = 0;
  int64_t best_v = 0;
  for (int x1 = 0; x1 < nx; ++x1) {
    for (int x2 = x1; x2 < nx; ++x2) {
      for (int y1 = 0; y1 < ny; ++y1) {
        for (int y2 = y1; y2 < ny; ++y2) {
          int64_t u;
          int64_t v;
          RectSums(grid, x1, x2, y1, y2, &u, &v);
          if (u < min_support) continue;
          const bool better =
              !found ||
              static_cast<__int128>(v) * best_u >
                  static_cast<__int128>(best_v) * u ||
              (static_cast<__int128>(v) * best_u ==
                   static_cast<__int128>(best_v) * u &&
               u > best_u);
          if (better) {
            found = true;
            best_u = u;
            best_v = v;
          }
        }
      }
    }
  }
  ASSERT_EQ(fast.found, found) << "seed " << seed;
  if (!found) return;
  EXPECT_EQ(static_cast<__int128>(fast.hit_count) * best_u,
            static_cast<__int128>(best_v) * fast.support_count)
      << "seed " << seed;
  EXPECT_EQ(fast.support_count, best_u) << "seed " << seed;
}

TEST_P(RectanglePropertyTest, SupportMatchesBruteForce) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x5555);
  const int nx = 2 + static_cast<int>(rng.NextBounded(8));
  const int ny = 2 + static_cast<int>(rng.NextBounded(8));
  const GridCounts grid = RandomGrid(nx, ny, 4, 0.45, seed * 17 + 5);
  const Ratio theta(1, 2);

  const RegionRule fast = OptimizedSupportRectangle(grid, theta);

  bool found = false;
  int64_t best_u = -1;
  for (int x1 = 0; x1 < nx; ++x1) {
    for (int x2 = x1; x2 < nx; ++x2) {
      for (int y1 = 0; y1 < ny; ++y1) {
        for (int y2 = y1; y2 < ny; ++y2) {
          int64_t u;
          int64_t v;
          RectSums(grid, x1, x2, y1, y2, &u, &v);
          if (u == 0) continue;
          if (!theta.LessOrEqualTo(v, u)) continue;
          if (u > best_u) {
            found = true;
            best_u = u;
          }
        }
      }
    }
  }
  ASSERT_EQ(fast.found, found) << "seed " << seed;
  if (found) {
    EXPECT_EQ(fast.support_count, best_u) << "seed " << seed;
    EXPECT_TRUE(theta.LessOrEqualTo(fast.hit_count, fast.support_count));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectanglePropertyTest,
                         testing::Range(uint64_t{1}, uint64_t{30}));

// --------------------------------------------------------- x-monotone ----

TEST(XMonotoneTest, RectangleIsRecoveredWhenOptimal) {
  GridCounts grid(5, 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      const bool hot = 1 <= x && x <= 3 && 2 <= y && y <= 3;
      grid.Add(x, y, hot);
    }
  }
  const XMonotoneRegion region = MaxGainXMonotoneRegion(grid, Ratio(1, 2));
  ASSERT_TRUE(region.found);
  EXPECT_EQ(region.x_begin, 1);
  ASSERT_EQ(region.column_ranges.size(), 3u);
  for (const auto& [s, t] : region.column_ranges) {
    EXPECT_EQ(s, 2);
    EXPECT_EQ(t, 3);
  }
  EXPECT_DOUBLE_EQ(region.confidence, 1.0);
}

TEST(XMonotoneTest, FollowsADiagonalBand) {
  // Hits along a 2-thick diagonal band (rows x and x+1 of column x):
  // consecutive column intervals [x, x+1] overlap, so an x-monotone region
  // captures the whole band with no misses; no rectangle can.
  const int n = 6;
  GridCounts grid(n, n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      grid.Add(x, y, y == x || y == x + 1);
    }
  }
  const Ratio theta(1, 2);
  const XMonotoneRegion region = MaxGainXMonotoneRegion(grid, theta);
  const RegionRule rectangle = MaxGainRectangle(grid, theta);
  ASSERT_TRUE(region.found);
  ASSERT_TRUE(rectangle.found);
  // Band size: 2 hits per column except the last (row n would be off
  // grid), so 2n - 1 cells, all hits.
  EXPECT_EQ(region.hit_count, 2 * n - 1);
  EXPECT_EQ(region.support_count, 2 * n - 1);
  EXPECT_DOUBLE_EQ(region.confidence, 1.0);
  // Strictly more gain than the best rectangle (which must pay for misses
  // to span multiple columns, or stay narrow).
  const double rect_gain =
      2.0 * static_cast<double>(rectangle.hit_count) -
      static_cast<double>(rectangle.support_count);
  EXPECT_GT(region.gain, rect_gain);
}

TEST(XMonotoneTest, ColumnsMustOverlap) {
  // Two hot cells that do NOT share rows in adjacent columns: a connected
  // x-monotone region cannot take both without including a connector.
  GridCounts grid(2, 4);
  for (int k = 0; k < 3; ++k) {
    grid.Add(0, 0, true);
    grid.Add(1, 3, true);
  }
  grid.Add(0, 1, false);
  grid.Add(0, 2, false);
  grid.Add(1, 1, false);
  grid.Add(1, 2, false);
  const XMonotoneRegion region = MaxGainXMonotoneRegion(grid, Ratio(1, 2));
  ASSERT_TRUE(region.found);
  // Gains: hot cell = 3*(2-1)... in den units: v*2 - u*1 = 3 each; every
  // connector cell costs 1. Taking both hot cells requires >= 2 connector
  // cells in one column plus overlap; best single cell = 3, best connected
  // path = 3 + 3 - (cost of connecting cells) = 6 - 2 = 4 via column 0
  // rows [0..3]? Column 0 has cells (0,1),(0,2) cost 1 each; (0,3) empty.
  // Region col0=[0,3], col1=[3,3]: gain 3 - 1 - 1 + 0 + 3 = 4.
  EXPECT_EQ(region.gain, 4.0);
  EXPECT_EQ(region.column_ranges.size(), 2u);
}

class XMonotonePropertyTest : public testing::TestWithParam<uint64_t> {};

/// Exhaustive x-monotone search on tiny grids by recursion over columns.
struct BruteState {
  const GridCounts* grid;
  Ratio theta;
  __int128 best;
  bool found;
};

void BruteExtend(BruteState* state, int x, int s, int t, __int128 gain) {
  state->found = true;
  if (gain > state->best) state->best = gain;
  if (x + 1 >= state->grid->nx()) return;
  const int ny = state->grid->ny();
  for (int s2 = 0; s2 < ny; ++s2) {
    for (int t2 = s2; t2 < ny; ++t2) {
      if (s2 > t || t2 < s) continue;  // must overlap
      __int128 column_gain = 0;
      for (int y = s2; y <= t2; ++y) {
        column_gain +=
            static_cast<__int128>(state->theta.den()) *
                state->grid->v(x + 1, y) -
            static_cast<__int128>(state->theta.num()) *
                state->grid->u(x + 1, y);
      }
      BruteExtend(state, x + 1, s2, t2, gain + column_gain);
    }
  }
}

TEST_P(XMonotonePropertyTest, MatchesExhaustiveSearchOnTinyGrids) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int nx = 2 + static_cast<int>(rng.NextBounded(3));  // 2..4
  const int ny = 2 + static_cast<int>(rng.NextBounded(3));
  const GridCounts grid = RandomGrid(nx, ny, 3, 0.5, seed * 31 + 7);
  const Ratio theta(1, 2);

  const XMonotoneRegion fast = MaxGainXMonotoneRegion(grid, theta);

  BruteState state{&grid, theta, 0, false};
  for (int x = 0; x < nx; ++x) {
    for (int s = 0; s < ny; ++s) {
      for (int t = s; t < ny; ++t) {
        __int128 gain = 0;
        for (int y = s; y <= t; ++y) {
          gain += static_cast<__int128>(theta.den()) * grid.v(x, y) -
                  static_cast<__int128>(theta.num()) * grid.u(x, y);
        }
        BruteExtend(&state, x, s, t, gain);
      }
    }
  }
  ASSERT_TRUE(fast.found);
  ASSERT_TRUE(state.found);
  EXPECT_EQ(static_cast<double>(state.best), fast.gain) << "seed " << seed;
}

TEST_P(XMonotonePropertyTest, AlwaysAtLeastRectangleGain) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0xbeef);
  const int nx = 2 + static_cast<int>(rng.NextBounded(6));
  const int ny = 2 + static_cast<int>(rng.NextBounded(6));
  const GridCounts grid = RandomGrid(nx, ny, 4, 0.5, seed * 7 + 3);
  const Ratio theta(1, 2);
  const XMonotoneRegion region = MaxGainXMonotoneRegion(grid, theta);
  const RegionRule rectangle = MaxGainRectangle(grid, theta);
  if (!rectangle.found || !region.found) return;
  const double rect_gain =
      static_cast<double>(theta.den()) *
          static_cast<double>(rectangle.hit_count) -
      static_cast<double>(theta.num()) *
          static_cast<double>(rectangle.support_count);
  EXPECT_GE(region.gain, rect_gain) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, XMonotonePropertyTest,
                         testing::Range(uint64_t{1}, uint64_t{25}));

TEST(XMonotoneTest, RegionIntervalsOverlapInvariant) {
  const GridCounts grid = RandomGrid(10, 10, 3, 0.4, 99);
  const XMonotoneRegion region = MaxGainXMonotoneRegion(grid, Ratio(1, 2));
  ASSERT_TRUE(region.found);
  for (size_t i = 1; i < region.column_ranges.size(); ++i) {
    const auto& [s_prev, t_prev] = region.column_ranges[i - 1];
    const auto& [s, t] = region.column_ranges[i];
    EXPECT_LE(s, t_prev);
    EXPECT_GE(t, s_prev);
    EXPECT_LE(s, t);
  }
}

}  // namespace
}  // namespace optrules::region
