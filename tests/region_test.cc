// Tests for two-dimensional region mining (grid, rectangles, x-monotone
// regions), including brute-force oracles on small grids.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "region/grid.h"
#include "region/rectangle.h"
#include "region/xmonotone.h"

namespace optrules::region {
namespace {

GridCounts RandomGrid(int nx, int ny, int64_t max_u, double hit_rate,
                      uint64_t seed) {
  Rng rng(seed);
  GridCounts grid(nx, ny);
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const int64_t u = rng.NextInt(0, max_u);
      for (int64_t k = 0; k < u; ++k) {
        grid.Add(x, y, rng.NextBernoulli(hit_rate));
      }
    }
  }
  return grid;
}

/// Rectangle sums via direct iteration.
void RectSums(const GridCounts& grid, int x1, int x2, int y1, int y2,
              int64_t* u, int64_t* v) {
  *u = 0;
  *v = 0;
  for (int y = y1; y <= y2; ++y) {
    for (int x = x1; x <= x2; ++x) {
      *u += grid.u(x, y);
      *v += grid.v(x, y);
    }
  }
}

// -------------------------------------------------------------- grid ----

TEST(GridTest, BuildGridCountsCells) {
  const std::vector<double> xs = {1.0, 5.0, 9.0, 5.0};
  const std::vector<double> ys = {1.0, 1.0, 9.0, 9.0};
  const std::vector<uint8_t> target = {1, 0, 1, 1};
  const auto bx = bucketing::BucketBoundaries::FromCutPoints({4.0});
  const auto by = bucketing::BucketBoundaries::FromCutPoints({4.0});
  const GridCounts grid = BuildGrid(xs, ys, target, bx, by);
  EXPECT_EQ(grid.nx(), 2);
  EXPECT_EQ(grid.ny(), 2);
  EXPECT_EQ(grid.total_tuples(), 4);
  EXPECT_EQ(grid.u(0, 0), 1);  // (1,1)
  EXPECT_EQ(grid.v(0, 0), 1);
  EXPECT_EQ(grid.u(1, 0), 1);  // (5,1)
  EXPECT_EQ(grid.v(1, 0), 0);
  EXPECT_EQ(grid.u(1, 1), 2);  // (9,9) and (5,9)
  EXPECT_EQ(grid.v(1, 1), 2);
  EXPECT_EQ(grid.u(0, 1), 0);
}

// -------------------------------------------------------- rectangles ----

TEST(RectangleTest, FindsPlantedBlock) {
  // A 6x6 grid: cells in [2,3]x[2,3] are pure hits, everything else pure
  // misses; each cell holds 4 tuples.
  GridCounts grid(6, 6);
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 6; ++x) {
      const bool hot = 2 <= x && x <= 3 && 2 <= y && y <= 3;
      for (int k = 0; k < 4; ++k) grid.Add(x, y, hot);
    }
  }
  const RegionRule rule = OptimizedConfidenceRectangle(grid, 16);
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.x1, 2);
  EXPECT_EQ(rule.x2, 3);
  EXPECT_EQ(rule.y1, 2);
  EXPECT_EQ(rule.y2, 3);
  EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
  EXPECT_EQ(rule.support_count, 16);
}

TEST(RectangleTest, InfeasibleSupportNotFound) {
  GridCounts grid(2, 2);
  grid.Add(0, 0, true);
  EXPECT_FALSE(OptimizedConfidenceRectangle(grid, 5).found);
}

TEST(RectangleTest, SupportRectangleWidensWhileConfident) {
  // Center 2x2 pure hits surrounded by a ring at 50%: widening keeps
  // confidence >= 1/2 and triples the support.
  GridCounts grid(4, 4);
  Rng rng(3);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const bool hot = 1 <= x && x <= 2 && 1 <= y && y <= 2;
      for (int k = 0; k < 2; ++k) {
        grid.Add(x, y, hot || (k == 0));  // ring cells: 1 of 2 hits
      }
    }
  }
  const RegionRule rule = OptimizedSupportRectangle(grid, Ratio(1, 2));
  ASSERT_TRUE(rule.found);
  EXPECT_EQ(rule.support_count, 32);  // whole grid qualifies
  EXPECT_GE(rule.confidence, 0.5);
}

class RectanglePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RectanglePropertyTest, ConfidenceMatchesBruteForce) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int nx = 2 + static_cast<int>(rng.NextBounded(8));
  const int ny = 2 + static_cast<int>(rng.NextBounded(8));
  const GridCounts grid = RandomGrid(nx, ny, 4, 0.4, seed * 13 + 1);
  if (grid.total_tuples() == 0) return;
  const int64_t min_support = 1 + rng.NextInt(0, grid.total_tuples() - 1);

  const RegionRule fast = OptimizedConfidenceRectangle(grid, min_support);

  // Brute force over all rectangles.
  bool found = false;
  int64_t best_u = 0;
  int64_t best_v = 0;
  for (int x1 = 0; x1 < nx; ++x1) {
    for (int x2 = x1; x2 < nx; ++x2) {
      for (int y1 = 0; y1 < ny; ++y1) {
        for (int y2 = y1; y2 < ny; ++y2) {
          int64_t u;
          int64_t v;
          RectSums(grid, x1, x2, y1, y2, &u, &v);
          if (u < min_support) continue;
          const bool better =
              !found ||
              static_cast<__int128>(v) * best_u >
                  static_cast<__int128>(best_v) * u ||
              (static_cast<__int128>(v) * best_u ==
                   static_cast<__int128>(best_v) * u &&
               u > best_u);
          if (better) {
            found = true;
            best_u = u;
            best_v = v;
          }
        }
      }
    }
  }
  ASSERT_EQ(fast.found, found) << "seed " << seed;
  if (!found) return;
  EXPECT_EQ(static_cast<__int128>(fast.hit_count) * best_u,
            static_cast<__int128>(best_v) * fast.support_count)
      << "seed " << seed;
  EXPECT_EQ(fast.support_count, best_u) << "seed " << seed;
}

TEST_P(RectanglePropertyTest, SupportMatchesBruteForce) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x5555);
  const int nx = 2 + static_cast<int>(rng.NextBounded(8));
  const int ny = 2 + static_cast<int>(rng.NextBounded(8));
  const GridCounts grid = RandomGrid(nx, ny, 4, 0.45, seed * 17 + 5);
  const Ratio theta(1, 2);

  const RegionRule fast = OptimizedSupportRectangle(grid, theta);

  bool found = false;
  int64_t best_u = -1;
  for (int x1 = 0; x1 < nx; ++x1) {
    for (int x2 = x1; x2 < nx; ++x2) {
      for (int y1 = 0; y1 < ny; ++y1) {
        for (int y2 = y1; y2 < ny; ++y2) {
          int64_t u;
          int64_t v;
          RectSums(grid, x1, x2, y1, y2, &u, &v);
          if (u == 0) continue;
          if (!theta.LessOrEqualTo(v, u)) continue;
          if (u > best_u) {
            found = true;
            best_u = u;
          }
        }
      }
    }
  }
  ASSERT_EQ(fast.found, found) << "seed " << seed;
  if (found) {
    EXPECT_EQ(fast.support_count, best_u) << "seed " << seed;
    EXPECT_TRUE(theta.LessOrEqualTo(fast.hit_count, fast.support_count));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectanglePropertyTest,
                         testing::Range(uint64_t{1}, uint64_t{30}));

// --------------------------------------------------------- x-monotone ----

TEST(XMonotoneTest, RectangleIsRecoveredWhenOptimal) {
  GridCounts grid(5, 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      const bool hot = 1 <= x && x <= 3 && 2 <= y && y <= 3;
      grid.Add(x, y, hot);
    }
  }
  const XMonotoneRegion region = MaxGainXMonotoneRegion(grid, Ratio(1, 2));
  ASSERT_TRUE(region.found);
  EXPECT_EQ(region.x_begin, 1);
  ASSERT_EQ(region.column_ranges.size(), 3u);
  for (const auto& [s, t] : region.column_ranges) {
    EXPECT_EQ(s, 2);
    EXPECT_EQ(t, 3);
  }
  EXPECT_DOUBLE_EQ(region.confidence, 1.0);
}

TEST(XMonotoneTest, FollowsADiagonalBand) {
  // Hits along a 2-thick diagonal band (rows x and x+1 of column x):
  // consecutive column intervals [x, x+1] overlap, so an x-monotone region
  // captures the whole band with no misses; no rectangle can.
  const int n = 6;
  GridCounts grid(n, n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      grid.Add(x, y, y == x || y == x + 1);
    }
  }
  const Ratio theta(1, 2);
  const XMonotoneRegion region = MaxGainXMonotoneRegion(grid, theta);
  const RegionRule rectangle = MaxGainRectangle(grid, theta);
  ASSERT_TRUE(region.found);
  ASSERT_TRUE(rectangle.found);
  // Band size: 2 hits per column except the last (row n would be off
  // grid), so 2n - 1 cells, all hits.
  EXPECT_EQ(region.hit_count, 2 * n - 1);
  EXPECT_EQ(region.support_count, 2 * n - 1);
  EXPECT_DOUBLE_EQ(region.confidence, 1.0);
  // Strictly more gain than the best rectangle (which must pay for misses
  // to span multiple columns, or stay narrow).
  const double rect_gain =
      2.0 * static_cast<double>(rectangle.hit_count) -
      static_cast<double>(rectangle.support_count);
  EXPECT_GT(region.gain, rect_gain);
}

TEST(XMonotoneTest, ColumnsMustOverlap) {
  // Two hot cells that do NOT share rows in adjacent columns: a connected
  // x-monotone region cannot take both without including a connector.
  GridCounts grid(2, 4);
  for (int k = 0; k < 3; ++k) {
    grid.Add(0, 0, true);
    grid.Add(1, 3, true);
  }
  grid.Add(0, 1, false);
  grid.Add(0, 2, false);
  grid.Add(1, 1, false);
  grid.Add(1, 2, false);
  const XMonotoneRegion region = MaxGainXMonotoneRegion(grid, Ratio(1, 2));
  ASSERT_TRUE(region.found);
  // Gains: hot cell = 3*(2-1)... in den units: v*2 - u*1 = 3 each; every
  // connector cell costs 1. Taking both hot cells requires >= 2 connector
  // cells in one column plus overlap; best single cell = 3, best connected
  // path = 3 + 3 - (cost of connecting cells) = 6 - 2 = 4 via column 0
  // rows [0..3]? Column 0 has cells (0,1),(0,2) cost 1 each; (0,3) empty.
  // Region col0=[0,3], col1=[3,3]: gain 3 - 1 - 1 + 0 + 3 = 4.
  EXPECT_EQ(region.gain, 4.0);
  EXPECT_EQ(region.column_ranges.size(), 2u);
}

class XMonotonePropertyTest : public testing::TestWithParam<uint64_t> {};

/// Exhaustive x-monotone search on tiny grids by recursion over columns.
struct BruteState {
  const GridCounts* grid;
  Ratio theta;
  __int128 best;
  bool found;
};

void BruteExtend(BruteState* state, int x, int s, int t, __int128 gain) {
  state->found = true;
  if (gain > state->best) state->best = gain;
  if (x + 1 >= state->grid->nx()) return;
  const int ny = state->grid->ny();
  for (int s2 = 0; s2 < ny; ++s2) {
    for (int t2 = s2; t2 < ny; ++t2) {
      if (s2 > t || t2 < s) continue;  // must overlap
      __int128 column_gain = 0;
      for (int y = s2; y <= t2; ++y) {
        column_gain +=
            static_cast<__int128>(state->theta.den()) *
                state->grid->v(x + 1, y) -
            static_cast<__int128>(state->theta.num()) *
                state->grid->u(x + 1, y);
      }
      BruteExtend(state, x + 1, s2, t2, gain + column_gain);
    }
  }
}

TEST_P(XMonotonePropertyTest, MatchesExhaustiveSearchOnTinyGrids) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int nx = 2 + static_cast<int>(rng.NextBounded(3));  // 2..4
  const int ny = 2 + static_cast<int>(rng.NextBounded(3));
  const GridCounts grid = RandomGrid(nx, ny, 3, 0.5, seed * 31 + 7);
  const Ratio theta(1, 2);

  const XMonotoneRegion fast = MaxGainXMonotoneRegion(grid, theta);

  BruteState state{&grid, theta, 0, false};
  for (int x = 0; x < nx; ++x) {
    for (int s = 0; s < ny; ++s) {
      for (int t = s; t < ny; ++t) {
        __int128 gain = 0;
        for (int y = s; y <= t; ++y) {
          gain += static_cast<__int128>(theta.den()) * grid.v(x, y) -
                  static_cast<__int128>(theta.num()) * grid.u(x, y);
        }
        BruteExtend(&state, x, s, t, gain);
      }
    }
  }
  ASSERT_TRUE(fast.found);
  ASSERT_TRUE(state.found);
  EXPECT_EQ(static_cast<double>(state.best), fast.gain) << "seed " << seed;
}

TEST_P(XMonotonePropertyTest, AlwaysAtLeastRectangleGain) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0xbeef);
  const int nx = 2 + static_cast<int>(rng.NextBounded(6));
  const int ny = 2 + static_cast<int>(rng.NextBounded(6));
  const GridCounts grid = RandomGrid(nx, ny, 4, 0.5, seed * 7 + 3);
  const Ratio theta(1, 2);
  const XMonotoneRegion region = MaxGainXMonotoneRegion(grid, theta);
  const RegionRule rectangle = MaxGainRectangle(grid, theta);
  if (!rectangle.found || !region.found) return;
  const double rect_gain =
      static_cast<double>(theta.den()) *
          static_cast<double>(rectangle.hit_count) -
      static_cast<double>(theta.num()) *
          static_cast<double>(rectangle.support_count);
  EXPECT_GE(region.gain, rect_gain) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, XMonotonePropertyTest,
                         testing::Range(uint64_t{1}, uint64_t{25}));

TEST(XMonotoneTest, RegionIntervalsOverlapInvariant) {
  const GridCounts grid = RandomGrid(10, 10, 3, 0.4, 99);
  const XMonotoneRegion region = MaxGainXMonotoneRegion(grid, Ratio(1, 2));
  ASSERT_TRUE(region.found);
  for (size_t i = 1; i < region.column_ranges.size(); ++i) {
    const auto& [s_prev, t_prev] = region.column_ranges[i - 1];
    const auto& [s, t] = region.column_ranges[i];
    EXPECT_LE(s, t_prev);
    EXPECT_GE(t, s_prev);
    EXPECT_LE(s, t);
  }
}

}  // namespace
}  // namespace optrules::region
