// Section 5: optimized ranges for the average operator.
//
// Given buckets over attribute A where v_i is the *sum* of a target
// numeric attribute B over the tuples of bucket i, compute:
//  - the maximum-average range: among ranges with at least
//    `min_support_count` tuples, the one maximizing avg(B) (via the
//    optimal-slope-pair algorithm), and
//  - the maximum-support range: among ranges with avg(B) >= min_average,
//    the one maximizing the tuple count (via the effective-index scan).

#ifndef OPTRULES_RULES_AVERAGE_RANGE_H_
#define OPTRULES_RULES_AVERAGE_RANGE_H_

#include <cstdint>
#include <span>

#include "rules/rule.h"

namespace optrules::rules {

/// Maximizes sum(v)/sum(u) subject to sum(u) >= min_support_count.
/// Requires u_i >= 1 per bucket; v_i may be any real (e.g. negative
/// balances).
RangeAggregate MaximumAverageRange(std::span<const int64_t> u,
                                   std::span<const double> v,
                                   int64_t min_support_count);

/// Maximizes sum(u) subject to sum(v)/sum(u) >= min_average. Note the
/// paper's remark: thresholds at or below the global average make the full
/// domain the trivial answer.
RangeAggregate MaximumSupportRange(std::span<const int64_t> u,
                                   std::span<const double> v,
                                   double min_average);

}  // namespace optrules::rules

#endif  // OPTRULES_RULES_AVERAGE_RANGE_H_
