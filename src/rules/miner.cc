#include "rules/miner.h"

#include <cstdio>

#include "bucketing/counting.h"
#include "bucketing/equidepth_sampler.h"
#include "bucketing/gk_sketch.h"
#include "bucketing/sort_bucketizer.h"
#include "common/ratio.h"
#include "common/rng.h"
#include "rules/average_range.h"
#include "rules/optimized_confidence.h"
#include "rules/optimized_support.h"

namespace optrules::rules {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

/// Builds equi-depth boundaries for one column under the configured
/// bucketizer strategy. `salt` decorrelates per-attribute sampling seeds.
bucketing::BucketBoundaries BuildBoundaries(const MinerOptions& options,
                                            std::span<const double> values,
                                            uint64_t salt) {
  switch (options.bucketizer) {
    case Bucketizer::kSampling: {
      Rng rng(options.seed + salt);
      bucketing::SamplerOptions sampler;
      sampler.num_buckets = options.num_buckets;
      sampler.sample_per_bucket = options.sample_per_bucket;
      return bucketing::BuildEquiDepthBoundaries(values, sampler, rng);
    }
    case Bucketizer::kGkSketch: {
      const double epsilon =
          options.gk_epsilon > 0.0
              ? options.gk_epsilon
              : 1.0 / (4.0 * static_cast<double>(options.num_buckets));
      return bucketing::BuildEquiDepthBoundariesGk(
          values, options.num_buckets, epsilon);
    }
    case Bucketizer::kExactSort:
      return bucketing::ExactEquiDepthBoundaries(values,
                                                 options.num_buckets);
  }
  OPTRULES_CHECK(false);
  return bucketing::BucketBoundaries::FromCutPoints({});
}

}  // namespace

std::string MinedRule::ToString() const {
  if (!found) {
    return "(" + numeric_attr + " => " + boolean_attr + "): no " +
           (kind == RuleKind::kOptimizedConfidence ? "ample" : "confident") +
           " range";
  }
  std::string text = "(" + numeric_attr + " in [" + FormatDouble(range_lo) +
                     ", " + FormatDouble(range_hi) + "])";
  if (!presumptive_condition.empty()) {
    text += " ^ (" + presumptive_condition + ")";
  }
  text += " => (" + boolean_attr + "=yes)";
  text += "  [support " + FormatDouble(support * 100.0) + "%, confidence " +
          FormatDouble(confidence * 100.0) + "%]";
  return text;
}

std::string MinedAggregateRange::ToString() const {
  if (!found) {
    return "avg(" + target_attr + " | " + range_attr + "): no valid range";
  }
  return "avg(" + target_attr + " | " + range_attr + " in [" +
         FormatDouble(range_lo) + ", " + FormatDouble(range_hi) + "]) = " +
         FormatDouble(average) + "  [support " +
         FormatDouble(support * 100.0) + "%]";
}

/// Cached per-numeric-attribute bucketing: boundaries are sampled once and
/// all Boolean targets counted in one scan; empty buckets are compacted.
struct Miner::AttributeBuckets {
  bucketing::BucketCounts counts;  // v has one entry per Boolean attribute
};

Miner::Miner(const storage::Relation* relation, MinerOptions options)
    : relation_(relation), options_(options) {
  OPTRULES_CHECK(relation != nullptr);
  OPTRULES_CHECK(options_.num_buckets >= 1);
  OPTRULES_CHECK(options_.sample_per_bucket >= 1);
  OPTRULES_CHECK(0.0 <= options_.min_support && options_.min_support <= 1.0);
  OPTRULES_CHECK(0.0 <= options_.min_confidence &&
                 options_.min_confidence <= 1.0);
  cache_.resize(static_cast<size_t>(relation->schema().num_numeric()));
}

Miner::~Miner() = default;

const Miner::AttributeBuckets& Miner::BucketsFor(int numeric_index) {
  auto& slot = cache_[static_cast<size_t>(numeric_index)];
  if (slot != nullptr) return *slot;

  const std::vector<double>& values =
      relation_->NumericColumn(numeric_index);
  // The salt derives a per-attribute seed so attributes get independent
  // samples but the whole run stays reproducible.
  const bucketing::BucketBoundaries boundaries = BuildBoundaries(
      options_, values, 0x9e37 * static_cast<uint64_t>(numeric_index));

  std::vector<const std::vector<uint8_t>*> targets;
  targets.reserve(static_cast<size_t>(relation_->schema().num_boolean()));
  for (int b = 0; b < relation_->schema().num_boolean(); ++b) {
    targets.push_back(&relation_->BooleanColumn(b));
  }
  auto buckets = std::make_unique<AttributeBuckets>();
  buckets->counts = bucketing::CountBuckets(values, targets, boundaries);
  bucketing::CompactEmptyBuckets(&buckets->counts);
  slot = std::move(buckets);
  return *slot;
}

Result<std::vector<MinedRule>> Miner::MinePair(
    const std::string& numeric_attr, const std::string& boolean_attr) {
  const Result<int> numeric_index =
      relation_->schema().NumericIndexOf(numeric_attr);
  if (!numeric_index.ok()) return numeric_index.status();
  const Result<int> boolean_index =
      relation_->schema().BooleanIndexOf(boolean_attr);
  if (!boolean_index.ok()) return boolean_index.status();

  const AttributeBuckets& buckets = BucketsFor(numeric_index.value());
  const bucketing::BucketCounts& counts = buckets.counts;
  const std::vector<int64_t>& u = counts.u;
  const std::vector<int64_t>& v =
      counts.v[static_cast<size_t>(boolean_index.value())];

  std::vector<MinedRule> mined;
  const RangeRule confidence_rule = OptimizedConfidenceRule(
      u, v, counts.total_tuples,
      MinSupportCount(counts.total_tuples, options_.min_support));
  const RangeRule support_rule = OptimizedSupportRule(
      u, v, counts.total_tuples, Ratio::FromDouble(options_.min_confidence));

  for (const auto& [kind, range] :
       {std::pair{RuleKind::kOptimizedConfidence, confidence_rule},
        std::pair{RuleKind::kOptimizedSupport, support_rule}}) {
    MinedRule rule;
    rule.kind = kind;
    rule.numeric_attr = numeric_attr;
    rule.boolean_attr = boolean_attr;
    rule.found = range.found;
    if (range.found) {
      rule.range_lo = counts.min_value[static_cast<size_t>(range.s)];
      rule.range_hi = counts.max_value[static_cast<size_t>(range.t)];
      rule.support_count = range.support_count;
      rule.hit_count = range.hit_count;
      rule.support = range.support;
      rule.confidence = range.confidence;
    }
    mined.push_back(std::move(rule));
  }
  return mined;
}

std::vector<MinedRule> Miner::MineAll() {
  std::vector<MinedRule> all;
  const storage::Schema& schema = relation_->schema();
  for (int a = 0; a < schema.num_numeric(); ++a) {
    for (int b = 0; b < schema.num_boolean(); ++b) {
      Result<std::vector<MinedRule>> pair =
          MinePair(schema.NumericName(a), schema.BooleanName(b));
      OPTRULES_CHECK(pair.ok());
      for (MinedRule& rule : pair.value()) {
        all.push_back(std::move(rule));
      }
    }
  }
  return all;
}

Result<std::vector<MinedRule>> Miner::MineGeneralized(
    const std::string& numeric_attr,
    const std::vector<std::string>& condition_attrs,
    const std::string& objective_attr) {
  const Result<int> numeric_index =
      relation_->schema().NumericIndexOf(numeric_attr);
  if (!numeric_index.ok()) return numeric_index.status();
  const Result<int> objective_index =
      relation_->schema().BooleanIndexOf(objective_attr);
  if (!objective_index.ok()) return objective_index.status();

  // Materialize the C1 mask (conjunction of the condition attributes).
  const int64_t n = relation_->NumRows();
  std::vector<uint8_t> c1(static_cast<size_t>(n), 1);
  std::string condition_text;
  for (const std::string& name : condition_attrs) {
    const Result<int> index = relation_->schema().BooleanIndexOf(name);
    if (!index.ok()) return index.status();
    const std::vector<uint8_t>& column =
        relation_->BooleanColumn(index.value());
    for (size_t row = 0; row < c1.size(); ++row) c1[row] &= column[row];
    if (!condition_text.empty()) condition_text += " ^ ";
    condition_text += name + "=yes";
  }

  const std::vector<double>& values =
      relation_->NumericColumn(numeric_index.value());
  const bucketing::BucketBoundaries boundaries = BuildBoundaries(
      options_, values,
      0x517c + 0x9e37 * static_cast<uint64_t>(numeric_index.value()));
  bucketing::BucketCounts counts = bucketing::CountBucketsConditional(
      values, c1, relation_->BooleanColumn(objective_index.value()),
      boundaries);
  bucketing::CompactEmptyBuckets(&counts);

  std::vector<MinedRule> mined;
  RangeRule rules[2];
  if (counts.u.empty()) {
    rules[0] = RangeRule{};
    rules[1] = RangeRule{};
  } else {
    rules[0] = OptimizedConfidenceRule(
        counts.u, counts.v[0], counts.total_tuples,
        MinSupportCount(counts.total_tuples, options_.min_support));
    rules[1] = OptimizedSupportRule(
        counts.u, counts.v[0], counts.total_tuples,
        Ratio::FromDouble(options_.min_confidence));
  }
  const RuleKind kinds[2] = {RuleKind::kOptimizedConfidence,
                             RuleKind::kOptimizedSupport};
  for (int k = 0; k < 2; ++k) {
    MinedRule rule;
    rule.kind = kinds[k];
    rule.numeric_attr = numeric_attr;
    rule.boolean_attr = objective_attr;
    rule.presumptive_condition = condition_text;
    rule.found = rules[k].found;
    if (rules[k].found) {
      rule.range_lo = counts.min_value[static_cast<size_t>(rules[k].s)];
      rule.range_hi = counts.max_value[static_cast<size_t>(rules[k].t)];
      rule.support_count = rules[k].support_count;
      rule.hit_count = rules[k].hit_count;
      rule.support = rules[k].support;
      rule.confidence = rules[k].confidence;
    }
    mined.push_back(std::move(rule));
  }
  return mined;
}

namespace {

/// Shared Section 5 setup: buckets of A with per-bucket sums of B.
Result<bucketing::BucketSums> BuildSums(const storage::Relation& relation,
                                        const MinerOptions& options,
                                        const std::string& range_attr,
                                        const std::string& target_attr) {
  const Result<int> a = relation.schema().NumericIndexOf(range_attr);
  if (!a.ok()) return a.status();
  const Result<int> b = relation.schema().NumericIndexOf(target_attr);
  if (!b.ok()) return b.status();
  const std::vector<double>& values = relation.NumericColumn(a.value());
  const bucketing::BucketBoundaries boundaries = BuildBoundaries(
      options, values, 0xa4f + 0x9e37 * static_cast<uint64_t>(a.value()));
  bucketing::BucketSums sums = bucketing::CountBucketSums(
      values, relation.NumericColumn(b.value()), boundaries);
  bucketing::CompactEmptyBuckets(&sums);
  return sums;
}

MinedAggregateRange ToMinedAggregate(const bucketing::BucketSums& sums,
                                     const RangeAggregate& aggregate,
                                     const std::string& range_attr,
                                     const std::string& target_attr) {
  MinedAggregateRange mined;
  mined.range_attr = range_attr;
  mined.target_attr = target_attr;
  mined.found = aggregate.found;
  if (aggregate.found) {
    mined.range_lo = sums.min_value[static_cast<size_t>(aggregate.s)];
    mined.range_hi = sums.max_value[static_cast<size_t>(aggregate.t)];
    mined.support_count = aggregate.support_count;
    mined.support = sums.total_tuples > 0
                        ? static_cast<double>(aggregate.support_count) /
                              static_cast<double>(sums.total_tuples)
                        : 0.0;
    mined.average = aggregate.average;
  }
  return mined;
}

}  // namespace

Result<MinedAggregateRange> Miner::MineMaximumAverageRange(
    const std::string& range_attr, const std::string& target_attr,
    double min_support) {
  Result<bucketing::BucketSums> sums_or =
      BuildSums(*relation_, options_, range_attr, target_attr);
  if (!sums_or.ok()) return sums_or.status();
  const bucketing::BucketSums& sums = sums_or.value();
  RangeAggregate aggregate;
  if (!sums.u.empty()) {
    aggregate = MaximumAverageRange(
        sums.u, sums.sum, MinSupportCount(sums.total_tuples, min_support));
  }
  return ToMinedAggregate(sums, aggregate, range_attr, target_attr);
}

Result<MinedAggregateRange> Miner::MineMaximumSupportRange(
    const std::string& range_attr, const std::string& target_attr,
    double min_average) {
  Result<bucketing::BucketSums> sums_or =
      BuildSums(*relation_, options_, range_attr, target_attr);
  if (!sums_or.ok()) return sums_or.status();
  const bucketing::BucketSums& sums = sums_or.value();
  RangeAggregate aggregate;
  if (!sums.u.empty()) {
    aggregate = MaximumSupportRange(sums.u, sums.sum, min_average);
  }
  return ToMinedAggregate(sums, aggregate, range_attr, target_attr);
}

}  // namespace optrules::rules
