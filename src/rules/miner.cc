#include "rules/miner.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bucketing/equidepth_sampler.h"
#include "bucketing/gk_sketch.h"
#include "bucketing/parallel_count.h"
#include "bucketing/sort_bucketizer.h"
#include "common/ratio.h"
#include "common/rng.h"
#include "rules/average_range.h"
#include "rules/optimized_confidence.h"
#include "rules/optimized_support.h"

namespace optrules::rules {

namespace {

/// Per-attribute salt decorrelating sampling seeds while keeping the whole
/// run reproducible; shared by Miner and MiningEngine so their boundaries
/// are identical.
uint64_t AttributeSalt(int numeric_index) {
  return 0x9e37 * static_cast<uint64_t>(numeric_index);
}

/// Seed offsets decorrelating the generalized (Section 4.3), aggregate
/// (Section 5), and region-grid (Section 1.4) bucketings from the plain
/// per-pair bucketing. Shared by Miner and MiningEngine so their
/// boundaries are identical.
constexpr uint64_t kGeneralizedSeedOffset = 0x517c;
constexpr uint64_t kAggregateSeedOffset = 0xa4f;
constexpr uint64_t kRegionSeedOffset = 0x2d9b;

/// Renders a conjunction of Boolean attribute names as the rule's
/// presumptive-condition text ("a=yes ^ b=yes").
std::string ConditionText(const std::vector<std::string>& condition_attrs) {
  std::string text;
  for (const std::string& name : condition_attrs) {
    if (!text.empty()) text += " ^ ";
    text += name + "=yes";
  }
  return text;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

/// Shared rule emission: runs both O(M) optimizers over one pair's count
/// arrays and renders the results as MinedRules. Used by Miner and
/// MiningEngine so the two paths are bit-identical by construction.
std::vector<MinedRule> EmitRulesForPair(
    const bucketing::BucketCounts& counts, int target_index,
    const MinerOptions& options, const std::string& numeric_attr,
    const std::string& boolean_attr) {
  RangeRule optimized[2];
  if (!counts.u.empty()) {
    const std::vector<int64_t>& u = counts.u;
    const std::vector<int64_t>& v =
        counts.v[static_cast<size_t>(target_index)];
    optimized[0] = OptimizedConfidenceRule(
        u, v, counts.total_tuples,
        MinSupportCount(counts.total_tuples, options.min_support));
    optimized[1] = OptimizedSupportRule(
        u, v, counts.total_tuples, Ratio::FromDouble(options.min_confidence));
  }

  std::vector<MinedRule> mined;
  const RuleKind kinds[2] = {RuleKind::kOptimizedConfidence,
                             RuleKind::kOptimizedSupport};
  for (int k = 0; k < 2; ++k) {
    const RangeRule& range = optimized[k];
    MinedRule rule;
    rule.kind = kinds[k];
    rule.numeric_attr = numeric_attr;
    rule.boolean_attr = boolean_attr;
    rule.found = range.found;
    if (range.found) {
      rule.range_lo = bucketing::RangeMinValue(counts, range.s, range.t);
      rule.range_hi = bucketing::RangeMaxValue(counts, range.s, range.t);
      rule.support_count = range.support_count;
      rule.hit_count = range.hit_count;
      rule.support = range.support;
      rule.confidence = range.confidence;
    }
    mined.push_back(std::move(rule));
  }
  return mined;
}

/// Shared Section 5 rendering: assembles a MinedAggregateRange from a
/// compacted BucketSums and an optimizer result. Used by Miner and
/// MiningEngine so the two paths are identical by construction.
MinedAggregateRange ToMinedAggregate(const bucketing::BucketSums& sums,
                                     const RangeAggregate& aggregate,
                                     const std::string& range_attr,
                                     const std::string& target_attr) {
  MinedAggregateRange mined;
  mined.range_attr = range_attr;
  mined.target_attr = target_attr;
  mined.found = aggregate.found;
  if (aggregate.found) {
    mined.range_lo = bucketing::RangeMinValue(sums, aggregate.s, aggregate.t);
    mined.range_hi = bucketing::RangeMaxValue(sums, aggregate.s, aggregate.t);
    mined.support_count = aggregate.support_count;
    mined.support = sums.total_tuples > 0
                        ? static_cast<double>(aggregate.support_count) /
                              static_cast<double>(sums.total_tuples)
                        : 0.0;
    mined.average = aggregate.average;
  }
  return mined;
}

/// Shared Section 1.4 region emission: runs both rectangle optimizers and
/// the x-monotone gain DP over one grid and assembles the MinedRegion.
/// Used by Miner and MiningEngine so the two paths are bit-identical by
/// construction (the engine's grid channel and the legacy
/// region::BuildGrid pass produce identical grids).
MinedRegion MineRegionFromGrid(const region::GridCounts& grid,
                               const MinerOptions& options,
                               const std::string& x_attr,
                               const std::string& y_attr,
                               const std::string& target_attr) {
  MinedRegion mined;
  mined.x_attr = x_attr;
  mined.y_attr = y_attr;
  mined.target_attr = target_attr;
  mined.nx = grid.nx();
  mined.ny = grid.ny();
  mined.total_tuples = grid.total_tuples();
  mined.confidence_rectangle = region::OptimizedConfidenceRectangle(
      grid, MinSupportCount(grid.total_tuples(), options.min_support));
  mined.support_rectangle = region::OptimizedSupportRectangle(
      grid, Ratio::FromDouble(options.min_confidence));
  mined.xmonotone_gain = region::MaxGainXMonotoneRegion(
      grid, Ratio::FromDouble(options.min_confidence));
  mined.found = mined.confidence_rectangle.found ||
                mined.support_rectangle.found || mined.xmonotone_gain.found;
  return mined;
}

}  // namespace

std::string MinedRegion::ToString() const {
  std::string text = "(" + x_attr + ", " + y_attr + ") in R => (" +
                     target_attr + "=yes) on a " + std::to_string(nx) + "x" +
                     std::to_string(ny) + " grid:";
  const auto rectangle_line = [](const char* label,
                                 const region::RegionRule& rule) {
    if (!rule.found) {
      return "\n  " + std::string(label) + ": none";
    }
    return "\n  " + std::string(label) + ": x[" + std::to_string(rule.x1) +
           ", " + std::to_string(rule.x2) + "] y[" + std::to_string(rule.y1) +
           ", " + std::to_string(rule.y2) + "]  [support " +
           FormatDouble(rule.support * 100.0) + "%, confidence " +
           FormatDouble(rule.confidence * 100.0) + "%]";
  };
  text += rectangle_line("confidence rectangle", confidence_rectangle);
  text += rectangle_line("support rectangle", support_rectangle);
  if (!xmonotone_gain.found) {
    text += "\n  x-monotone gain region: none";
  } else {
    text += "\n  x-monotone gain region: columns [" +
            std::to_string(xmonotone_gain.x_begin) + ", " +
            std::to_string(
                xmonotone_gain.x_begin +
                static_cast<int>(xmonotone_gain.column_ranges.size()) - 1) +
            "], gain " + FormatDouble(xmonotone_gain.gain) + "  [support " +
            FormatDouble(xmonotone_gain.support * 100.0) + "%, confidence " +
            FormatDouble(xmonotone_gain.confidence * 100.0) + "%]";
  }
  return text;
}

bucketing::BoundaryPlan ToBoundaryPlan(const MinerOptions& options) {
  bucketing::BoundaryPlan plan;
  plan.bucketizer = options.bucketizer;
  plan.num_buckets = options.num_buckets;
  plan.sample_per_bucket = options.sample_per_bucket;
  plan.seed = options.seed;
  plan.gk_epsilon = options.gk_epsilon;
  return plan;
}

std::string MinedRule::ToString() const {
  if (!found) {
    return "(" + numeric_attr + " => " + boolean_attr + "): no " +
           (kind == RuleKind::kOptimizedConfidence ? "ample" : "confident") +
           " range";
  }
  std::string text = "(" + numeric_attr + " in [" + FormatDouble(range_lo) +
                     ", " + FormatDouble(range_hi) + "])";
  if (!presumptive_condition.empty()) {
    text += " ^ (" + presumptive_condition + ")";
  }
  text += " => (" + boolean_attr + "=yes)";
  text += "  [support " + FormatDouble(support * 100.0) + "%, confidence " +
          FormatDouble(confidence * 100.0) + "%]";
  return text;
}

std::string MinedAggregateRange::ToString() const {
  if (!found) {
    return "avg(" + target_attr + " | " + range_attr + "): no valid range";
  }
  return "avg(" + target_attr + " | " + range_attr + " in [" +
         FormatDouble(range_lo) + ", " + FormatDouble(range_hi) + "]) = " +
         FormatDouble(average) + "  [support " +
         FormatDouble(support * 100.0) + "%]";
}

// ------------------------------------------------------- MiningEngine ----

MiningEngine::MiningEngine(const storage::Relation* relation,
                           MinerOptions options, ThreadPool* pool)
    : relation_(relation),
      schema_(relation != nullptr ? relation->schema() : storage::Schema()),
      options_(options),
      pool_(pool) {
  OPTRULES_CHECK(relation != nullptr);
  owned_source_ = std::make_unique<storage::RelationBatchSource>(relation);
  source_ = owned_source_.get();
}

MiningEngine::MiningEngine(storage::BatchSource* source,
                           storage::Schema schema, MinerOptions options,
                           ThreadPool* pool)
    : source_(source),
      schema_(std::move(schema)),
      options_(options),
      pool_(pool) {
  OPTRULES_CHECK(source != nullptr);
  OPTRULES_CHECK(schema_.num_numeric() == source->num_numeric());
  OPTRULES_CHECK(schema_.num_boolean() == source->num_boolean());
}

MiningEngine::MiningEngine(const dist::PartitionedTable* table,
                           MinerOptions options,
                           dist::DistributedScanOptions dist_options)
    : partitioned_(table),
      dist_options_(std::move(dist_options)),
      options_(options) {
  OPTRULES_CHECK(table != nullptr);
  schema_ = table->schema();
  // The concatenated source feeds boundary planning (one streaming pass in
  // manifest order); counting scans go through the coordinator instead and
  // account their logical scans on this source via NoteScanStarted.
  owned_source_ = std::make_unique<dist::PartitionedTableBatchSource>(
      table, dist_options_.batch_rows, dist_options_.read_mode);
  source_ = owned_source_.get();
}

MiningEngine::~MiningEngine() = default;

Status MiningEngine::ExecuteCount(bucketing::MultiCountPlan* plan) {
  if (partitioned_ != nullptr) {
    if (coordinator_ == nullptr) {
      coordinator_ = std::make_unique<dist::DistributedScanCoordinator>(
          partitioned_, dist_options_);
    }
    OPTRULES_RETURN_IF_ERROR(coordinator_->Execute(plan));
    // The fan-out read the whole table once: account ONE logical scan, so
    // scans_started() keeps meaning "times the data was read".
    source_->NoteScanStarted();
    return Status::Ok();
  }
  bucketing::ExecuteMultiCount(*source_, plan, pool_);
  return Status::Ok();
}

storage::BatchSourceStats MiningEngine::scan_stats() const {
  storage::BatchSourceStats stats;
  if (source_ != nullptr) stats = source_->SourceStats();
  if (coordinator_ != nullptr) {
    const storage::BatchSourceStats dist = coordinator_->scan_stats();
    stats.cache_hits += dist.cache_hits;
    stats.cache_misses += dist.cache_misses;
    stats.pages_skipped += dist.pages_skipped;
    stats.partitions_skipped += dist.partitions_skipped;
    stats.retries += dist.retries;
    stats.workers_respawned += dist.workers_respawned;
    stats.partitions_stolen += dist.partitions_stolen;
  }
  return stats;
}

void MiningEngine::PlanBoundarySets(
    std::span<const BoundarySetRequest> requests,
    std::span<std::vector<bucketing::BucketBoundaries>* const> out) {
  OPTRULES_CHECK(requests.size() == out.size());
  const int num_numeric = schema_.num_numeric();
  const size_t sets = requests.size();
  for (size_t i = 0; i < sets; ++i) {
    OPTRULES_CHECK(requests[i].num_buckets >= 1);
    OPTRULES_CHECK(requests[i].column_mask.empty() ||
                   requests[i].column_mask.size() ==
                       static_cast<size_t>(num_numeric));
    out[i]->clear();
    out[i]->reserve(static_cast<size_t>(num_numeric));
  }
  if (sets == 0) return;

  // Whether set `i` plans attribute `a`; masked-out attributes get empty
  // placeholder boundaries (never consumed by the caller).
  const auto needs = [&requests](size_t i, int a) {
    return requests[i].column_mask.empty() ||
           requests[i].column_mask[static_cast<size_t>(a)] != 0;
  };
  const auto placeholder = [] {
    return bucketing::BucketBoundaries::FromCutPoints({});
  };
  // For the seed-ignoring (deterministic) bucketizers, the earliest set
  // whose boundaries set `i` can simply copy: same bucket count, and the
  // earlier set planned at least the columns `i` needs (unmasked, or the
  // identical mask). Returns `i` itself when set `i` must be planned.
  const auto first_copyable = [&requests](size_t i) {
    for (size_t j = 0; j < i; ++j) {
      if (requests[j].num_buckets == requests[i].num_buckets &&
          (requests[j].column_mask.empty() ||
           requests[j].column_mask == requests[i].column_mask)) {
        return j;
      }
    }
    return i;
  };

  if (relation_ != nullptr) {
    // In-memory fast path: plan from the columns directly, with the same
    // per-attribute salts and seed offsets as the legacy Miner
    // (bit-identical boundaries). The deterministic bucketizers ignore
    // seeds, so sets sharing a bucket count share boundaries and are
    // planned once.
    for (size_t i = 0; i < sets; ++i) {
      if (options_.bucketizer != Bucketizer::kSampling) {
        const size_t same = first_copyable(i);
        if (same != i) {
          *out[i] = *out[same];
          continue;
        }
      }
      bucketing::BoundaryPlan plan = ToBoundaryPlan(options_);
      plan.seed += requests[i].seed_offset;
      plan.num_buckets = requests[i].num_buckets;
      for (int a = 0; a < num_numeric; ++a) {
        out[i]->push_back(
            needs(i, a)
                ? bucketing::BuildBoundaries(relation_->NumericColumn(a),
                                             plan, AttributeSalt(a))
                : placeholder());
      }
    }
    return;
  }

  // Generic path: ONE streaming pass plans every requested set at once.
  switch (options_.bucketizer) {
    case Bucketizer::kSampling: {
      // One reservoir per planned (set, attribute) -- sized for the set's
      // bucket count -- each with its own deterministic generator, all
      // filled in one scan. Masked-out slots stay empty and cost nothing.
      std::vector<bucketing::ReservoirSampler> reservoirs;
      std::vector<Rng> rngs;
      reservoirs.reserve(sets * static_cast<size_t>(num_numeric));
      rngs.reserve(sets * static_cast<size_t>(num_numeric));
      for (size_t i = 0; i < sets; ++i) {
        const int64_t sample_size =
            options_.sample_per_bucket * requests[i].num_buckets;
        for (int a = 0; a < num_numeric; ++a) {
          // Masked-out slots get a minimal reservoir that is never fed.
          reservoirs.emplace_back(needs(i, a) ? sample_size : 1);
          rngs.emplace_back(options_.seed + requests[i].seed_offset +
                            AttributeSalt(a));
        }
      }
      std::unique_ptr<storage::BatchReader> reader = source_->CreateReader();
      storage::ColumnarBatch batch;
      while (reader->Next(&batch)) {
        for (size_t i = 0; i < sets; ++i) {
          for (int a = 0; a < num_numeric; ++a) {
            if (!needs(i, a)) continue;
            const size_t slot = i * static_cast<size_t>(num_numeric) +
                                static_cast<size_t>(a);
            for (const double value : batch.numeric(a)) {
              reservoirs[slot].Add(value, rngs[slot]);
            }
          }
        }
      }
      for (size_t i = 0; i < sets; ++i) {
        for (int a = 0; a < num_numeric; ++a) {
          const size_t slot = i * static_cast<size_t>(num_numeric) +
                              static_cast<size_t>(a);
          out[i]->push_back(
              needs(i, a)
                  ? reservoirs[slot].TakeBoundaries(requests[i].num_buckets)
                  : placeholder());
        }
      }
      return;
    }
    case Bucketizer::kGkSketch: {
      // One deterministic GK sketch per (distinct epsilon, attribute),
      // all fed in one scan; identical to the in-memory sketch because
      // insertion order is the row order either way. Seeds are ignored,
      // but the auto epsilon depends on the bucket count, so sets with
      // different bucket counts may need their own sketch group.
      std::vector<double> epsilons(sets);
      std::vector<size_t> group_of(sets);
      std::vector<double> distinct;
      for (size_t i = 0; i < sets; ++i) {
        bucketing::BoundaryPlan plan = ToBoundaryPlan(options_);
        plan.num_buckets = requests[i].num_buckets;
        epsilons[i] = plan.EffectiveGkEpsilon();
        size_t g = distinct.size();
        for (size_t d = 0; d < distinct.size(); ++d) {
          if (distinct[d] == epsilons[i]) {
            g = d;
            break;
          }
        }
        if (g == distinct.size()) distinct.push_back(epsilons[i]);
        group_of[i] = g;
      }
      // Per group, sketch only the attributes some member set plans.
      std::vector<std::vector<uint8_t>> group_needs(
          distinct.size(),
          std::vector<uint8_t>(static_cast<size_t>(num_numeric), 0));
      for (size_t i = 0; i < sets; ++i) {
        for (int a = 0; a < num_numeric; ++a) {
          if (needs(i, a)) group_needs[group_of[i]][static_cast<size_t>(a)] = 1;
        }
      }
      std::vector<bucketing::GkQuantileSketch> sketches;
      sketches.reserve(distinct.size() * static_cast<size_t>(num_numeric));
      for (const double epsilon : distinct) {
        for (int a = 0; a < num_numeric; ++a) sketches.emplace_back(epsilon);
      }
      std::unique_ptr<storage::BatchReader> reader = source_->CreateReader();
      storage::ColumnarBatch batch;
      while (reader->Next(&batch)) {
        for (size_t g = 0; g < distinct.size(); ++g) {
          for (int a = 0; a < num_numeric; ++a) {
            if (group_needs[g][static_cast<size_t>(a)] == 0) continue;
            auto& sketch = sketches[g * static_cast<size_t>(num_numeric) +
                                    static_cast<size_t>(a)];
            for (const double value : batch.numeric(a)) sketch.Add(value);
          }
        }
      }
      for (size_t i = 0; i < sets; ++i) {
        for (int a = 0; a < num_numeric; ++a) {
          const auto& sketch =
              sketches[group_of[i] * static_cast<size_t>(num_numeric) +
                       static_cast<size_t>(a)];
          out[i]->push_back(
              !needs(i, a) || sketch.count() == 0
                  ? placeholder()
                  : bucketing::BoundariesFromGkSketch(
                        sketch, requests[i].num_buckets));
        }
      }
      return;
    }
    case Bucketizer::kExactSort: {
      // Exact depths need the full columns; buffer them from one scan.
      // This is an in-memory fallback -- out-of-core exact bucketing goes
      // through bucketing::NaiveSortBoundariesFromFile instead. Seeds are
      // ignored, so sets sharing a bucket count copy the first set's
      // boundaries instead of re-sorting every column.
      std::vector<uint8_t> any_needs(static_cast<size_t>(num_numeric), 0);
      for (size_t i = 0; i < sets; ++i) {
        for (int a = 0; a < num_numeric; ++a) {
          if (needs(i, a)) any_needs[static_cast<size_t>(a)] = 1;
        }
      }
      std::vector<std::vector<double>> columns(
          static_cast<size_t>(num_numeric));
      std::unique_ptr<storage::BatchReader> reader = source_->CreateReader();
      storage::ColumnarBatch batch;
      while (reader->Next(&batch)) {
        for (int a = 0; a < num_numeric; ++a) {
          if (any_needs[static_cast<size_t>(a)] == 0) continue;
          const std::span<const double> values = batch.numeric(a);
          auto& column = columns[static_cast<size_t>(a)];
          column.insert(column.end(), values.begin(), values.end());
        }
      }
      for (size_t i = 0; i < sets; ++i) {
        const size_t same = first_copyable(i);
        if (same != i) {
          *out[i] = *out[same];
          continue;
        }
        for (int a = 0; a < num_numeric; ++a) {
          out[i]->push_back(
              needs(i, a)
                  ? bucketing::ExactEquiDepthBoundaries(
                        columns[static_cast<size_t>(a)],
                        requests[i].num_buckets)
                  : placeholder());
        }
      }
      return;
    }
  }
  OPTRULES_CHECK(false);
}

Status MiningEngine::RunCountingScan() {
  const int num_numeric = schema_.num_numeric();
  const auto num_attrs = static_cast<size_t>(num_numeric);
  bucketing::MultiCountSpec spec;
  spec.num_targets = schema_.num_boolean();
  spec.conditions = conditions_;
  // Base channels: every numeric attribute against every Boolean target.
  for (int a = 0; a < num_numeric; ++a) {
    bucketing::CountChannel channel;
    channel.column = a;
    channel.boundaries = &boundaries_[static_cast<size_t>(a)];
    spec.channels.push_back(std::move(channel));
  }
  // Conditional channels (Section 4.3): every registered condition times
  // every numeric attribute, over the generalized boundary set.
  for (size_t c = 0; c < conditions_.size(); ++c) {
    for (int a = 0; a < num_numeric; ++a) {
      bucketing::CountChannel channel;
      channel.column = a;
      channel.boundaries = &generalized_boundaries_[static_cast<size_t>(a)];
      channel.condition = static_cast<int>(c);
      spec.channels.push_back(std::move(channel));
    }
  }
  // Sum channels (Section 5): per range attribute, one channel summing
  // every registered target over the aggregate boundary set.
  const size_t aggregate_base = spec.channels.size();
  if (!sum_targets_.empty()) {
    for (int a = 0; a < num_numeric; ++a) {
      bucketing::CountChannel channel;
      channel.column = a;
      channel.boundaries = &aggregate_boundaries_[static_cast<size_t>(a)];
      channel.count_targets = false;
      channel.sum_targets = sum_targets_;
      spec.channels.push_back(std::move(channel));
    }
  }
  // Grid channels (Section 1.4): one per registered region pair, each
  // axis over the region boundary set of that axis' bucket count (nx for
  // x, ny for y -- rectangular pairs are first-class). Pairs sharing an
  // (axis, count) share its locate group inside the plan.
  for (const RegionPair& pair : region_pairs_) {
    bucketing::GridChannel channel;
    channel.x_column = pair.x;
    channel.x_boundaries = &RegionBoundary(pair.nx, pair.x);
    channel.y_column = pair.y;
    channel.y_boundaries = &RegionBoundary(pair.ny, pair.y);
    spec.grid_channels.push_back(channel);
  }

  bucketing::MultiCountPlan plan(std::move(spec));
  OPTRULES_RETURN_IF_ERROR(ExecuteCount(&plan));
  ++counting_scans_;

  counts_.reserve(num_attrs);
  for (int a = 0; a < num_numeric; ++a) {
    counts_.push_back(plan.TakeCounts(a));
    bucketing::CompactEmptyBuckets(&counts_.back());
  }
  generalized_counts_.resize(conditions_.size());
  for (size_t c = 0; c < conditions_.size(); ++c) {
    generalized_counts_[c].reserve(num_attrs);
    for (int a = 0; a < num_numeric; ++a) {
      const size_t channel = num_attrs * (c + 1) + static_cast<size_t>(a);
      generalized_counts_[c].push_back(
          plan.TakeCounts(static_cast<int>(channel)));
      bucketing::CompactEmptyBuckets(&generalized_counts_[c].back());
    }
  }
  aggregate_sums_.assign(num_attrs, {});
  hull_contexts_.clear();  // derived from the sums being replaced
  if (!sum_targets_.empty()) {
    for (int a = 0; a < num_numeric; ++a) {
      const auto channel =
          static_cast<int>(aggregate_base + static_cast<size_t>(a));
      auto& per_target = aggregate_sums_[static_cast<size_t>(a)];
      per_target.reserve(sum_targets_.size());
      for (size_t k = 0; k < sum_targets_.size(); ++k) {
        per_target.push_back(
            plan.TakeBucketSums(channel, static_cast<int>(k)));
        bucketing::CompactEmptyBuckets(&per_target.back());
      }
    }
  }
  region_grids_.clear();
  region_grids_.reserve(region_pairs_.size());
  for (size_t p = 0; p < region_pairs_.size(); ++p) {
    region_grids_.push_back(plan.TakeGridCounts(static_cast<int>(p)));
  }
  return Status::Ok();
}

void MiningEngine::Prepare() {
  const Status status = TryPrepare();
  if (!status.ok()) {
    std::fprintf(stderr, "MiningEngine::Prepare failed: %s\n",
                 status.ToString().c_str());
  }
  OPTRULES_CHECK(status.ok());
}

Status MiningEngine::TryPrepare() {
  if (prepared_) return Status::Ok();
  OPTRULES_CHECK(options_.num_buckets >= 1);
  OPTRULES_CHECK(options_.sample_per_bucket >= 1);
  OPTRULES_CHECK(options_.region_grid_buckets >= 1);
  OPTRULES_CHECK(0.0 <= options_.min_support && options_.min_support <= 1.0);
  OPTRULES_CHECK(0.0 <= options_.min_confidence &&
                 options_.min_confidence <= 1.0);
  // Partitions that vanished since the table was opened must fail softly
  // here; the planning stream below treats a partition disappearing
  // MID-scan as fatal, so the window is re-validated up front.
  if (partitioned_ != nullptr) {
    OPTRULES_RETURN_IF_ERROR(partitioned_->Validate());
  }
  // One planning pass covers the base boundaries plus the decorrelated
  // generalized / aggregate / region sets the session has registered so
  // far.
  std::vector<BoundarySetRequest> requests = {{0, options_.num_buckets, {}}};
  std::vector<std::vector<bucketing::BucketBoundaries>*> outs = {
      &boundaries_};
  if (!conditions_.empty()) {
    requests.push_back({kGeneralizedSeedOffset, options_.num_buckets, {}});
    outs.push_back(&generalized_boundaries_);
  }
  if (!sum_targets_.empty()) {
    requests.push_back({kAggregateSeedOffset, options_.num_buckets, {}});
    outs.push_back(&aggregate_boundaries_);
  }
  if (!region_pairs_.empty()) {
    // One request per distinct grid bucket count (rectangular pairs plan
    // their x axis at nx and y axis at ny), each masked to the columns
    // that actually use it.
    region_planned_ = RegionColumnMasks();
    for (auto& [count, mask] : region_planned_) {
      requests.push_back({kRegionSeedOffset, count, mask});
      outs.push_back(&region_boundaries_[count]);
    }
  }
  PlanBoundarySets(requests, outs);
  OPTRULES_RETURN_IF_ERROR(RunCountingScan());
  prepared_ = true;
  return Status::Ok();
}

std::map<int, std::vector<uint8_t>> MiningEngine::RegionColumnMasks() const {
  std::map<int, std::vector<uint8_t>> masks;
  const auto mark = [this, &masks](int count, int column) {
    std::vector<uint8_t>& mask = masks[count];
    if (mask.empty()) {
      mask.assign(static_cast<size_t>(schema_.num_numeric()), 0);
    }
    mask[static_cast<size_t>(column)] = 1;
  };
  for (const RegionPair& pair : region_pairs_) {
    mark(pair.nx, pair.x);
    mark(pair.ny, pair.y);
  }
  return masks;
}

const bucketing::BucketBoundaries& MiningEngine::RegionBoundary(
    int num_buckets, int column) const {
  const auto it = region_boundaries_.find(num_buckets);
  OPTRULES_CHECK(it != region_boundaries_.end());
  return it->second[static_cast<size_t>(column)];
}

std::vector<MinedRule> MiningEngine::MineAllPairs() {
  const ThresholdSet thresholds[] = {
      {options_.min_support, options_.min_confidence}};
  return MineAllPairs(thresholds);
}

Result<std::vector<MinedRule>> MiningEngine::MinePair(
    const std::string& numeric_attr, const std::string& boolean_attr) {
  const Result<int> numeric_index = schema_.NumericIndexOf(numeric_attr);
  if (!numeric_index.ok()) return numeric_index.status();
  const Result<int> boolean_index = schema_.BooleanIndexOf(boolean_attr);
  if (!boolean_index.ok()) return boolean_index.status();
  Prepare();
  return EmitRulesForPair(
      counts_[static_cast<size_t>(numeric_index.value())],
      boolean_index.value(), options_, numeric_attr, boolean_attr);
}

std::vector<MinedRule> MiningEngine::MineAllPairs(
    std::span<const ThresholdSet> sweep) {
  Prepare();
  std::vector<MinedRule> all;
  all.reserve(sweep.size() * static_cast<size_t>(schema_.num_numeric()) *
              static_cast<size_t>(schema_.num_boolean()) * 2);
  for (const ThresholdSet& thresholds : sweep) {
    MinerOptions swept = options_;
    swept.min_support = thresholds.min_support;
    swept.min_confidence = thresholds.min_confidence;
    OPTRULES_CHECK(0.0 <= swept.min_support && swept.min_support <= 1.0);
    OPTRULES_CHECK(0.0 <= swept.min_confidence &&
                   swept.min_confidence <= 1.0);
    for (int a = 0; a < schema_.num_numeric(); ++a) {
      for (int b = 0; b < schema_.num_boolean(); ++b) {
        std::vector<MinedRule> pair =
            EmitRulesForPair(counts_[static_cast<size_t>(a)], b, swept,
                             schema_.NumericName(a), schema_.BooleanName(b));
        for (MinedRule& rule : pair) all.push_back(std::move(rule));
      }
    }
  }
  return all;
}

Result<int> MiningEngine::EnsureCondition(
    const std::vector<std::string>& names) {
  std::vector<int> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    const Result<int> index = schema_.BooleanIndexOf(name);
    if (!index.ok()) return index.status();
    indices.push_back(index.value());
  }
  // Canonicalize the conjunction (order and duplicates don't change the
  // mask) so a permuted spelling of a registered condition never triggers
  // a needless supplemental scan; the rendered presumptive_condition text
  // still follows the caller's per-query attribute order.
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  for (size_t c = 0; c < conditions_.size(); ++c) {
    if (conditions_[c] == indices) return static_cast<int>(c);
  }
  conditions_.push_back(std::move(indices));
  const int condition = static_cast<int>(conditions_.size()) - 1;
  // A condition registered after the shared scan costs one supplemental
  // scan; registered before, it rides along for free. A failed
  // supplemental scan rolls the registration back so a retry re-scans.
  if (prepared_) {
    const Status status = AddConditionChannels(condition);
    if (!status.ok()) {
      conditions_.pop_back();
      return status;
    }
  }
  return condition;
}

Result<int> MiningEngine::EnsureSumTarget(const std::string& name) {
  const Result<int> index = schema_.NumericIndexOf(name);
  if (!index.ok()) return index.status();
  for (size_t k = 0; k < sum_targets_.size(); ++k) {
    if (sum_targets_[k] == index.value()) return static_cast<int>(k);
  }
  sum_targets_.push_back(index.value());
  const int k = static_cast<int>(sum_targets_.size()) - 1;
  if (prepared_) {
    const Status status = AddSumTargetChannels(index.value());
    if (!status.ok()) {
      sum_targets_.pop_back();
      return status;
    }
  }
  return k;
}

Status MiningEngine::AddConditionChannels(int condition_index) {
  if (generalized_boundaries_.empty()) {
    const BoundarySetRequest requests[] = {
        {kGeneralizedSeedOffset, options_.num_buckets, {}}};
    std::vector<bucketing::BucketBoundaries>* outs[] = {
        &generalized_boundaries_};
    PlanBoundarySets(requests, outs);
  }
  bucketing::MultiCountSpec spec;
  spec.num_targets = schema_.num_boolean();
  spec.conditions = {
      conditions_[static_cast<size_t>(condition_index)]};
  for (int a = 0; a < schema_.num_numeric(); ++a) {
    bucketing::CountChannel channel;
    channel.column = a;
    channel.boundaries = &generalized_boundaries_[static_cast<size_t>(a)];
    channel.condition = 0;
    spec.channels.push_back(std::move(channel));
  }
  bucketing::MultiCountPlan plan(std::move(spec));
  OPTRULES_RETURN_IF_ERROR(ExecuteCount(&plan));
  ++counting_scans_;
  generalized_counts_.emplace_back();
  generalized_counts_.back().reserve(
      static_cast<size_t>(schema_.num_numeric()));
  for (int a = 0; a < schema_.num_numeric(); ++a) {
    generalized_counts_.back().push_back(plan.TakeCounts(a));
    bucketing::CompactEmptyBuckets(&generalized_counts_.back().back());
  }
  return Status::Ok();
}

Status MiningEngine::AddSumTargetChannels(int target) {
  if (aggregate_boundaries_.empty()) {
    const BoundarySetRequest requests[] = {
        {kAggregateSeedOffset, options_.num_buckets, {}}};
    std::vector<bucketing::BucketBoundaries>* outs[] = {
        &aggregate_boundaries_};
    PlanBoundarySets(requests, outs);
  }
  bucketing::MultiCountSpec spec;
  spec.num_targets = schema_.num_boolean();
  for (int a = 0; a < schema_.num_numeric(); ++a) {
    bucketing::CountChannel channel;
    channel.column = a;
    channel.boundaries = &aggregate_boundaries_[static_cast<size_t>(a)];
    channel.count_targets = false;
    channel.sum_targets = {target};
    spec.channels.push_back(std::move(channel));
  }
  bucketing::MultiCountPlan plan(std::move(spec));
  OPTRULES_RETURN_IF_ERROR(ExecuteCount(&plan));
  ++counting_scans_;
  if (aggregate_sums_.empty()) {
    aggregate_sums_.assign(static_cast<size_t>(schema_.num_numeric()), {});
  }
  for (int a = 0; a < schema_.num_numeric(); ++a) {
    auto& per_target = aggregate_sums_[static_cast<size_t>(a)];
    per_target.push_back(plan.TakeBucketSums(a, 0));
    bucketing::CompactEmptyBuckets(&per_target.back());
  }
  return Status::Ok();
}

Result<int> MiningEngine::EnsureRegionPair(const std::string& x_attr,
                                           const std::string& y_attr,
                                           int nx, int ny) {
  if (nx < 1 || ny < 1) {
    return Status::InvalidArgument("region grid shape must be >= 1x1");
  }
  const Result<int> x = schema_.NumericIndexOf(x_attr);
  if (!x.ok()) return x.status();
  const Result<int> y = schema_.NumericIndexOf(y_attr);
  if (!y.ok()) return y.status();
  const RegionPair pair{x.value(), y.value(), nx, ny};
  for (size_t p = 0; p < region_pairs_.size(); ++p) {
    if (region_pairs_[p] == pair) return static_cast<int>(p);
  }
  region_pairs_.push_back(pair);
  const int index = static_cast<int>(region_pairs_.size()) - 1;
  // A pair registered after the shared scan costs one supplemental scan;
  // registered before, its grid channel rides along for free (failed
  // supplemental scans roll the registration back).
  if (prepared_) {
    const Status status = AddRegionChannel(index);
    if (!status.ok()) {
      region_pairs_.pop_back();
      return status;
    }
  }
  return index;
}

int MiningEngine::FindRegionPair(int x, int y) const {
  for (size_t p = 0; p < region_pairs_.size(); ++p) {
    if (region_pairs_[p].x == x && region_pairs_[p].y == y) {
      return static_cast<int>(p);
    }
  }
  return -1;
}

Status MiningEngine::AddRegionChannel(int pair_index) {
  const RegionPair& pair = region_pairs_[static_cast<size_t>(pair_index)];
  // Re-plan a region set when its bucket count has never been planned or
  // the late pair buckets a column outside that count's planned mask
  // (each column's boundaries are derived independently, so columns
  // already planned come out identical).
  const auto ensure_planned = [this](int count, int column) {
    std::vector<uint8_t>& planned = region_planned_[count];
    if (!planned.empty() && planned[static_cast<size_t>(column)] != 0) {
      return;
    }
    std::map<int, std::vector<uint8_t>> masks = RegionColumnMasks();
    planned = std::move(masks[count]);
    const BoundarySetRequest requests[] = {
        {kRegionSeedOffset, count, planned}};
    std::vector<bucketing::BucketBoundaries>* outs[] = {
        &region_boundaries_[count]};
    PlanBoundarySets(requests, outs);
  };
  ensure_planned(pair.nx, pair.x);
  ensure_planned(pair.ny, pair.y);
  bucketing::MultiCountSpec spec;
  spec.num_targets = schema_.num_boolean();
  bucketing::GridChannel channel;
  channel.x_column = pair.x;
  channel.x_boundaries = &RegionBoundary(pair.nx, pair.x);
  channel.y_column = pair.y;
  channel.y_boundaries = &RegionBoundary(pair.ny, pair.y);
  spec.grid_channels.push_back(channel);
  bucketing::MultiCountPlan plan(std::move(spec));
  OPTRULES_RETURN_IF_ERROR(ExecuteCount(&plan));
  ++counting_scans_;
  region_grids_.push_back(plan.TakeGridCounts(0));
  return Status::Ok();
}

Status MiningEngine::RequestGeneralized(
    const std::vector<std::string>& condition_attrs) {
  const Result<int> condition = EnsureCondition(condition_attrs);
  return condition.ok() ? Status::Ok() : condition.status();
}

Status MiningEngine::RequestAverageTarget(const std::string& target_attr) {
  const Result<int> target = EnsureSumTarget(target_attr);
  return target.ok() ? Status::Ok() : target.status();
}

Status MiningEngine::RequestRegionPair(const std::string& x_attr,
                                       const std::string& y_attr) {
  return RequestRegionPair(x_attr, y_attr, options_.region_grid_buckets,
                           options_.region_grid_buckets);
}

Status MiningEngine::RequestRegionPair(const std::string& x_attr,
                                       const std::string& y_attr, int nx,
                                       int ny) {
  const Result<int> pair = EnsureRegionPair(x_attr, y_attr, nx, ny);
  return pair.ok() ? Status::Ok() : pair.status();
}

Result<MinedRegion> MiningEngine::MineOptimizedRegion(
    const std::string& x_attr, const std::string& y_attr,
    const std::string& target_attr) {
  const Result<int> target = schema_.BooleanIndexOf(target_attr);
  if (!target.ok()) return target.status();
  // An already-registered pair over (x, y) answers at its registered grid
  // shape (rectangular included); otherwise auto-register the square
  // default, at the documented supplemental-scan price when late.
  Result<int> pair = [&]() -> Result<int> {
    const Result<int> x = schema_.NumericIndexOf(x_attr);
    if (!x.ok()) return x.status();
    const Result<int> y = schema_.NumericIndexOf(y_attr);
    if (!y.ok()) return y.status();
    const int found = FindRegionPair(x.value(), y.value());
    if (found >= 0) return found;
    return EnsureRegionPair(x_attr, y_attr, options_.region_grid_buckets,
                            options_.region_grid_buckets);
  }();
  if (!pair.ok()) return pair.status();
  Prepare();
  const region::GridCounts grid = region::FromGridBucketCounts(
      region_grids_[static_cast<size_t>(pair.value())], target.value());
  return MineRegionFromGrid(grid, options_, x_attr, y_attr, target_attr);
}

Result<std::vector<MinedRule>> MiningEngine::MineGeneralized(
    const std::string& numeric_attr,
    const std::vector<std::string>& condition_attrs,
    const std::string& objective_attr) {
  const Result<int> numeric_index = schema_.NumericIndexOf(numeric_attr);
  if (!numeric_index.ok()) return numeric_index.status();
  const Result<int> objective_index = schema_.BooleanIndexOf(objective_attr);
  if (!objective_index.ok()) return objective_index.status();
  const Result<int> condition = EnsureCondition(condition_attrs);
  if (!condition.ok()) return condition.status();
  Prepare();
  const bucketing::BucketCounts& counts =
      generalized_counts_[static_cast<size_t>(condition.value())]
                         [static_cast<size_t>(numeric_index.value())];
  std::vector<MinedRule> mined = EmitRulesForPair(
      counts, objective_index.value(), options_, numeric_attr,
      objective_attr);
  const std::string condition_text = ConditionText(condition_attrs);
  for (MinedRule& rule : mined) rule.presumptive_condition = condition_text;
  return mined;
}

const SlopePairContext& MiningEngine::HullContextFor(int range_attr,
                                                     int k) {
  const auto a = static_cast<size_t>(range_attr);
  const auto ki = static_cast<size_t>(k);
  if (hull_contexts_.size() < aggregate_sums_.size()) {
    hull_contexts_.resize(aggregate_sums_.size());
  }
  if (hull_contexts_[a].size() < aggregate_sums_[a].size()) {
    hull_contexts_[a].resize(aggregate_sums_[a].size());
  }
  std::unique_ptr<SlopePairContext>& slot = hull_contexts_[a][ki];
  if (slot == nullptr) {
    const bucketing::BucketSums& sums = SumsFor(range_attr, k);
    slot = std::make_unique<SlopePairContext>(sums.u, sums.sum);
    ++hull_contexts_built_;
  }
  return *slot;
}

Result<MinedAggregateRange> MiningEngine::MineMaximumAverageRange(
    const std::string& range_attr, const std::string& target_attr,
    double min_support) {
  const Result<int> range_index = schema_.NumericIndexOf(range_attr);
  if (!range_index.ok()) return range_index.status();
  const Result<int> target = EnsureSumTarget(target_attr);
  if (!target.ok()) return target.status();
  Prepare();
  const bucketing::BucketSums& sums =
      SumsFor(range_index.value(), target.value());
  RangeAggregate aggregate;
  if (!sums.u.empty()) {
    // Identical to MaximumAverageRange(sums.u, sums.sum, ...) but the
    // threshold-independent hull context is built once per (range,
    // target) pair and reused by every later threshold.
    const SlopePairContext& context =
        HullContextFor(range_index.value(), target.value());
    const SlopePair pair = context.Solve(
        MinSupportCount(sums.total_tuples, min_support));
    if (pair.found) {
      aggregate = MakeRangeAggregate(sums.u, sums.sum, pair.m, pair.n - 1);
    }
  }
  return ToMinedAggregate(sums, aggregate, range_attr, target_attr);
}

Result<MinedAggregateRange> MiningEngine::MineMaximumSupportRange(
    const std::string& range_attr, const std::string& target_attr,
    double min_average) {
  const Result<int> range_index = schema_.NumericIndexOf(range_attr);
  if (!range_index.ok()) return range_index.status();
  const Result<int> target = EnsureSumTarget(target_attr);
  if (!target.ok()) return target.status();
  Prepare();
  const bucketing::BucketSums& sums =
      SumsFor(range_index.value(), target.value());
  RangeAggregate aggregate;
  if (!sums.u.empty()) {
    aggregate = MaximumSupportRange(sums.u, sums.sum, min_average);
  }
  return ToMinedAggregate(sums, aggregate, range_attr, target_attr);
}

// -------------------------------------------------------------- Miner ----

/// Cached per-numeric-attribute bucketing: boundaries are sampled once and
/// all Boolean targets counted in one scan; empty buckets are compacted.
struct Miner::AttributeBuckets {
  bucketing::BucketCounts counts;  // v has one entry per Boolean attribute
};

Miner::Miner(const storage::Relation* relation, MinerOptions options)
    : relation_(relation), options_(options) {
  OPTRULES_CHECK(relation != nullptr);
  OPTRULES_CHECK(options_.num_buckets >= 1);
  OPTRULES_CHECK(options_.sample_per_bucket >= 1);
  OPTRULES_CHECK(0.0 <= options_.min_support && options_.min_support <= 1.0);
  OPTRULES_CHECK(0.0 <= options_.min_confidence &&
                 options_.min_confidence <= 1.0);
  cache_.resize(static_cast<size_t>(relation->schema().num_numeric()));
}

Miner::~Miner() = default;

const Miner::AttributeBuckets& Miner::BucketsFor(int numeric_index) {
  auto& slot = cache_[static_cast<size_t>(numeric_index)];
  if (slot != nullptr) return *slot;

  const std::vector<double>& values =
      relation_->NumericColumn(numeric_index);
  const bucketing::BucketBoundaries boundaries = bucketing::BuildBoundaries(
      values, ToBoundaryPlan(options_), AttributeSalt(numeric_index));

  std::vector<const std::vector<uint8_t>*> targets;
  targets.reserve(static_cast<size_t>(relation_->schema().num_boolean()));
  for (int b = 0; b < relation_->schema().num_boolean(); ++b) {
    targets.push_back(&relation_->BooleanColumn(b));
  }
  auto buckets = std::make_unique<AttributeBuckets>();
  buckets->counts = bucketing::CountBuckets(values, targets, boundaries);
  bucketing::CompactEmptyBuckets(&buckets->counts);
  slot = std::move(buckets);
  return *slot;
}

Result<std::vector<MinedRule>> Miner::MinePair(
    const std::string& numeric_attr, const std::string& boolean_attr) {
  const Result<int> numeric_index =
      relation_->schema().NumericIndexOf(numeric_attr);
  if (!numeric_index.ok()) return numeric_index.status();
  const Result<int> boolean_index =
      relation_->schema().BooleanIndexOf(boolean_attr);
  if (!boolean_index.ok()) return boolean_index.status();

  const AttributeBuckets& buckets = BucketsFor(numeric_index.value());
  return EmitRulesForPair(buckets.counts, boolean_index.value(), options_,
                          numeric_attr, boolean_attr);
}

std::vector<MinedRule> Miner::MineAll() {
  std::vector<MinedRule> all;
  const storage::Schema& schema = relation_->schema();
  for (int a = 0; a < schema.num_numeric(); ++a) {
    for (int b = 0; b < schema.num_boolean(); ++b) {
      Result<std::vector<MinedRule>> pair =
          MinePair(schema.NumericName(a), schema.BooleanName(b));
      OPTRULES_CHECK(pair.ok());
      for (MinedRule& rule : pair.value()) {
        all.push_back(std::move(rule));
      }
    }
  }
  return all;
}

Result<std::vector<MinedRule>> Miner::MineGeneralized(
    const std::string& numeric_attr,
    const std::vector<std::string>& condition_attrs,
    const std::string& objective_attr) {
  const Result<int> numeric_index =
      relation_->schema().NumericIndexOf(numeric_attr);
  if (!numeric_index.ok()) return numeric_index.status();
  const Result<int> objective_index =
      relation_->schema().BooleanIndexOf(objective_attr);
  if (!objective_index.ok()) return objective_index.status();

  // Materialize the C1 mask (conjunction of the condition attributes).
  const int64_t n = relation_->NumRows();
  std::vector<uint8_t> c1(static_cast<size_t>(n), 1);
  for (const std::string& name : condition_attrs) {
    const Result<int> index = relation_->schema().BooleanIndexOf(name);
    if (!index.ok()) return index.status();
    const std::vector<uint8_t>& column =
        relation_->BooleanColumn(index.value());
    for (size_t row = 0; row < c1.size(); ++row) c1[row] &= column[row];
  }

  const std::vector<double>& values =
      relation_->NumericColumn(numeric_index.value());
  bucketing::BoundaryPlan plan = ToBoundaryPlan(options_);
  // Decorrelate from the plain per-pair bucketing.
  plan.seed += kGeneralizedSeedOffset;
  const bucketing::BucketBoundaries boundaries = bucketing::BuildBoundaries(
      values, plan, AttributeSalt(numeric_index.value()));
  bucketing::BucketCounts counts = bucketing::CountBucketsConditional(
      values, c1, relation_->BooleanColumn(objective_index.value()),
      boundaries);
  bucketing::CompactEmptyBuckets(&counts);

  std::vector<MinedRule> mined =
      EmitRulesForPair(counts, 0, options_, numeric_attr, objective_attr);
  const std::string condition_text = ConditionText(condition_attrs);
  for (MinedRule& rule : mined) {
    rule.presumptive_condition = condition_text;
  }
  return mined;
}

namespace {

/// Shared Section 5 setup: buckets of A with per-bucket sums of B.
Result<bucketing::BucketSums> BuildSums(const storage::Relation& relation,
                                        const MinerOptions& options,
                                        const std::string& range_attr,
                                        const std::string& target_attr) {
  const Result<int> a = relation.schema().NumericIndexOf(range_attr);
  if (!a.ok()) return a.status();
  const Result<int> b = relation.schema().NumericIndexOf(target_attr);
  if (!b.ok()) return b.status();
  const std::vector<double>& values = relation.NumericColumn(a.value());
  bucketing::BoundaryPlan plan = ToBoundaryPlan(options);
  // Decorrelate from the per-pair bucketing.
  plan.seed += kAggregateSeedOffset;
  const bucketing::BucketBoundaries boundaries = bucketing::BuildBoundaries(
      values, plan, AttributeSalt(a.value()));
  bucketing::BucketSums sums = bucketing::CountBucketSums(
      values, relation.NumericColumn(b.value()), boundaries);
  bucketing::CompactEmptyBuckets(&sums);
  return sums;
}

}  // namespace

Result<MinedAggregateRange> Miner::MineMaximumAverageRange(
    const std::string& range_attr, const std::string& target_attr,
    double min_support) {
  Result<bucketing::BucketSums> sums_or =
      BuildSums(*relation_, options_, range_attr, target_attr);
  if (!sums_or.ok()) return sums_or.status();
  const bucketing::BucketSums& sums = sums_or.value();
  RangeAggregate aggregate;
  if (!sums.u.empty()) {
    aggregate = MaximumAverageRange(
        sums.u, sums.sum, MinSupportCount(sums.total_tuples, min_support));
  }
  return ToMinedAggregate(sums, aggregate, range_attr, target_attr);
}

Result<MinedAggregateRange> Miner::MineMaximumSupportRange(
    const std::string& range_attr, const std::string& target_attr,
    double min_average) {
  Result<bucketing::BucketSums> sums_or =
      BuildSums(*relation_, options_, range_attr, target_attr);
  if (!sums_or.ok()) return sums_or.status();
  const bucketing::BucketSums& sums = sums_or.value();
  RangeAggregate aggregate;
  if (!sums.u.empty()) {
    aggregate = MaximumSupportRange(sums.u, sums.sum, min_average);
  }
  return ToMinedAggregate(sums, aggregate, range_attr, target_attr);
}

Result<MinedRegion> Miner::MineOptimizedRegion(
    const std::string& x_attr, const std::string& y_attr,
    const std::string& target_attr) {
  return MineOptimizedRegion(x_attr, y_attr, target_attr,
                             options_.region_grid_buckets,
                             options_.region_grid_buckets);
}

Result<MinedRegion> Miner::MineOptimizedRegion(
    const std::string& x_attr, const std::string& y_attr,
    const std::string& target_attr, int nx, int ny) {
  const storage::Schema& schema = relation_->schema();
  const Result<int> x = schema.NumericIndexOf(x_attr);
  if (!x.ok()) return x.status();
  const Result<int> y = schema.NumericIndexOf(y_attr);
  if (!y.ok()) return y.status();
  const Result<int> target = schema.BooleanIndexOf(target_attr);
  if (!target.ok()) return target.status();
  if (nx < 1 || ny < 1) {
    return Status::InvalidArgument("region grid shape must be >= 1x1");
  }

  // Same region boundary recipe as the engine: each axis bucketed at its
  // own count (nx / ny), seed decorrelated by kRegionSeedOffset,
  // per-attribute salts.
  bucketing::BoundaryPlan plan = ToBoundaryPlan(options_);
  plan.seed += kRegionSeedOffset;
  plan.num_buckets = nx;
  const bucketing::BucketBoundaries x_boundaries = bucketing::BuildBoundaries(
      relation_->NumericColumn(x.value()), plan, AttributeSalt(x.value()));
  plan.num_buckets = ny;
  const bucketing::BucketBoundaries y_boundaries = bucketing::BuildBoundaries(
      relation_->NumericColumn(y.value()), plan, AttributeSalt(y.value()));
  const region::GridCounts grid = region::BuildGrid(
      relation_->NumericColumn(x.value()), relation_->NumericColumn(y.value()),
      relation_->BooleanColumn(target.value()), x_boundaries, y_boundaries);
  return MineRegionFromGrid(grid, options_, x_attr, y_attr, target_attr);
}

}  // namespace optrules::rules
