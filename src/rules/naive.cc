#include "rules/naive.h"

namespace optrules::rules {

namespace {

/// conf1 = h1/s1 > conf2 = h2/s2, exactly (s1, s2 > 0).
bool ConfidenceGreater(int64_t h1, int64_t s1, int64_t h2, int64_t s2) {
  return static_cast<__int128>(h1) * s2 > static_cast<__int128>(h2) * s1;
}

bool ConfidenceEqual(int64_t h1, int64_t s1, int64_t h2, int64_t s2) {
  return static_cast<__int128>(h1) * s2 == static_cast<__int128>(h2) * s1;
}

}  // namespace

RangeRule NaiveOptimizedConfidenceRule(std::span<const int64_t> u,
                                       std::span<const int64_t> v,
                                       int64_t total_tuples,
                                       int64_t min_support_count) {
  OPTRULES_CHECK(u.size() == v.size());
  if (min_support_count < 1) min_support_count = 1;
  const int m = static_cast<int>(u.size());
  RangeRule best;
  int64_t best_hits = 0;
  int64_t best_support = 0;
  for (int s = 0; s < m; ++s) {
    int64_t support = 0;
    int64_t hits = 0;
    for (int t = s; t < m; ++t) {
      support += u[static_cast<size_t>(t)];
      hits += v[static_cast<size_t>(t)];
      if (support < min_support_count) continue;
      const bool better =
          !best.found ||
          ConfidenceGreater(hits, support, best_hits, best_support) ||
          (ConfidenceEqual(hits, support, best_hits, best_support) &&
           support > best_support);
      if (better) {
        best.found = true;
        best.s = s;
        best.t = t;
        best_hits = hits;
        best_support = support;
      }
    }
  }
  if (!best.found) return best;
  return MakeRangeRule(u, v, total_tuples, best.s, best.t);
}

RangeRule NaiveOptimizedSupportRule(std::span<const int64_t> u,
                                    std::span<const int64_t> v,
                                    int64_t total_tuples,
                                    Ratio min_confidence) {
  OPTRULES_CHECK(u.size() == v.size());
  const int m = static_cast<int>(u.size());
  RangeRule best;
  int64_t best_support = -1;
  for (int s = 0; s < m; ++s) {
    int64_t support = 0;
    int64_t hits = 0;
    for (int t = s; t < m; ++t) {
      support += u[static_cast<size_t>(t)];
      hits += v[static_cast<size_t>(t)];
      if (!min_confidence.LessOrEqualTo(hits, support)) continue;
      if (support > best_support) {
        best.found = true;
        best.s = s;
        best.t = t;
        best_support = support;
      }
    }
  }
  if (!best.found) return best;
  return MakeRangeRule(u, v, total_tuples, best.s, best.t);
}

RangeAggregate NaiveMaximumAverageRange(std::span<const int64_t> u,
                                        std::span<const double> v,
                                        int64_t min_support_count) {
  OPTRULES_CHECK(u.size() == v.size());
  if (min_support_count < 1) min_support_count = 1;
  const int m = static_cast<int>(u.size());
  RangeAggregate best;
  long double best_sum = 0;
  int64_t best_support = 0;
  for (int s = 0; s < m; ++s) {
    int64_t support = 0;
    long double sum = 0;
    for (int t = s; t < m; ++t) {
      support += u[static_cast<size_t>(t)];
      sum += v[static_cast<size_t>(t)];
      if (support < min_support_count) continue;
      // avg1 > avg2 <=> sum1*support2 > sum2*support1 (supports positive).
      const long double lhs = sum * static_cast<long double>(best_support);
      const long double rhs =
          best_sum * static_cast<long double>(support);
      const bool better = !best.found || lhs > rhs ||
                          (lhs == rhs && support > best_support);
      if (better) {
        best.found = true;
        best.s = s;
        best.t = t;
        best_sum = sum;
        best_support = support;
      }
    }
  }
  if (!best.found) return best;
  return MakeRangeAggregate(u, v, best.s, best.t);
}

RangeAggregate NaiveMaximumSupportRange(std::span<const int64_t> u,
                                        std::span<const double> v,
                                        double min_average) {
  OPTRULES_CHECK(u.size() == v.size());
  const int m = static_cast<int>(u.size());
  RangeAggregate best;
  int64_t best_support = -1;
  for (int s = 0; s < m; ++s) {
    int64_t support = 0;
    long double sum = 0;
    for (int t = s; t < m; ++t) {
      support += u[static_cast<size_t>(t)];
      sum += v[static_cast<size_t>(t)];
      if (sum < static_cast<long double>(min_average) *
                    static_cast<long double>(support)) {
        continue;
      }
      if (support > best_support) {
        best.found = true;
        best.s = s;
        best.t = t;
        best_support = support;
      }
    }
  }
  if (!best.found) return best;
  return MakeRangeAggregate(u, v, best.s, best.t);
}

}  // namespace optrules::rules
