// Internal: generic implementation of Algorithms 4.3 + 4.4.
//
// Shared by the exact integer instantiation (optimized-support rules with
// rational confidence thresholds) and the real-valued instantiation
// (Section 5 maximum-support ranges under an average threshold).
//
// Terminology (Section 4.2): with per-bucket gains g_i = v_i - theta*u_i,
// a start index s is *effective* iff every prefix ending at s-1 has
// negative gain sum; top(s) is the largest t >= s with gain(s..t) >= 0.
// The optimal support pair is the effective s maximizing the tuple count
// of [s, top(s)], found by one forward scan (effective indices) and one
// backward scan (tops, monotone by Lemma 4.2).

#ifndef OPTRULES_RULES_EFFECTIVE_SCAN_H_
#define OPTRULES_RULES_EFFECTIVE_SCAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace optrules::rules::internal {

/// Result of the effective-index scan: 0-based inclusive bucket range.
struct MaxSupportScanResult {
  bool found = false;
  int s = -1;
  int t = -1;
};

/// Finds the maximum-support range with non-negative total gain.
/// `gain(i)` returns GainT for bucket i; GainT must be a signed numeric
/// type closed under addition for M terms (the callers use __int128 /
/// long double).
template <typename GainT, typename GainFn>
MaxSupportScanResult ScanMaxSupport(std::span<const int64_t> u,
                                    GainFn gain) {
  const int m = static_cast<int>(u.size());
  MaxSupportScanResult best;
  if (m == 0) return best;

  // Cumulative gain table F(j) = sum_{i<j} g_i (Algorithm 4.4's table).
  std::vector<GainT> f(static_cast<size_t>(m) + 1);
  f[0] = GainT(0);
  for (int i = 0; i < m; ++i) {
    f[static_cast<size_t>(i) + 1] = f[static_cast<size_t>(i)] + gain(i);
  }
  // Cumulative tuple counts for support comparison.
  std::vector<int64_t> x(static_cast<size_t>(m) + 1, 0);
  for (int i = 0; i < m; ++i) {
    x[static_cast<size_t>(i) + 1] = x[static_cast<size_t>(i)] +
                                    u[static_cast<size_t>(i)];
  }

  // Algorithm 4.3: forward scan for effective indices. w tracks
  // max_{j<s} gain(j .. s-1); s is effective iff w < 0 (s = 0 trivially).
  std::vector<int> effective;
  effective.push_back(0);
  GainT w = GainT(0);
  for (int s = 1; s < m; ++s) {
    const GainT prev = gain(s - 1);
    w = prev + (w > GainT(0) ? w : GainT(0));
    if (w < GainT(0)) effective.push_back(s);
  }

  // Algorithm 4.4: backward alternating scan. tops are monotone over
  // effective indices (Lemma 4.2), so i only ever decreases.
  int i = m - 1;
  int64_t best_support = -1;
  for (int j = static_cast<int>(effective.size()) - 1; j >= 0; --j) {
    const int s = effective[static_cast<size_t>(j)];
    while (i >= s &&
           f[static_cast<size_t>(i) + 1] - f[static_cast<size_t>(s)] <
               GainT(0)) {
      --i;
    }
    if (i < s) continue;  // no t with avg(s, t) >= theta for this s
    const int64_t support = x[static_cast<size_t>(i) + 1] -
                            x[static_cast<size_t>(s)];
    if (support > best_support) {
      best_support = support;
      best.found = true;
      best.s = s;
      best.t = i;
    }
  }
  return best;
}

}  // namespace optrules::rules::internal

#endif  // OPTRULES_RULES_EFFECTIVE_SCAN_H_
