// Naive O(M^2) reference implementations.
//
// These enumerate every bucket range with exact arithmetic and serve two
// purposes: (a) oracles for the property tests of the O(M) algorithms, and
// (b) the quadratic baselines of Figures 10 and 11.

#ifndef OPTRULES_RULES_NAIVE_H_
#define OPTRULES_RULES_NAIVE_H_

#include <cstdint>
#include <span>

#include "common/ratio.h"
#include "rules/rule.h"

namespace optrules::rules {

/// Exhaustive optimized-confidence rule: maximizes confidence subject to
/// support_count >= min_support_count, ties toward larger support.
RangeRule NaiveOptimizedConfidenceRule(std::span<const int64_t> u,
                                       std::span<const int64_t> v,
                                       int64_t total_tuples,
                                       int64_t min_support_count);

/// Exhaustive optimized-support rule: maximizes support subject to
/// confidence >= min_confidence.
RangeRule NaiveOptimizedSupportRule(std::span<const int64_t> u,
                                    std::span<const int64_t> v,
                                    int64_t total_tuples,
                                    Ratio min_confidence);

/// Exhaustive Section 5 maximum-average range: maximizes sum(v)/sum(u)
/// subject to sum(u) >= min_support_count.
RangeAggregate NaiveMaximumAverageRange(std::span<const int64_t> u,
                                        std::span<const double> v,
                                        int64_t min_support_count);

/// Exhaustive Section 5 maximum-support range: maximizes sum(u) subject to
/// sum(v)/sum(u) >= min_average.
RangeAggregate NaiveMaximumSupportRange(std::span<const int64_t> u,
                                        std::span<const double> v,
                                        double min_average);

}  // namespace optrules::rules

#endif  // OPTRULES_RULES_NAIVE_H_
