#include "rules/average_range.h"

#include "rules/effective_scan.h"
#include "rules/optimized_confidence.h"

namespace optrules::rules {

RangeAggregate MaximumAverageRange(std::span<const int64_t> u,
                                   std::span<const double> v,
                                   int64_t min_support_count) {
  const SlopePair pair = OptimalSlopePair(u, v, min_support_count);
  if (!pair.found) return RangeAggregate{};
  return MakeRangeAggregate(u, v, pair.m, pair.n - 1);
}

RangeAggregate MaximumSupportRange(std::span<const int64_t> u,
                                   std::span<const double> v,
                                   double min_average) {
  OPTRULES_CHECK(u.size() == v.size());
  for (size_t i = 0; i < u.size(); ++i) OPTRULES_CHECK(u[i] >= 1);
  const auto gain = [&](int i) -> long double {
    return static_cast<long double>(v[static_cast<size_t>(i)]) -
           static_cast<long double>(min_average) *
               static_cast<long double>(u[static_cast<size_t>(i)]);
  };
  const internal::MaxSupportScanResult result =
      internal::ScanMaxSupport<long double>(u, gain);
  if (!result.found) return RangeAggregate{};
  return MakeRangeAggregate(u, v, result.s, result.t);
}

}  // namespace optrules::rules
