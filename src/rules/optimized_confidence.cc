#include "rules/optimized_confidence.h"

#include <vector>

#include "hull/convex_hull_tree.h"
#include "hull/point.h"

namespace optrules::rules {

namespace {

using hull::CompareSlopes;
using hull::ConvexHullTree;
using hull::Orientation;
using hull::Point;

/// Compares candidate slope pairs by (slope, then delta-x). Returns true
/// when (m2, n2) is strictly better than (m1, n1).
bool BetterCandidate(const std::vector<Point>& q, int m1, int n1, int m2,
                     int n2) {
  const long double dx1 = q[static_cast<size_t>(n1)].x -
                          q[static_cast<size_t>(m1)].x;
  const long double dy1 = q[static_cast<size_t>(n1)].y -
                          q[static_cast<size_t>(m1)].y;
  const long double dx2 = q[static_cast<size_t>(n2)].x -
                          q[static_cast<size_t>(m2)].x;
  const long double dy2 = q[static_cast<size_t>(n2)].y -
                          q[static_cast<size_t>(m2)].y;
  const long double cross = dy2 * dx1 - dy1 * dx2;  // slope2 - slope1 sign
  if (cross > 0) return true;
  if (cross < 0) return false;
  return dx2 > dx1;  // equal slope: prefer larger support
}

}  // namespace

SlopePairContext::SlopePairContext(std::span<const int64_t> u,
                                   std::span<const double> v) {
  OPTRULES_CHECK(u.size() == v.size());
  num_buckets_ = static_cast<int>(u.size());
  if (num_buckets_ == 0) return;

  // Q_k = (sum_{i<k} u_i, sum_{i<k} v_i), k = 0..M.
  q_.resize(static_cast<size_t>(num_buckets_) + 1);
  q_[0] = {0.0, 0.0};
  for (int k = 1; k <= num_buckets_; ++k) {
    OPTRULES_CHECK(u[static_cast<size_t>(k - 1)] >= 1);
    q_[static_cast<size_t>(k)] = {
        q_[static_cast<size_t>(k - 1)].x +
            static_cast<double>(u[static_cast<size_t>(k - 1)]),
        q_[static_cast<size_t>(k - 1)].y + v[static_cast<size_t>(k - 1)]};
  }
  // Preparatory phase (the geometry-heavy O(M) step), done once; every
  // Solve() copies this U_0 prototype instead of re-deriving it.
  tree_.emplace(q_);
}

SlopePair SlopePairContext::Solve(int64_t min_support_count) const {
  const int m_buckets = num_buckets_;
  const std::vector<Point>& q = q_;
  SlopePair best;
  if (m_buckets == 0) return best;
  if (min_support_count < 1) min_support_count = 1;
  // No range can be ample at all?
  if (q[static_cast<size_t>(m_buckets)].x - q[0].x <
      static_cast<double>(min_support_count)) {
    return best;
  }

  ConvexHullTree tree = *tree_;  // restore U_0 (array copies only)
  tree.AdvanceBase();  // S = U_1; the first candidate base is r(0) >= 1.
  int i = 1;

  // L is the most recently computed tangent, through Q_{l_m} touching the
  // hull at Q_{l_t} (paper's variable L).
  bool l_valid = false;
  int l_m = -1;
  int l_t = -1;

  for (int m = 0; m < m_buckets; ++m) {
    // Advance the hull base to r(m): the least i with support(m+1, i)
    // ample. Supports only shrink as m grows, so if even i = M fails
    // there is no ample pair for any later m either.
    bool has_r = true;
    while (q[static_cast<size_t>(i)].x - q[static_cast<size_t>(m)].x <
           static_cast<double>(min_support_count)) {
      if (i == m_buckets) {
        has_r = false;
        break;
      }
      tree.AdvanceBase();
      ++i;
    }
    if (!has_r) break;

    const Point& qm = q[static_cast<size_t>(m)];
    // Inductive-step pruning: if Q_m lies on or above L, the tangent from
    // Q_m cannot beat L's slope (Figure 6), so skip the search.
    if (l_valid &&
        Orientation(q[static_cast<size_t>(l_m)],
                    q[static_cast<size_t>(l_t)], qm) >= 0) {
      continue;
    }

    int tangent_node;
    const int old_pos = l_valid ? tree.PositionOf(l_t) : -1;
    if (old_pos < 0) {
      // L does not touch U_{r(m)} (or no L yet): clockwise search from the
      // leftmost hull node Q_{r(m)} (the stack top), moving right while
      // the slope from Q_m improves (ties move right too, implementing the
      // maximum-x terminating-point rule).
      int pos = tree.hull_size() - 1;
      while (pos > 0) {
        const Point& cur = q[static_cast<size_t>(tree.NodeAt(pos))];
        const Point& next = q[static_cast<size_t>(tree.NodeAt(pos - 1))];
        if (CompareSlopes(qm, next, cur) >= 0) {
          --pos;
        } else {
          break;
        }
      }
      tangent_node = tree.NodeAt(pos);
    } else {
      // L still touches the hull at Q_{l_t}: counterclockwise search from
      // there, moving left only while the slope strictly improves (so ties
      // keep the larger x).
      int pos = old_pos;
      while (pos + 1 < tree.hull_size()) {
        const Point& cur = q[static_cast<size_t>(tree.NodeAt(pos))];
        const Point& next = q[static_cast<size_t>(tree.NodeAt(pos + 1))];
        if (CompareSlopes(qm, next, cur) > 0) {
          ++pos;
        } else {
          break;
        }
      }
      tangent_node = tree.NodeAt(pos);
    }

    l_valid = true;
    l_m = m;
    l_t = tangent_node;
    if (!best.found ||
        BetterCandidate(q, best.m, best.n, l_m, l_t)) {
      best.found = true;
      best.m = l_m;
      best.n = l_t;
    }
  }
  return best;
}

SlopePair OptimalSlopePair(std::span<const int64_t> u,
                           std::span<const double> v,
                           int64_t min_support_count) {
  return SlopePairContext(u, v).Solve(min_support_count);
}

RangeRule OptimizedConfidenceRule(std::span<const int64_t> u,
                                  std::span<const int64_t> v,
                                  int64_t total_tuples,
                                  int64_t min_support_count) {
  OPTRULES_CHECK(u.size() == v.size());
  std::vector<double> weights(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    OPTRULES_CHECK(0 <= v[i] && v[i] <= u[i]);
    weights[i] = static_cast<double>(v[i]);
  }
  const SlopePair pair = OptimalSlopePair(u, weights, min_support_count);
  if (!pair.found) return RangeRule{};
  // Slope pair (m, n) corresponds to buckets m..n-1 in 0-based terms.
  return MakeRangeRule(u, v, total_tuples, pair.m, pair.n - 1);
}

RangeRule MinimizedConfidenceRule(std::span<const int64_t> u,
                                  std::span<const int64_t> v,
                                  int64_t total_tuples,
                                  int64_t min_support_count) {
  OPTRULES_CHECK(u.size() == v.size());
  // Minimizing sum(v)/sum(u) equals maximizing sum(-v)/sum(u).
  std::vector<double> weights(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    OPTRULES_CHECK(0 <= v[i] && v[i] <= u[i]);
    weights[i] = -static_cast<double>(v[i]);
  }
  const SlopePair pair = OptimalSlopePair(u, weights, min_support_count);
  if (!pair.found) return RangeRule{};
  return MakeRangeRule(u, v, total_tuples, pair.m, pair.n - 1);
}

}  // namespace optrules::rules
