#include "rules/kadane.h"

namespace optrules::rules {

GainRange MaxGainRange(std::span<const int64_t> u,
                       std::span<const int64_t> v, Ratio theta) {
  OPTRULES_CHECK(u.size() == v.size());
  GainRange best;
  const int m = static_cast<int>(u.size());
  if (m == 0) return best;

  // b = best suffix sum ending at the current index (non-empty);
  // a = best overall (paper's a(j) / b(j) recurrences).
  __int128 b = 0;
  int b_start = 0;
  __int128 best_gain = 0;
  for (int i = 0; i < m; ++i) {
    const __int128 gain =
        static_cast<__int128>(theta.den()) * v[static_cast<size_t>(i)] -
        static_cast<__int128>(theta.num()) * u[static_cast<size_t>(i)];
    if (i == 0 || b < 0) {
      b = gain;
      b_start = i;
    } else {
      b += gain;
    }
    if (!best.found || b > best_gain) {
      best.found = true;
      best_gain = b;
      best.s = b_start;
      best.t = i;
    }
  }
  best.gain = static_cast<double>(best_gain);
  return best;
}

}  // namespace optrules::rules
