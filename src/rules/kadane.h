// Bentley/Kadane maximum-gain range (Section 4.2's cautionary remark).
//
// With gains g_i = den*v_i - num*u_i, Kadane's dynamic program finds the
// range maximizing the total gain in O(M). The paper points out this is
// NOT the optimized-support rule: a larger range can still be confident
// (non-negative gain) while having smaller gain, so Kadane may return a
// strict sub-range of the true maximum-support confident range. We ship it
// as a baseline and demonstrate the mismatch in tests and an ablation
// benchmark.

#ifndef OPTRULES_RULES_KADANE_H_
#define OPTRULES_RULES_KADANE_H_

#include <cstdint>
#include <span>

#include "common/ratio.h"
#include "rules/rule.h"

namespace optrules::rules {

/// A maximum-gain range and its gain, in units of 1/theta.den().
struct GainRange {
  bool found = false;
  int s = -1;
  int t = -1;
  /// Total gain of [s, t] = theta.den()*sum(v) - theta.num()*sum(u),
  /// reported as a double for convenience.
  double gain = 0.0;
};

/// Kadane's algorithm over gains g_i = den*v_i - num*u_i. Non-empty
/// ranges only; found is false only when the input is empty.
GainRange MaxGainRange(std::span<const int64_t> u,
                       std::span<const int64_t> v, Ratio theta);

}  // namespace optrules::rules

#endif  // OPTRULES_RULES_KADANE_H_
