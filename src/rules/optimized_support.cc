#include "rules/optimized_support.h"

#include "rules/effective_scan.h"

namespace optrules::rules {

RangeRule OptimizedSupportRule(std::span<const int64_t> u,
                               std::span<const int64_t> v,
                               int64_t total_tuples, Ratio min_confidence) {
  OPTRULES_CHECK(u.size() == v.size());
  for (size_t i = 0; i < u.size(); ++i) {
    OPTRULES_CHECK(u[i] >= 1);
    OPTRULES_CHECK(0 <= v[i] && v[i] <= u[i]);
  }
  // Exact gains: g_i = den*v_i - num*u_i, so gain(s..t) >= 0 iff
  // conf(s, t) >= num/den.
  const auto gain = [&](int i) -> __int128 {
    return static_cast<__int128>(min_confidence.den()) *
               v[static_cast<size_t>(i)] -
           static_cast<__int128>(min_confidence.num()) *
               u[static_cast<size_t>(i)];
  };
  const internal::MaxSupportScanResult result =
      internal::ScanMaxSupport<__int128>(u, gain);
  if (!result.found) return RangeRule{};
  return MakeRangeRule(u, v, total_tuples, result.s, result.t);
}

}  // namespace optrules::rules
