// Optimized-confidence rules (Section 4.1, Algorithm 4.2).
//
// Among ranges of consecutive buckets whose support is at least the given
// threshold, find the one maximizing the confidence (ties broken toward
// larger support). Runs in O(M) using the convex-hull tree: the answer is
// the maximum-slope tangent from a prefix point Q_m to the upper hull of
// the suffix points U_{r(m)}.

#ifndef OPTRULES_RULES_OPTIMIZED_CONFIDENCE_H_
#define OPTRULES_RULES_OPTIMIZED_CONFIDENCE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hull/convex_hull_tree.h"
#include "hull/point.h"
#include "rules/rule.h"

namespace optrules::rules {

/// An optimal slope pair (Definition 4.2): m < n such that the range of
/// buckets (m, n] -- i.e. [m+1, n] in 1-based bucket terms, [m, n-1] in the
/// 0-based RangeRule convention -- is ample and maximizes the slope of
/// Q_m Q_n, with ties broken toward larger support.
struct SlopePair {
  bool found = false;
  int m = -1;
  int n = -1;
};

/// The threshold-independent part of the slope-pair search: the prefix
/// points Q_0..Q_M and the preparatory-phase convex-hull tree (Algorithm
/// 4.1's constructor, the geometry-heavy step). Build it once per (u, v)
/// bucket array and Solve() at any number of support thresholds -- each
/// call copies the U_0 prototype tree (plain array copies, no orientation
/// predicates) and runs the tangent walk. MiningEngine caches one context
/// per aggregate (range attribute, target) pair so repeated
/// MineMaximumAverageRange calls at different thresholds stop rebuilding
/// the hull from scratch.
class SlopePairContext {
 public:
  /// Requires u_i >= 1 for every bucket (u may be empty).
  SlopePairContext(std::span<const int64_t> u, std::span<const double> v);

  /// The optimal slope pair at `min_support_count` (clamped to >= 1);
  /// identical to OptimalSlopePair(u, v, min_support_count).
  SlopePair Solve(int64_t min_support_count) const;

  int num_buckets() const { return num_buckets_; }

 private:
  int num_buckets_ = 0;
  /// Q_k = (sum_{i<k} u_i, sum_{i<k} v_i), k = 0..M.
  std::vector<hull::Point> q_;
  /// Prototype tree at U_0; Solve() copies it instead of re-running the
  /// preparatory phase.
  std::optional<hull::ConvexHullTree> tree_;
};

/// Core O(M) optimizer over real-valued per-bucket weights `v` (tuple
/// counts for rules; attribute sums for the Section 5 average operator).
/// Requires u_i >= 1 for every bucket. `min_support_count` is clamped to a
/// minimum of 1 tuple. One-shot form of SlopePairContext::Solve.
SlopePair OptimalSlopePair(std::span<const int64_t> u,
                           std::span<const double> v,
                           int64_t min_support_count);

/// Optimized-confidence rule over integer hit counts: maximizes
/// sum(v)/sum(u) subject to sum(u) >= min_support_count. Returns
/// found=false when no range is ample.
RangeRule OptimizedConfidenceRule(std::span<const int64_t> u,
                                  std::span<const int64_t> v,
                                  int64_t total_tuples,
                                  int64_t min_support_count);

/// Dual problem: the ample range *minimizing* the confidence -- the
/// cluster least likely to meet C (e.g. customers to exclude from a
/// campaign). Computed by maximizing the negated weights on the same hull
/// machinery; ties prefer larger support.
RangeRule MinimizedConfidenceRule(std::span<const int64_t> u,
                                  std::span<const int64_t> v,
                                  int64_t total_tuples,
                                  int64_t min_support_count);

}  // namespace optrules::rules

#endif  // OPTRULES_RULES_OPTIMIZED_CONFIDENCE_H_
