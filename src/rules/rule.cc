#include "rules/rule.h"

#include <cmath>

namespace optrules::rules {

int64_t MinSupportCount(int64_t total, double min_support_fraction) {
  OPTRULES_CHECK(total >= 0);
  OPTRULES_CHECK(0.0 <= min_support_fraction && min_support_fraction <= 1.0);
  return static_cast<int64_t>(
      std::ceil(min_support_fraction * static_cast<double>(total)));
}

RangeRule MakeRangeRule(std::span<const int64_t> u,
                        std::span<const int64_t> v, int64_t total_tuples,
                        int s, int t) {
  OPTRULES_CHECK(u.size() == v.size());
  OPTRULES_CHECK(0 <= s && s <= t && t < static_cast<int>(u.size()));
  RangeRule rule;
  rule.found = true;
  rule.s = s;
  rule.t = t;
  for (int i = s; i <= t; ++i) {
    rule.support_count += u[static_cast<size_t>(i)];
    rule.hit_count += v[static_cast<size_t>(i)];
  }
  rule.support = total_tuples > 0
                     ? static_cast<double>(rule.support_count) /
                           static_cast<double>(total_tuples)
                     : 0.0;
  rule.confidence = rule.support_count > 0
                        ? static_cast<double>(rule.hit_count) /
                              static_cast<double>(rule.support_count)
                        : 0.0;
  return rule;
}

RangeAggregate MakeRangeAggregate(std::span<const int64_t> u,
                                  std::span<const double> v, int s, int t) {
  OPTRULES_CHECK(u.size() == v.size());
  OPTRULES_CHECK(0 <= s && s <= t && t < static_cast<int>(u.size()));
  RangeAggregate aggregate;
  aggregate.found = true;
  aggregate.s = s;
  aggregate.t = t;
  for (int i = s; i <= t; ++i) {
    aggregate.support_count += u[static_cast<size_t>(i)];
    aggregate.sum += v[static_cast<size_t>(i)];
  }
  aggregate.average = aggregate.support_count > 0
                          ? aggregate.sum /
                                static_cast<double>(aggregate.support_count)
                          : 0.0;
  return aggregate;
}

}  // namespace optrules::rules
