// End-to-end rule miners: the system of Section 1.3.
//
// Two entry points share one pipeline (boundary planning -> bucket
// counting -> O(M) optimizers):
//
//  * MiningEngine -- the batch-execution session. It plans equi-depth
//    boundaries for EVERY numeric attribute up front, then accumulates
//    BucketCounts for every (numeric, Boolean) attribute pair -- plus the
//    conditional channels of registered generalized conditions (Section
//    4.3) and the per-bucket sum channels of registered aggregate targets
//    (Section 5) -- in ONE shared columnar scan of the data
//    (bucketing::MultiCountPlan over a storage::BatchSource, optionally
//    partitioned over a ThreadPool), and finally answers plain,
//    generalized, aggregate, and threshold-sweep queries from the cached
//    channels. This is the paper's "complete set of optimized rules for
//    all combinations of hundreds of numeric and Boolean attributes"
//    path: the scan cost is paid once no matter how many queries are
//    answered, in memory or on disk.
//
//  * Miner -- the legacy reference miner over an in-memory relation. It
//    buckets lazily, one counting pass per query, and is kept as the
//    independently-simple implementation the engine is tested against
//    (their outputs must be bit-identical for every query kind).

#ifndef OPTRULES_RULES_MINER_H_
#define OPTRULES_RULES_MINER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bucketing/boundaries.h"
#include "bucketing/counting.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dist/coordinator.h"
#include "region/rectangle.h"
#include "region/xmonotone.h"
#include "rules/optimized_confidence.h"
#include "rules/rule.h"
#include "storage/columnar_batch.h"
#include "storage/relation.h"

namespace optrules::rules {

/// How equi-depth bucket boundaries are derived per numeric attribute
/// (shared dispatch lives in bucketing::BuildBoundaries).
using Bucketizer = bucketing::Bucketizer;

/// Mining parameters.
struct MinerOptions {
  int num_buckets = 1000;        ///< M of Algorithm 3.1
  int64_t sample_per_bucket = 40;  ///< S/M of Algorithm 3.1
  double min_support = 0.05;     ///< ampleness threshold (confidence rules)
  double min_confidence = 0.5;   ///< confidence threshold (support rules)
  uint64_t seed = 42;            ///< sampling seed
  Bucketizer bucketizer = Bucketizer::kSampling;
  /// Rank-error fraction for the GK bucketizer (ignored otherwise).
  double gk_epsilon = 0.0;  ///< 0 = auto: 1 / (4 * num_buckets)
  /// Per-axis bucket count of two-dimensional region grids (Section 1.4):
  /// each registered region pair is counted into a
  /// region_grid_buckets x region_grid_buckets equi-depth cell grid. Kept
  /// separate from num_buckets because the region optimizers are
  /// O(nx * ny^2) in the grid resolution.
  int region_grid_buckets = 32;
};

/// The bucketizer fields of `options` as a bucketing::BoundaryPlan.
bucketing::BoundaryPlan ToBoundaryPlan(const MinerOptions& options);

/// Which optimization a mined rule answers.
enum class RuleKind {
  kOptimizedConfidence,  ///< max confidence s.t. support >= min_support
  kOptimizedSupport,     ///< max support s.t. confidence >= min_confidence
};

/// A mined rule `(A in [range_lo, range_hi]) [ ^ C1 ] => C`, with its
/// measured statistics. Range endpoints are the observed attribute values
/// spanned by the chosen buckets.
struct MinedRule {
  bool found = false;
  RuleKind kind = RuleKind::kOptimizedConfidence;
  std::string numeric_attr;
  std::string boolean_attr;
  std::string presumptive_condition;  ///< extra C1 conjunct names, or empty
  double range_lo = 0.0;
  double range_hi = 0.0;
  int64_t support_count = 0;
  int64_t hit_count = 0;
  double support = 0.0;
  double confidence = 0.0;

  /// Human-readable one-line rendering of the rule.
  std::string ToString() const;
};

/// One (min_support, min_confidence) pair of a threshold sweep.
struct ThresholdSet {
  double min_support = 0.05;
  double min_confidence = 0.5;
};

/// The two-dimensional optimized regions mined for one
/// `(X, Y) in R => C` attribute triple (Section 1.4): both rectangle
/// optimizations plus the gain-optimized x-monotone region, all answered
/// from one nx-by-ny equi-depth grid over (X, Y). Bucket indices inside
/// the sub-results refer to that grid.
struct MinedRegion {
  bool found = false;  ///< any of the three searches found a region
  std::string x_attr;
  std::string y_attr;
  std::string target_attr;
  int nx = 0;
  int ny = 0;
  /// All tuples scanned (the support denominator), NaN rows included.
  int64_t total_tuples = 0;
  /// Max confidence s.t. support >= MinerOptions::min_support.
  region::RegionRule confidence_rectangle;
  /// Max support s.t. confidence >= MinerOptions::min_confidence.
  region::RegionRule support_rectangle;
  /// Max gain at theta = MinerOptions::min_confidence.
  region::XMonotoneRegion xmonotone_gain;

  /// Human-readable multi-line rendering.
  std::string ToString() const;
};

/// A mined Section 5 aggregate range for
/// `avg(B | A in [range_lo, range_hi])`.
struct MinedAggregateRange {
  bool found = false;
  std::string range_attr;   ///< A
  std::string target_attr;  ///< B
  double range_lo = 0.0;
  double range_hi = 0.0;
  int64_t support_count = 0;
  double support = 0.0;
  double average = 0.0;

  std::string ToString() const;
};

/// Batch-execution mining session: one shared counting scan for all
/// attribute pairs.
///
/// Construction is cheap; the first mining call (or an explicit
/// Prepare()) plans boundaries for every numeric attribute and runs the
/// single counting scan. All rule queries afterwards are O(M) on the
/// cached bucket arrays and never touch the data again, so
/// counting_scans() stays 1 for the lifetime of the session.
class MiningEngine {
 public:
  /// Engine over an in-memory relation (which must outlive the engine).
  /// Boundary planning reads the relation's columns directly with the
  /// same per-attribute salts as the legacy Miner, so results match it
  /// bit-for-bit.
  MiningEngine(const storage::Relation* relation, MinerOptions options,
               ThreadPool* pool = nullptr);

  /// Engine over any batch source -- e.g. a disk-resident
  /// storage::PagedFileBatchSource. `schema` names the attributes and
  /// must match the source's attribute counts. Boundary planning costs
  /// one extra streaming pass (all attributes sampled/sketched at once);
  /// counting still costs exactly one scan.
  MiningEngine(storage::BatchSource* source, storage::Schema schema,
               MinerOptions options, ThreadPool* pool = nullptr);

  /// Engine over a partitioned table (src/dist/): boundary planning
  /// streams the partitions concatenated in manifest order (one pass),
  /// and every counting scan fans out through a
  /// DistributedScanCoordinator -- K physical partition scans, in-process
  /// or optrules_workerd subprocess workers, merged in fixed partition
  /// order into ONE logical scan, so counting_scans() stays 1 for a full
  /// mixed session exactly like the single-file paths. Results are a pure
  /// function of (table, options): the worker count and worker kind never
  /// change a single bit. Note that partitioning reorders rows, so the
  /// order-sensitive bucketizers (sampling, GK) plan boundaries over the
  /// partitioned order -- deterministic, but only guaranteed identical to
  /// a single-file session when the row order is preserved (round-robin
  /// K = 1) or the bucketizer is permutation-invariant (kExactSort).
  MiningEngine(const dist::PartitionedTable* table, MinerOptions options,
               dist::DistributedScanOptions dist_options = {});

  ~MiningEngine();
  MiningEngine(const MiningEngine&) = delete;
  MiningEngine& operator=(const MiningEngine&) = delete;

  /// Plans boundaries and runs the shared counting scan now (otherwise
  /// the first mining call does it). A failed scan is a fatal error here;
  /// sessions that want to handle scan failures -- e.g. a distributed
  /// session whose worker daemon binary or partition files may be missing
  /// -- call TryPrepare() first and get the Status instead.
  void Prepare();

  /// Prepare() with an error path: plans + scans, returning the first
  /// failure (no-op Ok when already prepared). On error the session stays
  /// unprepared and TryPrepare can be retried. Partition files are
  /// re-validated up front, so tables broken BEFORE the call fail softly;
  /// a partition vanishing in the middle of the scan itself remains
  /// fatal (readers have no mid-stream error channel).
  Status TryPrepare();

  /// Registers a generalized-rule presumptive condition (conjunction of
  /// Boolean attributes, Section 4.3) so the shared counting scan
  /// accumulates its conditional channels for every numeric attribute.
  /// MineGeneralized auto-registers, but registering every condition
  /// before the first mining call keeps counting_scans() at 1; a new
  /// condition after the scan costs one supplemental scan on first use.
  Status RequestGeneralized(const std::vector<std::string>& condition_attrs);

  /// Registers a numeric attribute as a Section 5 aggregate target so the
  /// shared counting scan accumulates its per-bucket sums for every range
  /// attribute. Same pre-registration contract as RequestGeneralized.
  Status RequestAverageTarget(const std::string& target_attr);

  /// Registers a two-dimensional region pair (Section 1.4) so the shared
  /// counting scan scatters its region_grid_buckets^2 cell grid -- per-cell
  /// u plus one v plane per Boolean target -- as a grid channel of the same
  /// single scan. Same pre-registration contract as RequestGeneralized; a
  /// pair registered after the scan costs one supplemental scan.
  Status RequestRegionPair(const std::string& x_attr,
                           const std::string& y_attr);

  /// Rectangular per-request grid: like the overload above but with an
  /// explicit nx-by-ny cell resolution (the region optimizers are
  /// O(nx * ny^2), so a request can spend resolution on the axis that
  /// needs it). Pairs with different shapes coexist in one session; each
  /// axis plans its boundaries at that axis' bucket count.
  Status RequestRegionPair(const std::string& x_attr,
                           const std::string& y_attr, int nx, int ny);

  /// Both optimized rules for every (numeric, Boolean) attribute pair,
  /// in (numeric-major, Boolean-minor) order, confidence rule before
  /// support rule -- the same order as Miner::MineAll().
  std::vector<MinedRule> MineAllPairs();

  /// Threshold sweep from the same cached counts: the full MineAllPairs()
  /// output at each threshold set, concatenated in sweep order. The scan
  /// cost is paid once; every sweep entry is O(M) per pair.
  std::vector<MinedRule> MineAllPairs(std::span<const ThresholdSet> sweep);

  /// Both optimized rules for the pair, from the cached counts.
  Result<std::vector<MinedRule>> MinePair(const std::string& numeric_attr,
                                          const std::string& boolean_attr);

  /// Generalized rules (Section 4.3), answered from the cached
  /// conditional channels; bit-identical to Miner::MineGeneralized.
  Result<std::vector<MinedRule>> MineGeneralized(
      const std::string& numeric_attr,
      const std::vector<std::string>& condition_attrs,
      const std::string& objective_attr);

  /// Section 5 maximum-average range from the cached sum channels;
  /// bit-identical to Miner::MineMaximumAverageRange for serial scans.
  Result<MinedAggregateRange> MineMaximumAverageRange(
      const std::string& range_attr, const std::string& target_attr,
      double min_support);

  /// Section 5 maximum-support range from the cached sum channels;
  /// bit-identical to Miner::MineMaximumSupportRange for serial scans.
  Result<MinedAggregateRange> MineMaximumSupportRange(
      const std::string& range_attr, const std::string& target_attr,
      double min_average);

  /// Two-dimensional optimized regions (Section 1.4) for
  /// `(x_attr, y_attr) in R => target_attr`, answered from the cached grid
  /// channel of the shared counting scan: the optimized-confidence and
  /// optimized-support rectangles plus the max-gain x-monotone region.
  /// Bit-identical to Miner::MineOptimizedRegion. Auto-registers the pair
  /// (one supplemental scan when it was not pre-registered); any Boolean
  /// target can be queried against a registered pair at no extra scan.
  Result<MinedRegion> MineOptimizedRegion(const std::string& x_attr,
                                          const std::string& y_attr,
                                          const std::string& target_attr);

  /// Number of counting scans performed over the data so far (0 before
  /// Prepare, 1 after -- regardless of the number of pairs, generalized,
  /// aggregate, or sweep queries answered, as long as every condition /
  /// aggregate target was registered before the first mining call). For a
  /// partitioned engine this counts LOGICAL scans: one distributed scan =
  /// one, however many partitions it fanned out to.
  int64_t counting_scans() const { return counting_scans_; }

  /// Cache and pruning counters accumulated by this session's reads:
  /// buffer-pool hits/misses, zone-map-pruned pages, and manifest-pruned
  /// partitions. Single-source engines report their batch source's
  /// counters; partitioned engines add the distributed coordinator's
  /// (counting fan-outs) to the concatenating source's (boundary
  /// planning). In-memory relation engines report zeros. Purely
  /// diagnostic: pruning and caching never change a mined bit.
  storage::BatchSourceStats scan_stats() const;

  /// Pages the session's scans skipped via zone maps (scan_stats()).
  int64_t pages_skipped() const { return scan_stats().pages_skipped; }

  /// Partitions skipped wholesale via manifest stats (scan_stats()).
  int64_t partitions_skipped() const {
    return scan_stats().partitions_skipped;
  }

  /// Number of SlopePairContext (hull tree) builds so far: repeated
  /// aggregate queries on one (range, target) pair at different
  /// thresholds reuse the cached context, so this stays at one per pair
  /// (tests assert the reuse).
  int64_t hull_contexts_built() const { return hull_contexts_built_; }

  const storage::Schema& schema() const { return schema_; }
  const MinerOptions& options() const { return options_; }

 private:
  /// One boundary set to plan: numeric attributes bucketed into
  /// `num_buckets` buckets under the session seed + `seed_offset`. An
  /// empty `column_mask` plans every attribute; otherwise only attributes
  /// with column_mask[a] != 0 are planned (the rest get empty placeholder
  /// boundaries) -- the region set uses this so a wide schema does not
  /// pay per-attribute planning for a handful of registered grid axes.
  struct BoundarySetRequest {
    uint64_t seed_offset = 0;
    int num_buckets = 0;
    std::vector<uint8_t> column_mask;
  };
  /// A registered two-dimensional region pair (numeric column indices)
  /// with its grid resolution (nx need not equal ny).
  struct RegionPair {
    int x = 0;
    int y = 0;
    int nx = 0;
    int ny = 0;
    friend bool operator==(const RegionPair&, const RegionPair&) = default;
  };

  /// Plans one boundary set per request for every numeric attribute;
  /// generic batch sources pay ONE streaming pass for the whole request
  /// list (the deterministic bucketizers ignore seeds and are planned once
  /// per distinct bucket count, then copied).
  void PlanBoundarySets(
      std::span<const BoundarySetRequest> requests,
      std::span<std::vector<bucketing::BucketBoundaries>* const> out);
  Status RunCountingScan();
  /// Runs `plan` over exactly one logical scan of the session's data:
  /// ExecuteMultiCount over the source, or -- for a partitioned engine --
  /// a distributed fan-out merged in partition order (whose worker or
  /// partition failures surface as the returned Status).
  Status ExecuteCount(bucketing::MultiCountPlan* plan);
  /// Resolves + registers a condition; runs a supplemental scan when the
  /// session is already prepared. Returns the condition's index.
  Result<int> EnsureCondition(const std::vector<std::string>& names);
  /// Resolves + registers an aggregate target; supplemental scan when
  /// already prepared. Returns the target's sum-channel index.
  Result<int> EnsureSumTarget(const std::string& name);
  /// Resolves + registers a region pair at the given grid shape;
  /// supplemental scan when already prepared. Returns the pair's grid
  /// index.
  Result<int> EnsureRegionPair(const std::string& x_attr,
                               const std::string& y_attr, int nx, int ny);
  /// Index of the first registered pair over (x, y) columns regardless of
  /// grid shape, or -1.
  int FindRegionPair(int x, int y) const;
  /// Supplemental-scan paths for late registrations; a failed scan is
  /// returned and the registration rolled back by the caller.
  Status AddConditionChannels(int condition_index);
  Status AddSumTargetChannels(int target);
  Status AddRegionChannel(int pair_index);
  /// Per distinct region bucket count, the mask of numeric columns some
  /// registered pair buckets at that count (x axes contribute their nx,
  /// y axes their ny).
  std::map<int, std::vector<uint8_t>> RegionColumnMasks() const;
  /// Boundaries of region axis `column` at `num_buckets` (must be
  /// planned).
  const bucketing::BucketBoundaries& RegionBoundary(int num_buckets,
                                                    int column) const;
  const bucketing::BucketSums& SumsFor(int range_attr, int k) const {
    return aggregate_sums_[static_cast<size_t>(range_attr)]
                          [static_cast<size_t>(k)];
  }
  /// Cached hull context of SumsFor(range_attr, k), built on first use.
  const SlopePairContext& HullContextFor(int range_attr, int k);

  const storage::Relation* relation_ = nullptr;  ///< in-memory fast path
  std::unique_ptr<storage::BatchSource> owned_source_;
  storage::BatchSource* source_ = nullptr;
  /// Distributed session state (null for single-source engines): counting
  /// scans fan out through the session coordinator instead of
  /// ExecuteMultiCount. The coordinator persists so supplemental scans
  /// reuse its worker roster (no re-fork per scan) and its
  /// partition_scans() accounting spans the session.
  const dist::PartitionedTable* partitioned_ = nullptr;
  dist::DistributedScanOptions dist_options_;
  std::unique_ptr<dist::DistributedScanCoordinator> coordinator_;
  storage::Schema schema_;
  MinerOptions options_;
  ThreadPool* pool_ = nullptr;
  bool prepared_ = false;
  int64_t counting_scans_ = 0;
  int64_t hull_contexts_built_ = 0;
  /// Registered generalized conditions (resolved Boolean indices, in
  /// registration order), aggregate sum targets (numeric indices), and
  /// two-dimensional region pairs.
  std::vector<std::vector<int>> conditions_;
  std::vector<int> sum_targets_;
  std::vector<RegionPair> region_pairs_;
  /// Boundary sets: base per attribute, plus the decorrelated generalized
  /// / aggregate / region sets (planned only when the session uses them).
  std::vector<bucketing::BucketBoundaries> boundaries_;
  std::vector<bucketing::BucketBoundaries> generalized_boundaries_;
  std::vector<bucketing::BucketBoundaries> aggregate_boundaries_;
  /// Region boundary sets, one per distinct grid bucket count in use
  /// (rectangular pairs plan their x axis at nx and y axis at ny), each a
  /// per-attribute vector with placeholders for masked-out columns.
  std::map<int, std::vector<bucketing::BucketBoundaries>>
      region_boundaries_;
  /// Which columns each region set actually planned (a late pair on an
  /// unplanned (count, column) re-plans that count's set).
  std::map<int, std::vector<uint8_t>> region_planned_;
  /// Compacted per-numeric-attribute counts (one v-row per Boolean attr).
  std::vector<bucketing::BucketCounts> counts_;
  /// generalized_counts_[condition][attr], compacted.
  std::vector<std::vector<bucketing::BucketCounts>> generalized_counts_;
  /// aggregate_sums_[attr][k]: sums of sum_targets_[k] over attr's
  /// aggregate buckets, compacted.
  std::vector<std::vector<bucketing::BucketSums>> aggregate_sums_;
  /// hull_contexts_[attr][k]: lazily built SlopePairContext over
  /// aggregate_sums_[attr][k], reused by every aggregate query on that
  /// pair regardless of threshold.
  std::vector<std::vector<std::unique_ptr<SlopePairContext>>>
      hull_contexts_;
  /// region_grids_[p]: cell grid of region_pairs_[p] (per-cell u plus one
  /// v plane per Boolean target; grids keep their empty cells -- the
  /// region miners handle u == 0 cells directly).
  std::vector<bucketing::GridBucketCounts> region_grids_;
};

/// Legacy reference miner over an in-memory relation.
///
/// The relation must outlive the miner. Bucketings are computed lazily
/// per numeric attribute and cached, so MineAll() pays one sampling pass
/// and one counting pass per numeric attribute regardless of the number
/// of Boolean targets; generalized and aggregate queries re-count per
/// call. MiningEngine supersedes this for every query kind (one scan
/// total instead of one per attribute or per query); Miner stays as the
/// simple reference implementation the engine is tested against.
class Miner {
 public:
  Miner(const storage::Relation* relation, MinerOptions options);
  ~Miner();  // out of line: AttributeBuckets is an incomplete type here

  /// Both optimized rules for the pair (numeric_attr, boolean_attr).
  /// Element 0 is the optimized-confidence rule, element 1 the
  /// optimized-support rule.
  Result<std::vector<MinedRule>> MinePair(const std::string& numeric_attr,
                                          const std::string& boolean_attr);

  /// Both optimized rules for every (numeric, Boolean) attribute pair.
  std::vector<MinedRule> MineAll();

  /// Generalized rules (Section 4.3):
  /// `(A in I) ^ C1 => C2` where C1 is the conjunction of
  /// `condition_attrs` being true. Counts u_i over tuples meeting C1 and
  /// v_i over tuples meeting C1 ^ C2; support stays relative to all
  /// tuples.
  Result<std::vector<MinedRule>> MineGeneralized(
      const std::string& numeric_attr,
      const std::vector<std::string>& condition_attrs,
      const std::string& objective_attr);

  /// Section 5: the range of `range_attr` with at least `min_support`
  /// support maximizing the average of `target_attr`.
  Result<MinedAggregateRange> MineMaximumAverageRange(
      const std::string& range_attr, const std::string& target_attr,
      double min_support);

  /// Section 5: the range of `range_attr` maximizing support subject to
  /// the average of `target_attr` being at least `min_average`.
  Result<MinedAggregateRange> MineMaximumSupportRange(
      const std::string& range_attr, const std::string& target_attr,
      double min_average);

  /// Two-dimensional optimized regions (Section 1.4): builds the
  /// region_grid_buckets^2 equi-depth grid over (x_attr, y_attr) with a
  /// private row-at-a-time counting pass (region::BuildGrid) and runs the
  /// same optimizers as the engine -- the independently-simple reference
  /// path MiningEngine::MineOptimizedRegion is tested bit-identical
  /// against.
  Result<MinedRegion> MineOptimizedRegion(const std::string& x_attr,
                                          const std::string& y_attr,
                                          const std::string& target_attr);

  /// Rectangular variant: an explicit nx-by-ny grid (the engine's
  /// RequestRegionPair(x, y, nx, ny) is tested bit-identical against
  /// this).
  Result<MinedRegion> MineOptimizedRegion(const std::string& x_attr,
                                          const std::string& y_attr,
                                          const std::string& target_attr,
                                          int nx, int ny);

  const MinerOptions& options() const { return options_; }

 private:
  struct AttributeBuckets;  // cached bucketing + counts per numeric attr

  /// Returns (building if needed) the cached bucket statistics of numeric
  /// attribute `numeric_index`.
  const AttributeBuckets& BucketsFor(int numeric_index);

  const storage::Relation* relation_;
  MinerOptions options_;
  std::vector<std::unique_ptr<AttributeBuckets>> cache_;
};

}  // namespace optrules::rules

#endif  // OPTRULES_RULES_MINER_H_
