// End-to-end rule miner: the system of Section 1.3.
//
// Pipeline per numeric attribute: sampling-based equi-depth bucketing
// (Algorithm 3.1) -> one counting scan for all Boolean targets -> O(M)
// optimized-confidence and optimized-support rules per target. The miner
// can sweep every (numeric, Boolean) attribute pair of a relation --
// the paper's "complete set of optimized rules for all combinations of
// hundreds of numeric and Boolean attributes".

#ifndef OPTRULES_RULES_MINER_H_
#define OPTRULES_RULES_MINER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rules/rule.h"
#include "storage/relation.h"

namespace optrules::rules {

/// How equi-depth bucket boundaries are derived per numeric attribute.
enum class Bucketizer {
  kSampling,   ///< Algorithm 3.1: random sample + sorted quantiles
  kGkSketch,   ///< deterministic Greenwald-Khanna quantile sketch
  kExactSort,  ///< full sort of the column ("Naive Sort"; exact depths)
};

/// Mining parameters.
struct MinerOptions {
  int num_buckets = 1000;        ///< M of Algorithm 3.1
  int64_t sample_per_bucket = 40;  ///< S/M of Algorithm 3.1
  double min_support = 0.05;     ///< ampleness threshold (confidence rules)
  double min_confidence = 0.5;   ///< confidence threshold (support rules)
  uint64_t seed = 42;            ///< sampling seed
  Bucketizer bucketizer = Bucketizer::kSampling;
  /// Rank-error fraction for the GK bucketizer (ignored otherwise).
  double gk_epsilon = 0.0;  ///< 0 = auto: 1 / (4 * num_buckets)
};

/// Which optimization a mined rule answers.
enum class RuleKind {
  kOptimizedConfidence,  ///< max confidence s.t. support >= min_support
  kOptimizedSupport,     ///< max support s.t. confidence >= min_confidence
};

/// A mined rule `(A in [range_lo, range_hi]) [ ^ C1 ] => C`, with its
/// measured statistics. Range endpoints are the observed attribute values
/// spanned by the chosen buckets.
struct MinedRule {
  bool found = false;
  RuleKind kind = RuleKind::kOptimizedConfidence;
  std::string numeric_attr;
  std::string boolean_attr;
  std::string presumptive_condition;  ///< extra C1 conjunct names, or empty
  double range_lo = 0.0;
  double range_hi = 0.0;
  int64_t support_count = 0;
  int64_t hit_count = 0;
  double support = 0.0;
  double confidence = 0.0;

  /// Human-readable one-line rendering of the rule.
  std::string ToString() const;
};

/// A mined Section 5 aggregate range for
/// `avg(B | A in [range_lo, range_hi])`.
struct MinedAggregateRange {
  bool found = false;
  std::string range_attr;   ///< A
  std::string target_attr;  ///< B
  double range_lo = 0.0;
  double range_hi = 0.0;
  int64_t support_count = 0;
  double support = 0.0;
  double average = 0.0;

  std::string ToString() const;
};

/// Rule miner over an in-memory relation.
///
/// The relation must outlive the miner. Bucketings are computed lazily per
/// numeric attribute and cached, so MineAll() pays one sampling pass and
/// one counting pass per numeric attribute regardless of the number of
/// Boolean targets.
class Miner {
 public:
  Miner(const storage::Relation* relation, MinerOptions options);
  ~Miner();  // out of line: AttributeBuckets is an incomplete type here

  /// Both optimized rules for the pair (numeric_attr, boolean_attr).
  /// Element 0 is the optimized-confidence rule, element 1 the
  /// optimized-support rule.
  Result<std::vector<MinedRule>> MinePair(const std::string& numeric_attr,
                                          const std::string& boolean_attr);

  /// Both optimized rules for every (numeric, Boolean) attribute pair.
  std::vector<MinedRule> MineAll();

  /// Generalized rules (Section 4.3):
  /// `(A in I) ^ C1 => C2` where C1 is the conjunction of
  /// `condition_attrs` being true. Counts u_i over tuples meeting C1 and
  /// v_i over tuples meeting C1 ^ C2; support stays relative to all
  /// tuples.
  Result<std::vector<MinedRule>> MineGeneralized(
      const std::string& numeric_attr,
      const std::vector<std::string>& condition_attrs,
      const std::string& objective_attr);

  /// Section 5: the range of `range_attr` with at least `min_support`
  /// support maximizing the average of `target_attr`.
  Result<MinedAggregateRange> MineMaximumAverageRange(
      const std::string& range_attr, const std::string& target_attr,
      double min_support);

  /// Section 5: the range of `range_attr` maximizing support subject to
  /// the average of `target_attr` being at least `min_average`.
  Result<MinedAggregateRange> MineMaximumSupportRange(
      const std::string& range_attr, const std::string& target_attr,
      double min_average);

  const MinerOptions& options() const { return options_; }

 private:
  struct AttributeBuckets;  // cached bucketing + counts per numeric attr

  /// Returns (building if needed) the cached bucket statistics of numeric
  /// attribute `numeric_index`.
  const AttributeBuckets& BucketsFor(int numeric_index);

  const storage::Relation* relation_;
  MinerOptions options_;
  std::vector<std::unique_ptr<AttributeBuckets>> cache_;
};

}  // namespace optrules::rules

#endif  // OPTRULES_RULES_MINER_H_
