// Shared result types for the optimized-rule algorithms (Section 4).
//
// All algorithms operate on a sequence of M buckets described by parallel
// arrays u[0..M), v[0..M): u_i is the tuple count of bucket i and v_i the
// count of tuples in bucket i that meet the objective condition C (or, for
// the Section 5 average operator, the sum of the target attribute). Ranges
// are pairs of inclusive 0-based bucket indices s <= t.

#ifndef OPTRULES_RULES_RULE_H_
#define OPTRULES_RULES_RULE_H_

#include <cstdint>
#include <span>

#include "common/logging.h"

namespace optrules::rules {

/// An optimized bucket range for counting rules, with its statistics.
struct RangeRule {
  bool found = false;
  int s = -1;                ///< first bucket of the range (inclusive)
  int t = -1;                ///< last bucket of the range (inclusive)
  int64_t support_count = 0;  ///< sum of u_i over [s, t]
  int64_t hit_count = 0;      ///< sum of v_i over [s, t]
  double support = 0.0;       ///< support_count / N
  double confidence = 0.0;    ///< hit_count / support_count
};

/// An optimized bucket range for real-valued aggregates (Section 5).
struct RangeAggregate {
  bool found = false;
  int s = -1;
  int t = -1;
  int64_t support_count = 0;  ///< sum of u_i over [s, t]
  double sum = 0.0;           ///< sum of v_i over [s, t]
  double average = 0.0;       ///< sum / support_count
};

/// ceil(min_support_fraction * total): the minimum tuple count a range
/// needs in order to be ample. min_support_fraction must be in [0, 1].
int64_t MinSupportCount(int64_t total, double min_support_fraction);

/// Assembles a RangeRule for range [s, t] from the count arrays.
RangeRule MakeRangeRule(std::span<const int64_t> u,
                        std::span<const int64_t> v, int64_t total_tuples,
                        int s, int t);

/// Assembles a RangeAggregate for range [s, t].
RangeAggregate MakeRangeAggregate(std::span<const int64_t> u,
                                  std::span<const double> v, int s, int t);

}  // namespace optrules::rules

#endif  // OPTRULES_RULES_RULE_H_
