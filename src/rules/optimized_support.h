// Optimized-support rules (Section 4.2, Algorithms 4.3 and 4.4).
//
// Among ranges of consecutive buckets whose confidence is at least the
// given threshold, find the one maximizing the support. Runs in O(M) via
// effective start indices and a monotone backward scan for each start's
// furthest confident end. All arithmetic is exact (128-bit integer gains
// against a rational threshold).

#ifndef OPTRULES_RULES_OPTIMIZED_SUPPORT_H_
#define OPTRULES_RULES_OPTIMIZED_SUPPORT_H_

#include <cstdint>
#include <span>

#include "common/ratio.h"
#include "rules/rule.h"

namespace optrules::rules {

/// Maximizes sum(u) over ranges with sum(v)/sum(u) >= min_confidence.
/// Requires 0 <= v_i <= u_i. Returns found=false when no range is
/// confident.
RangeRule OptimizedSupportRule(std::span<const int64_t> u,
                               std::span<const int64_t> v,
                               int64_t total_tuples, Ratio min_confidence);

}  // namespace optrules::rules

#endif  // OPTRULES_RULES_OPTIMIZED_SUPPORT_H_
