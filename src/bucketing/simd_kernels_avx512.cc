// AVX-512 arm of the counting kernels: eight 64-bit lanes per step with
// k-mask blends instead of byte blends. Compiled with
// -mavx512f -mavx512dq -mavx512vl when the compiler supports them;
// runtime cpuid gating (f+dq+vl) lives in simd_kernels.cc.

#include "bucketing/simd_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include <immintrin.h>

#include "bucketing/simd_kernels_scalar.inl.h"

namespace optrules::bucketing::simd {

namespace {

using internal::ScalarLocateEquiWidthOne;
using internal::ScalarLocateSearchOne;

/// Branchless lower_bound for eight values: same ladder as the scalar
/// walk (shared trip count, a function of num_cuts only) with gathered
/// probes. NaN lanes compare false everywhere and settle on 0; the caller
/// overrides them with -1.
inline __m512i LowerBound8(__m512d x, const double* cuts, size_t num_cuts) {
  __m512i base = _mm512_setzero_si512();  // eight int64 indices
  size_t n = num_cuts;
  while (n > 1) {
    const size_t half = n / 2;
    const __m512i probe_index = _mm512_add_epi64(
        base, _mm512_set1_epi64(static_cast<long long>(half - 1)));
    const __m512d probe = _mm512_i64gather_pd(probe_index, cuts, 8);
    const __mmask8 lt = _mm512_cmp_pd_mask(probe, x, _CMP_LT_OQ);
    base = _mm512_mask_add_epi64(
        base, lt, base, _mm512_set1_epi64(static_cast<long long>(half)));
    n -= half;
  }
  const __m512d last = _mm512_i64gather_pd(base, cuts, 8);
  const __mmask8 lt = _mm512_cmp_pd_mask(last, x, _CMP_LT_OQ);
  return _mm512_mask_add_epi64(base, lt, base, _mm512_set1_epi64(1));
}

int64_t LocateSearchAvx512(const double* values, size_t n, const double* cuts,
                           size_t num_cuts, int32_t* out) {
  int64_t no_bucket = 0;
  size_t i = 0;
  if (num_cuts > 0) {
    const __m256i no_bucket_vec = _mm256_set1_epi32(-1);
    for (; i + 8 <= n; i += 8) {
      const __m512d x = _mm512_loadu_pd(values + i);
      const __mmask8 nan = _mm512_cmp_pd_mask(x, x, _CMP_UNORD_Q);
      __m256i idx = _mm512_cvtepi64_epi32(LowerBound8(x, cuts, num_cuts));
      idx = _mm256_mask_blend_epi32(nan, idx, no_bucket_vec);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), idx);
      no_bucket += __builtin_popcount(static_cast<unsigned>(nan));
    }
  }
  for (; i < n; ++i) {
    const int32_t bucket = ScalarLocateSearchOne(cuts, num_cuts, values[i]);
    out[i] = bucket;
    no_bucket += static_cast<int64_t>(bucket < 0);
  }
  return no_bucket;
}

int64_t LocateEquiWidthAvx512(const double* values, size_t n,
                              const double* cuts, size_t num_cuts,
                              double first_cut, double inv_step,
                              int32_t* out) {
  int64_t no_bucket = 0;
  size_t i = 0;
  if (num_cuts > 0) {
    const __m512d vfirst = _mm512_set1_pd(first_cut);
    const __m512d vinv = _mm512_set1_pd(inv_step);
    const __m512d vn_pd = _mm512_set1_pd(static_cast<double>(num_cuts));
    const __m256i vn = _mm256_set1_epi32(static_cast<int32_t>(num_cuts));
    const __m256i vn_minus_1 =
        _mm256_set1_epi32(static_cast<int32_t>(num_cuts) - 1);
    const __m256i vzero = _mm256_setzero_si256();
    const __m256i vone = _mm256_set1_epi32(1);
    const __m256i vall = _mm256_set1_epi32(-1);
    for (; i + 8 <= n; i += 8) {
      const __m512d x = _mm512_loadu_pd(values + i);
      const __mmask8 nan = _mm512_cmp_pd_mask(x, x, _CMP_UNORD_Q);
      // ceil((x - first) / step) clamped to [0, n], exactly as the scalar
      // walk does it. min_pd maps a NaN guess to n (safe gather range).
      __m512d guess = _mm512_roundscale_pd(
          _mm512_mul_pd(_mm512_sub_pd(x, vfirst), vinv),
          _MM_FROUND_TO_POS_INF | _MM_FROUND_NO_EXC);
      guess = _mm512_min_pd(guess, vn_pd);
      guess = _mm512_max_pd(guess, _mm512_setzero_pd());
      __m256i idx = _mm512_cvttpd_epi32(guess);
      for (int step = 0; step < 2; ++step) {
        const __mmask8 can_up = _mm256_cmplt_epi32_mask(idx, vn);
        const __m256i probe_index = _mm256_min_epi32(idx, vn_minus_1);
        const __m512d probe = _mm512_i32gather_pd(probe_index, cuts, 8);
        const __mmask8 up =
            can_up & _mm512_cmp_pd_mask(probe, x, _CMP_LT_OQ);
        idx = _mm256_mask_add_epi32(idx, up, idx, vone);
      }
      for (int step = 0; step < 2; ++step) {
        const __mmask8 can_down = _mm256_cmpgt_epi32_mask(idx, vzero);
        const __m256i probe_index =
            _mm256_max_epi32(_mm256_sub_epi32(idx, vone), vzero);
        const __m512d probe = _mm512_i32gather_pd(probe_index, cuts, 8);
        const __mmask8 down =
            can_down & _mm512_cmp_pd_mask(probe, x, _CMP_GE_OQ);
        idx = _mm256_mask_sub_epi32(idx, down, idx, vone);
      }
      // Per-lane lower_bound invariant check (unique answer => a lane that
      // validates is bit-identical to the scalar result).
      const __mmask8 is_zero = _mm256_cmpeq_epi32_mask(idx, vzero);
      const __m512d below = _mm512_i32gather_pd(
          _mm256_max_epi32(_mm256_sub_epi32(idx, vone), vzero), cuts, 8);
      const __mmask8 low_ok =
          is_zero | _mm512_cmp_pd_mask(below, x, _CMP_LT_OQ);
      const __mmask8 is_n = _mm256_cmpeq_epi32_mask(idx, vn);
      const __m512d at =
          _mm512_i32gather_pd(_mm256_min_epi32(idx, vn_minus_1), cuts, 8);
      const __mmask8 high_ok =
          is_n | _mm512_cmp_pd_mask(at, x, _CMP_GE_OQ);
      const __mmask8 valid = (low_ok & high_ok) | nan;
      idx = _mm256_mask_blend_epi32(nan, idx, vall);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), idx);
      no_bucket += __builtin_popcount(static_cast<unsigned>(nan));
      const unsigned unsettled = static_cast<unsigned>(valid) ^ 0xffu;
      if (unsettled != 0) {
        for (int lane = 0; lane < 8; ++lane) {
          if ((unsettled >> lane) & 1) {
            out[i + static_cast<size_t>(lane)] = ScalarLocateEquiWidthOne(
                cuts, num_cuts, first_cut, inv_step,
                values[i + static_cast<size_t>(lane)]);
          }
        }
      }
    }
  }
  for (; i < n; ++i) {
    const int32_t bucket = ScalarLocateEquiWidthOne(cuts, num_cuts, first_cut,
                                                    inv_step, values[i]);
    out[i] = bucket;
    no_bucket += static_cast<int64_t>(bucket < 0);
  }
  return no_bucket;
}

void MaskAndAvx512(uint8_t* mask, const uint8_t* condition, size_t n) {
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i m = _mm512_loadu_si512(mask + i);
    const __m512i c = _mm512_loadu_si512(condition + i);
    _mm512_storeu_si512(mask + i, _mm512_and_si512(m, c));
  }
  for (; i < n; ++i) mask[i] &= condition[i];
}

void FoldCellsAvx512(const int32_t* x, const int32_t* y, size_t n, int32_t nx,
                     int32_t* cells) {
  const __m512i vnx = _mm512_set1_epi32(nx);
  const __m512i vall = _mm512_set1_epi32(-1);
  const __m512i vzero = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    const __mmask16 miss =
        _mm512_cmpgt_epi32_mask(vzero, _mm512_or_si512(vx, vy));
    const __m512i cell =
        _mm512_add_epi32(_mm512_mullo_epi32(vy, vnx), vx);
    _mm512_storeu_si512(cells + i,
                        _mm512_mask_blend_epi32(miss, cell, vall));
  }
  for (; i < n; ++i) {
    cells[i] = (x[i] | y[i]) < 0 ? -1 : y[i] * nx + x[i];
  }
}

const Kernels kAvx512 = {"avx512", LocateSearchAvx512, LocateEquiWidthAvx512,
                         MaskAndAvx512, FoldCellsAvx512};

}  // namespace

const Kernels* Avx512KernelsOrNull() { return &kAvx512; }

}  // namespace optrules::bucketing::simd

#else  // AVX-512 subset not compiled in

namespace optrules::bucketing::simd {

const Kernels* Avx512KernelsOrNull() { return nullptr; }

}  // namespace optrules::bucketing::simd

#endif
