// Bucket boundaries over the domain of one numeric attribute.
//
// M buckets are described by M-1 interior cut points p_1 <= ... <= p_{M-1};
// bucket i (0-based) covers (p_i, p_{i+1}] with p_0 = -inf and p_M = +inf,
// exactly the assignment rule of Algorithm 3.1 step 4 ("find i such that
// p_{i-1} < x <= p_i").

#ifndef OPTRULES_BUCKETING_BOUNDARIES_H_
#define OPTRULES_BUCKETING_BOUNDARIES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bucketing/simd_kernels.h"
#include "common/logging.h"

namespace optrules::bucketing {

/// How equi-depth bucket boundaries are derived per numeric attribute.
enum class Bucketizer {
  kSampling,   ///< Algorithm 3.1: random sample + sorted quantiles
  kGkSketch,   ///< deterministic Greenwald-Khanna quantile sketch
  kExactSort,  ///< full sort of the column ("Naive Sort"; exact depths)
};

/// Immutable set of bucket cut points with O(log M) point location.
class BucketBoundaries {
 public:
  /// From interior cut points (must be sorted ascending); yields
  /// `cut_points.size() + 1` buckets.
  static BucketBoundaries FromCutPoints(std::vector<double> cut_points);

  /// Exact equi-depth boundaries from a fully sorted value array: cut point
  /// i is the (i * n / M)-th smallest value. This is the "sort the data"
  /// path the paper wants to avoid for out-of-core tables.
  static BucketBoundaries FromSortedValues(std::span<const double> sorted,
                                           int num_buckets);

  /// Affine cuts lo + i * step (i = 1 .. num_buckets-1) with the
  /// equi-width LocateBatch fast path pre-enabled whenever the parameters
  /// allow it -- unlike the constructor's bitwise reconstruction, this
  /// survives per-cut rounding (the neighbor fix-up keeps location exact
  /// either way).
  static BucketBoundaries FromEquiWidth(double lo, double step,
                                        int num_buckets);

  /// Number of buckets (cut points + 1).
  int num_buckets() const {
    return static_cast<int>(cut_points_.size()) + 1;
  }

  /// Sentinel Locate() result for values that belong to no bucket (NaN).
  static constexpr int kNoBucket = -1;

  /// Bucket index of value `x` in [0, num_buckets), or kNoBucket when `x`
  /// is NaN. NaN compares false against every cut point, so without the
  /// sentinel it would silently land in bucket 0 and inflate the u-count
  /// of every range touching the leftmost bucket; the repo-wide policy is
  /// that NaN rows count toward total_tuples but toward no bucket.
  int Locate(double x) const;

  /// Batch point location: out[i] = Locate(values[i]) for every i,
  /// bit-identical to the scalar call (including the NaN -> kNoBucket
  /// policy) but without per-value function dispatch. Runs on the active
  /// SIMD kernel arm (simd::Active()): vectorized arithmetic location when
  /// the cut points are affine (equi_width()), a vectorized gather/compare
  /// ladder otherwise, or the branchless scalar kernels under
  /// OPTRULES_FORCE_SCALAR=1. Returns the number of kNoBucket entries
  /// written (the NaN count). The spans must have equal lengths.
  int64_t LocateBatch(std::span<const double> values,
                      std::span<int32_t> out) const;

  /// LocateBatch pinned to one specific kernel arm -- the differential
  /// tests use this to prove every arm bit-identical on shared inputs.
  int64_t LocateBatchWithKernels(const simd::Kernels& kernels,
                                 std::span<const double> values,
                                 std::span<int32_t> out) const;

  /// True when the cut points were detected as exactly affine
  /// (cut[i] == cut[0] + i * step with step > 0), enabling the arithmetic
  /// LocateBatch fast path. Exposed so tests can assert the detection.
  bool equi_width() const { return equi_width_; }

  /// Interior cut points, ascending.
  const std::vector<double>& cut_points() const { return cut_points_; }

  /// Exclusive lower / inclusive upper edge of bucket i; the first lower
  /// edge is -infinity and the last upper edge +infinity.
  double LowerEdge(int i) const;
  double UpperEdge(int i) const;

 private:
  explicit BucketBoundaries(std::vector<double> cut_points);

  /// lower_bound index of `x` (number of cut points < x) via a branchless
  /// binary search; `x` must not be NaN.
  int LocateBranchless(double x) const;
  /// lower_bound index of `x` on the equi-width fast path: an arithmetic
  /// guess from the affine cut layout, then a bounded neighbor fix-up that
  /// makes the result exact despite floating-point rounding in the guess.
  int LocateEquiWidth(double x) const;

  std::vector<double> cut_points_;
  bool equi_width_ = false;
  double first_cut_ = 0.0;
  double inv_step_ = 0.0;  ///< 1 / step of the affine layout
};

/// Strategy + parameters for boundary planning. This is the single
/// dispatch point for the three bucketizers; the miners and the bench
/// harnesses all build boundaries through BuildBoundaries() rather than
/// switching on the strategy themselves.
struct BoundaryPlan {
  Bucketizer bucketizer = Bucketizer::kSampling;
  int num_buckets = 1000;        ///< M of Algorithm 3.1
  int64_t sample_per_bucket = 40;  ///< S/M of Algorithm 3.1 (sampling only)
  uint64_t seed = 42;            ///< sampling seed (sampling only)
  /// Rank-error fraction for the GK bucketizer; 0 = auto.
  double gk_epsilon = 0.0;

  /// gk_epsilon, defaulted to 1 / (4 * num_buckets) when unset.
  double EffectiveGkEpsilon() const;
};

/// Builds equi-depth boundaries for one in-memory column under `plan`.
/// `salt` decorrelates per-attribute sampling seeds (the effective seed is
/// plan.seed + salt); the deterministic bucketizers ignore it.
BucketBoundaries BuildBoundaries(std::span<const double> values,
                                 const BoundaryPlan& plan,
                                 uint64_t salt = 0);

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_BOUNDARIES_H_
