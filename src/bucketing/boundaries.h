// Bucket boundaries over the domain of one numeric attribute.
//
// M buckets are described by M-1 interior cut points p_1 <= ... <= p_{M-1};
// bucket i (0-based) covers (p_i, p_{i+1}] with p_0 = -inf and p_M = +inf,
// exactly the assignment rule of Algorithm 3.1 step 4 ("find i such that
// p_{i-1} < x <= p_i").

#ifndef OPTRULES_BUCKETING_BOUNDARIES_H_
#define OPTRULES_BUCKETING_BOUNDARIES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace optrules::bucketing {

/// Immutable set of bucket cut points with O(log M) point location.
class BucketBoundaries {
 public:
  /// From interior cut points (must be sorted ascending); yields
  /// `cut_points.size() + 1` buckets.
  static BucketBoundaries FromCutPoints(std::vector<double> cut_points);

  /// Exact equi-depth boundaries from a fully sorted value array: cut point
  /// i is the (i * n / M)-th smallest value. This is the "sort the data"
  /// path the paper wants to avoid for out-of-core tables.
  static BucketBoundaries FromSortedValues(std::span<const double> sorted,
                                           int num_buckets);

  /// Number of buckets (cut points + 1).
  int num_buckets() const {
    return static_cast<int>(cut_points_.size()) + 1;
  }

  /// Bucket index of value `x` in [0, num_buckets).
  int Locate(double x) const;

  /// Interior cut points, ascending.
  const std::vector<double>& cut_points() const { return cut_points_; }

  /// Exclusive lower / inclusive upper edge of bucket i; the first lower
  /// edge is -infinity and the last upper edge +infinity.
  double LowerEdge(int i) const;
  double UpperEdge(int i) const;

 private:
  explicit BucketBoundaries(std::vector<double> cut_points)
      : cut_points_(std::move(cut_points)) {}

  std::vector<double> cut_points_;
};

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_BOUNDARIES_H_
