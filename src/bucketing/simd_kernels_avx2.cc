// AVX2 arm of the counting kernels. This translation unit is compiled
// with -mavx2 (per-file flag set by CMake when the compiler supports it);
// when it is not, the registration function returns nullptr and dispatch
// stays on the scalar reference. Runtime cpuid gating lives in
// simd_kernels.cc -- nothing here executes unless the CPU reports AVX2.

#include "bucketing/simd_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "bucketing/simd_kernels_scalar.inl.h"

namespace optrules::bucketing::simd {

namespace {

using internal::ScalarLocateEquiWidthOne;
using internal::ScalarLocateSearchOne;

/// Low 32 bits of each 64-bit lane, compacted into the low 128 bits.
inline __m128i PackQwordsToDwords(__m256i v) {
  const __m256i perm = _mm256_permutevar8x32_epi32(
      v, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
  return _mm256_castsi256_si128(perm);
}

/// Vectorized branchless lower_bound for four values at once: the same
/// conditional-advance ladder as the scalar walk (the probe sequence is a
/// function of num_cuts only, so all lanes share one trip count), with the
/// cut loads turned into gathers. NaN lanes compare false everywhere and
/// settle on index 0; the caller blends them to -1.
inline __m256i LowerBound4(__m256d x, const double* cuts, size_t num_cuts) {
  __m256i base = _mm256_setzero_si256();  // four int64 indices
  size_t n = num_cuts;
  while (n > 1) {
    const size_t half = n / 2;
    const __m256i probe_index = _mm256_add_epi64(
        base, _mm256_set1_epi64x(static_cast<long long>(half - 1)));
    const __m256d probe = _mm256_i64gather_pd(cuts, probe_index, 8);
    const __m256d lt = _mm256_cmp_pd(probe, x, _CMP_LT_OQ);
    base = _mm256_add_epi64(
        base, _mm256_and_si256(_mm256_castpd_si256(lt),
                               _mm256_set1_epi64x(
                                   static_cast<long long>(half))));
    n -= half;
  }
  const __m256d last = _mm256_i64gather_pd(cuts, base, 8);
  const __m256d lt = _mm256_cmp_pd(last, x, _CMP_LT_OQ);
  // The compare mask is 0 or -1 per lane; subtracting it adds the final
  // "*base < x" step of the scalar walk.
  return _mm256_sub_epi64(base, _mm256_castpd_si256(lt));
}

int64_t LocateSearchAvx2(const double* values, size_t n, const double* cuts,
                         size_t num_cuts, int32_t* out) {
  int64_t no_bucket = 0;
  size_t i = 0;
  if (num_cuts > 0) {
    const __m128i no_bucket_vec = _mm_set1_epi32(-1);
    // Two independent four-lane ladders per iteration: the gathers of one
    // chain execute under the latency of the other's.
    for (; i + 8 <= n; i += 8) {
      const __m256d x0 = _mm256_loadu_pd(values + i);
      const __m256d x1 = _mm256_loadu_pd(values + i + 4);
      const __m256d nan0 = _mm256_cmp_pd(x0, x0, _CMP_UNORD_Q);
      const __m256d nan1 = _mm256_cmp_pd(x1, x1, _CMP_UNORD_Q);
      __m128i idx0 = PackQwordsToDwords(LowerBound4(x0, cuts, num_cuts));
      __m128i idx1 = PackQwordsToDwords(LowerBound4(x1, cuts, num_cuts));
      idx0 = _mm_blendv_epi8(idx0, no_bucket_vec,
                             PackQwordsToDwords(_mm256_castpd_si256(nan0)));
      idx1 = _mm_blendv_epi8(idx1, no_bucket_vec,
                             PackQwordsToDwords(_mm256_castpd_si256(nan1)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), idx0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4), idx1);
      no_bucket += __builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_pd(nan0)) |
          (static_cast<unsigned>(_mm256_movemask_pd(nan1)) << 4));
    }
  }
  for (; i < n; ++i) {
    const int32_t bucket = ScalarLocateSearchOne(cuts, num_cuts, values[i]);
    out[i] = bucket;
    no_bucket += static_cast<int64_t>(bucket < 0);
  }
  return no_bucket;
}

int64_t LocateEquiWidthAvx2(const double* values, size_t n,
                            const double* cuts, size_t num_cuts,
                            double first_cut, double inv_step, int32_t* out) {
  int64_t no_bucket = 0;
  size_t i = 0;
  if (num_cuts > 0) {
    const __m256d vfirst = _mm256_set1_pd(first_cut);
    const __m256d vinv = _mm256_set1_pd(inv_step);
    const __m256d vn_pd = _mm256_set1_pd(static_cast<double>(num_cuts));
    const __m128i vn = _mm_set1_epi32(static_cast<int32_t>(num_cuts));
    const __m128i vn_minus_1 =
        _mm_set1_epi32(static_cast<int32_t>(num_cuts) - 1);
    const __m128i vzero = _mm_setzero_si128();
    const __m128i vone = _mm_set1_epi32(1);
    const __m128i vall = _mm_set1_epi32(-1);
    for (; i + 4 <= n; i += 4) {
      const __m256d x = _mm256_loadu_pd(values + i);
      const __m256d nan_pd = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
      // ceil((x - first) / step), clamped to [0, n] exactly like the
      // scalar walk. min_pd maps a NaN guess (NaN x) to n -- in range for
      // the gathers; the lane is blended to -1 below regardless.
      __m256d guess = _mm256_round_pd(
          _mm256_mul_pd(_mm256_sub_pd(x, vfirst), vinv),
          _MM_FROUND_TO_POS_INF | _MM_FROUND_NO_EXC);
      guess = _mm256_min_pd(guess, vn_pd);
      guess = _mm256_max_pd(guess, _mm256_setzero_pd());
      __m128i idx = _mm256_cvttpd_epi32(guess);
      // Bounded fix-up, two up then two down steps (the drift audit
      // guarantees guesses land within two slots of the answer at cut
      // points; anything the walk does not settle falls back to scalar).
      for (int step = 0; step < 2; ++step) {
        const __m128i can_up = _mm_cmplt_epi32(idx, vn);
        const __m128i probe_index = _mm_min_epi32(idx, vn_minus_1);
        const __m256d probe = _mm256_i32gather_pd(cuts, probe_index, 8);
        const __m256d lt = _mm256_cmp_pd(probe, x, _CMP_LT_OQ);
        const __m128i up = _mm_and_si128(
            can_up, PackQwordsToDwords(_mm256_castpd_si256(lt)));
        idx = _mm_sub_epi32(idx, up);  // up mask is -1: subtracts -1
      }
      for (int step = 0; step < 2; ++step) {
        const __m128i can_down = _mm_cmpgt_epi32(idx, vzero);
        const __m128i probe_index =
            _mm_max_epi32(_mm_sub_epi32(idx, vone), vzero);
        const __m256d probe = _mm256_i32gather_pd(cuts, probe_index, 8);
        const __m256d ge = _mm256_cmp_pd(probe, x, _CMP_GE_OQ);
        const __m128i down = _mm_and_si128(
            can_down, PackQwordsToDwords(_mm256_castpd_si256(ge)));
        idx = _mm_add_epi32(idx, down);  // down mask is -1: subtracts 1
      }
      // Per-lane lower_bound invariant:
      //   (idx == 0 || cuts[idx-1] < x) && (idx == n || cuts[idx] >= x).
      // lower_bound's answer is the unique index satisfying it, so a lane
      // that validates IS bit-identical to the scalar result.
      const __m128i is_zero = _mm_cmpeq_epi32(idx, vzero);
      const __m256d below = _mm256_i32gather_pd(
          cuts, _mm_max_epi32(_mm_sub_epi32(idx, vone), vzero), 8);
      const __m128i low_ok = _mm_or_si128(
          is_zero, PackQwordsToDwords(_mm256_castpd_si256(
                       _mm256_cmp_pd(below, x, _CMP_LT_OQ))));
      const __m128i is_n = _mm_cmpeq_epi32(idx, vn);
      const __m256d at = _mm256_i32gather_pd(
          cuts, _mm_min_epi32(idx, vn_minus_1), 8);
      const __m128i high_ok = _mm_or_si128(
          is_n, PackQwordsToDwords(_mm256_castpd_si256(
                    _mm256_cmp_pd(at, x, _CMP_GE_OQ))));
      const __m128i nan32 = PackQwordsToDwords(_mm256_castpd_si256(nan_pd));
      // NaN lanes are settled by definition (they become -1).
      const __m128i valid =
          _mm_or_si128(_mm_and_si128(low_ok, high_ok), nan32);
      idx = _mm_blendv_epi8(idx, vall, nan32);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), idx);
      no_bucket +=
          __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(nan_pd)));
      const int unsettled =
          _mm_movemask_ps(_mm_castsi128_ps(_mm_xor_si128(valid, vall)));
      if (unsettled != 0) {
        for (int lane = 0; lane < 4; ++lane) {
          if ((unsettled >> lane) & 1) {
            out[i + static_cast<size_t>(lane)] = ScalarLocateEquiWidthOne(
                cuts, num_cuts, first_cut, inv_step,
                values[i + static_cast<size_t>(lane)]);
          }
        }
      }
    }
  }
  for (; i < n; ++i) {
    const int32_t bucket = ScalarLocateEquiWidthOne(cuts, num_cuts, first_cut,
                                                    inv_step, values[i]);
    out[i] = bucket;
    no_bucket += static_cast<int64_t>(bucket < 0);
  }
  return no_bucket;
}

void MaskAndAvx2(uint8_t* mask, const uint8_t* condition, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i m = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(mask + i));
    const __m256i c = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(condition + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mask + i),
                        _mm256_and_si256(m, c));
  }
  for (; i < n; ++i) mask[i] &= condition[i];
}

void FoldCellsAvx2(const int32_t* x, const int32_t* y, size_t n, int32_t nx,
                   int32_t* cells) {
  const __m256i vnx = _mm256_set1_epi32(nx);
  const __m256i vall = _mm256_set1_epi32(-1);
  const __m256i vzero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i miss =
        _mm256_cmpgt_epi32(vzero, _mm256_or_si256(vx, vy));
    const __m256i cell =
        _mm256_add_epi32(_mm256_mullo_epi32(vy, vnx), vx);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cells + i),
                        _mm256_blendv_epi8(cell, vall, miss));
  }
  for (; i < n; ++i) {
    cells[i] = (x[i] | y[i]) < 0 ? -1 : y[i] * nx + x[i];
  }
}

const Kernels kAvx2 = {"avx2", LocateSearchAvx2, LocateEquiWidthAvx2,
                       MaskAndAvx2, FoldCellsAvx2};

}  // namespace

const Kernels* Avx2KernelsOrNull() { return &kAvx2; }

}  // namespace optrules::bucketing::simd

#else  // !defined(__AVX2__)

namespace optrules::bucketing::simd {

const Kernels* Avx2KernelsOrNull() { return nullptr; }

}  // namespace optrules::bucketing::simd

#endif  // defined(__AVX2__)
