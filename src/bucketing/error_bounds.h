// Section 3.4: how bucket granularity bounds the error of approximating
// the optimal range by consecutive buckets (Figure 2, Table I).
//
// With M equi-depth buckets, each endpoint of the optimal range moves by at
// most one bucket (support mass 1/M), so the approximate range's support is
// within +-2/M of support_opt, and in the worst case the confidence is
// diluted by up to 2/M of all-miss mass (lower bound) or concentrated by
// removing up to 2/M of all-miss mass (upper bound).

#ifndef OPTRULES_BUCKETING_ERROR_BOUNDS_H_
#define OPTRULES_BUCKETING_ERROR_BOUNDS_H_

namespace optrules::bucketing {

/// Worst-case band for the support and confidence of the bucket
/// approximation of an optimal range. All quantities are fractions in
/// [0, 1].
struct ApproxErrorBounds {
  double support_lo = 0.0;
  double support_hi = 0.0;
  double confidence_lo = 0.0;
  double confidence_hi = 0.0;
};

/// Exact worst-case band used by the paper's Table I:
///   support    in [s - 2/M, s + 2/M]
///   confidence in [c*M*s/(M*s + 2), c*M*s/(M*s - 2)]  (clamped to [0,1];
///   the upper bound degenerates to 1 when M*s <= 2).
ApproxErrorBounds BucketApproximationBounds(double support_opt,
                                            double confidence_opt,
                                            int num_buckets);

/// The paper's stated relative-error bounds (slightly looser symmetric
/// form): returns 2/(M*s) and 2/(M*s - 2) respectively; the latter is
/// +infinity when M*s <= 2.
double RelativeSupportErrorBound(double support_opt, int num_buckets);
double RelativeConfidenceErrorBound(double support_opt, int num_buckets);

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_ERROR_BOUNDS_H_
