#include "bucketing/sort_bucketizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "storage/external_sort.h"
#include "storage/paged_file.h"
#include "storage/tuple_stream.h"

namespace optrules::bucketing {

namespace {

/// Picks the equi-depth ranks out of a sorted sequence streamed value by
/// value.
class RankPicker {
 public:
  RankPicker(int64_t n, int num_buckets) : n_(n) {
    for (int i = 1; i < num_buckets && n > 0; ++i) {
      // The i*(n/M)-th smallest value (1-based) is stream index k-1,
      // matching BucketBoundaries::FromSortedValues.
      ranks_.push_back(std::max<int64_t>(
          0, std::min<int64_t>(n, i * n / num_buckets) - 1));
    }
  }

  void Accept(int64_t index, double value) {
    while (next_ < ranks_.size() &&
           ranks_[next_] == index) {
      cuts_.push_back(value);
      ++next_;
    }
  }

  std::vector<double> TakeCuts() { return std::move(cuts_); }

 private:
  int64_t n_;
  std::vector<int64_t> ranks_;
  size_t next_ = 0;
  std::vector<double> cuts_;
};

/// RecordSource that packs tuples streamed from any PagedFile (columnar v2
/// pages included) into the fixed-width v1 row layout the external sort
/// shuffles: numeric doubles back to back, then boolean bytes.
class TupleRecordSource final : public storage::RecordSource {
 public:
  TupleRecordSource(storage::FileTupleStream* stream, int num_numeric,
                    int num_boolean)
      : stream_(stream),
        num_numeric_(num_numeric),
        num_boolean_(num_boolean),
        row_bytes_(sizeof(double) * static_cast<size_t>(num_numeric) +
                   static_cast<size_t>(num_boolean)) {}

  size_t ReadRecords(uint8_t* out, size_t max_records) override {
    size_t produced = 0;
    storage::TupleView tuple;
    while (produced < max_records && stream_->Next(&tuple)) {
      uint8_t* row = out + produced * row_bytes_;
      std::memcpy(row, tuple.numeric,
                  sizeof(double) * static_cast<size_t>(num_numeric_));
      std::memcpy(row + sizeof(double) * static_cast<size_t>(num_numeric_),
                  tuple.booleans, static_cast<size_t>(num_boolean_));
      ++produced;
    }
    return produced;
  }

 private:
  storage::FileTupleStream* stream_;
  int num_numeric_;
  int num_boolean_;
  size_t row_bytes_;
};

/// The 24-byte v1 PagedFile header for a sorted output of known shape --
/// row count included up front, since sorting never changes it.
std::vector<uint8_t> V1Header(int num_numeric, int num_boolean,
                              int64_t num_rows) {
  std::vector<uint8_t> header(storage::kPagedFileHeaderBytes, 0);
  const auto put_u32 = [&header](size_t offset, uint32_t v) {
    std::memcpy(header.data() + offset, &v, sizeof(v));
  };
  put_u32(0, 0x4f505452);  // "OPTR"
  put_u32(4, static_cast<uint32_t>(storage::PagedFileFormat::kRowMajorV1));
  put_u32(8, static_cast<uint32_t>(num_numeric));
  put_u32(12, static_cast<uint32_t>(num_boolean));
  const auto rows = static_cast<uint64_t>(num_rows);
  std::memcpy(header.data() + 16, &rows, sizeof(rows));
  return header;
}

}  // namespace

BucketBoundaries ExactEquiDepthBoundaries(std::span<const double> values,
                                          int num_buckets) {
  OPTRULES_CHECK(num_buckets >= 1);
  std::vector<double> sorted;
  sorted.reserve(values.size());
  // NaN values belong to no bucket (the repo-wide NaN policy) and violate
  // std::sort's strict weak ordering; plan the depths over the finite
  // values only.
  for (const double value : values) {
    if (!std::isnan(value)) sorted.push_back(value);
  }
  std::sort(sorted.begin(), sorted.end());
  return BucketBoundaries::FromSortedValues(sorted, num_buckets);
}

Result<BucketBoundaries> NaiveSortBoundariesFromFile(
    const std::string& table_path, int numeric_attr, int num_buckets,
    const std::string& sorted_path, size_t memory_budget_bytes,
    const std::string& temp_dir) {
  Result<storage::PagedFileInfo> info_or =
      storage::ReadPagedFileInfo(table_path);
  if (!info_or.ok()) return info_or.status();
  const storage::PagedFileInfo& info = info_or.value();
  if (numeric_attr < 0 || numeric_attr >= info.num_numeric) {
    return Status::InvalidArgument("numeric_attr out of range");
  }

  // ExternalSort shuffles fixed-width whole-row records. A v1 input is
  // already that shape and sorts file-to-file; a columnar v2 table is
  // streamed page by page straight into the run generator, each tuple
  // packed into the v1 row layout on the fly -- no row-major temporary
  // rewrite. Either way the sorted output is a valid v1 PagedFile.
  storage::ExternalSortOptions sort_options;
  sort_options.record_bytes = info.row_bytes;
  sort_options.key_offset =
      static_cast<size_t>(numeric_attr) * sizeof(double);
  sort_options.memory_budget_bytes = memory_budget_bytes;
  sort_options.temp_dir = temp_dir;
  Result<storage::ExternalSortStats> sort_result =
      storage::ExternalSortStats{};
  if (info.format_version == 1) {
    sort_options.header_bytes = storage::kPagedFileHeaderBytes;
    sort_result = storage::ExternalSort(table_path, sorted_path,
                                        sort_options);
  } else {
    Result<std::unique_ptr<storage::FileTupleStream>> input_or =
        storage::FileTupleStream::Open(table_path);
    if (!input_or.ok()) return input_or.status();
    TupleRecordSource source(input_or.value().get(), info.num_numeric,
                             info.num_boolean);
    const std::vector<uint8_t> header =
        V1Header(info.num_numeric, info.num_boolean, info.num_rows);
    sort_result = storage::ExternalSortRecords(source, sorted_path, header,
                                               sort_options);
  }
  if (!sort_result.ok()) return sort_result.status();

  Result<std::unique_ptr<storage::FileTupleStream>> stream_or =
      storage::FileTupleStream::Open(sorted_path);
  if (!stream_or.ok()) return stream_or.status();
  storage::FileTupleStream& stream = *stream_or.value();
  RankPicker picker(info.num_rows, num_buckets);
  storage::TupleView view;
  int64_t index = 0;
  while (stream.Next(&view)) {
    picker.Accept(index, view.numeric[numeric_attr]);
    ++index;
  }
  return BucketBoundaries::FromCutPoints(picker.TakeCuts());
}

Result<BucketBoundaries> VerticalSplitSortBoundariesFromFile(
    const std::string& table_path, int numeric_attr, int num_buckets,
    const std::string& split_path, size_t memory_budget_bytes,
    const std::string& temp_dir) {
  Result<storage::PagedFileInfo> info_or =
      storage::ReadPagedFileInfo(table_path);
  if (!info_or.ok()) return info_or.status();
  const storage::PagedFileInfo& info = info_or.value();
  if (numeric_attr < 0 || numeric_attr >= info.num_numeric) {
    return Status::InvalidArgument("numeric_attr out of range");
  }

  // Phase 1: vertical split -- project (value, tuple id) records.
  struct SplitRecord {
    double value;
    int64_t tid;
  };
  static_assert(sizeof(SplitRecord) == 16);
  {
    Result<std::unique_ptr<storage::FileTupleStream>> stream_or =
        storage::FileTupleStream::Open(table_path);
    if (!stream_or.ok()) return stream_or.status();
    storage::FileTupleStream& stream = *stream_or.value();
    std::FILE* split = std::fopen(split_path.c_str(), "wb");
    if (split == nullptr) {
      return Status::IoError("cannot create: " + split_path);
    }
    std::vector<SplitRecord> buffer;
    buffer.reserve(8192);
    storage::TupleView view;
    int64_t tid = 0;
    bool write_failed = false;
    while (stream.Next(&view)) {
      buffer.push_back({view.numeric[numeric_attr], tid++});
      if (buffer.size() == buffer.capacity()) {
        if (std::fwrite(buffer.data(), sizeof(SplitRecord), buffer.size(),
                        split) != buffer.size()) {
          write_failed = true;
          break;
        }
        buffer.clear();
      }
    }
    if (!write_failed && !buffer.empty() &&
        std::fwrite(buffer.data(), sizeof(SplitRecord), buffer.size(),
                    split) != buffer.size()) {
      write_failed = true;
    }
    if (std::fclose(split) != 0 || write_failed) {
      return Status::IoError("split write failed: " + split_path);
    }
  }

  // Phase 2: external sort of the narrow file by value.
  storage::ExternalSortOptions sort_options;
  sort_options.record_bytes = sizeof(SplitRecord);
  sort_options.key_offset = 0;
  sort_options.header_bytes = 0;
  sort_options.memory_budget_bytes = memory_budget_bytes;
  sort_options.temp_dir = temp_dir;
  const std::string sorted_split = split_path + ".sorted";
  Result<storage::ExternalSortStats> sort_result =
      storage::ExternalSort(split_path, sorted_split, sort_options);
  if (!sort_result.ok()) return sort_result.status();

  // Phase 3: pick equi-depth ranks from the sorted projection.
  std::FILE* sorted = std::fopen(sorted_split.c_str(), "rb");
  if (sorted == nullptr) {
    return Status::IoError("cannot open: " + sorted_split);
  }
  RankPicker picker(info.num_rows, num_buckets);
  std::vector<SplitRecord> buffer(8192);
  int64_t index = 0;
  size_t got;
  while ((got = std::fread(buffer.data(), sizeof(SplitRecord), buffer.size(),
                           sorted)) > 0) {
    for (size_t i = 0; i < got; ++i) {
      picker.Accept(index, buffer[i].value);
      ++index;
    }
  }
  std::fclose(sorted);
  std::remove(sorted_split.c_str());
  return BucketBoundaries::FromCutPoints(picker.TakeCuts());
}

}  // namespace optrules::bucketing
