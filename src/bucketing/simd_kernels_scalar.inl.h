// Scalar cores shared by every kernel arm (internal header).
//
// The SIMD translation units handle remainder tails and unsettled lanes
// with these exact functions, so tail rows and fallback lanes are
// bit-identical to the scalar reference arm BY CONSTRUCTION, not by
// parallel maintenance of two copies. Include only from simd_kernels*.cc.

#ifndef OPTRULES_BUCKETING_SIMD_KERNELS_SCALAR_INL_H_
#define OPTRULES_BUCKETING_SIMD_KERNELS_SCALAR_INL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace optrules::bucketing::simd::internal {

/// Branchless lower_bound over sorted cuts: the number of cuts < x. `x`
/// must not be NaN. Identical to the pre-SIMD
/// BucketBoundaries::LocateBranchless loop (conditional-move advance).
inline int32_t ScalarLowerBound(const double* cuts, size_t num_cuts,
                                double x) {
  if (num_cuts == 0) return 0;
  const double* base = cuts;
  size_t n = num_cuts;
  while (n > 1) {
    const size_t half = n / 2;
    base += static_cast<size_t>(base[half - 1] < x) * half;
    n -= half;
  }
  return static_cast<int32_t>(base - cuts) + static_cast<int32_t>(*base < x);
}

/// Arithmetic lower_bound over affine cuts with the bounded neighbor
/// fix-up walk; `x` must not be NaN. Identical to the pre-SIMD
/// BucketBoundaries::LocateEquiWidth.
inline int32_t ScalarEquiWidthLowerBound(const double* cuts, size_t num_cuts,
                                         double first_cut, double inv_step,
                                         double x) {
  const auto n = static_cast<int64_t>(num_cuts);
  double guess = std::ceil((x - first_cut) * inv_step);
  // Clamp in double first: the raw guess can be +/-inf for infinite x,
  // which must not reach the integer cast.
  guess = std::min(guess, static_cast<double>(n));
  guess = std::max(guess, 0.0);
  int64_t index = static_cast<int64_t>(guess);
  while (index < n && cuts[static_cast<size_t>(index)] < x) ++index;
  while (index > 0 && cuts[static_cast<size_t>(index - 1)] >= x) --index;
  return static_cast<int32_t>(index);
}

/// One full scalar locate step (NaN policy applied): returns the bucket
/// index or -1, used for SIMD tail rows.
inline int32_t ScalarLocateSearchOne(const double* cuts, size_t num_cuts,
                                     double x) {
  if (std::isnan(x)) return -1;
  return ScalarLowerBound(cuts, num_cuts, x);
}

inline int32_t ScalarLocateEquiWidthOne(const double* cuts, size_t num_cuts,
                                        double first_cut, double inv_step,
                                        double x) {
  if (std::isnan(x)) return -1;
  return ScalarEquiWidthLowerBound(cuts, num_cuts, first_cut, inv_step, x);
}

}  // namespace optrules::bucketing::simd::internal

#endif  // OPTRULES_BUCKETING_SIMD_KERNELS_SCALAR_INL_H_
