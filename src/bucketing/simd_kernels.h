// Runtime-dispatched SIMD counting kernels.
//
// The counting scan's per-row work -- point location, condition-mask
// conjunction, and the 2-D cell fold -- is data-parallel with no
// cross-row dependencies, so it vectorizes. This header is the single
// dispatch point: one Kernels table per instruction-set arm (scalar
// reference, AVX2, AVX-512), resolved once at startup via cpuid, with the
// branchless scalar kernels as the bit-identical fallback on every
// machine. OPTRULES_FORCE_SCALAR=1 (read once at startup) pins the
// reference arm; SetForceScalarForTest flips the same pin in-process so
// differential tests can run both arms on identical inputs.
//
// Bit-identity contract: every kernel of every arm must produce EXACTLY
// the bytes the scalar reference produces -- locate results are the unique
// std::lower_bound index (NaN lanes -> kNoBucket, lane for lane), mask and
// fold results are pure integer ops. The SIMD locate arms guarantee this
// by validating each lane against the lower_bound invariant and falling
// back to the scalar walk for any lane the bounded vector fix-up did not
// settle.

#ifndef OPTRULES_BUCKETING_SIMD_KERNELS_H_
#define OPTRULES_BUCKETING_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace optrules::bucketing::simd {

/// One instruction-set arm of the counting kernels. All function pointers
/// are always non-null within a registered table.
struct Kernels {
  /// Human-readable arm name ("scalar", "avx2", "avx512").
  const char* name;

  /// General sorted-cuts point location: out[i] = lower_bound(cuts, x) for
  /// every value, except NaN values which map to -1 (kNoBucket). Returns
  /// the number of -1 entries written (the NaN lane count).
  int64_t (*locate_search)(const double* values, size_t n,
                           const double* cuts, size_t num_cuts,
                           int32_t* out);

  /// Equi-width arithmetic point location over affine cuts
  /// (cuts[i] ~= first_cut + i / inv_step): same contract as locate_search
  /// but O(1) per value. Callers must only use it on layouts that passed
  /// the BucketBoundaries drift audit.
  int64_t (*locate_equi_width)(const double* values, size_t n,
                               const double* cuts, size_t num_cuts,
                               double first_cut, double inv_step,
                               int32_t* out);

  /// In-place byte conjunction: mask[i] &= condition[i].
  void (*mask_and)(uint8_t* mask, const uint8_t* condition, size_t n);

  /// 2-D cell fold: cells[i] = y[i] * nx + x[i], or -1 when either axis
  /// index is -1 (the NaN policy applied per axis pair).
  void (*fold_cells)(const int32_t* x, const int32_t* y, size_t n,
                     int32_t nx, int32_t* cells);
};

/// The always-available scalar reference arm.
const Kernels& ScalarKernels();

/// AVX2 / AVX-512 arms, or nullptr when the translation unit was compiled
/// without the matching -m flags. Runtime cpuid gating happens in
/// Active()/AvailableKernels(), not here.
const Kernels* Avx2KernelsOrNull();
const Kernels* Avx512KernelsOrNull();

/// The arm the counting scan should use right now: the widest arm this
/// CPU supports, or the scalar reference when force-scalar is pinned.
const Kernels& Active();

/// Every arm usable on this machine (scalar first), independent of the
/// force-scalar pin -- the differential tests iterate this to prove the
/// arms bit-identical on shared inputs.
std::span<const Kernels* const> AvailableKernels();

/// True when OPTRULES_FORCE_SCALAR=1 was set at startup or a test pinned
/// the reference path via SetForceScalarForTest.
bool ForceScalar();

/// Test hook: pins (or unpins) the scalar reference arm in-process, so one
/// test binary can run both dispatch arms on the same inputs.
void SetForceScalarForTest(bool force);

/// Branchless mask compaction: writes the indices of the nonzero bytes of
/// `mask` to `out` (ascending) and returns how many were written. `out`
/// must have room for n entries. This is what lets conditional channels
/// iterate only their satisfying rows with no per-row branch at all.
size_t CompactMaskIndices(const uint8_t* mask, size_t n, int32_t* out);

}  // namespace optrules::bucketing::simd

#endif  // OPTRULES_BUCKETING_SIMD_KERNELS_H_
