// Sort-based exact equi-depth bucketing: the two baselines of Figure 9.
//
// "Naive Sort" copies the whole column and quick-sorts it per attribute;
// "Vertical Split Sort" first projects the table onto a narrow
// (value, tuple-id) temporary before sorting, reducing the sorted volume.
// For disk-resident tables both are driven through storage::ExternalSort.

#ifndef OPTRULES_BUCKETING_SORT_BUCKETIZER_H_
#define OPTRULES_BUCKETING_SORT_BUCKETIZER_H_

#include <span>
#include <string>

#include "bucketing/boundaries.h"
#include "common/status.h"

namespace optrules::bucketing {

/// Exact equi-depth boundaries by sorting a copy of the column ("Naive
/// Sort" when applied per attribute to the full table).
BucketBoundaries ExactEquiDepthBoundaries(std::span<const double> values,
                                          int num_buckets);

/// Disk path of "Naive Sort": externally sorts the PagedFile at
/// `table_path` by numeric attribute `numeric_attr` into `sorted_path`,
/// then derives exact equi-depth boundaries from the sorted order with a
/// single scan. `memory_budget_bytes` bounds the sort memory.
Result<BucketBoundaries> NaiveSortBoundariesFromFile(
    const std::string& table_path, int numeric_attr, int num_buckets,
    const std::string& sorted_path, size_t memory_budget_bytes,
    const std::string& temp_dir);

/// Disk path of "Vertical Split Sort": projects (value) records of
/// attribute `numeric_attr` into a narrow temporary file at `split_path`,
/// externally sorts that, and derives exact boundaries.
Result<BucketBoundaries> VerticalSplitSortBoundariesFromFile(
    const std::string& table_path, int numeric_attr, int num_buckets,
    const std::string& split_path, size_t memory_budget_bytes,
    const std::string& temp_dir);

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_SORT_BUCKETIZER_H_
