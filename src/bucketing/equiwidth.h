// Equi-width bucketing baseline.
//
// The paper's footnote 3 argues equi-depth bucketing minimizes the
// worst-case approximation error among bucketings of a fixed size M. The
// ablation benchmark compares mined-rule quality under equi-width vs
// equi-depth boundaries on skewed data.

#ifndef OPTRULES_BUCKETING_EQUIWIDTH_H_
#define OPTRULES_BUCKETING_EQUIWIDTH_H_

#include <span>

#include "bucketing/boundaries.h"

namespace optrules::bucketing {

/// Evenly spaced cut points between the column min and max.
BucketBoundaries EquiWidthBoundaries(std::span<const double> values,
                                     int num_buckets);

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_EQUIWIDTH_H_
