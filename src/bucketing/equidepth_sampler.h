// Algorithm 3.1: almost equi-depth buckets via random sampling.
//
// 1. Draw an S-sized random sample (S = sample_per_bucket * M; the paper's
//    Figure 1 analysis picks 40 per bucket).
// 2. Sort the sample.
// 3. Take every (S/M)-th sample value as a cut point.
// The subsequent counting scan (step 4) lives in bucketing/counting.h.
//
// Substitution note (documented in DESIGN.md): for disk-resident streams we
// draw the sample by single-pass reservoir sampling instead of
// with-replacement random access, which avoids random I/O; the resulting
// without-replacement sample concentrates at least as tightly around the
// quantiles as the with-replacement sample the paper analyzes.

#ifndef OPTRULES_BUCKETING_EQUIDEPTH_SAMPLER_H_
#define OPTRULES_BUCKETING_EQUIDEPTH_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bucketing/boundaries.h"
#include "common/rng.h"
#include "storage/tuple_stream.h"

namespace optrules::bucketing {

/// Sampling parameters for Algorithm 3.1.
struct SamplerOptions {
  int num_buckets = 1000;
  /// S/M: samples drawn per bucket. The paper uses 40 (Figure 1: the
  /// probability of a 50% depth deviation drops below 0.3 there).
  int64_t sample_per_bucket = 40;
};

/// Builds approximate equi-depth boundaries from an in-memory column using
/// with-replacement sampling, exactly as analyzed in Section 3.2.
BucketBoundaries BuildEquiDepthBoundaries(std::span<const double> values,
                                          const SamplerOptions& options,
                                          Rng& rng);

/// Builds approximate equi-depth boundaries for `numeric_attr` from one
/// sequential pass over `stream` (reservoir sample). Leaves the stream
/// positioned at the end; callers Reset() before the counting pass.
BucketBoundaries BuildEquiDepthBoundariesFromStream(
    storage::TupleStream& stream, int numeric_attr,
    const SamplerOptions& options, Rng& rng);

/// Bounded uniform sample maintained by Vitter's algorithm R: the
/// single-pass building block behind the stream sampler above and the
/// MiningEngine's all-attributes-at-once planning scan.
class ReservoirSampler {
 public:
  /// `capacity` is the sample size S (> 0).
  explicit ReservoirSampler(int64_t capacity);

  /// Offers one value; with `seen` values offered so far, each is
  /// retained with probability S/seen.
  void Add(double value, Rng& rng);

  bool empty() const { return sample_.empty(); }

  /// Sorts the sample and derives `num_buckets` almost equi-depth
  /// boundaries (Algorithm 3.1 steps 2-3); a never-fed sampler yields the
  /// single all-covering bucket. Consumes the sample.
  BucketBoundaries TakeBoundaries(int num_buckets);

 private:
  int64_t capacity_;
  int64_t seen_ = 0;
  std::vector<double> sample_;
};

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_EQUIDEPTH_SAMPLER_H_
