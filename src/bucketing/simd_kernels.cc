#include "bucketing/simd_kernels.h"

#include <atomic>
#include <cstdlib>
#include <vector>

#include "bucketing/simd_kernels_scalar.inl.h"
#include "common/env.h"

namespace optrules::bucketing::simd {

namespace {

using internal::ScalarLocateEquiWidthOne;
using internal::ScalarLocateSearchOne;

int64_t LocateSearchScalar(const double* values, size_t n, const double* cuts,
                           size_t num_cuts, int32_t* out) {
  int64_t no_bucket = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t bucket = ScalarLocateSearchOne(cuts, num_cuts, values[i]);
    out[i] = bucket;
    no_bucket += static_cast<int64_t>(bucket < 0);
  }
  return no_bucket;
}

int64_t LocateEquiWidthScalar(const double* values, size_t n,
                              const double* cuts, size_t num_cuts,
                              double first_cut, double inv_step,
                              int32_t* out) {
  int64_t no_bucket = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t bucket = ScalarLocateEquiWidthOne(cuts, num_cuts, first_cut,
                                                    inv_step, values[i]);
    out[i] = bucket;
    no_bucket += static_cast<int64_t>(bucket < 0);
  }
  return no_bucket;
}

void MaskAndScalar(uint8_t* mask, const uint8_t* condition, size_t n) {
  for (size_t i = 0; i < n; ++i) mask[i] &= condition[i];
}

void FoldCellsScalar(const int32_t* x, const int32_t* y, size_t n,
                     int32_t nx, int32_t* cells) {
  for (size_t i = 0; i < n; ++i) {
    // Axis indices are either -1 (NaN) or non-negative, so a negative
    // bitwise-or means "either axis missed".
    cells[i] = (x[i] | y[i]) < 0 ? -1 : y[i] * nx + x[i];
  }
}

const Kernels kScalar = {"scalar", LocateSearchScalar, LocateEquiWidthScalar,
                         MaskAndScalar, FoldCellsScalar};

bool ReadForceScalarEnv() {
  // Strict 0/1 flag: "1abc" used to silently pin scalar; now it warns and
  // leaves runtime dispatch on.
  return env::ReadEnvFlag("OPTRULES_FORCE_SCALAR", false);
}

std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag{ReadForceScalarEnv()};
  return flag;
}

/// cpuid-gated arm list, widest first (resolved once).
const std::vector<const Kernels*>& RankedSimdArms() {
  static const std::vector<const Kernels*> arms = [] {
    std::vector<const Kernels*> ranked;
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      if (const Kernels* k = Avx512KernelsOrNull()) ranked.push_back(k);
    }
    if (__builtin_cpu_supports("avx2")) {
      if (const Kernels* k = Avx2KernelsOrNull()) ranked.push_back(k);
    }
#endif
    return ranked;
  }();
  return arms;
}

}  // namespace

const Kernels& ScalarKernels() { return kScalar; }

const Kernels& Active() {
  if (ForceScalar()) return kScalar;
  const std::vector<const Kernels*>& arms = RankedSimdArms();
  return arms.empty() ? kScalar : *arms.front();
}

std::span<const Kernels* const> AvailableKernels() {
  static const std::vector<const Kernels*> all = [] {
    std::vector<const Kernels*> arms = {&kScalar};
    // Narrowest first after scalar, so test traces ramp up in lane width.
    const std::vector<const Kernels*>& ranked = RankedSimdArms();
    arms.insert(arms.end(), ranked.rbegin(), ranked.rend());
    return arms;
  }();
  return all;
}

bool ForceScalar() {
  return ForceScalarFlag().load(std::memory_order_relaxed);
}

void SetForceScalarForTest(bool force) {
  ForceScalarFlag().store(force, std::memory_order_relaxed);
}

size_t CompactMaskIndices(const uint8_t* mask, size_t n, int32_t* out) {
  // Unconditional store + masked advance: no data-dependent branch, so a
  // 50/50 condition costs no mispredicts (the guarded loop it replaces
  // paid one per flip).
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    out[count] = static_cast<int32_t>(i);
    count += static_cast<size_t>(mask[i] != 0);
  }
  return count;
}

}  // namespace optrules::bucketing::simd
