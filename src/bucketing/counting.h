// Step 4 of Algorithm 3.1: one sequential pass assigning each tuple to its
// bucket and accumulating, per bucket, the tuple count u_i and per Boolean
// target the hit count v_i. Also tracks the observed min/max value per
// bucket so mined ranges can be reported in attribute units.

#ifndef OPTRULES_BUCKETING_COUNTING_H_
#define OPTRULES_BUCKETING_COUNTING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bucketing/boundaries.h"
#include "common/status.h"
#include "storage/columnar_batch.h"
#include "storage/tuple_stream.h"

namespace optrules::bucketing {

/// Per-bucket statistics for one numeric attribute and a set of Boolean
/// targets.
struct BucketCounts {
  /// u[i]: number of tuples in bucket i.
  std::vector<int64_t> u;
  /// v[t][i]: number of tuples in bucket i meeting Boolean target t.
  std::vector<std::vector<int64_t>> v;
  /// Observed minimum / maximum attribute value in each bucket (NaN when
  /// the bucket is empty, but empty buckets are usually compacted away).
  std::vector<double> min_value;
  std::vector<double> max_value;
  /// Total number of tuples scanned (the support denominator N).
  int64_t total_tuples = 0;

  int num_buckets() const { return static_cast<int>(u.size()); }
  int num_targets() const { return static_cast<int>(v.size()); }
};

/// Counts one in-memory column against one or more Boolean target columns.
/// Every target span must have the same length as `values`.
BucketCounts CountBuckets(std::span<const double> values,
                          std::span<const std::vector<uint8_t>* const> targets,
                          const BucketBoundaries& boundaries);

/// Convenience overload for a single target column.
BucketCounts CountBuckets(std::span<const double> values,
                          const std::vector<uint8_t>& target,
                          const BucketBoundaries& boundaries);

/// Counts only the row range [begin, end) of the full columns. Building
/// block for the parallel counter (Algorithm 3.2); total_tuples is set to
/// end - begin.
BucketCounts CountBucketsSlice(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, size_t begin, size_t end);

/// Generalized-rule counting (Section 4.3): u_i counts tuples meeting the
/// presumptive Boolean condition C1, v_i those meeting C1 and C2.
/// `condition1` / `condition2` are 0/1 masks over rows.
BucketCounts CountBucketsConditional(std::span<const double> values,
                                     std::span<const uint8_t> condition1,
                                     std::span<const uint8_t> condition2,
                                     const BucketBoundaries& boundaries);

/// Streaming variant: counts numeric attribute `numeric_attr` against all
/// Boolean attributes of the stream in one scan (the Figure 9 workload).
/// The stream must be positioned at the start.
BucketCounts CountBucketsFromStream(storage::TupleStream& stream,
                                    int numeric_attr,
                                    const BucketBoundaries& boundaries);

/// Removes empty buckets in place (the rule algorithms require u_i >= 1).
/// Bucket order and all parallel arrays are preserved.
void CompactEmptyBuckets(BucketCounts* counts);

/// Smallest finite min_value over buckets [s, t] of `counts`; -infinity
/// when no bucket in the range observed a finite value. Rule emission uses
/// these instead of raw min_value/max_value so that buckets whose only
/// values were NaN (which survive compaction because u_i > 0) can never
/// propagate NaN endpoints into reported rules.
double RangeMinValue(const BucketCounts& counts, int s, int t);
/// Largest finite max_value over buckets [s, t]; +infinity when none.
double RangeMaxValue(const BucketCounts& counts, int s, int t);

/// Per-bucket statistics for the Section 5 average operator: tuple counts
/// of attribute A's buckets plus the per-bucket sum of target attribute B.
struct BucketSums {
  std::vector<int64_t> u;      ///< tuples per bucket
  std::vector<double> sum;     ///< sum of the target attribute per bucket
  std::vector<double> min_value;
  std::vector<double> max_value;
  int64_t total_tuples = 0;

  int num_buckets() const { return static_cast<int>(u.size()); }
};

/// One bucketed channel of a MultiCountPlan: a numeric column counted into
/// its bucket boundaries, optionally restricted to rows satisfying a
/// Boolean conjunction (generalized rules, Section 4.3) and optionally
/// accumulating per-bucket sums of other numeric columns (the Section 5
/// average operator). The plain all-pairs scan uses one unconditional
/// channel per numeric attribute.
struct CountChannel {
  /// Numeric column index of the batch this channel buckets.
  int column = 0;
  /// Bucket boundaries of the channel; must outlive the plan.
  const BucketBoundaries* boundaries = nullptr;
  /// Index into MultiCountSpec::conditions, or kUnconditional. Conditional
  /// channels count u/v/min/max only over rows satisfying the conjunction;
  /// total_tuples still counts every scanned row (support of a generalized
  /// rule is measured against all tuples, Definition 2.2).
  int condition = kUnconditional;
  /// When true the channel accumulates one v-row per Boolean target.
  bool count_targets = true;
  /// Numeric column indices whose per-bucket sums this channel tracks.
  std::vector<int> sum_targets;

  static constexpr int kUnconditional = -1;
};

/// One two-dimensional grid channel of a MultiCountPlan (the Section 1.4
/// region-rule extension): a pair of bucketed numeric columns scattered
/// into an Nx-by-Ny cell grid, accumulating per-cell tuple counts u and
/// one per-cell hit plane v per Boolean target. Both axes join the plan's
/// shared locate-group cache, so a grid channel whose columns are already
/// bucketed by other channels costs zero extra Locate passes.
struct GridChannel {
  int x_column = 0;
  const BucketBoundaries* x_boundaries = nullptr;  ///< Nx = num_buckets()
  int y_column = 0;
  const BucketBoundaries* y_boundaries = nullptr;  ///< Ny = num_buckets()
};

/// Per-cell statistics of one grid channel, row-major by y (cell (x, y) at
/// index y*nx + x) -- the flat-array twin of region::GridCounts. A row
/// whose x or y value is NaN lands in no cell but still counts toward
/// total_tuples (the repo-wide NaN policy, applied per axis pair).
struct GridBucketCounts {
  int nx = 0;
  int ny = 0;
  /// u[y*nx + x]: tuples in cell (x, y).
  std::vector<int64_t> u;
  /// v[t][y*nx + x]: tuples in cell (x, y) meeting Boolean target t.
  std::vector<std::vector<int64_t>> v;
  /// All tuples scanned (the support denominator N), NaN rows included.
  int64_t total_tuples = 0;

  int num_cells() const { return static_cast<int>(u.size()); }
  int num_targets() const { return static_cast<int>(v.size()); }
};

/// Per-phase wall-clock breakdown of a counting scan, accumulated by a
/// MultiCountPlan when a sink is attached via set_phase_times(). The three
/// phases partition the plan's own CPU work: point location (the shared
/// LocateBatch passes), condition-mask evaluation + compaction, and the
/// u/v/min-max/sum scatter passes. I/O wait is the caller's to measure
/// (the bench times its reader separately). Accumulation is not
/// synchronized -- attach a sink only to serially-executed plans.
struct ScanPhaseTimes {
  double locate_seconds = 0.0;
  double mask_seconds = 0.0;
  double scatter_seconds = 0.0;
};

/// Full shape of a multi-count scan: the 1-D channels, the 2-D grid
/// channels, the Boolean-conjunction condition table they reference, and
/// the number of Boolean targets every counting channel accumulates.
/// Sharded partial plans are built from the same spec so Merge() is exact
/// by construction.
struct MultiCountSpec {
  std::vector<CountChannel> channels;
  std::vector<GridChannel> grid_channels;
  /// Each condition is a conjunction of Boolean column indices (an empty
  /// conjunction is satisfied by every row).
  std::vector<std::vector<int>> conditions;
  /// Boolean targets per counting channel (the batch's Boolean arity).
  int num_targets = 0;
};

/// Counts EVERY channel of a spec -- plain, conditional, summing, and
/// two-dimensional grid -- in one shared scan: the columnar core of
/// Algorithm 3.1 step 4 generalized to the paper's "all combinations of
/// hundreds of numeric and Boolean attributes" workload, Section 4.3
/// generalized rules, the Section 5 average operator, and the Section 1.4
/// region grids. One plan instance accumulates a BucketCounts per channel
/// (each with one v-row per target) plus the channel's sum arrays and a
/// GridBucketCounts per grid channel; partial plans from sharded scans
/// Merge() exactly, so parallel execution is bit-identical to serial.
class MultiCountPlan {
 public:
  /// Plain all-pairs plan: one unconditional channel per numeric attribute
  /// (`boundaries[a]` describes attribute a's buckets; pointers must
  /// outlive the plan), each counting every Boolean target.
  MultiCountPlan(std::vector<const BucketBoundaries*> boundaries,
                 int num_targets);

  /// General plan over an explicit channel spec.
  explicit MultiCountPlan(MultiCountSpec spec);

  /// Accumulates one batch into every channel.
  void Accumulate(const storage::ColumnarBatch& batch);

  /// Per-batch shared preparation: computes the per-row mask of every
  /// condition AND locates every distinct (column, boundaries) pair ONCE
  /// into the shared bucket-index cache that all of its channels consume
  /// (C conditional channels over one generalized boundary set used to
  /// re-run Locate C times over identical boundaries). Must be called once
  /// per batch BEFORE any direct AccumulateChannel calls for it
  /// (Accumulate does it automatically); channel-parallel executors call
  /// it from the reader thread so the concurrent channels only read the
  /// masks and the cache.
  void PrepareBatch(const storage::ColumnarBatch& batch);

  /// Accumulates only channel `channel` of the batch (building block for
  /// channel-parallel execution; disjoint channels are safe to run
  /// concurrently on one plan once PrepareBatch ran for the batch).
  void AccumulateChannel(const storage::ColumnarBatch& batch, int channel);

  /// Accumulates only grid channel `grid_channel` of the batch; same
  /// concurrency contract as AccumulateChannel (grid channels own disjoint
  /// state and only read the shared bucket-index cache).
  void AccumulateGridChannel(const storage::ColumnarBatch& batch,
                             int grid_channel);

  /// Adds `other`'s counts into this plan (other must have identical
  /// shape). Merge order is the caller's contract for determinism.
  void Merge(const MultiCountPlan& other);

  /// Accounts `rows` rows that the reader skipped because zone maps or
  /// partition stats proved them dead under DerivePruneSpec(spec()): such
  /// rows contribute ONLY to the support denominator (every channel's and
  /// grid's total_tuples), never to u/v/min-max/sums, so adding them here
  /// keeps pruned scans bit-identical to unpruned ones. Travels through
  /// AppendPartialState/Merge like any other count.
  void AddSkippedRows(int64_t rows);

  int num_channels() const { return static_cast<int>(counts_.size()); }
  int num_grid_channels() const { return static_cast<int>(grids_.size()); }
  int num_targets() const { return spec_.num_targets; }
  /// Rows scanned so far (every channel sees the same rows).
  int64_t total_tuples() const {
    return counts_.empty() ? 0 : counts_[0].total_tuples;
  }

  /// Per-channel counts accumulated so far. For conditional channels u/v
  /// cover only the satisfying rows (total_tuples covers all rows).
  const BucketCounts& counts(int channel) const {
    return counts_[static_cast<size_t>(channel)];
  }
  /// Moves channel `channel`'s counts out of the plan.
  BucketCounts TakeCounts(int channel);

  /// Per-cell counts of grid channel `grid_channel` accumulated so far.
  const GridBucketCounts& grid_counts(int grid_channel) const {
    return grids_[static_cast<size_t>(grid_channel)];
  }
  /// Moves grid channel `grid_channel`'s counts out of the plan.
  GridBucketCounts TakeGridCounts(int grid_channel);

  /// Assembles the Section 5 BucketSums view of channel `channel`'s k-th
  /// sum target (copies u/min/max; the channel keeps its state, so every
  /// sum target of a channel can be extracted).
  BucketSums MakeBucketSums(int channel, int k) const;

  /// Destructive MakeBucketSums: moves the k-th sum array out of the plan,
  /// and once every sum target of the channel has been taken the last take
  /// moves u/min/max too instead of deep-copying them. Extraction loops
  /// (the engine drains every (channel, k) exactly once per scan) stop
  /// reallocating; each (channel, k) may be taken at most once.
  BucketSums TakeBucketSums(int channel, int k);

  /// The spec the plan was built from (shared with sharded partials).
  const MultiCountSpec& spec() const { return spec_; }

  /// Attaches (or detaches, with nullptr) a per-phase timing sink the plan
  /// adds its locate / mask / scatter wall-clock into. Unsynchronized:
  /// only attach when the plan is accumulated serially.
  void set_phase_times(ScanPhaseTimes* times) { phase_times_ = times; }

  /// The currently attached timing sink (nullptr when detached).
  ScanPhaseTimes* phase_times() const { return phase_times_; }

  /// Appends the plan's accumulated state -- per-channel counts, grids,
  /// and the compensated (sum, compensation) pairs, bit-exact -- to `out`
  /// in a stable NATIVE-endian layout. This is the partial-plan payload
  /// of the distributed wire protocol: a worker serializes its partial,
  /// the coordinator loads it into a same-spec plan and Merge()s, so
  /// remote partials merge exactly like in-process ones (doubles travel
  /// as bit patterns; the format assumes one architecture across
  /// processes, and the magic word doubles as an endianness check).
  void AppendPartialState(std::vector<uint8_t>* out) const;

  /// Restores state written by AppendPartialState into this plan,
  /// overwriting its accumulators. The plan must have been built from the
  /// same spec (shape is validated); fails on truncation or mismatch.
  Status LoadPartialState(std::span<const uint8_t> bytes);

 private:
  /// One distinct (column, boundaries) pair shared by >= 1 channels, with
  /// the per-batch bucket-index cache every consumer reads.
  struct LocateGroup {
    int column = 0;
    const BucketBoundaries* boundaries = nullptr;
    std::vector<int32_t> buckets;  ///< written by PrepareBatch only
    /// kNoBucket entries in `buckets` (the batch's NaN rows for this
    /// column). Zero lets the scatter passes drop their per-row guard.
    int64_t no_bucket = 0;
  };

  /// Index of the locate group for (column, boundaries), creating it if
  /// this is the first channel to bucket that pair.
  size_t EnsureLocateGroup(int column, const BucketBoundaries* boundaries);

  MultiCountSpec spec_;
  std::vector<BucketCounts> counts_;
  /// Per-grid-channel cell counts, aligned with spec_.grid_channels.
  std::vector<GridBucketCounts> grids_;
  /// Locate-group indices of each grid channel's two axes.
  std::vector<std::pair<size_t, size_t>> grid_groups_;
  /// sums_[channel][k][bucket]: per-bucket running sum of the channel's
  /// k-th sum target column, with sum_comp_ holding the matching Neumaier
  /// compensation terms. Every accumulation and merge is compensated, so
  /// the extracted sum (running + compensation) is exact to well below one
  /// ulp and, because the row-sharded executor fixes its shard layout
  /// independently of the pool size, bit-identical for any pool.
  std::vector<std::vector<std::vector<double>>> sums_;
  std::vector<std::vector<std::vector<double>>> sum_comp_;
  /// Sum targets already moved out via TakeBucketSums, per channel.
  std::vector<size_t> sums_taken_;
  /// Distinct (column, boundaries) pairs across all channels; each is
  /// located exactly once per batch by PrepareBatch.
  std::vector<LocateGroup> locate_groups_;
  /// channel -> index into locate_groups_.
  std::vector<size_t> channel_group_;
  /// Per-channel masked-index scratch (conditional channels only) reused
  /// across batches; per channel so concurrent AccumulateChannel calls
  /// never share mutable state.
  std::vector<std::vector<int32_t>> scratch_;
  /// Per-grid-channel cell-index scratch (the x/y caches folded to one
  /// flat cell index per row), same concurrency contract as scratch_.
  std::vector<std::vector<int32_t>> grid_scratch_;
  /// Per-condition row masks of the batch being accumulated (written by
  /// PrepareBatch, read-only during channel accumulation).
  std::vector<std::vector<uint8_t>> condition_masks_;
  /// Per-condition ascending row indices of the mask's satisfying rows
  /// (written by PrepareBatch). Conditional channels iterate these lists
  /// instead of testing a ~50/50 mask per row: the overlay path paid one
  /// branch mispredict per mask flip in EVERY scatter pass, the compacted
  /// list costs none while visiting rows in the same ascending order --
  /// so u/v/min-max and the Neumaier sum chains stay bit-identical.
  std::vector<std::vector<int32_t>> condition_rows_;
  /// Optional per-phase timing sink (unsynchronized; serial plans only).
  ScanPhaseTimes* phase_times_ = nullptr;
};

/// Content requirements that make a page/partition skippable for `spec`:
/// one ScanPruneSpec::Unit per 1-D channel (its bucketed column plus its
/// condition's conjunct columns -- a conditional channel accumulates
/// nothing where the conjunction is everywhere-false, an unconditional one
/// nothing where the column is all-NaN) and one per grid channel (both
/// axis columns; a row with either axis NaN lands in no cell). Install the
/// result on the BatchSource before a counting scan and add the readers'
/// pruned_rows() back via MultiCountPlan::AddSkippedRows.
storage::ScanPruneSpec DerivePruneSpec(const MultiCountSpec& spec);

/// Counts buckets of `values` (attribute A) while summing `target`
/// (attribute B) per bucket. Spans must be equal length.
BucketSums CountBucketSums(std::span<const double> values,
                           std::span<const double> target,
                           const BucketBoundaries& boundaries);

/// Removes empty buckets from a BucketSums in place.
void CompactEmptyBuckets(BucketSums* sums);

/// NaN-safe range endpoints over BucketSums (see the BucketCounts
/// overloads above).
double RangeMinValue(const BucketSums& sums, int s, int t);
double RangeMaxValue(const BucketSums& sums, int s, int t);

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_COUNTING_H_
