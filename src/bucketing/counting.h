// Step 4 of Algorithm 3.1: one sequential pass assigning each tuple to its
// bucket and accumulating, per bucket, the tuple count u_i and per Boolean
// target the hit count v_i. Also tracks the observed min/max value per
// bucket so mined ranges can be reported in attribute units.

#ifndef OPTRULES_BUCKETING_COUNTING_H_
#define OPTRULES_BUCKETING_COUNTING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bucketing/boundaries.h"
#include "storage/columnar_batch.h"
#include "storage/tuple_stream.h"

namespace optrules::bucketing {

/// Per-bucket statistics for one numeric attribute and a set of Boolean
/// targets.
struct BucketCounts {
  /// u[i]: number of tuples in bucket i.
  std::vector<int64_t> u;
  /// v[t][i]: number of tuples in bucket i meeting Boolean target t.
  std::vector<std::vector<int64_t>> v;
  /// Observed minimum / maximum attribute value in each bucket (NaN when
  /// the bucket is empty, but empty buckets are usually compacted away).
  std::vector<double> min_value;
  std::vector<double> max_value;
  /// Total number of tuples scanned (the support denominator N).
  int64_t total_tuples = 0;

  int num_buckets() const { return static_cast<int>(u.size()); }
  int num_targets() const { return static_cast<int>(v.size()); }
};

/// Counts one in-memory column against one or more Boolean target columns.
/// Every target span must have the same length as `values`.
BucketCounts CountBuckets(std::span<const double> values,
                          std::span<const std::vector<uint8_t>* const> targets,
                          const BucketBoundaries& boundaries);

/// Convenience overload for a single target column.
BucketCounts CountBuckets(std::span<const double> values,
                          const std::vector<uint8_t>& target,
                          const BucketBoundaries& boundaries);

/// Counts only the row range [begin, end) of the full columns. Building
/// block for the parallel counter (Algorithm 3.2); total_tuples is set to
/// end - begin.
BucketCounts CountBucketsSlice(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, size_t begin, size_t end);

/// Generalized-rule counting (Section 4.3): u_i counts tuples meeting the
/// presumptive Boolean condition C1, v_i those meeting C1 and C2.
/// `condition1` / `condition2` are 0/1 masks over rows.
BucketCounts CountBucketsConditional(std::span<const double> values,
                                     std::span<const uint8_t> condition1,
                                     std::span<const uint8_t> condition2,
                                     const BucketBoundaries& boundaries);

/// Streaming variant: counts numeric attribute `numeric_attr` against all
/// Boolean attributes of the stream in one scan (the Figure 9 workload).
/// The stream must be positioned at the start.
BucketCounts CountBucketsFromStream(storage::TupleStream& stream,
                                    int numeric_attr,
                                    const BucketBoundaries& boundaries);

/// Removes empty buckets in place (the rule algorithms require u_i >= 1).
/// Bucket order and all parallel arrays are preserved.
void CompactEmptyBuckets(BucketCounts* counts);

/// Smallest finite min_value over buckets [s, t] of `counts`; -infinity
/// when no bucket in the range observed a finite value. Rule emission uses
/// these instead of raw min_value/max_value so that buckets whose only
/// values were NaN (which survive compaction because u_i > 0) can never
/// propagate NaN endpoints into reported rules.
double RangeMinValue(const BucketCounts& counts, int s, int t);
/// Largest finite max_value over buckets [s, t]; +infinity when none.
double RangeMaxValue(const BucketCounts& counts, int s, int t);

/// Counts EVERY numeric attribute of a batch stream against EVERY Boolean
/// target in one shared scan: the columnar core of Algorithm 3.1 step 4
/// generalized to the paper's "all combinations of hundreds of numeric and
/// Boolean attributes" workload. One plan instance accumulates a
/// BucketCounts per numeric attribute (each with one v-row per target);
/// partial plans from sharded scans Merge() exactly, so parallel execution
/// is bit-identical to serial.
class MultiCountPlan {
 public:
  /// `boundaries[a]` describes the buckets of numeric attribute a; the
  /// pointers must outlive the plan. Every accumulated batch must have
  /// `boundaries.size()` numeric and `num_targets` Boolean columns.
  MultiCountPlan(std::vector<const BucketBoundaries*> boundaries,
                 int num_targets);

  /// Accumulates one batch into the per-attribute counts.
  void Accumulate(const storage::ColumnarBatch& batch);

  /// Accumulates only numeric attribute `attr` of the batch (building
  /// block for attribute-parallel execution; disjoint attrs are safe to
  /// run concurrently on one plan).
  void AccumulateAttribute(const storage::ColumnarBatch& batch, int attr);

  /// Adds `other`'s counts into this plan (other must have identical
  /// shape). Merge order is the caller's contract for determinism.
  void Merge(const MultiCountPlan& other);

  int num_attributes() const { return static_cast<int>(counts_.size()); }
  int num_targets() const { return num_targets_; }
  /// Rows scanned so far (every attribute sees the same rows).
  int64_t total_tuples() const {
    return counts_.empty() ? 0 : counts_[0].total_tuples;
  }

  /// Per-attribute counts accumulated so far.
  const BucketCounts& counts(int attr) const {
    return counts_[static_cast<size_t>(attr)];
  }
  /// Moves attribute `attr`'s counts out of the plan.
  BucketCounts TakeCounts(int attr);

  /// The per-attribute boundary pointers the plan was built with (shared
  /// with sharded partial plans).
  const std::vector<const BucketBoundaries*>& boundaries() const {
    return boundaries_;
  }

 private:
  std::vector<const BucketBoundaries*> boundaries_;
  int num_targets_;
  std::vector<BucketCounts> counts_;
  /// Per-attribute bucket-index scratch, reused across batches; per
  /// attribute so AccumulateAttribute calls can run concurrently.
  std::vector<std::vector<int32_t>> scratch_;
};

/// Per-bucket statistics for the Section 5 average operator: tuple counts
/// of attribute A's buckets plus the per-bucket sum of target attribute B.
struct BucketSums {
  std::vector<int64_t> u;      ///< tuples per bucket
  std::vector<double> sum;     ///< sum of the target attribute per bucket
  std::vector<double> min_value;
  std::vector<double> max_value;
  int64_t total_tuples = 0;

  int num_buckets() const { return static_cast<int>(u.size()); }
};

/// Counts buckets of `values` (attribute A) while summing `target`
/// (attribute B) per bucket. Spans must be equal length.
BucketSums CountBucketSums(std::span<const double> values,
                           std::span<const double> target,
                           const BucketBoundaries& boundaries);

/// Removes empty buckets from a BucketSums in place.
void CompactEmptyBuckets(BucketSums* sums);

/// NaN-safe range endpoints over BucketSums (see the BucketCounts
/// overloads above).
double RangeMinValue(const BucketSums& sums, int s, int t);
double RangeMaxValue(const BucketSums& sums, int s, int t);

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_COUNTING_H_
