// Step 4 of Algorithm 3.1: one sequential pass assigning each tuple to its
// bucket and accumulating, per bucket, the tuple count u_i and per Boolean
// target the hit count v_i. Also tracks the observed min/max value per
// bucket so mined ranges can be reported in attribute units.

#ifndef OPTRULES_BUCKETING_COUNTING_H_
#define OPTRULES_BUCKETING_COUNTING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bucketing/boundaries.h"
#include "storage/tuple_stream.h"

namespace optrules::bucketing {

/// Per-bucket statistics for one numeric attribute and a set of Boolean
/// targets.
struct BucketCounts {
  /// u[i]: number of tuples in bucket i.
  std::vector<int64_t> u;
  /// v[t][i]: number of tuples in bucket i meeting Boolean target t.
  std::vector<std::vector<int64_t>> v;
  /// Observed minimum / maximum attribute value in each bucket (NaN when
  /// the bucket is empty, but empty buckets are usually compacted away).
  std::vector<double> min_value;
  std::vector<double> max_value;
  /// Total number of tuples scanned (the support denominator N).
  int64_t total_tuples = 0;

  int num_buckets() const { return static_cast<int>(u.size()); }
  int num_targets() const { return static_cast<int>(v.size()); }
};

/// Counts one in-memory column against one or more Boolean target columns.
/// Every target span must have the same length as `values`.
BucketCounts CountBuckets(std::span<const double> values,
                          std::span<const std::vector<uint8_t>* const> targets,
                          const BucketBoundaries& boundaries);

/// Convenience overload for a single target column.
BucketCounts CountBuckets(std::span<const double> values,
                          const std::vector<uint8_t>& target,
                          const BucketBoundaries& boundaries);

/// Counts only the row range [begin, end) of the full columns. Building
/// block for the parallel counter (Algorithm 3.2); total_tuples is set to
/// end - begin.
BucketCounts CountBucketsSlice(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, size_t begin, size_t end);

/// Generalized-rule counting (Section 4.3): u_i counts tuples meeting the
/// presumptive Boolean condition C1, v_i those meeting C1 and C2.
/// `condition1` / `condition2` are 0/1 masks over rows.
BucketCounts CountBucketsConditional(std::span<const double> values,
                                     std::span<const uint8_t> condition1,
                                     std::span<const uint8_t> condition2,
                                     const BucketBoundaries& boundaries);

/// Streaming variant: counts numeric attribute `numeric_attr` against all
/// Boolean attributes of the stream in one scan (the Figure 9 workload).
/// The stream must be positioned at the start.
BucketCounts CountBucketsFromStream(storage::TupleStream& stream,
                                    int numeric_attr,
                                    const BucketBoundaries& boundaries);

/// Removes empty buckets in place (the rule algorithms require u_i >= 1).
/// Bucket order and all parallel arrays are preserved.
void CompactEmptyBuckets(BucketCounts* counts);

/// Per-bucket statistics for the Section 5 average operator: tuple counts
/// of attribute A's buckets plus the per-bucket sum of target attribute B.
struct BucketSums {
  std::vector<int64_t> u;      ///< tuples per bucket
  std::vector<double> sum;     ///< sum of the target attribute per bucket
  std::vector<double> min_value;
  std::vector<double> max_value;
  int64_t total_tuples = 0;

  int num_buckets() const { return static_cast<int>(u.size()); }
};

/// Counts buckets of `values` (attribute A) while summing `target`
/// (attribute B) per bucket. Spans must be equal length.
BucketSums CountBucketSums(std::span<const double> values,
                           std::span<const double> target,
                           const BucketBoundaries& boundaries);

/// Removes empty buckets from a BucketSums in place.
void CompactEmptyBuckets(BucketSums* sums);

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_COUNTING_H_
