#include "bucketing/boundaries.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bucketing/equidepth_sampler.h"
#include "bucketing/gk_sketch.h"
#include "bucketing/sort_bucketizer.h"
#include "common/rng.h"

namespace optrules::bucketing {

BucketBoundaries BucketBoundaries::FromCutPoints(
    std::vector<double> cut_points) {
  OPTRULES_CHECK(std::is_sorted(cut_points.begin(), cut_points.end()));
  return BucketBoundaries(std::move(cut_points));
}

BucketBoundaries BucketBoundaries::FromSortedValues(
    std::span<const double> sorted, int num_buckets) {
  OPTRULES_CHECK(num_buckets >= 1);
  OPTRULES_DCHECK(std::is_sorted(sorted.begin(), sorted.end()));
  std::vector<double> cuts;
  cuts.reserve(static_cast<size_t>(num_buckets) - 1);
  const int64_t n = static_cast<int64_t>(sorted.size());
  for (int i = 1; i < num_buckets; ++i) {
    if (n == 0) break;
    // The i*(n/M)-th smallest sample becomes p_i (paper step 3); with
    // 1-based "k-th smallest" that is index k-1.
    const int64_t rank =
        std::max<int64_t>(0, std::min<int64_t>(n, i * n / num_buckets) - 1);
    cuts.push_back(sorted[static_cast<size_t>(rank)]);
  }
  // Duplicated quantiles (heavy ties) are legal: the duplicate buckets are
  // simply empty and get compacted away by the counting layer.
  return BucketBoundaries(std::move(cuts));
}

namespace {

/// Drift audit gating the equi-width fast path: the fix-up walk in
/// LocateEquiWidth is only O(1) when the arithmetic guess lands within a
/// couple of slots of the true lower_bound index for every cut. Sub-ulp
/// steps violate that -- hundreds of cuts collapse onto a few distinct
/// doubles (long duplicate runs) while the affine model keeps stepping,
/// which would turn each fix-up into an O(M) crawl. Such layouts must
/// stay on the O(log M) branchless path; results are identical either way.
bool EquiWidthGuessesAreTight(std::span<const double> cuts, double first,
                              double inv_step) {
  for (size_t i = 0; i < cuts.size(); ++i) {
    // The true lower_bound index of x == cuts[i] is the first index
    // holding that value; any duplicate means the step is sub-ulp.
    if (i + 1 < cuts.size() && cuts[i + 1] == cuts[i]) return false;
    const double guess = std::ceil((cuts[i] - first) * inv_step);
    if (!(std::fabs(guess - static_cast<double>(i)) <= 2.0)) return false;
  }
  return true;
}

}  // namespace

BucketBoundaries BucketBoundaries::FromEquiWidth(double lo, double step,
                                                 int num_buckets) {
  OPTRULES_CHECK(num_buckets >= 1);
  std::vector<double> cuts;
  cuts.reserve(static_cast<size_t>(num_buckets) - 1);
  for (int i = 1; i < num_buckets; ++i) {
    cuts.push_back(lo + step * static_cast<double>(i));
  }
  BucketBoundaries boundaries(std::move(cuts));
  // Enable the arithmetic fast path directly from the known parameters;
  // per-cut rounding can fail the constructor's bitwise reconstruction
  // even though the layout IS equi-width. The same denormal / overflow
  // guards and drift audit as the auto-detection apply.
  if (!boundaries.equi_width_ && !boundaries.cut_points_.empty() &&
      std::isfinite(lo) && step > 0.0 && std::isfinite(step) &&
      std::isfinite(1.0 / step) &&
      std::isfinite(boundaries.cut_points_.back()) &&
      EquiWidthGuessesAreTight(boundaries.cut_points_,
                               boundaries.cut_points_.front(), 1.0 / step)) {
    boundaries.equi_width_ = true;
    boundaries.first_cut_ = boundaries.cut_points_.front();
    boundaries.inv_step_ = 1.0 / step;
  }
  return boundaries;
}

BucketBoundaries::BucketBoundaries(std::vector<double> cut_points)
    : cut_points_(std::move(cut_points)) {
  // Equi-width detection: the arithmetic fast path is only taken when
  // every cut is EXACTLY first + i * step (bitwise double equality), so
  // affine cut sets qualify while sampled quantiles fall back to the
  // branchless search. The bitwise test alone is not enough: a sub-ulp
  // step can reproduce a duplicate-laden layout bitwise (the rounding
  // that collapsed the cuts collapses the reconstruction identically),
  // so the drift audit below gates the fast path too.
  const size_t n = cut_points_.size();
  if (n < 2) return;
  const double first = cut_points_.front();
  const double step =
      (cut_points_.back() - first) / static_cast<double>(n - 1);
  if (!std::isfinite(first) || !(step > 0.0) || !std::isfinite(step)) return;
  // A denormal step makes 1/step overflow to +inf, and the fast path's
  // (x - first) * inv_step_ would then produce 0 * inf = NaN for
  // x == first -- whose integer cast is UB. Such layouts stay on the
  // branchless path.
  if (!std::isfinite(1.0 / step)) return;
  for (size_t i = 0; i < n; ++i) {
    if (cut_points_[i] != first + static_cast<double>(i) * step) return;
  }
  if (!EquiWidthGuessesAreTight(cut_points_, first, 1.0 / step)) return;
  equi_width_ = true;
  first_cut_ = first;
  inv_step_ = 1.0 / step;
}

int BucketBoundaries::LocateBranchless(double x) const {
  // Branchless lower_bound: `base` advances by `half` iff the probed cut is
  // still < x; the multiply-by-bool form compiles to a conditional move, so
  // the loop has no data-dependent branch to mispredict (the scalar
  // std::lower_bound paid one mispredict per probe on random data).
  const double* base = cut_points_.data();
  size_t n = cut_points_.size();
  if (n == 0) return 0;
  while (n > 1) {
    const size_t half = n / 2;
    base += static_cast<size_t>(base[half - 1] < x) * half;
    n -= half;
  }
  return static_cast<int>(base - cut_points_.data()) +
         static_cast<int>(*base < x);
}

int BucketBoundaries::LocateEquiWidth(double x) const {
  // The lower_bound index is the number of cuts < x; with cuts affine that
  // is ceil((x - first) / step) in real arithmetic. The double guess can be
  // off by a few ulps, so it is clamped and then corrected against the
  // stored cuts -- the fix-up loops run at most one or two iterations and
  // make the result exactly lower_bound's, bit-identical to the slow path.
  const auto n = static_cast<int64_t>(cut_points_.size());
  double guess = std::ceil((x - first_cut_) * inv_step_);
  // Clamp to [0, n] in double first: the raw guess can be +/-inf for
  // infinite x, which must not reach the integer cast.
  guess = std::min(guess, static_cast<double>(n));
  guess = std::max(guess, 0.0);
  int64_t index = static_cast<int64_t>(guess);
  while (index < n && cut_points_[static_cast<size_t>(index)] < x) ++index;
  while (index > 0 && cut_points_[static_cast<size_t>(index - 1)] >= x) {
    --index;
  }
  return static_cast<int>(index);
}

int BucketBoundaries::Locate(double x) const {
  // Bucket i covers (p_i, p_{i+1}]; the lower_bound index (first cut >= x)
  // is exactly the index of the covering bucket.
  if (std::isnan(x)) return kNoBucket;
  return equi_width_ ? LocateEquiWidth(x) : LocateBranchless(x);
}

int64_t BucketBoundaries::LocateBatch(std::span<const double> values,
                                      std::span<int32_t> out) const {
  return LocateBatchWithKernels(simd::Active(), values, out);
}

int64_t BucketBoundaries::LocateBatchWithKernels(
    const simd::Kernels& kernels, std::span<const double> values,
    std::span<int32_t> out) const {
  OPTRULES_CHECK(values.size() == out.size());
  if (equi_width_) {
    return kernels.locate_equi_width(values.data(), values.size(),
                                     cut_points_.data(), cut_points_.size(),
                                     first_cut_, inv_step_, out.data());
  }
  return kernels.locate_search(values.data(), values.size(),
                               cut_points_.data(), cut_points_.size(),
                               out.data());
}

double BucketBoundaries::LowerEdge(int i) const {
  OPTRULES_CHECK(0 <= i && i < num_buckets());
  if (i == 0) return -std::numeric_limits<double>::infinity();
  return cut_points_[static_cast<size_t>(i - 1)];
}

double BucketBoundaries::UpperEdge(int i) const {
  OPTRULES_CHECK(0 <= i && i < num_buckets());
  if (i == num_buckets() - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return cut_points_[static_cast<size_t>(i)];
}

double BoundaryPlan::EffectiveGkEpsilon() const {
  return gk_epsilon > 0.0 ? gk_epsilon
                          : 1.0 / (4.0 * static_cast<double>(num_buckets));
}

BucketBoundaries BuildBoundaries(std::span<const double> values,
                                 const BoundaryPlan& plan, uint64_t salt) {
  OPTRULES_CHECK(plan.num_buckets >= 1);
  switch (plan.bucketizer) {
    case Bucketizer::kSampling: {
      Rng rng(plan.seed + salt);
      SamplerOptions sampler;
      sampler.num_buckets = plan.num_buckets;
      sampler.sample_per_bucket = plan.sample_per_bucket;
      return BuildEquiDepthBoundaries(values, sampler, rng);
    }
    case Bucketizer::kGkSketch:
      return BuildEquiDepthBoundariesGk(values, plan.num_buckets,
                                        plan.EffectiveGkEpsilon());
    case Bucketizer::kExactSort:
      return ExactEquiDepthBoundaries(values, plan.num_buckets);
  }
  OPTRULES_CHECK(false);
  return BucketBoundaries::FromCutPoints({});
}

}  // namespace optrules::bucketing
