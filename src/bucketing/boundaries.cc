#include "bucketing/boundaries.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bucketing/equidepth_sampler.h"
#include "bucketing/gk_sketch.h"
#include "bucketing/sort_bucketizer.h"
#include "common/rng.h"

namespace optrules::bucketing {

BucketBoundaries BucketBoundaries::FromCutPoints(
    std::vector<double> cut_points) {
  OPTRULES_CHECK(std::is_sorted(cut_points.begin(), cut_points.end()));
  return BucketBoundaries(std::move(cut_points));
}

BucketBoundaries BucketBoundaries::FromSortedValues(
    std::span<const double> sorted, int num_buckets) {
  OPTRULES_CHECK(num_buckets >= 1);
  OPTRULES_DCHECK(std::is_sorted(sorted.begin(), sorted.end()));
  std::vector<double> cuts;
  cuts.reserve(static_cast<size_t>(num_buckets) - 1);
  const int64_t n = static_cast<int64_t>(sorted.size());
  for (int i = 1; i < num_buckets; ++i) {
    if (n == 0) break;
    // The i*(n/M)-th smallest sample becomes p_i (paper step 3); with
    // 1-based "k-th smallest" that is index k-1.
    const int64_t rank =
        std::max<int64_t>(0, std::min<int64_t>(n, i * n / num_buckets) - 1);
    cuts.push_back(sorted[static_cast<size_t>(rank)]);
  }
  // Duplicated quantiles (heavy ties) are legal: the duplicate buckets are
  // simply empty and get compacted away by the counting layer.
  return BucketBoundaries(std::move(cuts));
}

int BucketBoundaries::Locate(double x) const {
  if (std::isnan(x)) return kNoBucket;
  // Bucket i covers (p_i, p_{i+1}]; lower_bound yields the first cut >= x,
  // which is exactly the index of the covering bucket.
  const auto it =
      std::lower_bound(cut_points_.begin(), cut_points_.end(), x);
  return static_cast<int>(it - cut_points_.begin());
}

double BucketBoundaries::LowerEdge(int i) const {
  OPTRULES_CHECK(0 <= i && i < num_buckets());
  if (i == 0) return -std::numeric_limits<double>::infinity();
  return cut_points_[static_cast<size_t>(i - 1)];
}

double BucketBoundaries::UpperEdge(int i) const {
  OPTRULES_CHECK(0 <= i && i < num_buckets());
  if (i == num_buckets() - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return cut_points_[static_cast<size_t>(i)];
}

double BoundaryPlan::EffectiveGkEpsilon() const {
  return gk_epsilon > 0.0 ? gk_epsilon
                          : 1.0 / (4.0 * static_cast<double>(num_buckets));
}

BucketBoundaries BuildBoundaries(std::span<const double> values,
                                 const BoundaryPlan& plan, uint64_t salt) {
  OPTRULES_CHECK(plan.num_buckets >= 1);
  switch (plan.bucketizer) {
    case Bucketizer::kSampling: {
      Rng rng(plan.seed + salt);
      SamplerOptions sampler;
      sampler.num_buckets = plan.num_buckets;
      sampler.sample_per_bucket = plan.sample_per_bucket;
      return BuildEquiDepthBoundaries(values, sampler, rng);
    }
    case Bucketizer::kGkSketch:
      return BuildEquiDepthBoundariesGk(values, plan.num_buckets,
                                        plan.EffectiveGkEpsilon());
    case Bucketizer::kExactSort:
      return ExactEquiDepthBoundaries(values, plan.num_buckets);
  }
  OPTRULES_CHECK(false);
  return BucketBoundaries::FromCutPoints({});
}

}  // namespace optrules::bucketing
