#include "bucketing/error_bounds.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace optrules::bucketing {

ApproxErrorBounds BucketApproximationBounds(double support_opt,
                                            double confidence_opt,
                                            int num_buckets) {
  OPTRULES_CHECK(0.0 < support_opt && support_opt <= 1.0);
  OPTRULES_CHECK(0.0 <= confidence_opt && confidence_opt <= 1.0);
  OPTRULES_CHECK(num_buckets >= 1);
  const double m = static_cast<double>(num_buckets);
  const double ms = m * support_opt;

  ApproxErrorBounds bounds;
  bounds.support_lo = std::max(0.0, support_opt - 2.0 / m);
  bounds.support_hi = std::min(1.0, support_opt + 2.0 / m);
  // Expanding by <= 2 buckets of all-miss tuples dilutes the confidence to
  // c*ms/(ms+2); shrinking past up to 2 buckets of all-miss tuples can
  // raise it to c*ms/(ms-2).
  bounds.confidence_lo = std::max(0.0, confidence_opt * ms / (ms + 2.0));
  bounds.confidence_hi =
      ms > 2.0 ? std::min(1.0, confidence_opt * ms / (ms - 2.0)) : 1.0;
  return bounds;
}

double RelativeSupportErrorBound(double support_opt, int num_buckets) {
  OPTRULES_CHECK(support_opt > 0.0);
  OPTRULES_CHECK(num_buckets >= 1);
  return 2.0 / (static_cast<double>(num_buckets) * support_opt);
}

double RelativeConfidenceErrorBound(double support_opt, int num_buckets) {
  OPTRULES_CHECK(support_opt > 0.0);
  OPTRULES_CHECK(num_buckets >= 1);
  const double ms = static_cast<double>(num_buckets) * support_opt;
  if (ms <= 2.0) return std::numeric_limits<double>::infinity();
  return 2.0 / (ms - 2.0);
}

}  // namespace optrules::bucketing
