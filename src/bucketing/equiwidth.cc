#include "bucketing/equiwidth.h"

#include <algorithm>

namespace optrules::bucketing {

BucketBoundaries EquiWidthBoundaries(std::span<const double> values,
                                     int num_buckets) {
  OPTRULES_CHECK(num_buckets >= 1);
  if (values.empty()) return BucketBoundaries::FromCutPoints({});
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  const double lo = *min_it;
  const double hi = *max_it;
  std::vector<double> cuts;
  cuts.reserve(static_cast<size_t>(num_buckets) - 1);
  for (int i = 1; i < num_buckets; ++i) {
    cuts.push_back(lo + (hi - lo) * static_cast<double>(i) /
                            static_cast<double>(num_buckets));
  }
  return BucketBoundaries::FromCutPoints(std::move(cuts));
}

}  // namespace optrules::bucketing
