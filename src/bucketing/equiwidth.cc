#include "bucketing/equiwidth.h"

#include <algorithm>

namespace optrules::bucketing {

BucketBoundaries EquiWidthBoundaries(std::span<const double> values,
                                     int num_buckets) {
  OPTRULES_CHECK(num_buckets >= 1);
  if (values.empty()) return BucketBoundaries::FromCutPoints({});
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  const double lo = *min_it;
  const double hi = *max_it;
  // Affine construction (lo + i * step) keeps the LocateBatch fast path
  // enabled; the previous lo + (hi-lo)*i/m form rounded each cut
  // independently and differed only in the last ulp.
  return BucketBoundaries::FromEquiWidth(
      lo, (hi - lo) / static_cast<double>(num_buckets), num_buckets);
}

}  // namespace optrules::bucketing
