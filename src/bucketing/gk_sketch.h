// Greenwald-Khanna epsilon-approximate quantile summary.
//
// A deterministic, single-pass alternative to the paper's randomized
// Algorithm 3.1 for building almost equi-depth buckets: the sketch
// maintains O((1/eps) * log(eps*N)) tuples and answers any quantile with
// rank error at most eps*N, so cut points taken at the 1/M quantiles give
// buckets whose depth deviates by at most eps*N from N/M -- without
// sampling variance. `bench/ablation_sketch` compares the two designs.
//
// Reference: M. Greenwald and S. Khanna, "Space-efficient online
// computation of quantile summaries", SIGMOD 2001 (post-dates the paper;
// implemented here as the natural 'future work' upgrade).

#ifndef OPTRULES_BUCKETING_GK_SKETCH_H_
#define OPTRULES_BUCKETING_GK_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bucketing/boundaries.h"
#include "storage/tuple_stream.h"

namespace optrules::bucketing {

/// Online epsilon-approximate quantile summary over doubles.
class GkQuantileSketch {
 public:
  /// epsilon in (0, 0.5): maximum rank error as a fraction of the count.
  explicit GkQuantileSketch(double epsilon);

  /// Inserts one value.
  void Add(double value);

  /// Number of values inserted.
  int64_t count() const { return count_; }

  /// Number of summary tuples currently held (the space bound).
  int summary_size() const { return static_cast<int>(summary_.size()); }

  /// Value whose rank is within epsilon*count of phi*count; phi in [0, 1].
  /// Requires count() > 0.
  double Quantile(double phi) const;

 private:
  struct Tuple {
    double value;
    int64_t g;      ///< rmin(this) - rmin(previous)
    int64_t delta;  ///< rmax(this) - rmin(this)
  };

  void Compress();

  double epsilon_;
  int64_t count_ = 0;
  int64_t inserts_since_compress_ = 0;
  std::vector<Tuple> summary_;  // sorted by value
};

/// Cut points at the 1/M..(M-1)/M quantiles of a filled sketch; the
/// shared tail of every GK bucketizer path (column, stream, batch scan).
/// The sketch must have count() > 0.
BucketBoundaries BoundariesFromGkSketch(const GkQuantileSketch& sketch,
                                        int num_buckets);

/// Equi-depth boundaries from one pass of a GK sketch over a column.
/// Rank error of every cut point is at most epsilon*N.
BucketBoundaries BuildEquiDepthBoundariesGk(std::span<const double> values,
                                            int num_buckets,
                                            double epsilon);

/// Streaming variant over a TupleStream (single sequential pass).
BucketBoundaries BuildEquiDepthBoundariesGkFromStream(
    storage::TupleStream& stream, int numeric_attr, int num_buckets,
    double epsilon);

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_GK_SKETCH_H_
