// Algorithm 3.2: parallel bucket counting.
//
// The tuples are partitioned over worker threads (the paper's "processor
// elements"); each worker counts its share into private arrays with no
// communication, and the coordinator sums the partial counts. The paper
// argues this is embarrassingly parallel and scales with the number of PEs.

#ifndef OPTRULES_BUCKETING_PARALLEL_COUNT_H_
#define OPTRULES_BUCKETING_PARALLEL_COUNT_H_

#include <span>
#include <vector>

#include "bucketing/counting.h"

namespace optrules::bucketing {

/// Parallel version of CountBuckets over in-memory columns. Equivalent to
/// the serial version for any thread count; `num_threads >= 1`.
BucketCounts ParallelCountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, int num_threads);

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_PARALLEL_COUNT_H_
