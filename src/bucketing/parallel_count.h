// Algorithm 3.2: parallel bucket counting.
//
// The tuples are partitioned over worker threads (the paper's "processor
// elements"); each worker counts its share into private arrays with no
// communication, and the coordinator sums the partial counts in shard
// order, so every thread count produces bit-identical results. Workers
// come from a reusable ThreadPool rather than ad-hoc thread spawns, and
// the multi-pair entry point drives a whole MultiCountPlan -- every
// numeric attribute against every Boolean target -- through ONE shared
// scan of a BatchSource.

#ifndef OPTRULES_BUCKETING_PARALLEL_COUNT_H_
#define OPTRULES_BUCKETING_PARALLEL_COUNT_H_

#include <span>
#include <vector>

#include "bucketing/counting.h"
#include "common/thread_pool.h"
#include "storage/columnar_batch.h"

namespace optrules::bucketing {

/// Parallel version of CountBuckets over in-memory columns. Equivalent to
/// the serial version for any thread count; `num_threads >= 1` is the
/// number of row shards. Runs on `pool` (shards beyond the pool size
/// queue), or on DefaultThreadPool() for the 4-argument overload.
BucketCounts ParallelCountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, int num_threads, ThreadPool& pool);

BucketCounts ParallelCountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, int num_threads);

/// Executes `plan` over exactly one scan of `source`, partitioned over
/// `pool` (pass nullptr for a serial scan).
///
/// Sources that support range readers (in-memory relations, PagedFiles)
/// are sharded by rows: each worker accumulates a private partial plan
/// (built from the same MultiCountSpec) over a contiguous shard and the
/// partials merge in shard order. The shard layout is a pure function of
/// the row count -- never of the pool size -- so results are identical
/// for ANY pool, including a pool of size 1. Other sources are read
/// sequentially with the plan's channels (1-D and grid) fanned out across
/// the pool per batch. Both schedules produce bit-identical u/v counts,
/// grid cells, and min/max to a serial scan and account exactly one scan
/// on `source` (assertable via BatchSource::scans_started()). Per-bucket
/// double sum channels are Neumaier-compensated: bit-identical under the
/// channel-parallel schedule, and bit-identical across all pool sizes
/// under row-sharding (the compensated merge still reassociates at shard
/// borders, so the last ulp can differ from the nullptr-pool serial
/// chain).
///
/// The pass installs DerivePruneSpec(plan->spec()) on the source for its
/// duration, so pooled PagedFile readers may skip zone-map-dead pages;
/// skipped rows are added back via MultiCountPlan::AddSkippedRows, keeping
/// pruned results bit-identical to unpruned ones.
void ExecuteMultiCount(storage::BatchSource& source, MultiCountPlan* plan,
                       ThreadPool* pool);

}  // namespace optrules::bucketing

#endif  // OPTRULES_BUCKETING_PARALLEL_COUNT_H_
