#include "bucketing/parallel_count.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace optrules::bucketing {

BucketCounts ParallelCountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, int num_threads, ThreadPool& pool) {
  OPTRULES_CHECK(num_threads >= 1);
  for (const std::vector<uint8_t>* target : targets) {
    OPTRULES_CHECK(target != nullptr);
    OPTRULES_CHECK(target->size() == values.size());
  }

  // Step 1: split rows into near-equal contiguous shards, one task per
  // shard (the paper's PEs); the pool executes them with live workers.
  const size_t n = values.size();
  const size_t shards = static_cast<size_t>(num_threads);
  std::vector<BucketCounts> partials(shards);

  // Step 3 (per PE): private counting, no shared state.
  pool.Run(num_threads, [&](int shard) {
    const auto s = static_cast<size_t>(shard);
    const size_t begin = n * s / shards;
    const size_t end = n * (s + 1) / shards;
    partials[s] = CountBucketsSlice(values, targets, boundaries, begin, end);
  });

  // Step 4: the coordinator sums the partial counts in shard order.
  BucketCounts total = std::move(partials[0]);
  for (size_t shard = 1; shard < shards; ++shard) {
    const BucketCounts& part = partials[shard];
    for (int b = 0; b < total.num_buckets(); ++b) {
      const auto bi = static_cast<size_t>(b);
      total.u[bi] += part.u[bi];
      for (int t = 0; t < total.num_targets(); ++t) {
        total.v[static_cast<size_t>(t)][bi] +=
            part.v[static_cast<size_t>(t)][bi];
      }
      // Min and max merge independently (mirroring MultiCountPlan::Merge):
      // nesting the max merge inside the min guard is correct only while
      // the counting kernels always set the two together, and a future
      // asymmetric update must not silently drop maxima.
      if (!std::isnan(part.min_value[bi]) &&
          (std::isnan(total.min_value[bi]) ||
           part.min_value[bi] < total.min_value[bi])) {
        total.min_value[bi] = part.min_value[bi];
      }
      if (!std::isnan(part.max_value[bi]) &&
          (std::isnan(total.max_value[bi]) ||
           part.max_value[bi] > total.max_value[bi])) {
        total.max_value[bi] = part.max_value[bi];
      }
    }
    total.total_tuples += part.total_tuples;
  }
  return total;
}

BucketCounts ParallelCountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, int num_threads) {
  return ParallelCountBuckets(values, targets, boundaries, num_threads,
                              DefaultThreadPool());
}

namespace {

/// Serial fallback: one reader, one plan.
void ExecuteSerial(storage::BatchSource& source, MultiCountPlan* plan) {
  std::unique_ptr<storage::BatchReader> reader = source.CreateReader();
  storage::ColumnarBatch batch;
  while (reader->Next(&batch)) plan->Accumulate(batch);
}

/// Row-sharded execution: each worker scans a contiguous row range with
/// its own range reader into a private partial plan; partials merge in
/// shard order (bit-identical to serial for counts and min/max; per-bucket
/// double sums are deterministic for a given shard count but may differ
/// from serial in the last ulp, since double addition reassociates).
void ExecuteRowSharded(storage::BatchSource& source, MultiCountPlan* plan,
                       ThreadPool& pool, int num_shards) {
  source.NoteScanStarted();  // the whole sharded pass is ONE logical scan
  const int64_t n = source.NumTuples();
  std::vector<MultiCountPlan> partials;
  partials.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    partials.emplace_back(plan->spec());
  }
  pool.Run(num_shards, [&](int shard) {
    const int64_t begin = n * shard / num_shards;
    const int64_t end = n * (shard + 1) / num_shards;
    std::unique_ptr<storage::BatchReader> reader =
        source.CreateRangeReader(begin, end);
    storage::ColumnarBatch batch;
    MultiCountPlan& partial = partials[static_cast<size_t>(shard)];
    while (reader->Next(&batch)) partial.Accumulate(batch);
  });
  for (const MultiCountPlan& partial : partials) plan->Merge(partial);
}

/// Sequential reader, channel-parallel accumulation: per batch the
/// channels fan out across the pool (each channel's counts and sums are
/// disjoint state inside the shared plan). Every channel folds its rows
/// serially, so even double sums stay bit-identical to a serial scan.
void ExecuteChannelParallel(storage::BatchSource& source,
                            MultiCountPlan* plan, ThreadPool& pool) {
  std::unique_ptr<storage::BatchReader> reader = source.CreateReader();
  storage::ColumnarBatch batch;
  const int num_channels = plan->num_channels();
  while (reader->Next(&batch)) {
    // Condition masks and the shared bucket-index cache are computed once
    // on the reader thread; the fanned out channels only read them.
    plan->PrepareBatch(batch);
    pool.Run(num_channels,
             [&](int channel) { plan->AccumulateChannel(batch, channel); });
  }
}

}  // namespace

void ExecuteMultiCount(storage::BatchSource& source, MultiCountPlan* plan,
                       ThreadPool* pool) {
  OPTRULES_CHECK(plan != nullptr);
  for (const CountChannel& channel : plan->spec().channels) {
    OPTRULES_CHECK(0 <= channel.column &&
                   channel.column < source.num_numeric());
    for (const int target : channel.sum_targets) {
      OPTRULES_CHECK(0 <= target && target < source.num_numeric());
    }
  }
  for (const std::vector<int>& condition : plan->spec().conditions) {
    for (const int column : condition) {
      OPTRULES_CHECK(0 <= column && column < source.num_boolean());
    }
  }
  OPTRULES_CHECK(source.num_boolean() == plan->num_targets());
  if (pool == nullptr || pool->size() <= 1 || plan->num_channels() == 0) {
    ExecuteSerial(source, plan);
    return;
  }
  if (source.SupportsRangeReaders() && source.NumTuples() > 0) {
    ExecuteRowSharded(source, plan, *pool, pool->size());
    return;
  }
  ExecuteChannelParallel(source, plan, *pool);
}

}  // namespace optrules::bucketing
