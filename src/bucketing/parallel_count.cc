#include "bucketing/parallel_count.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

namespace optrules::bucketing {

BucketCounts ParallelCountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, int num_threads) {
  OPTRULES_CHECK(num_threads >= 1);
  for (const std::vector<uint8_t>* target : targets) {
    OPTRULES_CHECK(target != nullptr);
    OPTRULES_CHECK(target->size() == values.size());
  }

  // Step 1: split rows into near-equal contiguous shards.
  const size_t n = values.size();
  const size_t shards = static_cast<size_t>(num_threads);
  std::vector<BucketCounts> partials(shards);

  // Step 3 (per PE): private counting, no shared state.
  auto count_shard = [&](size_t shard) {
    const size_t begin = n * shard / shards;
    const size_t end = n * (shard + 1) / shards;
    partials[shard] =
        CountBucketsSlice(values, targets, boundaries, begin, end);
  };

  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  for (size_t shard = 1; shard < shards; ++shard) {
    workers.emplace_back(count_shard, shard);
  }
  count_shard(0);
  for (std::thread& worker : workers) worker.join();

  // Step 4: the coordinator sums the partial counts.
  BucketCounts total = std::move(partials[0]);
  for (size_t shard = 1; shard < shards; ++shard) {
    const BucketCounts& part = partials[shard];
    for (int b = 0; b < total.num_buckets(); ++b) {
      const auto bi = static_cast<size_t>(b);
      total.u[bi] += part.u[bi];
      for (int t = 0; t < total.num_targets(); ++t) {
        total.v[static_cast<size_t>(t)][bi] +=
            part.v[static_cast<size_t>(t)][bi];
      }
      if (!std::isnan(part.min_value[bi])) {
        if (std::isnan(total.min_value[bi]) ||
            part.min_value[bi] < total.min_value[bi]) {
          total.min_value[bi] = part.min_value[bi];
        }
        if (std::isnan(total.max_value[bi]) ||
            part.max_value[bi] > total.max_value[bi]) {
          total.max_value[bi] = part.max_value[bi];
        }
      }
    }
    total.total_tuples += part.total_tuples;
  }
  return total;
}

}  // namespace optrules::bucketing
