#include "bucketing/parallel_count.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace optrules::bucketing {

BucketCounts ParallelCountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, int num_threads, ThreadPool& pool) {
  OPTRULES_CHECK(num_threads >= 1);
  for (const std::vector<uint8_t>* target : targets) {
    OPTRULES_CHECK(target != nullptr);
    OPTRULES_CHECK(target->size() == values.size());
  }

  // Step 1: split rows into near-equal contiguous shards, one task per
  // shard (the paper's PEs); the pool executes them with live workers.
  const size_t n = values.size();
  const size_t shards = static_cast<size_t>(num_threads);
  std::vector<BucketCounts> partials(shards);

  // Step 3 (per PE): private counting, no shared state.
  pool.Run(num_threads, [&](int shard) {
    const auto s = static_cast<size_t>(shard);
    const size_t begin = n * s / shards;
    const size_t end = n * (s + 1) / shards;
    partials[s] = CountBucketsSlice(values, targets, boundaries, begin, end);
  });

  // Step 4: the coordinator sums the partial counts in shard order.
  BucketCounts total = std::move(partials[0]);
  for (size_t shard = 1; shard < shards; ++shard) {
    const BucketCounts& part = partials[shard];
    for (int b = 0; b < total.num_buckets(); ++b) {
      const auto bi = static_cast<size_t>(b);
      total.u[bi] += part.u[bi];
      for (int t = 0; t < total.num_targets(); ++t) {
        total.v[static_cast<size_t>(t)][bi] +=
            part.v[static_cast<size_t>(t)][bi];
      }
      // Min and max merge independently (mirroring MultiCountPlan::Merge):
      // nesting the max merge inside the min guard is correct only while
      // the counting kernels always set the two together, and a future
      // asymmetric update must not silently drop maxima.
      if (!std::isnan(part.min_value[bi]) &&
          (std::isnan(total.min_value[bi]) ||
           part.min_value[bi] < total.min_value[bi])) {
        total.min_value[bi] = part.min_value[bi];
      }
      if (!std::isnan(part.max_value[bi]) &&
          (std::isnan(total.max_value[bi]) ||
           part.max_value[bi] > total.max_value[bi])) {
        total.max_value[bi] = part.max_value[bi];
      }
    }
    total.total_tuples += part.total_tuples;
  }
  return total;
}

BucketCounts ParallelCountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, int num_threads) {
  return ParallelCountBuckets(values, targets, boundaries, num_threads,
                              DefaultThreadPool());
}

namespace {

/// Installs DerivePruneSpec(plan->spec()) on the source for the duration
/// of one counting pass and clears it on scope exit (the spec is not
/// synchronized against readers, so it must never outlive the pass).
class PruneSpecGuard {
 public:
  PruneSpecGuard(storage::BatchSource& source, const MultiCountSpec& spec)
      : source_(source) {
    auto prune =
        std::make_shared<storage::ScanPruneSpec>(DerivePruneSpec(spec));
    if (!prune->empty()) source_.InstallPruneSpec(std::move(prune));
  }
  ~PruneSpecGuard() { source_.InstallPruneSpec(nullptr); }
  PruneSpecGuard(const PruneSpecGuard&) = delete;
  PruneSpecGuard& operator=(const PruneSpecGuard&) = delete;

 private:
  storage::BatchSource& source_;
};

/// Registry histograms for the locate / mask / scatter phase breakdown,
/// resolved once.
struct ScanPhaseMetrics {
  obs::Histogram* locate;
  obs::Histogram* mask;
  obs::Histogram* scatter;
  obs::Counter* scans;

  static const ScanPhaseMetrics& Get() {
    static const ScanPhaseMetrics metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return ScanPhaseMetrics{reg.GetHistogram("scan.locate_seconds"),
                              reg.GetHistogram("scan.mask_seconds"),
                              reg.GetHistogram("scan.scatter_seconds"),
                              reg.GetCounter("scan.executions")};
    }();
    return metrics;
  }
};

/// Attaches a ScanPhaseTimes sink to `plan` for the scope and, on exit,
/// observes the phase totals into the registry histograms, chains them
/// into any sink the caller had attached (so existing accessors see
/// identical values), and stamps them onto `span` when one is given.
/// Only valid where attaching a sink is valid: serially-executed plans.
class PhaseTimesScope {
 public:
  explicit PhaseTimesScope(MultiCountPlan* plan, obs::Span* span = nullptr)
      : plan_(plan), span_(span), prior_(plan->phase_times()) {
    plan_->set_phase_times(&local_);
  }
  PhaseTimesScope(const PhaseTimesScope&) = delete;
  PhaseTimesScope& operator=(const PhaseTimesScope&) = delete;

  ~PhaseTimesScope() {
    plan_->set_phase_times(prior_);
    if (prior_ != nullptr) {
      prior_->locate_seconds += local_.locate_seconds;
      prior_->mask_seconds += local_.mask_seconds;
      prior_->scatter_seconds += local_.scatter_seconds;
    }
    const ScanPhaseMetrics& metrics = ScanPhaseMetrics::Get();
    metrics.locate->Observe(local_.locate_seconds);
    metrics.mask->Observe(local_.mask_seconds);
    metrics.scatter->Observe(local_.scatter_seconds);
    if (span_ != nullptr && span_->active()) {
      span_->AddAttribute("locate_seconds", local_.locate_seconds);
      span_->AddAttribute("mask_seconds", local_.mask_seconds);
      span_->AddAttribute("scatter_seconds", local_.scatter_seconds);
    }
  }

 private:
  MultiCountPlan* plan_;
  obs::Span* span_;
  ScanPhaseTimes* prior_;
  ScanPhaseTimes local_;
};

/// Serial fallback: one reader, one plan.
void ExecuteSerial(storage::BatchSource& source, MultiCountPlan* plan) {
  std::unique_ptr<storage::BatchReader> reader = source.CreateReader();
  storage::ColumnarBatch batch;
  while (reader->Next(&batch)) plan->Accumulate(batch);
  plan->AddSkippedRows(reader->pruned_rows());
}

/// Number of row shards for a source of `num_tuples` rows. The layout is
/// a pure function of the row count -- NEVER of the pool size -- so the
/// partial plans and their shard-order merge are identical no matter how
/// many workers execute them: even the compensated double sums come out
/// bit-identical under any pool size. Pools larger than the shard count
/// idle; pools smaller queue shards.
int RowShardCount(int64_t num_tuples) {
  constexpr int64_t kMinRowsPerShard = 8192;
  constexpr int64_t kMaxRowShards = 32;
  return static_cast<int>(
      std::clamp(num_tuples / kMinRowsPerShard, int64_t{1}, kMaxRowShards));
}

/// Row-sharded execution: each worker scans a contiguous row range with
/// its own range reader into a private partial plan; partials merge in
/// shard order. Counts and min/max are bit-identical to serial; per-bucket
/// double sums are Neumaier-compensated and, because the shard layout is
/// pool-independent, bit-identical across all pool sizes (the last ulp can
/// still differ from the unsharded serial chain).
void ExecuteRowSharded(storage::BatchSource& source, MultiCountPlan* plan,
                       ThreadPool& pool, int num_shards,
                       uint64_t parent_span_id) {
  source.NoteScanStarted();  // the whole sharded pass is ONE logical scan
  const int64_t n = source.NumTuples();
  std::vector<MultiCountPlan> partials;
  partials.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    partials.emplace_back(plan->spec());
  }
  pool.Run(num_shards, [&](int shard) {
    // Pool workers have no span context of their own; parent this shard's
    // span (and phase timings) under the scan span explicitly.
    obs::ScopedParent parent(parent_span_id);
    obs::Span shard_span("bucketing.shard");
    shard_span.AddAttribute("shard", static_cast<double>(shard));
    const int64_t begin = n * shard / num_shards;
    const int64_t end = n * (shard + 1) / num_shards;
    std::unique_ptr<storage::BatchReader> reader =
        source.CreateRangeReader(begin, end);
    storage::ColumnarBatch batch;
    MultiCountPlan& partial = partials[static_cast<size_t>(shard)];
    PhaseTimesScope phase_scope(&partial, &shard_span);
    while (reader->Next(&batch)) partial.Accumulate(batch);
    partial.AddSkippedRows(reader->pruned_rows());
  });
  for (const MultiCountPlan& partial : partials) plan->Merge(partial);
}

/// Sequential reader, channel-parallel accumulation: per batch the
/// channels (1-D and grid alike) fan out across the pool (each channel's
/// counts, sums, and cells are disjoint state inside the shared plan).
/// Every channel folds its rows serially, so even double sums stay
/// bit-identical to a serial scan.
void ExecuteChannelParallel(storage::BatchSource& source,
                            MultiCountPlan* plan, ThreadPool& pool) {
  std::unique_ptr<storage::BatchReader> reader = source.CreateReader();
  storage::ColumnarBatch batch;
  const int num_channels = plan->num_channels();
  const int num_units = num_channels + plan->num_grid_channels();
  while (reader->Next(&batch)) {
    // Condition masks and the shared bucket-index cache are computed once
    // on the reader thread; the fanned out channels only read them.
    plan->PrepareBatch(batch);
    pool.Run(num_units, [&](int unit) {
      if (unit < num_channels) {
        plan->AccumulateChannel(batch, unit);
      } else {
        plan->AccumulateGridChannel(batch, unit - num_channels);
      }
    });
  }
  plan->AddSkippedRows(reader->pruned_rows());
}

}  // namespace

void ExecuteMultiCount(storage::BatchSource& source, MultiCountPlan* plan,
                       ThreadPool* pool) {
  OPTRULES_CHECK(plan != nullptr);
  for (const CountChannel& channel : plan->spec().channels) {
    OPTRULES_CHECK(0 <= channel.column &&
                   channel.column < source.num_numeric());
    for (const int target : channel.sum_targets) {
      OPTRULES_CHECK(0 <= target && target < source.num_numeric());
    }
  }
  for (const GridChannel& channel : plan->spec().grid_channels) {
    OPTRULES_CHECK(0 <= channel.x_column &&
                   channel.x_column < source.num_numeric());
    OPTRULES_CHECK(0 <= channel.y_column &&
                   channel.y_column < source.num_numeric());
  }
  for (const std::vector<int>& condition : plan->spec().conditions) {
    for (const int column : condition) {
      OPTRULES_CHECK(0 <= column && column < source.num_boolean());
    }
  }
  OPTRULES_CHECK(source.num_boolean() == plan->num_targets());
  ScanPhaseMetrics::Get().scans->Add();
  obs::Span span("bucketing.scan");
  span.AddAttribute("rows", static_cast<double>(source.NumTuples()));
  // Let the source's readers skip pages/partitions that provably cannot
  // contribute to this plan; the readers account the skipped rows and the
  // executors add them back via AddSkippedRows, so pruning is invisible in
  // the results.
  PruneSpecGuard prune_guard(source, plan->spec());
  // A pool of size 1 still takes the sharded path (with the same
  // pool-independent shard layout), so its sums are bit-identical to any
  // larger pool's; only pool == nullptr is the unsharded serial reference.
  if (pool == nullptr ||
      plan->num_channels() + plan->num_grid_channels() == 0) {
    PhaseTimesScope phase_scope(plan, &span);
    ExecuteSerial(source, plan);
    return;
  }
  if (source.SupportsRangeReaders() && source.NumTuples() > 0) {
    const int num_shards = RowShardCount(source.NumTuples());
    span.AddAttribute("shards", static_cast<double>(num_shards));
    ExecuteRowSharded(source, plan, *pool, num_shards, span.id());
    return;
  }
  // Channels accumulate concurrently on the shared plan here, so a phase
  // sink (unsynchronized by contract) cannot be attached.
  ExecuteChannelParallel(source, plan, *pool);
}

}  // namespace optrules::bucketing
