#include "bucketing/equidepth_sampler.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace optrules::bucketing {

namespace {

BucketBoundaries BoundariesFromSample(std::vector<double>& sample,
                                      int num_buckets) {
  // NaN sample values belong to no bucket (the repo-wide NaN policy) and
  // violate std::sort's strict weak ordering, so drop them before the
  // quantile step.
  sample.erase(std::remove_if(sample.begin(), sample.end(),
                              [](double v) { return std::isnan(v); }),
               sample.end());
  std::sort(sample.begin(), sample.end());
  return BucketBoundaries::FromSortedValues(sample, num_buckets);
}

}  // namespace

BucketBoundaries BuildEquiDepthBoundaries(std::span<const double> values,
                                          const SamplerOptions& options,
                                          Rng& rng) {
  OPTRULES_CHECK(options.num_buckets >= 1);
  OPTRULES_CHECK(options.sample_per_bucket >= 1);
  if (values.empty()) {
    return BucketBoundaries::FromCutPoints({});
  }
  const int64_t sample_size =
      options.sample_per_bucket * options.num_buckets;
  std::vector<double> sample;
  sample.reserve(static_cast<size_t>(sample_size));
  for (int64_t i = 0; i < sample_size; ++i) {
    const uint64_t index = rng.NextBounded(values.size());
    sample.push_back(values[static_cast<size_t>(index)]);
  }
  return BoundariesFromSample(sample, options.num_buckets);
}

ReservoirSampler::ReservoirSampler(int64_t capacity) : capacity_(capacity) {
  OPTRULES_CHECK(capacity >= 1);
  sample_.reserve(static_cast<size_t>(capacity));
}

void ReservoirSampler::Add(double value, Rng& rng) {
  // Vitter's algorithm R: one sequential pass, bounded memory, uniform
  // without replacement.
  ++seen_;
  if (static_cast<int64_t>(sample_.size()) < capacity_) {
    sample_.push_back(value);
    return;
  }
  const uint64_t j = rng.NextBounded(static_cast<uint64_t>(seen_));
  if (j < static_cast<uint64_t>(capacity_)) {
    sample_[static_cast<size_t>(j)] = value;
  }
}

BucketBoundaries ReservoirSampler::TakeBoundaries(int num_buckets) {
  if (sample_.empty()) return BucketBoundaries::FromCutPoints({});
  return BoundariesFromSample(sample_, num_buckets);
}

BucketBoundaries BuildEquiDepthBoundariesFromStream(
    storage::TupleStream& stream, int numeric_attr,
    const SamplerOptions& options, Rng& rng) {
  OPTRULES_CHECK(options.num_buckets >= 1);
  OPTRULES_CHECK(options.sample_per_bucket >= 1);
  OPTRULES_CHECK(0 <= numeric_attr && numeric_attr < stream.num_numeric());
  ReservoirSampler reservoir(options.sample_per_bucket *
                             options.num_buckets);
  storage::TupleView view;
  while (stream.Next(&view)) {
    reservoir.Add(view.numeric[numeric_attr], rng);
  }
  return reservoir.TakeBoundaries(options.num_buckets);
}

}  // namespace optrules::bucketing
