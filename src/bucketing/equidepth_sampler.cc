#include "bucketing/equidepth_sampler.h"

#include <algorithm>
#include <vector>

namespace optrules::bucketing {

namespace {

BucketBoundaries BoundariesFromSample(std::vector<double>& sample,
                                      int num_buckets) {
  std::sort(sample.begin(), sample.end());
  return BucketBoundaries::FromSortedValues(sample, num_buckets);
}

}  // namespace

BucketBoundaries BuildEquiDepthBoundaries(std::span<const double> values,
                                          const SamplerOptions& options,
                                          Rng& rng) {
  OPTRULES_CHECK(options.num_buckets >= 1);
  OPTRULES_CHECK(options.sample_per_bucket >= 1);
  if (values.empty()) {
    return BucketBoundaries::FromCutPoints({});
  }
  const int64_t sample_size =
      options.sample_per_bucket * options.num_buckets;
  std::vector<double> sample;
  sample.reserve(static_cast<size_t>(sample_size));
  for (int64_t i = 0; i < sample_size; ++i) {
    const uint64_t index = rng.NextBounded(values.size());
    sample.push_back(values[static_cast<size_t>(index)]);
  }
  return BoundariesFromSample(sample, options.num_buckets);
}

BucketBoundaries BuildEquiDepthBoundariesFromStream(
    storage::TupleStream& stream, int numeric_attr,
    const SamplerOptions& options, Rng& rng) {
  OPTRULES_CHECK(options.num_buckets >= 1);
  OPTRULES_CHECK(options.sample_per_bucket >= 1);
  OPTRULES_CHECK(0 <= numeric_attr && numeric_attr < stream.num_numeric());
  const int64_t sample_size =
      options.sample_per_bucket * options.num_buckets;
  // Reservoir sampling (Vitter's algorithm R): one sequential pass, bounded
  // memory, uniform without replacement.
  std::vector<double> reservoir;
  reservoir.reserve(static_cast<size_t>(sample_size));
  storage::TupleView view;
  int64_t seen = 0;
  while (stream.Next(&view)) {
    const double value = view.numeric[numeric_attr];
    ++seen;
    if (static_cast<int64_t>(reservoir.size()) < sample_size) {
      reservoir.push_back(value);
    } else {
      const uint64_t j = rng.NextBounded(static_cast<uint64_t>(seen));
      if (j < static_cast<uint64_t>(sample_size)) {
        reservoir[static_cast<size_t>(j)] = value;
      }
    }
  }
  if (reservoir.empty()) return BucketBoundaries::FromCutPoints({});
  return BoundariesFromSample(reservoir, options.num_buckets);
}

}  // namespace optrules::bucketing
