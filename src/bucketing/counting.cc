#include "bucketing/counting.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace optrules::bucketing {

namespace {

BucketCounts MakeEmptyCounts(int num_buckets, int num_targets) {
  BucketCounts counts;
  counts.u.assign(static_cast<size_t>(num_buckets), 0);
  counts.v.assign(static_cast<size_t>(num_targets),
                  std::vector<int64_t>(static_cast<size_t>(num_buckets), 0));
  counts.min_value.assign(static_cast<size_t>(num_buckets),
                          std::numeric_limits<double>::quiet_NaN());
  counts.max_value.assign(static_cast<size_t>(num_buckets),
                          std::numeric_limits<double>::quiet_NaN());
  return counts;
}

void UpdateMinMax(BucketCounts* counts, int bucket, double value) {
  const auto b = static_cast<size_t>(bucket);
  double& lo = counts->min_value[b];
  double& hi = counts->max_value[b];
  if (std::isnan(lo) || value < lo) lo = value;
  if (std::isnan(hi) || value > hi) hi = value;
}

}  // namespace

BucketCounts CountBucketsSlice(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, size_t begin, size_t end) {
  OPTRULES_CHECK(begin <= end && end <= values.size());
  BucketCounts counts = MakeEmptyCounts(boundaries.num_buckets(),
                                        static_cast<int>(targets.size()));
  for (const std::vector<uint8_t>* target : targets) {
    OPTRULES_CHECK(target != nullptr);
    OPTRULES_CHECK(target->size() == values.size());
  }
  for (size_t row = begin; row < end; ++row) {
    const int bucket = boundaries.Locate(values[row]);
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
    for (size_t t = 0; t < targets.size(); ++t) {
      if ((*targets[t])[row] != 0) {
        ++counts.v[t][static_cast<size_t>(bucket)];
      }
    }
  }
  counts.total_tuples = static_cast<int64_t>(end - begin);
  return counts;
}

BucketCounts CountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries) {
  return CountBucketsSlice(values, targets, boundaries, 0, values.size());
}

BucketCounts CountBuckets(std::span<const double> values,
                          const std::vector<uint8_t>& target,
                          const BucketBoundaries& boundaries) {
  const std::vector<uint8_t>* targets[] = {&target};
  return CountBuckets(values, targets, boundaries);
}

BucketCounts CountBucketsConditional(std::span<const double> values,
                                     std::span<const uint8_t> condition1,
                                     std::span<const uint8_t> condition2,
                                     const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(condition1.size() == values.size());
  OPTRULES_CHECK(condition2.size() == values.size());
  BucketCounts counts = MakeEmptyCounts(boundaries.num_buckets(), 1);
  for (size_t row = 0; row < values.size(); ++row) {
    if (condition1[row] == 0) continue;
    const int bucket = boundaries.Locate(values[row]);
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
    if (condition2[row] != 0) {
      ++counts.v[0][static_cast<size_t>(bucket)];
    }
  }
  // N stays the full table size: the support of a generalized rule is
  // measured against all tuples (Definition 2.2).
  counts.total_tuples = static_cast<int64_t>(values.size());
  return counts;
}

BucketCounts CountBucketsFromStream(storage::TupleStream& stream,
                                    int numeric_attr,
                                    const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(0 <= numeric_attr && numeric_attr < stream.num_numeric());
  BucketCounts counts =
      MakeEmptyCounts(boundaries.num_buckets(), stream.num_boolean());
  storage::TupleView view;
  int64_t total = 0;
  const int num_targets = stream.num_boolean();
  while (stream.Next(&view)) {
    const double value = view.numeric[numeric_attr];
    const int bucket = boundaries.Locate(value);
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, value);
    for (int t = 0; t < num_targets; ++t) {
      if (view.booleans[t] != 0) {
        ++counts.v[static_cast<size_t>(t)][static_cast<size_t>(bucket)];
      }
    }
    ++total;
  }
  counts.total_tuples = total;
  return counts;
}

void CompactEmptyBuckets(BucketCounts* counts) {
  OPTRULES_CHECK(counts != nullptr);
  const int m = counts->num_buckets();
  int write = 0;
  for (int read = 0; read < m; ++read) {
    if (counts->u[static_cast<size_t>(read)] == 0) continue;
    if (write != read) {
      counts->u[static_cast<size_t>(write)] =
          counts->u[static_cast<size_t>(read)];
      counts->min_value[static_cast<size_t>(write)] =
          counts->min_value[static_cast<size_t>(read)];
      counts->max_value[static_cast<size_t>(write)] =
          counts->max_value[static_cast<size_t>(read)];
      for (auto& target : counts->v) {
        target[static_cast<size_t>(write)] =
            target[static_cast<size_t>(read)];
      }
    }
    ++write;
  }
  counts->u.resize(static_cast<size_t>(write));
  counts->min_value.resize(static_cast<size_t>(write));
  counts->max_value.resize(static_cast<size_t>(write));
  for (auto& target : counts->v) target.resize(static_cast<size_t>(write));
}

BucketSums CountBucketSums(std::span<const double> values,
                           std::span<const double> target,
                           const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(target.size() == values.size());
  const int m = boundaries.num_buckets();
  BucketSums sums;
  sums.u.assign(static_cast<size_t>(m), 0);
  sums.sum.assign(static_cast<size_t>(m), 0.0);
  sums.min_value.assign(static_cast<size_t>(m),
                        std::numeric_limits<double>::quiet_NaN());
  sums.max_value.assign(static_cast<size_t>(m),
                        std::numeric_limits<double>::quiet_NaN());
  for (size_t row = 0; row < values.size(); ++row) {
    const auto bucket =
        static_cast<size_t>(boundaries.Locate(values[row]));
    ++sums.u[bucket];
    sums.sum[bucket] += target[row];
    double& lo = sums.min_value[bucket];
    double& hi = sums.max_value[bucket];
    if (std::isnan(lo) || values[row] < lo) lo = values[row];
    if (std::isnan(hi) || values[row] > hi) hi = values[row];
  }
  sums.total_tuples = static_cast<int64_t>(values.size());
  return sums;
}

void CompactEmptyBuckets(BucketSums* sums) {
  OPTRULES_CHECK(sums != nullptr);
  const int m = sums->num_buckets();
  int write = 0;
  for (int read = 0; read < m; ++read) {
    const auto r = static_cast<size_t>(read);
    if (sums->u[r] == 0) continue;
    const auto w = static_cast<size_t>(write);
    if (write != read) {
      sums->u[w] = sums->u[r];
      sums->sum[w] = sums->sum[r];
      sums->min_value[w] = sums->min_value[r];
      sums->max_value[w] = sums->max_value[r];
    }
    ++write;
  }
  sums->u.resize(static_cast<size_t>(write));
  sums->sum.resize(static_cast<size_t>(write));
  sums->min_value.resize(static_cast<size_t>(write));
  sums->max_value.resize(static_cast<size_t>(write));
}

}  // namespace optrules::bucketing
