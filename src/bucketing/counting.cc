#include "bucketing/counting.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace optrules::bucketing {

namespace {

BucketCounts MakeEmptyCounts(int num_buckets, int num_targets) {
  BucketCounts counts;
  counts.u.assign(static_cast<size_t>(num_buckets), 0);
  counts.v.assign(static_cast<size_t>(num_targets),
                  std::vector<int64_t>(static_cast<size_t>(num_buckets), 0));
  counts.min_value.assign(static_cast<size_t>(num_buckets),
                          std::numeric_limits<double>::quiet_NaN());
  counts.max_value.assign(static_cast<size_t>(num_buckets),
                          std::numeric_limits<double>::quiet_NaN());
  return counts;
}

void UpdateMinMax(BucketCounts* counts, int bucket, double value) {
  // NaN values are counted (they are tuples) but never become a range
  // endpoint: a NaN min/max would otherwise survive empty-bucket
  // compaction (u_i > 0) and leak into reported rules.
  if (std::isnan(value)) return;
  const auto b = static_cast<size_t>(bucket);
  double& lo = counts->min_value[b];
  double& hi = counts->max_value[b];
  if (std::isnan(lo) || value < lo) lo = value;
  if (std::isnan(hi) || value > hi) hi = value;
}

}  // namespace

BucketCounts CountBucketsSlice(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, size_t begin, size_t end) {
  OPTRULES_CHECK(begin <= end && end <= values.size());
  BucketCounts counts = MakeEmptyCounts(boundaries.num_buckets(),
                                        static_cast<int>(targets.size()));
  for (const std::vector<uint8_t>* target : targets) {
    OPTRULES_CHECK(target != nullptr);
    OPTRULES_CHECK(target->size() == values.size());
  }
  for (size_t row = begin; row < end; ++row) {
    const int bucket = boundaries.Locate(values[row]);
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
    for (size_t t = 0; t < targets.size(); ++t) {
      if ((*targets[t])[row] != 0) {
        ++counts.v[t][static_cast<size_t>(bucket)];
      }
    }
  }
  counts.total_tuples = static_cast<int64_t>(end - begin);
  return counts;
}

BucketCounts CountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries) {
  return CountBucketsSlice(values, targets, boundaries, 0, values.size());
}

BucketCounts CountBuckets(std::span<const double> values,
                          const std::vector<uint8_t>& target,
                          const BucketBoundaries& boundaries) {
  const std::vector<uint8_t>* targets[] = {&target};
  return CountBuckets(values, targets, boundaries);
}

BucketCounts CountBucketsConditional(std::span<const double> values,
                                     std::span<const uint8_t> condition1,
                                     std::span<const uint8_t> condition2,
                                     const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(condition1.size() == values.size());
  OPTRULES_CHECK(condition2.size() == values.size());
  BucketCounts counts = MakeEmptyCounts(boundaries.num_buckets(), 1);
  for (size_t row = 0; row < values.size(); ++row) {
    if (condition1[row] == 0) continue;
    const int bucket = boundaries.Locate(values[row]);
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
    if (condition2[row] != 0) {
      ++counts.v[0][static_cast<size_t>(bucket)];
    }
  }
  // N stays the full table size: the support of a generalized rule is
  // measured against all tuples (Definition 2.2).
  counts.total_tuples = static_cast<int64_t>(values.size());
  return counts;
}

BucketCounts CountBucketsFromStream(storage::TupleStream& stream,
                                    int numeric_attr,
                                    const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(0 <= numeric_attr && numeric_attr < stream.num_numeric());
  BucketCounts counts =
      MakeEmptyCounts(boundaries.num_buckets(), stream.num_boolean());
  storage::TupleView view;
  int64_t total = 0;
  const int num_targets = stream.num_boolean();
  while (stream.Next(&view)) {
    const double value = view.numeric[numeric_attr];
    const int bucket = boundaries.Locate(value);
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, value);
    for (int t = 0; t < num_targets; ++t) {
      if (view.booleans[t] != 0) {
        ++counts.v[static_cast<size_t>(t)][static_cast<size_t>(bucket)];
      }
    }
    ++total;
  }
  counts.total_tuples = total;
  return counts;
}

void CompactEmptyBuckets(BucketCounts* counts) {
  OPTRULES_CHECK(counts != nullptr);
  const int m = counts->num_buckets();
  int write = 0;
  for (int read = 0; read < m; ++read) {
    if (counts->u[static_cast<size_t>(read)] == 0) continue;
    if (write != read) {
      counts->u[static_cast<size_t>(write)] =
          counts->u[static_cast<size_t>(read)];
      counts->min_value[static_cast<size_t>(write)] =
          counts->min_value[static_cast<size_t>(read)];
      counts->max_value[static_cast<size_t>(write)] =
          counts->max_value[static_cast<size_t>(read)];
      for (auto& target : counts->v) {
        target[static_cast<size_t>(write)] =
            target[static_cast<size_t>(read)];
      }
    }
    ++write;
  }
  counts->u.resize(static_cast<size_t>(write));
  counts->min_value.resize(static_cast<size_t>(write));
  counts->max_value.resize(static_cast<size_t>(write));
  for (auto& target : counts->v) target.resize(static_cast<size_t>(write));
}

double RangeMinValue(const BucketCounts& counts, int s, int t) {
  OPTRULES_CHECK(0 <= s && s <= t && t < counts.num_buckets());
  for (int b = s; b <= t; ++b) {
    const double lo = counts.min_value[static_cast<size_t>(b)];
    if (!std::isnan(lo)) return lo;
  }
  return -std::numeric_limits<double>::infinity();
}

double RangeMaxValue(const BucketCounts& counts, int s, int t) {
  OPTRULES_CHECK(0 <= s && s <= t && t < counts.num_buckets());
  for (int b = t; b >= s; --b) {
    const double hi = counts.max_value[static_cast<size_t>(b)];
    if (!std::isnan(hi)) return hi;
  }
  return std::numeric_limits<double>::infinity();
}

MultiCountPlan::MultiCountPlan(
    std::vector<const BucketBoundaries*> boundaries, int num_targets)
    : boundaries_(std::move(boundaries)), num_targets_(num_targets) {
  OPTRULES_CHECK(num_targets >= 0);
  counts_.reserve(boundaries_.size());
  scratch_.resize(boundaries_.size());
  for (const BucketBoundaries* b : boundaries_) {
    OPTRULES_CHECK(b != nullptr);
    counts_.push_back(MakeEmptyCounts(b->num_buckets(), num_targets));
  }
}

void MultiCountPlan::AccumulateAttribute(
    const storage::ColumnarBatch& batch, int attr) {
  OPTRULES_CHECK(0 <= attr && attr < num_attributes());
  OPTRULES_CHECK(batch.num_numeric() == num_attributes());
  OPTRULES_CHECK(batch.num_boolean() == num_targets_);
  const auto a = static_cast<size_t>(attr);
  const std::span<const double> values = batch.numeric(attr);
  const size_t rows = values.size();
  BucketCounts& counts = counts_[a];
  std::vector<int32_t>& buckets = scratch_[a];
  buckets.resize(rows);
  // Locate each value once, reusing the result for every target.
  const BucketBoundaries& boundaries = *boundaries_[a];
  for (size_t row = 0; row < rows; ++row) {
    const int bucket = boundaries.Locate(values[row]);
    buckets[row] = bucket;
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
  }
  for (int t = 0; t < num_targets_; ++t) {
    const std::span<const uint8_t> target = batch.boolean(t);
    std::vector<int64_t>& v = counts.v[static_cast<size_t>(t)];
    for (size_t row = 0; row < rows; ++row) {
      v[static_cast<size_t>(buckets[row])] +=
          static_cast<int64_t>(target[row] != 0);
    }
  }
  counts.total_tuples += static_cast<int64_t>(rows);
}

void MultiCountPlan::Accumulate(const storage::ColumnarBatch& batch) {
  for (int attr = 0; attr < num_attributes(); ++attr) {
    AccumulateAttribute(batch, attr);
  }
}

void MultiCountPlan::Merge(const MultiCountPlan& other) {
  OPTRULES_CHECK(other.num_attributes() == num_attributes());
  OPTRULES_CHECK(other.num_targets_ == num_targets_);
  for (int attr = 0; attr < num_attributes(); ++attr) {
    const auto a = static_cast<size_t>(attr);
    BucketCounts& mine = counts_[a];
    const BucketCounts& theirs = other.counts_[a];
    OPTRULES_CHECK(theirs.num_buckets() == mine.num_buckets());
    for (int b = 0; b < mine.num_buckets(); ++b) {
      const auto bi = static_cast<size_t>(b);
      mine.u[bi] += theirs.u[bi];
      for (int t = 0; t < num_targets_; ++t) {
        mine.v[static_cast<size_t>(t)][bi] +=
            theirs.v[static_cast<size_t>(t)][bi];
      }
      if (!std::isnan(theirs.min_value[bi]) &&
          (std::isnan(mine.min_value[bi]) ||
           theirs.min_value[bi] < mine.min_value[bi])) {
        mine.min_value[bi] = theirs.min_value[bi];
      }
      if (!std::isnan(theirs.max_value[bi]) &&
          (std::isnan(mine.max_value[bi]) ||
           theirs.max_value[bi] > mine.max_value[bi])) {
        mine.max_value[bi] = theirs.max_value[bi];
      }
    }
    mine.total_tuples += theirs.total_tuples;
  }
}

BucketCounts MultiCountPlan::TakeCounts(int attr) {
  OPTRULES_CHECK(0 <= attr && attr < num_attributes());
  return std::move(counts_[static_cast<size_t>(attr)]);
}

BucketSums CountBucketSums(std::span<const double> values,
                           std::span<const double> target,
                           const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(target.size() == values.size());
  const int m = boundaries.num_buckets();
  BucketSums sums;
  sums.u.assign(static_cast<size_t>(m), 0);
  sums.sum.assign(static_cast<size_t>(m), 0.0);
  sums.min_value.assign(static_cast<size_t>(m),
                        std::numeric_limits<double>::quiet_NaN());
  sums.max_value.assign(static_cast<size_t>(m),
                        std::numeric_limits<double>::quiet_NaN());
  for (size_t row = 0; row < values.size(); ++row) {
    const auto bucket =
        static_cast<size_t>(boundaries.Locate(values[row]));
    ++sums.u[bucket];
    sums.sum[bucket] += target[row];
    if (std::isnan(values[row])) continue;  // never a range endpoint
    double& lo = sums.min_value[bucket];
    double& hi = sums.max_value[bucket];
    if (std::isnan(lo) || values[row] < lo) lo = values[row];
    if (std::isnan(hi) || values[row] > hi) hi = values[row];
  }
  sums.total_tuples = static_cast<int64_t>(values.size());
  return sums;
}

double RangeMinValue(const BucketSums& sums, int s, int t) {
  OPTRULES_CHECK(0 <= s && s <= t && t < sums.num_buckets());
  for (int b = s; b <= t; ++b) {
    const double lo = sums.min_value[static_cast<size_t>(b)];
    if (!std::isnan(lo)) return lo;
  }
  return -std::numeric_limits<double>::infinity();
}

double RangeMaxValue(const BucketSums& sums, int s, int t) {
  OPTRULES_CHECK(0 <= s && s <= t && t < sums.num_buckets());
  for (int b = t; b >= s; --b) {
    const double hi = sums.max_value[static_cast<size_t>(b)];
    if (!std::isnan(hi)) return hi;
  }
  return std::numeric_limits<double>::infinity();
}

void CompactEmptyBuckets(BucketSums* sums) {
  OPTRULES_CHECK(sums != nullptr);
  const int m = sums->num_buckets();
  int write = 0;
  for (int read = 0; read < m; ++read) {
    const auto r = static_cast<size_t>(read);
    if (sums->u[r] == 0) continue;
    const auto w = static_cast<size_t>(write);
    if (write != read) {
      sums->u[w] = sums->u[r];
      sums->sum[w] = sums->sum[r];
      sums->min_value[w] = sums->min_value[r];
      sums->max_value[w] = sums->max_value[r];
    }
    ++write;
  }
  sums->u.resize(static_cast<size_t>(write));
  sums->sum.resize(static_cast<size_t>(write));
  sums->min_value.resize(static_cast<size_t>(write));
  sums->max_value.resize(static_cast<size_t>(write));
}

}  // namespace optrules::bucketing
