#include "bucketing/counting.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace optrules::bucketing {

namespace {

BucketCounts MakeEmptyCounts(int num_buckets, int num_targets) {
  BucketCounts counts;
  counts.u.assign(static_cast<size_t>(num_buckets), 0);
  counts.v.assign(static_cast<size_t>(num_targets),
                  std::vector<int64_t>(static_cast<size_t>(num_buckets), 0));
  counts.min_value.assign(static_cast<size_t>(num_buckets),
                          std::numeric_limits<double>::quiet_NaN());
  counts.max_value.assign(static_cast<size_t>(num_buckets),
                          std::numeric_limits<double>::quiet_NaN());
  return counts;
}

void UpdateMinMax(BucketCounts* counts, int bucket, double value) {
  // NaN values belong to no bucket (Locate returns kNoBucket), so callers
  // never pass them here; the guard stays as a second line of defense so a
  // NaN can never become a range endpoint.
  if (std::isnan(value)) return;
  const auto b = static_cast<size_t>(bucket);
  double& lo = counts->min_value[b];
  double& hi = counts->max_value[b];
  if (std::isnan(lo) || value < lo) lo = value;
  if (std::isnan(hi) || value > hi) hi = value;
}

/// Shared core of the RangeMinValue overloads: first non-NaN min_value
/// scanning buckets [s, t] forward, -infinity when every bucket in the
/// range only ever saw NaN.
double RangeMinValueImpl(std::span<const double> min_value, int s, int t) {
  OPTRULES_CHECK(0 <= s && s <= t &&
                 t < static_cast<int>(min_value.size()));
  for (int b = s; b <= t; ++b) {
    const double lo = min_value[static_cast<size_t>(b)];
    if (!std::isnan(lo)) return lo;
  }
  return -std::numeric_limits<double>::infinity();
}

/// Shared core of the RangeMaxValue overloads: first non-NaN max_value
/// scanning buckets [s, t] backward, +infinity when none.
double RangeMaxValueImpl(std::span<const double> max_value, int s, int t) {
  OPTRULES_CHECK(0 <= s && s <= t &&
                 t < static_cast<int>(max_value.size()));
  for (int b = t; b >= s; --b) {
    const double hi = max_value[static_cast<size_t>(b)];
    if (!std::isnan(hi)) return hi;
  }
  return std::numeric_limits<double>::infinity();
}

/// Shared core of the CompactEmptyBuckets overloads: compacts the rows
/// with u[read] != 0 to the front, calling move_row(write, read) for every
/// kept row that moves (u itself included), and returns the kept count for
/// the caller's resizes.
template <typename MoveRow>
size_t CompactByU(std::span<const int64_t> u, MoveRow&& move_row) {
  size_t write = 0;
  for (size_t read = 0; read < u.size(); ++read) {
    if (u[read] == 0) continue;
    if (write != read) move_row(write, read);
    ++write;
  }
  return write;
}

}  // namespace

BucketCounts CountBucketsSlice(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, size_t begin, size_t end) {
  OPTRULES_CHECK(begin <= end && end <= values.size());
  BucketCounts counts = MakeEmptyCounts(boundaries.num_buckets(),
                                        static_cast<int>(targets.size()));
  for (const std::vector<uint8_t>* target : targets) {
    OPTRULES_CHECK(target != nullptr);
    OPTRULES_CHECK(target->size() == values.size());
  }
  for (size_t row = begin; row < end; ++row) {
    const int bucket = boundaries.Locate(values[row]);
    if (bucket == BucketBoundaries::kNoBucket) continue;  // NaN: no bucket
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
    for (size_t t = 0; t < targets.size(); ++t) {
      if ((*targets[t])[row] != 0) {
        ++counts.v[t][static_cast<size_t>(bucket)];
      }
    }
  }
  // NaN rows still count toward the support denominator N.
  counts.total_tuples = static_cast<int64_t>(end - begin);
  return counts;
}

BucketCounts CountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries) {
  return CountBucketsSlice(values, targets, boundaries, 0, values.size());
}

BucketCounts CountBuckets(std::span<const double> values,
                          const std::vector<uint8_t>& target,
                          const BucketBoundaries& boundaries) {
  const std::vector<uint8_t>* targets[] = {&target};
  return CountBuckets(values, targets, boundaries);
}

BucketCounts CountBucketsConditional(std::span<const double> values,
                                     std::span<const uint8_t> condition1,
                                     std::span<const uint8_t> condition2,
                                     const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(condition1.size() == values.size());
  OPTRULES_CHECK(condition2.size() == values.size());
  BucketCounts counts = MakeEmptyCounts(boundaries.num_buckets(), 1);
  for (size_t row = 0; row < values.size(); ++row) {
    if (condition1[row] == 0) continue;
    const int bucket = boundaries.Locate(values[row]);
    if (bucket == BucketBoundaries::kNoBucket) continue;  // NaN: no bucket
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
    if (condition2[row] != 0) {
      ++counts.v[0][static_cast<size_t>(bucket)];
    }
  }
  // N stays the full table size: the support of a generalized rule is
  // measured against all tuples (Definition 2.2).
  counts.total_tuples = static_cast<int64_t>(values.size());
  return counts;
}

BucketCounts CountBucketsFromStream(storage::TupleStream& stream,
                                    int numeric_attr,
                                    const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(0 <= numeric_attr && numeric_attr < stream.num_numeric());
  BucketCounts counts =
      MakeEmptyCounts(boundaries.num_buckets(), stream.num_boolean());
  storage::TupleView view;
  int64_t total = 0;
  const int num_targets = stream.num_boolean();
  while (stream.Next(&view)) {
    const double value = view.numeric[numeric_attr];
    const int bucket = boundaries.Locate(value);
    ++total;  // NaN rows still count toward the support denominator N
    if (bucket == BucketBoundaries::kNoBucket) continue;
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, value);
    for (int t = 0; t < num_targets; ++t) {
      if (view.booleans[t] != 0) {
        ++counts.v[static_cast<size_t>(t)][static_cast<size_t>(bucket)];
      }
    }
  }
  counts.total_tuples = total;
  return counts;
}

void CompactEmptyBuckets(BucketCounts* counts) {
  OPTRULES_CHECK(counts != nullptr);
  const size_t kept = CompactByU(counts->u, [counts](size_t w, size_t r) {
    counts->u[w] = counts->u[r];
    counts->min_value[w] = counts->min_value[r];
    counts->max_value[w] = counts->max_value[r];
    for (auto& target : counts->v) target[w] = target[r];
  });
  counts->u.resize(kept);
  counts->min_value.resize(kept);
  counts->max_value.resize(kept);
  for (auto& target : counts->v) target.resize(kept);
}

double RangeMinValue(const BucketCounts& counts, int s, int t) {
  return RangeMinValueImpl(counts.min_value, s, t);
}

double RangeMaxValue(const BucketCounts& counts, int s, int t) {
  return RangeMaxValueImpl(counts.max_value, s, t);
}

MultiCountPlan::MultiCountPlan(
    std::vector<const BucketBoundaries*> boundaries, int num_targets) {
  OPTRULES_CHECK(num_targets >= 0);
  MultiCountSpec spec;
  spec.num_targets = num_targets;
  spec.channels.reserve(boundaries.size());
  for (size_t a = 0; a < boundaries.size(); ++a) {
    CountChannel channel;
    channel.column = static_cast<int>(a);
    channel.boundaries = boundaries[a];
    spec.channels.push_back(std::move(channel));
  }
  *this = MultiCountPlan(std::move(spec));
}

MultiCountPlan::MultiCountPlan(MultiCountSpec spec) : spec_(std::move(spec)) {
  OPTRULES_CHECK(spec_.num_targets >= 0);
  counts_.reserve(spec_.channels.size());
  sums_.reserve(spec_.channels.size());
  sums_taken_.assign(spec_.channels.size(), 0);
  scratch_.resize(spec_.channels.size());
  channel_group_.reserve(spec_.channels.size());
  condition_masks_.resize(spec_.conditions.size());
  for (const CountChannel& channel : spec_.channels) {
    OPTRULES_CHECK(channel.boundaries != nullptr);
    OPTRULES_CHECK(channel.condition == CountChannel::kUnconditional ||
                   (0 <= channel.condition &&
                    channel.condition <
                        static_cast<int>(spec_.conditions.size())));
    counts_.push_back(
        MakeEmptyCounts(channel.boundaries->num_buckets(),
                        channel.count_targets ? spec_.num_targets : 0));
    sums_.emplace_back(
        channel.sum_targets.size(),
        std::vector<double>(
            static_cast<size_t>(channel.boundaries->num_buckets()), 0.0));
    // Channels sharing a (column, boundaries) pair -- the C conditional
    // channels of a column, or a sum channel riding on a base channel's
    // boundaries -- share ONE locate group, so PrepareBatch locates the
    // column exactly once per batch for all of them. Boundaries identity
    // is by pointer: the planners hand the same BucketBoundaries object to
    // every channel of a boundary set.
    size_t group = locate_groups_.size();
    for (size_t g = 0; g < locate_groups_.size(); ++g) {
      if (locate_groups_[g].column == channel.column &&
          locate_groups_[g].boundaries == channel.boundaries) {
        group = g;
        break;
      }
    }
    if (group == locate_groups_.size()) {
      LocateGroup fresh;
      fresh.column = channel.column;
      fresh.boundaries = channel.boundaries;
      locate_groups_.push_back(std::move(fresh));
    }
    channel_group_.push_back(group);
  }
}

void MultiCountPlan::PrepareBatch(const storage::ColumnarBatch& batch) {
  const size_t rows = static_cast<size_t>(batch.num_rows());
  for (size_t c = 0; c < spec_.conditions.size(); ++c) {
    std::vector<uint8_t>& mask = condition_masks_[c];
    mask.assign(rows, 1);
    for (const int column : spec_.conditions[c]) {
      const std::span<const uint8_t> condition = batch.boolean(column);
      for (size_t row = 0; row < rows; ++row) {
        mask[row] &= condition[row];
      }
    }
  }
  // Shared bucket-index cache: each distinct (column, boundaries) pair is
  // located once per batch, no matter how many channels consume it.
  for (LocateGroup& group : locate_groups_) {
    const std::span<const double> values = batch.numeric(group.column);
    group.buckets.resize(values.size());
    group.boundaries->LocateBatch(values, group.buckets);
  }
}

void MultiCountPlan::AccumulateChannel(const storage::ColumnarBatch& batch,
                                       int channel_index) {
  OPTRULES_CHECK(0 <= channel_index && channel_index < num_channels());
  OPTRULES_CHECK(batch.num_boolean() == spec_.num_targets);
  const auto ci = static_cast<size_t>(channel_index);
  const CountChannel& channel = spec_.channels[ci];
  const std::span<const double> values = batch.numeric(channel.column);
  const size_t rows = values.size();
  BucketCounts& counts = counts_[ci];

  const std::vector<int32_t>& located =
      locate_groups_[channel_group_[ci]].buckets;
  OPTRULES_CHECK(located.size() == rows);  // PrepareBatch ran for the batch
  const int32_t* buckets = located.data();

  // Conditional channels overlay the condition mask onto the shared cache
  // once (into per-channel scratch, so concurrent channels of one plan
  // never share mutable state); the scatter passes below then treat
  // condition-failing rows exactly like NaN rows.
  if (channel.condition != CountChannel::kUnconditional) {
    const std::vector<uint8_t>& mask =
        condition_masks_[static_cast<size_t>(channel.condition)];
    OPTRULES_CHECK(mask.size() == rows);
    std::vector<int32_t>& masked = scratch_[ci];
    masked.resize(rows);
    for (size_t row = 0; row < rows; ++row) {
      masked[row] =
          mask[row] != 0 ? buckets[row] : BucketBoundaries::kNoBucket;
    }
    buckets = masked.data();
  }

  // u-count pass (with min/max): the kNoBucket skip is the only
  // data-dependent branch and fires only for NaN / condition-failing rows.
  for (size_t row = 0; row < rows; ++row) {
    const int32_t bucket = buckets[row];
    if (bucket == BucketBoundaries::kNoBucket) continue;
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
  }
  // One v pass per Boolean target over the cached indices.
  if (channel.count_targets) {
    for (int t = 0; t < spec_.num_targets; ++t) {
      const std::span<const uint8_t> target = batch.boolean(t);
      std::vector<int64_t>& v = counts.v[static_cast<size_t>(t)];
      for (size_t row = 0; row < rows; ++row) {
        const int32_t bucket = buckets[row];
        if (bucket == BucketBoundaries::kNoBucket) continue;
        v[static_cast<size_t>(bucket)] +=
            static_cast<int64_t>(target[row] != 0);
      }
    }
  }
  // One sum pass per sum target (row order fixed, so double sums stay
  // bit-identical to the pre-cache kernel).
  for (size_t k = 0; k < channel.sum_targets.size(); ++k) {
    const std::span<const double> target =
        batch.numeric(channel.sum_targets[k]);
    std::vector<double>& sum = sums_[ci][k];
    for (size_t row = 0; row < rows; ++row) {
      const int32_t bucket = buckets[row];
      if (bucket == BucketBoundaries::kNoBucket) continue;
      sum[static_cast<size_t>(bucket)] += target[row];
    }
  }
  counts.total_tuples += static_cast<int64_t>(rows);
}

void MultiCountPlan::Accumulate(const storage::ColumnarBatch& batch) {
  PrepareBatch(batch);
  for (int channel = 0; channel < num_channels(); ++channel) {
    AccumulateChannel(batch, channel);
  }
}

void MultiCountPlan::Merge(const MultiCountPlan& other) {
  OPTRULES_CHECK(other.num_channels() == num_channels());
  OPTRULES_CHECK(other.spec_.num_targets == spec_.num_targets);
  for (int channel = 0; channel < num_channels(); ++channel) {
    const auto ci = static_cast<size_t>(channel);
    BucketCounts& mine = counts_[ci];
    const BucketCounts& theirs = other.counts_[ci];
    OPTRULES_CHECK(theirs.num_buckets() == mine.num_buckets());
    OPTRULES_CHECK(theirs.num_targets() == mine.num_targets());
    for (int b = 0; b < mine.num_buckets(); ++b) {
      const auto bi = static_cast<size_t>(b);
      mine.u[bi] += theirs.u[bi];
      for (int t = 0; t < mine.num_targets(); ++t) {
        mine.v[static_cast<size_t>(t)][bi] +=
            theirs.v[static_cast<size_t>(t)][bi];
      }
      // The min and max merges are deliberately independent guards: u/v
      // and the two endpoints must stay mergeable even if a future update
      // touches only one of them.
      if (!std::isnan(theirs.min_value[bi]) &&
          (std::isnan(mine.min_value[bi]) ||
           theirs.min_value[bi] < mine.min_value[bi])) {
        mine.min_value[bi] = theirs.min_value[bi];
      }
      if (!std::isnan(theirs.max_value[bi]) &&
          (std::isnan(mine.max_value[bi]) ||
           theirs.max_value[bi] > mine.max_value[bi])) {
        mine.max_value[bi] = theirs.max_value[bi];
      }
    }
    OPTRULES_CHECK(other.sums_[ci].size() == sums_[ci].size());
    for (size_t k = 0; k < sums_[ci].size(); ++k) {
      std::vector<double>& mine_sum = sums_[ci][k];
      const std::vector<double>& their_sum = other.sums_[ci][k];
      for (size_t b = 0; b < mine_sum.size(); ++b) {
        mine_sum[b] += their_sum[b];
      }
    }
    mine.total_tuples += theirs.total_tuples;
  }
}

BucketCounts MultiCountPlan::TakeCounts(int channel) {
  OPTRULES_CHECK(0 <= channel && channel < num_channels());
  return std::move(counts_[static_cast<size_t>(channel)]);
}

BucketSums MultiCountPlan::MakeBucketSums(int channel, int k) const {
  OPTRULES_CHECK(0 <= channel && channel < num_channels());
  const auto ci = static_cast<size_t>(channel);
  OPTRULES_CHECK(0 <= k && k < static_cast<int>(sums_[ci].size()));
  const BucketCounts& counts = counts_[ci];
  BucketSums sums;
  sums.u = counts.u;
  sums.sum = sums_[ci][static_cast<size_t>(k)];
  sums.min_value = counts.min_value;
  sums.max_value = counts.max_value;
  sums.total_tuples = counts.total_tuples;
  return sums;
}

BucketSums MultiCountPlan::TakeBucketSums(int channel, int k) {
  OPTRULES_CHECK(0 <= channel && channel < num_channels());
  const auto ci = static_cast<size_t>(channel);
  OPTRULES_CHECK(0 <= k && k < static_cast<int>(sums_[ci].size()));
  std::vector<double>& source = sums_[ci][static_cast<size_t>(k)];
  BucketCounts& counts = counts_[ci];
  // A double take would silently hand out an empty sum array: the taken
  // counter catches takes past the channel's target count, and the size
  // equality catches re-taking a cleared k while others are outstanding.
  OPTRULES_CHECK(sums_taken_[ci] < sums_[ci].size());
  OPTRULES_CHECK(static_cast<int>(source.size()) == counts.num_buckets());
  BucketSums sums;
  sums.sum = std::move(source);
  source.clear();
  sums.total_tuples = counts.total_tuples;
  ++sums_taken_[ci];
  if (sums_taken_[ci] == sums_[ci].size()) {
    // Last outstanding sum target of the channel: move the parallel arrays
    // instead of deep-copying them.
    sums.u = std::move(counts.u);
    sums.min_value = std::move(counts.min_value);
    sums.max_value = std::move(counts.max_value);
    counts.u.clear();
    counts.min_value.clear();
    counts.max_value.clear();
  } else {
    sums.u = counts.u;
    sums.min_value = counts.min_value;
    sums.max_value = counts.max_value;
  }
  return sums;
}

BucketSums CountBucketSums(std::span<const double> values,
                           std::span<const double> target,
                           const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(target.size() == values.size());
  const int m = boundaries.num_buckets();
  BucketSums sums;
  sums.u.assign(static_cast<size_t>(m), 0);
  sums.sum.assign(static_cast<size_t>(m), 0.0);
  sums.min_value.assign(static_cast<size_t>(m),
                        std::numeric_limits<double>::quiet_NaN());
  sums.max_value.assign(static_cast<size_t>(m),
                        std::numeric_limits<double>::quiet_NaN());
  for (size_t row = 0; row < values.size(); ++row) {
    const int located = boundaries.Locate(values[row]);
    if (located == BucketBoundaries::kNoBucket) continue;  // NaN: no bucket
    const auto bucket = static_cast<size_t>(located);
    ++sums.u[bucket];
    sums.sum[bucket] += target[row];
    double& lo = sums.min_value[bucket];
    double& hi = sums.max_value[bucket];
    if (std::isnan(lo) || values[row] < lo) lo = values[row];
    if (std::isnan(hi) || values[row] > hi) hi = values[row];
  }
  // NaN rows still count toward the support denominator N.
  sums.total_tuples = static_cast<int64_t>(values.size());
  return sums;
}

double RangeMinValue(const BucketSums& sums, int s, int t) {
  return RangeMinValueImpl(sums.min_value, s, t);
}

double RangeMaxValue(const BucketSums& sums, int s, int t) {
  return RangeMaxValueImpl(sums.max_value, s, t);
}

void CompactEmptyBuckets(BucketSums* sums) {
  OPTRULES_CHECK(sums != nullptr);
  const size_t kept = CompactByU(sums->u, [sums](size_t w, size_t r) {
    sums->u[w] = sums->u[r];
    sums->sum[w] = sums->sum[r];
    sums->min_value[w] = sums->min_value[r];
    sums->max_value[w] = sums->max_value[r];
  });
  sums->u.resize(kept);
  sums->sum.resize(kept);
  sums->min_value.resize(kept);
  sums->max_value.resize(kept);
}

}  // namespace optrules::bucketing
