#include "bucketing/counting.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "bucketing/simd_kernels.h"
#include "common/bytes.h"
#include "common/timer.h"

namespace optrules::bucketing {

namespace {

BucketCounts MakeEmptyCounts(int num_buckets, int num_targets) {
  BucketCounts counts;
  counts.u.assign(static_cast<size_t>(num_buckets), 0);
  counts.v.assign(static_cast<size_t>(num_targets),
                  std::vector<int64_t>(static_cast<size_t>(num_buckets), 0));
  counts.min_value.assign(static_cast<size_t>(num_buckets),
                          std::numeric_limits<double>::quiet_NaN());
  counts.max_value.assign(static_cast<size_t>(num_buckets),
                          std::numeric_limits<double>::quiet_NaN());
  return counts;
}

void UpdateMinMax(BucketCounts* counts, int bucket, double value) {
  // NaN values belong to no bucket (Locate returns kNoBucket), so callers
  // never pass them here; the guard stays as a second line of defense so a
  // NaN can never become a range endpoint.
  if (std::isnan(value)) return;
  const auto b = static_cast<size_t>(bucket);
  double& lo = counts->min_value[b];
  double& hi = counts->max_value[b];
  if (std::isnan(lo) || value < lo) lo = value;
  if (std::isnan(hi) || value > hi) hi = value;
}

/// Shared core of the RangeMinValue overloads: first non-NaN min_value
/// scanning buckets [s, t] forward, -infinity when every bucket in the
/// range only ever saw NaN.
double RangeMinValueImpl(std::span<const double> min_value, int s, int t) {
  OPTRULES_CHECK(0 <= s && s <= t &&
                 t < static_cast<int>(min_value.size()));
  for (int b = s; b <= t; ++b) {
    const double lo = min_value[static_cast<size_t>(b)];
    if (!std::isnan(lo)) return lo;
  }
  return -std::numeric_limits<double>::infinity();
}

/// Shared core of the RangeMaxValue overloads: first non-NaN max_value
/// scanning buckets [s, t] backward, +infinity when none.
double RangeMaxValueImpl(std::span<const double> max_value, int s, int t) {
  OPTRULES_CHECK(0 <= s && s <= t &&
                 t < static_cast<int>(max_value.size()));
  for (int b = t; b >= s; --b) {
    const double hi = max_value[static_cast<size_t>(b)];
    if (!std::isnan(hi)) return hi;
  }
  return std::numeric_limits<double>::infinity();
}

/// Neumaier-compensated accumulation: folds `value` into the running
/// (sum, compensation) pair. The compensated total is sum + compensation,
/// exact to well below one ulp of the naive running sum, which is what
/// lets differently-sharded scans land on identical extracted sums. A
/// non-finite running sum skips the compensation update: the correction
/// terms would compute inf - inf = NaN and turn an honestly infinite (or
/// NaN) total into NaN on extraction.
void NeumaierAdd(double value, double& sum, double& compensation) {
  const double next = sum + value;
  if (std::isfinite(next)) {
    if (std::abs(sum) >= std::abs(value)) {
      compensation += (sum - next) + value;
    } else {
      compensation += (value - next) + sum;
    }
  }
  sum = next;
}

/// The scatter passes of one channel over one batch, templated on the row
/// source so the hot loops compile guard- and indirection-free. kCompact
/// reads rows through `sel` (a compacted ascending index list; m is its
/// length) instead of scanning all m rows densely; kGuard keeps the
/// kNoBucket skip (needed only when the batch has NaN rows -- the caller
/// drops it when the locate pass reported none). Every variant visits the
/// surviving rows in the same ascending order as the guarded reference
/// arm, so u/v/min-max and the per-bucket Neumaier chains are
/// bit-identical across all four instantiations.
template <bool kCompact, bool kGuard>
void ChannelScatterPasses(const storage::ColumnarBatch& batch,
                          const CountChannel& channel, int num_targets,
                          std::span<const double> values,
                          const int32_t* buckets, const int32_t* sel,
                          size_t m, BucketCounts& counts,
                          std::vector<std::vector<double>>& sums,
                          std::vector<std::vector<double>>& comps) {
  // u-count + min/max pass. The ternary min/max form lowers to compares
  // plus conditional moves, where the reference's guarded stores paid a
  // (well-predicted but real) branch per row.
  for (size_t k = 0; k < m; ++k) {
    const size_t row = kCompact ? static_cast<size_t>(sel[k]) : k;
    const int32_t bucket = buckets[row];
    if constexpr (kGuard) {
      if (bucket == BucketBoundaries::kNoBucket) continue;
    }
    const auto b = static_cast<size_t>(bucket);
    ++counts.u[b];
    const double value = values[row];
    double& lo = counts.min_value[b];
    double& hi = counts.max_value[b];
    lo = (std::isnan(lo) || value < lo) ? value : lo;
    hi = (std::isnan(hi) || value > hi) ? value : hi;
  }
  // One v pass per Boolean target.
  if (channel.count_targets) {
    for (int t = 0; t < num_targets; ++t) {
      const std::span<const uint8_t> target = batch.boolean(t);
      std::vector<int64_t>& v = counts.v[static_cast<size_t>(t)];
      for (size_t k = 0; k < m; ++k) {
        const size_t row = kCompact ? static_cast<size_t>(sel[k]) : k;
        const int32_t bucket = buckets[row];
        if constexpr (kGuard) {
          if (bucket == BucketBoundaries::kNoBucket) continue;
        }
        v[static_cast<size_t>(bucket)] +=
            static_cast<int64_t>(target[row] != 0);
      }
    }
  }
  // One Neumaier-compensated sum pass per sum target (strictly sequential
  // scalar chain; row order fixed => bit-identical sums).
  for (size_t s = 0; s < channel.sum_targets.size(); ++s) {
    const std::span<const double> target =
        batch.numeric(channel.sum_targets[s]);
    std::vector<double>& sum = sums[s];
    std::vector<double>& comp = comps[s];
    for (size_t k = 0; k < m; ++k) {
      const size_t row = kCompact ? static_cast<size_t>(sel[k]) : k;
      const int32_t bucket = buckets[row];
      if constexpr (kGuard) {
        if (bucket == BucketBoundaries::kNoBucket) continue;
      }
      NeumaierAdd(target[row], sum[static_cast<size_t>(bucket)],
                  comp[static_cast<size_t>(bucket)]);
    }
  }
}

/// Shared core of the CompactEmptyBuckets overloads: compacts the rows
/// with u[read] != 0 to the front, calling move_row(write, read) for every
/// kept row that moves (u itself included), and returns the kept count for
/// the caller's resizes.
template <typename MoveRow>
size_t CompactByU(std::span<const int64_t> u, MoveRow&& move_row) {
  size_t write = 0;
  for (size_t read = 0; read < u.size(); ++read) {
    if (u[read] == 0) continue;
    if (write != read) move_row(write, read);
    ++write;
  }
  return write;
}

}  // namespace

BucketCounts CountBucketsSlice(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries, size_t begin, size_t end) {
  OPTRULES_CHECK(begin <= end && end <= values.size());
  BucketCounts counts = MakeEmptyCounts(boundaries.num_buckets(),
                                        static_cast<int>(targets.size()));
  for (const std::vector<uint8_t>* target : targets) {
    OPTRULES_CHECK(target != nullptr);
    OPTRULES_CHECK(target->size() == values.size());
  }
  for (size_t row = begin; row < end; ++row) {
    const int bucket = boundaries.Locate(values[row]);
    if (bucket == BucketBoundaries::kNoBucket) continue;  // NaN: no bucket
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
    for (size_t t = 0; t < targets.size(); ++t) {
      if ((*targets[t])[row] != 0) {
        ++counts.v[t][static_cast<size_t>(bucket)];
      }
    }
  }
  // NaN rows still count toward the support denominator N.
  counts.total_tuples = static_cast<int64_t>(end - begin);
  return counts;
}

BucketCounts CountBuckets(
    std::span<const double> values,
    std::span<const std::vector<uint8_t>* const> targets,
    const BucketBoundaries& boundaries) {
  return CountBucketsSlice(values, targets, boundaries, 0, values.size());
}

BucketCounts CountBuckets(std::span<const double> values,
                          const std::vector<uint8_t>& target,
                          const BucketBoundaries& boundaries) {
  const std::vector<uint8_t>* targets[] = {&target};
  return CountBuckets(values, targets, boundaries);
}

BucketCounts CountBucketsConditional(std::span<const double> values,
                                     std::span<const uint8_t> condition1,
                                     std::span<const uint8_t> condition2,
                                     const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(condition1.size() == values.size());
  OPTRULES_CHECK(condition2.size() == values.size());
  BucketCounts counts = MakeEmptyCounts(boundaries.num_buckets(), 1);
  for (size_t row = 0; row < values.size(); ++row) {
    if (condition1[row] == 0) continue;
    const int bucket = boundaries.Locate(values[row]);
    if (bucket == BucketBoundaries::kNoBucket) continue;  // NaN: no bucket
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
    if (condition2[row] != 0) {
      ++counts.v[0][static_cast<size_t>(bucket)];
    }
  }
  // N stays the full table size: the support of a generalized rule is
  // measured against all tuples (Definition 2.2).
  counts.total_tuples = static_cast<int64_t>(values.size());
  return counts;
}

BucketCounts CountBucketsFromStream(storage::TupleStream& stream,
                                    int numeric_attr,
                                    const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(0 <= numeric_attr && numeric_attr < stream.num_numeric());
  BucketCounts counts =
      MakeEmptyCounts(boundaries.num_buckets(), stream.num_boolean());
  storage::TupleView view;
  int64_t total = 0;
  const int num_targets = stream.num_boolean();
  while (stream.Next(&view)) {
    const double value = view.numeric[numeric_attr];
    const int bucket = boundaries.Locate(value);
    ++total;  // NaN rows still count toward the support denominator N
    if (bucket == BucketBoundaries::kNoBucket) continue;
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, value);
    for (int t = 0; t < num_targets; ++t) {
      if (view.booleans[t] != 0) {
        ++counts.v[static_cast<size_t>(t)][static_cast<size_t>(bucket)];
      }
    }
  }
  counts.total_tuples = total;
  return counts;
}

void CompactEmptyBuckets(BucketCounts* counts) {
  OPTRULES_CHECK(counts != nullptr);
  const size_t kept = CompactByU(counts->u, [counts](size_t w, size_t r) {
    counts->u[w] = counts->u[r];
    counts->min_value[w] = counts->min_value[r];
    counts->max_value[w] = counts->max_value[r];
    for (auto& target : counts->v) target[w] = target[r];
  });
  counts->u.resize(kept);
  counts->min_value.resize(kept);
  counts->max_value.resize(kept);
  for (auto& target : counts->v) target.resize(kept);
}

double RangeMinValue(const BucketCounts& counts, int s, int t) {
  return RangeMinValueImpl(counts.min_value, s, t);
}

double RangeMaxValue(const BucketCounts& counts, int s, int t) {
  return RangeMaxValueImpl(counts.max_value, s, t);
}

MultiCountPlan::MultiCountPlan(
    std::vector<const BucketBoundaries*> boundaries, int num_targets) {
  OPTRULES_CHECK(num_targets >= 0);
  MultiCountSpec spec;
  spec.num_targets = num_targets;
  spec.channels.reserve(boundaries.size());
  for (size_t a = 0; a < boundaries.size(); ++a) {
    CountChannel channel;
    channel.column = static_cast<int>(a);
    channel.boundaries = boundaries[a];
    spec.channels.push_back(std::move(channel));
  }
  *this = MultiCountPlan(std::move(spec));
}

size_t MultiCountPlan::EnsureLocateGroup(int column,
                                         const BucketBoundaries* boundaries) {
  // Channels sharing a (column, boundaries) pair -- the C conditional
  // channels of a column, a sum channel riding on a base channel's
  // boundaries, or a grid axis over an already-bucketed column -- share
  // ONE locate group, so PrepareBatch locates the column exactly once per
  // batch for all of them. Boundaries identity is by pointer: the planners
  // hand the same BucketBoundaries object to every channel of a boundary
  // set.
  for (size_t g = 0; g < locate_groups_.size(); ++g) {
    if (locate_groups_[g].column == column &&
        locate_groups_[g].boundaries == boundaries) {
      return g;
    }
  }
  LocateGroup fresh;
  fresh.column = column;
  fresh.boundaries = boundaries;
  locate_groups_.push_back(std::move(fresh));
  return locate_groups_.size() - 1;
}

MultiCountPlan::MultiCountPlan(MultiCountSpec spec) : spec_(std::move(spec)) {
  OPTRULES_CHECK(spec_.num_targets >= 0);
  counts_.reserve(spec_.channels.size());
  sums_.reserve(spec_.channels.size());
  sum_comp_.reserve(spec_.channels.size());
  sums_taken_.assign(spec_.channels.size(), 0);
  scratch_.resize(spec_.channels.size());
  channel_group_.reserve(spec_.channels.size());
  condition_masks_.resize(spec_.conditions.size());
  condition_rows_.resize(spec_.conditions.size());
  for (const CountChannel& channel : spec_.channels) {
    OPTRULES_CHECK(channel.boundaries != nullptr);
    OPTRULES_CHECK(channel.condition == CountChannel::kUnconditional ||
                   (0 <= channel.condition &&
                    channel.condition <
                        static_cast<int>(spec_.conditions.size())));
    counts_.push_back(
        MakeEmptyCounts(channel.boundaries->num_buckets(),
                        channel.count_targets ? spec_.num_targets : 0));
    sums_.emplace_back(
        channel.sum_targets.size(),
        std::vector<double>(
            static_cast<size_t>(channel.boundaries->num_buckets()), 0.0));
    sum_comp_.push_back(sums_.back());
    channel_group_.push_back(
        EnsureLocateGroup(channel.column, channel.boundaries));
  }
  grids_.reserve(spec_.grid_channels.size());
  grid_groups_.reserve(spec_.grid_channels.size());
  grid_scratch_.resize(spec_.grid_channels.size());
  for (const GridChannel& channel : spec_.grid_channels) {
    OPTRULES_CHECK(channel.x_boundaries != nullptr);
    OPTRULES_CHECK(channel.y_boundaries != nullptr);
    GridBucketCounts grid;
    grid.nx = channel.x_boundaries->num_buckets();
    grid.ny = channel.y_boundaries->num_buckets();
    // The scatter pass folds (x, y) into one int32 cell index.
    OPTRULES_CHECK(static_cast<int64_t>(grid.nx) * grid.ny <=
                   std::numeric_limits<int32_t>::max());
    const auto cells =
        static_cast<size_t>(grid.nx) * static_cast<size_t>(grid.ny);
    grid.u.assign(cells, 0);
    grid.v.assign(static_cast<size_t>(spec_.num_targets),
                  std::vector<int64_t>(cells, 0));
    grids_.push_back(std::move(grid));
    grid_groups_.emplace_back(
        EnsureLocateGroup(channel.x_column, channel.x_boundaries),
        EnsureLocateGroup(channel.y_column, channel.y_boundaries));
  }
}

void MultiCountPlan::PrepareBatch(const storage::ColumnarBatch& batch) {
  const size_t rows = static_cast<size_t>(batch.num_rows());
  const simd::Kernels& kernels =
      simd::ForceScalar() ? simd::ScalarKernels() : simd::Active();
  WallTimer timer;
  for (size_t c = 0; c < spec_.conditions.size(); ++c) {
    std::vector<uint8_t>& mask = condition_masks_[c];
    mask.assign(rows, 1);
    for (const int column : spec_.conditions[c]) {
      const std::span<const uint8_t> condition = batch.boolean(column);
      kernels.mask_and(mask.data(), condition.data(), rows);
    }
    // Compact the mask to an ascending row-index list once, so every
    // conditional channel's scatter passes iterate only satisfying rows.
    std::vector<int32_t>& rows_list = condition_rows_[c];
    rows_list.resize(rows);
    const size_t kept =
        simd::CompactMaskIndices(mask.data(), rows, rows_list.data());
    rows_list.resize(kept);
  }
  if (phase_times_ != nullptr) {
    phase_times_->mask_seconds += timer.ElapsedSeconds();
    timer.Reset();
  }
  // Shared bucket-index cache: each distinct (column, boundaries) pair is
  // located once per batch, no matter how many channels consume it.
  for (LocateGroup& group : locate_groups_) {
    const std::span<const double> values = batch.numeric(group.column);
    group.buckets.resize(values.size());
    group.no_bucket =
        group.boundaries->LocateBatchWithKernels(kernels, values,
                                                 group.buckets);
  }
  if (phase_times_ != nullptr) {
    phase_times_->locate_seconds += timer.ElapsedSeconds();
  }
}

void MultiCountPlan::AccumulateChannel(const storage::ColumnarBatch& batch,
                                       int channel_index) {
  OPTRULES_CHECK(0 <= channel_index && channel_index < num_channels());
  OPTRULES_CHECK(batch.num_boolean() == spec_.num_targets);
  const auto ci = static_cast<size_t>(channel_index);
  const CountChannel& channel = spec_.channels[ci];
  const std::span<const double> values = batch.numeric(channel.column);
  const size_t rows = values.size();
  BucketCounts& counts = counts_[ci];

  const LocateGroup& group = locate_groups_[channel_group_[ci]];
  const std::vector<int32_t>& located = group.buckets;
  OPTRULES_CHECK(located.size() == rows);  // PrepareBatch ran for the batch
  const int32_t* buckets = located.data();
  WallTimer timer;

  if (!simd::ForceScalar()) {
    // Fast arm. Conditional channels iterate their compacted row-index
    // list (PrepareBatch) instead of overlaying a ~50/50 mask -- the
    // overlay cost one branch mispredict per mask flip in every scatter
    // pass. The kNoBucket guard is dropped entirely when the locate pass
    // saw no NaN in this column (the common case).
    const int32_t* sel = nullptr;
    size_t m = rows;
    if (channel.condition != CountChannel::kUnconditional) {
      const auto cond = static_cast<size_t>(channel.condition);
      OPTRULES_CHECK(condition_masks_[cond].size() == rows);
      sel = condition_rows_[cond].data();
      m = condition_rows_[cond].size();
    }
    const bool guard = group.no_bucket != 0;
    if (sel != nullptr) {
      if (guard) {
        ChannelScatterPasses<true, true>(batch, channel, spec_.num_targets,
                                         values, buckets, sel, m, counts,
                                         sums_[ci], sum_comp_[ci]);
      } else {
        ChannelScatterPasses<true, false>(batch, channel, spec_.num_targets,
                                          values, buckets, sel, m, counts,
                                          sums_[ci], sum_comp_[ci]);
      }
    } else if (guard) {
      ChannelScatterPasses<false, true>(batch, channel, spec_.num_targets,
                                        values, buckets, sel, m, counts,
                                        sums_[ci], sum_comp_[ci]);
    } else {
      ChannelScatterPasses<false, false>(batch, channel, spec_.num_targets,
                                         values, buckets, sel, m, counts,
                                         sums_[ci], sum_comp_[ci]);
    }
    counts.total_tuples += static_cast<int64_t>(rows);
    if (phase_times_ != nullptr) {
      phase_times_->scatter_seconds += timer.ElapsedSeconds();
    }
    return;
  }

  // Reference arm (OPTRULES_FORCE_SCALAR=1): the pre-SIMD guarded scatter,
  // kept verbatim as the bit-identity baseline the differential tests pin.
  // Conditional channels overlay the condition mask onto the shared cache
  // once (into per-channel scratch, so concurrent channels of one plan
  // never share mutable state); the scatter passes below then treat
  // condition-failing rows exactly like NaN rows.
  if (channel.condition != CountChannel::kUnconditional) {
    const std::vector<uint8_t>& mask =
        condition_masks_[static_cast<size_t>(channel.condition)];
    OPTRULES_CHECK(mask.size() == rows);
    std::vector<int32_t>& masked = scratch_[ci];
    masked.resize(rows);
    for (size_t row = 0; row < rows; ++row) {
      masked[row] =
          mask[row] != 0 ? buckets[row] : BucketBoundaries::kNoBucket;
    }
    buckets = masked.data();
  }

  // u-count pass (with min/max): the kNoBucket skip is the only
  // data-dependent branch and fires only for NaN / condition-failing rows.
  for (size_t row = 0; row < rows; ++row) {
    const int32_t bucket = buckets[row];
    if (bucket == BucketBoundaries::kNoBucket) continue;
    ++counts.u[static_cast<size_t>(bucket)];
    UpdateMinMax(&counts, bucket, values[row]);
  }
  // One v pass per Boolean target over the cached indices.
  if (channel.count_targets) {
    for (int t = 0; t < spec_.num_targets; ++t) {
      const std::span<const uint8_t> target = batch.boolean(t);
      std::vector<int64_t>& v = counts.v[static_cast<size_t>(t)];
      for (size_t row = 0; row < rows; ++row) {
        const int32_t bucket = buckets[row];
        if (bucket == BucketBoundaries::kNoBucket) continue;
        v[static_cast<size_t>(bucket)] +=
            static_cast<int64_t>(target[row] != 0);
      }
    }
  }
  // One Neumaier-compensated sum pass per sum target (row order fixed, so
  // the serial chain is bit-identical to the compensated reference
  // kernel).
  for (size_t k = 0; k < channel.sum_targets.size(); ++k) {
    const std::span<const double> target =
        batch.numeric(channel.sum_targets[k]);
    std::vector<double>& sum = sums_[ci][k];
    std::vector<double>& comp = sum_comp_[ci][k];
    for (size_t row = 0; row < rows; ++row) {
      const int32_t bucket = buckets[row];
      if (bucket == BucketBoundaries::kNoBucket) continue;
      NeumaierAdd(target[row], sum[static_cast<size_t>(bucket)],
                  comp[static_cast<size_t>(bucket)]);
    }
  }
  counts.total_tuples += static_cast<int64_t>(rows);
  if (phase_times_ != nullptr) {
    phase_times_->scatter_seconds += timer.ElapsedSeconds();
  }
}

void MultiCountPlan::AccumulateGridChannel(const storage::ColumnarBatch& batch,
                                           int grid_channel) {
  OPTRULES_CHECK(0 <= grid_channel && grid_channel < num_grid_channels());
  OPTRULES_CHECK(batch.num_boolean() == spec_.num_targets);
  const auto gi = static_cast<size_t>(grid_channel);
  GridBucketCounts& grid = grids_[gi];
  const std::vector<int32_t>& x_located =
      locate_groups_[grid_groups_[gi].first].buckets;
  const std::vector<int32_t>& y_located =
      locate_groups_[grid_groups_[gi].second].buckets;
  const size_t rows = static_cast<size_t>(batch.num_rows());
  OPTRULES_CHECK(x_located.size() == rows);  // PrepareBatch ran for the batch
  OPTRULES_CHECK(y_located.size() == rows);

  WallTimer timer;
  // Fold the two cached axis indices into one flat cell index per row; a
  // NaN in EITHER axis (kNoBucket) sends the row to no cell, mirroring the
  // 1-D policy per axis pair. Axis indices are -1 or non-negative, so the
  // kernels' bitwise-or miss test is exactly the two-sided kNoBucket
  // check, on every arm.
  std::vector<int32_t>& cells = grid_scratch_[gi];
  cells.resize(rows);
  const simd::Kernels& kernels =
      simd::ForceScalar() ? simd::ScalarKernels() : simd::Active();
  kernels.fold_cells(x_located.data(), y_located.data(), rows, grid.nx,
                     cells.data());
  for (size_t row = 0; row < rows; ++row) {
    const int32_t cell = cells[row];
    if (cell == BucketBoundaries::kNoBucket) continue;
    ++grid.u[static_cast<size_t>(cell)];
  }
  for (int t = 0; t < spec_.num_targets; ++t) {
    const std::span<const uint8_t> target = batch.boolean(t);
    std::vector<int64_t>& v = grid.v[static_cast<size_t>(t)];
    for (size_t row = 0; row < rows; ++row) {
      const int32_t cell = cells[row];
      if (cell == BucketBoundaries::kNoBucket) continue;
      v[static_cast<size_t>(cell)] += static_cast<int64_t>(target[row] != 0);
    }
  }
  // NaN rows still count toward the support denominator N.
  grid.total_tuples += static_cast<int64_t>(rows);
  if (phase_times_ != nullptr) {
    phase_times_->scatter_seconds += timer.ElapsedSeconds();
  }
}

void MultiCountPlan::Accumulate(const storage::ColumnarBatch& batch) {
  PrepareBatch(batch);
  for (int channel = 0; channel < num_channels(); ++channel) {
    AccumulateChannel(batch, channel);
  }
  for (int grid = 0; grid < num_grid_channels(); ++grid) {
    AccumulateGridChannel(batch, grid);
  }
}

void MultiCountPlan::Merge(const MultiCountPlan& other) {
  OPTRULES_CHECK(other.num_channels() == num_channels());
  OPTRULES_CHECK(other.spec_.num_targets == spec_.num_targets);
  for (int channel = 0; channel < num_channels(); ++channel) {
    const auto ci = static_cast<size_t>(channel);
    BucketCounts& mine = counts_[ci];
    const BucketCounts& theirs = other.counts_[ci];
    OPTRULES_CHECK(theirs.num_buckets() == mine.num_buckets());
    OPTRULES_CHECK(theirs.num_targets() == mine.num_targets());
    for (int b = 0; b < mine.num_buckets(); ++b) {
      const auto bi = static_cast<size_t>(b);
      mine.u[bi] += theirs.u[bi];
      for (int t = 0; t < mine.num_targets(); ++t) {
        mine.v[static_cast<size_t>(t)][bi] +=
            theirs.v[static_cast<size_t>(t)][bi];
      }
      // The min and max merges are deliberately independent guards: u/v
      // and the two endpoints must stay mergeable even if a future update
      // touches only one of them.
      if (!std::isnan(theirs.min_value[bi]) &&
          (std::isnan(mine.min_value[bi]) ||
           theirs.min_value[bi] < mine.min_value[bi])) {
        mine.min_value[bi] = theirs.min_value[bi];
      }
      if (!std::isnan(theirs.max_value[bi]) &&
          (std::isnan(mine.max_value[bi]) ||
           theirs.max_value[bi] > mine.max_value[bi])) {
        mine.max_value[bi] = theirs.max_value[bi];
      }
    }
    OPTRULES_CHECK(other.sums_[ci].size() == sums_[ci].size());
    for (size_t k = 0; k < sums_[ci].size(); ++k) {
      std::vector<double>& mine_sum = sums_[ci][k];
      std::vector<double>& mine_comp = sum_comp_[ci][k];
      const std::vector<double>& their_sum = other.sums_[ci][k];
      const std::vector<double>& their_comp = other.sum_comp_[ci][k];
      for (size_t b = 0; b < mine_sum.size(); ++b) {
        // Compensated merge: fold the partial's running sum in with
        // Neumaier, then carry its compensation term over, so shard
        // borders introduce no fresh rounding.
        NeumaierAdd(their_sum[b], mine_sum[b], mine_comp[b]);
        mine_comp[b] += their_comp[b];
      }
    }
    mine.total_tuples += theirs.total_tuples;
  }
  OPTRULES_CHECK(other.num_grid_channels() == num_grid_channels());
  for (int g = 0; g < num_grid_channels(); ++g) {
    const auto gi = static_cast<size_t>(g);
    GridBucketCounts& mine = grids_[gi];
    const GridBucketCounts& theirs = other.grids_[gi];
    OPTRULES_CHECK(theirs.nx == mine.nx && theirs.ny == mine.ny);
    OPTRULES_CHECK(theirs.num_targets() == mine.num_targets());
    for (size_t cell = 0; cell < mine.u.size(); ++cell) {
      mine.u[cell] += theirs.u[cell];
    }
    for (int t = 0; t < mine.num_targets(); ++t) {
      const auto ti = static_cast<size_t>(t);
      for (size_t cell = 0; cell < mine.v[ti].size(); ++cell) {
        mine.v[ti][cell] += theirs.v[ti][cell];
      }
    }
    mine.total_tuples += theirs.total_tuples;
  }
}

void MultiCountPlan::AddSkippedRows(int64_t rows) {
  OPTRULES_CHECK(rows >= 0);
  for (BucketCounts& counts : counts_) counts.total_tuples += rows;
  for (GridBucketCounts& grid : grids_) grid.total_tuples += rows;
}

storage::ScanPruneSpec DerivePruneSpec(const MultiCountSpec& spec) {
  storage::ScanPruneSpec prune;
  prune.units.reserve(spec.channels.size() + spec.grid_channels.size());
  for (const CountChannel& channel : spec.channels) {
    storage::ScanPruneSpec::Unit unit;
    unit.numeric_columns.push_back(channel.column);
    if (channel.condition != CountChannel::kUnconditional) {
      unit.boolean_true =
          spec.conditions[static_cast<size_t>(channel.condition)];
    }
    prune.units.push_back(std::move(unit));
  }
  for (const GridChannel& grid : spec.grid_channels) {
    storage::ScanPruneSpec::Unit unit;
    unit.numeric_columns.push_back(grid.x_column);
    unit.numeric_columns.push_back(grid.y_column);
    prune.units.push_back(std::move(unit));
  }
  return prune;
}

BucketCounts MultiCountPlan::TakeCounts(int channel) {
  OPTRULES_CHECK(0 <= channel && channel < num_channels());
  return std::move(counts_[static_cast<size_t>(channel)]);
}

GridBucketCounts MultiCountPlan::TakeGridCounts(int grid_channel) {
  OPTRULES_CHECK(0 <= grid_channel && grid_channel < num_grid_channels());
  return std::move(grids_[static_cast<size_t>(grid_channel)]);
}

BucketSums MultiCountPlan::MakeBucketSums(int channel, int k) const {
  OPTRULES_CHECK(0 <= channel && channel < num_channels());
  const auto ci = static_cast<size_t>(channel);
  OPTRULES_CHECK(0 <= k && k < static_cast<int>(sums_[ci].size()));
  const BucketCounts& counts = counts_[ci];
  BucketSums sums;
  sums.u = counts.u;
  sums.sum = sums_[ci][static_cast<size_t>(k)];
  const std::vector<double>& comp = sum_comp_[ci][static_cast<size_t>(k)];
  // The extracted per-bucket sum is the compensated total.
  for (size_t b = 0; b < sums.sum.size(); ++b) sums.sum[b] += comp[b];
  sums.min_value = counts.min_value;
  sums.max_value = counts.max_value;
  sums.total_tuples = counts.total_tuples;
  return sums;
}

BucketSums MultiCountPlan::TakeBucketSums(int channel, int k) {
  OPTRULES_CHECK(0 <= channel && channel < num_channels());
  const auto ci = static_cast<size_t>(channel);
  OPTRULES_CHECK(0 <= k && k < static_cast<int>(sums_[ci].size()));
  std::vector<double>& source = sums_[ci][static_cast<size_t>(k)];
  BucketCounts& counts = counts_[ci];
  // A double take would silently hand out an empty sum array: the taken
  // counter catches takes past the channel's target count, and the size
  // equality catches re-taking a cleared k while others are outstanding.
  OPTRULES_CHECK(sums_taken_[ci] < sums_[ci].size());
  OPTRULES_CHECK(static_cast<int>(source.size()) == counts.num_buckets());
  BucketSums sums;
  sums.sum = std::move(source);
  source.clear();
  std::vector<double>& comp = sum_comp_[ci][static_cast<size_t>(k)];
  // The extracted per-bucket sum is the compensated total.
  for (size_t b = 0; b < sums.sum.size(); ++b) sums.sum[b] += comp[b];
  comp.clear();
  sums.total_tuples = counts.total_tuples;
  ++sums_taken_[ci];
  if (sums_taken_[ci] == sums_[ci].size()) {
    // Last outstanding sum target of the channel: move the parallel arrays
    // instead of deep-copying them.
    sums.u = std::move(counts.u);
    sums.min_value = std::move(counts.min_value);
    sums.max_value = std::move(counts.max_value);
    counts.u.clear();
    counts.min_value.clear();
    counts.max_value.clear();
  } else {
    sums.u = counts.u;
    sums.min_value = counts.min_value;
    sums.max_value = counts.max_value;
  }
  return sums;
}

namespace {

// ---- partial-plan wire payload (AppendPartialState / LoadPartialState) ----
//
// Layout: a magic + version word, then every accumulator array in spec
// order with a 64-bit element-count prefix (common/bytes.h primitives).
// Doubles are bit-copied, so a deserialized partial merges bit-identically
// to the in-process one. The encoding is native-endian: the distributed
// layer ships partials between processes of one architecture (pipes on one
// machine, or a homogeneous cluster), and the header word doubles as an
// endianness check.

constexpr uint32_t kPartialStateMagic = 0x4d435053;  // "MCPS"
constexpr uint32_t kPartialStateVersion = 1;

using bytes::AppendArray;
using bytes::AppendScalar;

}  // namespace

void MultiCountPlan::AppendPartialState(std::vector<uint8_t>* out) const {
  OPTRULES_CHECK(out != nullptr);
  AppendScalar(out, kPartialStateMagic);
  AppendScalar(out, kPartialStateVersion);
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(counts_.size()));
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(grids_.size()));
  for (size_t ci = 0; ci < counts_.size(); ++ci) {
    const BucketCounts& counts = counts_[ci];
    AppendScalar<int64_t>(out, counts.total_tuples);
    AppendArray(out, counts.u);
    AppendScalar<uint32_t>(out, static_cast<uint32_t>(counts.v.size()));
    for (const std::vector<int64_t>& v : counts.v) AppendArray(out, v);
    AppendArray(out, counts.min_value);
    AppendArray(out, counts.max_value);
    AppendScalar<uint32_t>(out, static_cast<uint32_t>(sums_[ci].size()));
    for (size_t k = 0; k < sums_[ci].size(); ++k) {
      AppendArray(out, sums_[ci][k]);
      AppendArray(out, sum_comp_[ci][k]);
    }
  }
  for (const GridBucketCounts& grid : grids_) {
    AppendScalar<int32_t>(out, grid.nx);
    AppendScalar<int32_t>(out, grid.ny);
    AppendScalar<int64_t>(out, grid.total_tuples);
    AppendArray(out, grid.u);
    AppendScalar<uint32_t>(out, static_cast<uint32_t>(grid.v.size()));
    for (const std::vector<int64_t>& v : grid.v) AppendArray(out, v);
  }
}

Status MultiCountPlan::LoadPartialState(std::span<const uint8_t> bytes) {
  bytes::ByteReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&magic));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&version));
  if (magic != kPartialStateMagic) {
    return Status::Corruption("bad partial plan state magic");
  }
  if (version != kPartialStateVersion) {
    return Status::Corruption("unsupported partial plan state version");
  }
  uint32_t num_channels = 0;
  uint32_t num_grids = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_channels));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_grids));
  if (num_channels != counts_.size() || num_grids != grids_.size()) {
    return Status::Corruption("partial plan state shape mismatch");
  }
  for (size_t ci = 0; ci < counts_.size(); ++ci) {
    BucketCounts& counts = counts_[ci];
    const auto buckets = static_cast<size_t>(counts.num_buckets());
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&counts.total_tuples));
    OPTRULES_RETURN_IF_ERROR(reader.ReadArrayExact(&counts.u, buckets));
    uint32_t num_targets = 0;
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_targets));
    if (num_targets != counts.v.size()) {
      return Status::Corruption("partial plan state shape mismatch");
    }
    for (std::vector<int64_t>& v : counts.v) {
      OPTRULES_RETURN_IF_ERROR(reader.ReadArrayExact(&v, buckets));
    }
    OPTRULES_RETURN_IF_ERROR(reader.ReadArrayExact(&counts.min_value, buckets));
    OPTRULES_RETURN_IF_ERROR(reader.ReadArrayExact(&counts.max_value, buckets));
    uint32_t num_sums = 0;
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_sums));
    if (num_sums != sums_[ci].size()) {
      return Status::Corruption("partial plan state shape mismatch");
    }
    for (size_t k = 0; k < sums_[ci].size(); ++k) {
      OPTRULES_RETURN_IF_ERROR(reader.ReadArrayExact(&sums_[ci][k], buckets));
      OPTRULES_RETURN_IF_ERROR(reader.ReadArrayExact(&sum_comp_[ci][k], buckets));
    }
  }
  for (GridBucketCounts& grid : grids_) {
    int32_t nx = 0;
    int32_t ny = 0;
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&nx));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&ny));
    if (nx != grid.nx || ny != grid.ny) {
      return Status::Corruption("partial plan state shape mismatch");
    }
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&grid.total_tuples));
    OPTRULES_RETURN_IF_ERROR(reader.ReadArrayExact(&grid.u, grid.u.size()));
    uint32_t num_targets = 0;
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_targets));
    if (num_targets != grid.v.size()) {
      return Status::Corruption("partial plan state shape mismatch");
    }
    for (std::vector<int64_t>& v : grid.v) {
      OPTRULES_RETURN_IF_ERROR(reader.ReadArrayExact(&v, v.size()));
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in partial plan state");
  }
  return Status::Ok();
}

BucketSums CountBucketSums(std::span<const double> values,
                           std::span<const double> target,
                           const BucketBoundaries& boundaries) {
  OPTRULES_CHECK(target.size() == values.size());
  const int m = boundaries.num_buckets();
  BucketSums sums;
  sums.u.assign(static_cast<size_t>(m), 0);
  sums.sum.assign(static_cast<size_t>(m), 0.0);
  // Neumaier compensation terms, folded into sums.sum before returning so
  // this reference kernel is bit-identical to the compensated plan path.
  std::vector<double> comp(static_cast<size_t>(m), 0.0);
  sums.min_value.assign(static_cast<size_t>(m),
                        std::numeric_limits<double>::quiet_NaN());
  sums.max_value.assign(static_cast<size_t>(m),
                        std::numeric_limits<double>::quiet_NaN());
  for (size_t row = 0; row < values.size(); ++row) {
    const int located = boundaries.Locate(values[row]);
    if (located == BucketBoundaries::kNoBucket) continue;  // NaN: no bucket
    const auto bucket = static_cast<size_t>(located);
    ++sums.u[bucket];
    NeumaierAdd(target[row], sums.sum[bucket], comp[bucket]);
    double& lo = sums.min_value[bucket];
    double& hi = sums.max_value[bucket];
    if (std::isnan(lo) || values[row] < lo) lo = values[row];
    if (std::isnan(hi) || values[row] > hi) hi = values[row];
  }
  for (size_t b = 0; b < sums.sum.size(); ++b) sums.sum[b] += comp[b];
  // NaN rows still count toward the support denominator N.
  sums.total_tuples = static_cast<int64_t>(values.size());
  return sums;
}

double RangeMinValue(const BucketSums& sums, int s, int t) {
  return RangeMinValueImpl(sums.min_value, s, t);
}

double RangeMaxValue(const BucketSums& sums, int s, int t) {
  return RangeMaxValueImpl(sums.max_value, s, t);
}

void CompactEmptyBuckets(BucketSums* sums) {
  OPTRULES_CHECK(sums != nullptr);
  const size_t kept = CompactByU(sums->u, [sums](size_t w, size_t r) {
    sums->u[w] = sums->u[r];
    sums->sum[w] = sums->sum[r];
    sums->min_value[w] = sums->min_value[r];
    sums->max_value[w] = sums->max_value[r];
  });
  sums->u.resize(kept);
  sums->sum.resize(kept);
  sums->min_value.resize(kept);
  sums->max_value.resize(kept);
}

}  // namespace optrules::bucketing
