#include "bucketing/gk_sketch.h"

#include <algorithm>
#include <cmath>

namespace optrules::bucketing {

GkQuantileSketch::GkQuantileSketch(double epsilon) : epsilon_(epsilon) {
  OPTRULES_CHECK(0.0 < epsilon && epsilon < 0.5);
}

void GkQuantileSketch::Add(double value) {
  // NaN values belong to no bucket (the repo-wide NaN policy); letting
  // one into the summary would corrupt the rank invariants because NaN
  // compares false against everything.
  if (std::isnan(value)) return;
  // Locate the insertion point (first tuple with a larger value).
  auto it = std::upper_bound(
      summary_.begin(), summary_.end(), value,
      [](double v, const Tuple& t) { return v < t.value; });
  Tuple tuple;
  tuple.value = value;
  tuple.g = 1;
  // New extreme values have exact rank; interior insertions inherit the
  // full allowed uncertainty.
  if (it == summary_.begin() || it == summary_.end()) {
    tuple.delta = 0;
  } else {
    tuple.delta = static_cast<int64_t>(
                      std::floor(2.0 * epsilon_ *
                                 static_cast<double>(count_))) -
                  1;
    if (tuple.delta < 0) tuple.delta = 0;
  }
  summary_.insert(it, tuple);
  ++count_;
  // Compress every 1/(2*eps) insertions (the GK schedule).
  if (++inserts_since_compress_ >=
      static_cast<int64_t>(1.0 / (2.0 * epsilon_))) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void GkQuantileSketch::Compress() {
  if (summary_.size() < 3) return;
  const auto threshold = static_cast<int64_t>(
      std::floor(2.0 * epsilon_ * static_cast<double>(count_)));
  // Merge tuple i into i+1 when the combined uncertainty stays within the
  // budget. Never merge the first or last tuple (they pin the extremes).
  std::vector<Tuple> compressed;
  compressed.reserve(summary_.size());
  compressed.push_back(summary_.front());
  int64_t pending_g = 0;
  for (size_t i = 1; i + 1 < summary_.size(); ++i) {
    const Tuple& current = summary_[i];
    const Tuple& next = summary_[i + 1];
    if (pending_g + current.g + next.g + next.delta < threshold) {
      // current is absorbed into next.
      pending_g += current.g;
    } else {
      Tuple kept = current;
      kept.g += pending_g;
      pending_g = 0;
      compressed.push_back(kept);
    }
  }
  Tuple last = summary_.back();
  last.g += pending_g;
  compressed.push_back(last);
  summary_ = std::move(compressed);
}

double GkQuantileSketch::Quantile(double phi) const {
  OPTRULES_CHECK(count_ > 0);
  OPTRULES_CHECK(0.0 <= phi && phi <= 1.0);
  // Target rank in 1..n; the GK invariant (g_i + delta_i <= 2*eps*n)
  // guarantees some tuple has both rmin and rmax within eps*n of it.
  const double n = static_cast<double>(count_);
  const double target = std::clamp(std::ceil(phi * n), 1.0, n);
  const double slack = epsilon_ * n;
  int64_t rmin = 0;
  for (const Tuple& tuple : summary_) {
    rmin += tuple.g;
    const int64_t rmax = rmin + tuple.delta;
    if (target - static_cast<double>(rmin) <= slack &&
        static_cast<double>(rmax) - target <= slack) {
      return tuple.value;
    }
  }
  return summary_.back().value;
}

BucketBoundaries BoundariesFromGkSketch(const GkQuantileSketch& sketch,
                                        int num_buckets) {
  OPTRULES_CHECK(num_buckets >= 1);
  OPTRULES_CHECK(sketch.count() > 0);
  std::vector<double> cuts;
  cuts.reserve(static_cast<size_t>(num_buckets) - 1);
  for (int i = 1; i < num_buckets; ++i) {
    cuts.push_back(sketch.Quantile(static_cast<double>(i) /
                                   static_cast<double>(num_buckets)));
  }
  std::sort(cuts.begin(), cuts.end());
  return BucketBoundaries::FromCutPoints(std::move(cuts));
}

BucketBoundaries BuildEquiDepthBoundariesGk(std::span<const double> values,
                                            int num_buckets,
                                            double epsilon) {
  OPTRULES_CHECK(num_buckets >= 1);
  GkQuantileSketch sketch(epsilon);
  for (const double value : values) sketch.Add(value);
  // Guard on the sketch count, not values.empty(): Add() drops NaN (the
  // repo-wide NaN policy), so a non-empty all-NaN column also leaves the
  // sketch empty and gets the single all-covering bucket.
  if (sketch.count() == 0) return BucketBoundaries::FromCutPoints({});
  return BoundariesFromGkSketch(sketch, num_buckets);
}

BucketBoundaries BuildEquiDepthBoundariesGkFromStream(
    storage::TupleStream& stream, int numeric_attr, int num_buckets,
    double epsilon) {
  OPTRULES_CHECK(num_buckets >= 1);
  OPTRULES_CHECK(0 <= numeric_attr && numeric_attr < stream.num_numeric());
  GkQuantileSketch sketch(epsilon);
  storage::TupleView view;
  while (stream.Next(&view)) sketch.Add(view.numeric[numeric_attr]);
  if (sketch.count() == 0) return BucketBoundaries::FromCutPoints({});
  return BoundariesFromGkSketch(sketch, num_buckets);
}

}  // namespace optrules::bucketing
