// Exact rational thresholds.
//
// Confidence and support thresholds enter the optimized-rule algorithms in
// comparisons like `sum(v) / sum(u) >= theta`. Representing theta as an
// int64 fraction lets every comparison be carried out in 128-bit integer
// arithmetic, making the core algorithms exact (see DESIGN.md, "Numeric
// exactness contract").

#ifndef OPTRULES_COMMON_RATIO_H_
#define OPTRULES_COMMON_RATIO_H_

#include <cstdint>
#include <numeric>
#include <string>

#include "common/logging.h"

namespace optrules {

/// A non-negative rational number `num/den` with `den > 0`.
///
/// Ratios are normalized (gcd-reduced) on construction. Comparison against
/// integer-valued fractions is exact via 128-bit cross multiplication.
class Ratio {
 public:
  /// Zero.
  constexpr Ratio() : num_(0), den_(1) {}

  /// Constructs `num/den`; requires den > 0 and num >= 0.
  Ratio(int64_t num, int64_t den) : num_(num), den_(den) {
    OPTRULES_CHECK(den > 0);
    OPTRULES_CHECK(num >= 0);
    const int64_t g = std::gcd(num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
  }

  /// Converts a double in [0, 2^30] to the nearest Ratio with denominator
  /// 2^30. Exact for the common case of thresholds like 0.5 or 0.05 given
  /// with <= 30 significant bits; callers needing full control should pass
  /// an explicit fraction.
  static Ratio FromDouble(double value) {
    OPTRULES_CHECK(value >= 0.0);
    constexpr int64_t kDen = int64_t{1} << 30;
    OPTRULES_CHECK(value <= static_cast<double>(kDen));
    const auto num =
        static_cast<int64_t>(value * static_cast<double>(kDen) + 0.5);
    return Ratio(num, kDen);
  }

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  /// The value as a double (inexact for large terms).
  double ToDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// "num/den".
  std::string ToString() const {
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

  /// Exact test of `a/b >= this` for b > 0; a may be any int64.
  bool LessOrEqualTo(int64_t a, int64_t b) const {
    OPTRULES_DCHECK(b > 0);
    return static_cast<__int128>(a) * den_ >=
           static_cast<__int128>(num_) * b;
  }

  /// Exact test of `a/b < this` for b > 0.
  bool GreaterThan(int64_t a, int64_t b) const { return !LessOrEqualTo(a, b); }

  friend bool operator==(const Ratio& x, const Ratio& y) {
    return x.num_ == y.num_ && x.den_ == y.den_;
  }
  friend bool operator<(const Ratio& x, const Ratio& y) {
    return static_cast<__int128>(x.num_) * y.den_ <
           static_cast<__int128>(y.num_) * x.den_;
  }

 private:
  int64_t num_;
  int64_t den_;
};

}  // namespace optrules

#endif  // OPTRULES_COMMON_RATIO_H_
