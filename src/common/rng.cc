#include "common/rng.h"

#include <cmath>

namespace optrules {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  OPTRULES_CHECK(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  OPTRULES_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(Next64());
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextUniform(double lo, double hi) {
  OPTRULES_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform on two uniforms; u1 kept away from zero.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

void Rng::Jump() {
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      Next64();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

}  // namespace optrules
