// Byte-buffer serialization primitives shared by the partial-plan state
// encoding (bucketing::MultiCountPlan) and the distributed wire protocol
// (dist/wire): native-endian scalar/array appends over std::vector<uint8_t>
// and a bounds-checked reader whose length checks are written against the
// REMAINING byte count, so hostile 64-bit length prefixes can neither
// overflow the cursor arithmetic nor trigger multi-GB allocations.

#ifndef OPTRULES_COMMON_BYTES_H_
#define OPTRULES_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace optrules::bytes {

/// Incremental 64-bit FNV-1a. One definition serves every durable hash
/// in the repo (the manifest schema-integrity hash and the kHash
/// partition router both feed persisted formats, so their constants must
/// never diverge).
class Fnv1a {
 public:
  explicit Fnv1a(uint64_t seed = 0) : hash_(kOffsetBasis ^ seed) {}

  void Mix(uint8_t byte) {
    hash_ ^= byte;
    hash_ *= kPrime;
  }
  void Mix(std::span<const uint8_t> data) {
    for (const uint8_t byte : data) Mix(byte);
  }

  uint64_t digest() const { return hash_; }

 private:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr uint64_t kPrime = 0x100000001b3ull;

  uint64_t hash_;
};

/// Appends one trivially-copyable scalar in native byte order.
template <typename T>
void AppendScalar(std::vector<uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

/// Appends a u64 element count followed by the raw array bytes.
template <typename T>
void AppendArray(std::vector<uint8_t>* out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendScalar<uint64_t>(out, static_cast<uint64_t>(values.size()));
  const size_t offset = out->size();
  out->resize(offset + values.size() * sizeof(T));
  if (!values.empty()) {
    std::memcpy(out->data() + offset, values.data(),
                values.size() * sizeof(T));
  }
}

/// Appends a u64 byte count followed by the string bytes.
inline void AppendString(std::vector<uint8_t>* out,
                         const std::string& value) {
  AppendScalar<uint64_t>(out, static_cast<uint64_t>(value.size()));
  out->insert(out->end(), value.begin(), value.end());
}

/// Bounds-checked cursor over an encoded buffer. Every read validates
/// against the remaining bytes before touching memory and fails with
/// Corruption instead of crashing on truncated or hostile input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  Status ReadScalar(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > remaining()) {
      return Status::Corruption("truncated byte stream");
    }
    std::memcpy(value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return Status::Ok();
  }

  /// Reads a count-prefixed array; the count is validated against the
  /// remaining bytes BEFORE any allocation.
  template <typename T>
  Status ReadArray(std::vector<T>* values) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    OPTRULES_RETURN_IF_ERROR(ReadScalar(&count));
    if (count > remaining() / sizeof(T)) {
      return Status::Corruption("truncated byte stream");
    }
    const size_t byte_count = static_cast<size_t>(count) * sizeof(T);
    values->resize(static_cast<size_t>(count));
    if (count != 0) {
      std::memcpy(values->data(), bytes_.data() + offset_, byte_count);
    }
    offset_ += byte_count;
    return Status::Ok();
  }

  /// ReadArray variant for shapes fixed by out-of-band context: any other
  /// element count is Corruption.
  template <typename T>
  Status ReadArrayExact(std::vector<T>* values, size_t expected_size) {
    uint64_t count = 0;
    OPTRULES_RETURN_IF_ERROR(ReadScalar(&count));
    if (count != expected_size) {
      return Status::Corruption("byte stream shape mismatch");
    }
    const size_t byte_count = static_cast<size_t>(count) * sizeof(T);
    if (byte_count > remaining()) {
      return Status::Corruption("truncated byte stream");
    }
    values->resize(static_cast<size_t>(count));
    if (count != 0) {
      std::memcpy(values->data(), bytes_.data() + offset_, byte_count);
    }
    offset_ += byte_count;
    return Status::Ok();
  }

  Status ReadString(std::string* value) {
    uint64_t size = 0;
    OPTRULES_RETURN_IF_ERROR(ReadScalar(&size));
    if (size > remaining()) {
      return Status::Corruption("truncated byte stream");
    }
    value->assign(reinterpret_cast<const char*>(bytes_.data()) + offset_,
                  static_cast<size_t>(size));
    offset_ += static_cast<size_t>(size);
    return Status::Ok();
  }

  size_t remaining() const { return bytes_.size() - offset_; }
  bool AtEnd() const { return offset_ == bytes_.size(); }

 private:
  std::span<const uint8_t> bytes_;
  size_t offset_ = 0;
};

}  // namespace optrules::bytes

#endif  // OPTRULES_COMMON_BYTES_H_
