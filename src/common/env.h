// Strict environment-variable parsing.
//
// Every knob the library reads from the environment goes through these
// helpers so malformed values are REJECTED (with a one-line warning to
// stderr) instead of silently half-parsed: `strtoull`-style acceptance of
// trailing garbage ("64abc" -> 64) and negative wraparound ("-1" -> a
// huge unsigned budget) have both produced silently-wrong configurations.
// A value must be a clean base-10 non-negative integer -- digits only, no
// sign, no whitespace, no suffix -- or the documented default applies.

#ifndef OPTRULES_COMMON_ENV_H_
#define OPTRULES_COMMON_ENV_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace optrules::env {

/// Parses `text` as a clean base-10 non-negative integer: one or more
/// ASCII digits and nothing else. Returns nullopt for an empty string,
/// any sign, whitespace, trailing garbage, or a value that overflows
/// uint64_t. ("64abc", "-1", " 8", and "1e6" all fail.)
std::optional<uint64_t> ParseNonNegativeInt(std::string_view text);

/// Reads environment variable `name` through ParseNonNegativeInt. Unset
/// or empty returns `fallback` silently; a set-but-malformed value logs
/// one warning to stderr and returns `fallback`.
uint64_t ReadEnvNonNegativeInt(const char* name, uint64_t fallback);

/// Reads a 0/1 flag variable: "0" is false, any clean positive integer is
/// true. Unset or empty returns `fallback` silently; malformed values
/// ("1abc", "yes") log one warning and return `fallback`.
bool ReadEnvFlag(const char* name, bool fallback);

}  // namespace optrules::env

#endif  // OPTRULES_COMMON_ENV_H_
