// Status / Result<T>: exception-free error propagation for fallible paths
// (I/O, parsing). Pure in-memory algorithms use CHECK-style contracts
// instead and never fail.

#ifndef OPTRULES_COMMON_STATUS_H_
#define OPTRULES_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace optrules {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kInternal,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` ("OK", "IoError", ...).
const char* StatusCodeName(StatusCode code);

/// Value-semantic success/error outcome of a fallible operation.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// free-form message. Statuses are cheap to copy and compare.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error category (kOk for success).
  StatusCode code() const { return code_; }
  /// The error message (empty for success).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
///
/// Access to `value()` on an error Result is a fatal programmer error;
/// callers must test `ok()` (or propagate) first.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    OPTRULES_CHECK(!std::get<Status>(data_).ok());
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The status: OK when a value is present.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(data_);
  }

  /// The held value; fatal if `!ok()`.
  const T& value() const& {
    OPTRULES_CHECK(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    OPTRULES_CHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    OPTRULES_CHECK(ok());
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status to the caller.
#define OPTRULES_RETURN_IF_ERROR(expr)     \
  do {                                     \
    ::optrules::Status status_ = (expr);   \
    if (!status_.ok()) return status_;     \
  } while (0)

}  // namespace optrules

#endif  // OPTRULES_COMMON_STATUS_H_
