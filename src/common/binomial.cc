#include "common/binomial.h"

#include <cmath>

#include "common/logging.h"

namespace optrules {

double LogFactorial(int64_t n) {
  OPTRULES_CHECK(n >= 0);
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomialCoefficient(int64_t n, int64_t k) {
  OPTRULES_CHECK(0 <= k && k <= n);
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double BinomialPmf(int64_t n, int64_t k, double p) {
  OPTRULES_CHECK(0.0 <= p && p <= 1.0);
  if (k < 0 || k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogBinomialCoefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialCdf(int64_t n, int64_t k, double p) {
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  // Recurrence pmf(i+1) = pmf(i) * (n-i)/(i+1) * p/(1-p) starting from a
  // log-space anchor at i=0 would underflow for large n; instead anchor at
  // each term independently when the running value degenerates.
  double sum = 0.0;
  double term = BinomialPmf(n, 0, p);
  const double odds = p / (1.0 - p);
  for (int64_t i = 0; i <= k; ++i) {
    if (i > 0) {
      term *= static_cast<double>(n - i + 1) / static_cast<double>(i) * odds;
      // Refresh from log space if the recurrence degenerated to 0/inf.
      if (term == 0.0 || !std::isfinite(term)) term = BinomialPmf(n, i, p);
    }
    sum += term;
  }
  return sum < 1.0 ? sum : 1.0;
}

double BucketDeviationProbability(int64_t sample_size, int64_t num_buckets,
                                  double delta) {
  OPTRULES_CHECK(sample_size >= 1);
  OPTRULES_CHECK(num_buckets >= 2);
  OPTRULES_CHECK(delta > 0.0);
  const double p = 1.0 / static_cast<double>(num_buckets);
  const double mean = static_cast<double>(sample_size) * p;
  const double spread = delta * mean;
  // Pr(X <= mean - spread) + Pr(X >= mean + spread).
  const auto lower = static_cast<int64_t>(std::floor(mean - spread));
  const auto upper = static_cast<int64_t>(std::ceil(mean + spread));
  double prob = 0.0;
  // Left tail: X <= lower, but only when lower is a real deviation
  // (lower < mean - spread is ensured by flooring; handle exact boundary).
  int64_t left_k = lower;
  if (static_cast<double>(left_k) > mean - spread) left_k -= 1;
  prob += BinomialCdf(sample_size, left_k, p);
  int64_t right_k = upper;
  if (static_cast<double>(right_k) < mean + spread) right_k += 1;
  prob += 1.0 - BinomialCdf(sample_size, right_k - 1, p);
  return prob < 1.0 ? prob : 1.0;
}

}  // namespace optrules
