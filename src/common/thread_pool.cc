#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace optrules {

namespace {

/// Registry instruments for the shared pool, resolved once. Tasks are
/// coarse (row shards, per-channel batch kernels), so per-task metric
/// updates are noise next to the work itself.
struct PoolTaskMetrics {
  obs::Counter* tasks;
  obs::Gauge* queue_depth;
  obs::Histogram* task_seconds;

  static const PoolTaskMetrics& Get() {
    static const PoolTaskMetrics metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return PoolTaskMetrics{reg.GetCounter("threadpool.tasks"),
                             reg.GetGauge("threadpool.queue_depth"),
                             reg.GetHistogram("threadpool.task_seconds")};
    }();
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  OPTRULES_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainTasks(uint64_t generation) {
  // Tasks are claimed under the lock so that a worker woken late for an
  // already-finished batch can never touch the next batch's state (or a
  // destroyed fn). Tasks are coarse -- whole row shards or per-attribute
  // batch kernels -- so the per-task lock round-trip is noise.
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    int task = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (generation_ != generation || fn_ == nullptr ||
          next_task_ >= num_tasks_) {
        return;
      }
      task = next_task_++;
      fn = fn_;
      PoolTaskMetrics::Get().queue_depth->Set(
          static_cast<double>(num_tasks_ - next_task_));
    }
    // Run() cannot return (and destroy *fn) before this task reports
    // completion below, so the unlocked call is safe.
    WallTimer task_timer;
    (*fn)(task);
    PoolTaskMetrics::Get().task_seconds->Observe(task_timer.ElapsedSeconds());
    PoolTaskMetrics::Get().tasks->Add();
    {
      std::lock_guard<std::mutex> lock(mu_);
      OPTRULES_DCHECK(generation_ == generation);
      ++completed_;
      if (completed_ == num_tasks_) done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    DrainTasks(seen_generation);
  }
}

void ThreadPool::Run(int num_tasks, const std::function<void(int)>& fn) {
  OPTRULES_CHECK(num_tasks >= 0);
  if (num_tasks == 0) return;
  std::lock_guard<std::mutex> run_lock(run_mu_);
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    completed_ = 0;
    next_task_ = 0;
    generation = ++generation_;
  }
  work_cv_.notify_all();
  DrainTasks(generation);  // the caller participates
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return completed_ == num_tasks_; });
  fn_ = nullptr;
}

ThreadPool& DefaultThreadPool() {
  static ThreadPool* pool = [] {
    const unsigned hardware = std::thread::hardware_concurrency();
    return new ThreadPool(std::max(1u, hardware));
  }();
  return *pool;
}

}  // namespace optrules
