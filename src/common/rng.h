// Deterministic pseudo-random number generation.
//
// All randomized components of the library (sampling bucketizer, data
// generators, property tests) draw from this xoshiro256++ generator so that
// every experiment is reproducible from a single seed. The generator
// satisfies the C++ UniformRandomBitGenerator concept.

#ifndef OPTRULES_COMMON_RNG_H_
#define OPTRULES_COMMON_RNG_H_

#include <cstdint>

#include "common/logging.h"

namespace optrules {

/// xoshiro256++ generator (Blackman & Vigna). Fast, 256-bit state, and
/// deterministic across platforms, unlike std::mt19937 distributions.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  uint64_t operator()() { return Next64(); }
  uint64_t Next64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) via Lemire rejection; bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (caches the second deviate).
  double NextGaussian();

  /// Bernoulli trial with success probability p in [0, 1].
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Jump function: advances the state by 2^128 steps, used to derive
  /// independent streams for parallel workers.
  void Jump();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace optrules

#endif  // OPTRULES_COMMON_RNG_H_
